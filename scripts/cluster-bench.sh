#!/usr/bin/env bash
# cluster-bench.sh — repeatable serving-cluster benchmark behind the
# EXPERIMENTS.md "Serving cluster" tables.
#
#   scripts/cluster-bench.sh          # full run (~1 min of measurement)
#   scripts/cluster-bench.sh quick    # CI smoke: short windows, hard asserts
#
# Backends run serve.StubEstimator pinned to the GEMM engine's measured
# per-batch inference cost (PR 6: ~1.6 ms per batch of 8 on one core), so
# the cluster tier is measured without re-measuring the kernel underneath
# and a backend's capacity is known: MaxBatch / latency ≈ 5000 frames/s.
# Phases:
#   A  protocol cost    — HTTP/JSON vs binary wire, one instant backend
#   B  router scaling   — 1 backend direct vs 2 backends behind vvd-router
#   C  overload         — offered load past capacity; sheds, bounded age
set -euo pipefail
cd "$(dirname "$0")/.."

mode=${1:-full}
case "$mode" in
  quick) dur=2s; warm=500ms; lat=1.6ms ;;
  full)  dur=8s; warm=2s;    lat=1.6ms ;;
  *) echo "usage: $0 [quick|full]" >&2; exit 2 ;;
esac

bin=$(mktemp -d)
out=${CLUSTER_BENCH_OUT:-$bin}
mkdir -p "$out"
pids=()
cleanup() {
  [ ${#pids[@]} -gt 0 ] && kill "${pids[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/vvd-serve ./cmd/vvd-router ./cmd/vvd-load

serve() { # serve <wire-port> <http-port> [extra flags...]
  local wire=$1 http=$2; shift 2
  "$bin/vvd-serve" -stub "$lat" -queue 64 -wire "127.0.0.1:$wire" -addr "127.0.0.1:$http" "$@" \
    >"$bin/serve-$wire.log" 2>&1 &
  pids+=($!)
}

load() { # load <name> <args...>
  local name=$1; shift
  echo "== $name"
  "$bin/vvd-load" -duration "$dur" -warmup "$warm" -out "$out/$name.json" "$@"
  echo
}

# ---- phase A: protocol cost (one backend, instant inference) ---------
"$bin/vvd-serve" -stub 0 -queue 64 -wire 127.0.0.1:19991 -addr 127.0.0.1:18991 \
  >"$bin/serve-a.log" 2>&1 & pids+=($!)
sleep 0.5
load json-single -protocol http -addr 127.0.0.1:18991 -links 16 -fps 0 -assert-served 1 -assert-no-errors
load wire-single -protocol wire -addr 127.0.0.1:19991 -links 16 -fps 0 -assert-served 1 -assert-no-errors
kill "${pids[@]}" 2>/dev/null || true; wait 2>/dev/null || true; pids=()

# ---- phase B: router scaling (latency-bound backends) ----------------
serve 19991 18991
serve 19992 18992
sleep 0.5
load wire-1node -addr 127.0.0.1:19991 -links 32 -fps 0 -assert-served 1 -assert-no-errors

"$bin/vvd-router" -addr 127.0.0.1:19990 -backends 127.0.0.1:19991,127.0.0.1:19992 \
  >"$bin/router.log" 2>&1 & rpid=$!
sleep 0.5
load router-2node -addr 127.0.0.1:19990 -links 32 -fps 0 -assert-served 1 -assert-no-errors

# ---- phase C: overload (offered load past cluster capacity) ----------
# A tight per-shard in-flight bound forces the router to shed instead of
# queueing; the load generator must see sheds while hard errors stay 0
# and the served estimates' age stays bounded.
kill "$rpid" 2>/dev/null || true; wait "$rpid" 2>/dev/null || true
"$bin/vvd-router" -addr 127.0.0.1:19890 -backends 127.0.0.1:19991,127.0.0.1:19992 -inflight 4 \
  >"$bin/router-tight.log" 2>&1 & pids+=($!)
sleep 0.5
load router-overload -addr 127.0.0.1:19890 -links 64 -fps 120 -assert-served 1 -assert-no-errors

echo "reports in $out"

if [ "$mode" = quick ]; then
  # The overload phase must actually have shed (backpressure reachable).
  python3 - "$out/router-overload.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["sheds"] > 0, "overload run shed nothing: backpressure untested"
assert rep["errors"] == 0, f'{rep["errors"]} hard errors under overload'
print(f'overload ok: {rep["sheds"]} sheds, {rep["errors"]} errors, age p99 {rep["age_p99_ms"]:.1f} ms')
EOF
fi

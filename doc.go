// Package vvd is a from-scratch Go reproduction of "Veni Vidi Dixi:
// Reliable Wireless Communication with Depth Images" (CoNEXT 2019):
// CNN-based blind wireless channel estimation from depth images of the
// communication environment, evaluated against data-based and Kalman
// channel estimators on a simulated IEEE 802.15.4 testbed.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory and README.md for a tour); bench_test.go regenerates every
// table and figure of the paper's evaluation; examples/ contains runnable
// scenarios. Beyond the evaluation, internal/serve and cmd/vvd-serve turn
// the trained CNN into a long-running multi-link estimation service —
// batched inference behind a bounded drop-oldest frame queue, serving
// freshest-wins channel estimates to concurrent link sessions over
// HTTP/JSON (the paper's §6.6 real-time argument as infrastructure), and
// internal/scenario generalizes the paper's single-walker world into a
// registry of named presets — multi-occupant crowds, empty rooms, SNR and
// mobility extremes — swept end to end by vvd-eval -scenarios.
package vvd

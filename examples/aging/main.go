// Aging: how fast does channel knowledge rot? (paper Figs. 16–17)
//
// A channel estimate is a perishable good: the paper shows the MSE of an
// aged estimate grows roughly exponentially and saturates after ~2 s, while
// the PER impact is nearly binary. This example sweeps the age of the
// estimate used to decode each packet and prints both curves for the
// preamble-genie estimator and for VVD.
//
// Run with:
//
//	go run ./examples/aging
package main

import (
	"fmt"
	"log"

	"vvd/internal/core"
	"vvd/internal/experiments"
	"vvd/internal/nn"
)

func main() {
	p := experiments.DefaultParams()
	p.Campaign.Sets = 3
	p.Campaign.PacketsPerSet = 240 // 24 s takes → ages up to 20 s
	p.Campaign.PSDULen = 64
	p.Combos = 1
	p.Train = core.TrainConfig{
		Arch:   core.Arch{Conv1: 4, Conv2: 4, Conv3: 8, Conv4: 8, Dense: 32, Pool: nn.AvgPool},
		Epochs: 14, Batch: 16, Seed: 3, LR: 2e-3,
	}
	fmt.Println("simulating campaign and training VVD (this takes a minute)...")
	e, err := experiments.NewEngine(p)
	if err != nil {
		log.Fatal(err)
	}

	// Paper's aging grid: Original, −0.1 s, −0.5 s, −1 s, −2 s, −5 s, −10 s, −20 s.
	ages := []int{0, 1, 5, 10, 20, 50, 100, 200}
	res, err := experiments.RunAging(e, ages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	fmt.Println("Expected shape (paper §6.5): MSE rises with age and saturates by ~2 s;")
	fmt.Println("the genie's PER jumps as soon as the estimate is 100 ms old, while the")
	fmt.Println("effect of aging on VVD's PER is comparatively flat.")
}

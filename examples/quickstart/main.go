// Quickstart: the smallest end-to-end VVD pipeline.
//
// It simulates a short measurement campaign (human walking through the lab,
// packets every 100 ms, depth frames at 30 fps), trains a small VVD CNN
// that maps depth images to complex channel estimates, and then decodes a
// held-out packet with the image-based estimate — no pilot involved.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"vvd/internal/core"
	"vvd/internal/dataset"
	"vvd/internal/metrics"
	"vvd/internal/nn"
)

func main() {
	// 1. Simulate a small campaign: 3 takes of 120 packets each.
	cfg := dataset.DefaultConfig()
	cfg.Sets = 3
	cfg.PacketsPerSet = 120
	cfg.PSDULen = 64
	fmt.Println("simulating measurement campaign (3 takes x 120 packets)...")
	campaign, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train VVD-Current on take 1, validating on take 2. This is a
	// deliberately tiny training run (the paper trains on 13 takes for 200
	// epochs); expect a rough estimator — EXPERIMENTS.md shows how the
	// estimate tightens with scale.
	combo := dataset.Combination{Number: 1, Training: []int{1}, Val: 2, Test: 3}
	train := core.TrainConfig{
		Arch:   core.Arch{Conv1: 4, Conv2: 4, Conv3: 8, Conv4: 8, Dense: 32, Pool: nn.AvgPool},
		Epochs: 18, Batch: 16, Seed: 1, LR: 2.5e-3,
	}
	fmt.Println("training VVD-Current (a minute or two)...")
	vvd, hist, err := core.Train(campaign, combo, dataset.LagCurrent, train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best validation MSE %.3e (epoch %d)\n", hist.BestVal, hist.BestEpoch)

	// 3. Decode every held-out packet blind — the channel estimate comes
	// from the depth image alone, no pilot ever transmitted.
	rx := campaign.Receiver
	test := campaign.TestPackets(combo)
	var vvdCount, gtCount, stdCount metrics.Counter
	demo := -1
	var demoEst []complex128
	for _, pkt := range test {
		ppdu, _, txChips, rec, err := campaign.Reception(combo.Test, pkt.Index)
		if err != nil {
			log.Fatal(err)
		}
		rxc, _ := rx.CorrectCFO(rec.Waveform)
		est, err := vvd.Estimate(pkt.Images[dataset.LagCurrent])
		if err != nil {
			log.Fatal(err)
		}
		res := rx.Decode(rxc, ppdu, txChips, est)
		vvdCount.AddPacket(res.PacketOK, res.ChipErrors, res.PSDUChips)
		if res.PacketOK && demo == -1 {
			demo, demoEst = pkt.Index, est
		}
		gt := rx.Decode(rxc, ppdu, txChips, pkt.Perfect)
		gtCount.AddPacket(gt.PacketOK, gt.ChipErrors, gt.PSDUChips)
		std := rx.Decode(rxc, ppdu, txChips, nil)
		stdCount.AddPacket(std.PacketOK, std.ChipErrors, std.PSDUChips)
	}
	fmt.Printf("\nheld-out take, %d packets:\n", len(test))
	fmt.Printf("  %-34s PER %.3f  CER %.4f\n", "VVD (image only, blind)", vvdCount.PER(), vvdCount.CER())
	fmt.Printf("  %-34s PER %.3f  CER %.4f\n", "Standard Decoding (no estimate)", stdCount.PER(), stdCount.CER())
	fmt.Printf("  %-34s PER %.3f  CER %.4f\n", "Ground Truth (oracle)", gtCount.PER(), gtCount.CER())

	// 4. Show one blind-decoded packet's estimate against the ground truth.
	if demo >= 0 {
		pkt := test[demo]
		fmt.Printf("\npacket %d decoded blind — image-based estimate vs measured (per-tap |h|):\n", demo)
		for i := range demoEst {
			fmt.Printf("  tap %2d: VVD %.3e   ground truth %.3e\n",
				i+1, cmplx.Abs(demoEst[i]), cmplx.Abs(pkt.PerfectAligned[i]))
		}
		fmt.Printf("estimation MSE: %.3e\n", metrics.SqError(demoEst, pkt.PerfectAligned)/float64(len(demoEst)))
	}
}

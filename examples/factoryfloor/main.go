// Factory floor: the paper's motivating industrial scenario.
//
// Safety-critical sensors transmit *sporadically* (alarms, rare events), so
// time-series estimators starve: their latest channel estimate is many
// coherence times old by the time the sporadic packet arrives. VVD keeps a
// fresh estimate from the surveillance camera without a single pilot.
//
// This example simulates a sensor that stays quiet for several seconds
// between transmissions while a worker walks the floor, and compares three
// receivers on exactly the same sporadic packets:
//
//   - "previous estimate": last estimate from the previous transmission
//     (what a pilot-based system has when the sensor wakes up)
//   - VVD-Current: estimate from the camera frame at transmit time
//   - ground truth: perfect estimation (upper bound)
//
// Run with:
//
//	go run ./examples/factoryfloor
package main

import (
	"fmt"
	"log"

	"vvd/internal/core"
	"vvd/internal/dataset"
	"vvd/internal/estimate"
	"vvd/internal/metrics"
	"vvd/internal/nn"
)

func main() {
	cfg := dataset.DefaultConfig()
	cfg.Sets = 3
	cfg.PacketsPerSet = 200 // 20 s takes
	cfg.PSDULen = 96
	fmt.Println("simulating factory floor (worker walking, sensors sporadic)...")
	campaign, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	combo := dataset.Combination{Number: 1, Training: []int{1}, Val: 2, Test: 3}
	train := core.TrainConfig{
		Arch:   core.Arch{Conv1: 4, Conv2: 4, Conv3: 8, Conv4: 8, Dense: 32, Pool: nn.AvgPool},
		Epochs: 16, Batch: 16, Seed: 2, LR: 2e-3,
	}
	fmt.Println("training VVD from the surveillance camera stream...")
	vvd, _, err := core.Train(campaign, combo, dataset.LagCurrent, train)
	if err != nil {
		log.Fatal(err)
	}

	// The sensor transmits every 3 seconds (every 30th packet slot).
	const sporadicInterval = 30
	test := campaign.TestPackets(combo)
	rx := campaign.Receiver

	var stale, fresh, oracle metrics.Counter
	events := 0
	for k := sporadicInterval; k < len(test); k += sporadicInterval {
		pkt := test[k]
		prev := test[k-sporadicInterval] // last time the sensor spoke
		ppdu, _, txChips, rec, err := campaign.Reception(combo.Test, pkt.Index)
		if err != nil {
			log.Fatal(err)
		}
		rxc, _ := rx.CorrectCFO(rec.Waveform)

		decode := func(h []complex128, c *metrics.Counter) {
			res := rx.Decode(rxc, ppdu, txChips, h)
			c.AddPacket(res.PacketOK, res.ChipErrors, res.PSDUChips)
			if h != nil {
				c.AddMSE(metrics.SqError(estimate.AlignPhase(h, pkt.Perfect), pkt.Perfect), len(pkt.Perfect))
			}
		}
		decode(prev.PerfectAligned, &stale) // 3-second-old estimate
		img, err := vvd.Estimate(pkt.Images[dataset.LagCurrent])
		if err != nil {
			log.Fatal(err)
		}
		decode(img, &fresh)
		decode(pkt.Perfect, &oracle)
		events++
	}

	fmt.Printf("\n%d sporadic transmissions, 3 s apart:\n", events)
	fmt.Printf("%-34s %10s %12s %12s\n", "receiver", "PER", "CER", "MSE")
	fmt.Printf("%-34s %10.3f %12.3e %12.3e\n", "3s-old estimate (pilot-based)", stale.PER(), stale.CER(), stale.MSE())
	fmt.Printf("%-34s %10.3f %12.3e %12.3e\n", "VVD-Current (camera, no pilot)", fresh.PER(), fresh.CER(), fresh.MSE())
	fmt.Printf("%-34s %10.3f %12.3e %12.3e\n", "ground truth (upper bound)", oracle.PER(), oracle.CER(), oracle.MSE())

	// Battery accounting: what the pilots would have cost.
	coherencePilotsPerSecond := 10.0 // one pilot per ~100 ms coherence interval
	duration := float64(len(test)) * dataset.PacketInterval
	saved := int(coherencePilotsPerSecond * duration)
	fmt.Printf("\npilot transmissions avoided over %.0f s of quiet time: %d\n", duration, saved)
	fmt.Println("VVD keeps the estimate fresh from the camera: zero transmit energy spent on sounding.")
}

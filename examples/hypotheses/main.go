// Hypotheses: why can a camera know the wireless channel at all?
//
// The paper's §2.2 builds on two hypotheses about indoor multipath:
//
//  1. mobility with displacement changes the phase and amplitude of MPCs;
//  2. if mobile objects end up in the same place at two different times,
//     all MPCs look similar again (after removing the crystals' mean phase
//     shift, Eq. 8).
//
// If both hold, the environment's geometry — which a depth camera sees —
// determines the channel, and learning the mapping is possible. This
// example reproduces the test behind the paper's Figs. 4–5 and then goes
// one step further than the paper: it sweeps the repeat position in small
// steps away from the control position, showing how the channel similarity
// decays with displacement distance (the sensitivity that limits VVD at
// LoS-blockage edges, §6.4).
//
// Run with:
//
//	go run ./examples/hypotheses
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"vvd/internal/channel"
	"vvd/internal/dataset"
	"vvd/internal/estimate"
	"vvd/internal/experiments"
	"vvd/internal/metrics"
	"vvd/internal/phy"
	"vvd/internal/room"
)

func main() {
	res, err := experiments.RunFig5(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	// Displacement sensitivity sweep: how fast does similarity decay?
	lab := room.DefaultLab()
	g := channel.NewGeometry(lab, phy.Wavelength)
	model := channel.NewModel(g, phy.SampleRate)
	rx := estimate.NewReceiver(estimate.DefaultConfig())
	mod := phy.NewModulator()

	base := room.Vec3{X: 4.0, Y: 3.6}
	estimateAt := func(pos room.Vec3, seed uint64) []complex128 {
		_, wave, _, err := dataset.BuildTx(mod, 1, 64)
		if err != nil {
			log.Fatal(err)
		}
		link := channel.NewLink(model, channel.DefaultImpairments(), rand.New(rand.NewPCG(seed, seed^77)))
		rec := link.Transmit(wave, room.DefaultHuman(pos))
		rxc, _ := rx.CorrectCFO(rec.Waveform)
		h, err := rx.EstimateGroundTruth(rxc, wave)
		if err != nil {
			log.Fatal(err)
		}
		return h
	}

	control := estimateAt(base, 1)
	fmt.Println("Displacement sensitivity (squared distance to control estimate, Eq. 8-corrected):")
	fmt.Printf("%12s %14s\n", "offset (m)", "‖Δh‖²")
	for _, d := range []float64{0, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0} {
		h := estimateAt(room.Vec3{X: base.X + d, Y: base.Y}, uint64(100+d*1000))
		aligned := estimate.AlignPhase(h, control)
		fmt.Printf("%12.2f %14.3e\n", d, metrics.SqError(aligned, control))
	}
	fmt.Println("\nCentimetre displacements already move the MPC phases (hypothesis 1),")
	fmt.Println("while a zero-displacement repeat stays close (hypothesis 2) — the")
	fmt.Println("geometric determinism VVD's CNN exploits.")
}

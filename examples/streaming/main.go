// Streaming: can VVD run in real time? (paper §6.6)
//
// The paper argues VVD is real-time capable if one CNN inference fits
// inside the channel's coherence time (~50 ms indoors): they measured
// ≈0.9 ms on a GPU and ≈9.8 ms on a 2013 CPU. This example wires the
// actual deployment pipeline using internal/serve: a camera goroutine
// submits depth frames at 30 fps into the service's bounded drop-oldest
// queue, the service's estimator goroutine runs (batched) CNN inference
// and publishes the latest CIR freshest-wins, and a receiver link session
// decodes packets as they arrive using whatever estimate is freshest. It
// reports the measured inference latency, the estimate age at each
// decode, and how both compare to the coherence time.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"time"

	"vvd/internal/camera"
	"vvd/internal/core"
	"vvd/internal/dataset"
	"vvd/internal/metrics"
	"vvd/internal/nn"
	"vvd/internal/serve"
)

func main() {
	const coherence = 50 * time.Millisecond // paper §6.6, [10]

	// Train a small model offline (as the paper's deployment would).
	cfg := dataset.DefaultConfig()
	cfg.Sets = 3
	cfg.PacketsPerSet = 80
	cfg.PSDULen = 64
	fmt.Println("offline phase: simulating campaign and training VVD...")
	campaign, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	combo := dataset.Combination{Number: 1, Training: []int{1}, Val: 2, Test: 3}
	vvd, _, err := core.Train(campaign, combo, dataset.LagCurrent, core.TrainConfig{
		Arch:   core.Arch{Conv1: 4, Conv2: 4, Conv3: 8, Conv4: 8, Dense: 32, Pool: nn.AvgPool},
		Epochs: 10, Batch: 16, Seed: 6, LR: 2.5e-3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Online phase: the serving pipeline. Replay the held-out take in real
	// time (scaled 10× faster so the demo finishes quickly; latencies are
	// measured, not scaled).
	var speedup = 10.0
	test := campaign.TestPackets(combo)
	frameTick := time.Duration(camera.FrameInterval / speedup * float64(time.Second))

	svc, err := serve.New(serve.Config{
		Estimator:  vvd,
		InputSize:  vvd.Net.In.Size(),
		QueueDepth: 4,
		MaxBatch:   4,
	})
	if err != nil {
		log.Fatal(err)
	}
	link, err := svc.OpenLink("receiver-1")
	if err != nil {
		log.Fatal(err)
	}

	// Camera: submits the frame stream of the take into the service.
	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(frameTick)
		defer tick.Stop()
		for _, pkt := range test {
			select {
			case <-stop:
				return
			case <-tick.C:
				if _, _, err := svc.Submit(pkt.Images[dataset.LagCurrent]); err != nil {
					return
				}
			}
		}
	}()

	// Receiver: packets arrive every 100 ms (wall: 10 ms); decode each
	// with the freshest published estimate from the link session.
	var counter metrics.Counter
	decoded := 0
	rx := campaign.Receiver
	packetTick := time.NewTicker(time.Duration(dataset.PacketInterval / speedup * float64(time.Second)))
	defer packetTick.Stop()
	for _, pkt := range test {
		<-packetTick.C
		est, ok := link.Latest()
		if !ok {
			continue // estimator warming up
		}
		ppdu, _, txChips, rec, err := campaign.Reception(combo.Test, pkt.Index)
		if err != nil {
			log.Fatal(err)
		}
		rxc, _ := rx.CorrectCFO(rec.Waveform)
		res := rx.Decode(rxc, ppdu, txChips, est.CIR)
		counter.AddPacket(res.PacketOK, res.ChipErrors, res.PSDUChips)
		decoded++
	}
	close(stop)
	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}

	m := svc.Metrics()
	st := link.Stats()
	fmt.Printf("\nonline phase (replayed %.0f× real time):\n", speedup)
	fmt.Printf("  frames inferred:         %d in %d batches (mean %.1f frames/batch, %d dropped)\n",
		m.FramesInferred, m.Batches, m.MeanBatch, m.FramesDropped)
	fmt.Printf("  mean CNN inference:      %v per frame (batched; paper: ≈0.9 ms GPU, ≈9.8 ms CPU)\n", m.InferMeanFrame.Round(10*time.Microsecond))
	fmt.Printf("  packets decoded blind:   %d  (PER %.3f, CER %.4f)\n", decoded, counter.PER(), counter.CER())
	if st.Served > 0 {
		fmt.Printf("  estimate age at decode:  mean %v, max %v (wall clock, %.0fx compressed)\n",
			st.MeanAge.Round(10*time.Microsecond), st.MaxAge.Round(10*time.Microsecond), speedup)
	}
	if m.InferMeanFrame < coherence {
		fmt.Printf("\ninference (%v per frame) fits within the %v coherence time — real-time capable, as the paper projects.\n",
			m.InferMeanFrame.Round(10*time.Microsecond), coherence)
	} else {
		fmt.Printf("\ninference (%v per frame) exceeds the %v coherence time — a faster CNN or hardware is needed.\n",
			m.InferMeanFrame.Round(10*time.Microsecond), coherence)
	}
}

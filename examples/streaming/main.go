// Streaming: can VVD run in real time? (paper §6.6)
//
// The paper argues VVD is real-time capable if one CNN inference fits
// inside the channel's coherence time (~50 ms indoors): they measured
// ≈0.9 ms on a GPU and ≈9.8 ms on a 2013 CPU. This example builds the
// actual pipeline: a camera goroutine emits depth frames at 30 fps, an
// estimator goroutine runs the CNN on every frame and publishes the latest
// CIR estimate, and a receiver goroutine decodes packets as they arrive
// using whatever estimate is freshest — exactly how a deployment would
// wire VVD into a sniffer. It reports the measured inference latency, the
// estimate age at each decode, and how both compare to the coherence time.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"vvd/internal/camera"
	"vvd/internal/core"
	"vvd/internal/dataset"
	"vvd/internal/metrics"
	"vvd/internal/nn"
)

// estimateBox publishes the most recent channel estimate to the receiver.
type estimateBox struct {
	mu     sync.Mutex
	cir    []complex128
	stamp  time.Time
	frames int
}

func (b *estimateBox) put(cir []complex128, t time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cir, b.stamp = cir, t
	b.frames++
}

func (b *estimateBox) get() ([]complex128, time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cir, b.stamp
}

func main() {
	const coherence = 50 * time.Millisecond // paper §6.6, [10]

	// Train a small model offline (as the paper's deployment would).
	cfg := dataset.DefaultConfig()
	cfg.Sets = 3
	cfg.PacketsPerSet = 80
	cfg.PSDULen = 64
	fmt.Println("offline phase: simulating campaign and training VVD...")
	campaign, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	combo := dataset.Combination{Number: 1, Training: []int{1}, Val: 2, Test: 3}
	vvd, _, err := core.Train(campaign, combo, dataset.LagCurrent, core.TrainConfig{
		Arch:   core.Arch{Conv1: 4, Conv2: 4, Conv3: 8, Conv4: 8, Dense: 32, Pool: nn.AvgPool},
		Epochs: 10, Batch: 16, Seed: 6, LR: 2.5e-3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Online phase: replay the held-out take in real time (scaled 10×
	// faster so the demo finishes quickly; latencies are measured, not
	// scaled).
	var speedup = 10.0
	test := campaign.TestPackets(combo)
	frameTick := time.Duration(camera.FrameInterval / speedup * float64(time.Second))

	frames := make(chan []float32, 4)
	stop := make(chan struct{})
	box := &estimateBox{}

	// Camera: emits the frame stream of the take.
	go func() {
		defer close(frames)
		tick := time.NewTicker(frameTick)
		defer tick.Stop()
		for _, pkt := range test {
			select {
			case <-stop:
				return
			case <-tick.C:
				frames <- pkt.Images[dataset.LagCurrent]
			}
		}
	}()

	// Estimator: one CNN inference per frame, publishes the latest CIR.
	var inferTotal time.Duration
	var inferN int
	var inferMu sync.Mutex
	go func() {
		for img := range frames {
			t0 := time.Now()
			cir, err := vvd.Estimate(img)
			d := time.Since(t0)
			if err != nil {
				log.Fatal(err)
			}
			inferMu.Lock()
			inferTotal += d
			inferN++
			inferMu.Unlock()
			box.put(cir, time.Now())
		}
	}()

	// Receiver: packets arrive every 100 ms (wall: 10 ms); decode each with
	// the freshest published estimate.
	var counter metrics.Counter
	var ageTotal time.Duration
	var ageMax time.Duration
	decoded := 0
	rx := campaign.Receiver
	packetTick := time.NewTicker(time.Duration(dataset.PacketInterval / speedup * float64(time.Second)))
	defer packetTick.Stop()
	for _, pkt := range test {
		<-packetTick.C
		cir, stamp := box.get()
		if cir == nil {
			continue // estimator warming up
		}
		age := time.Since(stamp)
		ageTotal += age
		if age > ageMax {
			ageMax = age
		}
		ppdu, _, txChips, rec, err := campaign.Reception(combo.Test, pkt.Index)
		if err != nil {
			log.Fatal(err)
		}
		rxc, _ := rx.CorrectCFO(rec.Waveform)
		res := rx.Decode(rxc, ppdu, txChips, cir)
		counter.AddPacket(res.PacketOK, res.ChipErrors, res.PSDUChips)
		decoded++
	}
	close(stop)

	inferMu.Lock()
	meanInfer := time.Duration(0)
	if inferN > 0 {
		meanInfer = inferTotal / time.Duration(inferN)
	}
	frames32 := inferN
	inferMu.Unlock()

	fmt.Printf("\nonline phase (replayed %.0f× real time):\n", speedup)
	fmt.Printf("  frames processed:        %d\n", frames32)
	fmt.Printf("  mean CNN inference:      %v   (paper: ≈0.9 ms GPU, ≈9.8 ms CPU)\n", meanInfer.Round(10*time.Microsecond))
	fmt.Printf("  packets decoded blind:   %d  (PER %.3f, CER %.4f)\n", decoded, counter.PER(), counter.CER())
	if decoded > 0 {
		fmt.Printf("  estimate age at decode:  mean %v, max %v (wall clock, %.0fx compressed)\n",
			(ageTotal / time.Duration(decoded)).Round(10*time.Microsecond), ageMax.Round(10*time.Microsecond), speedup)
	}
	if meanInfer < coherence {
		fmt.Printf("\ninference (%v) fits within the %v coherence time — real-time capable, as the paper projects.\n",
			meanInfer.Round(10*time.Microsecond), coherence)
	} else {
		fmt.Printf("\ninference (%v) exceeds the %v coherence time — a faster CNN or hardware is needed.\n",
			meanInfer.Round(10*time.Microsecond), coherence)
	}
}

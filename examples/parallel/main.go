// Parallel: the estimator registry and the worker-pool evaluation engine.
//
// The paper's evaluation compares 14 channel-estimation techniques over
// Table 2's set combinations. Each (combination × technique) pair is an
// independent decode run, so the engine fans them out through a bounded
// worker pool: model caches are shared singleflight-style (one VVD
// training, one Kalman fit per combination), receptions are regenerated
// once per combination, and every task owns private estimator state — so
// the parallel result is byte-identical to the sequential one.
//
// This example also registers a 15th technique — a true-CIR oracle — to
// show that extending the comparison is one Register call, not an engine
// change.
//
// Run with:
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"vvd/internal/core"
	"vvd/internal/dataset"
	"vvd/internal/experiments"
	"vvd/internal/nn"
)

func main() {
	p := experiments.DefaultParams()
	p.Campaign.Sets = 4
	p.Campaign.PacketsPerSet = 60
	p.Campaign.PSDULen = 48
	p.Combos = 2
	p.SkipPackets = 8
	p.Train = core.TrainConfig{
		Arch:   core.Arch{Conv1: 4, Conv2: 4, Conv3: 8, Conv4: 8, Dense: 32, Pool: nn.AvgPool},
		Epochs: 10, Batch: 16, Seed: 3, LR: 2e-3,
	}

	// A technique beyond the paper's 14: decode with the oracle block-fading
	// CIR the simulator actually applied. One Register call adds it to every
	// evaluation entry point.
	const oracle = "True CIR Oracle"
	experiments.Register(oracle, func(e *experiments.Engine, cb dataset.Combination) (experiments.Estimator, error) {
		return oracleEstimator{}, nil
	})

	fmt.Println("generating campaign...")
	e, err := experiments.NewEngine(p)
	if err != nil {
		log.Fatal(err)
	}
	techs := append(append([]string{}, core.AllTechniques...), oracle)

	// Sequential reference (also pays the one-off model training).
	e.P.Workers = 1
	start := time.Now()
	seq, err := e.Evaluate(techs)
	if err != nil {
		log.Fatal(err)
	}
	seqFirst := time.Since(start)
	start = time.Now()
	if _, err := e.Evaluate(techs); err != nil {
		log.Fatal(err)
	}
	seqWarm := time.Since(start)

	// Parallel fan-out over the warmed caches.
	e.P.Workers = runtime.GOMAXPROCS(0)
	start = time.Now()
	par, err := e.Evaluate(techs)
	if err != nil {
		log.Fatal(err)
	}
	parWarm := time.Since(start)

	fmt.Printf("\nsequential (cold, incl. training): %.1fs\n", seqFirst.Seconds())
	fmt.Printf("sequential (warm caches):          %.2fs\n", seqWarm.Seconds())
	fmt.Printf("parallel ×%d (warm caches):        %.2fs  (%.1fx speedup)\n",
		e.P.Workers, parWarm.Seconds(), seqWarm.Seconds()/parWarm.Seconds())

	identical := true
	for i := range seq {
		for name, a := range seq[i].Counters {
			b := par[i].Counters[name]
			if a.PacketErrs != b.PacketErrs || a.ChipErrs != b.ChipErrs || a.MSE() != b.MSE() { //vvdlint:bitexact -- the demo's claim is byte-identical parallel output
				identical = false
			}
		}
	}
	fmt.Printf("parallel results identical to sequential: %v\n\n", identical)

	fmt.Printf("%-28s %10s %10s\n", "technique (combo 1)", "PER", "CER")
	for _, name := range append([]string{oracle}, core.Fig12Techniques...) {
		if c, ok := seq[0].Counters[name]; ok {
			fmt.Printf("%-28s %10.3e %10.3e\n", name, c.PER(), c.CER())
		}
	}
}

// oracleEstimator returns the simulator's true block-fading CIR — an upper
// bound even on the paper's "Ground Truth" LS estimate.
type oracleEstimator struct{}

func (oracleEstimator) Name() string { return "True CIR Oracle" }

func (oracleEstimator) Estimate(k int, pkt *dataset.Packet) ([]complex128, experiments.Availability, error) {
	return pkt.TrueCIR, experiments.Available, nil
}

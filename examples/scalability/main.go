// Scalability: why pilots don't scale and cameras do (paper Table 1).
//
// A sounding-based system must transmit one pilot per coherence interval
// per transmitter; with hundreds of sensors attached to one station the
// control channel drowns (paper §1, [7]). VVD replaces all of it with one
// camera stream: a single CNN inference per frame serves every link, and
// the transmit-side cost is zero — the property that lets the estimate stay
// fresh even for sensors that stay silent for hours.
//
// This example prints the overhead scaling and then demonstrates the
// operational difference on the simulated testbed: a sensor that has been
// silent for a long stretch wakes up and transmits once — the pilot-based
// receiver is stuck with a stale estimate while VVD's camera-fed estimate
// is current.
//
// Run with:
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"

	"vvd/internal/core"
	"vvd/internal/dataset"
	"vvd/internal/experiments"
	"vvd/internal/metrics"
	"vvd/internal/nn"
)

func main() {
	// Part 1: the control-overhead asymptotics of Table 1.
	fmt.Println(experiments.RenderScalability(experiments.RunScalability(0.05, 256)))

	// Part 2: one silent sensor waking up.
	cfg := dataset.DefaultConfig()
	cfg.Sets = 3
	cfg.PacketsPerSet = 150
	cfg.PSDULen = 64
	fmt.Println("simulating a sensor that transmits once every 5 seconds...")
	campaign, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	combo := dataset.Combination{Number: 1, Training: []int{1}, Val: 2, Test: 3}
	vvd, _, err := core.Train(campaign, combo, dataset.LagCurrent, core.TrainConfig{
		Arch:   core.Arch{Conv1: 4, Conv2: 4, Conv3: 8, Conv4: 8, Dense: 32, Pool: nn.AvgPool},
		Epochs: 16, Batch: 16, Seed: 4, LR: 2.5e-3,
	})
	if err != nil {
		log.Fatal(err)
	}

	const wakeEvery = 50 // packets: 5 s of silence between transmissions
	test := campaign.TestPackets(combo)
	rx := campaign.Receiver
	var stale, fresh metrics.Counter
	for k := wakeEvery; k < len(test); k += wakeEvery {
		pkt := test[k]
		ppdu, _, txChips, rec, err := campaign.Reception(combo.Test, pkt.Index)
		if err != nil {
			log.Fatal(err)
		}
		rxc, _ := rx.CorrectCFO(rec.Waveform)
		// Pilot world: last estimate is from the previous wake-up, 5 s ago.
		old := test[k-wakeEvery].PerfectAligned
		res := rx.Decode(rxc, ppdu, txChips, old)
		stale.AddPacket(res.PacketOK, res.ChipErrors, res.PSDUChips)
		// VVD world: the camera watched the room the whole time.
		h, err := vvd.Estimate(pkt.Images[dataset.LagCurrent])
		if err != nil {
			log.Fatal(err)
		}
		res = rx.Decode(rxc, ppdu, txChips, h)
		fresh.AddPacket(res.PacketOK, res.ChipErrors, res.PSDUChips)
	}
	fmt.Printf("wake-up transmissions after 5 s of silence:\n")
	fmt.Printf("  %-32s PER %.3f  CER %.4f\n", "5s-old pilot estimate", stale.PER(), stale.CER())
	fmt.Printf("  %-32s PER %.3f  CER %.4f\n", "VVD (camera, no pilots at all)", fresh.PER(), fresh.CER())
	fmt.Println("\nThe camera cost is constant in the number of sensors; the pilot cost is linear.")
}

module vvd

go 1.24

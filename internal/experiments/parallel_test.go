package experiments

import (
	"testing"

	"vvd/internal/core"
	"vvd/internal/dataset"
)

func TestRegistryCoversAllTechniques(t *testing.T) {
	if len(core.AllTechniques) != 14 {
		t.Fatalf("paper defines 14 techniques, core lists %d", len(core.AllTechniques))
	}
	for _, name := range core.AllTechniques {
		if _, err := Lookup(name); err != nil {
			t.Fatalf("technique %q not registered: %v", name, err)
		}
	}
}

func TestLookupUnknownTechnique(t *testing.T) {
	if _, err := Lookup("Carrier Pigeon"); err == nil {
		t.Fatal("unknown technique resolved")
	}
}

// assertSameResults compares two evaluation outputs field-exactly — the
// parallel engine must be byte-identical to the sequential one.
func assertSameResults(t *testing.T, want, got []*ComboResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("result count %d != %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Combo.Number != got[i].Combo.Number {
			t.Fatalf("combo order differs at %d: %d vs %d", i, got[i].Combo.Number, want[i].Combo.Number)
		}
		if len(want[i].Counters) != len(got[i].Counters) {
			t.Fatalf("combo %d technique count %d != %d", i, len(got[i].Counters), len(want[i].Counters))
		}
		for name, w := range want[i].Counters {
			g, ok := got[i].Counters[name]
			if !ok {
				t.Fatalf("combo %d missing technique %q", i, name)
			}
			if g.Packets != w.Packets || g.PacketErrs != w.PacketErrs ||
				g.Chips != w.Chips || g.ChipErrs != w.ChipErrs {
				t.Fatalf("combo %d technique %q counters differ: %+v vs %+v", i, name, g, w)
			}
			if g.HasMSE() != w.HasMSE() || g.MSE() != w.MSE() { //vvdlint:bitexact -- parallel evaluation is byte-identical to sequential
				t.Fatalf("combo %d technique %q MSE differs: %v vs %v", i, name, g.MSE(), w.MSE())
			}
		}
	}
}

// TestEvaluateParallelMatchesSequential is the determinism contract of the
// worker pool: Workers=1 and Workers=8 must produce identical ComboResults
// over all 14 techniques. Run under -race this also exercises the
// singleflight model caches, shared reception preparation and per-task
// estimator clones.
func TestEvaluateParallelMatchesSequential(t *testing.T) {
	e := sharedEngine(t)
	origWorkers := e.P.Workers
	defer func() { e.P.Workers = origWorkers }()

	e.P.Workers = 1
	seq, err := e.Evaluate(nil) // nil = all 14 techniques
	if err != nil {
		t.Fatal(err)
	}
	e.P.Workers = 8
	par, err := e.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, seq, par)
}

// TestEvaluateComboMatchesParallel pins the single-combo sequential API to
// the fan-out path.
func TestEvaluateComboMatchesParallel(t *testing.T) {
	e := sharedEngine(t)
	cb := e.Combos()[0]
	techs := []string{core.TechStandard, core.TechKalmanAR5, core.TechCombinedKalman, core.TechVVDCurrent}
	single, err := e.EvaluateCombo(cb, techs)
	if err != nil {
		t.Fatal(err)
	}
	origWorkers := e.P.Workers
	defer func() { e.P.Workers = origWorkers }()
	e.P.Workers = 4
	fan, err := e.Evaluate(techs)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, []*ComboResult{single}, fan[:1])
}

func TestEvaluateUnknownTechniqueFails(t *testing.T) {
	e := sharedEngine(t)
	if _, err := e.Evaluate([]string{"Carrier Pigeon"}); err == nil {
		t.Fatal("unknown technique accepted by Evaluate")
	}
	if _, err := e.EvaluateCombo(e.Combos()[0], []string{"Carrier Pigeon"}); err == nil {
		t.Fatal("unknown technique accepted by EvaluateCombo")
	}
}

// TestRegisterCustomTechnique shows the registry's extension point: a new
// technique is one Register call, no engine changes.
func TestRegisterCustomTechnique(t *testing.T) {
	const name = "True CIR Oracle (test)"
	Register(name, func(e *Engine, cb dataset.Combination) (Estimator, error) {
		return staticEstimator{name: name, est: func(pkt *dataset.Packet) ([]complex128, Availability) {
			return pkt.TrueCIR, Available
		}}, nil
	})
	e := sharedEngine(t)
	res, err := e.EvaluateCombo(e.Combos()[0], []string{name, core.TechStandard})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters[name]
	if c == nil || c.Packets == 0 {
		t.Fatal("custom technique produced no packets")
	}
	if !c.HasMSE() {
		t.Fatal("custom technique should score MSE")
	}
}

// TestSkipOnlyTechniqueOmitted pins the original engine's reporting rule:
// a technique that never produced a countable packet is left out of the
// result instead of surfacing as a zero-error counter in BoxOver.
func TestSkipOnlyTechniqueOmitted(t *testing.T) {
	const name = "Always Skip (test)"
	Register(name, func(e *Engine, cb dataset.Combination) (Estimator, error) {
		return staticEstimator{name: name, est: func(pkt *dataset.Packet) ([]complex128, Availability) {
			return nil, Skip
		}}, nil
	})
	e := sharedEngine(t)
	res, err := e.EvaluateCombo(e.Combos()[0], []string{name, core.TechStandard})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Counters[name]; ok {
		t.Fatal("skip-only technique reported a counter")
	}
	if _, ok := res.Counters[core.TechStandard]; !ok {
		t.Fatal("standard decoding missing")
	}
	fan, err := e.Evaluate([]string{name, core.TechStandard})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fan[0].Counters[name]; ok {
		t.Fatal("skip-only technique reported a counter in Evaluate")
	}
}

// TestKalmanForReturnsClones is the aliasing-bug regression test: two
// callers must never share filter state.
func TestKalmanForReturnsClones(t *testing.T) {
	e := sharedEngine(t)
	cb := e.Combos()[0]
	k1, err := e.KalmanFor(cb, 5)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := e.KalmanFor(cb, 5)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("KalmanFor handed out a shared instance")
	}
	// Advancing one clone must not leak into a later clone: interleaved
	// figures each see a pristine filter.
	for k := 0; k < 4; k++ {
		if err := k1.Update(e.Campaign.TestPackets(cb)[k].PerfectAligned); err != nil {
			t.Fatal(err)
		}
	}
	k3, err := e.KalmanFor(cb, 5)
	if err != nil {
		t.Fatal(err)
	}
	if k3.Seen() != 0 {
		t.Fatalf("fresh clone has seen %d updates (cache corrupted)", k3.Seen())
	}
}

package experiments

import (
	"fmt"
	"math/cmplx"
	"math/rand/v2"
	"strings"

	"vvd/internal/channel"
	"vvd/internal/core"
	"vvd/internal/dataset"
	"vvd/internal/estimate"
	"vvd/internal/metrics"
	"vvd/internal/phy"
	"vvd/internal/report"
	"vvd/internal/room"
)

// Table1 renders the qualitative technique comparison (paper Table 1).
func Table1() string {
	var b strings.Builder
	b.WriteString("Table 1: Comparison of channel estimation techniques\n")
	fmt.Fprintf(&b, "%-12s %-9s %-9s %-8s\n", "Technique", "Reliable", "Scalable", "Dynamic")
	rows := [][4]string{
		{"Blind", "no", "yes", "yes"},
		{"Pilot", "yes", "no", "yes"},
		{"Time-Series", "yes", "-", "no"},
		{"VVD", "yes", "yes", "yes"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-9s %-9s %-8s\n", r[0], r[1], r[2], r[3])
	}
	return b.String()
}

// Table2 renders the set combinations actually used by a campaign.
func Table2(c *dataset.Campaign, max int) string {
	var b strings.Builder
	b.WriteString("Table 2: set combinations (training | validation | test | test packets)\n")
	for _, cb := range dataset.CombinationsFor(len(c.Sets), max) {
		fmt.Fprintf(&b, "combination %2d: train %v  val %d  test %d  packets %d\n",
			cb.Number, cb.Training, cb.Val, cb.Test, len(c.Sets[cb.Test-1].Packets))
	}
	return b.String()
}

// Fig5Result holds the hypothesis-testing data of the paper's Fig. 5: the
// per-tap magnitudes and (phase-corrected) constellation points of three
// channel estimates — a control displacement, a different displacement
// (hypothesis 1) and a repeat of the control displacement at a later time
// (hypothesis 2).
type Fig5Result struct {
	Labels        [3]string
	TapsAbs       [3][]float64
	Constellation [3][]complex128
	// DistControlH1 and DistControlH2 are the Euclidean distances between
	// the control estimate and the two test estimates; hypothesis testing
	// passes when DistControlH2 << DistControlH1.
	DistControlH1 float64
	DistControlH2 float64
}

// RunFig5 performs the paper's §3.1 hypothesis test on the simulated
// testbed: same displacement at two different times versus a different
// displacement, with the crystal mean phase shift corrected via Eq. 8
// before comparison.
func RunFig5(seed uint64) (*Fig5Result, error) {
	lab := room.DefaultLab()
	g := channel.NewGeometry(lab, phy.Wavelength)
	model := channel.NewModel(g, phy.SampleRate)
	rx := estimate.NewReceiver(estimate.DefaultConfig())
	mod := phy.NewModulator()

	control := room.DefaultHuman(room.Vec3{X: 4.0, Y: 3.6}) // near-LoS, equidistant
	moved := room.DefaultHuman(room.Vec3{X: 5.6, Y: 2.95})  // in front of the receiver
	repeat := room.DefaultHuman(room.Vec3{X: 4.0, Y: 3.6})  // same displacement, later take

	estimateAt := func(h room.Human, s uint64) ([]complex128, error) {
		_, txWave, _, err := buildTxForFig(mod)
		if err != nil {
			return nil, err
		}
		link := channel.NewLink(model, channel.DefaultImpairments(), rand.New(rand.NewPCG(s, s^0xbeef)))
		rec := link.Transmit(txWave, h)
		rxc, _ := rx.CorrectCFO(rec.Waveform)
		return rx.EstimateGroundTruth(rxc, txWave)
	}
	hc, err := estimateAt(control, seed)
	if err != nil {
		return nil, err
	}
	h1, err := estimateAt(moved, seed+1)
	if err != nil {
		return nil, err
	}
	h2, err := estimateAt(repeat, seed+2)
	if err != nil {
		return nil, err
	}
	// Correct the mean phase shift of each estimate relative to control
	// (Eq. 8) — the paper observes the crystal offset is a common rotation.
	h1a := estimate.AlignPhase(h1, hc)
	h2a := estimate.AlignPhase(h2, hc)

	res := &Fig5Result{
		Labels: [3]string{"Control", "Hypothesis 1 (moved)", "Hypothesis 2 (same place)"},
	}
	for i, h := range [][]complex128{hc, h1a, h2a} {
		abs := make([]float64, len(h))
		for j, c := range h {
			abs[j] = cmplx.Abs(c)
		}
		res.TapsAbs[i] = abs
		res.Constellation[i] = h
	}
	res.DistControlH1 = distance(hc, h1a)
	res.DistControlH2 = distance(hc, h2a)
	return res, nil
}

func buildTxForFig(mod *phy.Modulator) (*phy.PPDU, []complex128, []byte, error) {
	return dataset.BuildTx(mod, 1, 64)
}

func distance(a, b []complex128) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += real(d)*real(d) + imag(d)*imag(d)
	}
	return s
}

// Render renders Fig. 5 as text.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 5: complex channel tap coefficients (hypothesis testing)\n")
	fmt.Fprintf(&b, "%-28s", "tap |h|")
	for t := 1; t <= len(r.TapsAbs[0]); t++ {
		fmt.Fprintf(&b, " %8d", t)
	}
	b.WriteByte('\n')
	for i, label := range r.Labels {
		fmt.Fprintf(&b, "%-28s", label)
		for _, v := range r.TapsAbs[i] {
			fmt.Fprintf(&b, " %8.2e", v)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "‖control − moved‖²     = %.3e (hypothesis 1: displacement changes MPCs)\n", r.DistControlH1)
	fmt.Fprintf(&b, "‖control − same place‖² = %.3e (hypothesis 2: same displacement ⇒ similar MPCs)\n", r.DistControlH2)
	return b.String()
}

// Fig11Result compares the variants of VVD and Kalman (paper Fig. 11).
type Fig11Result struct {
	VVD    map[string]metrics.BoxStats
	Kalman map[string]metrics.BoxStats
}

// VVDVariants and KalmanVariants in plot order.
var (
	VVDVariants    = []string{core.TechVVD100msFuture, core.TechVVD33msFuture, core.TechVVDCurrent}
	KalmanVariants = []string{core.TechKalmanAR1, core.TechKalmanAR5, core.TechKalmanAR20}
)

// RunFig11 evaluates the VVD and Kalman variants' PER over the engine's
// combinations.
func RunFig11(e *Engine) (*Fig11Result, error) {
	techs := append(append([]string{}, VVDVariants...), KalmanVariants...)
	results, err := e.Evaluate(techs)
	if err != nil {
		return nil, err
	}
	box, err := BoxOver(results, "per")
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{VVD: map[string]metrics.BoxStats{}, Kalman: map[string]metrics.BoxStats{}}
	for _, name := range VVDVariants {
		if s, ok := box[name]; ok {
			res.VVD[name] = s
		}
	}
	for _, name := range KalmanVariants {
		if s, ok := box[name]; ok {
			res.Kalman[name] = s
		}
	}
	return res, nil
}

// Render renders Fig. 11 as two text tables.
func (r *Fig11Result) Render() string {
	return metrics.Table("Fig. 11a: PER of VVD variants", VVDVariants, r.VVD) +
		metrics.Table("Fig. 11b: PER of Kalman variants", KalmanVariants, r.Kalman)
}

// OverallResult bundles Figs. 12–14: PER, CER and MSE box statistics of
// the plotted techniques over the set combinations.
type OverallResult struct {
	PER map[string]metrics.BoxStats
	CER map[string]metrics.BoxStats
	MSE map[string]metrics.BoxStats
	Raw []*ComboResult
}

// RunFig12to14 evaluates the overall comparison.
func RunFig12to14(e *Engine) (*OverallResult, error) {
	results, err := e.Evaluate(core.Fig12Techniques)
	if err != nil {
		return nil, err
	}
	per, err := BoxOver(results, "per")
	if err != nil {
		return nil, err
	}
	cer, err := BoxOver(results, "cer")
	if err != nil {
		return nil, err
	}
	mse, err := BoxOver(results, "mse")
	if err != nil {
		return nil, err
	}
	return &OverallResult{PER: per, CER: cer, MSE: mse, Raw: results}, nil
}

// Render renders Figs. 12–14 as text tables plus ASCII box plots on a
// shared log axis (the visual form of the paper's figures).
func (r *OverallResult) Render() string {
	mseOrder := []string{
		core.TechPrev500ms, core.TechPrev100ms, core.TechKalmanAR20, core.TechVVDCurrent,
		core.TechCombinedKalman, core.TechCombinedVVD, core.TechPreambleGenie,
	}
	return metrics.Table("Fig. 12: PER of all estimation techniques", core.Fig12Techniques, r.PER) +
		report.BoxPlot("Fig. 12 (box plot)", core.Fig12Techniques, r.PER, 60) +
		"\n" + metrics.Table("Fig. 13: CER of all estimation techniques", core.Fig12Techniques, r.CER) +
		report.BoxPlot("Fig. 13 (box plot)", core.Fig12Techniques, r.CER, 60) +
		"\n" + metrics.Table("Fig. 14: MSE of all estimation techniques", mseOrder, r.MSE) +
		report.BoxPlot("Fig. 14 (box plot)", mseOrder, r.MSE, 60)
}

// Fig15Point is one packet of the decode timeline.
type Fig15Point struct {
	Time    float64
	OK      bool
	Blocked bool // whether the LoS was shadowed at transmit time
}

// RunFig15 decodes a window of packets with VVD-Current on a scripted
// trajectory that repeatedly crosses the line of sight, reproducing the
// bursty error pattern of the paper's Fig. 15.
func RunFig15(e *Engine, window int) ([]Fig15Point, error) {
	combos := e.Combos()
	if len(combos) == 0 {
		return nil, fmt.Errorf("experiments: campaign too small for any combination")
	}
	cb := combos[0]
	vvd, err := e.VVDFor(cb, dataset.LagCurrent)
	if err != nil {
		return nil, err
	}
	test := e.Campaign.TestPackets(cb)
	if window <= 0 || window > len(test) {
		window = len(test)
	}
	rx := e.Campaign.Receiver
	losA, losB := e.Campaign.Room.TX, e.Campaign.Room.RX
	var out []Fig15Point
	for _, pkt := range test[:window] {
		ppdu, _, txChips, rec, err := e.Campaign.Reception(cb.Test, pkt.Index)
		if err != nil {
			return nil, err
		}
		rxc, _ := rx.CorrectCFO(rec.Waveform)
		h, err := vvd.Estimate(pkt.Images[dataset.LagCurrent])
		if err != nil {
			return nil, err
		}
		dec := rx.Decode(rxc, ppdu, txChips, h)
		human := room.DefaultHuman(pkt.Pos)
		d := room.SegmentDistanceToVertical(losA, losB, human.Pos.X, human.Pos.Y, human.Pos.Z, human.Pos.Z+human.Height)
		out = append(out, Fig15Point{
			Time:    pkt.Time,
			OK:      dec.PacketOK,
			Blocked: d < human.Radius+0.2,
		})
	}
	return out, nil
}

// RenderFig15 renders the timeline as a success/fail strip.
func RenderFig15(points []Fig15Point) string {
	var b strings.Builder
	b.WriteString("Fig. 15: time versus decoding performance (VVD-Current; '#'=fail, '.'=success, capital letters mark LoS blockage)\n")
	for _, p := range points {
		switch {
		case !p.OK && p.Blocked:
			b.WriteByte('B') // blocked and failed
		case !p.OK:
			b.WriteByte('#')
		case p.Blocked:
			b.WriteByte('o') // blocked but survived
		default:
			b.WriteByte('.')
		}
	}
	b.WriteByte('\n')
	fails := 0
	for _, p := range points {
		if !p.OK {
			fails++
		}
	}
	fmt.Fprintf(&b, "%d/%d packets failed\n", fails, len(points))
	return b.String()
}

// AgingResult holds Figs. 16–17: MSE and PER of aged estimates.
type AgingResult struct {
	AgesSeconds []float64
	GenieMSE    []float64
	VVDMSE      []float64
	GeniePER    []float64
	VVDPER      []float64
}

// RunAging reproduces the aging experiments: a packet is decoded (and its
// estimation error measured) using an estimate that is `age` packets old —
// the preamble-genie estimate of the older packet, or the VVD estimate of
// the older packet's image. agesPackets[0] should be 0 ("Original").
func RunAging(e *Engine, agesPackets []int) (*AgingResult, error) {
	combos := e.Combos()
	if len(combos) == 0 {
		return nil, fmt.Errorf("experiments: campaign too small for any combination")
	}
	cb := combos[0]
	vvd, err := e.VVDFor(cb, dataset.LagCurrent)
	if err != nil {
		return nil, err
	}
	test := e.Campaign.TestPackets(cb)
	maxAge := 0
	for _, a := range agesPackets {
		if a > maxAge {
			maxAge = a
		}
	}
	if maxAge >= len(test) {
		return nil, fmt.Errorf("experiments: max age %d ≥ test set size %d", maxAge, len(test))
	}
	rx := e.Campaign.Receiver
	res := &AgingResult{}
	for _, age := range agesPackets {
		var genie, vvdC metrics.Counter
		for k := maxAge; k < len(test); k++ {
			pkt := test[k]
			old := test[k-age]
			ppdu, _, txChips, rec, err := e.Campaign.Reception(cb.Test, pkt.Index)
			if err != nil {
				return nil, err
			}
			rxc, _ := rx.CorrectCFO(rec.Waveform)

			gEst := old.PreambleEst
			dec := rx.Decode(rxc, ppdu, txChips, gEst)
			genie.AddPacket(dec.PacketOK, dec.ChipErrors, dec.PSDUChips)
			genie.AddMSE(metrics.SqError(estimate.AlignPhase(gEst, pkt.Perfect), pkt.Perfect), len(pkt.Perfect))

			vEst, err := vvd.Estimate(old.Images[dataset.LagCurrent])
			if err != nil {
				return nil, err
			}
			dec = rx.Decode(rxc, ppdu, txChips, vEst)
			vvdC.AddPacket(dec.PacketOK, dec.ChipErrors, dec.PSDUChips)
			vvdC.AddMSE(metrics.SqError(estimate.AlignPhase(vEst, pkt.Perfect), pkt.Perfect), len(pkt.Perfect))
		}
		res.AgesSeconds = append(res.AgesSeconds, float64(age)*dataset.PacketInterval)
		res.GenieMSE = append(res.GenieMSE, genie.MSE())
		res.VVDMSE = append(res.VVDMSE, vvdC.MSE())
		res.GeniePER = append(res.GeniePER, genie.PER())
		res.VVDPER = append(res.VVDPER, vvdC.PER())
	}
	return res, nil
}

// Render renders Figs. 16–17 as a text table plus log-scale curves.
func (r *AgingResult) Render() string {
	var b strings.Builder
	b.WriteString("Figs. 16–17: aging effect on MSE and PER\n")
	fmt.Fprintf(&b, "%10s %12s %12s %12s %12s\n", "age (s)", "genie MSE", "VVD MSE", "genie PER", "VVD PER")
	labels := make([]string, len(r.AgesSeconds))
	for i, age := range r.AgesSeconds {
		fmt.Fprintf(&b, "%10.1f %12.3e %12.3e %12.3e %12.3e\n",
			age, r.GenieMSE[i], r.VVDMSE[i], r.GeniePER[i], r.VVDPER[i])
		labels[i] = fmt.Sprintf("%.1f", age)
	}
	b.WriteString(report.LinePlot("Fig. 16: MSE vs estimate age (s)", labels, []report.Series{
		{Name: "Preamble Genie", Values: r.GenieMSE},
		{Name: "VVD", Values: r.VVDMSE},
	}, 9))
	b.WriteString(report.LinePlot("Fig. 17: PER vs estimate age (s)", labels, []report.Series{
		{Name: "Preamble Genie", Values: r.GeniePER},
		{Name: "VVD", Values: r.VVDPER},
	}, 9))
	return b.String()
}

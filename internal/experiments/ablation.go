package experiments

import (
	"fmt"
	"strings"

	"vvd/internal/core"
	"vvd/internal/dataset"
	"vvd/internal/estimate"
	"vvd/internal/metrics"
	"vvd/internal/nn"
)

// AblationRow is one configuration's outcome in an ablation study.
type AblationRow struct {
	Name string
	MSE  float64 // estimation MSE on the test set (0 if not applicable)
	PER  float64
	CER  float64
}

// AblationResult is a named list of ablation rows.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// Render renders the study as a text table.
func (a *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-36s %12s %12s %12s\n", a.Title, "configuration", "MSE", "PER", "CER")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-36s %12.3e %12.3e %12.3e\n", r.Name, r.MSE, r.PER, r.CER)
	}
	return b.String()
}

// evalVVDConfig trains a VVD with the given training config on the first
// combination and measures test-set MSE/PER/CER.
func (e *Engine) evalVVDConfig(name string, cfg core.TrainConfig) (AblationRow, error) {
	cb := e.Combos()[0]
	v, _, err := core.Train(e.Campaign, cb, dataset.LagCurrent, cfg)
	if err != nil {
		return AblationRow{}, fmt.Errorf("experiments: ablation %q: %w", name, err)
	}
	return e.measureEstimator(name, cb, func(pkt *dataset.Packet) ([]complex128, error) {
		return v.Estimate(pkt.Images[dataset.LagCurrent])
	})
}

// measureEstimator decodes the combination's test set with a per-packet
// estimate source.
func (e *Engine) measureEstimator(name string, cb dataset.Combination, est func(*dataset.Packet) ([]complex128, error)) (AblationRow, error) {
	rx := e.Campaign.Receiver
	var c metrics.Counter
	test := e.Campaign.TestPackets(cb)
	for k, pkt := range test {
		if k < e.P.SkipPackets {
			continue
		}
		h, err := est(pkt)
		if err != nil {
			return AblationRow{}, err
		}
		ppdu, _, txChips, rec, err := e.Campaign.Reception(cb.Test, pkt.Index)
		if err != nil {
			return AblationRow{}, err
		}
		rxc, _ := rx.CorrectCFO(rec.Waveform)
		dec := rx.Decode(rxc, ppdu, txChips, h)
		c.AddPacket(dec.PacketOK, dec.ChipErrors, dec.PSDUChips)
		if h != nil {
			c.AddMSE(metrics.SqError(estimate.AlignPhase(h, pkt.Perfect), pkt.Perfect), len(pkt.Perfect))
		}
	}
	return AblationRow{Name: name, MSE: c.MSE(), PER: c.PER(), CER: c.CER()}, nil
}

// RunAblationPooling compares average against max pooling (paper §4: avg
// pooling was slightly better).
func RunAblationPooling(e *Engine) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: pooling kind (paper §4)"}
	for _, kind := range []struct {
		name string
		k    nn.PoolKind
	}{{"average pooling", nn.AvgPool}, {"max pooling", nn.MaxPool}} {
		cfg := e.P.Train
		cfg.Arch.Pool = kind.k
		row, err := e.evalVVDConfig(kind.name, cfg)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunAblationDense compares the Fig. 8 hidden dense layer against removing
// it (paper §4: removing it was slightly worse).
func RunAblationDense(e *Engine) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: hidden dense layer (paper §4)"}
	with := e.P.Train
	row, err := e.evalVVDConfig("with dense layer", with)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	without := e.P.Train
	without.Arch.SkipDense = true
	row, err = e.evalVVDConfig("without dense layer", without)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// RunAblationNormalization compares the paper's CIR normalization against
// training on raw (tiny-magnitude) targets.
func RunAblationNormalization(e *Engine) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: CIR normalization of training targets (paper §4)"}
	norm := e.P.Train
	row, err := e.evalVVDConfig("normalized targets", norm)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	raw := e.P.Train
	raw.NormOverride = 1
	row, err = e.evalVVDConfig("raw targets (no normalization)", raw)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// RunAblationEqualizerTaps sweeps the ZF equalizer length L (Eq. 6-7)
// decoding with the ground-truth estimate.
func RunAblationEqualizerTaps(e *Engine, taps []int) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: ZF equalizer tap count L (Eq. 6-7)"}
	cb := e.Combos()[0]
	orig := e.Campaign.Receiver.Cfg.EqTaps
	defer func() { e.Campaign.Receiver.Cfg.EqTaps = orig }()
	for _, l := range taps {
		e.Campaign.Receiver.Cfg.EqTaps = l
		row, err := e.measureEstimator(fmt.Sprintf("L = %d", l), cb, func(pkt *dataset.Packet) ([]complex128, error) {
			return pkt.Perfect, nil
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunAblationPhaseCorrection measures the Eq. 8 mean phase correction by
// decoding VVD estimates with and without it.
func RunAblationPhaseCorrection(e *Engine) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: Eq. 8 mean phase correction at decode"}
	cb := e.Combos()[0]
	v, err := e.VVDFor(cb, dataset.LagCurrent)
	if err != nil {
		return nil, err
	}
	src := func(pkt *dataset.Packet) ([]complex128, error) {
		return v.Estimate(pkt.Images[dataset.LagCurrent])
	}
	row, err := e.measureEstimator("with phase correction", cb, src)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	e.Campaign.Receiver.Cfg.SkipPhaseCorrection = true
	defer func() { e.Campaign.Receiver.Cfg.SkipPhaseCorrection = false }()
	row, err = e.measureEstimator("without phase correction", cb, src)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// RunAblationCIRTaps sweeps the estimated FIR length N (the paper uses 11;
// the choice depends on the channel's excess delay and sample rate, §2.1).
func RunAblationCIRTaps(e *Engine, taps []int) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: channel estimate tap count N (Eq. 4-5)"}
	cb := e.Combos()[0]
	rx := e.Campaign.Receiver
	orig := rx.Cfg.CIRTaps
	defer func() { rx.Cfg.CIRTaps = orig }()
	for _, n := range taps {
		rx.Cfg.CIRTaps = n
		// Recompute the ground-truth estimate at this tap count per packet.
		row, err := e.measureEstimatorRecomputed(fmt.Sprintf("N = %d", n), cb, n)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// measureEstimatorRecomputed decodes with an LS estimate recomputed at the
// given tap count from the regenerated waveform.
func (e *Engine) measureEstimatorRecomputed(name string, cb dataset.Combination, taps int) (AblationRow, error) {
	rx := e.Campaign.Receiver
	var c metrics.Counter
	test := e.Campaign.TestPackets(cb)
	for k, pkt := range test {
		if k < e.P.SkipPackets {
			continue
		}
		ppdu, txWave, txChips, rec, err := e.Campaign.Reception(cb.Test, pkt.Index)
		if err != nil {
			return AblationRow{}, err
		}
		rxc, _ := rx.CorrectCFO(rec.Waveform)
		// A longer FIR hypothesis needs a longer observation window than
		// the true channel produced; pad with zeros (no signal there).
		if need := len(txWave) + taps - 1; len(rxc) < need {
			rxc = append(rxc, make([]complex128, need-len(rxc))...)
		}
		h, err := estimate.LS(txWave, rxc, taps)
		if err != nil {
			return AblationRow{}, err
		}
		dec := rx.Decode(rxc, ppdu, txChips, h)
		c.AddPacket(dec.PacketOK, dec.ChipErrors, dec.PSDUChips)
	}
	return AblationRow{Name: name, PER: c.PER(), CER: c.CER()}, nil
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"vvd/internal/core"
	"vvd/internal/scenario"
)

// ScenarioResult is the outcome of one scenario's full evaluation inside a
// cross-scenario sweep: the per-combination counters plus timing.
type ScenarioResult struct {
	Name        string
	Occupants   int // occupants actually configured (0 = empty room)
	GenSeconds  float64
	EvalSeconds float64
	Results     []*ComboResult
}

// TechSummary aggregates one technique over every combination of a
// scenario.
type TechSummary struct {
	// MSE averages each combination's Eq. 9 MSE with equal weight — the
	// same each-combination-is-one-sample treatment as the paper's box
	// plots (BoxOver) — while Availability and PER pool packets across
	// combinations.
	MSE          float64
	HasMSE       bool
	Availability float64 // fraction of counted packets with an estimate
	PER          float64
}

// Summary flattens the per-combination counters into one row per
// technique: packet counts pool across combinations, MSE averages over
// combinations (see TechSummary).
func (sr *ScenarioResult) Summary() map[string]TechSummary {
	type agg struct {
		packets, errs, unavail int
	}
	pool := map[string]*agg{}
	mseOf := map[string][]float64{}
	for _, r := range sr.Results {
		for name, c := range r.Counters {
			a := pool[name]
			if a == nil {
				a = &agg{}
				pool[name] = a
			}
			a.packets += c.Packets
			a.errs += c.PacketErrs
			a.unavail += c.Unavail
			if c.HasMSE() {
				mseOf[name] = append(mseOf[name], c.MSE())
			}
		}
	}
	out := map[string]TechSummary{}
	for name, a := range pool {
		s := TechSummary{}
		if a.packets > 0 {
			s.PER = float64(a.errs) / float64(a.packets)
			s.Availability = 1 - float64(a.unavail)/float64(a.packets)
		}
		if v := mseOf[name]; len(v) > 0 {
			var sum float64
			for _, m := range v {
				sum += m
			}
			s.MSE = sum / float64(len(v))
			s.HasMSE = true
		}
		out[name] = s
	}
	return out
}

// SweepTechniques is the compact technique set a cross-scenario sweep
// evaluates by default: the realistic receiver (preamble), the two
// predictive families the paper compares (Kalman, VVD) and their combined
// flows, bracketed by the ground truth.
var SweepTechniques = []string{
	core.TechPreamble,
	core.TechKalmanAR20,
	core.TechVVDCurrent,
	core.TechCombinedKalman,
	core.TechCombinedVVD,
	core.TechGroundTruth,
}

// NewSweepEngine returns an engine for cross-scenario sweeps only: it owns
// no campaign (and no model caches) of its own, because EvaluateScenarios
// generates a sub-engine per scenario. Calling the single-campaign entry
// points (Evaluate, EvaluateCombo, the figure runners) on a sweep engine
// is a bug.
func NewSweepEngine(p Params) *Engine {
	return &Engine{P: p}
}

// EvaluateScenarios runs the full generate→train→evaluate pipeline once per
// named scenario (nil names = every registered preset) and returns one
// result per scenario, in the given order. The engine's own parameters are
// the base: each scenario rewrites only the world-shaping campaign fields,
// so sets/packets/seed/training/worker knobs apply uniformly and results
// are comparable across scenarios. nil techniques selects SweepTechniques.
//
// Like Evaluate, the sweep is deterministic in Params.Workers: generation
// and evaluation are byte-identical at any fan-out width (pinned by
// TestEvaluateScenariosParallelMatchesSequential).
func (e *Engine) EvaluateScenarios(names []string, techniques []string) ([]*ScenarioResult, error) {
	if names == nil {
		names = scenario.Names()
	}
	if techniques == nil {
		techniques = SweepTechniques
	}
	// Timing is injected (Params.Clock), never read ambiently: with no
	// clock every timestamp is the zero Time and the recorded timings are
	// 0, so the sweep result is a pure function of the seed.
	clock := e.P.Clock
	if clock == nil {
		clock = func() time.Time { return time.Time{} }
	}
	out := make([]*ScenarioResult, 0, len(names))
	for _, name := range names {
		s, err := scenario.Lookup(name)
		if err != nil {
			return nil, err
		}
		p := e.P
		p.Campaign = s.Apply(e.P.Campaign)
		start := clock()
		sub, err := NewEngine(p)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %q: %w", name, err)
		}
		mid := clock()
		res, err := sub.Evaluate(techniques)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %q: %w", name, err)
		}
		out = append(out, &ScenarioResult{
			Name:        name,
			Occupants:   p.Campaign.NumOccupants(),
			GenSeconds:  mid.Sub(start).Seconds(),
			EvalSeconds: clock().Sub(mid).Seconds(),
			Results:     res,
		})
	}
	return out, nil
}

// RenderScenarioTable formats a sweep as the occupancy-comparison table:
// one block per scenario, one row per technique, MSE / availability / PER
// pooled over the scenario's combinations. Techniques render in the given
// order (nil = SweepTechniques).
func RenderScenarioTable(results []*ScenarioResult, techniques []string) string {
	if techniques == nil {
		techniques = SweepTechniques
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-scenario sweep: MSE / availability / PER per technique\n")
	fmt.Fprintf(&b, "%-18s %3s  %-28s %10s %7s %8s\n", "scenario", "occ", "technique", "mse", "avail", "per")
	for _, sr := range results {
		sum := sr.Summary()
		name := sr.Name
		for _, tech := range techniques {
			ts, ok := sum[tech]
			if !ok {
				continue
			}
			mse := "-"
			if ts.HasMSE {
				mse = fmt.Sprintf("%.3e", ts.MSE)
			}
			fmt.Fprintf(&b, "%-18s %3d  %-28s %10s %7.3f %8.4f\n",
				name, sr.Occupants, tech, mse, ts.Availability, ts.PER)
			name = "" // print the scenario label once per block
		}
		// Timing only renders when a clock was injected (Params.Clock), so
		// the default render is a pure function of the sweep result.
		if sr.GenSeconds != 0 || sr.EvalSeconds != 0 {
			fmt.Fprintf(&b, "%-18s      (generated in %.1fs, evaluated in %.1fs)\n", "", sr.GenSeconds, sr.EvalSeconds)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

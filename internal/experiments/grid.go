package experiments

import (
	"fmt"
	"strings"

	"vvd/internal/scenario"
)

// GridResult is a multi-axis sweep reshaped onto its two axes: Cells[i][j]
// is the full scenario evaluation of row i × column j, and the label slices
// carry the combinator fragments ("occ4", "snr13dB") that name each line of
// the rendered table.
type GridResult struct {
	RowAxis, ColAxis string
	RowLabels        []string
	ColLabels        []string
	Cells            [][]*ScenarioResult
}

// EvaluateGrid expands the grid's cross product into composed scenarios and
// evaluates every cell through the ordinary scenario sweep, so a grid cell
// is bit-identical to evaluating its composed scenario by name. The
// row-major expansion order and EvaluateScenarios' determinism in
// Params.Workers carry over: the reshaped result (and hence the rendered
// table) is byte-identical at any fan-out width.
func (e *Engine) EvaluateGrid(g scenario.Grid, techniques []string) (*GridResult, error) {
	if len(g.Rows) == 0 || len(g.Cols) == 0 {
		return nil, fmt.Errorf("experiments: grid needs at least one row and one column combinator")
	}
	cells := g.Scenarios()
	names := make([]string, len(cells))
	for i, s := range cells {
		names[i] = s.Name
	}
	flat, err := e.EvaluateScenarios(names, techniques)
	if err != nil {
		return nil, err
	}
	gr := &GridResult{
		RowAxis:   g.RowAxis(),
		ColAxis:   g.ColAxis(),
		RowLabels: make([]string, len(g.Rows)),
		ColLabels: make([]string, len(g.Cols)),
		Cells:     make([][]*ScenarioResult, len(g.Rows)),
	}
	for i, c := range g.Rows {
		gr.RowLabels[i] = c.String()
	}
	for j, c := range g.Cols {
		gr.ColLabels[j] = c.String()
	}
	for i := range g.Rows {
		gr.Cells[i] = flat[i*len(g.Cols) : (i+1)*len(g.Cols)]
	}
	return gr, nil
}

// RenderGridTable formats a grid sweep as one axis-by-axis block per
// technique: rows down, columns across, each cell "MSE/availability" (or
// "-/availability" for techniques without an MSE, like standard decoding).
// The output contains no timings — it is deterministic for a given campaign
// configuration, which is what lets CI diff it as an artifact and the
// parity test compare it byte-for-byte across worker counts.
func RenderGridTable(gr *GridResult, techniques []string) string {
	if techniques == nil {
		techniques = SweepTechniques
	}
	// Widest cell is "d.dde-dd/d.ddd" (14 runes) plus two spacing columns.
	colw := 16
	for _, l := range gr.ColLabels {
		if len(l)+2 > colw {
			colw = len(l) + 2
		}
	}
	roww := len(gr.RowAxis) + len(gr.ColAxis) + 1
	for _, l := range gr.RowLabels {
		if len(l) > roww {
			roww = len(l)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Grid sweep: %s × %s — cell = MSE/availability\n", gr.RowAxis, gr.ColAxis)
	for _, tech := range techniques {
		fmt.Fprintf(&b, "\n%s\n", tech)
		fmt.Fprintf(&b, "%-*s", roww, gr.RowAxis+`\`+gr.ColAxis)
		for _, l := range gr.ColLabels {
			fmt.Fprintf(&b, "%*s", colw, l)
		}
		b.WriteByte('\n')
		for i, rl := range gr.RowLabels {
			fmt.Fprintf(&b, "%-*s", roww, rl)
			for j := range gr.ColLabels {
				sum := gr.Cells[i][j].Summary()
				ts, ok := sum[tech]
				if !ok {
					fmt.Fprintf(&b, "%*s", colw, "-")
					continue
				}
				mse := "-"
				if ts.HasMSE {
					mse = fmt.Sprintf("%.2e", ts.MSE)
				}
				fmt.Fprintf(&b, "%*s", colw, fmt.Sprintf("%s/%.3f", mse, ts.Availability))
			}
			b.WriteByte('\n')
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

package experiments

import (
	"reflect"
	"strings"
	"testing"

	"vvd/internal/core"
	"vvd/internal/dataset"
)

func sweepParams(workers int) Params {
	cfg := dataset.DefaultConfig()
	cfg.Sets = 3
	cfg.PacketsPerSet = 10
	cfg.PSDULen = 24
	cfg.Seed = 99
	train := core.DefaultTrainConfig()
	train.Epochs = 2
	return Params{Campaign: cfg, Combos: 1, Train: train, SkipPackets: 2, Workers: workers}
}

// TestEvaluateScenariosParallelMatchesSequential pins the acceptance bound
// of the scenario engine: the crowded-room-4 sweep is byte-identical at
// Workers=1 and Workers=8 — generation, training and evaluation all
// included. Run under -race in CI it doubles as the race check over the
// multi-occupant pipeline end to end.
func TestEvaluateScenariosParallelMatchesSequential(t *testing.T) {
	techniques := []string{core.TechPreamble, core.TechKalmanAR5, core.TechVVDCurrent}
	names := []string{"crowded-room-4", "empty-room"}
	seq, err := NewSweepEngine(sweepParams(1)).EvaluateScenarios(names, techniques)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewSweepEngine(sweepParams(8)).EvaluateScenarios(names, techniques)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Name != par[i].Name || seq[i].Occupants != par[i].Occupants {
			t.Fatalf("scenario %d metadata differs", i)
		}
		if !reflect.DeepEqual(seq[i].Results, par[i].Results) {
			t.Fatalf("scenario %s: counters differ between workers=1 and workers=8", seq[i].Name)
		}
	}
}

// TestScenarioSweepSummaryAndTable sanity-checks the aggregation and the
// rendered table: every requested technique appears, availability is a
// fraction, and the table names each scenario.
func TestScenarioSweepSummaryAndTable(t *testing.T) {
	techniques := []string{core.TechPreamble, core.TechKalmanAR5}
	results, err := NewSweepEngine(sweepParams(0)).EvaluateScenarios([]string{"paper-default", "low-snr"}, techniques)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range results {
		sum := sr.Summary()
		for _, tech := range techniques {
			ts, ok := sum[tech]
			if !ok {
				t.Fatalf("%s: technique %q missing from summary", sr.Name, tech)
			}
			if ts.Availability < 0 || ts.Availability > 1 {
				t.Fatalf("%s/%s: availability %g outside [0,1]", sr.Name, tech, ts.Availability)
			}
			if ts.PER < 0 || ts.PER > 1 {
				t.Fatalf("%s/%s: PER %g outside [0,1]", sr.Name, tech, ts.PER)
			}
		}
	}
	table := RenderScenarioTable(results, techniques)
	for _, want := range []string{"paper-default", "low-snr", core.TechPreamble} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

// TestEvaluateScenariosUnknownName surfaces a typo before any generation.
func TestEvaluateScenariosUnknownName(t *testing.T) {
	_, err := NewSweepEngine(sweepParams(1)).EvaluateScenarios([]string{"nope"}, []string{core.TechPreamble})
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("expected unknown-scenario error, got %v", err)
	}
}

package experiments

import (
	"strings"
	"sync"
	"testing"

	"vvd/internal/core"
	"vvd/internal/dataset"
	"vvd/internal/nn"
)

// tinyParams keeps engine tests fast: 3 sets, small packets, tiny CNN.
func tinyParams() Params {
	cfg := dataset.DefaultConfig()
	cfg.Sets = 3
	cfg.PacketsPerSet = 24
	cfg.PSDULen = 24
	return Params{
		Campaign: cfg,
		Combos:   1,
		Train: core.TrainConfig{
			Arch:   core.Arch{Conv1: 2, Conv2: 2, Conv3: 4, Conv4: 4, Dense: 16, Pool: nn.AvgPool},
			Epochs: 2, Batch: 8, Workers: 2, Seed: 3, LR: 1e-3,
		},
		SkipPackets: 6,
	}
}

var (
	engineOnce sync.Once
	engineVal  *Engine
	engineErr  error
)

// sharedEngine amortizes campaign generation across tests.
func sharedEngine(t *testing.T) *Engine {
	t.Helper()
	engineOnce.Do(func() {
		engineVal, engineErr = NewEngine(tinyParams())
	})
	if engineErr != nil {
		t.Fatal(engineErr)
	}
	return engineVal
}

func TestEngineCombos(t *testing.T) {
	e := sharedEngine(t)
	combos := e.Combos()
	if len(combos) != 1 {
		t.Fatalf("combos = %d want 1", len(combos))
	}
	if combos[0].Test > 3 || combos[0].Val > 3 {
		t.Fatal("combo references missing sets")
	}
}

func TestEvaluateComboBasicTechniques(t *testing.T) {
	e := sharedEngine(t)
	cb := e.Combos()[0]
	techs := []string{
		core.TechStandard, core.TechGroundTruth, core.TechPreambleGenie,
		core.TechPrev100ms, core.TechPrev500ms, core.TechKalmanAR1,
	}
	res, err := e.EvaluateCombo(cb, techs)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range techs {
		c, ok := res.Counters[name]
		if !ok {
			t.Fatalf("technique %q missing from results", name)
		}
		if c.Packets == 0 {
			t.Fatalf("technique %q decoded no packets", name)
		}
		if per := c.PER(); per < 0 || per > 1 {
			t.Fatalf("technique %q PER %v out of range", name, per)
		}
	}
	// Skip window respected: packets counted = total − skip.
	want := len(e.Campaign.TestPackets(cb)) - e.P.SkipPackets
	if got := res.Counters[core.TechGroundTruth].Packets; got != want {
		t.Fatalf("counted %d packets want %d", got, want)
	}
	// Ground truth cannot be worse than standard decoding in CER.
	gt := res.Counters[core.TechGroundTruth].CER()
	std := res.Counters[core.TechStandard].CER()
	if gt > std+1e-9 && std > 0 {
		t.Fatalf("ground truth CER %v worse than standard %v", gt, std)
	}
	// MSE recorded for estimating techniques but not for ground truth.
	if res.Counters[core.TechGroundTruth].HasMSE() {
		t.Fatal("ground truth should not record MSE against itself")
	}
	if !res.Counters[core.TechPreambleGenie].HasMSE() {
		t.Fatal("genie should record MSE")
	}
}

func TestEvaluateComboVVDAndCombined(t *testing.T) {
	e := sharedEngine(t)
	cb := e.Combos()[0]
	techs := []string{core.TechVVDCurrent, core.TechCombinedVVD, core.TechCombinedKalman, core.TechPreamble}
	res, err := e.EvaluateCombo(cb, techs)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range techs {
		if res.Counters[name] == nil || res.Counters[name].Packets == 0 {
			t.Fatalf("technique %q produced no packets", name)
		}
	}
	// Combined can never lose more packets than pure preamble-based
	// (it decodes everything preamble-based decodes plus the fallbacks).
	comb := res.Counters[core.TechCombinedVVD].PER()
	pre := res.Counters[core.TechPreamble].PER()
	if comb > pre+1e-9 {
		t.Fatalf("combined PER %v worse than preamble-based %v", comb, pre)
	}
}

func TestVVDCacheReuse(t *testing.T) {
	e := sharedEngine(t)
	cb := e.Combos()[0]
	a, err := e.VVDFor(cb, dataset.LagCurrent)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.VVDFor(cb, dataset.LagCurrent)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("VVD not cached")
	}
}

func TestKalmanCacheResets(t *testing.T) {
	e := sharedEngine(t)
	cb := e.Combos()[0]
	k1, err := e.KalmanFor(cb, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := k1.Update(e.Campaign.Sets[0].Packets[0].PerfectAligned); err != nil {
		t.Fatal(err)
	}
	k2, err := e.KalmanFor(cb, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k2.Seen() != 0 {
		t.Fatal("cached Kalman estimator not reset")
	}
}

func TestBoxOver(t *testing.T) {
	e := sharedEngine(t)
	cb := e.Combos()[0]
	res, err := e.EvaluateCombo(cb, []string{core.TechStandard, core.TechGroundTruth})
	if err != nil {
		t.Fatal(err)
	}
	box, err := BoxOver([]*ComboResult{res}, "per")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := box[core.TechStandard]; !ok {
		t.Fatal("BoxOver missing technique")
	}
	if _, err := BoxOver([]*ComboResult{res}, "nope"); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestTable1Content(t *testing.T) {
	out := Table1()
	for _, want := range []string{"Blind", "Pilot", "Time-Series", "VVD", "Reliable"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Content(t *testing.T) {
	e := sharedEngine(t)
	out := Table2(e.Campaign, 0)
	if !strings.Contains(out, "combination") || !strings.Contains(out, "val") {
		t.Fatalf("Table 2 malformed:\n%s", out)
	}
}

func TestFig5Hypotheses(t *testing.T) {
	res, err := RunFig5(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TapsAbs[0]) != 11 {
		t.Fatalf("taps = %d want 11", len(res.TapsAbs[0]))
	}
	// Hypothesis 2: same displacement at a later time is far more similar
	// to the control than a different displacement (hypothesis 1).
	if res.DistControlH2 >= res.DistControlH1 {
		t.Fatalf("hypothesis test failed: same-place dist %v ≥ moved dist %v",
			res.DistControlH2, res.DistControlH1)
	}
	render := res.Render()
	if !strings.Contains(render, "Control") || !strings.Contains(render, "hypothesis 2") {
		t.Fatalf("render malformed:\n%s", render)
	}
}

func TestFig5DominantTapCluster(t *testing.T) {
	// The dominant energy must land on taps 6–8 (1-based), matching the
	// paper's Fig. 5a structure.
	res, err := RunFig5(7)
	if err != nil {
		t.Fatal(err)
	}
	best, idx := 0.0, 0
	for i, v := range res.TapsAbs[0] {
		if v > best {
			best, idx = v, i
		}
	}
	if idx < 5 || idx > 7 {
		t.Fatalf("dominant tap %d (0-based) outside 5..7", idx)
	}
}

func TestRunAgingMonotoneGenie(t *testing.T) {
	e := sharedEngine(t)
	res, err := RunAging(e, []int{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AgesSeconds) != 2 {
		t.Fatalf("ages = %v", res.AgesSeconds)
	}
	// An aged genie estimate cannot beat the fresh one in MSE.
	if res.GenieMSE[1] < res.GenieMSE[0] {
		t.Fatalf("aged genie MSE %v below fresh %v", res.GenieMSE[1], res.GenieMSE[0])
	}
	if !strings.Contains(res.Render(), "age (s)") {
		t.Fatal("aging render malformed")
	}
}

func TestRunAgingTooOld(t *testing.T) {
	e := sharedEngine(t)
	if _, err := RunAging(e, []int{0, 99999}); err == nil {
		t.Fatal("excessive age accepted")
	}
}

func TestRunFig15Timeline(t *testing.T) {
	// Dedicated scripted campaign to guarantee LoS crossings.
	p := tinyParams()
	p.Campaign.Scripted = true
	p.Campaign.PacketsPerSet = 40
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := RunFig15(e, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 30 {
		t.Fatalf("points = %d", len(pts))
	}
	blocked := 0
	for _, pt := range pts {
		if pt.Blocked {
			blocked++
		}
	}
	if blocked == 0 {
		t.Fatal("scripted path never blocked the LoS")
	}
	if !strings.Contains(RenderFig15(pts), "packets failed") {
		t.Fatal("Fig. 15 render malformed")
	}
}

func TestEvaluateRunsAllCombos(t *testing.T) {
	e := sharedEngine(t)
	results, err := e.Evaluate([]string{core.TechStandard})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(e.Combos()) {
		t.Fatalf("results = %d combos = %d", len(results), len(e.Combos()))
	}
}

package experiments

import (
	"strings"
	"testing"

	"vvd/internal/dataset"
)

func TestAblationDespreading(t *testing.T) {
	e := sharedEngine(t)
	res, err := RunAblationDespreading(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	hard, soft := res.Rows[0], res.Rows[1]
	// Soft despreading can only help (same chips, better combining).
	if soft.PER > hard.PER+1e-9 {
		t.Fatalf("soft despreading PER %v worse than hard %v", soft.PER, hard.PER)
	}
	if e.Campaign.Receiver.Cfg.SoftDespreading {
		t.Fatal("receiver config not restored")
	}
}

func TestDecimateImage(t *testing.T) {
	img := make([]float32, dataset.ImagePixels)
	for i := range img {
		img[i] = float32(i)
	}
	out := DecimateImage(img, 4)
	if len(out) != len(img) {
		t.Fatalf("len = %d", len(out))
	}
	// Every 4x4 block must be constant and equal to its top-left pixel.
	cols := 90
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			want := img[(r/4*4)*cols+(c/4*4)]
			if out[r*cols+c] != want { //vvdlint:bitexact -- parallel evaluation is byte-identical to sequential
				t.Fatalf("pixel (%d,%d) = %v want %v", r, c, out[r*cols+c], want)
			}
		}
	}
	// k=1 must copy, not alias.
	cp := DecimateImage(img, 1)
	cp[0] = -1
	if img[0] == -1 {
		t.Fatal("DecimateImage(k=1) aliased input")
	}
}

func TestAblationPrivacy(t *testing.T) {
	e := sharedEngine(t)
	res, err := RunAblationPrivacy(e, []int{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.MSE <= 0 {
			t.Fatalf("row %q missing MSE", r.Name)
		}
	}
	if !strings.Contains(res.Render(), "privacy") {
		t.Fatal("render malformed")
	}
}

func TestScalability(t *testing.T) {
	rows := RunScalability(0.05, 64)
	if len(rows) != 7 { // 1,2,4,...,64
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.VVDPerSecond != 0 {
			t.Fatal("VVD must need zero pilots")
		}
		if i > 0 && r.PilotPerSecond <= rows[i-1].PilotPerSecond {
			t.Fatal("pilot overhead must grow with transmitters")
		}
		if r.CameraInferences != rows[0].CameraInferences { //vvdlint:bitexact -- parallel evaluation is byte-identical to sequential
			t.Fatal("camera cost must be independent of transmitter count")
		}
	}
	if rows[0].PilotPerSecond != 20 {
		t.Fatalf("1 TX at 50 ms coherence = 20 pilots/s, got %v", rows[0].PilotPerSecond)
	}
	out := RenderScalability(rows)
	if !strings.Contains(out, "transmitters") {
		t.Fatal("render malformed")
	}
	// Degenerate coherence falls back to the default.
	if RunScalability(-1, 2)[0].PilotPerSecond != 20 {
		t.Fatal("coherence fallback broken")
	}
}

package experiments

import (
	"vvd/internal/core"
	"vvd/internal/dataset"
	"vvd/internal/kalman"
)

// This file implements the 14 techniques of the paper's evaluation (§5) as
// registry entries. Each implementation is a small, self-contained
// Estimator; the engine never special-cases a technique.

func init() {
	Register(core.TechStandard, func(e *Engine, cb dataset.Combination) (Estimator, error) {
		return staticEstimator{name: core.TechStandard, est: func(pkt *dataset.Packet) ([]complex128, Availability) {
			return nil, Available // nil estimate = standard decoding
		}}, nil
	})
	Register(core.TechGroundTruth, func(e *Engine, cb dataset.Combination) (Estimator, error) {
		return groundTruthEstimator{}, nil
	})
	Register(core.TechPreamble, func(e *Engine, cb dataset.Combination) (Estimator, error) {
		return staticEstimator{name: core.TechPreamble, est: func(pkt *dataset.Packet) ([]complex128, Availability) {
			if !pkt.PreambleDetected {
				// Missed preamble: the packet is assumed erroneous.
				return nil, Unavailable
			}
			return pkt.PreambleEst, Available
		}}, nil
	})
	Register(core.TechPreambleGenie, func(e *Engine, cb dataset.Combination) (Estimator, error) {
		return staticEstimator{name: core.TechPreambleGenie, est: func(pkt *dataset.Packet) ([]complex128, Availability) {
			return pkt.PreambleEst, Available
		}}, nil
	})
	Register(core.TechPrev100ms, previousBuilder(core.TechPrev100ms, 1))
	Register(core.TechPrev500ms, previousBuilder(core.TechPrev500ms, 5))
	Register(core.TechKalmanAR1, KalmanBuilder(core.TechKalmanAR1, 1))
	Register(core.TechKalmanAR5, KalmanBuilder(core.TechKalmanAR5, 5))
	Register(core.TechKalmanAR20, KalmanBuilder(core.TechKalmanAR20, 20))
	Register(core.TechVVDCurrent, VVDBuilder(core.TechVVDCurrent, dataset.LagCurrent))
	Register(core.TechVVD33msFuture, VVDBuilder(core.TechVVD33msFuture, dataset.Lag33ms))
	Register(core.TechVVD100msFuture, VVDBuilder(core.TechVVD100msFuture, dataset.Lag100ms))
	Register(core.TechCombinedVVD, func(e *Engine, cb dataset.Combination) (Estimator, error) {
		v, err := e.VVDFor(cb, dataset.LagCurrent)
		if err != nil {
			return nil, err
		}
		return &combinedVVDEstimator{v: v.Clone()}, nil
	})
	Register(core.TechCombinedKalman, func(e *Engine, cb dataset.Combination) (Estimator, error) {
		k, err := e.KalmanFor(cb, 20)
		if err != nil {
			return nil, err
		}
		return &combinedKalmanEstimator{kal: k}, nil
	})
}

// staticEstimator derives its estimate from the packet record alone.
type staticEstimator struct {
	name string
	est  func(pkt *dataset.Packet) ([]complex128, Availability)
}

func (s staticEstimator) Name() string { return s.name }

func (s staticEstimator) Estimate(k int, pkt *dataset.Packet) ([]complex128, Availability, error) {
	h, av := s.est(pkt)
	return h, av, nil
}

// groundTruthEstimator decodes with the whole-packet LS estimate ("Perfect
// Channel Estimation", paper §5.2). Its MSE against itself is meaningless,
// hence the exemption.
type groundTruthEstimator struct{}

func (groundTruthEstimator) Name() string    { return core.TechGroundTruth }
func (groundTruthEstimator) MSEExempt() bool { return true }

func (groundTruthEstimator) Estimate(k int, pkt *dataset.Packet) ([]complex128, Availability, error) {
	return pkt.Perfect, Available, nil
}

// previousEstimator reuses the aligned perfect estimate of the packet n
// intervals earlier ("100ms/500ms Previous", paper §5.2).
type previousEstimator struct {
	name string
	n    int
	test []*dataset.Packet
}

func previousBuilder(name string, n int) Builder {
	return func(e *Engine, cb dataset.Combination) (Estimator, error) {
		return &previousEstimator{name: name, n: n, test: e.Campaign.TestPackets(cb)}, nil
	}
}

func (p *previousEstimator) Name() string { return p.name }

func (p *previousEstimator) Estimate(k int, pkt *dataset.Packet) ([]complex128, Availability, error) {
	if k < p.n {
		return nil, Skip, nil
	}
	return p.test[k-p.n].PerfectAligned, Available, nil
}

// kalmanEstimator predicts the upcoming packet's CIR with per-tap AR(p)
// Kalman filters and absorbs the perfect estimate after each decode (paper
// appendix). Each instance owns a private clone of the fitted model, so
// parallel runs never share filter state.
type kalmanEstimator struct {
	name string
	kal  *kalman.Estimator
}

// KalmanBuilder returns a Builder for an AR(order) Kalman technique. New
// orders beyond the paper's 1/5/20 are one Register call away.
func KalmanBuilder(name string, order int) Builder {
	return func(e *Engine, cb dataset.Combination) (Estimator, error) {
		k, err := e.KalmanFor(cb, order)
		if err != nil {
			return nil, err
		}
		return &kalmanEstimator{name: name, kal: k}, nil
	}
}

func (ke *kalmanEstimator) Name() string { return ke.name }

func (ke *kalmanEstimator) Estimate(k int, pkt *dataset.Packet) ([]complex128, Availability, error) {
	// Predict advances the filter state and must run on every packet, even
	// during warm-up, to preserve the paper's update/predict cycle.
	pred, err := ke.kal.Predict()
	if err != nil {
		return nil, Skip, err
	}
	if ke.kal.Seen() == 0 {
		return nil, Skip, nil
	}
	return pred, Available, nil
}

func (ke *kalmanEstimator) Observe(k int, pkt *dataset.Packet) error {
	return ke.kal.Update(pkt.PerfectAligned)
}

// vvdEstimator maps the packet's depth image to a CIR with a trained VVD
// variant. The future variants feed the *older* image that predicts this
// packet's channel (paper §5.3).
type vvdEstimator struct {
	name string
	lag  dataset.ImageLag
	v    *core.VVD
}

// VVDBuilder returns a Builder for a VVD variant at the given image lag.
// The trained model comes from the engine's cache (one training run shared
// across goroutines); the instance estimates on a private clone.
func VVDBuilder(name string, lag dataset.ImageLag) Builder {
	return func(e *Engine, cb dataset.Combination) (Estimator, error) {
		v, err := e.VVDFor(cb, lag)
		if err != nil {
			return nil, err
		}
		return &vvdEstimator{name: name, lag: lag, v: v.Clone()}, nil
	}
}

func (ve *vvdEstimator) Name() string { return ve.name }

func (ve *vvdEstimator) Estimate(k int, pkt *dataset.Packet) ([]complex128, Availability, error) {
	h, err := ve.v.Estimate(pkt.Images[ve.lag])
	if err != nil {
		return nil, Skip, err
	}
	return h, Available, nil
}

// combinedVVDEstimator is the Fig. 10 flow with the VVD-Current fallback:
// preamble estimate when detected, blind VVD estimate otherwise.
//
// Combined techniques recompute their base model's per-packet work (a
// second VVD inference here, a second Kalman predict/update chain below)
// instead of sharing the base technique's output. That duplication is the
// price of task isolation: it is what lets every (combination × technique)
// pair run on its own goroutine with bit-reproducible results, and the
// extra work parallelizes away at Workers > 1.
type combinedVVDEstimator struct {
	v *core.VVD
}

func (ce *combinedVVDEstimator) Name() string { return core.TechCombinedVVD }

func (ce *combinedVVDEstimator) Estimate(k int, pkt *dataset.Packet) ([]complex128, Availability, error) {
	h, err := ce.v.Estimate(pkt.Images[dataset.LagCurrent])
	if err != nil {
		return nil, Skip, err
	}
	return core.Combined(pkt.PreambleDetected, pkt.PreambleEst, h), Available, nil
}

// combinedKalmanEstimator is the Fig. 10 flow with the AR(20) Kalman
// fallback.
type combinedKalmanEstimator struct {
	kal *kalman.Estimator
}

func (ce *combinedKalmanEstimator) Name() string { return core.TechCombinedKalman }

func (ce *combinedKalmanEstimator) Estimate(k int, pkt *dataset.Packet) ([]complex128, Availability, error) {
	pred, err := ce.kal.Predict()
	if err != nil {
		return nil, Skip, err
	}
	if ce.kal.Seen() == 0 && !pkt.PreambleDetected {
		return nil, Unavailable, nil
	}
	return core.Combined(pkt.PreambleDetected, pkt.PreambleEst, pred), Available, nil
}

func (ce *combinedKalmanEstimator) Observe(k int, pkt *dataset.Packet) error {
	return ce.kal.Update(pkt.PerfectAligned)
}

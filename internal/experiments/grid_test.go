package experiments

import (
	"strings"
	"testing"

	"vvd/internal/core"
	"vvd/internal/scenario"
)

// tinyGrid is the occupancy × SNR cross product the grid tests evaluate:
// four cells, small enough to train a VVD per cell under -race in CI.
func tinyGrid() scenario.Grid {
	return scenario.Grid{
		Rows: []scenario.Combinator{scenario.Occupancy(1), scenario.Occupancy(2)},
		Cols: []scenario.Combinator{scenario.SNR(7), scenario.SNR(25)},
	}
}

// TestEvaluateGridParallelMatchesSequential pins the grid acceptance bound:
// the rendered occupancy × SNR table is byte-identical at Workers=1 and
// Workers=8 — the grid expansion adds no nondeterminism on top of the
// scenario sweep's parity guarantee.
func TestEvaluateGridParallelMatchesSequential(t *testing.T) {
	techniques := []string{core.TechPreamble, core.TechKalmanAR5}
	seq, err := NewSweepEngine(sweepParams(1)).EvaluateGrid(tinyGrid(), techniques)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewSweepEngine(sweepParams(8)).EvaluateGrid(tinyGrid(), techniques)
	if err != nil {
		t.Fatal(err)
	}
	a, b := RenderGridTable(seq, techniques), RenderGridTable(par, techniques)
	if a != b {
		t.Fatalf("grid table differs between workers=1 and workers=8:\n--- workers=1\n%s\n--- workers=8\n%s", a, b)
	}
}

// TestEvaluateGridShape pins the reshaping contract: cell (i,j) holds the
// evaluation of the scenario composed from row i and column j, and the
// rendered table carries every axis label and technique block.
func TestEvaluateGridShape(t *testing.T) {
	techniques := []string{core.TechPreamble}
	gr, err := NewSweepEngine(sweepParams(0)).EvaluateGrid(tinyGrid(), techniques)
	if err != nil {
		t.Fatal(err)
	}
	if gr.RowAxis != "occ" || gr.ColAxis != "snr" {
		t.Fatalf("axes %q/%q", gr.RowAxis, gr.ColAxis)
	}
	if len(gr.Cells) != 2 || len(gr.Cells[0]) != 2 {
		t.Fatalf("grid shape %dx%d, want 2x2", len(gr.Cells), len(gr.Cells[0]))
	}
	wantNames := [2][2]string{
		{"occ1+snr7dB", "occ1+snr25dB"},
		{"occ2+snr7dB", "occ2+snr25dB"},
	}
	for i := range gr.Cells {
		for j := range gr.Cells[i] {
			if gr.Cells[i][j].Name != wantNames[i][j] {
				t.Fatalf("cell (%d,%d) evaluated %q, want %q", i, j, gr.Cells[i][j].Name, wantNames[i][j])
			}
			sum := gr.Cells[i][j].Summary()
			if _, ok := sum[core.TechPreamble]; !ok {
				t.Fatalf("cell (%d,%d) missing the preamble summary", i, j)
			}
		}
	}
	// Row 1 carries two occupants, row 0 one.
	if gr.Cells[1][0].Occupants != 2 || gr.Cells[0][0].Occupants != 1 {
		t.Fatalf("occupancy axis did not materialize: %d/%d",
			gr.Cells[0][0].Occupants, gr.Cells[1][0].Occupants)
	}

	table := RenderGridTable(gr, techniques)
	for _, want := range []string{"occ1", "occ2", "snr7dB", "snr25dB", core.TechPreamble, `occ\snr`} {
		if !strings.Contains(table, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, table)
		}
	}

	// Degenerate grids are rejected, not silently empty.
	if _, err := NewSweepEngine(sweepParams(0)).EvaluateGrid(scenario.Grid{}, techniques); err == nil {
		t.Fatal("empty grid accepted")
	}
}

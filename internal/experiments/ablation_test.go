package experiments

import (
	"strings"
	"testing"
)

func TestAblationPooling(t *testing.T) {
	e := sharedEngine(t)
	res, err := RunAblationPooling(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.MSE <= 0 {
			t.Fatalf("row %q has no MSE", r.Name)
		}
	}
	if !strings.Contains(res.Render(), "pooling") {
		t.Fatal("render malformed")
	}
}

func TestAblationDense(t *testing.T) {
	e := sharedEngine(t)
	res, err := RunAblationDense(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0].Name == res.Rows[1].Name {
		t.Fatalf("unexpected rows %+v", res.Rows)
	}
}

func TestAblationNormalization(t *testing.T) {
	e := sharedEngine(t)
	res, err := RunAblationNormalization(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Training on raw targets (magnitudes ~1e-3) must not beat the
	// normalized configuration: gradients vanish without normalization.
	if res.Rows[1].MSE < res.Rows[0].MSE/2 {
		t.Fatalf("raw-target training unexpectedly much better: %+v", res.Rows)
	}
}

func TestAblationEqualizerTaps(t *testing.T) {
	e := sharedEngine(t)
	res, err := RunAblationEqualizerTaps(e, []int{7, 21})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if e.Campaign.Receiver.Cfg.EqTaps != 41 {
		t.Fatal("receiver config not restored")
	}
}

func TestAblationPhaseCorrection(t *testing.T) {
	e := sharedEngine(t)
	res, err := RunAblationPhaseCorrection(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	with, without := res.Rows[0], res.Rows[1]
	// Without Eq. 8 the crystal phase goes uncorrected: CER must be
	// dramatically worse.
	if without.CER <= with.CER {
		t.Fatalf("phase correction made no difference: with %v without %v", with.CER, without.CER)
	}
	if e.Campaign.Receiver.Cfg.SkipPhaseCorrection {
		t.Fatal("receiver config not restored")
	}
}

func TestAblationCIRTaps(t *testing.T) {
	e := sharedEngine(t)
	res, err := RunAblationCIRTaps(e, []int{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// A 3-tap estimate cannot capture the 11-tap channel: CER must be at
	// least as bad as the full-length estimate.
	if res.Rows[0].CER < res.Rows[1].CER {
		t.Fatalf("short estimate beat full estimate: %+v", res.Rows)
	}
	if e.Campaign.Receiver.Cfg.CIRTaps != 11 {
		t.Fatal("receiver config not restored")
	}
}

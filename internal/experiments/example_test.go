package experiments_test

import (
	"fmt"

	"vvd/internal/dataset"
	"vvd/internal/experiments"
)

// oracleEstimator is a custom technique: it "estimates" the channel by
// returning the packet's own aligned perfect CIR — ground truth under a
// different name. It also implements the optional MSEExempt refinement so
// the engine does not score it against itself.
type oracleEstimator struct{}

func (oracleEstimator) Name() string { return "Example Oracle" }

func (oracleEstimator) Estimate(k int, pkt *dataset.Packet) ([]complex128, experiments.Availability, error) {
	if pkt.PerfectAligned == nil {
		// No measurement for this packet: count it as a packet error.
		return nil, experiments.Unavailable, nil
	}
	return pkt.PerfectAligned, experiments.Available, nil
}

func (oracleEstimator) MSEExempt() bool { return true }

// ExampleRegister adds a 15th technique to the paper's 14-technique
// comparison. One Register call is the entire integration: the engine
// resolves the name through the registry and evaluates the estimator like
// any built-in (pass the name to Engine.Evaluate). Builders receive the
// engine and combination so they can obtain shared models from the engine
// caches; this oracle needs neither.
func ExampleRegister() {
	experiments.Register("Example Oracle", func(e *experiments.Engine, cb dataset.Combination) (experiments.Estimator, error) {
		return oracleEstimator{}, nil
	})

	builder, err := experiments.Lookup("Example Oracle")
	if err != nil {
		panic(err)
	}
	est, err := builder(nil, dataset.Combination{})
	if err != nil {
		panic(err)
	}

	pkt := &dataset.Packet{PerfectAligned: []complex128{0.5 - 0.25i}}
	h, avail, _ := est.Estimate(0, pkt)
	fmt.Printf("%s: %v, h[0] = %v\n", est.Name(), avail, h[0])

	_, avail, _ = est.Estimate(1, &dataset.Packet{})
	fmt.Printf("missing measurement: %v\n", avail)
	// Output:
	// Example Oracle: Available, h[0] = (0.5-0.25i)
	// missing measurement: Unavailable
}

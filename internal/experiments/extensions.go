package experiments

import (
	"fmt"

	"vvd/internal/camera"
	"vvd/internal/core"
	"vvd/internal/dataset"
)

// RunAblationDespreading compares hard (Hamming-distance) against soft
// (correlation) despreading — a receiver extension beyond the paper —
// decoding the first combination's test set with the ground-truth estimate.
func RunAblationDespreading(e *Engine) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: hard vs soft despreading (extension)"}
	cb := e.Combos()[0]
	rx := e.Campaign.Receiver
	defer func() { rx.Cfg.SoftDespreading = false }()
	for _, mode := range []struct {
		name string
		soft bool
	}{{"hard decisions (paper receiver)", false}, {"soft correlation", true}} {
		rx.Cfg.SoftDespreading = mode.soft
		row, err := e.measureEstimator(mode.name, cb, func(pkt *dataset.Packet) ([]complex128, error) {
			return pkt.Perfect, nil
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// DecimateImage keeps every k-th pixel in both dimensions (zero-order
// hold), modelling the paper's §6.6 privacy direction: destroy the image's
// human-identifiability while keeping coarse positional information.
func DecimateImage(img []float32, k int) []float32 {
	if k <= 1 {
		out := make([]float32, len(img))
		copy(out, img)
		return out
	}
	rows, cols := camera.CropRows, camera.CropCols
	out := make([]float32, len(img))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			rr := (r / k) * k
			cc := (c / k) * k
			out[r*cols+c] = img[rr*cols+cc]
		}
	}
	return out
}

// RunAblationPrivacy trains and evaluates VVD on progressively decimated
// depth images (paper §6.6: process pixels "before they form an image").
// It reports how much spatial resolution the estimator actually needs.
func RunAblationPrivacy(e *Engine, factors []int) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: image decimation / privacy (paper §6.6)"}
	cb := e.Combos()[0]
	for _, k := range factors {
		decimated, err := decimatedCampaign(e.Campaign, k)
		if err != nil {
			return nil, err
		}
		v, _, err := core.Train(decimated, cb, dataset.LagCurrent, e.P.Train)
		if err != nil {
			return nil, err
		}
		row, err := e.measureEstimator(fmt.Sprintf("decimate %dx", k), cb, func(pkt *dataset.Packet) ([]complex128, error) {
			return v.Estimate(DecimateImage(pkt.Images[dataset.LagCurrent], k))
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// decimatedCampaign returns a shallow copy of the campaign whose images are
// decimated by k (estimates and metadata shared).
func decimatedCampaign(c *dataset.Campaign, k int) (*dataset.Campaign, error) {
	if k <= 1 {
		return c, nil
	}
	cp := *c
	cp.Sets = make([]dataset.Set, len(c.Sets))
	for si, s := range c.Sets {
		cp.Sets[si] = dataset.Set{Index: s.Index, Packets: make([]dataset.Packet, len(s.Packets))}
		for pi, p := range s.Packets {
			np := p
			for lag := range np.Images {
				if p.Images[lag] != nil {
					np.Images[lag] = DecimateImage(p.Images[lag], k)
				}
			}
			cp.Sets[si].Packets[pi] = np
		}
	}
	return &cp, nil
}

// ScalabilityRow quantifies the paper's Table 1 "Scalable" column: the
// control-channel cost of keeping fresh estimates for n transmitters.
type ScalabilityRow struct {
	Transmitters int
	// PilotPerSecond is the pilot transmissions per second a sounding-based
	// system needs (one per coherence interval per transmitter).
	PilotPerSecond float64
	// VVDPerSecond is VVD's transmit-side cost: zero — estimates come from
	// the camera, shared by every link.
	VVDPerSecond float64
	// CameraInferences is VVD's receiver-side compute per second (one CNN
	// inference per frame serves all links whose TX positions were trained).
	CameraInferences float64
}

// RunScalability computes the sounding-overhead scaling of Table 1 for a
// given coherence time (paper §6.6 suggests ~50 ms indoors; we transmit a
// pilot once per coherence interval).
func RunScalability(coherence float64, maxTX int) []ScalabilityRow {
	if coherence <= 0 {
		coherence = 0.05
	}
	rows := make([]ScalabilityRow, 0, maxTX)
	for n := 1; n <= maxTX; n *= 2 {
		rows = append(rows, ScalabilityRow{
			Transmitters:     n,
			PilotPerSecond:   float64(n) / coherence,
			VVDPerSecond:     0,
			CameraInferences: camera.FrameRate,
		})
	}
	return rows
}

// RenderScalability renders the scaling table.
func RenderScalability(rows []ScalabilityRow) string {
	out := "Scalability (Table 1 'Scalable' column): control overhead per second\n"
	out += fmt.Sprintf("%12s %18s %14s %18s\n", "transmitters", "pilots/s (pilot)", "pilots/s (VVD)", "CNN inferences/s")
	for _, r := range rows {
		out += fmt.Sprintf("%12d %18.0f %14.0f %18.0f\n",
			r.Transmitters, r.PilotPerSecond, r.VVDPerSecond, r.CameraInferences)
	}
	return out
}

// Package experiments reproduces every table and figure of the paper's
// evaluation (§6) on the simulated testbed: the hypothesis tests (Fig. 5),
// the variant comparisons (Fig. 11), the overall PER/CER/MSE box plots
// (Figs. 12–14), the error-burst timeline (Fig. 15), the aging studies
// (Figs. 16–17) and the static tables (Tables 1–2), plus the ablations
// called out in DESIGN.md.
//
// The evaluation is organized around a pluggable Estimator registry (see
// registry.go) and a parallel engine: Evaluate fans out over (combination ×
// technique) tasks through a bounded worker pool, with model caches shared
// singleflight-style so one VVD training or Kalman fit serves every
// goroutine. Parallel output is byte-identical to the sequential run.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vvd/internal/core"
	"vvd/internal/dataset"
	"vvd/internal/estimate"
	"vvd/internal/kalman"
	"vvd/internal/metrics"
	"vvd/internal/phy"
)

// Params bundles the scale knobs of an evaluation run.
type Params struct {
	Campaign dataset.Config
	// Combos limits how many Table 2 set combinations are evaluated
	// (0 = every combination the campaign supports; the paper uses 15).
	Combos int
	// Train configures VVD training.
	Train core.TrainConfig
	// SkipPackets excludes the first packets of each test set from the
	// metrics so Kalman and the previous-estimate techniques have warmed up
	// (the paper skips 200 of ~1500; scale accordingly).
	SkipPackets int
	// Workers bounds the evaluation fan-out: Evaluate runs up to Workers
	// (combination × technique) tasks concurrently. 0 selects
	// runtime.GOMAXPROCS(0); 1 reproduces the sequential engine exactly
	// (results are byte-identical at any worker count).
	Workers int
	// Clock supplies wall time for the progress timings a cross-scenario
	// sweep records (ScenarioResult.GenSeconds/EvalSeconds). nil disables
	// timing — every timing reads zero — which keeps this package free of
	// wall-clock reads (the determinism invariant vvd-lint enforces).
	// CLI mains inject time.Now.
	Clock func() time.Time
}

// DefaultParams is the laptop-scale configuration used by the benchmarks;
// EXPERIMENTS.md records how it maps to the paper's full scale.
func DefaultParams() Params {
	cfg := dataset.DefaultConfig()
	cfg.Sets = 6
	cfg.PacketsPerSet = 90
	cfg.PSDULen = 64
	return Params{
		Campaign:    cfg,
		Combos:      3,
		Train:       core.DefaultTrainConfig(),
		SkipPackets: 10,
	}
}

// PaperParams is the full-scale configuration (15 sets, 127-byte PSDUs,
// every combination). Expect hours of CPU time.
func PaperParams() Params {
	cfg := dataset.DefaultConfig()
	cfg.Sets = 15
	cfg.PacketsPerSet = 1500
	cfg.PSDULen = 127
	train := core.DefaultTrainConfig()
	train.Arch = core.PaperArch()
	train.Epochs = 200
	train.LR = 1e-4
	return Params{
		Campaign:    cfg,
		Combos:      0,
		Train:       train,
		SkipPackets: 200,
	}
}

// Engine owns a generated campaign and caches trained models so multiple
// figures can share one (expensive) campaign and VVD training run. All
// methods that resolve models (VVDFor, KalmanFor) and the evaluation entry
// points (Evaluate, EvaluateCombo) are safe for concurrent use; the
// ablation helpers that mutate receiver configuration are not and must run
// sequentially.
type Engine struct {
	P        Params
	Campaign *dataset.Campaign

	mu          sync.Mutex
	vvdCache    map[vvdKey]*vvdEntry
	kalmanCache map[kalmanKey]*kalmanEntry
}

type vvdKey struct {
	combo int
	lag   dataset.ImageLag
	arch  core.Arch
}

type kalmanKey struct {
	combo int
	order int
}

// vvdEntry and kalmanEntry are singleflight slots: the first goroutine to
// claim a key performs the (expensive) training or fit inside once; every
// other goroutine blocks on the same once and shares the outcome.
type vvdEntry struct {
	once sync.Once
	v    *core.VVD
	err  error
}

type kalmanEntry struct {
	once sync.Once
	k    *kalman.Estimator
	err  error
}

// NewEngine generates the campaign for the given parameters. Generation
// inherits the evaluation fan-out width unless the campaign config sets
// its own; the campaign content is identical either way.
func NewEngine(p Params) (*Engine, error) {
	if p.Campaign.Workers == 0 {
		p.Campaign.Workers = p.Workers
	}
	c, err := dataset.Generate(p.Campaign)
	if err != nil {
		return nil, err
	}
	return NewEngineFromCampaign(c, p), nil
}

// NewEngineFromCampaign wraps an already-materialized campaign (generated
// elsewhere or loaded from a campaign file). Params.Campaign is overridden
// by the campaign's own stored configuration.
func NewEngineFromCampaign(c *dataset.Campaign, p Params) *Engine {
	p.Campaign = c.Cfg
	return &Engine{
		P:           p,
		Campaign:    c,
		vvdCache:    map[vvdKey]*vvdEntry{},
		kalmanCache: map[kalmanKey]*kalmanEntry{},
	}
}

// NewEngineFromReader builds an engine from a streaming campaign reader
// (dataset.OpenCampaign): it resolves which Table 2 combinations the run
// evaluates from the stored set count and Params.Combos, then decodes only
// the sets those combinations reference, skipping the rest without
// decoding. With a combo limit this bounds memory to the sets actually
// evaluated; the reader is consumed either way.
func NewEngineFromReader(r *dataset.Reader, p Params) (*Engine, error) {
	combos := dataset.CombinationsFor(r.NumSets(), p.Combos)
	need := map[int]bool{}
	for _, cb := range combos {
		for _, id := range cb.Training {
			need[id] = true
		}
		need[cb.Val] = true
		need[cb.Test] = true
	}
	c, err := r.ReadSets(func(id int) bool { return need[id] })
	if err != nil {
		return nil, err
	}
	return NewEngineFromCampaign(c, p), nil
}

// Combos returns the Table 2 combinations this run evaluates.
func (e *Engine) Combos() []dataset.Combination {
	return dataset.CombinationsFor(len(e.Campaign.Sets), e.P.Combos)
}

// workers resolves the configured fan-out width.
func (e *Engine) workers() int {
	if e.P.Workers > 0 {
		return e.P.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// VVDFor returns (training on demand) the VVD variant for a combination.
// Concurrent callers of the same key share a single training run. The
// returned model is the cached instance: callers that run inference
// concurrently must Clone it (network forward caches are per-instance).
func (e *Engine) VVDFor(cb dataset.Combination, lag dataset.ImageLag) (*core.VVD, error) {
	key := vvdKey{combo: cb.Number, lag: lag, arch: e.P.Train.Arch}
	e.mu.Lock()
	ent, ok := e.vvdCache[key]
	if !ok {
		ent = &vvdEntry{}
		e.vvdCache[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		v, _, err := core.Train(e.Campaign, cb, lag, e.P.Train)
		if err != nil {
			ent.err = fmt.Errorf("experiments: training VVD lag %d combo %d: %w", lag, cb.Number, err)
			return
		}
		ent.v = v
	})
	return ent.v, ent.err
}

// KalmanFor returns the AR(p) Kalman estimator for a combination, fitted on
// demand on the concatenated training-set aligned estimates. The fit is
// shared singleflight-style; every call returns an independent clone in its
// pristine post-fit state, so callers can advance their filters freely
// without corrupting each other (the cached instance is never advanced).
func (e *Engine) KalmanFor(cb dataset.Combination, order int) (*kalman.Estimator, error) {
	key := kalmanKey{combo: cb.Number, order: order}
	e.mu.Lock()
	ent, ok := e.kalmanCache[key]
	if !ok {
		ent = &kalmanEntry{}
		e.kalmanCache[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		var series [][]complex128
		for _, p := range e.Campaign.TrainingPackets(cb) {
			series = append(series, p.PerfectAligned)
		}
		k, err := kalman.Fit(series, order, 1e-9)
		if err != nil {
			ent.err = fmt.Errorf("experiments: kalman AR(%d) combo %d: %w", order, cb.Number, err)
			return
		}
		ent.k = k
	})
	if ent.err != nil {
		return nil, ent.err
	}
	return ent.k.Clone(), nil
}

// ComboResult is the per-technique outcome on one set combination.
type ComboResult struct {
	Combo    dataset.Combination
	Counters map[string]*metrics.Counter
}

// Techniques returns the evaluated technique names in stable (sorted)
// order for reports.
func (r *ComboResult) Techniques() []string {
	out := make([]string, 0, len(r.Counters))
	for name := range r.Counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// comboRun shares per-combination state between the technique tasks of one
// evaluation: the test packets and the regenerated receptions. Receptions
// are prepared lazily and exactly once — whichever technique task reaches a
// packet first pays the regeneration, the rest reuse it.
type comboRun struct {
	e    *Engine
	cb   dataset.Combination
	test []*dataset.Packet
	prep []preparedPacket
	// pending counts this combination's unfinished technique tasks; the
	// last one to finish releases the prepared waveforms (at paper scale
	// they are hundreds of MB per combination).
	pending atomic.Int32
}

// preparedPacket is one packet's decode-ready reception.
type preparedPacket struct {
	once sync.Once
	// refs counts the technique tasks that have not yet passed this
	// packet; the last one to pass releases the waveform. With Workers ≥
	// technique count, memory is bounded by the pace spread between
	// tasks; with fewer workers, up to one combination's prepared test
	// set stays resident (~0.8 GB at paper scale) — the price of
	// regenerating each reception once instead of once per technique.
	refs    atomic.Int32
	ppdu    *phy.PPDU
	txChips []byte
	rxc     []complex128 // CFO-corrected received waveform
	err     error
}

// newComboRun prepares shared state for `tasks` technique tasks over one
// combination.
func newComboRun(e *Engine, cb dataset.Combination, tasks int) *comboRun {
	test := e.Campaign.TestPackets(cb)
	run := &comboRun{e: e, cb: cb, test: test, prep: make([]preparedPacket, len(test))}
	run.pending.Store(int32(tasks))
	for k := range run.prep {
		run.prep[k].refs.Store(int32(tasks))
	}
	return run
}

// passed marks one task done with packet k, releasing the reception once
// every task has moved past it.
func (r *comboRun) passed(k int) {
	if r.prep[k].refs.Add(-1) == 0 {
		p := &r.prep[k]
		p.ppdu, p.txChips, p.rxc = nil, nil, nil
	}
}

// prepared returns packet k's reception, regenerating it on first use.
func (r *comboRun) prepared(k int) (*preparedPacket, error) {
	p := &r.prep[k]
	p.once.Do(func() {
		ppdu, _, txChips, rec, err := r.e.Campaign.Reception(r.cb.Test, r.test[k].Index)
		if err != nil {
			p.err = err
			return
		}
		rxc, _ := r.e.Campaign.Receiver.CorrectCFO(rec.Waveform)
		p.ppdu, p.txChips, p.rxc = ppdu, txChips, rxc
	})
	return p, p.err
}

// evaluateTechnique runs one technique over the combination's full test
// sequence and returns its counter. This is the unit of parallelism: the
// estimator instance is private to the call, all shared inputs are
// read-only or singleflight-guarded.
func (e *Engine) evaluateTechnique(run *comboRun, name string) (*metrics.Counter, error) {
	build, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	est, err := build(e, run.cb)
	if err != nil {
		return nil, err
	}
	observer, _ := est.(Observer)
	scoreMSE := true
	if ex, ok := est.(MSEExempt); ok && ex.MSEExempt() {
		scoreMSE = false
	}
	rx := e.Campaign.Receiver
	c := &metrics.Counter{}
	for k, pkt := range run.test {
		// Estimate on every packet — stateful estimators advance through
		// the warm-up window exactly as in the paper.
		h, av, err := est.Estimate(k, pkt)
		if err != nil {
			return nil, err
		}
		if k >= e.P.SkipPackets {
			switch av {
			case Unavailable:
				// Technique unavailable (e.g. preamble missed): the packet
				// is assumed erroneous; no chips or MSE counted.
				c.AddUnavailable()
			case Available:
				pp, err := run.prepared(k)
				if err != nil {
					return nil, err
				}
				dec := rx.Decode(pp.rxc, pp.ppdu, pp.txChips, h)
				c.AddPacket(dec.PacketOK, dec.ChipErrors, dec.PSDUChips)
				if h != nil && scoreMSE {
					aligned := estimate.AlignPhase(h, pkt.Perfect)
					c.AddMSE(metrics.SqError(aligned, pkt.Perfect), len(pkt.Perfect))
				}
			}
		}
		// Filters absorb the perfect estimate of this packet before
		// predicting the next one (paper appendix).
		if observer != nil {
			if err := observer.Observe(k, pkt); err != nil {
				return nil, err
			}
		}
		run.passed(k)
	}
	return c, nil
}

// EvaluateCombo runs the full decode comparison on one combination's test
// set for the requested techniques (nil = core.AllTechniques). Every
// technique resolves through the registry; the techniques run sequentially
// within this call — use Evaluate for the parallel fan-out.
func (e *Engine) EvaluateCombo(cb dataset.Combination, techniques []string) (*ComboResult, error) {
	if techniques == nil {
		techniques = core.AllTechniques
	}
	// Catch typos before any training or decoding starts (same pre-pass
	// as Evaluate).
	for _, name := range techniques {
		if _, err := Lookup(name); err != nil {
			return nil, err
		}
	}
	if err := cb.Validate(e.Campaign); err != nil {
		return nil, err
	}
	run := newComboRun(e, cb, len(techniques))
	res := &ComboResult{Combo: cb, Counters: map[string]*metrics.Counter{}}
	for _, name := range techniques {
		c, err := e.evaluateTechnique(run, name)
		if err != nil {
			return nil, err
		}
		// As in the original engine, a technique that never produced a
		// countable packet (e.g. Skip on every recorded packet) is omitted
		// rather than reported as a zero-error counter.
		if c.Packets > 0 {
			res.Counters[name] = c
		}
	}
	return res, nil
}

// Evaluate runs the decode comparison over every selected combination,
// fanning (combination × technique) tasks through a bounded worker pool of
// Params.Workers goroutines. Result ordering follows Combos() regardless of
// scheduling, and the counters are byte-identical to a Workers=1 run: each
// task owns its estimator instance, receptions are shared per combination,
// and model caches are singleflight-guarded.
func (e *Engine) Evaluate(techniques []string) ([]*ComboResult, error) {
	if techniques == nil {
		techniques = core.AllTechniques
	}
	// Catch typos before any training or decoding starts.
	for _, name := range techniques {
		if _, err := Lookup(name); err != nil {
			return nil, err
		}
	}
	combos := e.Combos()
	for _, cb := range combos {
		if err := cb.Validate(e.Campaign); err != nil {
			return nil, err
		}
	}
	runs := make([]*comboRun, len(combos))
	counters := make([][]*metrics.Counter, len(combos))
	errs := make([][]error, len(combos))
	for i, cb := range combos {
		runs[i] = newComboRun(e, cb, len(techniques))
		counters[i] = make([]*metrics.Counter, len(techniques))
		errs[i] = make([]error, len(techniques))
	}

	type task struct{ ci, ti int }
	tasks := make(chan task)
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < e.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				run := runs[t.ci]
				// Fail fast: once any task errors, drain the remaining
				// tasks without evaluating them.
				if !failed.Load() {
					counters[t.ci][t.ti], errs[t.ci][t.ti] = e.evaluateTechnique(run, techniques[t.ti])
					if errs[t.ci][t.ti] != nil {
						failed.Store(true)
					}
				}
				if run.pending.Add(-1) == 0 {
					run.prep = nil // last task of this combo: release waveforms
				}
			}
		}()
	}
	for ci := range combos {
		for ti := range techniques {
			tasks <- task{ci, ti}
		}
	}
	close(tasks)
	wg.Wait()
	if failed.Load() {
		for _, errCombo := range errs {
			for _, err := range errCombo {
				if err != nil {
					return nil, err
				}
			}
		}
	}

	out := make([]*ComboResult, len(combos))
	for ci, cb := range combos {
		res := &ComboResult{Combo: cb, Counters: map[string]*metrics.Counter{}}
		for ti, name := range techniques {
			// Omit techniques that never produced a countable packet,
			// mirroring EvaluateCombo.
			if c := counters[ci][ti]; c.Packets > 0 {
				res.Counters[name] = c
			}
		}
		out[ci] = res
	}
	return out, nil
}

// BoxOver collects one metric over combo results into box statistics per
// technique. metric is "per", "cer" or "mse".
func BoxOver(results []*ComboResult, metric string) (map[string]metrics.BoxStats, error) {
	values := map[string][]float64{}
	for _, r := range results {
		for name, c := range r.Counters {
			switch metric {
			case "per":
				values[name] = append(values[name], c.PER())
			case "cer":
				values[name] = append(values[name], c.CER())
			case "mse":
				if c.HasMSE() {
					values[name] = append(values[name], c.MSE())
				}
			default:
				return nil, fmt.Errorf("experiments: unknown metric %q", metric)
			}
		}
	}
	out := map[string]metrics.BoxStats{}
	for name, v := range values {
		s, err := metrics.Box(v)
		if err != nil {
			return nil, err
		}
		out[name] = s
	}
	return out, nil
}

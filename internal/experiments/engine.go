// Package experiments reproduces every table and figure of the paper's
// evaluation (§6) on the simulated testbed: the hypothesis tests (Fig. 5),
// the variant comparisons (Fig. 11), the overall PER/CER/MSE box plots
// (Figs. 12–14), the error-burst timeline (Fig. 15), the aging studies
// (Figs. 16–17) and the static tables (Tables 1–2), plus the ablations
// called out in DESIGN.md.
package experiments

import (
	"fmt"
	"sort"

	"vvd/internal/core"
	"vvd/internal/dataset"
	"vvd/internal/estimate"
	"vvd/internal/kalman"
	"vvd/internal/metrics"
)

// Params bundles the scale knobs of an evaluation run.
type Params struct {
	Campaign dataset.Config
	// Combos limits how many Table 2 set combinations are evaluated
	// (0 = every combination the campaign supports; the paper uses 15).
	Combos int
	// Train configures VVD training.
	Train core.TrainConfig
	// KalmanOrders lists the AR orders to fit (paper: 1, 5, 20).
	KalmanOrders []int
	// SkipPackets excludes the first packets of each test set from the
	// metrics so Kalman and the previous-estimate techniques have warmed up
	// (the paper skips 200 of ~1500; scale accordingly).
	SkipPackets int
}

// DefaultParams is the laptop-scale configuration used by the benchmarks;
// EXPERIMENTS.md records how it maps to the paper's full scale.
func DefaultParams() Params {
	cfg := dataset.DefaultConfig()
	cfg.Sets = 6
	cfg.PacketsPerSet = 90
	cfg.PSDULen = 64
	return Params{
		Campaign:     cfg,
		Combos:       3,
		Train:        core.DefaultTrainConfig(),
		KalmanOrders: []int{1, 5, 20},
		SkipPackets:  10,
	}
}

// PaperParams is the full-scale configuration (15 sets, 127-byte PSDUs,
// every combination). Expect hours of CPU time.
func PaperParams() Params {
	cfg := dataset.DefaultConfig()
	cfg.Sets = 15
	cfg.PacketsPerSet = 1500
	cfg.PSDULen = 127
	train := core.DefaultTrainConfig()
	train.Arch = core.PaperArch()
	train.Epochs = 200
	train.LR = 1e-4
	return Params{
		Campaign:     cfg,
		Combos:       0,
		Train:        train,
		KalmanOrders: []int{1, 5, 20},
		SkipPackets:  200,
	}
}

// Engine owns a generated campaign and caches trained models so multiple
// figures can share one (expensive) campaign and VVD training run.
type Engine struct {
	P        Params
	Campaign *dataset.Campaign

	vvdCache    map[vvdKey]*core.VVD
	kalmanCache map[kalmanKey]*kalman.Estimator
}

type vvdKey struct {
	combo int
	lag   dataset.ImageLag
	arch  core.Arch
}

type kalmanKey struct {
	combo int
	order int
}

// NewEngine generates the campaign for the given parameters.
func NewEngine(p Params) (*Engine, error) {
	c, err := dataset.Generate(p.Campaign)
	if err != nil {
		return nil, err
	}
	return &Engine{
		P:           p,
		Campaign:    c,
		vvdCache:    map[vvdKey]*core.VVD{},
		kalmanCache: map[kalmanKey]*kalman.Estimator{},
	}, nil
}

// Combos returns the Table 2 combinations this run evaluates.
func (e *Engine) Combos() []dataset.Combination {
	return dataset.CombinationsFor(len(e.Campaign.Sets), e.P.Combos)
}

// VVDFor returns (training on demand) the VVD variant for a combination.
func (e *Engine) VVDFor(cb dataset.Combination, lag dataset.ImageLag) (*core.VVD, error) {
	key := vvdKey{combo: cb.Number, lag: lag, arch: e.P.Train.Arch}
	if v, ok := e.vvdCache[key]; ok {
		return v, nil
	}
	v, _, err := core.Train(e.Campaign, cb, lag, e.P.Train)
	if err != nil {
		return nil, fmt.Errorf("experiments: training VVD lag %d combo %d: %w", lag, cb.Number, err)
	}
	e.vvdCache[key] = v
	return v, nil
}

// KalmanFor returns (fitting on demand) the AR(p) Kalman estimator for a
// combination, fitted on the concatenated training-set aligned estimates.
func (e *Engine) KalmanFor(cb dataset.Combination, order int) (*kalman.Estimator, error) {
	key := kalmanKey{combo: cb.Number, order: order}
	if k, ok := e.kalmanCache[key]; ok {
		k.Reset()
		return k, nil
	}
	var series [][]complex128
	for _, p := range e.Campaign.TrainingPackets(cb) {
		series = append(series, p.PerfectAligned)
	}
	k, err := kalman.Fit(series, order, 1e-9)
	if err != nil {
		return nil, fmt.Errorf("experiments: kalman AR(%d) combo %d: %w", order, cb.Number, err)
	}
	e.kalmanCache[key] = k
	return k, nil
}

// ComboResult is the per-technique outcome on one set combination.
type ComboResult struct {
	Combo    dataset.Combination
	Counters map[string]*metrics.Counter
}

// PER/CER/MSE accessors with stable ordering for reports.
func (r *ComboResult) Techniques() []string {
	out := make([]string, 0, len(r.Counters))
	for name := range r.Counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// EvaluateCombo runs the full decode comparison on one combination's test
// set for the requested techniques (nil = core.AllTechniques).
func (e *Engine) EvaluateCombo(cb dataset.Combination, techniques []string) (*ComboResult, error) {
	if techniques == nil {
		techniques = core.AllTechniques
	}
	if err := cb.Validate(e.Campaign); err != nil {
		return nil, err
	}
	want := map[string]bool{}
	for _, name := range techniques {
		want[name] = true
	}

	// Prepare blind estimators on demand.
	var vvdCur, vvd33, vvd100 *core.VVD
	var err error
	if want[core.TechVVDCurrent] || want[core.TechCombinedVVD] {
		if vvdCur, err = e.VVDFor(cb, dataset.LagCurrent); err != nil {
			return nil, err
		}
	}
	if want[core.TechVVD33msFuture] {
		if vvd33, err = e.VVDFor(cb, dataset.Lag33ms); err != nil {
			return nil, err
		}
	}
	if want[core.TechVVD100msFuture] {
		if vvd100, err = e.VVDFor(cb, dataset.Lag100ms); err != nil {
			return nil, err
		}
	}
	kalmans := map[int]*kalman.Estimator{}
	for _, order := range e.P.KalmanOrders {
		name := fmt.Sprintf("Kalman AR(%d)", order)
		if want[name] || (order == 20 && want[core.TechCombinedKalman]) {
			k, err := e.KalmanFor(cb, order)
			if err != nil {
				return nil, err
			}
			kalmans[order] = k
		}
	}

	res := &ComboResult{Combo: cb, Counters: map[string]*metrics.Counter{}}
	counter := func(name string) *metrics.Counter {
		c, ok := res.Counters[name]
		if !ok {
			c = &metrics.Counter{}
			res.Counters[name] = c
		}
		return c
	}

	test := e.Campaign.TestPackets(cb)
	rx := e.Campaign.Receiver
	for k, pkt := range test {
		ppdu, _, txChips, rec, err := e.Campaign.Reception(cb.Test, pkt.Index)
		if err != nil {
			return nil, err
		}
		rxc, _ := rx.CorrectCFO(rec.Waveform)
		record := k >= e.P.SkipPackets

		// Gather per-technique estimates; nil means standard decoding,
		// a missing entry means the technique is unavailable this packet.
		ests := map[string][]complex128{}
		avail := map[string]bool{}
		if want[core.TechStandard] {
			ests[core.TechStandard] = nil
			avail[core.TechStandard] = true
		}
		if want[core.TechGroundTruth] {
			ests[core.TechGroundTruth] = pkt.Perfect
			avail[core.TechGroundTruth] = true
		}
		if want[core.TechPreamble] {
			if pkt.PreambleDetected {
				ests[core.TechPreamble] = pkt.PreambleEst
				avail[core.TechPreamble] = true
			} else {
				avail[core.TechPreamble] = false
			}
		}
		if want[core.TechPreambleGenie] {
			ests[core.TechPreambleGenie] = pkt.PreambleEst
			avail[core.TechPreambleGenie] = true
		}
		if want[core.TechPrev100ms] && k >= 1 {
			ests[core.TechPrev100ms] = test[k-1].PerfectAligned
			avail[core.TechPrev100ms] = true
		}
		if want[core.TechPrev500ms] && k >= 5 {
			ests[core.TechPrev500ms] = test[k-5].PerfectAligned
			avail[core.TechPrev500ms] = true
		}
		for order, kal := range kalmans {
			pred, err := kal.Predict()
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("Kalman AR(%d)", order)
			if want[name] && kal.Seen() > 0 {
				ests[name] = pred
				avail[name] = true
			}
			if order == 20 && want[core.TechCombinedKalman] {
				ests[core.TechCombinedKalman] = core.Combined(pkt.PreambleDetected, pkt.PreambleEst, pred)
				avail[core.TechCombinedKalman] = kal.Seen() > 0 || pkt.PreambleDetected
			}
		}
		if vvdCur != nil {
			h, err := vvdCur.Estimate(pkt.Images[dataset.LagCurrent])
			if err != nil {
				return nil, err
			}
			if want[core.TechVVDCurrent] {
				ests[core.TechVVDCurrent] = h
				avail[core.TechVVDCurrent] = true
			}
			if want[core.TechCombinedVVD] {
				ests[core.TechCombinedVVD] = core.Combined(pkt.PreambleDetected, pkt.PreambleEst, h)
				avail[core.TechCombinedVVD] = true
			}
		}
		if vvd33 != nil {
			// The VVD-future variants feed the *older* image that predicts
			// this packet's channel.
			h, err := vvd33.Estimate(pkt.Images[dataset.Lag33ms])
			if err != nil {
				return nil, err
			}
			ests[core.TechVVD33msFuture] = h
			avail[core.TechVVD33msFuture] = true
		}
		if vvd100 != nil {
			h, err := vvd100.Estimate(pkt.Images[dataset.Lag100ms])
			if err != nil {
				return nil, err
			}
			ests[core.TechVVD100msFuture] = h
			avail[core.TechVVD100msFuture] = true
		}

		if record {
			for name, ok := range avail {
				c := counter(name)
				if !ok {
					// Technique unavailable (e.g. preamble missed): the
					// packet is assumed erroneous; no chips or MSE counted.
					c.AddPacket(false, 0, 0)
					continue
				}
				h := ests[name]
				dec := rx.Decode(rxc, ppdu, txChips, h)
				c.AddPacket(dec.PacketOK, dec.ChipErrors, dec.PSDUChips)
				if h != nil && name != core.TechGroundTruth {
					aligned := estimate.AlignPhase(h, pkt.Perfect)
					c.AddMSE(metrics.SqError(aligned, pkt.Perfect), len(pkt.Perfect))
				}
			}
		}

		// Kalman filters absorb the perfect estimate of this packet before
		// predicting the next one (paper appendix).
		for _, kal := range kalmans {
			if err := kal.Update(pkt.PerfectAligned); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// Evaluate runs EvaluateCombo over every selected combination.
func (e *Engine) Evaluate(techniques []string) ([]*ComboResult, error) {
	var out []*ComboResult
	for _, cb := range e.Combos() {
		r, err := e.EvaluateCombo(cb, techniques)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// BoxOver collects one metric over combo results into box statistics per
// technique. metric is "per", "cer" or "mse".
func BoxOver(results []*ComboResult, metric string) (map[string]metrics.BoxStats, error) {
	values := map[string][]float64{}
	for _, r := range results {
		for name, c := range r.Counters {
			switch metric {
			case "per":
				values[name] = append(values[name], c.PER())
			case "cer":
				values[name] = append(values[name], c.CER())
			case "mse":
				if c.HasMSE() {
					values[name] = append(values[name], c.MSE())
				}
			default:
				return nil, fmt.Errorf("experiments: unknown metric %q", metric)
			}
		}
	}
	out := map[string]metrics.BoxStats{}
	for name, v := range values {
		s, err := metrics.Box(v)
		if err != nil {
			return nil, err
		}
		out[name] = s
	}
	return out, nil
}

package experiments

import (
	"fmt"
	"sort"
	"sync"

	"vvd/internal/dataset"
)

// Availability describes whether a technique can produce an estimate for a
// given test packet, mirroring the three outcomes of the paper's decode
// comparison (§5–6). It is the second return of [Estimator.Estimate] and
// decides how the engine scores the packet: decode it, count it as lost,
// or leave it out entirely.
type Availability int

const (
	// Available: the technique produced an estimate (nil means standard
	// decoding, i.e. no equalization).
	Available Availability = iota
	// Unavailable: the technique exists but cannot estimate this packet
	// (e.g. the preamble was missed); the packet counts as erroneous.
	Unavailable
	// Skip: the technique is not applicable yet (e.g. no previous packet,
	// Kalman filter not warmed up); the packet is not counted at all.
	Skip
)

// String returns the outcome name.
func (a Availability) String() string {
	switch a {
	case Available:
		return "Available"
	case Unavailable:
		return "Unavailable"
	case Skip:
		return "Skip"
	default:
		return fmt.Sprintf("Availability(%d)", int(a))
	}
}

// Estimator is one channel-estimation technique evaluated over a
// combination's test set. Estimate is called for every packet in order,
// including the warm-up window, so stateful estimators (Kalman) advance
// exactly as in the paper. Implementations are built per evaluation run and
// must not share mutable state — the parallel engine runs one Estimator per
// (combination × technique) goroutine.
type Estimator interface {
	// Name returns the technique label exactly as the paper uses it.
	Name() string
	// Estimate returns the channel estimate for test packet k.
	Estimate(k int, pkt *dataset.Packet) ([]complex128, Availability, error)
}

// Observer is an optional refinement of [Estimator]: implementations
// absorb per-packet feedback after the packet has been decoded — the
// Kalman filters update on the perfect estimate of the just-received
// packet (paper appendix). The engine calls Observe exactly once per test
// packet, after Estimate, in packet order.
type Observer interface {
	Observe(k int, pkt *dataset.Packet) error
}

// MSEExempt is an optional refinement of [Estimator]: implementations
// returning true are excluded from MSE scoring against the ground truth.
// The ground-truth technique itself is the canonical case (its error
// against itself is zero by construction and would distort Fig. 14);
// oracles added through [Register] usually want this too.
type MSEExempt interface {
	MSEExempt() bool
}

// Builder constructs a fresh Estimator bound to an engine and combination.
// Builders run under the engine's model caches, so expensive artifacts (VVD
// training, Kalman fits) are shared across concurrent builds.
type Builder func(e *Engine, cb dataset.Combination) (Estimator, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Builder{}
)

// Register adds a technique to the global registry. Registering an existing
// name replaces the previous builder (last registration wins), so tests and
// extensions can override built-ins. Adding a new technique to the
// evaluation is one Register call — the engine never needs to change.
func Register(name string, b Builder) {
	if name == "" || b == nil {
		panic("experiments: Register needs a name and a builder")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = b
}

// Lookup resolves a technique name to its builder.
func Lookup(name string) (Builder, error) {
	registryMu.RLock()
	b, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("experiments: unknown technique %q (registered: %v)", name, RegisteredTechniques())
	}
	return b, nil
}

// RegisteredTechniques lists every registered technique name, sorted.
func RegisteredTechniques() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// fuzzU32 appends a little-endian u32 — the only primitive in the model
// format besides raw float64 runs.
func fuzzU32(b []byte, v uint32) []byte {
	var x [4]byte
	binary.LittleEndian.PutUint32(x[:], v)
	return append(b, x[:]...)
}

// savedModel serializes a small but complete network (conv → relu →
// pool → flatten → dense, every layer kind the format knows).
func savedModel(tb testing.TB) []byte {
	tb.Helper()
	rng := rand.New(rand.NewPCG(1, 2))
	net, err := NewNetwork(Shape{H: 6, W: 6, C: 1}, rng,
		NewConv2D(3, 3, 2), NewReLU(), NewPool2D(AvgPool), NewFlatten(), NewDense(4))
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// seedModels builds the fuzz seed corpus: a valid model plus the classic
// corruption shapes — truncations, bit flips, forged metadata, hostile
// size claims — mirroring FuzzWireDecode and FuzzOpenCampaign. The same
// bytes are committed under testdata/fuzz/FuzzNetworkLoad (regenerate
// with TestWriteFuzzCorpus).
func seedModels(tb testing.TB) map[string][]byte {
	valid := savedModel(tb)

	seeds := map[string][]byte{
		"valid": valid,
		"empty": nil,
	}
	seeds["magic_only"] = append([]byte(nil), valid[:4]...)
	seeds["truncated_header"] = append([]byte(nil), valid[:14]...)
	seeds["truncated_weights"] = append([]byte(nil), valid[:len(valid)*2/3]...)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x20
	seeds["bitflip"] = flipped

	// conv2d layer whose meta claims a 0×0 kernel — the constructor-panic
	// regression (NewConv2D used to be called on unvalidated meta).
	zeroConv := fuzzU32(nil, modelMagic)
	for _, v := range []uint32{6, 6, 1, 1} {
		zeroConv = fuzzU32(zeroConv, v)
	}
	zeroConv = fuzzU32(zeroConv, 6)
	zeroConv = append(zeroConv, "conv2d"...)
	for _, v := range []uint32{0, 0, 0} {
		zeroConv = fuzzU32(zeroConv, v)
	}
	seeds["zero_conv_meta"] = zeroConv

	// dense layer claiming 0 units — same panic family.
	zeroDense := fuzzU32(nil, modelMagic)
	for _, v := range []uint32{1, 1, 8, 1} {
		zeroDense = fuzzU32(zeroDense, v)
	}
	zeroDense = fuzzU32(zeroDense, 5)
	zeroDense = append(zeroDense, "dense"...)
	for _, v := range []uint32{0, 0, 0} {
		zeroDense = fuzzU32(zeroDense, v)
	}
	seeds["zero_dense_units"] = zeroDense

	// dense header whose parameter record claims ~100M floats with no
	// bytes behind it — the over-allocation shape (binary.Read used to
	// reserve the full claimed size before noticing the input ended).
	hostile := fuzzU32(nil, modelMagic)
	for _, v := range []uint32{1, 1, 1000, 1} {
		hostile = fuzzU32(hostile, v)
	}
	hostile = fuzzU32(hostile, 5)
	hostile = append(hostile, "dense"...)
	for _, v := range []uint32{50_000, 0, 0} {
		hostile = fuzzU32(hostile, v)
	}
	hostile = fuzzU32(hostile, 50_000_000) // w size: claims 400 MB of floats
	seeds["hostile_param_size"] = hostile

	// layer count far beyond anything Save produces.
	bogusCount := append([]byte(nil), valid[:16]...)
	bogusCount = fuzzU32(bogusCount, 1<<30)
	seeds["bogus_layer_count"] = bogusCount

	// unknown layer name.
	unknown := fuzzU32(nil, modelMagic)
	for _, v := range []uint32{6, 6, 1, 1} {
		unknown = fuzzU32(unknown, v)
	}
	unknown = fuzzU32(unknown, 7)
	unknown = append(unknown, "dropout"...)
	for _, v := range []uint32{1, 1, 1} {
		unknown = fuzzU32(unknown, v)
	}
	seeds["unknown_layer"] = unknown

	return seeds
}

// FuzzNetworkLoad throws arbitrary bytes at the model decoder. The
// invariants: no panic, clean errors, and no network whose weights
// outgrow the input that claimed to carry them — every parameter float
// is 8 bytes on the wire, so a loaded model can never hold more than
// len(data)/8 of them.
func FuzzNetworkLoad(f *testing.F) {
	for _, data := range seedModels(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected; nothing further to check
		}
		if got := net.NumParams() * 8; got > len(data) {
			t.Fatalf("loaded %d weight bytes from a %d-byte input", got, len(data))
		}
		// A successfully loaded model must round-trip bit-identically.
		var buf bytes.Buffer
		if err := net.Save(&buf); err != nil {
			t.Fatalf("re-save: %v", err)
		}
		again, err := Load(&buf)
		if err != nil {
			t.Fatalf("re-load: %v", err)
		}
		if again.NumParams() != net.NumParams() || again.In != net.In || again.Out != net.Out {
			t.Fatalf("round-trip drifted: %v/%v params %d/%d",
				net.In, again.In, net.NumParams(), again.NumParams())
		}
	})
}

// TestLoadForgedHeaders pins the decoder's behavior on each forged seed:
// a clean error (never a panic, never a giant allocation) with a message
// from the validation layer, not a downstream failure.
func TestLoadForgedHeaders(t *testing.T) {
	seeds := seedModels(t)
	cases := []struct {
		seed    string
		wantErr string
	}{
		{"zero_conv_meta", "implausible conv meta"},
		{"zero_dense_units", "implausible dense units"},
		{"hostile_param_size", ""}, // EOF after at most one chunk — any clean error
		{"bogus_layer_count", "implausible layer count"},
		{"unknown_layer", "unknown layer"},
		{"truncated_weights", ""},
		{"magic_only", ""},
	}
	for _, c := range cases {
		data, ok := seeds[c.seed]
		if !ok {
			t.Fatalf("no seed %q", c.seed)
		}
		_, err := Load(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: Load accepted forged input", c.seed)
			continue
		}
		if c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q, want substring %q", c.seed, err, c.wantErr)
		}
	}
}

// TestLoadRoundTrip pins that a real saved model still loads with
// identical weights after the validation rewrite.
func TestLoadRoundTrip(t *testing.T) {
	data := savedModel(t)
	net, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, buf.Bytes()) {
		t.Fatal("save→load→save is not bit-identical")
	}
}

// TestWriteFuzzCorpus regenerates the committed seed corpus. Normally a
// no-op; run with VVD_WRITE_FUZZ_CORPUS=1 after changing the model
// format.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("VVD_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set VVD_WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz/FuzzNetworkLoad")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzNetworkLoad")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seedModels(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, "seed_"+name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSeedCorpusMatchesCommittedFiles pins that the committed corpus
// files exist — a drifted model format with a stale corpus would
// silently fuzz the wrong bytes.
func TestSeedCorpusMatchesCommittedFiles(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzNetworkLoad")
	for name := range seedModels(t) {
		p := filepath.Join(dir, "seed_"+name)
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing committed corpus file %s (regenerate with VVD_WRITE_FUZZ_CORPUS=1)", p)
		}
	}
}

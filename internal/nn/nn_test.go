package nn

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
)

func randInput(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// numericalGrad estimates ∂loss/∂θ by central differences.
func numericalGrad(t *testing.T, net *Network, x, y []float64, p *Param, i int) float64 {
	t.Helper()
	const eps = 1e-6
	orig := p.W[i]
	lossAt := func(v float64) float64 {
		p.W[i] = v
		out, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		l, err := MSE(out, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	plus := lossAt(orig + eps)
	minus := lossAt(orig - eps)
	p.W[i] = orig
	return (plus - minus) / (2 * eps)
}

func gradCheck(t *testing.T, net *Network, inSize, outSize int, seed uint64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+1))
	x := randInput(rng, inSize)
	y := randInput(rng, outSize)
	out, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	grad := make([]float64, len(out))
	if _, err := MSE(out, y, grad); err != nil {
		t.Fatal(err)
	}
	net.ZeroGrad()
	// Re-run forward to refresh caches (numericalGrad perturbed them).
	if _, err := net.Forward(x); err != nil {
		t.Fatal(err)
	}
	net.Backward(grad)
	for pi, p := range net.Params() {
		step := len(p.W)/5 + 1
		for i := 0; i < len(p.W); i += step {
			got := p.G[i]
			want := numericalGrad(t, net, x, y, p, i)
			scale := math.Max(1e-3, math.Abs(want))
			if math.Abs(got-want)/scale > 1e-4 {
				t.Fatalf("param %d index %d: analytic %v numeric %v", pi, i, got, want)
			}
		}
	}
}

func TestGradCheckDense(t *testing.T) {
	net, err := NewNetwork(Shape{1, 1, 7}, rand.New(rand.NewPCG(1, 2)),
		NewDense(5), NewReLU(), NewDense(3))
	if err != nil {
		t.Fatal(err)
	}
	gradCheck(t, net, 7, 3, 10)
}

func TestGradCheckConv(t *testing.T) {
	net, err := NewNetwork(Shape{6, 7, 2}, rand.New(rand.NewPCG(3, 4)),
		NewConv2D(3, 3, 4), NewReLU(), NewFlatten(), NewDense(3))
	if err != nil {
		t.Fatal(err)
	}
	gradCheck(t, net, 6*7*2, 3, 20)
}

func TestGradCheckAvgPool(t *testing.T) {
	net, err := NewNetwork(Shape{6, 6, 2}, rand.New(rand.NewPCG(5, 6)),
		NewConv2D(3, 3, 3), NewPool2D(AvgPool), NewReLU(), NewFlatten(), NewDense(2))
	if err != nil {
		t.Fatal(err)
	}
	gradCheck(t, net, 6*6*2, 2, 30)
}

func TestGradCheckMaxPool(t *testing.T) {
	net, err := NewNetwork(Shape{6, 6, 1}, rand.New(rand.NewPCG(7, 8)),
		NewConv2D(3, 3, 2), NewPool2D(MaxPool), NewFlatten(), NewDense(2))
	if err != nil {
		t.Fatal(err)
	}
	gradCheck(t, net, 36, 2, 40)
}

func TestGradCheckDeepStack(t *testing.T) {
	// The paper-shaped stack in miniature: conv-relu-pool ×2 then dense.
	net, err := NewNetwork(Shape{10, 12, 1}, rand.New(rand.NewPCG(9, 10)),
		NewConv2D(3, 3, 4), NewReLU(), NewPool2D(AvgPool),
		NewConv2D(3, 3, 6), NewReLU(),
		NewFlatten(), NewDense(8), NewReLU(), NewDense(4))
	if err != nil {
		t.Fatal(err)
	}
	gradCheck(t, net, 120, 4, 50)
}

func TestShapePropagation(t *testing.T) {
	// 50×90 input through the paper's Fig. 8 stack.
	net, err := NewNetwork(Shape{50, 90, 1}, rand.New(rand.NewPCG(11, 12)),
		NewConv2D(3, 3, 8), NewReLU(), NewPool2D(AvgPool),
		NewConv2D(3, 3, 8), NewReLU(), NewPool2D(AvgPool),
		NewConv2D(3, 3, 16), NewReLU(), NewPool2D(AvgPool),
		NewConv2D(3, 3, 16), NewReLU(),
		NewFlatten(), NewDense(64), NewReLU(), NewDense(22))
	if err != nil {
		t.Fatal(err)
	}
	if net.Out != (Shape{1, 1, 22}) {
		t.Fatalf("out shape %s want 1x1x22", net.Out)
	}
	x := randInput(rand.New(rand.NewPCG(1, 1)), 50*90)
	out, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 22 {
		t.Fatalf("output len %d", len(out))
	}
}

func TestConvTooSmallInput(t *testing.T) {
	if _, err := NewNetwork(Shape{2, 2, 1}, nil, NewConv2D(3, 3, 2)); err == nil {
		t.Fatal("kernel larger than input accepted")
	}
}

func TestDenseRequiresFlatten(t *testing.T) {
	if _, err := NewNetwork(Shape{4, 4, 1}, nil, NewDense(3)); err == nil {
		t.Fatal("Dense on unflattened input accepted")
	}
}

func TestForwardSizeMismatch(t *testing.T) {
	net, err := NewNetwork(Shape{1, 1, 4}, rand.New(rand.NewPCG(1, 2)), NewDense(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Forward([]float64{1, 2}); err == nil {
		t.Fatal("wrong input size accepted")
	}
}

func TestMSE(t *testing.T) {
	grad := make([]float64, 2)
	loss, err := MSE([]float64{1, 3}, []float64{0, 1}, grad)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-2.5) > 1e-12 {
		t.Fatalf("loss = %v want 2.5", loss)
	}
	if math.Abs(grad[0]-1) > 1e-12 || math.Abs(grad[1]-2) > 1e-12 {
		t.Fatalf("grad = %v", grad)
	}
	if _, err := MSE([]float64{1}, []float64{1, 2}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU()
	out := r.Forward([]float64{-1, 0, 2})
	if out[0] != 0 || out[1] != 0 || out[2] != 2 {
		t.Fatalf("relu out = %v", out)
	}
	g := r.Backward([]float64{5, 5, 5})
	if g[0] != 0 || g[1] != 0 || g[2] != 5 {
		t.Fatalf("relu grad = %v", g)
	}
}

func TestPoolingValues(t *testing.T) {
	avg := NewPool2D(AvgPool)
	if _, err := avg.OutShape(Shape{2, 2, 1}); err != nil {
		t.Fatal(err)
	}
	out := avg.Forward([]float64{1, 2, 3, 4})
	if out[0] != 2.5 {
		t.Fatalf("avg = %v", out[0])
	}
	max := NewPool2D(MaxPool)
	if _, err := max.OutShape(Shape{2, 2, 1}); err != nil {
		t.Fatal(err)
	}
	out = max.Forward([]float64{1, 2, 3, 4})
	if out[0] != 4 {
		t.Fatalf("max = %v", out[0])
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// Learn a linear map with a small dense network.
	rng := rand.New(rand.NewPCG(13, 14))
	mk := func(n int) []Sample {
		out := make([]Sample, n)
		for i := range out {
			x := randInput(rng, 6)
			y := []float64{x[0] + 0.5*x[1], x[2] - x[3]}
			out[i] = Sample{X: x, Y: y}
		}
		return out
	}
	train, val := mk(256), mk(64)
	net, err := NewNetwork(Shape{1, 1, 6}, rng, NewDense(16), NewReLU(), NewDense(2))
	if err != nil {
		t.Fatal(err)
	}
	opt := NewNadam()
	opt.LR = 3e-3
	hist, err := Fit(net, opt, train, val, TrainConfig{Epochs: 40, BatchSize: 16, Workers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	first, last := hist.ValLoss[0], hist.BestVal
	if last > first/5 {
		t.Fatalf("training barely improved: first %v best %v", first, last)
	}
}

func TestTrainingConvergesOnConvTask(t *testing.T) {
	// Predict the mean of an image patch: a task conv+pool can nail.
	rng := rand.New(rand.NewPCG(15, 16))
	mk := func(n int) []Sample {
		out := make([]Sample, n)
		for i := range out {
			x := randInput(rng, 8*8)
			var mean float64
			for _, v := range x {
				mean += v
			}
			mean /= 64
			out[i] = Sample{X: x, Y: []float64{mean}}
		}
		return out
	}
	train, val := mk(200), mk(50)
	net, err := NewNetwork(Shape{8, 8, 1}, rng,
		NewConv2D(3, 3, 4), NewReLU(), NewPool2D(AvgPool),
		NewFlatten(), NewDense(8), NewReLU(), NewDense(1))
	if err != nil {
		t.Fatal(err)
	}
	opt := NewNadam()
	opt.LR = 2e-3
	hist, err := Fit(net, opt, train, val, TrainConfig{Epochs: 30, BatchSize: 16, Workers: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if hist.BestVal > hist.ValLoss[0]/2 {
		t.Fatalf("conv task did not converge: first %v best %v", hist.ValLoss[0], hist.BestVal)
	}
}

func TestBestWeightsRestored(t *testing.T) {
	// After Fit, the network must hold the best-validation weights: its
	// val loss must equal hist.BestVal.
	rng := rand.New(rand.NewPCG(17, 18))
	mk := func(n int) []Sample {
		out := make([]Sample, n)
		for i := range out {
			x := randInput(rng, 4)
			out[i] = Sample{X: x, Y: []float64{x[0] * 2}}
		}
		return out
	}
	train, val := mk(64), mk(32)
	net, err := NewNetwork(Shape{1, 1, 4}, rng, NewDense(8), NewReLU(), NewDense(1))
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Fit(net, NewNadam(), train, val, TrainConfig{Epochs: 5, BatchSize: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Evaluate(net, val)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-hist.BestVal) > 1e-9 {
		t.Fatalf("restored val loss %v != best %v", got, hist.BestVal)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 20))
	net, err := NewNetwork(Shape{10, 10, 1}, rng,
		NewConv2D(3, 3, 3), NewReLU(), NewPool2D(AvgPool),
		NewConv2D(2, 2, 4), NewPool2D(MaxPool),
		NewFlatten(), NewDense(5), NewReLU(), NewDense(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(rng, 100)
	a, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("output %d differs after load: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte{1, 2, 3, 4, 5})); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCloneSharesWeights(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	net, err := NewNetwork(Shape{1, 1, 3}, rng, NewDense(4), NewReLU(), NewDense(2))
	if err != nil {
		t.Fatal(err)
	}
	clone := net.Clone()
	// Mutating master weights must be visible in the clone.
	net.Params()[0].W[0] = 42
	if clone.Params()[0].W[0] != 42 {
		t.Fatal("clone does not share weights")
	}
	// Gradients must be private.
	clone.Params()[0].G[0] = 7
	if net.Params()[0].G[0] == 7 {
		t.Fatal("clone shares gradient buffers")
	}
}

func TestCloneForwardMatches(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	net, err := NewNetwork(Shape{6, 6, 1}, rng,
		NewConv2D(3, 3, 2), NewReLU(), NewPool2D(AvgPool), NewFlatten(), NewDense(3))
	if err != nil {
		t.Fatal(err)
	}
	clone := net.Clone()
	x := randInput(rng, 36)
	a, _ := net.Forward(x)
	b, _ := clone.Forward(x)
	for i := range a {
		if a[i] != b[i] { //vvdlint:bitexact -- batch and engine parity vs Forward is bitwise by contract
			t.Fatal("clone forward differs")
		}
	}
}

func TestNadamDecaySchedule(t *testing.T) {
	o := NewNadam()
	lr0 := o.EffectiveLR()
	o.NextEpoch()
	lr1 := o.EffectiveLR()
	if math.Abs(lr1/lr0-0.996) > 1e-9 {
		t.Fatalf("decay ratio %v want 0.996", lr1/lr0)
	}
}

func TestNadamStepMovesWeights(t *testing.T) {
	p := newParam(3)
	p.W = []float64{1, 2, 3}
	p.G = []float64{1, -1, 0}
	o := NewNadam()
	o.LR = 0.1
	o.Step([]*Param{p}, 1)
	if p.W[0] >= 1 {
		t.Fatal("positive gradient must decrease weight")
	}
	if p.W[1] <= 2 {
		t.Fatal("negative gradient must increase weight")
	}
	if p.W[2] != 3 {
		t.Fatal("zero gradient must not move weight")
	}
}

func TestFitDeterministicWithSeed(t *testing.T) {
	rng1 := rand.New(rand.NewPCG(25, 26))
	mk := func(rng *rand.Rand, n int) []Sample {
		out := make([]Sample, n)
		for i := range out {
			x := randInput(rng, 4)
			out[i] = Sample{X: x, Y: []float64{x[0]}}
		}
		return out
	}
	run := func() float64 {
		rng := rand.New(rand.NewPCG(27, 28))
		net, err := NewNetwork(Shape{1, 1, 4}, rng, NewDense(6), NewReLU(), NewDense(1))
		if err != nil {
			t.Fatal(err)
		}
		data := mk(rand.New(rand.NewPCG(29, 30)), 64)
		hist, err := Fit(net, NewNadam(), data, nil, TrainConfig{Epochs: 3, BatchSize: 8, Workers: 1, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return hist.TrainLoss[len(hist.TrainLoss)-1]
	}
	_ = rng1
	if run() != run() {
		t.Fatal("same seed must reproduce training")
	}
}

func TestFitErrors(t *testing.T) {
	net, err := NewNetwork(Shape{1, 1, 2}, rand.New(rand.NewPCG(1, 2)), NewDense(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fit(net, NewNadam(), nil, nil, DefaultTrainConfig()); err == nil {
		t.Fatal("empty training set accepted")
	}
	bad := []Sample{{X: []float64{1}, Y: []float64{1}}}
	if _, err := Fit(net, NewNadam(), bad, nil, DefaultTrainConfig()); err == nil {
		t.Fatal("shape-mismatched sample accepted")
	}
	good := []Sample{{X: []float64{1, 2}, Y: []float64{1}}}
	if _, err := Fit(net, NewNadam(), good, nil, TrainConfig{Epochs: 0}); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestNumParams(t *testing.T) {
	net, err := NewNetwork(Shape{1, 1, 3}, rand.New(rand.NewPCG(1, 2)), NewDense(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := net.NumParams(); got != 3*4+4 {
		t.Fatalf("NumParams = %d want 16", got)
	}
	if net.L2Norm() <= 0 {
		t.Fatal("L2Norm must be positive after init")
	}
}

// Package nn is a small, dependency-free neural network library sufficient
// to reproduce the paper's CNN (Fig. 8): 2D convolutions, ReLU, average and
// max pooling, dense layers, mean-squared-error loss and the Nadam
// optimizer with per-epoch learning-rate decay. Training supports
// data-parallel workers, and models serialize to a compact binary format.
//
// Tensors are flat []float64 in row-major [H][W][C] layout; layers carry
// their own forward caches, so one network instance must not be used from
// multiple goroutines concurrently (the trainer clones per worker).
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// Shape is a [height, width, channels] tensor shape.
type Shape struct{ H, W, C int }

// Size returns the element count.
func (s Shape) Size() int { return s.H * s.W * s.C }

func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.H, s.W, s.C) }

// Param is a learnable parameter tensor with its gradient and Nadam
// moments. Workers share W but keep private G.
type Param struct {
	W []float64 // values (shared across clones)
	G []float64 // gradient accumulator (per clone)
	M []float64 // first moment (owned by the optimizer)
	V []float64 // second moment
}

func newParam(n int) *Param {
	return &Param{W: make([]float64, n), G: make([]float64, n), M: make([]float64, n), V: make([]float64, n)}
}

// Layer is one differentiable stage of the network.
type Layer interface {
	// OutShape reports the output shape for a given input shape.
	OutShape(in Shape) (Shape, error)
	// Forward computes the layer output, caching whatever Backward needs.
	Forward(in []float64) []float64
	// Backward consumes ∂L/∂out and returns ∂L/∂in, accumulating parameter
	// gradients into Params().
	Backward(gradOut []float64) []float64
	// Params returns learnable parameters (empty for stateless layers).
	Params() []*Param
	// clone returns a copy sharing parameter values (W slices) but with
	// private caches and gradients.
	clone() Layer
	// forwardBatch computes the layer output for a batch of inputs without
	// touching the Backward caches (inference only), writing into the
	// caller-provided (possibly recycled, non-zeroed) output slices.
	// Weighted layers traverse their parameters once for the whole batch.
	forwardBatch(ins, outs [][]float64)
	// name identifies the layer type for serialization.
	name() string
}

// ---------- Conv2D ----------

// Conv2D is a valid-padding, stride-1 2D convolution with bias.
type Conv2D struct {
	KH, KW  int
	Filters int

	in      Shape
	out     Shape
	w       *Param // [KH][KW][Cin][Filters]
	b       *Param // [Filters]
	inCache []float64
}

// NewConv2D creates a convolution layer; weights are initialized when the
// network is built (shape depends on the input).
func NewConv2D(kh, kw, filters int) *Conv2D {
	if kh <= 0 || kw <= 0 || filters <= 0 {
		panic("nn: Conv2D needs positive kernel and filter counts")
	}
	return &Conv2D{KH: kh, KW: kw, Filters: filters}
}

// OutShape implements Layer; it also materializes the weights on first use.
func (c *Conv2D) OutShape(in Shape) (Shape, error) {
	if in.H < c.KH || in.W < c.KW {
		return Shape{}, fmt.Errorf("nn: conv kernel %dx%d larger than input %s", c.KH, c.KW, in)
	}
	c.in = in
	c.out = Shape{H: in.H - c.KH + 1, W: in.W - c.KW + 1, C: c.Filters}
	if c.w == nil {
		c.w = newParam(c.KH * c.KW * in.C * c.Filters)
		c.b = newParam(c.Filters)
	}
	return c.out, nil
}

func (c *Conv2D) initWeights(rng *rand.Rand) {
	// He initialization for ReLU networks.
	fanIn := float64(c.KH * c.KW * c.in.C)
	std := math.Sqrt(2 / fanIn)
	for i := range c.w.W {
		c.w.W[i] = rng.NormFloat64() * std
	}
}

func (c *Conv2D) Forward(in []float64) []float64 {
	c.inCache = in
	oh, ow, oc := c.out.H, c.out.W, c.out.C
	ic := c.in.C
	iw := c.in.W
	out := make([]float64, oh*ow*oc)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			base := (y*ow + x) * oc
			for f := 0; f < oc; f++ {
				out[base+f] = c.b.W[f]
			}
			for ky := 0; ky < c.KH; ky++ {
				for kx := 0; kx < c.KW; kx++ {
					inBase := ((y+ky)*iw + x + kx) * ic
					wBase := (ky*c.KW + kx) * ic * oc
					for ci := 0; ci < ic; ci++ {
						iv := in[inBase+ci]
						if iv == 0 {
							continue
						}
						wRow := c.w.W[wBase+ci*oc : wBase+(ci+1)*oc]
						oRow := out[base : base+oc]
						for f, wv := range wRow {
							oRow[f] += iv * wv
						}
					}
				}
			}
		}
	}
	return out
}

func (c *Conv2D) Backward(gradOut []float64) []float64 {
	oh, ow, oc := c.out.H, c.out.W, c.out.C
	ic := c.in.C
	iw := c.in.W
	gradIn := make([]float64, c.in.Size())
	in := c.inCache
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			base := (y*ow + x) * oc
			gRow := gradOut[base : base+oc]
			for f, gv := range gRow {
				c.b.G[f] += gv
			}
			for ky := 0; ky < c.KH; ky++ {
				for kx := 0; kx < c.KW; kx++ {
					inBase := ((y+ky)*iw + x + kx) * ic
					wBase := (ky*c.KW + kx) * ic * oc
					for ci := 0; ci < ic; ci++ {
						iv := in[inBase+ci]
						wRow := c.w.W[wBase+ci*oc : wBase+(ci+1)*oc]
						gwRow := c.w.G[wBase+ci*oc : wBase+(ci+1)*oc]
						var acc float64
						for f, gv := range gRow {
							gwRow[f] += iv * gv
							acc += wRow[f] * gv
						}
						gradIn[inBase+ci] += acc
					}
				}
			}
		}
	}
	return gradIn
}

func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

func (c *Conv2D) clone() Layer {
	cp := *c
	cp.inCache = nil
	// Share W (and M/V via the same Param struct is wrong for gradients:
	// clones need private G). Build shadow params sharing W/M/V slices.
	cp.w = &Param{W: c.w.W, G: make([]float64, len(c.w.G)), M: c.w.M, V: c.w.V}
	cp.b = &Param{W: c.b.W, G: make([]float64, len(c.b.G)), M: c.b.M, V: c.b.V}
	return &cp
}

func (c *Conv2D) name() string { return "conv2d" }

// ---------- ReLU ----------

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

func (r *ReLU) OutShape(in Shape) (Shape, error) { return in, nil }

func (r *ReLU) Forward(in []float64) []float64 {
	out := make([]float64, len(in))
	if cap(r.mask) < len(in) {
		r.mask = make([]bool, len(in))
	}
	r.mask = r.mask[:len(in)]
	for i, v := range in {
		if v > 0 {
			out[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

func (r *ReLU) Backward(gradOut []float64) []float64 {
	gradIn := make([]float64, len(gradOut))
	for i, g := range gradOut {
		if r.mask[i] {
			gradIn[i] = g
		}
	}
	return gradIn
}

func (r *ReLU) Params() []*Param { return nil }
func (r *ReLU) clone() Layer     { return &ReLU{} }
func (r *ReLU) name() string     { return "relu" }

// ---------- Pooling ----------

// PoolKind selects average or max pooling.
type PoolKind int

// Pooling kinds.
const (
	AvgPool PoolKind = iota
	MaxPool
)

// Pool2D is a 2×2, stride-2 pooling layer (the paper uses 2×2 everywhere;
// average pooling performed slightly better than max in their ablation).
//
// Odd input dimensions are defined, not an error: the output is
// ⌊H/2⌋×⌊W/2⌋ and a trailing odd row or column contributes to no pooling
// window (valid-style truncation, matching Keras/TensorFlow defaults).
// The paper's architecture depends on this — its conv stack produces
// 11×21 and 9×19 planes on the 50×90 input.
type Pool2D struct {
	Kind PoolKind

	in, out Shape
	argmax  []int // for max pooling backward
}

// NewPool2D returns a 2×2/stride-2 pooling layer of the given kind.
func NewPool2D(kind PoolKind) *Pool2D { return &Pool2D{Kind: kind} }

func (p *Pool2D) OutShape(in Shape) (Shape, error) {
	if in.H < 2 || in.W < 2 {
		return Shape{}, fmt.Errorf("nn: pool input %s too small", in)
	}
	p.in = in
	p.out = Shape{H: in.H / 2, W: in.W / 2, C: in.C}
	return p.out, nil
}

func (p *Pool2D) Forward(in []float64) []float64 {
	oh, ow, c := p.out.H, p.out.W, p.out.C
	iw := p.in.W
	out := make([]float64, oh*ow*c)
	if p.Kind == MaxPool {
		if cap(p.argmax) < len(out) {
			p.argmax = make([]int, len(out))
		}
		p.argmax = p.argmax[:len(out)]
	}
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			for ch := 0; ch < c; ch++ {
				i00 := ((2*y)*iw + 2*x) * c
				i01 := i00 + c
				i10 := ((2*y+1)*iw + 2*x) * c
				i11 := i10 + c
				o := (y*ow+x)*c + ch
				v00, v01 := in[i00+ch], in[i01+ch]
				v10, v11 := in[i10+ch], in[i11+ch]
				if p.Kind == AvgPool {
					out[o] = (v00 + v01 + v10 + v11) / 4
					continue
				}
				best, idx := v00, i00+ch
				if v01 > best {
					best, idx = v01, i01+ch
				}
				if v10 > best {
					best, idx = v10, i10+ch
				}
				if v11 > best {
					best, idx = v11, i11+ch
				}
				out[o] = best
				p.argmax[o] = idx
			}
		}
	}
	return out
}

func (p *Pool2D) Backward(gradOut []float64) []float64 {
	gradIn := make([]float64, p.in.Size())
	oh, ow, c := p.out.H, p.out.W, p.out.C
	iw := p.in.W
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			for ch := 0; ch < c; ch++ {
				o := (y*ow+x)*c + ch
				g := gradOut[o]
				if p.Kind == MaxPool {
					gradIn[p.argmax[o]] += g
					continue
				}
				q := g / 4
				i00 := ((2*y)*iw + 2*x) * c
				i10 := ((2*y+1)*iw + 2*x) * c
				gradIn[i00+ch] += q
				gradIn[i00+c+ch] += q
				gradIn[i10+ch] += q
				gradIn[i10+c+ch] += q
			}
		}
	}
	return gradIn
}

func (p *Pool2D) Params() []*Param { return nil }
func (p *Pool2D) clone() Layer     { return &Pool2D{Kind: p.Kind} }
func (p *Pool2D) name() string {
	if p.Kind == MaxPool {
		return "maxpool"
	}
	return "avgpool"
}

// ---------- Flatten ----------

// Flatten reshapes [H,W,C] to [1,1,H·W·C]. Data layout is already flat, so
// it is an identity on values.
type Flatten struct{}

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

func (f *Flatten) OutShape(in Shape) (Shape, error) {
	return Shape{H: 1, W: 1, C: in.Size()}, nil
}
func (f *Flatten) Forward(in []float64) []float64       { return in }
func (f *Flatten) Backward(gradOut []float64) []float64 { return gradOut }
func (f *Flatten) Params() []*Param                     { return nil }
func (f *Flatten) clone() Layer                         { return &Flatten{} }
func (f *Flatten) name() string                         { return "flatten" }

// ---------- Dense ----------

// Dense is a fully-connected layer.
type Dense struct {
	Units int

	in      Shape
	w       *Param // [in][Units]
	b       *Param // [Units]
	inCache []float64
}

// NewDense returns a fully-connected layer with the given output width.
func NewDense(units int) *Dense {
	if units <= 0 {
		panic("nn: Dense needs positive units")
	}
	return &Dense{Units: units}
}

func (d *Dense) OutShape(in Shape) (Shape, error) {
	if in.H != 1 || in.W != 1 {
		return Shape{}, errors.New("nn: Dense requires flattened input (use Flatten)")
	}
	d.in = in
	if d.w == nil {
		d.w = newParam(in.C * d.Units)
		d.b = newParam(d.Units)
	}
	return Shape{H: 1, W: 1, C: d.Units}, nil
}

func (d *Dense) initWeights(rng *rand.Rand) {
	std := math.Sqrt(2 / float64(d.in.C))
	for i := range d.w.W {
		d.w.W[i] = rng.NormFloat64() * std
	}
}

func (d *Dense) Forward(in []float64) []float64 {
	d.inCache = in
	out := make([]float64, d.Units)
	copy(out, d.b.W)
	for i, iv := range in {
		if iv == 0 {
			continue
		}
		row := d.w.W[i*d.Units : (i+1)*d.Units]
		for j, wv := range row {
			out[j] += iv * wv
		}
	}
	return out
}

func (d *Dense) Backward(gradOut []float64) []float64 {
	gradIn := make([]float64, len(d.inCache))
	for j, g := range gradOut {
		d.b.G[j] += g
	}
	for i, iv := range d.inCache {
		row := d.w.W[i*d.Units : (i+1)*d.Units]
		gRow := d.w.G[i*d.Units : (i+1)*d.Units]
		var acc float64
		for j, g := range gradOut {
			gRow[j] += iv * g
			acc += row[j] * g
		}
		gradIn[i] = acc
	}
	return gradIn
}

func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

func (d *Dense) clone() Layer {
	cp := *d
	cp.inCache = nil
	cp.w = &Param{W: d.w.W, G: make([]float64, len(d.w.G)), M: d.w.M, V: d.w.V}
	cp.b = &Param{W: d.b.W, G: make([]float64, len(d.b.G)), M: d.b.M, V: d.b.V}
	return &cp
}

func (d *Dense) name() string { return "dense" }

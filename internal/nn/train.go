package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"
)

// Nadam is the Nesterov-accelerated Adam optimizer used by the paper
// (initial learning rate 1e-4, per-epoch decay 0.004).
type Nadam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64
	// Decay is the multiplicative per-epoch schedule: each epoch the
	// learning rate is (1-Decay)× the previous epoch's, i.e. the paper's
	// "drops to 0.996 of its value each epoch" with Decay = 0.004. (This
	// is not Keras' hyperbolic 1/(1+Decay·epoch) decay.)
	Decay float64

	t     int
	epoch int
}

// NewNadam returns the paper's optimizer configuration.
func NewNadam() *Nadam {
	return &Nadam{LR: 1e-4, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8, Decay: 0.004}
}

// EffectiveLR returns the decayed learning rate for the current epoch:
// LR·(1-Decay)^epoch, the paper's 0.996-per-epoch geometric schedule.
func (o *Nadam) EffectiveLR() float64 {
	return o.LR * math.Pow(1-o.Decay, float64(o.epoch))
}

// NextEpoch advances the decay schedule.
func (o *Nadam) NextEpoch() { o.epoch++ }

// Step applies one Nadam update to the parameters using their accumulated
// gradients (scaled by 1/batch), then leaves gradients untouched (caller
// zeroes them).
func (o *Nadam) Step(params []*Param, batch int) {
	o.t++
	lr := o.EffectiveLR()
	b1, b2 := o.Beta1, o.Beta2
	t := float64(o.t)
	// Nesterov momentum schedule (simplified Keras Nadam).
	bc1 := 1 - math.Pow(b1, t)
	bc1Next := 1 - math.Pow(b1, t+1)
	bc2 := 1 - math.Pow(b2, t)
	scale := 1 / float64(batch)
	for _, p := range params {
		for i, g := range p.G {
			g *= scale
			p.M[i] = b1*p.M[i] + (1-b1)*g
			p.V[i] = b2*p.V[i] + (1-b2)*g*g
			mHat := p.M[i]/bc1Next*b1 + (1-b1)*g/bc1
			vHat := p.V[i] / bc2
			p.W[i] -= lr * mHat / (math.Sqrt(vHat) + o.Epsilon)
		}
	}
}

// Sample is one training example.
type Sample struct {
	X []float64
	Y []float64
}

// TrainConfig controls Fit.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Workers   int // data-parallel gradient workers (0 = GOMAXPROCS)
	Seed      uint64
	// Verbose, if non-nil, receives one line per epoch.
	Verbose func(epoch int, trainLoss, valLoss float64)
}

// DefaultTrainConfig mirrors the paper's schedule scaled for CPU training.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, BatchSize: 16, Seed: 1}
}

// History records per-epoch losses of a training run.
type History struct {
	TrainLoss []float64
	ValLoss   []float64
	BestEpoch int
	BestVal   float64
}

// Fit trains the network with Nadam + MSE, evaluating the validation set
// each epoch and restoring the best-validation weights at the end (the
// paper selects the epoch with the best validation performance).
func Fit(net *Network, opt *Nadam, train, val []Sample, cfg TrainConfig) (*History, error) {
	if len(train) == 0 {
		return nil, errors.New("nn: Fit needs training samples")
	}
	if cfg.Epochs <= 0 {
		return nil, errors.New("nn: Fit needs positive epochs")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.BatchSize {
		workers = cfg.BatchSize
	}
	for _, s := range train {
		if len(s.X) != net.In.Size() || len(s.Y) != net.Out.Size() {
			return nil, fmt.Errorf("nn: sample shape mismatch (x %d want %d, y %d want %d)",
				len(s.X), net.In.Size(), len(s.Y), net.Out.Size())
		}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xabcdef))
	clones := make([]*Network, workers)
	for i := range clones {
		clones[i] = net.Clone()
	}
	hist := &History{BestVal: math.Inf(1), BestEpoch: -1}
	masterParams := net.Params()
	var best [][]float64

	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			loss, err := parallelBatch(clones, train, batch, workers)
			if err != nil {
				return nil, err
			}
			// Reduce worker gradients into the master params.
			for wi := range clones {
				cp := clones[wi].Params()
				for pi, p := range masterParams {
					for gi, g := range cp[pi].G {
						p.G[gi] += g
					}
					for gi := range cp[pi].G {
						cp[pi].G[gi] = 0
					}
				}
			}
			opt.Step(masterParams, len(batch))
			net.ZeroGrad()
			// Weight each batch's mean loss by its size: averaging batch
			// means directly over-weights the final partial batch.
			epochLoss += loss * float64(len(batch))
		}
		trainLoss := epochLoss / float64(len(order))
		valLoss := trainLoss
		if len(val) > 0 {
			var err error
			valLoss, err = Evaluate(net, val)
			if err != nil {
				return nil, err
			}
		}
		hist.TrainLoss = append(hist.TrainLoss, trainLoss)
		hist.ValLoss = append(hist.ValLoss, valLoss)
		if valLoss < hist.BestVal {
			hist.BestVal = valLoss
			hist.BestEpoch = epoch
			best = snapshot(masterParams)
		}
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, trainLoss, valLoss)
		}
		opt.NextEpoch()
	}
	if best != nil {
		for i, p := range masterParams {
			copy(p.W, best[i])
		}
	}
	return hist, nil
}

func snapshot(params []*Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.W...)
	}
	return out
}

// parallelBatch distributes the batch across worker clones and returns the
// mean sample loss. Each worker accumulates gradients into its own buffers.
func parallelBatch(clones []*Network, data []Sample, batch []int, workers int) (float64, error) {
	var wg sync.WaitGroup
	losses := make([]float64, workers)
	errs := make([]error, workers)
	per := (len(batch) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		if lo >= len(batch) {
			break
		}
		hi := lo + per
		if hi > len(batch) {
			hi = len(batch)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			netw := clones[w]
			grad := make([]float64, netw.Out.Size())
			for _, idx := range batch[lo:hi] {
				out, err := netw.Forward(data[idx].X)
				if err != nil {
					errs[w] = err
					return
				}
				loss, err := MSE(out, data[idx].Y, grad)
				if err != nil {
					errs[w] = err
					return
				}
				losses[w] += loss
				netw.Backward(grad)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var total float64
	for w := range losses {
		if errs[w] != nil {
			return 0, errs[w]
		}
		total += losses[w]
	}
	return total / float64(len(batch)), nil
}

// Evaluate returns the mean MSE over a sample set.
func Evaluate(net *Network, data []Sample) (float64, error) {
	if len(data) == 0 {
		return 0, errors.New("nn: Evaluate needs samples")
	}
	var sum float64
	for _, s := range data {
		out, err := net.Forward(s.X)
		if err != nil {
			return 0, err
		}
		loss, err := MSE(out, s.Y, nil)
		if err != nil {
			return 0, err
		}
		sum += loss
	}
	return sum / float64(len(data)), nil
}

package nn

import (
	"math/rand/v2"
	"sync"
	"testing"
)

// batchTestNet builds a small network exercising every layer kind.
func batchTestNet(t *testing.T) (*Network, Shape) {
	t.Helper()
	in := Shape{H: 12, W: 14, C: 2}
	rng := rand.New(rand.NewPCG(21, 43))
	net, err := NewNetwork(in, rng,
		NewConv2D(3, 3, 4), NewReLU(), NewPool2D(AvgPool),
		NewConv2D(3, 3, 6), NewReLU(), NewPool2D(MaxPool),
		NewFlatten(), NewDense(10), NewReLU(), NewDense(5))
	if err != nil {
		t.Fatal(err)
	}
	return net, in
}

func randBatch(rng *rand.Rand, n, size int) [][]float64 {
	ins := make([][]float64, n)
	for s := range ins {
		x := make([]float64, size)
		for i := range x {
			// Mix in exact zeros to hit the sparsity fast paths.
			if rng.IntN(5) == 0 {
				continue
			}
			x[i] = rng.NormFloat64()
		}
		ins[s] = x
	}
	return ins
}

// TestForwardBatchMatchesForward pins the contract: batched inference is
// bitwise identical to per-sample Forward, at every batch size.
func TestForwardBatchMatchesForward(t *testing.T) {
	net, in := batchTestNet(t)
	rng := rand.New(rand.NewPCG(7, 9))
	for _, batch := range []int{1, 2, 3, 8, 17} {
		ins := randBatch(rng, batch, in.Size())
		got, err := net.ForwardBatch(ins)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != batch {
			t.Fatalf("batch %d: got %d outputs", batch, len(got))
		}
		for s := range ins {
			want, err := net.Forward(ins[s])
			if err != nil {
				t.Fatal(err)
			}
			if len(got[s]) != len(want) {
				t.Fatalf("batch %d sample %d: output size %d, want %d", batch, s, len(got[s]), len(want))
			}
			for i := range want {
				if got[s][i] != want[i] { //vvdlint:bitexact -- batch and engine parity vs Forward is bitwise by contract
					t.Fatalf("batch %d sample %d output %d: batched %v != sequential %v",
						batch, s, i, got[s][i], want[i])
				}
			}
		}
	}
}

func TestForwardBatchEmptyAndErrors(t *testing.T) {
	net, in := batchTestNet(t)
	if out, err := net.ForwardBatch(nil); err != nil || out != nil {
		t.Fatalf("empty batch: got %v, %v", out, err)
	}
	if _, err := net.ForwardBatch([][]float64{make([]float64, in.Size()+1)}); err == nil {
		t.Fatal("expected size-mismatch error")
	}
	if _, err := net.ForwardBatch([][]float64{make([]float64, in.Size()), nil}); err == nil {
		t.Fatal("expected size-mismatch error for nil sample")
	}
}

// TestForwardBatchConcurrent verifies ForwardBatch is safe to call from
// multiple goroutines on one network instance (run under -race in CI).
func TestForwardBatchConcurrent(t *testing.T) {
	net, in := batchTestNet(t)
	rng := rand.New(rand.NewPCG(3, 5))
	ins := randBatch(rng, 6, in.Size())
	want, err := net.ForwardBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := net.ForwardBatch(ins)
			if err != nil {
				t.Error(err)
				return
			}
			for s := range want {
				for i := range want[s] {
					if got[s][i] != want[s][i] { //vvdlint:bitexact -- batch and engine parity vs Forward is bitwise by contract
						t.Errorf("concurrent ForwardBatch diverged at sample %d output %d", s, i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

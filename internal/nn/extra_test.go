package nn

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestPoolOddDimensionsFloor(t *testing.T) {
	// 5×7 input pools to 2×3 (floor division): the odd row/column is
	// dropped, matching Keras' default.
	p := NewPool2D(AvgPool)
	out, err := p.OutShape(Shape{5, 7, 2})
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{2, 3, 2}) {
		t.Fatalf("out = %v want 2x3x2", out)
	}
	in := make([]float64, 5*7*2)
	for i := range in {
		in[i] = float64(i)
	}
	res := p.Forward(in)
	if len(res) != out.Size() {
		t.Fatalf("forward len = %d want %d", len(res), out.Size())
	}
}

func TestEvaluateEmpty(t *testing.T) {
	net, err := NewNetwork(Shape{1, 1, 2}, rand.New(rand.NewPCG(1, 2)), NewDense(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(net, nil); err == nil {
		t.Fatal("empty evaluation set accepted")
	}
}

func TestConvMultiChannelShape(t *testing.T) {
	net, err := NewNetwork(Shape{8, 8, 3}, rand.New(rand.NewPCG(3, 4)),
		NewConv2D(3, 3, 5), NewConv2D(3, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if net.Out != (Shape{4, 4, 2}) {
		t.Fatalf("out = %v", net.Out)
	}
	x := make([]float64, 8*8*3)
	out, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 32 {
		t.Fatalf("len = %d", len(out))
	}
}

func TestGradCheckMultiChannelConvChain(t *testing.T) {
	// Two stacked convolutions: gradient flow through channel mixing.
	net, err := NewNetwork(Shape{6, 6, 2}, rand.New(rand.NewPCG(5, 6)),
		NewConv2D(3, 3, 3), NewReLU(), NewConv2D(2, 2, 2), NewFlatten(), NewDense(2))
	if err != nil {
		t.Fatal(err)
	}
	gradCheck(t, net, 72, 2, 60)
}

func TestNadamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w−3)² directly through the optimizer interface.
	p := newParam(1)
	o := NewNadam()
	o.LR = 0.05
	for i := 0; i < 2000; i++ {
		p.G[0] = 2 * (p.W[0] - 3)
		o.Step([]*Param{p}, 1)
	}
	if math.Abs(p.W[0]-3) > 0.05 {
		t.Fatalf("w = %v want ≈ 3", p.W[0])
	}
}

func TestWorkerCountsEquivalent(t *testing.T) {
	// Training with 1 worker and 3 workers must produce identical weights:
	// gradients are summed deterministically regardless of partitioning.
	mk := func(workers int) float64 {
		rng := rand.New(rand.NewPCG(7, 8))
		net, err := NewNetwork(Shape{1, 1, 4}, rng, NewDense(6), NewReLU(), NewDense(1))
		if err != nil {
			t.Fatal(err)
		}
		data := make([]Sample, 24)
		drng := rand.New(rand.NewPCG(9, 10))
		for i := range data {
			x := randInput(drng, 4)
			data[i] = Sample{X: x, Y: []float64{x[0] - x[2]}}
		}
		if _, err := Fit(net, NewNadam(), data, nil, TrainConfig{Epochs: 3, BatchSize: 12, Workers: workers, Seed: 2}); err != nil {
			t.Fatal(err)
		}
		return net.L2Norm()
	}
	a, b := mk(1), mk(3)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("worker count changed training result: %v vs %v", a, b)
	}
}

func TestSaveRejectsAfterCorruptStream(t *testing.T) {
	net, err := NewNetwork(Shape{1, 1, 2}, rand.New(rand.NewPCG(1, 1)), NewDense(1))
	if err != nil {
		t.Fatal(err)
	}
	w := &failWriter{failAfter: 3}
	if err := net.Save(w); err == nil {
		t.Fatal("write failure not propagated")
	}
}

type failWriter struct {
	n         int
	failAfter int
}

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > f.failAfter {
		return 0, errWrite
	}
	return len(p), nil
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "synthetic write failure" }

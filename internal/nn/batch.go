package nn

import (
	"fmt"
	"runtime"
	"sync"
)

// ForwardBatch runs inference on a batch of inputs and returns one output
// per input, bitwise identical to calling Forward on each input in order.
//
// Two mechanisms make it faster than a loop of Forward calls. First, the
// weighted layers (Conv2D, Dense) traverse their parameter tensors once
// per batch instead of once per sample, so a weight row loaded into cache
// is applied to every queued sample before the next row is streamed in —
// on memory-bound layers the saving approaches the batch size. Second,
// large batches are split across runtime.GOMAXPROCS(0) goroutines, each
// chunk writing directly into its disjoint range of the shared result
// slice. Intermediate activations live in pooled ping-pong arenas, so a
// batch allocates only its result slices.
//
// Unlike Forward, ForwardBatch writes no layer caches: it cannot be
// followed by Backward, and concurrent ForwardBatch calls on the same
// network are safe (weights are only read).
//
// This is the float64 reference path; the compiled InferenceEngine is the
// fast float32/int8 one.
func (n *Network) ForwardBatch(ins [][]float64) ([][]float64, error) {
	for s, in := range ins {
		if len(in) != n.In.Size() {
			return nil, fmt.Errorf("nn: batch input %d size %d, want %d", s, len(in), n.In.Size())
		}
	}
	if len(ins) == 0 {
		return nil, nil
	}
	outSize := n.Out.Size()
	flat := make([]float64, len(ins)*outSize)
	outs := make([][]float64, len(ins))
	for s := range outs {
		outs[s] = flat[s*outSize : (s+1)*outSize]
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ins) {
		workers = len(ins)
	}
	if workers <= 1 {
		n.forwardChunk(ins, outs)
		return outs, nil
	}
	chunk := (len(ins) + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < len(ins); start += chunk {
		end := min(start+chunk, len(ins))
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			n.forwardChunk(ins[start:end], outs[start:end])
		}(start, end)
	}
	wg.Wait()
	return outs, nil
}

// batchScratch is a pair of ping-pong activation arenas for one chunk,
// plus the per-sample slice views into them.
type batchScratch struct {
	a, b   []float64
	va, vb [][]float64
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// views returns s sample views of width size into one of the two arenas,
// growing the backing array as needed.
func (sc *batchScratch) views(useA bool, s, size int) [][]float64 {
	buf, v := &sc.a, &sc.va
	if !useA {
		buf, v = &sc.b, &sc.vb
	}
	if cap(*buf) < s*size {
		*buf = make([]float64, s*size)
	}
	if cap(*v) < s {
		*v = make([][]float64, s)
	}
	*v = (*v)[:s]
	for i := range *v {
		(*v)[i] = (*buf)[i*size : (i+1)*size]
	}
	return *v
}

// layerOutSize reports a layer's output element count from its cached
// shapes without calling OutShape (which writes the cache and would race
// with concurrent batches).
func layerOutSize(l Layer, inSize int) int {
	switch t := l.(type) {
	case *Conv2D:
		return t.out.Size()
	case *Dense:
		return t.Units
	case *Pool2D:
		return t.out.Size()
	default: // ReLU, Flatten: identity on the flat layout
		return inSize
	}
}

// forwardChunk pushes a contiguous sub-batch through every layer, writing
// the final activations into outs (outs[i] pre-sized to n.Out.Size()).
func (n *Network) forwardChunk(ins, outs [][]float64) {
	sc := batchScratchPool.Get().(*batchScratch)
	s := len(ins)
	cur := ins
	size := n.In.Size()
	useA := true
	for _, l := range n.Layers {
		if _, ok := l.(*Flatten); ok {
			continue // identity on values: no buffer hop
		}
		size = layerOutSize(l, size)
		dst := sc.views(useA, s, size)
		l.forwardBatch(cur, dst)
		cur = dst
		useA = !useA
	}
	for i := range outs {
		copy(outs[i], cur[i])
	}
	batchScratchPool.Put(sc)
}

// ---------- per-layer batch kernels ----------
//
// Each kernel writes into caller-provided, correctly sized (possibly
// recycled, non-zeroed) output slices.

// Conv2D: the sample loop sits inside the weight-row loop, so each row of
// the kernel tensor is loaded once per batch. Per-sample accumulation
// order matches Forward exactly (y, x, ky, kx, ci, f).
func (c *Conv2D) forwardBatch(ins, outs [][]float64) {
	oh, ow, oc := c.out.H, c.out.W, c.out.C
	ic := c.in.C
	iw := c.in.W
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			base := (y*ow + x) * oc
			for s := range outs {
				copy(outs[s][base:base+oc], c.b.W)
			}
			for ky := 0; ky < c.KH; ky++ {
				for kx := 0; kx < c.KW; kx++ {
					inBase := ((y+ky)*iw + x + kx) * ic
					wBase := (ky*c.KW + kx) * ic * oc
					for ci := 0; ci < ic; ci++ {
						wRow := c.w.W[wBase+ci*oc : wBase+(ci+1)*oc]
						for s, in := range ins {
							iv := in[inBase+ci]
							if iv == 0 {
								continue
							}
							oRow := outs[s][base : base+oc]
							for f, wv := range wRow {
								oRow[f] += iv * wv
							}
						}
					}
				}
			}
		}
	}
}

// Dense: each weight row W[i·Units:(i+1)·Units] is streamed from memory
// once per batch instead of once per sample — the whole point of batching
// for a layer whose weight matrix dwarfs the activations.
func (d *Dense) forwardBatch(ins, outs [][]float64) {
	for s := range outs {
		copy(outs[s], d.b.W)
	}
	for i := 0; i < d.in.C; i++ {
		row := d.w.W[i*d.Units : (i+1)*d.Units]
		for s, in := range ins {
			iv := in[i]
			if iv == 0 {
				continue
			}
			out := outs[s]
			for j, wv := range row {
				out[j] += iv * wv
			}
		}
	}
}

func (r *ReLU) forwardBatch(ins, outs [][]float64) {
	for s, in := range ins {
		out := outs[s]
		for i, v := range in {
			if v > 0 {
				out[i] = v
			} else {
				out[i] = 0
			}
		}
	}
}

func (p *Pool2D) forwardBatch(ins, outs [][]float64) {
	oh, ow, c := p.out.H, p.out.W, p.out.C
	iw := p.in.W
	for s, in := range ins {
		out := outs[s]
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				for ch := 0; ch < c; ch++ {
					i00 := ((2*y)*iw + 2*x) * c
					i01 := i00 + c
					i10 := ((2*y+1)*iw + 2*x) * c
					i11 := i10 + c
					v00, v01 := in[i00+ch], in[i01+ch]
					v10, v11 := in[i10+ch], in[i11+ch]
					o := (y*ow+x)*c + ch
					if p.Kind == AvgPool {
						out[o] = (v00 + v01 + v10 + v11) / 4
						continue
					}
					best := v00
					if v01 > best {
						best = v01
					}
					if v10 > best {
						best = v10
					}
					if v11 > best {
						best = v11
					}
					out[o] = best
				}
			}
		}
	}
}

func (f *Flatten) forwardBatch(ins, outs [][]float64) {
	for s, in := range ins {
		copy(outs[s], in)
	}
}

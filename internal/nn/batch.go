package nn

import (
	"fmt"
	"runtime"
	"sync"
)

// ForwardBatch runs inference on a batch of inputs and returns one output
// per input, bitwise identical to calling Forward on each input in order.
//
// Two mechanisms make it faster than a loop of Forward calls. First, the
// weighted layers (Conv2D, Dense) traverse their parameter tensors once
// per batch instead of once per sample, so a weight row loaded into cache
// is applied to every queued sample before the next row is streamed in —
// on memory-bound layers the saving approaches the batch size. Second,
// large batches are split across runtime.GOMAXPROCS(0) goroutines.
//
// Unlike Forward, ForwardBatch writes no layer caches: it cannot be
// followed by Backward, and concurrent ForwardBatch calls on the same
// network are safe (weights are only read).
func (n *Network) ForwardBatch(ins [][]float64) ([][]float64, error) {
	for s, in := range ins {
		if len(in) != n.In.Size() {
			return nil, fmt.Errorf("nn: batch input %d size %d, want %d", s, len(in), n.In.Size())
		}
	}
	if len(ins) == 0 {
		return nil, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ins) {
		workers = len(ins)
	}
	if workers <= 1 {
		return n.forwardChunk(ins), nil
	}
	outs := make([][]float64, len(ins))
	chunk := (len(ins) + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < len(ins); start += chunk {
		end := min(start+chunk, len(ins))
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			copy(outs[start:end], n.forwardChunk(ins[start:end]))
		}(start, end)
	}
	wg.Wait()
	return outs, nil
}

// forwardChunk pushes a contiguous sub-batch through every layer.
func (n *Network) forwardChunk(ins [][]float64) [][]float64 {
	xs := ins
	for _, l := range n.Layers {
		xs = l.forwardBatch(xs)
	}
	return xs
}

// ---------- per-layer batch kernels ----------

// Conv2D: the sample loop sits inside the weight-row loop, so each row of
// the kernel tensor is loaded once per batch. Per-sample accumulation
// order matches Forward exactly (y, x, ky, kx, ci, f).
func (c *Conv2D) forwardBatch(ins [][]float64) [][]float64 {
	oh, ow, oc := c.out.H, c.out.W, c.out.C
	ic := c.in.C
	iw := c.in.W
	outs := make([][]float64, len(ins))
	for s := range outs {
		outs[s] = make([]float64, oh*ow*oc)
	}
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			base := (y*ow + x) * oc
			for s := range outs {
				copy(outs[s][base:base+oc], c.b.W)
			}
			for ky := 0; ky < c.KH; ky++ {
				for kx := 0; kx < c.KW; kx++ {
					inBase := ((y+ky)*iw + x + kx) * ic
					wBase := (ky*c.KW + kx) * ic * oc
					for ci := 0; ci < ic; ci++ {
						wRow := c.w.W[wBase+ci*oc : wBase+(ci+1)*oc]
						for s, in := range ins {
							iv := in[inBase+ci]
							if iv == 0 {
								continue
							}
							oRow := outs[s][base : base+oc]
							for f, wv := range wRow {
								oRow[f] += iv * wv
							}
						}
					}
				}
			}
		}
	}
	return outs
}

// Dense: each weight row W[i·Units:(i+1)·Units] is streamed from memory
// once per batch instead of once per sample — the whole point of batching
// for a layer whose weight matrix dwarfs the activations.
func (d *Dense) forwardBatch(ins [][]float64) [][]float64 {
	outs := make([][]float64, len(ins))
	for s := range outs {
		outs[s] = make([]float64, d.Units)
		copy(outs[s], d.b.W)
	}
	for i := 0; i < d.in.C; i++ {
		row := d.w.W[i*d.Units : (i+1)*d.Units]
		for s, in := range ins {
			iv := in[i]
			if iv == 0 {
				continue
			}
			out := outs[s]
			for j, wv := range row {
				out[j] += iv * wv
			}
		}
	}
	return outs
}

func (r *ReLU) forwardBatch(ins [][]float64) [][]float64 {
	outs := make([][]float64, len(ins))
	for s, in := range ins {
		out := make([]float64, len(in))
		for i, v := range in {
			if v > 0 {
				out[i] = v
			}
		}
		outs[s] = out
	}
	return outs
}

func (p *Pool2D) forwardBatch(ins [][]float64) [][]float64 {
	oh, ow, c := p.out.H, p.out.W, p.out.C
	iw := p.in.W
	outs := make([][]float64, len(ins))
	for s, in := range ins {
		out := make([]float64, oh*ow*c)
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				for ch := 0; ch < c; ch++ {
					i00 := ((2*y)*iw + 2*x) * c
					i01 := i00 + c
					i10 := ((2*y+1)*iw + 2*x) * c
					i11 := i10 + c
					v00, v01 := in[i00+ch], in[i01+ch]
					v10, v11 := in[i10+ch], in[i11+ch]
					o := (y*ow+x)*c + ch
					if p.Kind == AvgPool {
						out[o] = (v00 + v01 + v10 + v11) / 4
						continue
					}
					best := v00
					if v01 > best {
						best = v01
					}
					if v10 > best {
						best = v10
					}
					if v11 > best {
						best = v11
					}
					out[o] = best
				}
			}
		}
		outs[s] = out
	}
	return outs
}

func (f *Flatten) forwardBatch(ins [][]float64) [][]float64 { return ins }

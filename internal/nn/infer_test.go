package nn

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
)

// inferArches is the shape zoo for engine parity: the paper's Fig. 8
// stack (odd pooling inputs included), the scaled variant, and small
// awkward stacks exercising every layer kind and ragged GEMM edge.
func inferArches() map[string]func() (Shape, []Layer) {
	return map[string]func() (Shape, []Layer){
		"paper-like": func() (Shape, []Layer) {
			return Shape{H: 50, W: 90, C: 1}, []Layer{
				NewConv2D(6, 6, 4), NewReLU(), NewPool2D(AvgPool),
				NewConv2D(3, 3, 4), NewReLU(), NewPool2D(AvgPool), // 22x42 -> conv 20x40 -> pool 10x20
				NewConv2D(3, 3, 8), NewReLU(), NewPool2D(AvgPool), // 8x18 -> 4x9: odd width pooled
				NewFlatten(), NewDense(22),
			}
		},
		"odd-pools": func() (Shape, []Layer) {
			return Shape{H: 13, W: 23, C: 1}, []Layer{
				NewConv2D(3, 3, 8), NewReLU(), NewPool2D(AvgPool), // 11x21 -> 5x10
				NewConv2D(2, 2, 16), NewReLU(), NewPool2D(MaxPool), // 4x9 -> 2x4
				NewFlatten(), NewDense(33), NewReLU(), NewDense(7),
			}
		},
		"dense-only": func() (Shape, []Layer) {
			return Shape{H: 1, W: 1, C: 129}, []Layer{
				NewDense(65), NewReLU(), NewDense(9),
			}
		},
		"single-conv": func() (Shape, []Layer) {
			return Shape{H: 9, W: 9, C: 3}, []Layer{
				NewConv2D(4, 4, 5), NewFlatten(), NewDense(3),
			}
		},
	}
}

func randomNet(t *testing.T, build func() (Shape, []Layer), seed uint64) *Network {
	t.Helper()
	in, layers := build()
	net, err := NewNetwork(in, rand.New(rand.NewPCG(seed, 99)), layers...)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func randomInput(rng *rand.Rand, n int, nonneg bool) []float64 {
	x := make([]float64, n)
	for i := range x {
		if nonneg {
			x[i] = rng.Float64() * 4 // depth-image-like
		} else {
			x[i] = rng.NormFloat64()
		}
	}
	return x
}

// TestInferenceEngineMatchesForward pins the compiled float32 engine
// against the float64 reference Forward on random weights and inputs:
// |Δ| ≤ 1e-4 + 1e-4·|reference| element-wise.
func TestInferenceEngineMatchesForward(t *testing.T) {
	const tolAbs, tolRel = 1e-4, 1e-4
	for name, build := range inferArches() {
		t.Run(name, func(t *testing.T) {
			net := randomNet(t, build, 17)
			eng, err := NewInferenceEngine(net)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(23, 5))
			for trial := 0; trial < 8; trial++ {
				in := randomInput(rng, net.In.Size(), trial%2 == 0)
				want, err := net.Forward(in)
				if err != nil {
					t.Fatal(err)
				}
				got, err := eng.Forward(in)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("output size %d, want %d", len(got), len(want))
				}
				for i := range got {
					if diff := math.Abs(got[i] - want[i]); diff > tolAbs+tolRel*math.Abs(want[i]) {
						t.Fatalf("trial %d out[%d]=%g, reference %g (|Δ|=%g)", trial, i, got[i], want[i], diff)
					}
				}
			}
		})
	}
}

// TestInferenceEngineBatchBitwise: a batched engine forward must equal
// the per-sample engine forward bit for bit — row results are
// independent of the batch they ride in (GEMM tiling is row-disjoint).
func TestInferenceEngineBatchBitwise(t *testing.T) {
	for name, build := range inferArches() {
		t.Run(name, func(t *testing.T) {
			net := randomNet(t, build, 31)
			eng, err := NewInferenceEngine(net)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(7, 11))
			ins := make([][]float32, 13)
			for s := range ins {
				ins[s] = make([]float32, net.In.Size())
				for i := range ins[s] {
					ins[s][i] = float32(rng.NormFloat64())
				}
			}
			batch, err := eng.ForwardBatchF32(ins)
			if err != nil {
				t.Fatal(err)
			}
			for s := range ins {
				single, err := eng.ForwardBatchF32(ins[s : s+1])
				if err != nil {
					t.Fatal(err)
				}
				for i := range single[0] {
					if batch[s][i] != single[0][i] { //vvdlint:bitexact -- batch and engine parity vs Forward is bitwise by contract
						t.Fatalf("sample %d out[%d]: batch %g != single %g", s, i, batch[s][i], single[0][i])
					}
				}
			}
		})
	}
}

// TestForwardBatchPooledBuffers re-pins the legacy float64 batch path
// (now writing into pooled, recycled buffers) as bitwise identical to
// Forward, including after buffer reuse on a second differently-sized
// batch.
func TestForwardBatchPooledBuffers(t *testing.T) {
	net := randomNet(t, inferArches()["odd-pools"], 3)
	rng := rand.New(rand.NewPCG(2, 4))
	for _, batch := range []int{5, 2, 9} { // shrinking + growing reuses pooled arenas
		ins := make([][]float64, batch)
		for s := range ins {
			ins[s] = randomInput(rng, net.In.Size(), false)
		}
		outs, err := net.ForwardBatch(ins)
		if err != nil {
			t.Fatal(err)
		}
		for s := range ins {
			want, err := net.Forward(ins[s])
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if outs[s][i] != want[i] { //vvdlint:bitexact -- batch and engine parity vs Forward is bitwise by contract
					t.Fatalf("batch %d sample %d out[%d]: %g != Forward %g", batch, s, i, outs[s][i], want[i])
				}
			}
		}
	}
}

// TestPool2DOddInput pins the defined odd-dimension semantics: output is
// ⌊H/2⌋×⌊W/2⌋ and the trailing row/column influence nothing.
func TestPool2DOddInput(t *testing.T) {
	p := NewPool2D(AvgPool)
	out, err := p.OutShape(Shape{H: 3, W: 5, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{H: 1, W: 2, C: 1}) {
		t.Fatalf("odd pool out shape %v", out)
	}
	in := []float64{
		1, 2, 3, 4, 100,
		5, 6, 7, 8, 100,
		100, 100, 100, 100, 100, // trailing row: must be ignored
	}
	got := p.Forward(in)
	want := []float64{(1 + 2 + 5 + 6) / 4.0, (3 + 4 + 7 + 8) / 4.0}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] { //vvdlint:bitexact -- batch and engine parity vs Forward is bitwise by contract
		t.Fatalf("odd pool forward %v, want %v", got, want)
	}
}

// TestInferenceEngineInt8 verifies the quantized path end to end:
// calibration is required, and once enabled the int8 outputs track the
// float32 engine within the pinned per-element budget for 7-bit
// symmetric quantization.
func TestInferenceEngineInt8(t *testing.T) {
	net := randomNet(t, inferArches()["paper-like"], 41)
	eng, err := NewInferenceEngine(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.EnableInt8(); err == nil {
		t.Fatal("EnableInt8 must fail before calibration")
	}
	rng := rand.New(rand.NewPCG(6, 28))
	calib := make([][]float32, 16)
	for s := range calib {
		calib[s] = make([]float32, net.In.Size())
		for i := range calib[s] {
			calib[s][i] = float32(rng.Float64() * 4)
		}
	}
	if _, err := eng.Calibrate(calib); err != nil {
		t.Fatal(err)
	}
	if got := eng.CalibrationFrames(); got != 16 {
		t.Fatalf("CalibrationFrames = %d, want 16", got)
	}
	if eng.Mode() != "float32" {
		t.Fatalf("mode before EnableInt8 = %q", eng.Mode())
	}
	wantOuts, err := eng.ForwardBatchF32(calib)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.EnableInt8(); err != nil {
		t.Fatal(err)
	}
	if eng.Mode() != "int8" || !eng.Quantized() {
		t.Fatalf("mode after EnableInt8 = %q", eng.Mode())
	}
	gotOuts, err := eng.ForwardBatchF32(calib)
	if err != nil {
		t.Fatal(err)
	}
	var sumSq, sumRef float64
	for s := range wantOuts {
		for i := range wantOuts[s] {
			d := float64(gotOuts[s][i] - wantOuts[s][i])
			sumSq += d * d
			sumRef += float64(wantOuts[s][i]) * float64(wantOuts[s][i])
		}
	}
	if sumRef == 0 {
		t.Fatal("degenerate reference outputs")
	}
	// Pinned budget: relative quantization MSE below 1% of signal power.
	if rel := sumSq / sumRef; rel > 0.01 {
		t.Fatalf("int8 relative MSE %.4f exceeds 0.01 budget", rel)
	}
}

// TestInferenceEngineForwardBatchInto pins the zero-copy entry point's
// validation and output placement.
func TestInferenceEngineForwardBatchInto(t *testing.T) {
	net := randomNet(t, inferArches()["single-conv"], 8)
	eng, err := NewInferenceEngine(net)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 1))
	ins := [][]float32{make([]float32, net.In.Size())}
	for i := range ins[0] {
		ins[0][i] = float32(rng.NormFloat64())
	}
	if err := eng.ForwardBatchF32Into(ins, make([][]float32, 2)); err == nil {
		t.Fatal("mismatched batch sizes must error")
	}
	if err := eng.ForwardBatchF32Into(ins, [][]float32{make([]float32, 1)}); err == nil {
		t.Fatal("undersized output must error")
	}
	out := make([]float32, net.Out.Size())
	if err := eng.ForwardBatchF32Into(ins, [][]float32{out}); err != nil {
		t.Fatal(err)
	}
	ref, err := eng.ForwardBatchF32(ins)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != ref[0][i] { //vvdlint:bitexact -- batch and engine parity vs Forward is bitwise by contract
			t.Fatalf("Into out[%d]=%g != %g", i, out[i], ref[0][i])
		}
	}
}

// BenchmarkInferenceEngineSteadyState pins the zero-allocation claim of
// the pooled arenas: ForwardBatchF32Into must not allocate per call.
func BenchmarkInferenceEngineSteadyState(b *testing.B) {
	in, layers := inferArches()["paper-like"]()
	net, err := NewNetwork(in, rand.New(rand.NewPCG(1, 2)), layers...)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := NewInferenceEngine(net)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	for _, batch := range []int{1, 8} {
		ins := make([][]float32, batch)
		outs := make([][]float32, batch)
		for s := range ins {
			ins[s] = make([]float32, in.Size())
			for i := range ins[s] {
				ins[s][i] = float32(rng.Float64())
			}
			outs[s] = make([]float32, net.Out.Size())
		}
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := eng.ForwardBatchF32Into(ins, outs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
)

// Network is a feed-forward stack of layers.
type Network struct {
	In     Shape
	Out    Shape
	Layers []Layer
}

// NewNetwork wires the layers for the given input shape, validates shape
// compatibility and initializes weights from rng.
func NewNetwork(in Shape, rng *rand.Rand, layers ...Layer) (*Network, error) {
	if in.Size() <= 0 {
		return nil, fmt.Errorf("nn: invalid input shape %s", in)
	}
	if len(layers) == 0 {
		return nil, errors.New("nn: network needs at least one layer")
	}
	shape := in
	for i, l := range layers {
		var err error
		shape, err = l.OutShape(shape)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %w", i, l.name(), err)
		}
	}
	n := &Network{In: in, Out: shape, Layers: layers}
	if rng != nil {
		n.initWeights(rng)
	}
	return n, nil
}

func (n *Network) initWeights(rng *rand.Rand) {
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *Conv2D:
			t.initWeights(rng)
		case *Dense:
			t.initWeights(rng)
		}
	}
}

// Forward runs inference and returns the network output.
func (n *Network) Forward(in []float64) ([]float64, error) {
	if len(in) != n.In.Size() {
		return nil, fmt.Errorf("nn: input size %d, want %d", len(in), n.In.Size())
	}
	x := in
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x, nil
}

// Backward back-propagates ∂L/∂out through the stack (Forward must have
// been called first on this instance).
func (n *Network) Backward(gradOut []float64) {
	g := gradOut
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g)
	}
}

// Params returns every learnable parameter.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears all gradient accumulators.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		for i := range p.G {
			p.G[i] = 0
		}
	}
}

// Clone returns a network sharing parameter values (for data-parallel
// training) but with private caches and gradient buffers.
func (n *Network) Clone() *Network {
	layers := make([]Layer, len(n.Layers))
	for i, l := range n.Layers {
		layers[i] = l.clone()
	}
	// Re-walk shapes so cloned layers cache their in/out dimensions.
	shape := n.In
	for _, l := range layers {
		shape, _ = l.OutShape(shape)
	}
	return &Network{In: n.In, Out: n.Out, Layers: layers}
}

// CopyWeightsFrom copies parameter values from src (shapes must match).
func (n *Network) CopyWeightsFrom(src *Network) error {
	dst, s := n.Params(), src.Params()
	if len(dst) != len(s) {
		return errors.New("nn: parameter count mismatch")
	}
	for i := range dst {
		if len(dst[i].W) != len(s[i].W) {
			return errors.New("nn: parameter size mismatch")
		}
		copy(dst[i].W, s[i].W)
	}
	return nil
}

// MSE returns the mean squared error and fills grad with ∂L/∂pred
// (grad may be nil to skip).
func MSE(pred, target, grad []float64) (float64, error) {
	if len(pred) != len(target) {
		return 0, fmt.Errorf("nn: MSE length mismatch %d vs %d", len(pred), len(target))
	}
	var sum float64
	inv := 2 / float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		sum += d * d
		if grad != nil {
			grad[i] = inv * d
		}
	}
	return sum / float64(len(pred)), nil
}

// ---------- Serialization ----------

const modelMagic = 0x56564431 // "VVD1"

// Save writes the architecture and weights in a compact binary format.
func (n *Network) Save(w io.Writer) error {
	writeU32 := func(v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
	if err := writeU32(modelMagic); err != nil {
		return err
	}
	for _, v := range []uint32{uint32(n.In.H), uint32(n.In.W), uint32(n.In.C), uint32(len(n.Layers))} {
		if err := writeU32(v); err != nil {
			return err
		}
	}
	for _, l := range n.Layers {
		name := l.name()
		if err := writeU32(uint32(len(name))); err != nil {
			return err
		}
		if _, err := w.Write([]byte(name)); err != nil {
			return err
		}
		var meta [3]uint32
		switch t := l.(type) {
		case *Conv2D:
			meta = [3]uint32{uint32(t.KH), uint32(t.KW), uint32(t.Filters)}
		case *Dense:
			meta = [3]uint32{uint32(t.Units), 0, 0}
		}
		for _, v := range meta {
			if err := writeU32(v); err != nil {
				return err
			}
		}
		for _, p := range l.Params() {
			if err := writeU32(uint32(len(p.W))); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, p.W); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load reconstructs a network saved with Save.
func Load(r io.Reader) (*Network, error) {
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	magic, err := readU32()
	if err != nil {
		return nil, err
	}
	if magic != modelMagic {
		return nil, errors.New("nn: bad model magic")
	}
	var dims [4]uint32
	for i := range dims {
		if dims[i], err = readU32(); err != nil {
			return nil, err
		}
	}
	in := Shape{H: int(dims[0]), W: int(dims[1]), C: int(dims[2])}
	nLayers := int(dims[3])
	if nLayers <= 0 || nLayers > 1024 {
		return nil, fmt.Errorf("nn: implausible layer count %d", nLayers)
	}
	layers := make([]Layer, 0, nLayers)
	type pending struct {
		layer  Layer
		wDatas [][]float64
	}
	var pendings []pending
	for i := 0; i < nLayers; i++ {
		nameLen, err := readU32()
		if err != nil {
			return nil, err
		}
		if nameLen > 64 {
			return nil, errors.New("nn: implausible layer name length")
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(r, nameBuf); err != nil {
			return nil, err
		}
		var meta [3]uint32
		for j := range meta {
			if meta[j], err = readU32(); err != nil {
				return nil, err
			}
		}
		var l Layer
		nParams := 0
		switch string(nameBuf) {
		case "conv2d":
			l = NewConv2D(int(meta[0]), int(meta[1]), int(meta[2]))
			nParams = 2
		case "dense":
			l = NewDense(int(meta[0]))
			nParams = 2
		case "relu":
			l = NewReLU()
		case "avgpool":
			l = NewPool2D(AvgPool)
		case "maxpool":
			l = NewPool2D(MaxPool)
		case "flatten":
			l = NewFlatten()
		default:
			return nil, fmt.Errorf("nn: unknown layer %q", nameBuf)
		}
		var wDatas [][]float64
		for p := 0; p < nParams; p++ {
			sz, err := readU32()
			if err != nil {
				return nil, err
			}
			if sz > 100_000_000 {
				return nil, errors.New("nn: implausible parameter size")
			}
			data := make([]float64, sz)
			if err := binary.Read(r, binary.LittleEndian, data); err != nil {
				return nil, err
			}
			wDatas = append(wDatas, data)
		}
		layers = append(layers, l)
		pendings = append(pendings, pending{layer: l, wDatas: wDatas})
	}
	net, err := NewNetwork(in, nil, layers...)
	if err != nil {
		return nil, err
	}
	for _, p := range pendings {
		params := p.layer.Params()
		if len(params) != len(p.wDatas) {
			return nil, errors.New("nn: parameter count mismatch on load")
		}
		for i, data := range p.wDatas {
			if len(params[i].W) != len(data) {
				return nil, errors.New("nn: parameter size mismatch on load")
			}
			copy(params[i].W, data)
		}
	}
	return net, nil
}

// NumParams returns the total learnable parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W)
	}
	return total
}

// L2Norm returns the Euclidean norm over all weights (diagnostics).
func (n *Network) L2Norm() float64 {
	var s float64
	for _, p := range n.Params() {
		for _, v := range p.W {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
)

// Network is a feed-forward stack of layers.
type Network struct {
	In     Shape
	Out    Shape
	Layers []Layer
}

// NewNetwork wires the layers for the given input shape, validates shape
// compatibility and initializes weights from rng.
func NewNetwork(in Shape, rng *rand.Rand, layers ...Layer) (*Network, error) {
	if in.Size() <= 0 {
		return nil, fmt.Errorf("nn: invalid input shape %s", in)
	}
	if len(layers) == 0 {
		return nil, errors.New("nn: network needs at least one layer")
	}
	shape := in
	for i, l := range layers {
		var err error
		shape, err = l.OutShape(shape)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %w", i, l.name(), err)
		}
	}
	n := &Network{In: in, Out: shape, Layers: layers}
	if rng != nil {
		n.initWeights(rng)
	}
	return n, nil
}

func (n *Network) initWeights(rng *rand.Rand) {
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *Conv2D:
			t.initWeights(rng)
		case *Dense:
			t.initWeights(rng)
		}
	}
}

// Forward runs inference and returns the network output.
func (n *Network) Forward(in []float64) ([]float64, error) {
	if len(in) != n.In.Size() {
		return nil, fmt.Errorf("nn: input size %d, want %d", len(in), n.In.Size())
	}
	x := in
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x, nil
}

// Backward back-propagates ∂L/∂out through the stack (Forward must have
// been called first on this instance).
func (n *Network) Backward(gradOut []float64) {
	g := gradOut
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g)
	}
}

// Params returns every learnable parameter.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears all gradient accumulators.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		for i := range p.G {
			p.G[i] = 0
		}
	}
}

// Clone returns a network sharing parameter values (for data-parallel
// training) but with private caches and gradient buffers.
func (n *Network) Clone() *Network {
	layers := make([]Layer, len(n.Layers))
	for i, l := range n.Layers {
		layers[i] = l.clone()
	}
	// Re-walk shapes so cloned layers cache their in/out dimensions.
	shape := n.In
	for _, l := range layers {
		shape, _ = l.OutShape(shape)
	}
	return &Network{In: n.In, Out: n.Out, Layers: layers}
}

// CopyWeightsFrom copies parameter values from src (shapes must match).
func (n *Network) CopyWeightsFrom(src *Network) error {
	dst, s := n.Params(), src.Params()
	if len(dst) != len(s) {
		return errors.New("nn: parameter count mismatch")
	}
	for i := range dst {
		if len(dst[i].W) != len(s[i].W) {
			return errors.New("nn: parameter size mismatch")
		}
		copy(dst[i].W, s[i].W)
	}
	return nil
}

// MSE returns the mean squared error and fills grad with ∂L/∂pred
// (grad may be nil to skip).
func MSE(pred, target, grad []float64) (float64, error) {
	if len(pred) != len(target) {
		return 0, fmt.Errorf("nn: MSE length mismatch %d vs %d", len(pred), len(target))
	}
	var sum float64
	inv := 2 / float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		sum += d * d
		if grad != nil {
			grad[i] = inv * d
		}
	}
	return sum / float64(len(pred)), nil
}

// ---------- Serialization ----------

const modelMagic = 0x56564431 // "VVD1"

// Save writes the architecture and weights in a compact binary format.
func (n *Network) Save(w io.Writer) error {
	writeU32 := func(v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
	if err := writeU32(modelMagic); err != nil {
		return err
	}
	for _, v := range []uint32{uint32(n.In.H), uint32(n.In.W), uint32(n.In.C), uint32(len(n.Layers))} {
		if err := writeU32(v); err != nil {
			return err
		}
	}
	for _, l := range n.Layers {
		name := l.name()
		if err := writeU32(uint32(len(name))); err != nil {
			return err
		}
		if _, err := w.Write([]byte(name)); err != nil {
			return err
		}
		var meta [3]uint32
		switch t := l.(type) {
		case *Conv2D:
			meta = [3]uint32{uint32(t.KH), uint32(t.KW), uint32(t.Filters)}
		case *Dense:
			meta = [3]uint32{uint32(t.Units), 0, 0}
		}
		for _, v := range meta {
			if err := writeU32(v); err != nil {
				return err
			}
		}
		for _, p := range l.Params() {
			if err := writeU32(uint32(len(p.W))); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, p.W); err != nil {
				return err
			}
		}
	}
	return nil
}

// Limits enforced by Load. Generous multiples of the paper architecture
// (input 50×90×1, ~400k parameters), tight enough that a forged header
// cannot demand absurd allocations before the input runs out.
const (
	maxLoadLayers = 1024
	maxLoadDim    = 1 << 16       // any single H/W/C dimension or layer meta value
	maxLoadTensor = 1 << 26       // elements in any activation tensor
	maxLoadParam  = 100_000_000   // elements in one parameter tensor
	loadChunk     = 8 * (1 << 13) // bytes of weight data decoded per read
)

// loadLayerSpec mirrors each layer's OutShape rule without constructing
// the layer: it validates the serialized metadata against the incoming
// shape and reports the output shape plus the exact parameter sizes the
// layer will own. Everything is checked here, before any weight-sized
// allocation — a crafted header fails cleanly instead of panicking in a
// constructor or reserving gigabytes.
func loadLayerSpec(name string, meta [3]uint32, in Shape) (out Shape, paramElems []int, err error) {
	metaOK := func(v uint32) bool { return v >= 1 && v <= maxLoadDim }
	switch name {
	case "conv2d":
		kh, kw, filters := meta[0], meta[1], meta[2]
		if !metaOK(kh) || !metaOK(kw) || !metaOK(filters) {
			return Shape{}, nil, fmt.Errorf("nn: implausible conv meta %dx%dx%d", kh, kw, filters)
		}
		if in.H < int(kh) || in.W < int(kw) {
			return Shape{}, nil, fmt.Errorf("nn: conv kernel %dx%d larger than input %s", kh, kw, in)
		}
		w := int64(kh) * int64(kw) * int64(in.C)
		if w > maxLoadParam || w*int64(filters) > maxLoadParam {
			return Shape{}, nil, errors.New("nn: implausible conv parameter size")
		}
		out = Shape{H: in.H - int(kh) + 1, W: in.W - int(kw) + 1, C: int(filters)}
		return out, []int{int(w) * int(filters), int(filters)}, nil
	case "dense":
		units := meta[0]
		if !metaOK(units) {
			return Shape{}, nil, fmt.Errorf("nn: implausible dense units %d", units)
		}
		if in.H != 1 || in.W != 1 {
			return Shape{}, nil, errors.New("nn: Dense requires flattened input (use Flatten)")
		}
		if int64(in.C)*int64(units) > maxLoadParam {
			return Shape{}, nil, errors.New("nn: implausible dense parameter size")
		}
		return Shape{H: 1, W: 1, C: int(units)}, []int{in.C * int(units), int(units)}, nil
	case "relu":
		return in, nil, nil
	case "avgpool", "maxpool":
		if in.H < 2 || in.W < 2 {
			return Shape{}, nil, fmt.Errorf("nn: pool input %s too small", in)
		}
		return Shape{H: in.H / 2, W: in.W / 2, C: in.C}, nil, nil
	case "flatten":
		return Shape{H: 1, W: 1, C: in.Size()}, nil, nil
	default:
		return Shape{}, nil, fmt.Errorf("nn: unknown layer %q", name)
	}
}

// Load reconstructs a network saved with Save.
//
// The input is untrusted: every count is validated against the shape walk
// before it drives an allocation, and weight data is read in bounded
// chunks so memory use stays proportional to the bytes actually present —
// a tiny file claiming a huge parameter tensor fails after one chunk, it
// does not reserve the claimed size up front.
func Load(r io.Reader) (*Network, error) {
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	magic, err := readU32()
	if err != nil {
		return nil, err
	}
	if magic != modelMagic {
		return nil, errors.New("nn: bad model magic")
	}
	var dims [4]uint32
	for i := range dims {
		if dims[i], err = readU32(); err != nil {
			return nil, err
		}
	}
	for _, d := range dims[:3] {
		if d < 1 || d > maxLoadDim {
			return nil, fmt.Errorf("nn: implausible input dimension %d", d)
		}
	}
	in := Shape{H: int(dims[0]), W: int(dims[1]), C: int(dims[2])}
	if int64(in.H)*int64(in.W)*int64(in.C) > maxLoadTensor {
		return nil, fmt.Errorf("nn: implausible input shape %s", in)
	}
	nLayers := int(dims[3])
	if nLayers <= 0 || nLayers > maxLoadLayers {
		return nil, fmt.Errorf("nn: implausible layer count %d", nLayers)
	}

	type spec struct {
		name   string
		meta   [3]uint32
		wDatas [][]float64
	}
	specs := make([]spec, 0, nLayers)
	chunk := make([]byte, loadChunk)
	readParam := func(want int) ([]float64, error) {
		sz, err := readU32()
		if err != nil {
			return nil, err
		}
		if int64(sz) != int64(want) {
			return nil, fmt.Errorf("nn: parameter size %d, want %d", sz, want)
		}
		// Chunked read: the slice grows only as far as the input actually
		// delivers, so allocation is bounded by the bytes present.
		data := make([]float64, 0, min(want, loadChunk/8))
		for len(data) < want {
			n := min(want-len(data), loadChunk/8)
			b := chunk[:8*n]
			if _, err := io.ReadFull(r, b); err != nil {
				return nil, err
			}
			for i := 0; i < n; i++ {
				data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:])))
			}
		}
		return data, nil
	}

	shape := in
	for i := 0; i < nLayers; i++ {
		nameLen, err := readU32()
		if err != nil {
			return nil, err
		}
		if nameLen > 64 {
			return nil, errors.New("nn: implausible layer name length")
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(r, nameBuf); err != nil {
			return nil, err
		}
		var meta [3]uint32
		for j := range meta {
			if meta[j], err = readU32(); err != nil {
				return nil, err
			}
		}
		out, paramElems, err := loadLayerSpec(string(nameBuf), meta, shape)
		if err != nil {
			return nil, err
		}
		if int64(out.H)*int64(out.W)*int64(out.C) > maxLoadTensor {
			return nil, fmt.Errorf("nn: implausible layer %d output shape %s", i, out)
		}
		s := spec{name: string(nameBuf), meta: meta}
		for _, want := range paramElems {
			data, err := readParam(want)
			if err != nil {
				return nil, err
			}
			s.wDatas = append(s.wDatas, data)
		}
		specs = append(specs, s)
		shape = out
	}

	// All counts validated and all weight data present: now construct the
	// layers (metadata is known-positive, so the constructors cannot panic)
	// and let NewNetwork re-walk the shapes as the final consistency check.
	layers := make([]Layer, len(specs))
	for i, s := range specs {
		switch s.name {
		case "conv2d":
			layers[i] = NewConv2D(int(s.meta[0]), int(s.meta[1]), int(s.meta[2]))
		case "dense":
			layers[i] = NewDense(int(s.meta[0]))
		case "relu":
			layers[i] = NewReLU()
		case "avgpool":
			layers[i] = NewPool2D(AvgPool)
		case "maxpool":
			layers[i] = NewPool2D(MaxPool)
		case "flatten":
			layers[i] = NewFlatten()
		}
	}
	net, err := NewNetwork(in, nil, layers...)
	if err != nil {
		return nil, err
	}
	for i, s := range specs {
		params := layers[i].Params()
		if len(params) != len(s.wDatas) {
			return nil, errors.New("nn: parameter count mismatch on load")
		}
		for j, data := range s.wDatas {
			if len(params[j].W) != len(data) {
				return nil, errors.New("nn: parameter size mismatch on load")
			}
			copy(params[j].W, data)
		}
	}
	return net, nil
}

// NumParams returns the total learnable parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W)
	}
	return total
}

// L2Norm returns the Euclidean norm over all weights (diagnostics).
func (n *Network) L2Norm() float64 {
	var s float64
	for _, p := range n.Params() {
		for _, v := range p.W {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"vvd/internal/mathx/gemm"
)

// InferenceEngine is the compiled, inference-only form of a trained
// Network: float32 weights packed for the GEMM micro-kernels, convolution
// re-expressed as im2col + GEMM, and every per-call buffer drawn from a
// scratch pool, so steady-state forwards allocate only their result
// slices (or nothing at all via ForwardBatchF32Into).
//
// The engine never touches the Network's training caches: one engine is
// safe for any number of concurrent Forward/ForwardBatch calls, and the
// Network it was compiled from can keep training independently (recompile
// to pick up new weights).
//
// An optional symmetric int8 quantized mode (Calibrate + EnableInt8)
// trades a bounded accuracy loss for integer kernels that move a quarter
// of the bytes: weights are quantized per tensor to signed 7-bit
// [-127,127], activations per tensor to unsigned 7-bit [0,127] using the
// calibrated input range (exact for this package's ReLU topologies, whose
// layer inputs are non-negative; negative activations clamp to zero).
type InferenceEngine struct {
	in, out Shape
	ops     []inferOp

	maxAct  int // largest activation plane per sample (floats)
	maxGemm int // largest conv/dense output per sample (floats)

	arenas sync.Pool

	// quant, when non-nil, holds one entry per op and switches conv/dense
	// ops to the int8 kernels. Swapped in atomically by EnableInt8 so
	// in-flight forwards see either all-float32 or all-int8.
	quant atomic.Pointer[[]quantTable]

	mu         sync.Mutex // calibration state
	calibMax   []float32  // per-op running max of input activations
	calibSeen  int        // calibration frames observed
	quantReady bool
}

type opKind uint8

const (
	opConv opKind = iota
	opReLU
	opPool
	opDense
)

type inferOp struct {
	kind     opKind
	in, out  Shape
	kh, kw   int
	poolKind PoolKind
	preReLU  bool // pool only: clamp loads at zero (fused preceding ReLU)
	k        int  // GEMM depth: im2col row length (conv) or input width (dense)
	n        int  // GEMM width: filters (conv) or units (dense)
	pb       *gemm.PackedB
	bias     []float32
	w64      []float64 // original weights, kept for quantization
	kOff     []int     // ic==1 conv: input offset of patch element p (ky·iw+kx)
}

type quantTable struct {
	pb8    *gemm.PackedBInt8
	deq    float32 // wScale·aScale: int32 accumulator → float32
	invA   float32 // 127/aMax: float32 activation → u8 code
	bias32 []int32 // bias pre-scaled to accumulator units (round(b/deq))
}

type inferArena struct {
	actA, actB []float32
	apack      []float32 // conv A panels, written directly by the fused packer
	act8       []uint8   // dense int8 activation codes
	apack8     []uint8   // conv int8 A panels (quad-interleaved)
	rowq       []uint8   // one quantized im2col row (int8 pack staging)
	acc32      []int32
	in64       []float32
}

// NewInferenceEngine compiles a network for inference. Weights are
// converted to float32 and packed once; the network itself is unchanged.
func NewInferenceEngine(n *Network) (*InferenceEngine, error) {
	if n == nil || len(n.Layers) == 0 {
		return nil, errors.New("nn: cannot compile an empty network")
	}
	e := &InferenceEngine{in: n.In, out: n.Out}
	shape := n.In
	e.maxAct = shape.Size()
	for i, l := range n.Layers {
		out, err := l.OutShape(shape)
		if err != nil {
			return nil, fmt.Errorf("nn: compiling layer %d (%s): %w", i, l.name(), err)
		}
		switch t := l.(type) {
		case *Conv2D:
			k := t.KH * t.KW * shape.C
			op := inferOp{
				kind: opConv, in: shape, out: out, kh: t.KH, kw: t.KW,
				k: k, n: t.Filters,
				pb:   gemm.PackB(k, t.Filters, f32s(t.w.W)),
				bias: f32s(t.b.W), w64: t.w.W,
			}
			if shape.C == 1 {
				op.kOff = make([]int, k)
				for ky := 0; ky < t.KH; ky++ {
					for kx := 0; kx < t.KW; kx++ {
						op.kOff[ky*t.KW+kx] = ky*shape.W + kx
					}
				}
			}
			e.ops = append(e.ops, op)
			e.maxGemm = max(e.maxGemm, out.Size())
		case *Dense:
			op := inferOp{
				kind: opDense, in: shape, out: out,
				k: shape.C, n: t.Units,
				pb:   gemm.PackB(shape.C, t.Units, f32s(t.w.W)),
				bias: f32s(t.b.W), w64: t.w.W,
			}
			e.ops = append(e.ops, op)
			e.maxGemm = max(e.maxGemm, out.Size())
		case *ReLU:
			e.ops = append(e.ops, inferOp{kind: opReLU, in: shape, out: out})
		case *Pool2D:
			op := inferOp{kind: opPool, in: shape, out: out, poolKind: t.Kind}
			// ReLU immediately before a pool fuses into the pool's loads:
			// max(relu(v)) == relu(max(v)) and averaging clamped values is
			// exactly pooling the ReLU output — one pass instead of two.
			if last := len(e.ops) - 1; last >= 0 && e.ops[last].kind == opReLU {
				e.ops = e.ops[:last]
				op.preReLU = true
			}
			e.ops = append(e.ops, op)
		case *Flatten:
			// identity on the flat layout — dropped from the op stream
		default:
			return nil, fmt.Errorf("nn: layer %d (%s) has no inference kernel", i, l.name())
		}
		shape = out
		e.maxAct = max(e.maxAct, shape.Size())
	}
	e.calibMax = make([]float32, len(e.ops))
	e.arenas.New = func() any { return new(inferArena) }
	return e, nil
}

func f32s(w []float64) []float32 {
	out := make([]float32, len(w))
	for i, v := range w {
		out[i] = float32(v)
	}
	return out
}

// InShape returns the expected input shape.
func (e *InferenceEngine) InShape() Shape { return e.in }

// OutShape returns the produced output shape.
func (e *InferenceEngine) OutShape() Shape { return e.out }

// Mode reports the active kernel set: "float32" or "int8".
func (e *InferenceEngine) Mode() string {
	if e.quant.Load() != nil {
		return "int8"
	}
	return "float32"
}

// Quantized reports whether the int8 kernels are active.
func (e *InferenceEngine) Quantized() bool { return e.quant.Load() != nil }

// ---------- forward entry points ----------

// ForwardBatchF32Into runs batched inference, writing sample s's output
// into outs[s] (each must have OutShape().Size() elements). Steady-state
// calls allocate nothing.
func (e *InferenceEngine) ForwardBatchF32Into(ins [][]float32, outs [][]float32) error {
	if len(ins) != len(outs) {
		return fmt.Errorf("nn: %d inputs for %d outputs", len(ins), len(outs))
	}
	if len(ins) == 0 {
		return nil
	}
	inSize, outSize := e.in.Size(), e.out.Size()
	for s, in := range ins {
		if len(in) != inSize {
			return fmt.Errorf("nn: batch input %d size %d, want %d", s, len(in), inSize)
		}
		if len(outs[s]) != outSize {
			return fmt.Errorf("nn: batch output %d size %d, want %d", s, len(outs[s]), outSize)
		}
	}
	a := e.arenas.Get().(*inferArena)
	e.runChunked(a, ins, outs, nil)
	e.arenas.Put(a)
	return nil
}

// inferChunk bounds how many samples one run processes: per-chunk
// activations and packed panels stay cache-resident, so large batches run
// at the per-chunk rate instead of thrashing.
const inferChunk = 8

func (e *InferenceEngine) runChunked(a *inferArena, ins, outs [][]float32, calib []float32) {
	for s0 := 0; s0 < len(ins); s0 += inferChunk {
		s1 := min(s0+inferChunk, len(ins))
		e.run(a, ins[s0:s1], outs[s0:s1], calib)
	}
}

// ForwardBatchF32 runs batched inference and returns one freshly
// allocated output per input.
func (e *InferenceEngine) ForwardBatchF32(ins [][]float32) ([][]float32, error) {
	outs := make([][]float32, len(ins))
	flat := make([]float32, len(ins)*e.out.Size())
	for s := range outs {
		outs[s] = flat[s*e.out.Size() : (s+1)*e.out.Size()]
	}
	if err := e.ForwardBatchF32Into(ins, outs); err != nil {
		return nil, err
	}
	return outs, nil
}

// Forward runs single-sample inference on a float64 input (the Network
// Forward signature, for drop-in use and parity testing).
func (e *InferenceEngine) Forward(in []float64) ([]float64, error) {
	outs, err := e.ForwardBatch([][]float64{in})
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// ForwardBatch mirrors Network.ForwardBatch on the compiled engine:
// float64 in, float64 out, float32 arithmetic inside.
func (e *InferenceEngine) ForwardBatch(ins [][]float64) ([][]float64, error) {
	inSize := e.in.Size()
	for s, in := range ins {
		if len(in) != inSize {
			return nil, fmt.Errorf("nn: batch input %d size %d, want %d", s, len(in), inSize)
		}
	}
	if len(ins) == 0 {
		return nil, nil
	}
	a := e.arenas.Get().(*inferArena)
	a.in64 = growF32(a.in64, len(ins)*inSize)
	f32ins := make([][]float32, len(ins))
	for s, in := range ins {
		dst := a.in64[s*inSize : (s+1)*inSize]
		for i, v := range in {
			dst[i] = float32(v)
		}
		f32ins[s] = dst
	}
	outSize := e.out.Size()
	outs32 := make([][]float32, len(ins))
	flat := make([]float32, len(ins)*outSize)
	for s := range outs32 {
		outs32[s] = flat[s*outSize : (s+1)*outSize]
	}
	e.runChunked(a, f32ins, outs32, nil)
	e.arenas.Put(a)
	outs := make([][]float64, len(ins))
	for s, o := range outs32 {
		out := make([]float64, outSize)
		for i, v := range o {
			out[i] = float64(v)
		}
		outs[s] = out
	}
	return outs, nil
}

// ---------- quantization ----------

// Calibrate runs a float32 forward over a representative batch while
// recording per-layer activation ranges, and returns the batch outputs —
// so a serving path can calibrate on live traffic at full accuracy.
// Call it (cumulatively, any number of times) before EnableInt8.
func (e *InferenceEngine) Calibrate(ins [][]float32) ([][]float32, error) {
	if len(ins) == 0 {
		return nil, nil
	}
	inSize := e.in.Size()
	for s, in := range ins {
		if len(in) != inSize {
			return nil, fmt.Errorf("nn: calibration input %d size %d, want %d", s, len(in), inSize)
		}
	}
	ranges := make([]float32, len(e.ops))
	a := e.arenas.Get().(*inferArena)
	outSize := e.out.Size()
	outs := make([][]float32, len(ins))
	flat := make([]float32, len(ins)*outSize)
	for s := range outs {
		outs[s] = flat[s*outSize : (s+1)*outSize]
	}
	e.runChunked(a, ins, outs, ranges)
	e.arenas.Put(a)
	e.mu.Lock()
	for i, r := range ranges {
		if r > e.calibMax[i] {
			e.calibMax[i] = r
		}
	}
	e.calibSeen += len(ins)
	e.mu.Unlock()
	return outs, nil
}

// CalibrationFrames returns how many frames Calibrate has observed.
func (e *InferenceEngine) CalibrationFrames() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calibSeen
}

// EnableInt8 quantizes the weighted layers and switches the engine to the
// int8 kernels. Requires at least one Calibrate call; in-flight forwards
// finish on whichever kernel set they started with.
func (e *InferenceEngine) EnableInt8() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.quantReady {
		return nil
	}
	if e.calibSeen == 0 {
		return errors.New("nn: EnableInt8 before any Calibrate batch")
	}
	tables := make([]quantTable, len(e.ops))
	for i := range e.ops {
		op := &e.ops[i]
		if op.kind != opConv && op.kind != opDense {
			continue
		}
		aMax := e.calibMax[i]
		if aMax <= 0 {
			return fmt.Errorf("nn: layer %d saw no positive activations during calibration", i)
		}
		var wMax float64
		for _, v := range op.w64 {
			wMax = math.Max(wMax, math.Abs(v))
		}
		if wMax == 0 {
			wMax = 1
		}
		wScale := wMax / 127
		q := make([]int8, len(op.w64))
		for j, v := range op.w64 {
			r := math.RoundToEven(v / wScale)
			q[j] = int8(math.Max(-127, math.Min(127, r)))
		}
		deq := float32(wScale) * aMax / 127
		// Bias joins the int32 accumulator (error ≤ deq/2, below one
		// quantization step), so dequantization is a pure scale.
		bias32 := make([]int32, len(op.bias))
		for j, b := range op.bias {
			bias32[j] = int32(math.RoundToEven(float64(b) / float64(deq)))
		}
		tables[i] = quantTable{
			pb8:    gemm.PackBInt8(op.k, op.n, q),
			deq:    deq,
			invA:   127 / aMax,
			bias32: bias32,
		}
	}
	e.quant.Store(&tables)
	e.quantReady = true
	return nil
}

// ---------- execution ----------

func growF32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

func growU8(buf []uint8, n int) []uint8 {
	if cap(buf) < n {
		return make([]uint8, n)
	}
	return buf[:n]
}

func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// run pushes the batch through the op stream. calib, when non-nil,
// receives per-op maxima of input activations (forcing float32 kernels).
func (e *InferenceEngine) run(a *inferArena, ins [][]float32, outs [][]float32, calib []float32) {
	s := len(ins)
	var quant []quantTable
	if calib == nil {
		if q := e.quant.Load(); q != nil {
			quant = *q
		}
	}
	a.actA = growF32(a.actA, s*e.maxAct)
	a.actB = growF32(a.actB, s*e.maxAct)
	if quant != nil {
		a.act8 = growU8(a.act8, s*e.maxAct)
		a.acc32 = growI32(a.acc32, s*e.maxGemm)
	}

	// Load the batch into the first activation buffer.
	inSize := e.in.Size()
	cur, nxt := a.actA, a.actB
	for i, in := range ins {
		copy(cur[i*inSize:(i+1)*inSize], in)
	}

	for i := range e.ops {
		op := &e.ops[i]
		switch op.kind {
		case opReLU:
			// Before a quantized op the ReLU is free: encoding to unsigned
			// codes already clamps negatives to zero.
			if quant != nil && i+1 < len(e.ops) {
				if nk := e.ops[i+1].kind; (nk == opConv || nk == opDense) && quant[i+1].pb8 != nil {
					continue
				}
			}
			n := s * op.in.Size()
			buf := cur[:n]
			for j, v := range buf {
				if v < 0 {
					buf[j] = 0
				}
			}
			continue // in place
		case opPool:
			e.pool(op, s, cur, nxt)
		case opConv:
			if calib != nil {
				calib[i] = max(calib[i], maxOf(cur[:s*op.in.Size()]))
			}
			if quant != nil && quant[i].pb8 != nil {
				e.convInt8(op, &quant[i], s, cur, nxt, a)
			} else {
				e.convF32(op, s, cur, nxt, a)
			}
		case opDense:
			if calib != nil {
				calib[i] = max(calib[i], maxOf(cur[:s*op.in.Size()]))
			}
			if quant != nil && quant[i].pb8 != nil {
				e.denseInt8(op, &quant[i], s, cur, nxt, a)
			} else {
				e.denseF32(op, s, cur, nxt)
			}
		}
		cur, nxt = nxt, cur
	}
	outSize := e.out.Size()
	for i := range outs {
		copy(outs[i], cur[i*outSize:(i+1)*outSize])
	}
}

func maxOf(xs []float32) float32 {
	var m float32
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}

// fillBias initializes m rows of dst (width n) with the bias vector —
// the GEMM then accumulates on top. The filled prefix doubles as the
// copy source, so the work is O(log m) memmoves instead of m small ones.
func fillBias(dst []float32, bias []float32, m, n int) {
	if m == 0 {
		return
	}
	copy(dst[:n], bias)
	total := m * n
	for filled := n; filled < total; filled *= 2 {
		copy(dst[filled:total], dst[:filled])
	}
}

// packConvA writes the batch's im2col patch matrix directly in the
// prepacked panel layout of gemm.SgemmPrepacked: one gather pass replaces
// the classic im2col pass plus GEMM-internal A packing (the dominant cost
// of small-channel CNN layers, where GEMM itself is cheap). Row g of the
// logical patch matrix (sample-major, then output position) lands in
// panel g/MR at lane g%MR; tail lanes past the last row are zeroed.
func packConvA(dst []float32, cur []float32, op *inferOp, s int) {
	iw, ic := op.in.W, op.in.C
	oh, ow := op.out.H, op.out.W
	seg := op.kw * ic
	k := op.k
	inSize := op.in.Size()
	// Single-channel layers with panel-aligned output rows (the first conv
	// of every paper network) transpose by straight 8-float copies: lane r
	// of a panel is output position x0+r, and with ic==1 the k-th patch
	// element of those eight lanes is eight consecutive input floats.
	if ic == 1 && ow&7 == 0 {
		g := 0
		for i := 0; i < s; i++ {
			base := i * inSize
			for y := 0; y < oh; y++ {
				rowBase := base + y*iw
				for x0 := 0; x0 < ow; x0 += 8 {
					panel := dst[(g>>3)*k*8 : (g>>3)*k*8+k*8]
					p := 0
					for ky := 0; ky < op.kh; ky++ {
						src := cur[rowBase+ky*iw+x0:]
						for kx := 0; kx < op.kw; kx++ {
							copy(panel[p*8:(p+1)*8], src[kx:kx+8])
							p++
						}
					}
					g += 8
				}
			}
		}
		return // m is a multiple of 8: no tail lanes to zero
	}
	g := 0
	for i := 0; i < s; i++ {
		base := i * inSize
		for y := 0; y < oh; y++ {
			rowBase := base + y*iw*ic
			for x := 0; x < ow; x++ {
				panel := dst[(g>>3)*k*8 : (g>>3)*k*8+k*8]
				src := cur[rowBase+x*ic:]
				p := g & 7
				for ky := 0; ky < op.kh; ky++ {
					row := src[ky*iw*ic : ky*iw*ic+seg]
					for _, v := range row {
						panel[p] = v
						p += 8
					}
				}
				g++
			}
		}
	}
	for ; g&7 != 0; g++ {
		panel := dst[(g>>3)*k*8 : (g>>3)*k*8+k*8]
		for p := g & 7; p < k*8; p += 8 {
			panel[p] = 0
		}
	}
}

// packConvAInt8 gathers the already-quantized activation plane act8 into
// the quad-interleaved panel layout of gemm.QgemmPrepacked: per patch row
// the KH byte segments are staged contiguously in rowq (which must hold
// gemm.KP(op.k) bytes), then word-copied into the panel. Quantizing the
// plane once up front keeps each activation encoded exactly once, not
// once per overlapping patch.
func packConvAInt8(dst, rowq, act8 []uint8, op *inferOp, s int) {
	iw, ic := op.in.W, op.in.C
	oh, ow := op.out.H, op.out.W
	seg := op.kw * ic
	kp := gemm.KP(op.k)
	inSize := op.in.Size()
	// Single-channel layers with panel-aligned output rows build each
	// 32-byte quad block straight from four 8-byte input windows (lane r
	// is output position x0+r, so with ic==1 the windows are contiguous)
	// — a SIMD 4×8 transpose per quad instead of per-row staging.
	if op.kOff != nil && ow&7 == 0 {
		k := op.k
		pi := 0
		for i := 0; i < s; i++ {
			base := i * inSize
			for y := 0; y < oh; y++ {
				rowBase := base + y*iw
				for x0 := 0; x0 < ow; x0 += 8 {
					panel := dst[pi*kp*8 : (pi+1)*kp*8]
					pi++
					w := rowBase + x0
					for qq := 0; qq < kp; qq += 4 {
						w0, w1, w2, w3 := zeroWin[:], zeroWin[:], zeroWin[:], zeroWin[:]
						if qq < k {
							w0 = act8[w+op.kOff[qq]:]
						}
						if qq+1 < k {
							w1 = act8[w+op.kOff[qq+1]:]
						}
						if qq+2 < k {
							w2 = act8[w+op.kOff[qq+2]:]
						}
						if qq+3 < k {
							w3 = act8[w+op.kOff[qq+3]:]
						}
						gemm.PackQuad8(panel[qq*8:], w0, w1, w2, w3)
					}
				}
			}
		}
		return // m is a multiple of 8: no tail lanes to zero
	}
	for i := op.k; i < kp; i++ {
		rowq[i] = 0
	}
	g := 0
	for i := 0; i < s; i++ {
		base := i * inSize
		for y := 0; y < oh; y++ {
			rowBase := base + y*iw*ic
			for x := 0; x < ow; x++ {
				src := act8[rowBase+x*ic:]
				for ky := 0; ky < op.kh; ky++ {
					d := rowq[ky*seg : (ky+1)*seg]
					sr := src[ky*iw*ic : ky*iw*ic+seg]
					if seg < 16 {
						// too small for copy's memmove call to pay off
						for j, b := range sr {
							d[j] = b
						}
					} else {
						copy(d, sr)
					}
				}
				panel := dst[(g>>3)*kp*8 : (g>>3)*kp*8+kp*8]
				r := g & 7
				for qq := 0; qq < kp; qq += 4 {
					binary.LittleEndian.PutUint32(panel[qq*8+r*4:], binary.LittleEndian.Uint32(rowq[qq:]))
				}
				g++
			}
		}
	}
	for ; g&7 != 0; g++ {
		panel := dst[(g>>3)*kp*8 : (g>>3)*kp*8+kp*8]
		r := g & 7
		for qq := 0; qq < kp; qq += 4 {
			binary.LittleEndian.PutUint32(panel[qq*8+r*4:], 0)
		}
	}
}

// zeroWin pads the int8 quad packer where k is not a multiple of 4.
var zeroWin [8]uint8

// fillBias32 is fillBias for the int32 accumulator (bias in accumulator
// units — the quantized GEMM then adds on top).
func fillBias32(dst []int32, bias []int32, m, n int) {
	if m == 0 {
		return
	}
	copy(dst[:n], bias)
	total := m * n
	for filled := n; filled < total; filled *= 2 {
		copy(dst[filled:total], dst[:filled])
	}
}

func (e *InferenceEngine) convF32(op *inferOp, s int, cur, nxt []float32, a *inferArena) {
	m := s * op.out.H * op.out.W
	a.apack = growF32(a.apack, gemm.PackedALen(m, op.k))
	packConvA(a.apack, cur, op, s)
	fillBias(nxt, op.bias, m, op.n)
	gemm.SgemmPrepacked(m, a.apack, op.pb, nxt, op.n)
}

func (e *InferenceEngine) convInt8(op *inferOp, qt *quantTable, s int, cur, nxt []float32, a *inferArena) {
	m := s * op.out.H * op.out.W
	inSize := op.in.Size()
	a.apack8 = growU8(a.apack8, gemm.PackedAInt8Len(m, op.k))
	a.rowq = growU8(a.rowq, gemm.KP(op.k))
	gemm.QuantizeU8(a.act8[:s*inSize], cur[:s*inSize], qt.invA)
	packConvAInt8(a.apack8, a.rowq, a.act8, op, s)
	acc := a.acc32[:m*op.n]
	fillBias32(acc, qt.bias32, m, op.n)
	gemm.QgemmPrepacked(m, a.apack8, qt.pb8, acc, op.n)
	gemm.DequantScale(nxt[:m*op.n], acc, qt.deq)
}

func (e *InferenceEngine) denseF32(op *inferOp, s int, cur, nxt []float32) {
	fillBias(nxt, op.bias, s, op.n)
	gemm.SgemmPacked(s, cur, op.k, op.pb, nxt, op.n)
}

func (e *InferenceEngine) denseInt8(op *inferOp, qt *quantTable, s int, cur, nxt []float32, a *inferArena) {
	gemm.QuantizeU8(a.act8[:s*op.k], cur[:s*op.k], qt.invA)
	acc := a.acc32[:s*op.n]
	fillBias32(acc, qt.bias32, s, op.n)
	gemm.QgemmPacked(s, a.act8, op.k, qt.pb8, acc, op.n)
	gemm.DequantScale(nxt[:s*op.n], acc, qt.deq)
}

// pool applies 2×2/stride-2 pooling per sample (trailing odd row/column
// ignored, matching Pool2D). preReLU pools the clamped values via the
// fused row kernels — exact for avg, and for max because
// max(relu(·)) == relu(max(·)).
func (e *InferenceEngine) pool(op *inferOp, s int, cur, nxt []float32) {
	inSize, outSize := op.in.Size(), op.out.Size()
	oh, ow, c := op.out.H, op.out.W, op.out.C
	iw := op.in.W
	rowIn := iw * c
	for i := 0; i < s; i++ {
		in := cur[i*inSize : (i+1)*inSize]
		out := nxt[i*outSize : (i+1)*outSize]
		if op.preReLU {
			for y := 0; y < oh; y++ {
				dst := out[y*ow*c : (y+1)*ow*c]
				r0 := in[2*y*rowIn:]
				r1 := in[(2*y+1)*rowIn:]
				if op.poolKind == AvgPool {
					gemm.Pool2x2AvgReLU(dst, r0, r1, c)
				} else {
					gemm.Pool2x2MaxReLU(dst, r0, r1, c)
				}
			}
			continue
		}
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				i00 := ((2 * y * iw) + 2*x) * c
				i10 := (((2*y + 1) * iw) + 2*x) * c
				o := (y*ow + x) * c
				if op.poolKind == AvgPool {
					for ch := 0; ch < c; ch++ {
						out[o+ch] = (in[i00+ch] + in[i00+c+ch] + in[i10+ch] + in[i10+c+ch]) * 0.25
					}
					continue
				}
				for ch := 0; ch < c; ch++ {
					best := in[i00+ch]
					if v := in[i00+c+ch]; v > best {
						best = v
					}
					if v := in[i10+ch]; v > best {
						best = v
					}
					if v := in[i10+c+ch]; v > best {
						best = v
					}
					out[o+ch] = best
				}
			}
		}
	}
}

package kalman

import (
	"math"
	"math/rand/v2"
	"testing"

	"vvd/internal/channel"
	"vvd/internal/phy"
	"vvd/internal/room"
)

// synthAR builds a multi-tap CIR series where each tap follows AR(1) with
// the given coefficient.
func synthAR(n, taps int, phi complex128, noise float64, seed uint64) [][]complex128 {
	rng := rand.New(rand.NewPCG(seed, seed+3))
	series := make([][]complex128, n)
	state := make([]complex128, taps)
	for i := range state {
		state[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	for k := range series {
		h := make([]complex128, taps)
		for l := range h {
			w := complex(rng.NormFloat64(), rng.NormFloat64()) * complex(noise, 0)
			state[l] = phi*state[l] + w
			h[l] = state[l]
		}
		series[k] = h
	}
	return series
}

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := Fit(nil, 1, 1e-6); err == nil {
		t.Fatal("empty series accepted")
	}
	if _, err := Fit(synthAR(3, 2, 0.5, 0.1, 1), 5, 1e-6); err == nil {
		t.Fatal("series shorter than order accepted")
	}
	if _, err := Fit(synthAR(10, 2, 0.5, 0.1, 1), 0, 1e-6); err == nil {
		t.Fatal("zero order accepted")
	}
	ragged := synthAR(10, 3, 0.5, 0.1, 1)
	ragged[4] = ragged[4][:2]
	if _, err := Fit(ragged, 1, 1e-6); err == nil {
		t.Fatal("ragged series accepted")
	}
}

func TestPredictTracksAR1(t *testing.T) {
	series := synthAR(3000, 4, 0.95, 0.05, 7)
	est, err := Fit(series[:2000], 1, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	var predErr, naiveZero float64
	for k := 2000; k < 2999; k++ {
		if err := est.Update(series[k]); err != nil {
			t.Fatal(err)
		}
		pred, err := est.Predict()
		if err != nil {
			t.Fatal(err)
		}
		predErr += Norm2Error(pred, series[k+1])
		naiveZero += Norm2Error(make([]complex128, 4), series[k+1])
	}
	if predErr >= naiveZero/4 {
		t.Fatalf("Kalman prediction error %v not clearly below zero-predictor %v", predErr, naiveZero)
	}
}

func TestPredictBeatsNaiveOnSmoothSeries(t *testing.T) {
	// For a strongly correlated AR(1) with φ < 1, the Kalman one-step
	// predictor must beat the "repeat last value" predictor.
	series := synthAR(4000, 3, 0.7, 0.2, 11)
	mse, err := PredictionMSE(series, 1, 1e-6, 200)
	if err != nil {
		t.Fatal(err)
	}
	naive := NaiveMSE(series, 200)
	if mse >= naive {
		t.Fatalf("Kalman MSE %v not below naive %v", mse, naive)
	}
}

func TestHigherOrderNotWorseOnAR2(t *testing.T) {
	// Build an AR(2) process; AR(2) fit should beat AR(1) fit.
	rng := rand.New(rand.NewPCG(13, 14))
	n, taps := 5000, 2
	series := make([][]complex128, n)
	s1 := make([]complex128, taps)
	s2 := make([]complex128, taps)
	for k := range series {
		h := make([]complex128, taps)
		for l := range h {
			w := complex(rng.NormFloat64(), rng.NormFloat64()) * 0.1
			v := complex(1.2, 0)*s1[l] - complex(0.5, 0)*s2[l] + w
			s2[l], s1[l] = s1[l], v
			h[l] = v
		}
		series[k] = h
	}
	mse1, err := PredictionMSE(series, 1, 1e-6, 200)
	if err != nil {
		t.Fatal(err)
	}
	mse2, err := PredictionMSE(series, 2, 1e-6, 200)
	if err != nil {
		t.Fatal(err)
	}
	if mse2 > mse1 {
		t.Fatalf("AR(2) MSE %v worse than AR(1) %v on an AR(2) process", mse2, mse1)
	}
}

func TestUpdateWrongTapCount(t *testing.T) {
	est, err := Fit(synthAR(100, 3, 0.5, 0.1, 17), 1, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.Update(make([]complex128, 5)); err == nil {
		t.Fatal("wrong tap count accepted")
	}
}

func TestSeenCounts(t *testing.T) {
	series := synthAR(100, 2, 0.5, 0.1, 19)
	est, err := Fit(series, 1, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if err := est.Update(series[k]); err != nil {
			t.Fatal(err)
		}
	}
	if est.Seen() != 10 {
		t.Fatalf("Seen = %d want 10", est.Seen())
	}
}

func TestResetClearsState(t *testing.T) {
	series := synthAR(300, 2, 0.9, 0.1, 23)
	est, err := Fit(series, 2, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 100; k++ {
		if err := est.Update(series[k]); err != nil {
			t.Fatal(err)
		}
	}
	est.Reset()
	if est.Seen() != 0 {
		t.Fatal("Seen not reset")
	}
	pred, err := est.Predict()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range pred {
		if v != 0 {
			t.Fatal("prediction from zero state must be zero")
		}
	}
}

func TestCloneIndependentState(t *testing.T) {
	series := synthAR(200, 3, 0.9, 0.1, 5)
	est, err := Fit(series[:100], 2, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Advance the original a bit, clone, then diverge the two.
	for k := 100; k < 110; k++ {
		if err := est.Update(series[k]); err != nil {
			t.Fatal(err)
		}
		if _, err := est.Predict(); err != nil {
			t.Fatal(err)
		}
	}
	cp := est.Clone()
	if cp.Seen() != est.Seen() {
		t.Fatalf("clone seen %d want %d", cp.Seen(), est.Seen())
	}
	// Both replay the same future: identical predictions.
	for k := 110; k < 130; k++ {
		if err := est.Update(series[k]); err != nil {
			t.Fatal(err)
		}
		if err := cp.Update(series[k]); err != nil {
			t.Fatal(err)
		}
		a, err := est.Predict()
		if err != nil {
			t.Fatal(err)
		}
		b, err := cp.Predict()
		if err != nil {
			t.Fatal(err)
		}
		if Norm2Error(a, b) != 0 {
			t.Fatalf("clone diverged from original at packet %d", k)
		}
	}
	// Mutating the clone must not touch the original.
	if err := cp.Update(series[130]); err != nil {
		t.Fatal(err)
	}
	if cp.Seen() == est.Seen() {
		t.Fatal("clone Update leaked into original's seen counter")
	}
}

func TestCloneConcurrentAdvance(t *testing.T) {
	series := synthAR(300, 3, 0.9, 0.1, 9)
	est, err := Fit(series[:100], 1, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	ref := est.Clone()
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func() {
			cp := est.Clone()
			for k := 100; k < 300; k++ {
				if err := cp.Update(series[k]); err != nil {
					done <- err
					return
				}
				if _, err := cp.Predict(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Pristine original untouched by the concurrent clones.
	if est.Seen() != ref.Seen() {
		t.Fatal("concurrent clones mutated the original")
	}
}

func TestReplayDeterministic(t *testing.T) {
	series := synthAR(500, 3, 0.8, 0.1, 29)
	est, err := Fit(series[:300], 2, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []complex128 {
		est.Reset()
		var last []complex128
		for k := 300; k < 400; k++ {
			if err := est.Update(series[k]); err != nil {
				t.Fatal(err)
			}
			last, err = est.Predict()
			if err != nil {
				t.Fatal(err)
			}
		}
		return last
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] { //vvdlint:bitexact -- clone replay parity is bitwise
			t.Fatal("replay after Reset differs")
		}
	}
}

func TestKalmanOnSimulatedChannelSeries(t *testing.T) {
	// End-to-end: fit on CIRs from a walking human, predict on a held-out
	// continuation — Kalman must beat the zero predictor and roughly track
	// the naive predictor (channel is nearly memoryless at 100 ms spacing,
	// the paper's own observation in Fig. 11).
	g := channel.NewGeometry(room.DefaultLab(), phy.Wavelength)
	m := channel.NewModel(g, phy.SampleRate)
	rng := rand.New(rand.NewPCG(31, 32))
	w := room.NewWalker(g.Room.MovementArea, room.DefaultMobility(), rng)
	series := make([][]complex128, 700)
	for k := range series {
		pos := w.Step(0.1)
		series[k] = m.CIR(room.DefaultHuman(pos))
	}
	mse, err := PredictionMSE(series, 5, 1e-9, 200)
	if err != nil {
		t.Fatal(err)
	}
	var zero float64
	var n int
	for k := 200; k < len(series)-1; k++ {
		zero += Norm2Error(make([]complex128, m.Taps), series[k+1])
		n += m.Taps
	}
	zero /= float64(n)
	if mse >= zero {
		t.Fatalf("Kalman MSE %v not below zero-predictor %v on channel series", mse, zero)
	}
}

func TestMaxAbsTap(t *testing.T) {
	if MaxAbsTap([]complex128{1, -3i, 2}) != 3 {
		t.Fatal("MaxAbsTap wrong")
	}
	if MaxAbsTap(nil) != 0 {
		t.Fatal("MaxAbsTap(nil) must be 0")
	}
}

func TestNorm2Error(t *testing.T) {
	got := Norm2Error([]complex128{1, 2}, []complex128{1, 2 + 1i})
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("Norm2Error = %v want 1", got)
	}
}

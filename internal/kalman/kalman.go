// Package kalman implements the Kalman-filtering-based channel estimation
// baseline of the paper (appendix): each CIR tap is modelled as an AR(p)
// process whose coefficients come from Yule-Walker equations over the
// training-set channel estimates; a per-tap Kalman filter then predicts the
// next packet's tap blindly and is updated with the perfect channel
// estimate once the packet has been observed.
package kalman

import (
	"errors"
	"fmt"
	"math/cmplx"

	"vvd/internal/mathx"
)

// ErrNoTraining is returned when Fit receives an unusable series.
var ErrNoTraining = errors.New("kalman: training series too short for requested order")

// tapFilter is the Kalman filter of one CIR tap with AR(p) state
// [hᵏ, hᵏ⁻¹, …, hᵏ⁻ᵖ⁺¹].
type tapFilter struct {
	p   int
	phi *mathx.Matrix // companion transition matrix (p×p)
	x   []complex128  // state estimate
	cov *mathx.Matrix // error covariance P
	q   *mathx.Matrix // process noise covariance Q
	u   *mathx.Matrix // observation noise covariance U
}

func newTapFilter(phi []complex128, noiseVar float64, obsVar float64) *tapFilter {
	p := len(phi)
	tr := mathx.NewMatrix(p, p)
	for j, c := range phi {
		tr.Set(0, j, c)
	}
	for i := 1; i < p; i++ {
		tr.Set(i, i-1, 1)
	}
	q := mathx.NewMatrix(p, p)
	q.Set(0, 0, complex(noiseVar, 0))
	u := mathx.NewMatrix(p, p)
	cov := mathx.NewMatrix(p, p)
	for i := 0; i < p; i++ {
		u.Set(i, i, complex(obsVar, 0))
		cov.Set(i, i, complex(noiseVar+obsVar+1e-12, 0))
	}
	return &tapFilter{
		p:   p,
		phi: tr,
		x:   make([]complex128, p),
		cov: cov,
		q:   q,
		u:   u,
	}
}

// update runs the Kalman update step (paper Eq. 15–17) with the observed
// state vector z (the latest p perfect estimates, newest first).
func (f *tapFilter) update(z []complex128) error {
	// K = P(P+U)⁻¹
	sum, err := f.cov.Add(f.u)
	if err != nil {
		return err
	}
	inv, err := mathx.Inverse(sum)
	if err != nil {
		return err
	}
	k, err := f.cov.Mul(inv)
	if err != nil {
		return err
	}
	// x ← x + K(z − x)
	innov := make([]complex128, f.p)
	for i := range innov {
		innov[i] = z[i] - f.x[i]
	}
	corr, err := k.MulVec(innov)
	if err != nil {
		return err
	}
	for i := range f.x {
		f.x[i] += corr[i]
	}
	// P ← (I − K)P
	ik, err := mathx.Identity(f.p).Sub(k)
	if err != nil {
		return err
	}
	f.cov, err = ik.Mul(f.cov)
	return err
}

// predict runs the prediction step (paper Eq. 18–19) and returns the
// predicted current tap value.
func (f *tapFilter) predict() (complex128, error) {
	x, err := f.phi.MulVec(f.x)
	if err != nil {
		return 0, err
	}
	f.x = x
	pp, err := f.phi.Mul(f.cov)
	if err != nil {
		return 0, err
	}
	pp, err = pp.Mul(f.phi.Hermitian())
	if err != nil {
		return 0, err
	}
	f.cov, err = pp.Add(f.q)
	if err != nil {
		return 0, err
	}
	return f.x[0], nil
}

// Estimator is the full-CIR Kalman estimator: independent AR(p) filters per
// tap (WSSUS assumption: taps fade independently, paper footnote 12).
type Estimator struct {
	Order   int
	Taps    int
	filters []*tapFilter
	// history holds the last p observed (perfect) estimates per tap,
	// newest first, forming the observation vector.
	history [][]complex128
	seen    int
}

// Fit estimates per-tap AR(p) coefficients from a training series of CIRs
// (each series[k] is the phase-aligned perfect estimate of packet k) and
// returns a ready estimator. obsVar is the assumed observation noise of the
// perfect estimates (kept small, per the paper's footnote 13).
func Fit(series [][]complex128, order int, obsVar float64) (*Estimator, error) {
	if order <= 0 {
		return nil, fmt.Errorf("kalman: order must be positive, got %d", order)
	}
	if len(series) <= order+1 {
		return nil, fmt.Errorf("%w: %d CIRs for AR(%d)", ErrNoTraining, len(series), order)
	}
	taps := len(series[0])
	if taps == 0 {
		return nil, errors.New("kalman: empty CIR in training series")
	}
	for _, h := range series {
		if len(h) != taps {
			return nil, errors.New("kalman: inconsistent CIR lengths in training series")
		}
	}
	est := &Estimator{Order: order, Taps: taps}
	est.filters = make([]*tapFilter, taps)
	est.history = make([][]complex128, taps)
	for l := 0; l < taps; l++ {
		tapSeries := make([]complex128, len(series))
		var mean complex128
		for k, h := range series {
			tapSeries[k] = h[l]
			mean += h[l]
		}
		// Yule-Walker on the centred series is more stable; the AR model
		// tracks deviations while the mean is re-added by the filter state
		// naturally through updates.
		phi, noiseVar, err := mathx.YuleWalker(tapSeries, order)
		if err != nil {
			return nil, fmt.Errorf("kalman: tap %d: %w", l, err)
		}
		if noiseVar <= 0 {
			noiseVar = 1e-12
		}
		est.filters[l] = newTapFilter(phi, noiseVar, obsVar)
		est.history[l] = make([]complex128, order)
	}
	return est, nil
}

// Update feeds the perfect channel estimate of the just-received packet
// into every tap filter (the filter's update step).
func (e *Estimator) Update(h []complex128) error {
	if len(h) != e.Taps {
		return fmt.Errorf("kalman: Update with %d taps, fitted for %d", len(h), e.Taps)
	}
	for l, f := range e.filters {
		// Shift the observation history: newest first.
		hist := e.history[l]
		copy(hist[1:], hist)
		hist[0] = h[l]
		if err := f.update(hist); err != nil {
			return fmt.Errorf("kalman: tap %d update: %w", l, err)
		}
	}
	e.seen++
	return nil
}

// Predict advances every tap filter one packet ahead and returns the
// predicted CIR (the blind estimate for the upcoming packet).
func (e *Estimator) Predict() ([]complex128, error) {
	out := make([]complex128, e.Taps)
	for l, f := range e.filters {
		v, err := f.predict()
		if err != nil {
			return nil, fmt.Errorf("kalman: tap %d predict: %w", l, err)
		}
		out[l] = v
	}
	return out, nil
}

// Seen returns how many updates the estimator has absorbed (the paper
// skips the first 200 packets to let the filter converge).
func (e *Estimator) Seen() int { return e.seen }

// PredictionMSE is a convenience that runs the estimator over a series
// (update with k, predict k+1) and returns the mean squared prediction
// error against the series itself. Useful for model-order comparisons.
func PredictionMSE(series [][]complex128, order int, obsVar float64, skip int) (float64, error) {
	est, err := Fit(series, order, obsVar)
	if err != nil {
		return 0, err
	}
	var sum float64
	var n int
	for k := 0; k < len(series)-1; k++ {
		if err := est.Update(series[k]); err != nil {
			return 0, err
		}
		pred, err := est.Predict()
		if err != nil {
			return 0, err
		}
		if k < skip {
			continue
		}
		for l := range pred {
			d := pred[l] - series[k+1][l]
			sum += real(d)*real(d) + imag(d)*imag(d)
		}
		n += len(pred)
	}
	if n == 0 {
		return 0, errors.New("kalman: series too short for PredictionMSE")
	}
	return sum / float64(n), nil
}

// NaiveMSE returns the MSE of the "previous estimate" predictor on the same
// series, the baseline Kalman must beat on correlated channels.
func NaiveMSE(series [][]complex128, skip int) float64 {
	var sum float64
	var n int
	for k := skip; k < len(series)-1; k++ {
		for l := range series[k] {
			d := series[k][l] - series[k+1][l]
			sum += real(d)*real(d) + imag(d)*imag(d)
		}
		n += len(series[k])
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Reset clears the filter state (covariances are re-inflated) so the same
// fitted model can be replayed on a fresh test sequence.
func (e *Estimator) Reset() {
	for l, f := range e.filters {
		for i := range f.x {
			f.x[i] = 0
		}
		for i := 0; i < f.p; i++ {
			for j := 0; j < f.p; j++ {
				var v complex128
				if i == j {
					v = f.q.At(0, 0) + f.u.At(i, i) + 1e-12
				}
				f.cov.Set(i, j, v)
			}
		}
		for i := range e.history[l] {
			e.history[l][i] = 0
		}
	}
	e.seen = 0
}

// clone deep-copies the mutable filter state (state vector and error
// covariance); the transition and noise matrices are immutable after
// construction and shared with the original.
func (f *tapFilter) clone() *tapFilter {
	x := make([]complex128, len(f.x))
	copy(x, f.x)
	return &tapFilter{p: f.p, phi: f.phi, x: x, cov: f.cov.Clone(), q: f.q, u: f.u}
}

// Clone returns an independent estimator with the same fitted AR model and
// a copy of the current filter state. Clones never share mutable state, so
// each can be advanced (Predict/Update) concurrently with the original —
// the replacement for replaying one shared instance via Reset.
func (e *Estimator) Clone() *Estimator {
	cp := &Estimator{Order: e.Order, Taps: e.Taps, seen: e.seen}
	cp.filters = make([]*tapFilter, len(e.filters))
	for i, f := range e.filters {
		cp.filters[i] = f.clone()
	}
	cp.history = make([][]complex128, len(e.history))
	for i, h := range e.history {
		cp.history[i] = make([]complex128, len(h))
		copy(cp.history[i], h)
	}
	return cp
}

// Norm2Error returns ‖a−b‖² — helper shared by tests and experiments.
func Norm2Error(a, b []complex128) float64 {
	var s float64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += real(d)*real(d) + imag(d)*imag(d)
	}
	return s
}

// MaxAbsTap returns the largest tap magnitude, useful for sanity checks on
// predicted CIRs before equalization.
func MaxAbsTap(h []complex128) float64 {
	var m float64
	for _, c := range h {
		if a := cmplx.Abs(c); a > m {
			m = a
		}
	}
	return m
}

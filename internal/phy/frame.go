package phy

import (
	"errors"
	"fmt"
)

// Frame-format constants (IEEE 802.15.4 PPDU).
const (
	PreambleBytes = 4    // SHR preamble: four zero octets (8 zero symbols)
	SFDByte       = 0xA7 // start-of-frame delimiter
	MaxPSDU       = 127  // aMaxPHYPacketSize
	// SyncSymbols is the number of symbols in the SHR (preamble + SFD).
	SyncSymbols = PreambleBytes*2 + 2
	// DefaultPSDULen mirrors the paper's 127-byte PSDU.
	DefaultPSDULen = 127
)

// ErrFrameTooLong is returned when a PSDU would exceed MaxPSDU bytes.
var ErrFrameTooLong = errors.New("phy: PSDU exceeds 127 bytes")

// ErrFrameTooShort is returned when a PSDU cannot hold header + FCS.
var ErrFrameTooShort = errors.New("phy: PSDU too short")

// Frame is the MAC-level content carried in the PSDU. As in the paper's
// measurements, every frame shares the same payload and differs only in the
// sequence number (and hence FCS).
type Frame struct {
	SeqNum  byte
	Payload []byte
}

// psduOverhead is seq(1) + FCS(2).
const psduOverhead = 3

// BuildPSDU serializes the frame into a PSDU: [seq | payload | FCS].
func (f *Frame) BuildPSDU() ([]byte, error) {
	n := 1 + len(f.Payload) + 2
	if n > MaxPSDU {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLong, n)
	}
	body := make([]byte, 0, n)
	body = append(body, f.SeqNum)
	body = append(body, f.Payload...)
	return AppendFCS(body), nil
}

// ParsePSDU validates the FCS and decodes the frame. A CRC failure returns
// an error with the partially-decoded frame left nil.
func ParsePSDU(psdu []byte) (*Frame, error) {
	if len(psdu) < psduOverhead {
		return nil, ErrFrameTooShort
	}
	if !CheckFCS(psdu) {
		return nil, errors.New("phy: FCS check failed")
	}
	payload := make([]byte, len(psdu)-psduOverhead)
	copy(payload, psdu[1:len(psdu)-2])
	return &Frame{SeqNum: psdu[0], Payload: payload}, nil
}

// DefaultPayload returns the constant measurement payload of the requested
// PSDU length (so that PSDU = 1 + len(payload) + 2 bytes), a repeating
// pattern as used by the paper's fixed-payload packets.
func DefaultPayload(psduLen int) []byte {
	if psduLen < psduOverhead {
		psduLen = psduOverhead
	}
	if psduLen > MaxPSDU {
		psduLen = MaxPSDU
	}
	p := make([]byte, psduLen-psduOverhead)
	for i := range p {
		p[i] = byte(0xA0 | i&0x0F)
	}
	return p
}

// PPDU is a fully-assembled PHY protocol data unit in bit form along with
// the metadata needed by the receiver.
type PPDU struct {
	Bits     []byte // SHR + PHR + PSDU bits, LSB-first per octet
	PSDUBits int    // number of trailing bits belonging to the PSDU
	PSDULen  int    // PSDU length in bytes
}

// BuildPPDU assembles preamble + SFD + PHR(length) + PSDU into bits.
func BuildPPDU(psdu []byte) (*PPDU, error) {
	if len(psdu) > MaxPSDU {
		return nil, ErrFrameTooLong
	}
	if len(psdu) < psduOverhead {
		return nil, ErrFrameTooShort
	}
	raw := make([]byte, 0, PreambleBytes+2+len(psdu))
	for i := 0; i < PreambleBytes; i++ {
		raw = append(raw, 0x00)
	}
	raw = append(raw, SFDByte)
	raw = append(raw, byte(len(psdu))) // PHR: 7-bit frame length
	raw = append(raw, psdu...)
	return &PPDU{
		Bits:     BytesToBits(raw),
		PSDUBits: len(psdu) * 8,
		PSDULen:  len(psdu),
	}, nil
}

// SHRChips returns the chip sequence of the synchronization header
// (preamble + SFD), used as the receiver's sync reference.
func SHRChips() []byte {
	raw := make([]byte, PreambleBytes, PreambleBytes+1)
	raw = append(raw, SFDByte)
	return SpreadBits(BytesToBits(raw))
}

package phy

import (
	"bytes"
	"errors"
	"testing"
)

func TestBuildParsePSDURoundTrip(t *testing.T) {
	f := &Frame{SeqNum: 99, Payload: []byte("industrial sensor reading")}
	psdu, err := f.BuildPSDU()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePSDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	if got.SeqNum != 99 || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestBuildPSDUTooLong(t *testing.T) {
	f := &Frame{Payload: make([]byte, 126)}
	if _, err := f.BuildPSDU(); !errors.Is(err, ErrFrameTooLong) {
		t.Fatalf("err = %v want ErrFrameTooLong", err)
	}
}

func TestBuildPSDUMaxSize(t *testing.T) {
	f := &Frame{Payload: make([]byte, MaxPSDU-psduOverhead)}
	psdu, err := f.BuildPSDU()
	if err != nil {
		t.Fatal(err)
	}
	if len(psdu) != MaxPSDU {
		t.Fatalf("len = %d want %d", len(psdu), MaxPSDU)
	}
}

func TestParsePSDUCorrupted(t *testing.T) {
	f := &Frame{SeqNum: 1, Payload: []byte("x")}
	psdu, _ := f.BuildPSDU()
	psdu[1] ^= 0xFF
	if _, err := ParsePSDU(psdu); err == nil {
		t.Fatal("corrupted PSDU accepted")
	}
}

func TestParsePSDUTooShort(t *testing.T) {
	if _, err := ParsePSDU([]byte{1, 2}); !errors.Is(err, ErrFrameTooShort) {
		t.Fatalf("err = %v want ErrFrameTooShort", err)
	}
}

func TestParsePSDUCopiesPayload(t *testing.T) {
	f := &Frame{SeqNum: 3, Payload: []byte{9, 9}}
	psdu, _ := f.BuildPSDU()
	got, err := ParsePSDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	psdu[1] = 0
	if got.Payload[0] != 9 {
		t.Fatal("parsed payload aliases input")
	}
}

func TestDefaultPayloadSizing(t *testing.T) {
	p := DefaultPayload(127)
	if len(p) != 124 {
		t.Fatalf("len = %d want 124", len(p))
	}
	f := &Frame{SeqNum: 0, Payload: p}
	psdu, err := f.BuildPSDU()
	if err != nil {
		t.Fatal(err)
	}
	if len(psdu) != 127 {
		t.Fatalf("PSDU len = %d want 127 (paper's packet size)", len(psdu))
	}
}

func TestDefaultPayloadClamps(t *testing.T) {
	if len(DefaultPayload(0)) != 0 {
		t.Fatal("tiny request should clamp to empty payload")
	}
	if got := len(DefaultPayload(1000)); got != MaxPSDU-psduOverhead {
		t.Fatalf("oversize request: len = %d", got)
	}
}

func TestBuildPPDUStructure(t *testing.T) {
	psdu := AppendFCS([]byte{0x05, 0x01})
	ppdu, err := BuildPPDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	wantBits := (PreambleBytes + 2 + len(psdu)) * 8
	if len(ppdu.Bits) != wantBits {
		t.Fatalf("bits = %d want %d", len(ppdu.Bits), wantBits)
	}
	if ppdu.PSDUBits != len(psdu)*8 {
		t.Fatalf("PSDUBits = %d", ppdu.PSDUBits)
	}
	// First 32 bits (preamble) must be zero.
	for i := 0; i < PreambleBytes*8; i++ {
		if ppdu.Bits[i] != 0 {
			t.Fatalf("preamble bit %d non-zero", i)
		}
	}
	// PHR carries the PSDU length.
	raw := BitsToBytes(ppdu.Bits)
	if raw[5] != byte(len(psdu)) {
		t.Fatalf("PHR = %d want %d", raw[5], len(psdu))
	}
}

func TestBuildPPDUErrors(t *testing.T) {
	if _, err := BuildPPDU(make([]byte, 128)); !errors.Is(err, ErrFrameTooLong) {
		t.Fatal("oversize PSDU accepted")
	}
	if _, err := BuildPPDU([]byte{1}); !errors.Is(err, ErrFrameTooShort) {
		t.Fatal("undersize PSDU accepted")
	}
}

func TestSHRChipsLength(t *testing.T) {
	chips := SHRChips()
	want := SyncSymbols * ChipsPerSymbol
	if len(chips) != want {
		t.Fatalf("SHR chips = %d want %d", len(chips), want)
	}
	// Preamble symbols are all symbol 0.
	sym0 := ChipsForSymbol(0)
	for s := 0; s < PreambleBytes*2; s++ {
		for i := 0; i < ChipsPerSymbol; i++ {
			if chips[s*ChipsPerSymbol+i] != sym0[i] {
				t.Fatalf("preamble symbol %d not PN(0)", s)
			}
		}
	}
}

func TestSHRSFDSymbols(t *testing.T) {
	chips := SHRChips()
	// SFD = 0xA7 → low nibble 0x7 first, then 0xA.
	off := PreambleBytes * 2 * ChipsPerSymbol
	want7 := ChipsForSymbol(0x7)
	wantA := ChipsForSymbol(0xA)
	for i := 0; i < ChipsPerSymbol; i++ {
		if chips[off+i] != want7[i] {
			t.Fatal("first SFD symbol must be 0x7")
		}
		if chips[off+ChipsPerSymbol+i] != wantA[i] {
			t.Fatal("second SFD symbol must be 0xA")
		}
	}
}

package phy

import (
	"math/bits"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestPNTableDistinct(t *testing.T) {
	seen := map[uint32]int{}
	for sym := 0; sym < 16; sym++ {
		w := pnPacked[sym]
		if prev, ok := seen[w]; ok {
			t.Fatalf("symbols %d and %d share a PN sequence", prev, sym)
		}
		seen[w] = sym
	}
}

func TestPNTableCyclicShiftProperty(t *testing.T) {
	// Symbols 1..7 are right-cyclic shifts of symbol 0 by 4·k chips.
	for sym := 1; sym < 8; sym++ {
		shift := 4 * sym
		for i := 0; i < ChipsPerSymbol; i++ {
			if pnTable[sym][(i+shift)%ChipsPerSymbol] != pnTable[0][i] {
				t.Fatalf("symbol %d is not a %d-chip shift of symbol 0", sym, shift)
			}
		}
	}
}

func TestPNTableConjugationProperty(t *testing.T) {
	// Symbols 8..15 equal 0..7 with odd-indexed chips inverted.
	for sym := 8; sym < 16; sym++ {
		for i := 0; i < ChipsPerSymbol; i++ {
			want := pnTable[sym-8][i]
			if i%2 == 1 {
				want ^= 1
			}
			if pnTable[sym][i] != want {
				t.Fatalf("symbol %d chip %d: conjugation broken", sym, i)
			}
		}
	}
}

func TestPNTableBalanced(t *testing.T) {
	// Each sequence should be roughly half ones (DSSS balance).
	for sym := 0; sym < 16; sym++ {
		ones := bits.OnesCount32(pnPacked[sym])
		if ones < 12 || ones > 20 {
			t.Fatalf("symbol %d has %d ones, badly unbalanced", sym, ones)
		}
	}
}

func TestPNTableMinimumDistance(t *testing.T) {
	// The near-orthogonal set must keep a healthy Hamming distance between
	// any two sequences — this is what makes chip-error correction work.
	min := ChipsPerSymbol
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			if d := bits.OnesCount32(pnPacked[a] ^ pnPacked[b]); d < min {
				min = d
			}
		}
	}
	if min < 10 {
		t.Fatalf("minimum inter-sequence Hamming distance %d < 10", min)
	}
}

func TestChipsForSymbolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range symbol")
		}
	}()
	ChipsForSymbol(16)
}

func TestSpreadDespreadRoundTrip(t *testing.T) {
	bits := []byte{1, 0, 1, 1, 0, 0, 0, 0, 1, 1, 1, 1}
	got := DespreadChips(SpreadBits(bits))
	if len(got) != len(bits) {
		t.Fatalf("len = %d want %d", len(got), len(bits))
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d = %d want %d", i, got[i], bits[i])
		}
	}
}

func TestSpreadBitsPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-multiple-of-4 bits")
		}
	}()
	SpreadBits([]byte{1, 0, 1})
}

func TestDespreadCorrectsChipErrors(t *testing.T) {
	// With minimum distance ≥ 10, any 4 chip errors per symbol must still
	// decode correctly.
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 100; trial++ {
		sym := rng.IntN(16)
		bitsIn := []byte{byte(sym & 1), byte(sym >> 1 & 1), byte(sym >> 2 & 1), byte(sym >> 3 & 1)}
		chips := SpreadBits(bitsIn)
		for _, i := range rng.Perm(ChipsPerSymbol)[:4] {
			chips[i] ^= 1
		}
		got := DespreadChips(chips)
		for i := range bitsIn {
			if got[i] != bitsIn[i] {
				t.Fatalf("trial %d: symbol %d misdecoded with 4 chip errors", trial, sym)
			}
		}
	}
}

func TestDespreadIgnoresPartialBlock(t *testing.T) {
	chips := SpreadBits([]byte{1, 0, 0, 0})
	chips = append(chips, 1, 0, 1) // partial trailing block
	if got := DespreadChips(chips); len(got) != 4 {
		t.Fatalf("len = %d want 4", len(got))
	}
}

func TestBytesToBitsLSBFirst(t *testing.T) {
	bits := BytesToBits([]byte{0x01, 0x80})
	if bits[0] != 1 || bits[7] != 0 {
		t.Fatal("0x01 must emit its LSB first")
	}
	if bits[8] != 0 || bits[15] != 1 {
		t.Fatal("0x80 must emit its MSB last")
	}
}

func TestBitsBytesRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		got := BitsToBytes(BytesToBits(data))
		if len(got) != len(data) {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsToBytesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BitsToBytes([]byte{1, 0, 1})
}

func TestSpreadDespreadRandomProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 16 {
			data = data[:16]
		}
		in := BytesToBits(data)
		out := DespreadChips(SpreadBits(in))
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

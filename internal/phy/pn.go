// Package phy implements the IEEE 802.15.4 2.45 GHz O-QPSK DSSS physical
// layer used by the paper's testbed: 4-bit symbols spread to 32-chip PN
// sequences, half-sine O-QPSK modulation at 2 Mchip/s, frame construction
// (preamble, SFD, PHR, PSDU, FCS), and a receiver with frame
// synchronization, frequency/phase offset correction, chip-level hard
// decisions and PN-sequence despreading.
//
// The sample rate is 8 MHz (4 samples per chip), matching the paper's
// downsampled USRP capture rate, which over-resolves the 2 MHz channel to
// increase multipath temporal resolution.
package phy

import (
	"math"
	"math/bits"
)

// PHY-rate constants for the 2.45 GHz O-QPSK PHY.
const (
	ChipRate         = 2e6      // chips per second
	SampleRate       = 8e6      // receiver samples per second (paper: USRP downsampled to 8 MHz)
	SamplesPerChip   = 4        // SampleRate / ChipRate
	ChipsPerSymbol   = 32       // DSSS spreading factor
	BitsPerSymbol    = 4        // each symbol carries one nibble
	CarrierFrequency = 2.4800e9 // channel 26 centre frequency in Hz
	Wavelength       = 2.99792458e8 / CarrierFrequency
)

// pnBase is the chip sequence for data symbol 0 (IEEE 802.15.4-2003 Table
// 24), c0 first.
var pnBase = [ChipsPerSymbol]byte{
	1, 1, 0, 1, 1, 0, 0, 1,
	1, 1, 0, 0, 0, 0, 1, 1,
	0, 1, 0, 1, 0, 0, 1, 0,
	0, 0, 1, 0, 1, 1, 1, 0,
}

// pnTable holds the 16 nearly-orthogonal 32-chip sequences. Symbols 1–7 are
// right-cyclic shifts of symbol 0 by 4·k chips; symbols 8–15 repeat 0–7 with
// every odd-indexed chip inverted (quadrature conjugation), per the standard.
var pnTable = buildPNTable()

func buildPNTable() [16][ChipsPerSymbol]byte {
	var t [16][ChipsPerSymbol]byte
	for sym := 0; sym < 8; sym++ {
		shift := 4 * sym
		for i := 0; i < ChipsPerSymbol; i++ {
			t[sym][(i+shift)%ChipsPerSymbol] = pnBase[i]
		}
	}
	for sym := 8; sym < 16; sym++ {
		t[sym] = t[sym-8]
		for i := 1; i < ChipsPerSymbol; i += 2 {
			t[sym][i] ^= 1
		}
	}
	return t
}

// ChipsForSymbol returns the 32-chip PN sequence for a 4-bit symbol value.
// It panics for values outside 0..15.
func ChipsForSymbol(sym int) [ChipsPerSymbol]byte {
	if sym < 0 || sym > 15 {
		panic("phy: symbol out of range")
	}
	return pnTable[sym]
}

// SpreadBits maps a bit slice (len divisible by 4, LSB-first within each
// nibble per the standard's b0-first ordering) to its chip sequence.
func SpreadBits(bits []byte) []byte {
	if len(bits)%BitsPerSymbol != 0 {
		panic("phy: SpreadBits needs a multiple of 4 bits")
	}
	chips := make([]byte, 0, len(bits)/BitsPerSymbol*ChipsPerSymbol)
	for i := 0; i < len(bits); i += BitsPerSymbol {
		sym := int(bits[i]) | int(bits[i+1])<<1 | int(bits[i+2])<<2 | int(bits[i+3])<<3
		pn := pnTable[sym]
		chips = append(chips, pn[:]...)
	}
	return chips
}

// pnPacked holds each PN sequence as a 32-bit word (chip i in bit i) so
// despreading reduces to XOR + popcount.
var pnPacked = buildPNPacked()

func buildPNPacked() [16]uint32 {
	var p [16]uint32
	for sym := range pnTable {
		p[sym] = packChips(pnTable[sym][:])
	}
	return p
}

func packChips(chips []byte) uint32 {
	var w uint32
	for i, c := range chips {
		if c != 0 {
			w |= 1 << i
		}
	}
	return w
}

// DespreadChips maps hard chip decisions back to bits by choosing, for every
// 32-chip block, the PN sequence with the highest agreement count (minimum
// Hamming distance, computed with XOR + popcount). Trailing partial blocks
// are ignored. The returned bits use the same LSB-first nibble ordering as
// SpreadBits.
func DespreadChips(chips []byte) []byte {
	nsym := len(chips) / ChipsPerSymbol
	out := make([]byte, 0, nsym*BitsPerSymbol)
	for s := 0; s < nsym; s++ {
		block := packChips(chips[s*ChipsPerSymbol : (s+1)*ChipsPerSymbol])
		best, bestSym := ChipsPerSymbol+1, 0
		for sym, pn := range pnPacked {
			if d := bits.OnesCount32(block ^ pn); d < best {
				best, bestSym = d, sym
			}
		}
		out = append(out,
			byte(bestSym&1), byte(bestSym>>1&1), byte(bestSym>>2&1), byte(bestSym>>3&1))
	}
	return out
}

// DespreadSoft maps *soft* chip values (matched-rail samples before the
// sign decision) to bits by correlating each 32-chip block against the
// ±1-mapped PN sequences and picking the largest correlation. Soft
// despreading weights reliable chips more than borderline ones, buying
// roughly 1–2 dB over hard-decision despreading near the decoding
// threshold. Trailing partial blocks are ignored.
func DespreadSoft(soft []float64) []byte {
	nsym := len(soft) / ChipsPerSymbol
	out := make([]byte, 0, nsym*BitsPerSymbol)
	for s := 0; s < nsym; s++ {
		block := soft[s*ChipsPerSymbol : (s+1)*ChipsPerSymbol]
		best, bestSym := math.Inf(-1), 0
		for sym := 0; sym < 16; sym++ {
			var corr float64
			pn := &pnTable[sym]
			for i, v := range block {
				if pn[i] != 0 {
					corr += v
				} else {
					corr -= v
				}
			}
			if corr > best {
				best, bestSym = corr, sym
			}
		}
		out = append(out,
			byte(bestSym&1), byte(bestSym>>1&1), byte(bestSym>>2&1), byte(bestSym>>3&1))
	}
	return out
}

// BytesToBits expands bytes into bits, LSB first (b0 of each octet first,
// matching the standard's transmission order).
func BytesToBits(data []byte) []byte {
	bits := make([]byte, 0, len(data)*8)
	for _, b := range data {
		for i := 0; i < 8; i++ {
			bits = append(bits, b>>i&1)
		}
	}
	return bits
}

// BitsToBytes packs LSB-first bits into bytes. len(bits) must be a multiple
// of 8.
func BitsToBytes(bits []byte) []byte {
	if len(bits)%8 != 0 {
		panic("phy: BitsToBytes needs a multiple of 8 bits")
	}
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b != 0 {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

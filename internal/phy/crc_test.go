package phy

import (
	"testing"
	"testing/quick"
)

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/KERMIT check value for "123456789".
	if got := CRC16([]byte("123456789")); got != 0x2189 {
		t.Fatalf("CRC16 = %#04x want 0x2189", got)
	}
}

func TestCRC16Empty(t *testing.T) {
	if got := CRC16(nil); got != 0 {
		t.Fatalf("CRC16(nil) = %#04x want 0", got)
	}
}

func TestAppendCheckFCSRoundTrip(t *testing.T) {
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	framed := AppendFCS(data)
	if len(framed) != len(data)+2 {
		t.Fatalf("len = %d", len(framed))
	}
	if !CheckFCS(framed) {
		t.Fatal("valid FCS rejected")
	}
}

func TestCheckFCSDetectsSingleBitErrors(t *testing.T) {
	framed := AppendFCS([]byte("hello 802.15.4"))
	for byteIdx := 0; byteIdx < len(framed); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			corrupt := make([]byte, len(framed))
			copy(corrupt, framed)
			corrupt[byteIdx] ^= 1 << bit
			if CheckFCS(corrupt) {
				t.Fatalf("single-bit error at byte %d bit %d undetected", byteIdx, bit)
			}
		}
	}
}

func TestCheckFCSTooShort(t *testing.T) {
	if CheckFCS([]byte{0x01, 0x02}) {
		t.Fatal("2-byte frame must fail FCS")
	}
	if CheckFCS(nil) {
		t.Fatal("nil frame must fail FCS")
	}
}

func TestAppendFCSDoesNotAliasInput(t *testing.T) {
	data := make([]byte, 4, 16)
	framed := AppendFCS(data)
	framed[0] = 0xFF
	if data[0] == 0xFF {
		t.Fatal("AppendFCS aliased caller's buffer")
	}
}

func TestFCSRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		return CheckFCS(AppendFCS(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

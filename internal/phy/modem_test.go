package phy

import (
	"math"
	"math/rand/v2"
	"testing"

	"vvd/internal/dsp"
)

func TestWaveformLen(t *testing.T) {
	if got := WaveformLen(32); got != 33*SamplesPerChip {
		t.Fatalf("WaveformLen(32) = %d", got)
	}
	if WaveformLen(0) != 0 {
		t.Fatal("WaveformLen(0) must be 0")
	}
}

func TestModulateChipsRails(t *testing.T) {
	m := NewModulator()
	// Single even chip = in-phase rail only.
	w := m.ModulateChips([]byte{1})
	for i, c := range w {
		if imag(c) != 0 {
			t.Fatalf("sample %d has quadrature energy for even chip", i)
		}
	}
	if real(w[SamplesPerChip]) < 0.99 {
		t.Fatalf("even-chip peak %v, want ≈ 1 at (k+1)·SPS", w[SamplesPerChip])
	}
	// Two chips: the odd chip rides Q.
	w2 := m.ModulateChips([]byte{0, 1})
	if imag(w2[2*SamplesPerChip]) < 0.99 {
		t.Fatalf("odd-chip peak %v, want ≈ 1", w2[2*SamplesPerChip])
	}
	if real(w2[SamplesPerChip]) > -0.99 {
		t.Fatalf("chip value 0 must map to −1, got %v", real(w2[SamplesPerChip]))
	}
}

func TestModulateHalfSineContinuity(t *testing.T) {
	// Adjacent same-rail pulses join at zero crossings: the I rail envelope
	// |real| must dip to ~0 every 2 chips.
	m := NewModulator()
	w := m.ModulateChips([]byte{1, 1, 0, 0, 1, 1})
	for k := 0; k <= 6; k += 2 {
		idx := k * SamplesPerChip
		if idx < len(w) && math.Abs(real(w[idx])) > 1e-9 {
			t.Fatalf("I rail not zero at pulse boundary sample %d: %v", idx, w[idx])
		}
	}
}

func TestChipDecisionsCleanRoundTrip(t *testing.T) {
	m := NewModulator()
	rng := rand.New(rand.NewPCG(3, 4))
	chips := make([]byte, 256)
	for i := range chips {
		chips[i] = byte(rng.IntN(2))
	}
	w := m.ModulateChips(chips)
	got := ChipDecisions(w, len(chips))
	for i := range chips {
		if got[i] != chips[i] {
			t.Fatalf("chip %d = %d want %d", i, got[i], chips[i])
		}
	}
}

func TestChipDecisionsTruncatedWaveform(t *testing.T) {
	m := NewModulator()
	chips := []byte{1, 1, 1, 1}
	w := m.ModulateChips(chips)
	got := ChipDecisions(w[:SamplesPerChip+1], len(chips))
	if got[0] != 1 {
		t.Fatal("first chip should still decode")
	}
	for _, c := range got[1:] {
		if c != 0 {
			t.Fatal("missing samples must decide as zero")
		}
	}
}

func TestSoftChipsSignsMatchDecisions(t *testing.T) {
	m := NewModulator()
	chips := []byte{1, 0, 1, 1, 0, 0}
	w := m.ModulateChips(chips)
	soft := SoftChips(w, len(chips))
	hard := ChipDecisions(w, len(chips))
	for i := range chips {
		wantPos := hard[i] == 1
		if (soft[i] > 0) != wantPos {
			t.Fatalf("soft/hard mismatch at chip %d", i)
		}
	}
}

func TestEndToEndCleanLoopback(t *testing.T) {
	frame := &Frame{SeqNum: 42, Payload: DefaultPayload(32)}
	psdu, err := frame.BuildPSDU()
	if err != nil {
		t.Fatal(err)
	}
	ppdu, err := BuildPPDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModulator()
	w := m.ModulatePPDU(ppdu)
	nchips := len(ppdu.Bits) / BitsPerSymbol * ChipsPerSymbol
	bits := DespreadChips(ChipDecisions(w, nchips))
	raw := BitsToBytes(bits)
	// SHR(5) + PHR(1) then PSDU.
	gotPSDU := raw[6 : 6+ppdu.PSDULen]
	parsed, err := ParsePSDU(gotPSDU)
	if err != nil {
		t.Fatalf("clean loopback failed FCS: %v", err)
	}
	if parsed.SeqNum != 42 {
		t.Fatalf("seq = %d want 42", parsed.SeqNum)
	}
}

func TestEndToEndLoopbackWithNoise(t *testing.T) {
	// At 12 dB SNR the DSSS processing gain must still deliver the packet.
	frame := &Frame{SeqNum: 7, Payload: DefaultPayload(16)}
	psdu, _ := frame.BuildPSDU()
	ppdu, _ := BuildPPDU(psdu)
	m := NewModulator()
	w := m.ModulatePPDU(ppdu)
	rng := rand.New(rand.NewPCG(10, 20))
	noisy := dsp.AddAWGN(w, 12, rng)
	nchips := len(ppdu.Bits) / BitsPerSymbol * ChipsPerSymbol
	bits := DespreadChips(ChipDecisions(noisy, nchips))
	raw := BitsToBytes(bits)
	parsed, err := ParsePSDU(raw[6 : 6+ppdu.PSDULen])
	if err != nil {
		t.Fatalf("12 dB loopback failed: %v", err)
	}
	if parsed.SeqNum != 7 {
		t.Fatalf("seq = %d want 7", parsed.SeqNum)
	}
}

func TestNormalizedSyncPeakCleanSignal(t *testing.T) {
	refs := NewReferenceWaveforms()
	frame := &Frame{SeqNum: 1, Payload: DefaultPayload(8)}
	psdu, _ := frame.BuildPSDU()
	ppdu, _ := BuildPPDU(psdu)
	w := refs.Modulator().ModulatePPDU(ppdu)
	peak, lag := refs.NormalizedSyncPeak(w, 8)
	if lag != 0 {
		t.Fatalf("lag = %d want 0", lag)
	}
	if peak < 0.95 {
		t.Fatalf("clean sync peak %v, want ≥ 0.95", peak)
	}
}

func TestNormalizedSyncPeakFindsDelay(t *testing.T) {
	refs := NewReferenceWaveforms()
	frame := &Frame{SeqNum: 1, Payload: DefaultPayload(8)}
	psdu, _ := frame.BuildPSDU()
	ppdu, _ := BuildPPDU(psdu)
	w := refs.Modulator().ModulatePPDU(ppdu)
	delayed := append(make([]complex128, 5), w...)
	_, lag := refs.NormalizedSyncPeak(delayed, 16)
	if lag != 5 {
		t.Fatalf("lag = %d want 5", lag)
	}
}

func TestNormalizedSyncPeakDropsWithNoise(t *testing.T) {
	refs := NewReferenceWaveforms()
	frame := &Frame{SeqNum: 1, Payload: DefaultPayload(8)}
	psdu, _ := frame.BuildPSDU()
	ppdu, _ := BuildPPDU(psdu)
	w := refs.Modulator().ModulatePPDU(ppdu)
	rng := rand.New(rand.NewPCG(5, 6))
	noisy := dsp.AddAWGN(w, -10, rng)
	cleanPeak, _ := refs.NormalizedSyncPeak(w, 0)
	noisyPeak, _ := refs.NormalizedSyncPeak(noisy, 0)
	if noisyPeak >= cleanPeak {
		t.Fatalf("noisy peak %v should be below clean peak %v", noisyPeak, cleanPeak)
	}
}

func TestNormalizedSyncPeakShortInput(t *testing.T) {
	refs := NewReferenceWaveforms()
	peak, lag := refs.NormalizedSyncPeak([]complex128{1, 2}, 4)
	if peak != 0 || lag != 0 {
		t.Fatal("short input must return zero peak")
	}
}

package phy

import (
	"math"
	"sync"

	"vvd/internal/dsp"
)

// Modulator converts bit streams into O-QPSK half-sine-shaped complex
// baseband waveforms at SamplesPerChip samples per chip. The zero value is
// not usable; create one with NewModulator.
type Modulator struct {
	pulse []float64 // half-sine over one pulse duration (2 chip periods)
}

// NewModulator returns a modulator for the standard pulse shape.
func NewModulator() *Modulator {
	// The O-QPSK pulse spans two chip periods (each rail runs at half the
	// chip rate); sampled at SamplesPerChip per chip that is 2·SPS samples.
	n := 2 * SamplesPerChip
	p := make([]float64, n)
	for k := range p {
		p[k] = math.Sin(math.Pi * float64(k) / float64(n))
	}
	return &Modulator{pulse: p}
}

// WaveformLen returns the number of complex samples produced for nchips.
func WaveformLen(nchips int) int {
	if nchips <= 0 {
		return 0
	}
	return (nchips + 1) * SamplesPerChip
}

// ModulateChips maps a chip sequence (values 0/1) onto the O-QPSK waveform:
// even-indexed chips ride the in-phase rail, odd-indexed chips the
// quadrature rail delayed by one chip period (the "offset" in O-QPSK), each
// shaped by a half-sine spanning two chip periods.
func (m *Modulator) ModulateChips(chips []byte) []complex128 {
	out := make([]complex128, WaveformLen(len(chips)))
	for k, c := range chips {
		amp := -1.0
		if c != 0 {
			amp = 1.0
		}
		start := k * SamplesPerChip
		if k%2 == 0 {
			for i, pv := range m.pulse {
				out[start+i] += complex(amp*pv, 0)
			}
		} else {
			for i, pv := range m.pulse {
				out[start+i] += complex(0, amp*pv)
			}
		}
	}
	return out
}

// ModulateBits spreads bits to chips and modulates them.
func (m *Modulator) ModulateBits(bits []byte) []complex128 {
	return m.ModulateChips(SpreadBits(bits))
}

// ModulatePPDU returns the waveform for an assembled PPDU.
func (m *Modulator) ModulatePPDU(p *PPDU) []complex128 {
	return m.ModulateBits(p.Bits)
}

// MatchedFilter correlates the waveform with the half-sine chip pulse,
// normalized so pulse peaks keep unit amplitude. Sampling the output at the
// pulse peaks realizes the matched-filter receiver: out-of-band noise (and
// any noise enhanced by zero-forcing equalization outside the signal band)
// is suppressed ahead of the chip decisions, while same-rail pulses remain
// orthogonal at the decision instants.
func MatchedFilter(x []complex128) []complex128 {
	pulse, energy := matchedPulse()
	out := make([]complex128, len(x))
	half := len(pulse) / 2
	for i := range x {
		var acc complex128
		for m, pv := range pulse {
			if idx := i + m - half; idx >= 0 && idx < len(x) {
				acc += x[idx] * complex(pv, 0)
			}
		}
		out[i] = acc / complex(energy, 0)
	}
	return out
}

// matchedPulse returns the cached half-sine matched-filter taps and their
// energy (built once; the pulse shape is a PHY constant).
var matchedPulse = sync.OnceValues(func() ([]float64, float64) {
	n := 2 * SamplesPerChip
	pulse := make([]float64, n)
	var energy float64
	for k := range pulse {
		pulse[k] = math.Sin(math.Pi * float64(k) / float64(n))
		energy += pulse[k] * pulse[k]
	}
	return pulse, energy
})

// ChipDecisions slices hard chip decisions out of a (equalized,
// phase-corrected) waveform. Chip k has its pulse peak at sample (k+1)·SPS;
// even chips decide on the real part, odd chips on the imaginary part.
// Missing samples beyond the waveform end decide as zero (chip 0).
func ChipDecisions(waveform []complex128, nchips int) []byte {
	chips := make([]byte, nchips)
	for k := 0; k < nchips; k++ {
		idx := (k + 1) * SamplesPerChip
		if idx >= len(waveform) {
			break
		}
		var v float64
		if k%2 == 0 {
			v = real(waveform[idx])
		} else {
			v = imag(waveform[idx])
		}
		if v > 0 {
			chips[k] = 1
		}
	}
	return chips
}

// SoftChips returns the per-chip matched-rail sample values (before the
// sign decision), useful for diagnostics and soft metrics.
func SoftChips(waveform []complex128, nchips int) []float64 {
	soft := make([]float64, nchips)
	for k := 0; k < nchips; k++ {
		idx := (k + 1) * SamplesPerChip
		if idx >= len(waveform) {
			break
		}
		if k%2 == 0 {
			soft[k] = real(waveform[idx])
		} else {
			soft[k] = imag(waveform[idx])
		}
	}
	return soft
}

// ReferenceWaveforms caches commonly reused transmit-side waveform segments.
type ReferenceWaveforms struct {
	mod *Modulator
	// SHR is the modulated synchronization header (preamble + SFD).
	SHR []complex128
	// shrConj is conj(SHR), hoisted once for the sync correlation.
	shrConj []complex128
	// shrEnergy is √(Σ|SHR|²), the reference side of the sync normalizer.
	shrEnergy float64
}

// NewReferenceWaveforms builds the cached references.
func NewReferenceWaveforms() *ReferenceWaveforms {
	m := NewModulator()
	shr := m.ModulateChips(SHRChips())
	conj := make([]complex128, len(shr))
	for i, v := range shr {
		conj[i] = complex(real(v), -imag(v))
	}
	return &ReferenceWaveforms{
		mod:       m,
		SHR:       shr,
		shrConj:   conj,
		shrEnergy: math.Sqrt(dsp.Power(shr) * float64(len(shr))),
	}
}

// Modulator exposes the underlying modulator.
func (r *ReferenceWaveforms) Modulator() *Modulator { return r.mod }

// NormalizedSyncPeak correlates rx against the SHR reference at lag 0..max
// and returns the peak magnitude normalized by the local signal energy, plus
// its lag. This is the receiver's preamble detection statistic: deep fades
// push it below threshold, modelling the paper's preamble detection
// failures.
//
// All lags are produced by a single sliding correlation (FFT-accelerated
// above the dsp size cutoff) and the per-lag window energy is maintained
// incrementally, so the search costs O(refLen + maxLag) bookkeeping on
// top of the one correlation instead of a full reference pass per lag.
func (r *ReferenceWaveforms) NormalizedSyncPeak(rx []complex128, maxLag int) (peak float64, lag int) {
	refLen := len(r.SHR)
	if refLen == 0 || refLen > len(rx) {
		return 0, 0
	}
	if maxLag > len(rx)-refLen {
		maxLag = len(rx) - refLen
	}
	if maxLag < 0 {
		maxLag = 0
	}
	refE := r.shrEnergy
	// Long searches ride the dsp FFT fast path; short lag windows (the
	// receiver's MaxSyncLag regime) correlate inline against the cached
	// conjugate reference without allocating.
	var c []complex128
	if maxLag+1 >= dsp.FFTMinOverlap && refLen >= dsp.FFTMinOverlap {
		c = dsp.CrossCorrelate(rx[:refLen+maxLag], r.SHR)
	}
	corrAt := func(l int) complex128 {
		if c != nil {
			return c[l]
		}
		var s complex128
		seg := rx[l : l+refLen]
		for n, rv := range r.shrConj {
			s += seg[n] * rv
		}
		return s
	}
	windowEnergy := func(l int) float64 {
		var e float64
		for _, v := range rx[l : l+refLen] {
			e += real(v)*real(v) + imag(v)*imag(v)
		}
		return e
	}
	segE := windowEnergy(0)
	best, bestLag := 0.0, 0
	for l := 0; l <= maxLag; l++ {
		if l > 0 {
			if l%4096 == 0 {
				// Resynchronize the rolling sum so subtraction rounding
				// cannot accumulate over long searches.
				segE = windowEnergy(l)
			} else {
				out, in := rx[l-1], rx[l+refLen-1]
				segE += real(in)*real(in) + imag(in)*imag(in) -
					real(out)*real(out) - imag(out)*imag(out)
			}
		}
		if segE <= 0 {
			continue
		}
		if v := cAbs(corrAt(l)) / (refE * math.Sqrt(segE)); v > best {
			best, bestLag = v, l
		}
	}
	return best, bestLag
}

func cAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

package phy

import (
	"math"

	"vvd/internal/dsp"
)

// Modulator converts bit streams into O-QPSK half-sine-shaped complex
// baseband waveforms at SamplesPerChip samples per chip. The zero value is
// not usable; create one with NewModulator.
type Modulator struct {
	pulse []float64 // half-sine over one pulse duration (2 chip periods)
}

// NewModulator returns a modulator for the standard pulse shape.
func NewModulator() *Modulator {
	// The O-QPSK pulse spans two chip periods (each rail runs at half the
	// chip rate); sampled at SamplesPerChip per chip that is 2·SPS samples.
	n := 2 * SamplesPerChip
	p := make([]float64, n)
	for k := range p {
		p[k] = math.Sin(math.Pi * float64(k) / float64(n))
	}
	return &Modulator{pulse: p}
}

// WaveformLen returns the number of complex samples produced for nchips.
func WaveformLen(nchips int) int {
	if nchips <= 0 {
		return 0
	}
	return (nchips + 1) * SamplesPerChip
}

// ModulateChips maps a chip sequence (values 0/1) onto the O-QPSK waveform:
// even-indexed chips ride the in-phase rail, odd-indexed chips the
// quadrature rail delayed by one chip period (the "offset" in O-QPSK), each
// shaped by a half-sine spanning two chip periods.
func (m *Modulator) ModulateChips(chips []byte) []complex128 {
	out := make([]complex128, WaveformLen(len(chips)))
	for k, c := range chips {
		amp := -1.0
		if c != 0 {
			amp = 1.0
		}
		start := k * SamplesPerChip
		if k%2 == 0 {
			for i, pv := range m.pulse {
				out[start+i] += complex(amp*pv, 0)
			}
		} else {
			for i, pv := range m.pulse {
				out[start+i] += complex(0, amp*pv)
			}
		}
	}
	return out
}

// ModulateBits spreads bits to chips and modulates them.
func (m *Modulator) ModulateBits(bits []byte) []complex128 {
	return m.ModulateChips(SpreadBits(bits))
}

// ModulatePPDU returns the waveform for an assembled PPDU.
func (m *Modulator) ModulatePPDU(p *PPDU) []complex128 {
	return m.ModulateBits(p.Bits)
}

// MatchedFilter correlates the waveform with the half-sine chip pulse,
// normalized so pulse peaks keep unit amplitude. Sampling the output at the
// pulse peaks realizes the matched-filter receiver: out-of-band noise (and
// any noise enhanced by zero-forcing equalization outside the signal band)
// is suppressed ahead of the chip decisions, while same-rail pulses remain
// orthogonal at the decision instants.
func MatchedFilter(x []complex128) []complex128 {
	n := 2 * SamplesPerChip
	pulse := make([]float64, n)
	var energy float64
	for k := range pulse {
		pulse[k] = math.Sin(math.Pi * float64(k) / float64(n))
		energy += pulse[k] * pulse[k]
	}
	out := make([]complex128, len(x))
	half := n / 2
	for i := range x {
		var acc complex128
		for m, pv := range pulse {
			if idx := i + m - half; idx >= 0 && idx < len(x) {
				acc += x[idx] * complex(pv, 0)
			}
		}
		out[i] = acc / complex(energy, 0)
	}
	return out
}

// ChipDecisions slices hard chip decisions out of a (equalized,
// phase-corrected) waveform. Chip k has its pulse peak at sample (k+1)·SPS;
// even chips decide on the real part, odd chips on the imaginary part.
// Missing samples beyond the waveform end decide as zero (chip 0).
func ChipDecisions(waveform []complex128, nchips int) []byte {
	chips := make([]byte, nchips)
	for k := 0; k < nchips; k++ {
		idx := (k + 1) * SamplesPerChip
		if idx >= len(waveform) {
			break
		}
		var v float64
		if k%2 == 0 {
			v = real(waveform[idx])
		} else {
			v = imag(waveform[idx])
		}
		if v > 0 {
			chips[k] = 1
		}
	}
	return chips
}

// SoftChips returns the per-chip matched-rail sample values (before the
// sign decision), useful for diagnostics and soft metrics.
func SoftChips(waveform []complex128, nchips int) []float64 {
	soft := make([]float64, nchips)
	for k := 0; k < nchips; k++ {
		idx := (k + 1) * SamplesPerChip
		if idx >= len(waveform) {
			break
		}
		if k%2 == 0 {
			soft[k] = real(waveform[idx])
		} else {
			soft[k] = imag(waveform[idx])
		}
	}
	return soft
}

// ReferenceWaveforms caches commonly reused transmit-side waveform segments.
type ReferenceWaveforms struct {
	mod *Modulator
	// SHR is the modulated synchronization header (preamble + SFD).
	SHR []complex128
}

// NewReferenceWaveforms builds the cached references.
func NewReferenceWaveforms() *ReferenceWaveforms {
	m := NewModulator()
	return &ReferenceWaveforms{mod: m, SHR: m.ModulateChips(SHRChips())}
}

// Modulator exposes the underlying modulator.
func (r *ReferenceWaveforms) Modulator() *Modulator { return r.mod }

// NormalizedSyncPeak correlates rx against the SHR reference at lag 0..max
// and returns the peak magnitude normalized by the local signal energy, plus
// its lag. This is the receiver's preamble detection statistic: deep fades
// push it below threshold, modelling the paper's preamble detection
// failures.
func (r *ReferenceWaveforms) NormalizedSyncPeak(rx []complex128, maxLag int) (peak float64, lag int) {
	refLen := len(r.SHR)
	if refLen == 0 || refLen > len(rx) {
		return 0, 0
	}
	if maxLag > len(rx)-refLen {
		maxLag = len(rx) - refLen
	}
	refE := math.Sqrt(dsp.Power(r.SHR) * float64(refLen))
	best, bestLag := 0.0, 0
	for l := 0; l <= maxLag; l++ {
		seg := rx[l : l+refLen]
		c := dsp.CrossCorrelate(seg, r.SHR)
		segE := math.Sqrt(dsp.Power(seg) * float64(refLen))
		if segE == 0 {
			continue
		}
		if v := cAbs(c[0]) / (refE * segE); v > best {
			best, bestLag = v, l
		}
	}
	return best, bestLag
}

func cAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

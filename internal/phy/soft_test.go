package phy

import (
	"math/rand/v2"
	"testing"
)

func TestDespreadSoftCleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	data := make([]byte, 8)
	for i := range data {
		data[i] = byte(rng.IntN(256))
	}
	in := BytesToBits(data)
	chips := SpreadBits(in)
	soft := make([]float64, len(chips))
	for i, c := range chips {
		if c != 0 {
			soft[i] = 1
		} else {
			soft[i] = -1
		}
	}
	out := DespreadSoft(soft)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}

func TestDespreadSoftBeatsHardAtLowSNR(t *testing.T) {
	// Add Gaussian noise to soft chips; soft despreading must produce at
	// least as many correct symbols as hard despreading, and strictly more
	// in aggregate near threshold.
	rng := rand.New(rand.NewPCG(3, 4))
	var softWrong, hardWrong int
	for trial := 0; trial < 120; trial++ {
		sym := rng.IntN(16)
		in := []byte{byte(sym & 1), byte(sym >> 1 & 1), byte(sym >> 2 & 1), byte(sym >> 3 & 1)}
		chips := SpreadBits(in)
		soft := make([]float64, len(chips))
		hard := make([]byte, len(chips))
		for i, c := range chips {
			v := -1.0
			if c != 0 {
				v = 1.0
			}
			v += rng.NormFloat64() * 1.15 // ≈ −1.2 dB chip SNR
			soft[i] = v
			if v > 0 {
				hard[i] = 1
			}
		}
		sOut := DespreadSoft(soft)
		hOut := DespreadChips(hard)
		for i := range in {
			if sOut[i] != in[i] {
				softWrong++
				break
			}
		}
		for i := range in {
			if hOut[i] != in[i] {
				hardWrong++
				break
			}
		}
	}
	if softWrong > hardWrong {
		t.Fatalf("soft despreading (%d wrong) worse than hard (%d wrong)", softWrong, hardWrong)
	}
	if hardWrong == 0 {
		t.Fatal("noise level too benign to exercise the comparison")
	}
}

func TestDespreadSoftIgnoresPartialBlock(t *testing.T) {
	soft := make([]float64, ChipsPerSymbol+5)
	if got := DespreadSoft(soft); len(got) != BitsPerSymbol {
		t.Fatalf("bits = %d want %d", len(got), BitsPerSymbol)
	}
}

func TestDespreadSoftConsistentWithHardOnStrongChips(t *testing.T) {
	// When all soft values are saturated ±1, soft and hard must agree.
	rng := rand.New(rand.NewPCG(5, 6))
	chips := make([]byte, 4*ChipsPerSymbol)
	soft := make([]float64, len(chips))
	for i := range chips {
		chips[i] = byte(rng.IntN(2))
		if chips[i] != 0 {
			soft[i] = 1
		} else {
			soft[i] = -1
		}
	}
	a := DespreadChips(chips)
	b := DespreadSoft(soft)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("soft and hard despreading disagree on saturated chips")
		}
	}
}

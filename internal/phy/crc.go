package phy

// CRC16 computes the IEEE 802.15.4 FCS: CRC-16 with generator polynomial
// x¹⁶+x¹²+x⁵+1 (0x1021), bit-reflected processing and zero initial value
// (equivalently CRC-16/KERMIT). The FCS is appended little-endian.
func CRC16(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc ^= uint16(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0x8408 // 0x1021 reflected
			} else {
				crc >>= 1
			}
		}
	}
	return crc
}

// AppendFCS returns data with its 2-byte little-endian FCS appended.
func AppendFCS(data []byte) []byte {
	crc := CRC16(data)
	out := make([]byte, 0, len(data)+2)
	out = append(out, data...)
	return append(out, byte(crc), byte(crc>>8))
}

// CheckFCS reports whether the final two bytes of frame are a valid FCS for
// the preceding bytes. Frames too short to carry an FCS fail.
func CheckFCS(frame []byte) bool {
	if len(frame) < 2 {
		return false
	}
	body, fcs := frame[:len(frame)-2], frame[len(frame)-2:]
	crc := CRC16(body)
	return fcs[0] == byte(crc) && fcs[1] == byte(crc>>8)
}

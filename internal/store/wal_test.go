package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func openKVT(t *testing.T, dir string, opts KVOptions) *KV {
	t.Helper()
	kv, err := OpenKV(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return kv
}

func mustGet(t *testing.T, s Store, key, want string) {
	t.Helper()
	got, err := GetBytes(s, key)
	if err != nil {
		t.Fatalf("GetBytes(%s): %v", key, err)
	}
	if string(got) != want {
		t.Fatalf("GetBytes(%s) = %q, want %q", key, got, want)
	}
}

func mustAbsent(t *testing.T, s Store, key string) {
	t.Helper()
	if _, err := s.Open(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Open(%s) = %v, want ErrNotFound", key, err)
	}
}

func TestKVReopenReplays(t *testing.T) {
	dir := t.TempDir()
	kv := openKVT(t, dir, KVOptions{})
	if err := kv.Apply([]Op{
		{Key: "a", Val: []byte("1")},
		{Key: "b", Val: []byte("2")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := kv.PutValue("a", []byte("1-updated")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	kv2 := openKVT(t, dir, KVOptions{})
	defer kv2.Close()
	rec := kv2.Recovery()
	if rec.TornTail != nil || rec.TruncatedBytes != 0 {
		t.Fatalf("clean log reported torn tail: %+v", rec)
	}
	if rec.Records != 3 {
		t.Fatalf("replayed %d records, want 3", rec.Records)
	}
	mustGet(t, kv2, "a", "1-updated")
	mustAbsent(t, kv2, "b") // tombstone survives reopen
}

// kvRecord frames a payload as a WAL record (the real CRC unless a
// corruptor rewrites it).
func kvRecord(payload []byte) []byte {
	rec := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(payload, kvCastagnoli))
	return append(rec, payload...)
}

// kvPutPayload encodes a single-put batch payload.
func kvPutPayload(key, val string) []byte {
	p := binary.LittleEndian.AppendUint32(nil, 1)
	p = append(p, kvOpPut)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(key)))
	p = append(p, key...)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(val)))
	return append(p, val...)
}

func appendToFile(t *testing.T, path string, data []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestKVTornTail is the crash-recovery table: every torn-tail footprint a
// killed writer can leave — truncated length prefix, truncated payload,
// corrupted CRC, torn final record after valid batches — must reopen with
// the committed batches intact, the tail truncated away, and the store
// writable again.
func TestKVTornTail(t *testing.T) {
	cases := []struct {
		name       string
		tear       func(t *testing.T, seg string, committedEnd int64)
		reason     string
		tornKey    string // key whose batch was torn (must be absent), "" if none
		extraBytes int64  // torn bytes appended beyond committedEnd (0 = derive from file)
	}{
		{
			name: "truncated_length_prefix",
			tear: func(t *testing.T, seg string, _ int64) {
				appendToFile(t, seg, []byte{0x21, 0x43, 0x65})
			},
			reason:     "truncated record length prefix",
			extraBytes: 3,
		},
		{
			name: "truncated_payload",
			tear: func(t *testing.T, seg string, _ int64) {
				// Header claims 64 payload bytes; only 10 follow.
				hdr := binary.LittleEndian.AppendUint32(nil, 64)
				hdr = binary.LittleEndian.AppendUint32(hdr, 0xdeadbeef)
				appendToFile(t, seg, append(hdr, "ten bytes."...))
			},
			reason:     "payload bytes",
			extraBytes: 18,
		},
		{
			name: "corrupted_crc",
			tear: func(t *testing.T, seg string, _ int64) {
				// A complete, well-formed record whose stored CRC is wrong —
				// a tail whose payload bytes never all reached the platter.
				rec := kvRecord(kvPutPayload("torn", "lost-value"))
				rec[4] ^= 0xff
				appendToFile(t, seg, rec)
			},
			reason:  "checksum mismatch",
			tornKey: "torn",
		},
		{
			name: "torn_final_record",
			tear: func(t *testing.T, seg string, _ int64) {
				// Valid header and CRC, but the payload is cut off mid-way.
				payload := kvPutPayload("torn", "half-written-value")
				rec := kvRecord(payload)
				appendToFile(t, seg, rec[:len(rec)-len(payload)/2])
			},
			reason:  "payload bytes",
			tornKey: "torn",
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			kv := openKVT(t, dir, KVOptions{})
			if err := kv.PutValue("k1", []byte("value-one")); err != nil {
				t.Fatal(err)
			}
			if err := kv.PutValue("k2", []byte("value-two")); err != nil {
				t.Fatal(err)
			}
			if err := kv.Close(); err != nil {
				t.Fatal(err)
			}
			seg := filepath.Join(dir, "wal-00000001.seg")
			info, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			committedEnd := info.Size()
			c.tear(t, seg, committedEnd)
			tornInfo, _ := os.Stat(seg)
			tornBytes := tornInfo.Size() - committedEnd

			kv2 := openKVT(t, dir, KVOptions{})
			rec := kv2.Recovery()
			if rec.TornTail == nil {
				t.Fatal("recovery reported a clean log over a torn tail")
			}
			if !strings.Contains(rec.TornTail.Error(), c.reason) {
				t.Fatalf("TornTail = %v, want reason %q", rec.TornTail, c.reason)
			}
			if rec.TruncatedBytes != tornBytes {
				t.Fatalf("TruncatedBytes = %d, want %d", rec.TruncatedBytes, tornBytes)
			}
			if rec.Records != 2 {
				t.Fatalf("replayed %d committed batches, want 2", rec.Records)
			}
			mustGet(t, kv2, "k1", "value-one")
			mustGet(t, kv2, "k2", "value-two")
			if c.tornKey != "" {
				mustAbsent(t, kv2, c.tornKey)
			}
			if info, err := os.Stat(seg); err != nil || info.Size() != committedEnd {
				t.Fatalf("segment is %d bytes after recovery, want truncation back to %d", info.Size(), committedEnd)
			}

			// The recovered store must accept and persist new writes.
			if err := kv2.PutValue("k3", []byte("after-recovery")); err != nil {
				t.Fatal(err)
			}
			if err := kv2.Close(); err != nil {
				t.Fatal(err)
			}
			kv3 := openKVT(t, dir, KVOptions{})
			defer kv3.Close()
			if rec := kv3.Recovery(); rec.TornTail != nil || rec.Records != 3 {
				t.Fatalf("second reopen: %+v, want clean with 3 records", rec)
			}
			mustGet(t, kv3, "k1", "value-one")
			mustGet(t, kv3, "k3", "after-recovery")
		})
	}
}

// TestKVMidLogCorruptionIsFatal pins the other half of the recovery
// policy: the torn-tail shapes are forgiven only at the end of the log.
// The same damage mid-log is corruption and must refuse to open.
func TestKVMidLogCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	kv := openKVT(t, dir, KVOptions{SegmentBytes: 1}) // rotate after every record
	if err := kv.PutValue("k1", []byte("value-one")); err != nil {
		t.Fatal(err)
	}
	if err := kv.PutValue("k2", []byte("value-two")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the record in segment 1 — not the last segment.
	seg := filepath.Join(dir, "wal-00000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenKV(dir, KVOptions{}); err == nil || !strings.Contains(err.Error(), "mid-log") {
		t.Fatalf("OpenKV over mid-log corruption = %v, want refusal", err)
	}

	// A CRC-valid but malformed record is a writer bug, not a crash
	// artifact: fatal even as the last record.
	dir2 := t.TempDir()
	kv2 := openKVT(t, dir2, KVOptions{})
	if err := kv2.PutValue("k1", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := kv2.Close(); err != nil {
		t.Fatal(err)
	}
	bogus := binary.LittleEndian.AppendUint32(nil, 9999) // op count with nothing behind it
	appendToFile(t, filepath.Join(dir2, "wal-00000001.seg"), kvRecord(bogus))
	if _, err := OpenKV(dir2, KVOptions{}); err == nil || !strings.Contains(err.Error(), "invalid record") {
		t.Fatalf("OpenKV over a forged record = %v, want refusal", err)
	}
}

func TestKVTruncatedSegmentHeader(t *testing.T) {
	dir := t.TempDir()
	kv := openKVT(t, dir, KVOptions{SegmentBytes: 1})
	if err := kv.PutValue("k1", []byte("value-one")); err != nil {
		t.Fatal(err) // rotation creates segment 2 right after this commit
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash during creation of segment 2: only part of its header landed.
	seg2 := filepath.Join(dir, "wal-00000002.seg")
	if err := os.Truncate(seg2, 3); err != nil {
		t.Fatal(err)
	}
	kv2 := openKVT(t, dir, KVOptions{})
	defer kv2.Close()
	rec := kv2.Recovery()
	if rec.TornTail == nil || !strings.Contains(rec.TornTail.Error(), "truncated segment header") {
		t.Fatalf("TornTail = %v, want truncated segment header", rec.TornTail)
	}
	mustGet(t, kv2, "k1", "value-one")
	if err := kv2.PutValue("k2", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	mustGet(t, kv2, "k2", "v2")
}

func TestKVAlienFileRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-junk.seg"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenKV(dir, KVOptions{}); err == nil || !strings.Contains(err.Error(), "alien file") {
		t.Fatalf("OpenKV = %v, want alien-file refusal", err)
	}
}

func TestKVSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	kv := openKVT(t, dir, KVOptions{SegmentBytes: 1}) // every commit rotates
	const n = 5
	for i := 0; i < n; i++ {
		if err := kv.PutValue(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Values written before rotations stay readable through the sealed
	// segments' retained handles.
	for i := 0; i < n; i++ {
		mustGet(t, kv, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= n+1; id++ {
		p := filepath.Join(dir, fmt.Sprintf("wal-%08d.seg", id))
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("expected segment %d: %v", id, err)
		}
	}
	kv2 := openKVT(t, dir, KVOptions{})
	defer kv2.Close()
	rec := kv2.Recovery()
	if rec.Segments != n+1 || rec.Records != n || rec.TornTail != nil {
		t.Fatalf("recovery over rotated log: %+v", rec)
	}
	for i := 0; i < n; i++ {
		mustGet(t, kv2, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
}

// killWriter is the failpoint the crash-recovery harness injects: it
// forwards writes until its byte budget runs out, then persists only a
// prefix of the fatal write and fails — the exact footprint of a process
// killed mid-append.
type killWriter struct {
	mu     sync.Mutex
	w      io.Writer
	budget int
	killed bool
}

var errKilled = errors.New("simulated crash: writer killed mid-record")

func (k *killWriter) Write(p []byte) (int, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.killed {
		return 0, errKilled
	}
	if k.budget >= len(p) {
		k.budget -= len(p)
		return k.w.Write(p)
	}
	n := k.budget
	k.killed = true
	if n > 0 {
		if _, err := k.w.Write(p[:n]); err != nil {
			return 0, err
		}
	}
	return n, errKilled
}

// TestKVKillMidWrite kills the writer partway through a record and pins
// crash semantics end to end: every batch whose Apply returned success is
// replayed intact after reopen, the killed batch is invisible, and the
// recovered store writes normally again.
func TestKVKillMidWrite(t *testing.T) {
	dir := t.TempDir()
	var kw *killWriter
	opts := KVOptions{wrapWriter: func(f io.Writer) io.Writer {
		kw = &killWriter{w: f, budget: 150} // dies inside the 3rd or 4th record
		return kw
	}}
	kv := openKVT(t, dir, opts)
	var committed []string
	var killedAt = -1
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("key-%d", i)
		err := kv.PutValue(key, bytes.Repeat([]byte{byte('a' + i)}, 20))
		if err != nil {
			if !errors.Is(err, errKilled) {
				t.Fatalf("put %d failed with %v, want the injected kill", i, err)
			}
			killedAt = i
			break
		}
		committed = append(committed, key)
	}
	if killedAt < 0 {
		t.Fatal("budget never exhausted; failpoint misconfigured")
	}
	if !kw.killed {
		t.Fatal("writer reported an error without the failpoint firing")
	}
	// The writer is poisoned: even an in-budget retry must refuse rather
	// than append after an indeterminate tail.
	if err := kv.PutValue("after-kill", []byte("x")); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("write after kill = %v, want poisoned-writer refusal", err)
	}
	// Abandon the handle as a crashed process would (no Close bookkeeping).
	_ = kv.Close()

	kv2 := openKVT(t, dir, KVOptions{})
	rec := kv2.Recovery()
	if rec.Records != len(committed) {
		t.Fatalf("replayed %d batches, want the %d that committed", rec.Records, len(committed))
	}
	if rec.TornTail == nil {
		t.Fatal("a mid-record kill must surface as a torn tail")
	}
	for i, key := range committed {
		mustGet(t, kv2, key, strings.Repeat(string(rune('a'+i)), 20))
	}
	mustAbsent(t, kv2, fmt.Sprintf("key-%d", killedAt))
	if err := kv2.PutValue("post-recovery", []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if err := kv2.Close(); err != nil {
		t.Fatal(err)
	}
	kv3 := openKVT(t, dir, KVOptions{})
	defer kv3.Close()
	if rec := kv3.Recovery(); rec.TornTail != nil {
		t.Fatalf("third open found damage after a clean recovery cycle: %v", rec.TornTail)
	}
	mustGet(t, kv3, "post-recovery", "alive")
}

// TestKVKillUnderConcurrency runs many writers into the failpoint (the
// -race half of the harness): whatever interleaving loses the race, the
// reopened store must hold exactly the successfully-committed writes.
func TestKVKillUnderConcurrency(t *testing.T) {
	dir := t.TempDir()
	opts := KVOptions{wrapWriter: func(f io.Writer) io.Writer {
		return &killWriter{w: f, budget: 700}
	}}
	kv := openKVT(t, dir, opts)
	var mu sync.Mutex
	committed := map[string]string{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("g%d/k%d", g, i)
				val := fmt.Sprintf("value-%d-%d", g, i)
				if err := kv.PutValue(key, []byte(val)); err == nil {
					mu.Lock()
					committed[key] = val
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	_ = kv.Close()

	kv2 := openKVT(t, dir, KVOptions{})
	defer kv2.Close()
	rec := kv2.Recovery()
	if rec.Records != len(committed) {
		t.Fatalf("replayed %d batches, want %d committed", rec.Records, len(committed))
	}
	if len(committed) == 0 {
		t.Fatal("failpoint killed the very first write; nothing exercised")
	}
	for key, val := range committed {
		mustGet(t, kv2, key, val)
	}
	keys, err := kv2.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(committed) {
		t.Fatalf("store holds %d keys, want exactly the %d committed", len(keys), len(committed))
	}
}

// TestKVNoSyncRecovers pins that NoSync only weakens durability, not
// integrity: whatever reached the file replays cleanly.
func TestKVNoSyncRecovers(t *testing.T) {
	dir := t.TempDir()
	kv := openKVT(t, dir, KVOptions{NoSync: true})
	for i := 0; i < 10; i++ {
		if err := kv.PutValue(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	kv2 := openKVT(t, dir, KVOptions{})
	defer kv2.Close()
	if rec := kv2.Recovery(); rec.Records != 10 || rec.TornTail != nil {
		t.Fatalf("recovery: %+v", rec)
	}
}

// ---- benchmarks: the durability price list EXPERIMENTS.md pins ----

func benchPut(b *testing.B, s Store, valSize int) {
	val := bytes.Repeat([]byte("v"), valSize)
	b.SetBytes(int64(valSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := PutBytes(s, fmt.Sprintf("bench/k%03d", i%128), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorePut(b *testing.B) {
	const valSize = 4096
	b.Run("mem", func(b *testing.B) {
		s := NewMemStore()
		defer s.Close()
		benchPut(b, s, valSize)
	})
	b.Run("file", func(b *testing.B) {
		s, err := NewFileStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		benchPut(b, s, valSize)
	})
	b.Run("kv-nosync", func(b *testing.B) {
		s, err := OpenKV(b.TempDir(), KVOptions{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		benchPut(b, s, valSize)
	})
	b.Run("kv-sync", func(b *testing.B) {
		s, err := OpenKV(b.TempDir(), KVOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		benchPut(b, s, valSize)
	})
}

func BenchmarkKVReplay(b *testing.B) {
	dir := b.TempDir()
	kv, err := OpenKV(dir, KVOptions{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	val := bytes.Repeat([]byte("v"), 4096)
	const keys = 1000
	for i := 0; i < keys; i++ {
		if err := kv.PutValue(fmt.Sprintf("k%04d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	if err := kv.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv, err := OpenKV(dir, KVOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if kv.Recovery().Records != keys {
			b.Fatal("short replay")
		}
		kv.Close()
	}
}

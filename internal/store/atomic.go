package store

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteAtomic writes a file so the destination is never torn: the bytes
// go to a temporary file in the same directory, are flushed and fsynced,
// and only then renamed over path. A crash, full disk or write error at
// any point leaves the previous contents of path untouched — the failure
// mode of a bare os.Create (truncate first, then hope every write lands)
// is structurally impossible.
//
// The rename is atomic on POSIX filesystems; the directory is fsynced
// afterwards so the rename itself survives a crash.
func WriteAtomic(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: creating temp file for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	committed := false
	defer func() {
		if !committed {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<16)
	if err := write(bw); err != nil {
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", path, err)
	}
	// CreateTemp opens 0600; published artifacts get the usual file mode.
	if err := tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("store: chmod %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("store: committing %s: %w", path, err)
	}
	committed = true
	syncDir(dir)
	return nil
}

// WriteFileAtomic is WriteAtomic over a fixed byte slice — the drop-in
// replacement for os.WriteFile on artifact paths.
func WriteFileAtomic(path string, data []byte) error {
	return WriteAtomic(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir fsyncs a directory so a just-committed rename (or segment
// creation) survives a crash. Best effort: some filesystems and platforms
// reject fsync on directories, and by this point the data itself is
// already durable in the file.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

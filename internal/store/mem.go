package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// ErrClosed is returned by operations on a closed backend.
var ErrClosed = errors.New("store: backend is closed")

// MemStore is the in-memory backend: a mutex-guarded map. It gives tests
// and ephemeral pipelines the Store semantics (atomic Put — the callback
// writes to a buffer, the map sees complete values only) with zero I/O,
// and is the baseline the EXPERIMENTS.md durability-overhead table
// measures the persistent backends against.
type MemStore struct {
	mu     sync.RWMutex
	blobs  map[string][]byte
	closed bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[string][]byte)}
}

// Put implements Store.
func (s *MemStore) Put(key string, write func(w io.Writer) error) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.blobs[key] = buf.Bytes()
	return nil
}

// Open implements Store. The reader sees the value as of the call; later
// Puts to the same key do not affect it.
func (s *MemStore) Open(key string) (io.ReadCloser, error) {
	if err := ValidateKey(key); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	b, ok := s.blobs[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return io.NopCloser(bytes.NewReader(b)), nil
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.blobs[key]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	delete(s.blobs, key)
	return nil
}

// List implements Store.
func (s *MemStore) List(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	var keys []string
	for k := range s.blobs {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.blobs = nil
	return nil
}

package store

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FileStore is the directory backend: each key is one file under the
// store root, written atomically (WriteAtomic), so the on-disk layout is
// exactly what the loose-file workflow produced — a campaign Put under
// "campaigns/run1" is byte-identical to `vvd-dataset -out root/campaigns/run1`
// — but a crash can no longer leave a torn artifact at a key.
type FileStore struct {
	root string
}

// NewFileStore opens (creating if needed) a file-backed store rooted at dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating root %s: %w", dir, err)
	}
	return &FileStore{root: dir}, nil
}

// Root returns the backing directory.
func (s *FileStore) Root() string { return s.root }

func (s *FileStore) path(key string) (string, error) {
	if err := ValidateKey(key); err != nil {
		return "", err
	}
	return filepath.Join(s.root, filepath.FromSlash(key)), nil
}

// Put implements Store: parent directories are created on demand and the
// file is committed with the atomic temp → fsync → rename sequence.
func (s *FileStore) Put(key string, write func(w io.Writer) error) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("store: creating parent of %s: %w", key, err)
	}
	return WriteAtomic(p, write)
}

// Open implements Store.
func (s *FileStore) Open(key string) (io.ReadCloser, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return f, err
}

// Delete implements Store.
func (s *FileStore) Delete(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	err = os.Remove(p)
	if os.IsNotExist(err) {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return err
}

// List implements Store. In-flight temp files (".*.tmp-*") are invisible:
// a concurrent or crashed Put never surfaces as a key.
func (s *FileStore) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.WalkDir(s.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-") {
			return nil
		}
		rel, err := filepath.Rel(s.root, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}

// Close implements Store (no resources are held between calls).
func (s *FileStore) Close() error { return nil }

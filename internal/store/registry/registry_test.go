package registry_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vvd/internal/core"
	"vvd/internal/dataset"
	"vvd/internal/nn"
	"vvd/internal/store"
	"vvd/internal/store/registry"
)

// tinyModel builds a deterministic small VVD; different seeds give
// different weights and therefore different content hashes.
func tinyModel(t *testing.T, seed uint64) *core.VVD {
	t.Helper()
	arch := core.Arch{Conv1: 2, Conv2: 2, Conv3: 4, Conv4: 4, Dense: 16, Pool: nn.AvgPool}
	net, err := core.BuildNetwork(arch, rand.New(rand.NewPCG(seed, seed^0xbeef)))
	if err != nil {
		t.Fatal(err)
	}
	mean := make([]complex128, core.OutputTaps)
	for i := range mean {
		mean[i] = complex(float64(i)*0.25, -0.5)
	}
	return &core.VVD{Net: net, Norm: 1.5, Mean: mean, Lag: dataset.LagCurrent}
}

func TestPutLoadRoundTripBitIdentical(t *testing.T) {
	reg := registry.New(store.NewMemStore())
	v := tinyModel(t, 1)
	want, wantHash, err := registry.Encode(v)
	if err != nil {
		t.Fatal(err)
	}

	m, err := reg.Put(v, registry.Manifest{
		Name: "vvd-current", Scenario: "crowded-room-4", Combo: 3,
		Variant: "current", Epochs: 24, Batch: 16, LR: 1.2e-3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Hash != wantHash {
		t.Fatalf("Put assigned hash %s, want the canonical encoding's %s", m.Hash, wantHash)
	}
	sum := sha256.Sum256(want)
	if m.Hash != hex.EncodeToString(sum[:]) {
		t.Fatal("hash is not the SHA-256 of the canonical encoding")
	}

	for _, ref := range []string{
		"vvd-current",
		"vvd-current@latest",
		"vvd-current@" + m.Hash,
		"vvd-current@" + m.Hash[:12],
		"@" + m.Hash[:12],
	} {
		loaded, lm, err := reg.Load(ref)
		if err != nil {
			t.Fatalf("Load(%s): %v", ref, err)
		}
		got, gotHash, err := registry.Encode(loaded)
		if err != nil {
			t.Fatal(err)
		}
		if gotHash != wantHash || !bytes.Equal(got, want) {
			t.Fatalf("Load(%s) is not bit-identical to the registered artifact", ref)
		}
		if lm.Scenario != "crowded-room-4" || lm.Combo != 3 || lm.Seed != 7 {
			t.Fatalf("Load(%s) manifest lost provenance: %+v", ref, lm)
		}
	}
}

func TestVersionsAndLatest(t *testing.T) {
	reg := registry.New(store.NewMemStore())
	v1, v2 := tinyModel(t, 1), tinyModel(t, 2)
	m1, err := reg.Put(v1, registry.Manifest{Name: "vvd-current"})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := reg.Put(v2, registry.Manifest{Name: "vvd-current", Parent: m1.Hash})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Hash == m2.Hash {
		t.Fatal("different weights produced the same content hash")
	}

	hist, err := reg.Versions("vvd-current")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 || hist[0] != m1.Hash || hist[1] != m2.Hash {
		t.Fatalf("Versions = %v, want [%s %s]", hist, m1.Hash, m2.Hash)
	}

	// @latest is the second version; the first stays addressable by hash.
	_, lm, err := reg.Load("vvd-current@latest")
	if err != nil || lm.Hash != m2.Hash {
		t.Fatalf("latest resolved to %s (%v), want %s", lm.Hash, err, m2.Hash)
	}
	if lm.Parent != m1.Hash {
		t.Fatalf("latest manifest parent = %s, want %s", lm.Parent, m1.Hash)
	}
	_, old, err := reg.Load("vvd-current@" + m1.Hash[:16])
	if err != nil || old.Hash != m1.Hash {
		t.Fatalf("old version by prefix: %s, %v", old.Hash, err)
	}

	all, err := reg.List()
	if err != nil || len(all) != 2 {
		t.Fatalf("List = %d manifests, %v", len(all), err)
	}
}

func TestContentAddressingDedupes(t *testing.T) {
	ms := store.NewMemStore()
	reg := registry.New(ms)
	v := tinyModel(t, 3)
	m1, err := reg.Put(v, registry.Manifest{Name: "name-a"})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := reg.Put(v, registry.Manifest{Name: "name-b"})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Hash != m2.Hash {
		t.Fatal("identical weights under two names hashed differently")
	}
	blobs, err := ms.List("models/")
	if err != nil || len(blobs) != 1 {
		t.Fatalf("stored %d blobs for identical weights, want 1 (%v)", len(blobs), err)
	}
}

func TestResolveErrors(t *testing.T) {
	reg := registry.New(store.NewMemStore())
	m, err := reg.Put(tinyModel(t, 4), registry.Manifest{Name: "real"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ ref, want string }{
		{"ghost", "no model named"},
		{"ghost@latest", "no model named"},
		{"@" + m.Hash[:4], "too short"},
		{"@abcd1234", "no model with hash prefix"},
		{"@" + strings.ToUpper(m.Hash[:12]), "not lowercase hex"},
		{"@" + m.Hash + "00", "longer than a SHA-256"},
		{"wrong-name@" + m.Hash[:12], `is named "real"`},
		{"bad/name@latest", "must not contain"},
	}
	for _, c := range cases {
		if _, err := reg.Resolve(c.ref); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Resolve(%q) = %v, want %q", c.ref, err, c.want)
		}
	}

	// Odd-length prefixes are legitimate.
	if _, err := reg.Resolve("@" + m.Hash[:9]); err != nil {
		t.Errorf("Resolve with 9-char prefix: %v", err)
	}
}

// TestLoadDetectsCorruption pins the content-verification guarantee: a
// flipped bit anywhere in the stored artifact fails the load instead of
// serving a model that silently differs from its address.
func TestLoadDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	reg, err := registry.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := reg.Put(tinyModel(t, 5), registry.Manifest{Name: "vvd-current"})
	if err != nil {
		t.Fatal(err)
	}
	blob := filepath.Join(dir, "models", m.Hash)
	data, err := os.ReadFile(blob)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(blob, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Load("vvd-current@latest"); err == nil || !strings.Contains(err.Error(), "content verification") {
		t.Fatalf("Load over a corrupt blob = %v, want content-verification failure", err)
	}
}

func TestPutNameValidation(t *testing.T) {
	reg := registry.New(store.NewMemStore())
	v := tinyModel(t, 6)
	for _, bad := range []string{"", "a@b", "a/b", "has\x00nul"} {
		if _, err := reg.Put(v, registry.Manifest{Name: bad}); err == nil {
			t.Errorf("Put accepted artifact name %q", bad)
		}
	}
}

// TestCampaignConfigHash pins what the provenance hash covers: the
// generated world, not execution knobs.
func TestCampaignConfigHash(t *testing.T) {
	cfg := dataset.DefaultConfig()
	h1, err := registry.CampaignConfigHash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := cfg
	same.Workers = 7 // execution knob: excluded from the serialized config
	h2, err := registry.CampaignConfigHash(same)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("Workers changed the campaign config hash")
	}
	diff := cfg
	diff.Seed++
	h3, err := registry.CampaignConfigHash(diff)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("a different seed hashed to the same campaign config")
	}
}

func TestIsRef(t *testing.T) {
	for s, want := range map[string]bool{
		"vvd.model": false, "./models/x": false,
		"vvd-current@latest": true, "@ab12cd34": true, "name@ab12cd34": true,
	} {
		if registry.IsRef(s) != want {
			t.Errorf("IsRef(%q) = %v, want %v", s, !want, want)
		}
	}
}

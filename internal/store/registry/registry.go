// Package registry is the content-addressed model registry: trained
// networks become versioned artifacts keyed by the SHA-256 of their
// canonical encoding, with a manifest recording provenance — which
// campaign (by config hash) and scenario the model was trained on, with
// what parameters, and which model it was fine-tuned from.
//
// Layout on any store.Store backend:
//
//	models/<sha256>     canonical model bytes (core.VVD.Save)
//	manifests/<sha256>  provenance manifest, JSON
//	tags/<name>         per-name version pointer: latest hash + history
//
// Consumers address models as "<name>@latest", "<name>@<hash-prefix>" or
// "@<hash-prefix>" instead of loose file paths; Load re-hashes the blob
// and refuses to return bytes that do not match their address, so a
// served model is bit-identical to the registered artifact by
// construction. Storage is content-addressed: registering the same
// weights twice under two names stores one blob.
package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"vvd/internal/core"
	"vvd/internal/dataset"
	"vvd/internal/store"
)

// Manifest records a model artifact's provenance. Hash is assigned by
// Put; everything else is supplied by the trainer.
type Manifest struct {
	Name string `json:"name"`           // artifact name ("vvd-current")
	Hash string `json:"hash,omitempty"` // SHA-256 of the canonical encoding (set by Put)

	// Provenance.
	CampaignHash string  `json:"campaign_hash,omitempty"` // CampaignConfigHash of the training campaign
	Scenario     string  `json:"scenario,omitempty"`      // scenario preset the campaign was generated from
	Combo        int     `json:"combo,omitempty"`         // Table 2 combination trained on
	Variant      string  `json:"variant,omitempty"`       // image lag variant (current | 33ms | 100ms)
	Epochs       int     `json:"epochs,omitempty"`
	Batch        int     `json:"batch,omitempty"`
	LR           float64 `json:"lr,omitempty"`
	Seed         uint64  `json:"seed,omitempty"`
	Parent       string  `json:"parent,omitempty"` // hash of the model this one was fine-tuned from
}

// tagFile is the per-name version pointer.
type tagFile struct {
	Latest  string   `json:"latest"`
	History []string `json:"history"` // oldest → newest, ending with Latest
}

const (
	modelPrefix    = "models/"
	manifestPrefix = "manifests/"
	tagPrefix      = "tags/"
)

// Registry is a content-addressed model catalog over any Store backend.
type Registry struct {
	s store.Store
}

// New wraps a backend as a registry.
func New(s store.Store) *Registry { return &Registry{s: s} }

// OpenDir opens a file-backed registry rooted at dir (the common case
// for the CLIs).
func OpenDir(dir string) (*Registry, error) {
	fs, err := store.NewFileStore(dir)
	if err != nil {
		return nil, err
	}
	return New(fs), nil
}

// Encode renders the canonical model encoding and its content hash. The
// encoding is core.VVD.Save — deterministic for given weights — so equal
// models hash equal and a reloaded model re-encodes to the same hash.
func Encode(v *core.VVD) ([]byte, string, error) {
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		return nil, "", fmt.Errorf("registry: encoding model: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return buf.Bytes(), hex.EncodeToString(sum[:]), nil
}

// CampaignConfigHash fingerprints the world a campaign was generated
// from: the SHA-256 of its serialized Config — the same JSON the
// campaign store carries in its header, which excludes pure execution
// knobs (Workers) by construction.
func CampaignConfigHash(cfg dataset.Config) (string, error) {
	data, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("registry: hashing campaign config: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// validName rejects artifact names that cannot round-trip through a ref
// or a backend key.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("registry: empty artifact name")
	}
	if strings.ContainsAny(name, "@/") {
		return fmt.Errorf("registry: artifact name %q must not contain '@' or '/'", name)
	}
	return store.ValidateKey(name)
}

// Put registers a model: the canonical blob under its content hash, the
// manifest beside it, and the name's tag advanced to the new version.
// Returns the completed manifest. Registering identical weights again is
// idempotent at the blob layer (same hash, one stored copy).
func (r *Registry) Put(v *core.VVD, m Manifest) (Manifest, error) {
	if err := validName(m.Name); err != nil {
		return Manifest{}, err
	}
	data, hash, err := Encode(v)
	if err != nil {
		return Manifest{}, err
	}
	m.Hash = hash
	if err := store.PutBytes(r.s, modelPrefix+hash, data); err != nil {
		return Manifest{}, fmt.Errorf("registry: storing model blob: %w", err)
	}
	mJSON, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return Manifest{}, fmt.Errorf("registry: encoding manifest: %w", err)
	}
	if err := store.PutBytes(r.s, manifestPrefix+hash, append(mJSON, '\n')); err != nil {
		return Manifest{}, fmt.Errorf("registry: storing manifest: %w", err)
	}
	var tag tagFile
	if data, err := store.GetBytes(r.s, tagPrefix+m.Name); err == nil {
		if err := json.Unmarshal(data, &tag); err != nil {
			return Manifest{}, fmt.Errorf("registry: corrupt tag %s: %w", m.Name, err)
		}
	} else if !isNotFound(err) {
		return Manifest{}, err
	}
	tag.Latest = hash
	if n := len(tag.History); n == 0 || tag.History[n-1] != hash {
		tag.History = append(tag.History, hash)
	}
	tagJSON, err := json.MarshalIndent(tag, "", "  ")
	if err != nil {
		return Manifest{}, fmt.Errorf("registry: encoding tag: %w", err)
	}
	if err := store.PutBytes(r.s, tagPrefix+m.Name, append(tagJSON, '\n')); err != nil {
		return Manifest{}, fmt.Errorf("registry: storing tag: %w", err)
	}
	return m, nil
}

func isNotFound(err error) bool { return errors.Is(err, store.ErrNotFound) }

// Resolve turns a ref into a full content hash. Accepted forms:
//
//	name            → the name's latest version
//	name@latest     → the same
//	name@<hashpfx>  → that version, verified to belong to name
//	@<hashpfx>      → any model by unique hash prefix (≥ 8 hex chars)
func (r *Registry) Resolve(ref string) (string, error) {
	name, ver := ref, ""
	if i := strings.LastIndexByte(ref, '@'); i >= 0 {
		name, ver = ref[:i], ref[i+1:]
	}
	if ver == "" || ver == "latest" {
		if err := validName(name); err != nil {
			return "", err
		}
		data, err := store.GetBytes(r.s, tagPrefix+name)
		if isNotFound(err) {
			return "", fmt.Errorf("registry: no model named %q", name)
		}
		if err != nil {
			return "", err
		}
		var tag tagFile
		if err := json.Unmarshal(data, &tag); err != nil {
			return "", fmt.Errorf("registry: corrupt tag %s: %w", name, err)
		}
		if tag.Latest == "" {
			return "", fmt.Errorf("registry: tag %q has no latest version", name)
		}
		return tag.Latest, nil
	}
	hash, err := r.expandHash(ver)
	if err != nil {
		return "", err
	}
	if name != "" {
		m, err := r.Manifest(hash)
		if err != nil {
			return "", err
		}
		if m.Name != name {
			return "", fmt.Errorf("registry: model %s is named %q, not %q", shortHash(hash), m.Name, name)
		}
	}
	return hash, nil
}

// expandHash resolves a (possibly partial) content hash against the
// stored blobs.
func (r *Registry) expandHash(pfx string) (string, error) {
	if len(pfx) < 8 {
		return "", fmt.Errorf("registry: hash prefix %q too short (need ≥ 8 hex chars)", pfx)
	}
	if len(pfx) > 64 {
		return "", fmt.Errorf("registry: hash %q longer than a SHA-256", pfx)
	}
	for i := 0; i < len(pfx); i++ {
		if c := pfx[i]; (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("registry: hash prefix %q is not lowercase hex", pfx)
		}
	}
	keys, err := r.s.List(modelPrefix + pfx)
	if err != nil {
		return "", err
	}
	switch len(keys) {
	case 0:
		return "", fmt.Errorf("registry: no model with hash prefix %q", pfx)
	case 1:
		return strings.TrimPrefix(keys[0], modelPrefix), nil
	default:
		return "", fmt.Errorf("registry: hash prefix %q is ambiguous (%d matches)", pfx, len(keys))
	}
}

// Manifest returns the stored manifest for a full content hash.
func (r *Registry) Manifest(hash string) (Manifest, error) {
	data, err := store.GetBytes(r.s, manifestPrefix+hash)
	if isNotFound(err) {
		return Manifest{}, fmt.Errorf("registry: no manifest for model %s", shortHash(hash))
	}
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("registry: corrupt manifest %s: %w", shortHash(hash), err)
	}
	return m, nil
}

// Load resolves a ref, fetches the blob, verifies it still hashes to its
// address, and decodes the model. The verification is what makes
// "model@hash" a guarantee rather than a naming convention: a flipped
// bit anywhere in the artifact fails the load instead of serving.
func (r *Registry) Load(ref string) (*core.VVD, Manifest, error) {
	hash, err := r.Resolve(ref)
	if err != nil {
		return nil, Manifest{}, err
	}
	data, err := store.GetBytes(r.s, modelPrefix+hash)
	if isNotFound(err) {
		return nil, Manifest{}, fmt.Errorf("registry: model blob %s missing", shortHash(hash))
	}
	if err != nil {
		return nil, Manifest{}, err
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != hash {
		return nil, Manifest{}, fmt.Errorf("registry: model %s fails content verification (stored bytes hash to %s)", shortHash(hash), shortHash(got))
	}
	v, err := core.LoadModel(bytes.NewReader(data))
	if err != nil {
		return nil, Manifest{}, fmt.Errorf("registry: decoding model %s: %w", shortHash(hash), err)
	}
	m, err := r.Manifest(hash)
	if err != nil {
		// A blob without a manifest is loadable but anonymous.
		m = Manifest{Hash: hash}
	}
	return v, m, nil
}

// List returns every registered manifest, sorted by name then hash.
func (r *Registry) List() ([]Manifest, error) {
	keys, err := r.s.List(manifestPrefix)
	if err != nil {
		return nil, err
	}
	out := make([]Manifest, 0, len(keys))
	for _, k := range keys {
		m, err := r.Manifest(strings.TrimPrefix(k, manifestPrefix))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Hash < out[j].Hash
	})
	return out, nil
}

// Versions returns a name's version history, oldest first (the last
// entry is @latest).
func (r *Registry) Versions(name string) ([]string, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	data, err := store.GetBytes(r.s, tagPrefix+name)
	if isNotFound(err) {
		return nil, fmt.Errorf("registry: no model named %q", name)
	}
	if err != nil {
		return nil, err
	}
	var tag tagFile
	if err := json.Unmarshal(data, &tag); err != nil {
		return nil, fmt.Errorf("registry: corrupt tag %s: %w", name, err)
	}
	return tag.History, nil
}

// IsRef reports whether a CLI -model argument addresses the registry
// ("name@version") rather than a file path.
func IsRef(s string) bool { return strings.Contains(s, "@") }

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

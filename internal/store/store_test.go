package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"vvd/internal/dataset"
)

// backends builds one fresh instance of every Store implementation, so
// each conformance test runs identically against the file, memory and
// WAL engines — the property that makes the campaign helpers and the
// model registry backend-agnostic.
func backends(t *testing.T) map[string]Store {
	t.Helper()
	kv, err := OpenKV(t.TempDir(), KVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMemStore(), "file": fs, "kv": kv}
}

func TestStoreConformance(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()

			if _, err := s.Open("nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Open(missing) = %v, want ErrNotFound", err)
			}
			if err := s.Delete("nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Delete(missing) = %v, want ErrNotFound", err)
			}

			if err := PutBytes(s, "a/b/one", []byte("first")); err != nil {
				t.Fatal(err)
			}
			if err := PutBytes(s, "a/two", []byte("second")); err != nil {
				t.Fatal(err)
			}
			got, err := GetBytes(s, "a/b/one")
			if err != nil || string(got) != "first" {
				t.Fatalf("GetBytes = %q, %v", got, err)
			}

			// Overwrite replaces wholesale.
			if err := PutBytes(s, "a/b/one", []byte("FIRST2")); err != nil {
				t.Fatal(err)
			}
			if got, _ = GetBytes(s, "a/b/one"); string(got) != "FIRST2" {
				t.Fatalf("after overwrite: %q", got)
			}

			keys, err := s.List("a/")
			if err != nil {
				t.Fatal(err)
			}
			if want := []string{"a/b/one", "a/two"}; !reflect.DeepEqual(keys, want) {
				t.Fatalf("List(a/) = %v, want %v", keys, want)
			}
			keys, err = s.List("a/b/")
			if err != nil || len(keys) != 1 || keys[0] != "a/b/one" {
				t.Fatalf("List(a/b/) = %v, %v", keys, err)
			}

			if err := s.Delete("a/two"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Open("a/two"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Open(deleted) = %v, want ErrNotFound", err)
			}

			// A failing write callback publishes nothing.
			wantErr := errors.New("boom")
			err = s.Put("a/b/one", func(w io.Writer) error {
				w.Write([]byte("partial garbage"))
				return wantErr
			})
			if !errors.Is(err, wantErr) {
				t.Fatalf("failing Put = %v", err)
			}
			if got, _ = GetBytes(s, "a/b/one"); string(got) != "FIRST2" {
				t.Fatalf("failed Put replaced the value: %q", got)
			}

			// Hostile and malformed keys are rejected on every entry point.
			for _, bad := range []string{"", "/abs", "trail/", "a//b", "../up", "a/../b", "a\x00b", "a\\b"} {
				if err := PutBytes(s, bad, []byte("x")); err == nil {
					t.Errorf("Put(%q) accepted a hostile key", bad)
				}
				if _, err := s.Open(bad); err == nil || errors.Is(err, ErrNotFound) {
					t.Errorf("Open(%q) = %v, want validation error", bad, err)
				}
			}
		})
	}
}

// TestOpenSnapshotStableAcrossOverwrite pins the reader contract: a blob
// opened before an overwrite keeps serving the old bytes (FileStore holds
// the old inode, KV reads an immutable log region, MemStore snapshots).
func TestOpenSnapshotStableAcrossOverwrite(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if err := PutBytes(s, "k", []byte("old-value")); err != nil {
				t.Fatal(err)
			}
			rc, err := s.Open("k")
			if err != nil {
				t.Fatal(err)
			}
			defer rc.Close()
			if err := PutBytes(s, "k", []byte("new-value")); err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(rc)
			if err != nil || string(got) != "old-value" {
				t.Fatalf("stale reader returned %q, %v", got, err)
			}
		})
	}
}

// tinyCampaign generates the smallest useful campaign (no images, two
// packets) for round-trip tests.
func tinyCampaign(tb testing.TB) *dataset.Campaign {
	tb.Helper()
	cfg := dataset.DefaultConfig()
	cfg.Sets = 1
	cfg.PacketsPerSet = 2
	cfg.PSDULen = 16
	cfg.RenderImages = false
	c, err := dataset.Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// TestCampaignRoundTrip streams a campaign through every backend and pins
// that the stored bytes are exactly the loose-file container format.
func TestCampaignRoundTrip(t *testing.T) {
	c := tinyCampaign(t)
	var loose bytes.Buffer
	if err := c.Save(&loose); err != nil {
		t.Fatal(err)
	}
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if err := PutCampaign(s, "campaigns/tiny", c); err != nil {
				t.Fatal(err)
			}
			stored, err := GetBytes(s, "campaigns/tiny")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(stored, loose.Bytes()) {
				t.Fatalf("stored campaign differs from the loose-file encoding (%d vs %d bytes)", len(stored), loose.Len())
			}
			r, closer, err := OpenCampaign(s, "campaigns/tiny")
			if err != nil {
				t.Fatal(err)
			}
			defer closer.Close()
			if r.NumSets() != 1 {
				t.Fatalf("reopened campaign has %d sets", r.NumSets())
			}
			got, err := r.ReadSet(1)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Packets) != len(c.Sets[0].Packets) {
				t.Fatalf("replayed %d packets, want %d", len(got.Packets), len(c.Sets[0].Packets))
			}
		})
	}
}

func TestValidateKey(t *testing.T) {
	for _, good := range []string{"a", "a/b", "models/" + fmt.Sprintf("%064d", 0), "with-dash_and.dot"} {
		if err := ValidateKey(good); err != nil {
			t.Errorf("ValidateKey(%q) = %v", good, err)
		}
	}
	long := make([]byte, maxKeyLen+1)
	for i := range long {
		long[i] = 'k'
	}
	for _, bad := range []string{"", "/", "/a", "a/", "a//b", ".", "..", "a/./b", "a/../b", "a\x7fb", string(long)} {
		if err := ValidateKey(bad); err == nil {
			t.Errorf("ValidateKey(%q) accepted", bad)
		}
	}
}

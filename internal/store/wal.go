// The log-structured persistent KV backend.
//
// Layout: a directory of append-only segment files "wal-%08d.seg".
// Each segment (all integers little-endian):
//
//	u32  magic "VVDL"
//	u32  format version (1)
//	then records, back to back:
//	  u32  payload length N
//	  u32  CRC-32C over the payload
//	  N    bytes payload
//
// A payload is one atomic batch:
//
//	u32  op count
//	per op:
//	  u8   kind (1 = put, 2 = delete)
//	  u32  key length, key bytes
//	  u32  value length, value bytes   (put only)
//
// The write path appends one record per Apply/Put/Delete call and (by
// default) fsyncs before reporting success — the commit point. The
// in-memory index maps each live key to the byte range of its value
// inside a segment, so reads are one ReadAt against an immutable region
// of the log; values are never copied into memory wholesale.
//
// Crash recovery (OpenKV) replays segments in order, CRC-checking every
// record. A record that runs past the end of the file, has a truncated
// length prefix, or fails its CRC is a torn tail: legal only as the very
// last record of the last segment — exactly the footprint of a writer
// killed mid-append. Recovery truncates the file at the torn record's
// start (every batch committed before it replays intact), records the
// rejection in RecoveryInfo.TornTail, and the store resumes appending at
// the truncation point. The same shape anywhere else in the log is
// corruption, not a crash artifact, and fails the open.
//
// Segment rotation is atomic by construction: the next segment file is
// created, its header written and fsynced, and the directory fsynced
// before the writer switches over; a crash between any two steps leaves
// either the old tail or an empty-but-valid new segment — both replay
// cleanly. Old segments are never rewritten (compaction is future work;
// deletes are tombstones).
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const (
	kvMagic     = 0x4C445656 // "VVDL"
	kvVersion   = 1
	kvSegHdrLen = 8
	kvRecHdrLen = 8
	maxKVValue  = 1 << 30 // bytes per stored value
	maxKVBatch  = 1 << 16 // ops per batch

	defaultSegmentBytes = 64 << 20
)

var kvCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// Op kinds in the WAL payload.
const (
	kvOpPut    = 1
	kvOpDelete = 2
)

// KVOptions tune the WAL engine.
type KVOptions struct {
	// SegmentBytes rotates the active segment once it grows past this
	// size (0 = 64 MiB). Rotation bounds the cost of a future compaction
	// and the blast radius of a corrupt file.
	SegmentBytes int64
	// NoSync skips the per-batch fsync. A crash may then lose recently
	// "committed" batches (the OS had not flushed them), but recovery
	// still replays every batch that reached the disk and truncates any
	// torn tail — the store never opens into a corrupt state.
	NoSync bool

	// wrapWriter, when set (tests only), interposes on the active
	// segment's writer — the failpoint seam the crash-recovery harness
	// uses to kill a writer mid-record.
	wrapWriter func(f io.Writer) io.Writer
}

// Op is one operation of an atomic batch.
type Op struct {
	Key string
	Val []byte // ignored for deletes
	Del bool
}

// RecoveryInfo reports what OpenKV found while replaying the log.
type RecoveryInfo struct {
	Segments       int   // segment files scanned
	Records        int   // committed batches replayed
	TornTail       error // non-nil: the last segment ended mid-record (truncated away)
	TruncatedBytes int64 // bytes dropped with the torn tail
}

// kvEntry locates a live value inside the log.
type kvEntry struct {
	seg int
	off int64
	len int
}

// KV is the log-structured persistent backend. It implements Store; the
// richer Apply entry point commits multi-key batches atomically. Safe
// for concurrent use.
type KV struct {
	dir  string
	opts KVOptions

	mu         sync.Mutex
	index      map[string]kvEntry
	segs       map[int]*os.File // open handles, reads via ReadAt
	active     *os.File
	activeID   int
	activeW    io.Writer // active, possibly wrapped by the failpoint seam
	activeSize int64
	recovery   RecoveryInfo
	wErr       error // first write failure; poisons further writes until reopen
	closed     bool
}

// OpenKV opens (creating if needed) the WAL store in dir, replaying the
// log into the in-memory index. See RecoveryInfo for what a reopened
// store found after a crash.
func OpenKV(dir string, opts KVOptions) (*KV, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating wal dir %s: %w", dir, err)
	}
	kv := &KV{
		dir:   dir,
		opts:  opts,
		index: make(map[string]kvEntry),
		segs:  make(map[int]*os.File),
	}
	ids, err := kv.segmentIDs()
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		if err := kv.replaySegment(id, i == len(ids)-1); err != nil {
			kv.Close()
			return nil, err
		}
	}
	if len(ids) == 0 {
		if err := kv.createSegment(1); err != nil {
			kv.Close()
			return nil, err
		}
	} else {
		last := ids[len(ids)-1]
		f := kv.segs[last]
		size, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			kv.Close()
			return nil, fmt.Errorf("store: seeking wal segment %d: %w", last, err)
		}
		kv.setActive(last, f, size)
	}
	kv.recovery.Segments = len(ids)
	return kv, nil
}

// Recovery reports what the open replay found.
func (kv *KV) Recovery() RecoveryInfo {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.recovery
}

// Dir returns the backing directory.
func (kv *KV) Dir() string { return kv.dir }

func (kv *KV) segName(id int) string {
	return filepath.Join(kv.dir, fmt.Sprintf("wal-%08d.seg", id))
}

// segmentIDs lists the existing segment files in replay order.
func (kv *KV) segmentIDs() ([]int, error) {
	entries, err := os.ReadDir(kv.dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing wal dir %s: %w", kv.dir, err)
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(name, "wal-%08d.seg", &id); err != nil || id <= 0 {
			return nil, fmt.Errorf("store: alien file %s in wal dir %s", name, kv.dir)
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// setActive installs f as the append target, rebuilding the (possibly
// failpoint-wrapped) writer.
func (kv *KV) setActive(id int, f *os.File, size int64) {
	kv.active, kv.activeID, kv.activeSize = f, id, size
	kv.activeW = io.Writer(f)
	if kv.opts.wrapWriter != nil {
		kv.activeW = kv.opts.wrapWriter(f)
	}
}

// createSegment creates and activates segment id: header written and
// fsynced, directory fsynced, before any record can land in it.
func (kv *KV) createSegment(id int) error {
	name := kv.segName(id)
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating wal segment %s: %w", name, err)
	}
	var hdr [kvSegHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], kvMagic)
	binary.LittleEndian.PutUint32(hdr[4:], kvVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("store: writing wal segment header %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing wal segment %s: %w", name, err)
	}
	syncDir(kv.dir)
	kv.segs[id] = f
	kv.setActive(id, f, kvSegHdrLen)
	return nil
}

// tornTailError describes a torn record for RecoveryInfo.
func tornTailError(name string, off int64, reason string) error {
	return fmt.Errorf("store: torn WAL tail in %s at offset %d rejected: %s", filepath.Base(name), off, reason)
}

// replaySegment scans one segment, committing every valid record to the
// index. On the last segment a torn tail is truncated away; anywhere
// else it is fatal corruption.
func (kv *KV) replaySegment(id int, isLast bool) error {
	name := kv.segName(id)
	f, err := os.OpenFile(name, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening wal segment %s: %w", name, err)
	}
	kv.segs[id] = f
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat wal segment %s: %w", name, err)
	}
	size := info.Size()
	if size < kvSegHdrLen {
		if !isLast {
			return fmt.Errorf("store: wal segment %s has a truncated header mid-log", name)
		}
		// A crash during segment creation: no record can have landed.
		// Rewrite the header and resume appending here.
		kv.recovery.TornTail = tornTailError(name, 0, "truncated segment header")
		kv.recovery.TruncatedBytes += size
		if err := f.Truncate(0); err != nil {
			return fmt.Errorf("store: truncating torn segment %s: %w", name, err)
		}
		var hdr [kvSegHdrLen]byte
		binary.LittleEndian.PutUint32(hdr[0:], kvMagic)
		binary.LittleEndian.PutUint32(hdr[4:], kvVersion)
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			return fmt.Errorf("store: rewriting header of %s: %w", name, err)
		}
		return f.Sync()
	}
	var hdr [kvSegHdrLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("store: reading wal segment header %s: %w", name, err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != kvMagic {
		return fmt.Errorf("store: %s is not a wal segment (magic %08x)", name, got)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != kvVersion {
		return fmt.Errorf("store: wal segment %s has format version %d (this build reads %d)", name, v, kvVersion)
	}

	off := int64(kvSegHdrLen)
	var recHdr [kvRecHdrLen]byte
	var payload []byte
	for off < size {
		torn := func(reason string) error {
			if !isLast {
				return fmt.Errorf("store: corrupt record mid-log in %s at offset %d (%s): refusing to open", name, off, reason)
			}
			kv.recovery.TornTail = tornTailError(name, off, reason)
			kv.recovery.TruncatedBytes += size - off
			if err := f.Truncate(off); err != nil {
				return fmt.Errorf("store: truncating torn tail of %s: %w", name, err)
			}
			return f.Sync()
		}
		if size-off < kvRecHdrLen {
			return torn("truncated record length prefix")
		}
		if _, err := f.ReadAt(recHdr[:], off); err != nil {
			return fmt.Errorf("store: reading record header of %s: %w", name, err)
		}
		payloadLen := int64(binary.LittleEndian.Uint32(recHdr[0:]))
		wantCRC := binary.LittleEndian.Uint32(recHdr[4:])
		// The length is validated against the bytes actually present
		// before any allocation: a hostile or torn prefix cannot make the
		// replay allocate past the file's own size.
		if payloadLen > size-off-kvRecHdrLen {
			return torn(fmt.Sprintf("record claims %d payload bytes, %d remain", payloadLen, size-off-kvRecHdrLen))
		}
		if int64(cap(payload)) < payloadLen {
			payload = make([]byte, payloadLen)
		}
		payload = payload[:payloadLen]
		if _, err := f.ReadAt(payload, off+kvRecHdrLen); err != nil {
			return fmt.Errorf("store: reading record payload of %s: %w", name, err)
		}
		if got := crc32.Checksum(payload, kvCastagnoli); got != wantCRC {
			return torn(fmt.Sprintf("payload checksum mismatch (stored %08x, computed %08x)", wantCRC, got))
		}
		if err := kv.replayRecord(id, off+kvRecHdrLen, payload); err != nil {
			// CRC-valid but malformed: a writer bug or a forged file, not
			// a crash artifact — refuse regardless of position.
			return fmt.Errorf("store: invalid record in %s at offset %d: %w", name, off, err)
		}
		kv.recovery.Records++
		off += kvRecHdrLen + payloadLen
	}
	return nil
}

// replayRecord applies one CRC-verified batch payload to the index.
// base is the payload's file offset, so value entries can point straight
// into the segment.
func (kv *KV) replayRecord(seg int, base int64, payload []byte) error {
	pos := 0
	take := func(n int) ([]byte, error) {
		if n < 0 || len(payload)-pos < n {
			return nil, fmt.Errorf("payload shorter than encoded lengths claim")
		}
		b := payload[pos : pos+n]
		pos += n
		return b, nil
	}
	b, err := take(4)
	if err != nil {
		return err
	}
	count := int(binary.LittleEndian.Uint32(b))
	if count < 1 || count > maxKVBatch {
		return fmt.Errorf("implausible batch op count %d", count)
	}
	for i := 0; i < count; i++ {
		kindB, err := take(1)
		if err != nil {
			return err
		}
		b, err := take(4)
		if err != nil {
			return err
		}
		keyLen := int(binary.LittleEndian.Uint32(b))
		if keyLen > maxKeyLen {
			return fmt.Errorf("implausible key length %d", keyLen)
		}
		keyB, err := take(keyLen)
		if err != nil {
			return err
		}
		key := string(keyB)
		switch kindB[0] {
		case kvOpPut:
			b, err := take(4)
			if err != nil {
				return err
			}
			valLen := int(binary.LittleEndian.Uint32(b))
			if valLen > maxKVValue {
				return fmt.Errorf("implausible value length %d", valLen)
			}
			valOff := base + int64(pos)
			if _, err := take(valLen); err != nil {
				return err
			}
			kv.index[key] = kvEntry{seg: seg, off: valOff, len: valLen}
		case kvOpDelete:
			delete(kv.index, key)
		default:
			return fmt.Errorf("unknown op kind %d", kindB[0])
		}
	}
	if pos != len(payload) {
		return fmt.Errorf("%d trailing payload bytes", len(payload)-pos)
	}
	return nil
}

// Apply commits a batch of operations atomically: either every op is
// durable and indexed, or (on any failure) none is visible. One WAL
// record per call.
func (kv *KV) Apply(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	if len(ops) > maxKVBatch {
		return fmt.Errorf("store: batch of %d ops exceeds %d", len(ops), maxKVBatch)
	}
	for i := range ops {
		if err := ValidateKey(ops[i].Key); err != nil {
			return err
		}
		if !ops[i].Del && len(ops[i].Val) > maxKVValue {
			return fmt.Errorf("store: value for %q is %d bytes (max %d)", ops[i].Key, len(ops[i].Val), maxKVValue)
		}
	}

	// Encode the payload, remembering where each put's value bytes sit
	// so the index can alias the log after the write commits.
	payload := make([]byte, 0, kvBatchSize(ops))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(ops)))
	valPos := make([]int, len(ops))
	for i := range ops {
		if ops[i].Del {
			payload = append(payload, kvOpDelete)
			payload = binary.LittleEndian.AppendUint32(payload, uint32(len(ops[i].Key)))
			payload = append(payload, ops[i].Key...)
			continue
		}
		payload = append(payload, kvOpPut)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(ops[i].Key)))
		payload = append(payload, ops[i].Key...)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(ops[i].Val)))
		valPos[i] = len(payload)
		payload = append(payload, ops[i].Val...)
	}
	record := make([]byte, 0, kvRecHdrLen+len(payload))
	record = binary.LittleEndian.AppendUint32(record, uint32(len(payload)))
	record = binary.LittleEndian.AppendUint32(record, crc32.Checksum(payload, kvCastagnoli))
	record = append(record, payload...)

	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return ErrClosed
	}
	if kv.wErr != nil {
		return fmt.Errorf("store: wal writer poisoned by earlier failure (reopen to recover): %w", kv.wErr)
	}
	base := kv.activeSize
	if _, err := kv.activeW.Write(record); err != nil {
		// The segment tail is now indeterminate — exactly a crash. Poison
		// the writer; reopening runs torn-tail recovery.
		kv.wErr = err
		return fmt.Errorf("store: appending wal record: %w", err)
	}
	if !kv.opts.NoSync {
		if err := kv.active.Sync(); err != nil {
			kv.wErr = err
			return fmt.Errorf("store: syncing wal record: %w", err)
		}
	}
	// Commit point: the record is durable. Index the batch.
	kv.activeSize += int64(len(record))
	for i := range ops {
		if ops[i].Del {
			delete(kv.index, ops[i].Key)
		} else {
			kv.index[ops[i].Key] = kvEntry{
				seg: kv.activeID,
				off: base + kvRecHdrLen + int64(valPos[i]),
				len: len(ops[i].Val),
			}
		}
	}
	if kv.activeSize >= kv.opts.SegmentBytes {
		if err := kv.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// kvBatchSize pre-sizes the payload buffer for a batch.
func kvBatchSize(ops []Op) int {
	n := 4
	for i := range ops {
		n += 1 + 4 + len(ops[i].Key)
		if !ops[i].Del {
			n += 4 + len(ops[i].Val)
		}
	}
	return n
}

// rotateLocked seals the active segment and activates the next one. The
// old handle stays open for reads.
func (kv *KV) rotateLocked() error {
	if err := kv.active.Sync(); err != nil {
		kv.wErr = err
		return fmt.Errorf("store: syncing wal segment before rotation: %w", err)
	}
	return kv.createSegment(kv.activeID + 1)
}

// PutValue stores one value (a single-op batch).
func (kv *KV) PutValue(key string, val []byte) error {
	return kv.Apply([]Op{{Key: key, Val: val}})
}

// Put implements Store. The callback's bytes are buffered (a WAL record
// is one contiguous batch), then committed as a single-op batch.
func (kv *KV) Put(key string, write func(w io.Writer) error) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	var buf writeBuffer
	if err := write(&buf); err != nil {
		return err
	}
	return kv.PutValue(key, buf.b)
}

// writeBuffer is a minimal append-only io.Writer (bytes.Buffer without
// the read-side bookkeeping).
type writeBuffer struct{ b []byte }

func (w *writeBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// Open implements Store: the value is served by ReadAt against the
// segment that holds it. The log is append-only, so the returned reader
// stays valid across later writes to the same key.
func (kv *KV) Open(key string) (io.ReadCloser, error) {
	if err := ValidateKey(key); err != nil {
		return nil, err
	}
	kv.mu.Lock()
	if kv.closed {
		kv.mu.Unlock()
		return nil, ErrClosed
	}
	e, ok := kv.index[key]
	f := kv.segs[e.seg]
	kv.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if f == nil {
		return nil, fmt.Errorf("store: no open segment %d for key %s", e.seg, key)
	}
	return io.NopCloser(io.NewSectionReader(f, e.off, int64(e.len))), nil
}

// Delete implements Store (a tombstone record; the value's bytes remain
// in the log until compaction).
func (kv *KV) Delete(key string) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	kv.mu.Lock()
	_, ok := kv.index[key]
	kv.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return kv.Apply([]Op{{Key: key, Del: true}})
}

// List implements Store.
func (kv *KV) List(prefix string) ([]string, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return nil, ErrClosed
	}
	var keys []string
	for k := range kv.index {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Sync forces the active segment to disk (meaningful with NoSync).
func (kv *KV) Sync() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return ErrClosed
	}
	return kv.active.Sync()
}

// Close syncs the active segment and releases every file handle.
func (kv *KV) Close() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return nil
	}
	kv.closed = true
	var first error
	if kv.active != nil && kv.wErr == nil {
		if err := kv.active.Sync(); err != nil {
			first = err
		}
	}
	for _, f := range kv.segs {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Package store is the artifact persistence layer: a pluggable named-blob
// backend abstraction with three implementations, plus the atomic
// write-to-temp → fsync → rename helper every binary routes its output
// files through.
//
// The three backends:
//
//   - FileStore: one file per key under a root directory, every Put
//     committed atomically. This wraps the existing streaming codecs
//     (campaign store, model format) as a backend — a key's bytes are
//     exactly what the codec would have written to a loose file.
//   - MemStore: a map. For tests and ephemeral pipelines.
//   - KV: a log-structured persistent engine (wal.go) — append-only WAL
//     segments of length-prefixed CRC-32C batches with crash recovery
//     that truncates the torn tail and replays every committed batch.
//
// All three satisfy Store, so the campaign helpers (PutCampaign /
// OpenCampaign) and the model registry (store/registry) are backend
// agnostic: swapping durable storage for memory is a constructor change,
// not a plumbing change. The measured cost of durability is pinned in
// EXPERIMENTS.md ("Storage backends").
package store

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"vvd/internal/dataset"
)

// ErrNotFound is returned by Open and Delete for a key with no blob.
var ErrNotFound = errors.New("store: key not found")

// maxKeyLen bounds key length across every backend (WAL replay validates
// stored key lengths against it before allocating).
const maxKeyLen = 4096

// Store is a named-blob persistence backend. Keys are slash-separated
// paths ("models/ab12…", "campaigns/crowded"); blobs are opaque bytes.
//
// Put is atomic: the blob at key is either the previous value or the
// complete new value, never a torn intermediate — a crash mid-Put must
// not be observable through Open after reopening the backend.
type Store interface {
	// Put creates or replaces the blob at key with the bytes the callback
	// writes. The new blob becomes visible only if the callback and the
	// backend's commit both succeed.
	Put(key string, write func(w io.Writer) error) error
	// Open returns the blob at key for reading (ErrNotFound if absent).
	// The returned reader must be closed; it stays valid across later
	// Puts to the same key.
	Open(key string) (io.ReadCloser, error)
	// Delete removes the blob at key (ErrNotFound if absent).
	Delete(key string) error
	// List returns every key with the given prefix, sorted ("" lists all).
	List(prefix string) ([]string, error)
	// Close releases backend resources. Reads and writes after Close fail.
	Close() error
}

// ValidateKey rejects keys no backend accepts: empty, oversized, rooted
// or dot-relative paths, control bytes. FileStore additionally maps keys
// onto real paths, so the same rules keep a hostile key ("../../etc/x")
// inside the store root on every backend.
func ValidateKey(key string) error {
	if key == "" {
		return errors.New("store: empty key")
	}
	if len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d exceeds %d", len(key), maxKeyLen)
	}
	if strings.HasPrefix(key, "/") || strings.HasSuffix(key, "/") {
		return fmt.Errorf("store: key %q must not start or end with '/'", key)
	}
	for _, seg := range strings.Split(key, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return fmt.Errorf("store: key %q has an empty or dot path segment", key)
		}
	}
	for i := 0; i < len(key); i++ {
		if key[i] < 0x20 || key[i] == 0x7f || key[i] == '\\' {
			return fmt.Errorf("store: key %q contains a forbidden byte %#x", key, key[i])
		}
	}
	return nil
}

// PutBytes stores a fixed byte slice under key (convenience over Put).
func PutBytes(s Store, key string, data []byte) error {
	return s.Put(key, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// GetBytes reads the whole blob at key.
func GetBytes(s Store, key string) ([]byte, error) {
	rc, err := s.Open(key)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(rc)
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	return data, err
}

// PutCampaign streams a campaign into the backend under key in the
// current on-disk container format (dataset.Save).
func PutCampaign(s Store, key string, c *dataset.Campaign) error {
	return s.Put(key, c.Save)
}

// OpenCampaign opens the campaign stored at key for streaming decode.
// The returned closer releases the underlying blob reader; close it only
// after the Reader is drained.
func OpenCampaign(s Store, key string) (*dataset.Reader, io.Closer, error) {
	rc, err := s.Open(key)
	if err != nil {
		return nil, nil, err
	}
	r, err := dataset.OpenCampaign(rc)
	if err != nil {
		rc.Close()
		return nil, nil, err
	}
	return r, rc, nil
}

package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "out.bin")
	if err := WriteFileAtomic(p, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(p)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	info, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Fatalf("committed file has mode %o, want 644", perm)
	}
	// Overwrite.
	if err := WriteFileAtomic(p, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if got, _ = os.ReadFile(p); string(got) != "second" {
		t.Fatalf("after overwrite: %q", got)
	}
	assertNoTempFiles(t, dir)
}

// TestWriteAtomicFailureLeavesDestination is the satellite's core
// assertion: a write that fails partway — after emitting bytes — leaves
// the previous destination contents byte-identical and no debris behind.
// This is exactly the case where the old bare os.Create flow (truncate,
// then write) would have destroyed the artifact.
func TestWriteAtomicFailureLeavesDestination(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "model.bin")
	if err := WriteFileAtomic(p, []byte("the previous artifact")); err != nil {
		t.Fatal(err)
	}

	injected := errors.New("disk full (injected)")
	err := WriteAtomic(p, func(w io.Writer) error {
		if _, werr := w.Write([]byte("half a new artifa")); werr != nil {
			return werr
		}
		return injected
	})
	if !errors.Is(err, injected) {
		t.Fatalf("WriteAtomic = %v, want the injected failure", err)
	}
	got, err := os.ReadFile(p)
	if err != nil || string(got) != "the previous artifact" {
		t.Fatalf("destination after failed write = %q, %v", got, err)
	}
	assertNoTempFiles(t, dir)
}

// TestWriteAtomicFreshPathFailure pins the no-preexisting-file case: a
// failed write to a new path leaves nothing at all.
func TestWriteAtomicFreshPathFailure(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "new.bin")
	err := WriteAtomic(p, func(w io.Writer) error { return errors.New("nope") })
	if err == nil {
		t.Fatal("WriteAtomic succeeded through a failing callback")
	}
	if _, serr := os.Stat(p); !os.IsNotExist(serr) {
		t.Fatalf("failed write created %s (stat: %v)", p, serr)
	}
	assertNoTempFiles(t, dir)
}

func TestWriteAtomicMissingDir(t *testing.T) {
	p := filepath.Join(t.TempDir(), "no", "such", "dir", "x")
	if err := WriteFileAtomic(p, []byte("x")); err == nil {
		t.Fatal("WriteFileAtomic into a missing directory succeeded")
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"vvd/internal/serve"
)

// verifyNoLeaks mirrors the serve package's leak check: snapshot the
// goroutine count, poll back to it after every cleanup ran. Server.Close
// and Client.Close must unwind every accept loop, per-connection reader
// and per-request handler they started.
func verifyNoLeaks(t *testing.T) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if runtime.NumGoroutine() <= baseline {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d at baseline, %d after cleanup; stacks:\n%s",
			baseline, runtime.NumGoroutine(), buf[:n])
	})
}

const testPixels = 64

// stubCIR recomputes the StubEstimator's deterministic CIR for one
// image, in the complex64 domain the wire carries.
func stubCIR(img []float32, taps int) []complex64 {
	var sum float64
	for j, p := range img {
		sum += float64(p) * float64(j%7+1)
	}
	out := make([]complex64, taps)
	for k := range out {
		out[k] = complex64(complex(sum+float64(k), float64(len(img))-float64(2*k)))
	}
	return out
}

func testImage(seed int) []float32 {
	img := make([]float32, testPixels)
	for i := range img {
		img[i] = float32(seed*31+i) * 0.125
	}
	return img
}

type wireFixture struct {
	svc    *serve.Service
	server *Server
	addr   string
	client *Client
}

// newWireFixture stands up a full stack — serve.Service on a
// StubEstimator, wire Server, wire Client over loopback — and tears it
// down in dependency order on cleanup.
func newWireFixture(t *testing.T, scfg serve.Config, wcfg ServerConfig) *wireFixture {
	t.Helper()
	verifyNoLeaks(t)
	if scfg.Estimator == nil {
		scfg.Estimator = &serve.StubEstimator{}
	}
	if scfg.InputSize == 0 {
		scfg.InputSize = testPixels
	}
	svc, err := serve.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(NewServiceHandler(svc), wcfg)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	client, err := Dial(addr.String(), ClientConfig{})
	if err != nil {
		svc.Close()
		server.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		svc.Close() // first: unblocks in-flight Submit waits
		server.Close()
	})
	return &wireFixture{svc: svc, server: server, addr: addr.String(), client: client}
}

func TestSubmitRoundTrip(t *testing.T) {
	fx := newWireFixture(t, serve.Config{}, ServerConfig{})
	img := testImage(1)
	var reply EstimateReply
	if err := fx.client.Submit("link-a", img, 0, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.SubmittedSeq != 1 {
		t.Fatalf("SubmittedSeq = %d, want 1", reply.SubmittedSeq)
	}
	if reply.FrameSeq < reply.SubmittedSeq {
		t.Fatalf("FrameSeq %d older than submitted %d", reply.FrameSeq, reply.SubmittedSeq)
	}
	want := stubCIR(img, 11)
	if len(reply.CIR) != len(want) {
		t.Fatalf("CIR taps = %d, want %d", len(reply.CIR), len(want))
	}
	for i := range want {
		if reply.CIR[i] != want[i] { //vvdlint:bitexact -- wire transport must not perturb estimate bytes
			t.Fatalf("tap %d = %v, want %v", i, reply.CIR[i], want[i])
		}
	}
	if reply.Age < 0 {
		t.Fatalf("negative age %v", reply.Age)
	}

	// The same estimate is now fetchable.
	var fetched EstimateReply
	if err := fx.client.Fetch("link-a", &fetched); err != nil {
		t.Fatal(err)
	}
	if fetched.FrameSeq != reply.FrameSeq {
		t.Fatalf("fetched FrameSeq = %d, want %d", fetched.FrameSeq, reply.FrameSeq)
	}
	for i := range want {
		if fetched.CIR[i] != want[i] { //vvdlint:bitexact -- wire transport must not perturb estimate bytes
			t.Fatalf("fetched tap %d = %v, want %v", i, fetched.CIR[i], want[i])
		}
	}
}

func TestSubmitNoWait(t *testing.T) {
	fx := newWireFixture(t, serve.Config{}, ServerConfig{})
	var reply EstimateReply
	if err := fx.client.SubmitNoWait("feeder", testImage(2), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.SubmittedSeq != 1 || len(reply.CIR) != 0 {
		t.Fatalf("reply = %+v, want bare submission receipt", reply)
	}
	// The estimate still materializes; poll Fetch until it does.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var got EstimateReply
		err := fx.client.Fetch("feeder", &got)
		if err == nil {
			if got.FrameSeq != 1 {
				t.Fatalf("FrameSeq = %d, want 1", got.FrameSeq)
			}
			return
		}
		if CodeOf(err) != StatusNoEstimate {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("estimate never published")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStatsMetricsPing(t *testing.T) {
	fx := newWireFixture(t, serve.Config{}, ServerConfig{})
	var reply EstimateReply
	for _, link := range []string{"b-link", "a-link"} {
		if err := fx.client.Submit(link, testImage(3), 0, &reply); err != nil {
			t.Fatal(err)
		}
	}

	stats, err := fx.client.Stats("", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 || stats[0].ID != "a-link" || stats[1].ID != "b-link" {
		t.Fatalf("stats = %+v, want both links sorted by id", stats)
	}
	for _, st := range stats {
		if st.Served != 1 {
			t.Fatalf("link %s served = %d, want 1", st.ID, st.Served)
		}
	}
	one, err := fx.client.Stats("a-link", stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].ID != "a-link" {
		t.Fatalf("filtered stats = %+v", one)
	}
	if _, err := fx.client.Stats("nope", nil); CodeOf(err) != StatusNoEstimate {
		t.Fatalf("unknown link stats err = %v, want StatusNoEstimate", err)
	}

	m, err := fx.client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.FramesSubmitted != 2 || m.EstimatesServed != 2 || m.ActiveLinks != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.InferMode != "stub" {
		t.Fatalf("InferMode = %q, want stub", m.InferMode)
	}
	if m.AgeP50 <= 0 || m.AgeP99 < m.AgeP50 {
		t.Fatalf("age percentiles p50=%v p99=%v", m.AgeP50, m.AgeP99)
	}

	pong, err := fx.client.Ping(0)
	if err != nil {
		t.Fatal(err)
	}
	if pong.ActiveLinks != 2 || pong.EstimatesServed != 2 {
		t.Fatalf("pong = %+v", pong)
	}
}

func TestErrorStatuses(t *testing.T) {
	fx := newWireFixture(t, serve.Config{MaxLinks: 1}, ServerConfig{})
	var reply EstimateReply

	// Nothing published yet.
	if err := fx.client.Fetch("only", &reply); CodeOf(err) != StatusNoEstimate {
		t.Fatalf("fetch err = %v, want StatusNoEstimate", err)
	}
	// Wrong pixel count is a bad request.
	if err := fx.client.Submit("only", make([]float32, testPixels+1), 0, &reply); CodeOf(err) != StatusBadRequest {
		t.Fatalf("bad-size err = %v, want StatusBadRequest", err)
	}
	// Empty frame is a bad request.
	if err := fx.client.Submit("only", nil, 0, &reply); CodeOf(err) != StatusBadRequest {
		t.Fatalf("empty err = %v, want StatusBadRequest", err)
	}
	// Session cap: second link rejected.
	if err := fx.client.Submit("only", testImage(4), 0, &reply); err != nil {
		t.Fatal(err)
	}
	if err := fx.client.Submit("other", testImage(4), 0, &reply); CodeOf(err) != StatusTooManyLinks {
		t.Fatalf("over-cap err = %v, want StatusTooManyLinks", err)
	}

	// Every error is a *StatusError with a usable message.
	err := fx.client.Fetch("third", &reply)
	var se *StatusError
	if !errors.As(err, &se) || se.Msg == "" {
		t.Fatalf("err = %#v, want StatusError with message", err)
	}
}

func TestPipelinedConcurrentLinks(t *testing.T) {
	fx := newWireFixture(t, serve.Config{QueueDepth: 64}, ServerConfig{})
	const links = 8
	const perLink = 10
	var wg sync.WaitGroup
	errs := make(chan error, links)
	for l := 0; l < links; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			var reply EstimateReply
			for i := 0; i < perLink; i++ {
				img := testImage(l*1000 + i)
				if err := fx.client.Submit(fmt.Sprintf("link-%d", l), img, 0, &reply); err != nil {
					errs <- fmt.Errorf("link %d frame %d: %w", l, i, err)
					return
				}
				if reply.FrameSeq < reply.SubmittedSeq {
					errs <- fmt.Errorf("link %d: FrameSeq %d < SubmittedSeq %d", l, reply.FrameSeq, reply.SubmittedSeq)
					return
				}
				if len(reply.CIR) != 11 {
					errs <- fmt.Errorf("link %d: %d taps", l, len(reply.CIR))
					return
				}
			}
		}(l)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	m, err := fx.client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.FramesSubmitted != links*perLink {
		t.Fatalf("FramesSubmitted = %d, want %d", m.FramesSubmitted, links*perLink)
	}
	if m.ActiveLinks != links {
		t.Fatalf("ActiveLinks = %d, want %d", m.ActiveLinks, links)
	}
}

func TestOverloadSheds(t *testing.T) {
	// One in-flight slot and a slow estimator: the first Submit parks in
	// the slot, every concurrent request sheds immediately with
	// StatusOverloaded — bounded backpressure, no queueing.
	fx := newWireFixture(t,
		serve.Config{Estimator: &serve.StubEstimator{Latency: 300 * time.Millisecond}},
		ServerConfig{MaxInflight: 1})

	started := make(chan struct{})
	firstErr := make(chan error, 1)
	go func() {
		var reply EstimateReply
		close(started)
		firstErr <- fx.client.Submit("slow", testImage(5), 5*time.Second, &reply)
	}()
	<-started

	// Wait until the slot is actually occupied before probing.
	deadline := time.Now().Add(2 * time.Second)
	for fx.server.Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first submit never occupied the in-flight slot")
		}
		time.Sleep(time.Millisecond)
	}

	var sheds int
	for i := 0; i < 5; i++ {
		var reply EstimateReply
		err := fx.client.Fetch("slow", &reply)
		if CodeOf(err) == StatusOverloaded {
			sheds++
		}
	}
	if sheds == 0 {
		t.Fatal("no request shed while the in-flight slot was held")
	}
	if fx.server.Sheds() == 0 {
		t.Fatal("server shed counter did not advance")
	}
	if err := <-firstErr; err != nil {
		t.Fatalf("parked submit failed: %v", err)
	}
}

func TestClientSurvivesTimedOutCall(t *testing.T) {
	// A Submit whose estimate misses a tiny wait returns StatusNotReady
	// from the server; the connection stays healthy for later calls.
	fx := newWireFixture(t,
		serve.Config{Estimator: &serve.StubEstimator{Latency: 150 * time.Millisecond}},
		ServerConfig{})
	var reply EstimateReply
	err := fx.client.Submit("l", testImage(6), time.Millisecond, &reply)
	if CodeOf(err) != StatusNotReady {
		t.Fatalf("err = %v, want StatusNotReady", err)
	}
	// Connection still works.
	if err := fx.client.Submit("l", testImage(7), 5*time.Second, &reply); err != nil {
		t.Fatal(err)
	}
	if fx.client.Err() != nil {
		t.Fatalf("client err = %v, want healthy", fx.client.Err())
	}
}

func TestServerDropsBadPreface(t *testing.T) {
	fx := newWireFixture(t, serve.Config{}, ServerConfig{})
	conn, err := net.Dial("tcp", fx.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var b [1]byte
	if _, err := conn.Read(b[:]); err == nil {
		t.Fatal("server answered a non-wire peer instead of dropping it")
	}
}

func TestServerDropsCorruptFrame(t *testing.T) {
	fx := newWireFixture(t, serve.Config{}, ServerConfig{})
	conn, err := net.Dial("tcp", fx.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writePreface(conn); err != nil {
		t.Fatal(err)
	}
	if err := readPreface(conn); err != nil {
		t.Fatal(err)
	}
	frame := encodeFrame(TypePing, StatusOK, 1, nil)
	frame[len(frame)-1] ^= 0xFF // break the CRC
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	// The server must hang up: a broken frame boundary is unrecoverable.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var b [1]byte
	if _, err := conn.Read(b[:]); err == nil {
		t.Fatal("server kept the connection after a corrupt frame")
	}
}

func TestUnknownTypeGetsBadRequest(t *testing.T) {
	fx := newWireFixture(t, serve.Config{}, ServerConfig{})
	conn, err := net.Dial("tcp", fx.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writePreface(conn); err != nil {
		t.Fatal(err)
	}
	if err := readPreface(conn); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(encodeFrame(0x7F, StatusOK, 3, nil)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	hdr, payload, _, err := readFrame(conn, nil, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Type != TypeError || hdr.Status != StatusBadRequest || hdr.ReqID != 3 {
		t.Fatalf("reply header = %+v, want TypeError/StatusBadRequest/reqID 3", hdr)
	}
	if msg, err := parseErrorPayload(payload); err != nil || msg == "" {
		t.Fatalf("error payload = %q, %v", msg, err)
	}
}

func TestClientFailsPendingOnConnectionLoss(t *testing.T) {
	// A half-wire server: speaks the preface, then hangs up mid-call.
	verifyNoLeaks(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if err := readPreface(conn); err != nil {
			conn.Close()
			return
		}
		if err := writePreface(conn); err != nil {
			conn.Close()
			return
		}
		accepted <- conn
	}()
	client, err := Dial(ln.Addr().String(), ClientConfig{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	conn := <-accepted
	// Sever the connection while a call is pending.
	go func() {
		// Read the request frame first so the client's write succeeds.
		var lenb [4]byte
		if _, err := conn.Read(lenb[:]); err == nil {
			rest := make([]byte, binary.LittleEndian.Uint32(lenb[:]))
			_, _ = conn.Read(rest)
		}
		conn.Close()
	}()
	var reply EstimateReply
	err = client.Fetch("l", &reply)
	if err == nil {
		t.Fatal("call succeeded over a severed connection")
	}
	if client.Err() == nil {
		t.Fatal("client did not record the terminal error")
	}
	// Further calls fail fast with the same terminal error.
	if err := client.Fetch("l", &reply); err == nil {
		t.Fatal("call succeeded on a dead client")
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	// A Submit parked deep in its wait must return promptly once the
	// service shuts down — Close drains the queue, so the parked call may
	// come back with its estimate or with ErrClosed mapped to a status,
	// but it must not ride out its 30 s wait budget.
	fx := newWireFixture(t,
		serve.Config{Estimator: &serve.StubEstimator{Latency: 300 * time.Millisecond}},
		ServerConfig{})
	errCh := make(chan error, 1)
	go func() {
		var reply EstimateReply
		errCh <- fx.client.Submit("l", testImage(8), 30*time.Second, &reply)
	}()
	// Let the submit reach the server, then tear everything down.
	deadline := time.Now().Add(2 * time.Second)
	for fx.server.Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("submit never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	fx.svc.Close()
	fx.server.Close()
	select {
	case <-errCh:
		// Either outcome is fine; returning at all is the contract.
	case <-time.After(10 * time.Second):
		t.Fatal("submit still blocked after server close")
	}
}

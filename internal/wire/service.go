package wire

import (
	"errors"
	"time"

	"vvd/internal/serve"
)

// ServiceHandler adapts a serve.Service to the wire Handler interface:
// the same transport-agnostic session flow the HTTP layer uses
// (Service.SubmitAndWait / Fetch), with the serve error taxonomy mapped
// onto wire status codes instead of HTTP ones.
type ServiceHandler struct {
	svc *serve.Service
}

// NewServiceHandler wraps a running Service.
func NewServiceHandler(svc *serve.Service) *ServiceHandler {
	return &ServiceHandler{svc: svc}
}

// statusErr maps the serve error taxonomy onto wire statuses — the
// binary twin of the HTTP layer's statusFor.
func statusErr(err error) error {
	var se *StatusError
	if errors.As(err, &se) {
		return err
	}
	code := StatusBadRequest
	switch {
	case errors.Is(err, serve.ErrLinkLimit):
		code = StatusTooManyLinks
	case errors.Is(err, serve.ErrClosed):
		code = StatusUnavailable
	case errors.Is(err, serve.ErrNotReady):
		code = StatusNotReady
	case errors.Is(err, serve.ErrNoEstimate):
		code = StatusNoEstimate
	}
	return &StatusError{Code: code, Msg: err.Error()}
}

// fillEstimate converts a served estimate into the wire reply, reusing
// the reply's CIR capacity. The float64→float32 narrowing is lossless
// in practice: the inference engine computes float32 (PR 6).
func fillEstimate(reply *EstimateReply, e serve.Estimate, now time.Time) {
	reply.FrameSeq = e.FrameSeq
	reply.Batch = e.Batch
	reply.Age = e.AgeAt(now)
	reply.Inference = e.Inference
	reply.CIR = reply.CIR[:0]
	for _, c := range e.CIR {
		reply.CIR = append(reply.CIR, complex64(c))
	}
}

// Submit implements Handler.
func (h *ServiceHandler) Submit(link string, img []float32, wait time.Duration, reply *EstimateReply) error {
	if wait < 0 {
		res, err := h.svc.SubmitFor(link, img)
		if err != nil {
			return statusErr(err)
		}
		*reply = EstimateReply{SubmittedSeq: res.SubmittedSeq, DroppedOldest: res.DroppedOldest, CIR: reply.CIR[:0]}
		return nil
	}
	res, err := h.svc.SubmitAndWait(link, img, wait)
	if err != nil {
		return statusErr(err)
	}
	fillEstimate(reply, res.Estimate, h.svc.Now())
	reply.SubmittedSeq = res.SubmittedSeq
	reply.DroppedOldest = res.DroppedOldest
	return nil
}

// Fetch implements Handler.
func (h *ServiceHandler) Fetch(link string, reply *EstimateReply) error {
	e, err := h.svc.Fetch(link)
	if err != nil {
		return statusErr(err)
	}
	fillEstimate(reply, e, h.svc.Now())
	reply.SubmittedSeq = 0
	reply.DroppedOldest = false
	return nil
}

// Stats implements Handler.
func (h *ServiceHandler) Stats(link string) ([]LinkStats, error) {
	all := h.svc.Links() // sorted by id
	out := make([]LinkStats, 0, len(all))
	for _, st := range all {
		if link != "" && st.ID != link {
			continue
		}
		out = append(out, LinkStats{
			ID: st.ID, Served: st.Served, Dropped: st.Dropped, Pending: st.Pending,
			LastAge: st.LastAge, MeanAge: st.MeanAge, MaxAge: st.MaxAge, OpenedAt: st.OpenedAt,
		})
	}
	if link != "" && len(out) == 0 {
		return nil, Errf(StatusNoEstimate, "link %q not open", link)
	}
	return out, nil
}

// Metrics implements Handler.
func (h *ServiceHandler) Metrics() (MetricsReply, error) {
	m := h.svc.Metrics()
	return MetricsReply{
		FramesSubmitted: m.FramesSubmitted,
		FramesDropped:   m.FramesDropped,
		FramesInferred:  m.FramesInferred,
		Batches:         m.Batches,
		LastSeq:         m.LastSeq,
		EstimatesServed: m.EstimatesServed,
		MeanBatch:       m.MeanBatch,
		InferMean:       m.InferMean,
		InferMeanFrame:  m.InferMeanFrame,
		InferMax:        m.InferMax,
		AgeP50:          m.AgeP50,
		AgeP99:          m.AgeP99,
		QueueLen:        m.QueueLen,
		QueueCap:        m.QueueCap,
		ActiveLinks:     m.ActiveLinks,
		InferMode:       m.InferMode,
		Err:             m.Err,
	}, nil
}

// Ping implements Handler. Inflight is filled by the wire server.
func (h *ServiceHandler) Ping() (PongReply, error) {
	m := h.svc.Metrics()
	if m.Err != "" {
		return PongReply{}, Errf(StatusUnavailable, "estimator failed: %s", m.Err)
	}
	return PongReply{
		QueueLen:        m.QueueLen,
		ActiveLinks:     m.ActiveLinks,
		EstimatesServed: m.EstimatesServed,
	}, nil
}

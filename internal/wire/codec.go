package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"
)

// Decoder sanity limits: a corrupt or hostile length field is rejected
// before any allocation larger than these bounds, and every slice count
// is checked against the bytes actually present in the frame.
const (
	DefaultMaxFrame = 16 << 20 // bytes in one message frame
	maxLinkID       = 1024     // bytes in a link id
	maxCIRTaps      = 4096     // complex taps per estimate (matches the store)
	maxImagePixels  = 1 << 22  // float32 pixels per frame image
	maxStatsEntries = 1 << 20  // sessions in one stats reply
)

const (
	frameHeaderLen = 12                 // type + status + reserved + request id
	frameMinLen    = frameHeaderLen + 4 // header + trailing CRC
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeader is the fixed part of every decoded message.
type frameHeader struct {
	Type   byte
	Status Status
	ReqID  uint64
}

// nativeLittleEndian gates the memcpy fast path for bulk float payloads
// (same idiom as the campaign store codec). The unsafe byte views are
// always taken of the *typed* slice's backing array, so alignment is
// preserved and the conversion is checkptr-clean; big-endian hosts fall
// back to the portable per-value loop.
var nativeLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func f32Bytes(v []float32) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
}

func c64Bytes(v []complex64) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))
}

// ---- encode primitives ----

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// appendString appends a u16 length prefix plus the bytes. Callers
// validate length (link ids ≤ maxLinkID); longer strings are truncated
// defensively rather than corrupting the frame.
func appendString(b []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

// appendF32s appends a u32 count plus the raw little-endian payload —
// one memcpy on little-endian hosts.
func appendF32s(b []byte, v []float32) []byte {
	b = appendU32(b, uint32(len(v)))
	if len(v) == 0 {
		return b
	}
	if nativeLittleEndian {
		return append(b, f32Bytes(v)...)
	}
	for _, f := range v {
		b = appendU32(b, math.Float32bits(f))
	}
	return b
}

// appendC64s appends a u32 tap count plus interleaved re,im float32
// pairs — one memcpy on little-endian hosts.
func appendC64s(b []byte, v []complex64) []byte {
	b = appendU32(b, uint32(len(v)))
	if len(v) == 0 {
		return b
	}
	if nativeLittleEndian {
		return append(b, c64Bytes(v)...)
	}
	for _, c := range v {
		b = appendU32(b, math.Float32bits(real(c)))
		b = appendU32(b, math.Float32bits(imag(c)))
	}
	return b
}

// beginFrame starts a message frame in b (reusing its capacity): length
// placeholder, header, ready for payload appends.
func beginFrame(b []byte, typ byte, status Status, reqID uint64) []byte {
	b = append(b[:0], 0, 0, 0, 0) // length, patched by finishFrame
	b = append(b, typ, byte(status), 0, 0)
	return appendU64(b, reqID)
}

// finishFrame patches the length field and appends the CRC-32C. The
// returned slice is the complete frame, ready for one Write.
func finishFrame(b []byte) []byte {
	binary.LittleEndian.PutUint32(b[:4], uint32(len(b))) // L = header+payload+crc = len-4+4
	crc := crc32.Checksum(b[4:], castagnoli)
	return appendU32(b, crc)
}

// readFrame reads one message frame: length, bounded read into buf
// (grown as needed and returned for reuse), CRC verification, header
// parse. The returned payload aliases buf — callers must fully consume
// (or copy from) it before the next readFrame on the same buffer.
func readFrame(r io.Reader, buf []byte, maxFrame int) (frameHeader, []byte, []byte, error) {
	var hdr frameHeader
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return hdr, nil, buf, err // io.EOF here = clean close between frames
	}
	frameLen := int(binary.LittleEndian.Uint32(lenb[:]))
	if frameLen < frameMinLen {
		return hdr, nil, buf, fmt.Errorf("wire: frame length %d below minimum %d", frameLen, frameMinLen)
	}
	if frameLen > maxFrame {
		return hdr, nil, buf, fmt.Errorf("wire: frame length %d exceeds limit %d", frameLen, maxFrame)
	}
	if cap(buf) < frameLen {
		buf = make([]byte, frameLen)
	}
	buf = buf[:frameLen]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return hdr, nil, buf, fmt.Errorf("wire: truncated frame: %w", err)
	}
	body, crcb := buf[:frameLen-4], buf[frameLen-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(crcb); got != want {
		return hdr, nil, buf, fmt.Errorf("wire: frame CRC mismatch: computed %08x, stored %08x", got, want)
	}
	hdr.Type = body[0]
	hdr.Status = Status(body[1])
	if body[2] != 0 || body[3] != 0 {
		return hdr, nil, buf, fmt.Errorf("wire: nonzero reserved header bytes")
	}
	hdr.ReqID = binary.LittleEndian.Uint64(body[4:12])
	return hdr, body[frameHeaderLen:], buf, nil
}

// writePreface / readPreface exchange the magic+version handshake.
func writePreface(w io.Writer) error {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], Magic)
	binary.LittleEndian.PutUint32(b[4:], Version)
	_, err := w.Write(b[:])
	return err
}

func readPreface(r io.Reader) error {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return fmt.Errorf("wire: reading preface: %w", err)
	}
	if got := binary.LittleEndian.Uint32(b[:4]); got != Magic {
		return fmt.Errorf("wire: bad preface magic %08x (not a vvd wire peer?)", got)
	}
	if got := binary.LittleEndian.Uint32(b[4:]); got != Version {
		return fmt.Errorf("wire: protocol version %d, this build speaks %d", got, Version)
	}
	return nil
}

// ---- decode cursor ----

// cursor walks a frame payload with sticky error handling: after the
// first failure every getter returns zero values and the error is
// collected once by done(). Slice getters validate the count against
// the bytes remaining before allocating — a hostile count cannot make
// the decoder allocate more than the frame actually carries.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (c *cursor) need(n int) bool {
	if c.err != nil {
		return false
	}
	if len(c.b)-c.off < n {
		c.fail("payload truncated: need %d bytes at offset %d, have %d", n, c.off, len(c.b)-c.off)
		return false
	}
	return true
}

func (c *cursor) u8() byte {
	if !c.need(1) {
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u16() uint16 {
	if !c.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v
}

func (c *cursor) u32() uint32 {
	if !c.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if !c.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) str(max int) string {
	n := int(c.u16())
	if c.err != nil {
		return ""
	}
	if n > max {
		c.fail("string length %d exceeds limit %d", n, max)
		return ""
	}
	if !c.need(n) {
		return ""
	}
	s := string(c.b[c.off : c.off+n])
	c.off += n
	return s
}

// f32s decodes a float32 slice into dst's capacity (allocating only on
// growth). The count is bounds-checked against both the explicit limit
// and the remaining payload before any allocation.
func (c *cursor) f32s(max int, dst []float32) []float32 {
	n := int(c.u32())
	if c.err != nil {
		return dst[:0]
	}
	if n > max {
		c.fail("float32 count %d exceeds limit %d", n, max)
		return dst[:0]
	}
	if !c.need(4 * n) {
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	raw := c.b[c.off : c.off+4*n]
	c.off += 4 * n
	if n == 0 {
		return dst
	}
	if nativeLittleEndian {
		copy(f32Bytes(dst), raw)
	} else {
		for i := range dst {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
	}
	return dst
}

// c64s decodes a complex64 slice into dst's capacity; same bounds
// discipline as f32s.
func (c *cursor) c64s(max int, dst []complex64) []complex64 {
	n := int(c.u32())
	if c.err != nil {
		return dst[:0]
	}
	if n > max {
		c.fail("CIR tap count %d exceeds limit %d", n, max)
		return dst[:0]
	}
	if !c.need(8 * n) {
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]complex64, n)
	}
	dst = dst[:n]
	raw := c.b[c.off : c.off+8*n]
	c.off += 8 * n
	if n == 0 {
		return dst
	}
	if nativeLittleEndian {
		copy(c64Bytes(dst), raw)
	} else {
		for i := range dst {
			re := math.Float32frombits(binary.LittleEndian.Uint32(raw[8*i:]))
			im := math.Float32frombits(binary.LittleEndian.Uint32(raw[8*i+4:]))
			dst[i] = complex(re, im)
		}
	}
	return dst
}

// done returns the collected error, or an error if payload bytes
// remain unconsumed (a well-formed peer never pads).
func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.b) {
		return fmt.Errorf("wire: %d trailing bytes after payload", len(c.b)-c.off)
	}
	return nil
}

package wire

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"time"
)

// encodeFrame builds one complete frame the way client and server do.
func encodeFrame(typ byte, status Status, reqID uint64, enc func([]byte) []byte) []byte {
	b := beginFrame(nil, typ, status, reqID)
	if enc != nil {
		b = enc(b)
	}
	return finishFrame(b)
}

func decodeOneFrame(t *testing.T, frame []byte) (frameHeader, []byte) {
	t.Helper()
	hdr, payload, _, err := readFrame(bytes.NewReader(frame), nil, DefaultMaxFrame)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	return hdr, payload
}

func TestFrameRoundTrip(t *testing.T) {
	img := make([]float32, 64)
	for i := range img {
		img[i] = float32(i) * 0.25
	}
	frame := encodeFrame(TypeSubmit, StatusOK, 42, func(b []byte) []byte {
		return appendSubmitPayload(b, "cam-7", img, 1500*time.Millisecond)
	})
	hdr, payload := decodeOneFrame(t, frame)
	if hdr.Type != TypeSubmit || hdr.Status != StatusOK || hdr.ReqID != 42 {
		t.Fatalf("header = %+v", hdr)
	}
	var req SubmitRequest
	if err := parseSubmitPayload(payload, &req); err != nil {
		t.Fatal(err)
	}
	if req.Link != "cam-7" || req.Wait != 1500*time.Millisecond {
		t.Fatalf("req = %+v", req)
	}
	if len(req.Image) != len(img) {
		t.Fatalf("image length %d, want %d", len(req.Image), len(img))
	}
	for i := range img {
		if req.Image[i] != img[i] { //vvdlint:bitexact -- codec round-trip is bitwise by contract
			t.Fatalf("pixel %d = %v, want %v", i, req.Image[i], img[i])
		}
	}
}

func TestFrameStreamCarriesMultipleMessages(t *testing.T) {
	var stream bytes.Buffer
	for id := uint64(1); id <= 5; id++ {
		stream.Write(encodeFrame(TypePing, StatusOK, id, nil))
	}
	r := bytes.NewReader(stream.Bytes())
	var buf []byte
	for id := uint64(1); id <= 5; id++ {
		hdr, payload, nbuf, err := readFrame(r, buf, DefaultMaxFrame)
		buf = nbuf
		if err != nil {
			t.Fatalf("frame %d: %v", id, err)
		}
		if hdr.ReqID != id || hdr.Type != TypePing || len(payload) != 0 {
			t.Fatalf("frame %d: hdr=%+v payload=%d", id, hdr, len(payload))
		}
	}
	if _, _, _, err := readFrame(r, buf, DefaultMaxFrame); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsCorruption(t *testing.T) {
	valid := encodeFrame(TypeFetch, StatusOK, 9, func(b []byte) []byte {
		return appendLinkPayload(b, "link-1")
	})
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		substr  string
		wantEOF bool
	}{
		{name: "bit flip in payload", substr: "CRC mismatch",
			mutate: func(f []byte) []byte { f[len(f)/2] ^= 0x10; return f }},
		{name: "bit flip in crc", substr: "CRC mismatch",
			mutate: func(f []byte) []byte { f[len(f)-1] ^= 0x01; return f }},
		{name: "truncated mid-frame", substr: "truncated frame",
			mutate: func(f []byte) []byte { return f[:len(f)-3] }},
		{name: "truncated length field", wantEOF: true,
			mutate: func(f []byte) []byte { return f[:2] }},
		{name: "length below minimum", substr: "below minimum",
			mutate: func(f []byte) []byte { f[0], f[1], f[2], f[3] = 3, 0, 0, 0; return f }},
		{name: "length above limit", substr: "exceeds limit",
			mutate: func(f []byte) []byte { f[0], f[1], f[2], f[3] = 0xFF, 0xFF, 0xFF, 0x7F; return f }},
		{name: "nonzero reserved bytes", substr: "reserved",
			mutate: func(f []byte) []byte {
				f[6] = 1 // first reserved byte of the header
				// re-seal so only the reserved check can fire
				return finishFrame(f[:len(f)-4])
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame := tc.mutate(append([]byte(nil), valid...))
			_, _, _, err := readFrame(bytes.NewReader(frame), nil, DefaultMaxFrame)
			if tc.wantEOF {
				if err != io.ErrUnexpectedEOF {
					t.Fatalf("err = %v, want %v", err, io.ErrUnexpectedEOF)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("err = %v, want substring %q", err, tc.substr)
			}
		})
	}
}

func TestCursorRejectsHostileCounts(t *testing.T) {
	// A claimed image of maxImagePixels with only 8 payload bytes behind
	// it must fail before allocating anything near the claim.
	b := appendString(nil, "l")
	b = appendDur(b, 0)
	b = appendU32(b, maxImagePixels) // hostile count
	b = append(b, 0xDE, 0xAD, 0xBE, 0xEF)
	var req SubmitRequest
	err := parseSubmitPayload(b, &req)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("err = %v, want truncation", err)
	}
	if len(req.Image) != 0 {
		t.Fatalf("image decoded to %d pixels from a hostile count", len(req.Image))
	}

	// Over the hard limit is rejected even if the bytes were present.
	b = appendString(nil, "l")
	b = appendDur(b, 0)
	b = appendU32(b, maxImagePixels+1)
	err = parseSubmitPayload(b, &req)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("err = %v, want limit rejection", err)
	}
}

func TestCursorRejectsTrailingBytes(t *testing.T) {
	b := appendLinkPayload(nil, "link")
	b = append(b, 0x00)
	if _, err := parseLinkPayload(b); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("err = %v, want trailing-bytes rejection", err)
	}
}

func TestSubmitWaitClamping(t *testing.T) {
	var req SubmitRequest
	p := appendSubmitPayload(nil, "l", []float32{1}, 2*MaxWait)
	if err := parseSubmitPayload(p, &req); err != nil {
		t.Fatal(err)
	}
	if req.Wait != MaxWait {
		t.Fatalf("wait = %v, want clamp to %v", req.Wait, MaxWait)
	}
	p = appendSubmitPayload(nil, "l", []float32{1}, -5*time.Second)
	if err := parseSubmitPayload(p, &req); err != nil {
		t.Fatal(err)
	}
	if req.Wait != -1 {
		t.Fatalf("wait = %v, want clamp to -1", req.Wait)
	}
}

func TestEstimatePayloadRoundTrip(t *testing.T) {
	in := EstimateReply{
		FrameSeq:      77,
		SubmittedSeq:  75,
		DroppedOldest: true,
		Batch:         8,
		Age:           13 * time.Millisecond,
		Inference:     1600 * time.Microsecond,
		CIR:           []complex64{complex(1.5, -2.25), complex(0, 3), complex(-4.125, 0.5)},
	}
	p := appendEstimatePayload(nil, &in)
	var out EstimateReply
	if err := parseEstimatePayload(p, &out); err != nil {
		t.Fatal(err)
	}
	if out.FrameSeq != in.FrameSeq || out.SubmittedSeq != in.SubmittedSeq ||
		out.DroppedOldest != in.DroppedOldest || out.Batch != in.Batch ||
		out.Age != in.Age || out.Inference != in.Inference {
		t.Fatalf("out = %+v, want %+v", out, in)
	}
	if len(out.CIR) != len(in.CIR) {
		t.Fatalf("CIR length %d, want %d", len(out.CIR), len(in.CIR))
	}
	for i := range in.CIR {
		if out.CIR[i] != in.CIR[i] { //vvdlint:bitexact -- codec round-trip is bitwise by contract
			t.Fatalf("tap %d = %v, want %v", i, out.CIR[i], in.CIR[i])
		}
	}
}

func TestStatsPayloadRoundTrip(t *testing.T) {
	now := time.Unix(0, time.Now().UnixNano())
	in := []LinkStats{
		{ID: "a", Served: 10, Dropped: 1, Pending: 2,
			LastAge: time.Millisecond, MeanAge: 2 * time.Millisecond, MaxAge: 9 * time.Millisecond, OpenedAt: now},
		{ID: "b", Served: 3, OpenedAt: now.Add(-time.Minute)},
	}
	p := appendStatsReplyPayload(nil, in)
	out, err := parseStatsReplyPayload(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("entries = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if !out[i].OpenedAt.Equal(in[i].OpenedAt) {
			t.Fatalf("entry %d OpenedAt = %v, want %v", i, out[i].OpenedAt, in[i].OpenedAt)
		}
		out[i].OpenedAt = in[i].OpenedAt
		if out[i] != in[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestStatsPayloadRejectsHostileCount(t *testing.T) {
	p := appendU32(nil, 1<<19) // claim half a million sessions, carry none
	if _, err := parseStatsReplyPayload(p, nil); err == nil ||
		!strings.Contains(err.Error(), "too short") {
		t.Fatalf("err = %v, want too-short rejection", err)
	}
}

func TestMetricsPayloadRoundTrip(t *testing.T) {
	in := MetricsReply{
		FramesSubmitted: 100, FramesDropped: 3, FramesInferred: 97,
		Batches: 13, LastSeq: 100, EstimatesServed: 450,
		MeanBatch: 7.4615, InferMean: 1600 * time.Microsecond,
		InferMeanFrame: 200 * time.Microsecond, InferMax: 4 * time.Millisecond,
		AgeP50: 6 * time.Millisecond, AgeP99: 21 * time.Millisecond,
		QueueLen: 2, QueueCap: 8, ActiveLinks: 5,
		InferMode: "gemm+avx2", Err: "",
	}
	p := appendMetricsReplyPayload(nil, &in)
	var out MetricsReply
	if err := parseMetricsReplyPayload(p, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("out = %+v, want %+v", out, in)
	}
}

func TestPongPayloadRoundTrip(t *testing.T) {
	in := PongReply{QueueLen: 4, Inflight: 17, ActiveLinks: 300, EstimatesServed: 1 << 40}
	p := appendPongPayload(nil, &in)
	var out PongReply
	if err := parsePongPayload(p, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("out = %+v, want %+v", out, in)
	}
}

func TestErrorPayloadTruncatesLongMessages(t *testing.T) {
	long := strings.Repeat("x", maxErrorMsg+100)
	p := appendErrorPayload(nil, long)
	msg, err := parseErrorPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg) != maxErrorMsg {
		t.Fatalf("message length %d, want %d", len(msg), maxErrorMsg)
	}
}

func TestPrefaceRejectsWrongPeer(t *testing.T) {
	var good bytes.Buffer
	if err := writePreface(&good); err != nil {
		t.Fatal(err)
	}
	if err := readPreface(bytes.NewReader(good.Bytes())); err != nil {
		t.Fatalf("valid preface rejected: %v", err)
	}
	if err := readPreface(strings.NewReader("GET / HT")); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Fatalf("err = %v, want magic rejection", err)
	}
	bad := append([]byte(nil), good.Bytes()...)
	bad[4] = 99 // version
	if err := readPreface(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want version rejection", err)
	}
}

func TestFloatSlicesSurviveSpecialValues(t *testing.T) {
	in := []float32{0, float32(math.Inf(1)), float32(math.Inf(-1)), math.MaxFloat32, math.SmallestNonzeroFloat32}
	p := appendF32s(nil, in)
	c := cursor{b: p}
	out := c.f32s(maxImagePixels, nil)
	if err := c.done(); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if math.Float32bits(out[i]) != math.Float32bits(in[i]) {
			t.Fatalf("value %d: bits %08x, want %08x", i, math.Float32bits(out[i]), math.Float32bits(in[i]))
		}
	}
	// NaN must survive bit-exactly too.
	nan := []float32{float32(math.NaN())}
	p = appendF32s(nil, nan)
	c = cursor{b: p}
	out = c.f32s(maxImagePixels, out)
	if err := c.done(); err != nil {
		t.Fatal(err)
	}
	if math.Float32bits(out[0]) != math.Float32bits(nan[0]) {
		t.Fatalf("NaN bits %08x, want %08x", math.Float32bits(out[0]), math.Float32bits(nan[0]))
	}
}

package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ServerConfig parameterizes a wire Server.
type ServerConfig struct {
	// MaxFrame bounds one message frame. Default DefaultMaxFrame.
	MaxFrame int
	// MaxInflight bounds concurrently-handled requests across every
	// connection; a request arriving beyond the bound is answered
	// StatusOverloaded immediately (shed, never queued) — bounded
	// in-flight backpressure is what keeps an overloaded backend
	// degrading by shedding instead of by latency collapse. Default 256.
	MaxInflight int
	// PrefaceTimeout bounds the connection handshake. Default 5s.
	PrefaceTimeout time.Duration
}

func (c *ServerConfig) fill() {
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.PrefaceTimeout <= 0 {
		c.PrefaceTimeout = 5 * time.Second
	}
}

// Server speaks the wire protocol on accepted connections and forwards
// requests to a Handler. One goroutine reads each connection; each
// request is handled on its own goroutine (a Submit blocks until its
// estimate publishes), bounded by the server-wide in-flight cap.
type Server struct {
	h   Handler
	cfg ServerConfig

	inflight chan struct{}
	sheds    atomic.Uint64

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a Server fronting h.
func NewServer(h Handler, cfg ServerConfig) *Server {
	cfg.fill()
	return &Server{
		h:        h,
		cfg:      cfg,
		inflight: make(chan struct{}, cfg.MaxInflight),
		lns:      map[net.Listener]struct{}{},
		conns:    map[net.Conn]struct{}{},
	}
}

// Inflight reports the number of requests currently being handled.
func (s *Server) Inflight() int { return len(s.inflight) }

// Sheds reports how many requests were answered StatusOverloaded.
func (s *Server) Sheds() uint64 { return s.sheds.Load() }

// Listen starts serving on addr (":0" picks a port) and returns the
// bound address. Serving runs on background goroutines until Close.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Serve accepts connections on ln until Close (or a permanent accept
// failure) and handles each on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("wire: server closed")
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.lns, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops listeners, closes every connection and waits for all
// handler goroutines to finish. In-flight Submits unblock as soon as
// the Handler returns (close the underlying serve.Service first to cut
// their waits short).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// connWriter serializes response frames onto one connection, reusing a
// single encode buffer — steady-state writes allocate nothing.
type connWriter struct {
	mu  sync.Mutex
	c   net.Conn
	buf []byte
}

func (w *connWriter) send(typ byte, status Status, reqID uint64, enc func([]byte) []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	b := beginFrame(w.buf, typ, status, reqID)
	if enc != nil {
		b = enc(b)
	}
	b = finishFrame(b)
	w.buf = b
	_, _ = w.c.Write(b) // a failed write surfaces as the reader's error
}

func (w *connWriter) sendError(reqID uint64, code Status, msg string) {
	w.send(TypeError, code, reqID, func(b []byte) []byte { return appendErrorPayload(b, msg) })
}

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(s.cfg.PrefaceTimeout))
	if err := readPreface(conn); err != nil {
		return
	}
	if err := writePreface(conn); err != nil {
		return
	}
	_ = conn.SetDeadline(time.Time{})

	br := bufio.NewReaderSize(conn, 64<<10)
	w := &connWriter{c: conn}
	var reqWG sync.WaitGroup
	defer reqWG.Wait() // all in-flight replies written (or conn dead) before return
	var buf []byte
	for {
		hdr, payload, nbuf, err := readFrame(br, buf, s.cfg.MaxFrame)
		buf = nbuf
		if err != nil {
			// io.EOF between frames is a clean close; anything else —
			// truncation, CRC mismatch, oversize — drops the conn (a
			// byte stream with a broken frame boundary cannot recover).
			return
		}
		if hdr.Status != 0 {
			w.sendError(hdr.ReqID, StatusBadRequest, "nonzero status on a request")
			continue
		}
		// Parse fully before dispatch: payload aliases the read buffer,
		// which the next loop iteration overwrites.
		switch hdr.Type {
		case TypeSubmit:
			req := &SubmitRequest{}
			if perr := parseSubmitPayload(payload, req); perr != nil {
				w.sendError(hdr.ReqID, StatusBadRequest, perr.Error())
				continue
			}
			s.dispatch(w, &reqWG, hdr.ReqID, func(reply *EstimateReply) error {
				return s.h.Submit(req.Link, req.Image, req.Wait, reply)
			})
		case TypeFetch:
			link, perr := parseLinkPayload(payload)
			if perr != nil {
				w.sendError(hdr.ReqID, StatusBadRequest, perr.Error())
				continue
			}
			s.dispatch(w, &reqWG, hdr.ReqID, func(reply *EstimateReply) error {
				return s.h.Fetch(link, reply)
			})
		case TypeStats:
			link, perr := parseLinkPayload(payload)
			if perr != nil {
				w.sendError(hdr.ReqID, StatusBadRequest, perr.Error())
				continue
			}
			s.dispatchWith(w, &reqWG, hdr.ReqID, func(w *connWriter, reqID uint64) {
				stats, err := s.h.Stats(link)
				if err != nil {
					w.sendError(reqID, CodeOf(err), err.Error())
					return
				}
				w.send(TypeStatsReply, StatusOK, reqID, func(b []byte) []byte {
					return appendStatsReplyPayload(b, stats)
				})
			})
		case TypeMetrics:
			if len(payload) != 0 {
				w.sendError(hdr.ReqID, StatusBadRequest, "unexpected metrics payload")
				continue
			}
			s.dispatchWith(w, &reqWG, hdr.ReqID, func(w *connWriter, reqID uint64) {
				m, err := s.h.Metrics()
				if err != nil {
					w.sendError(reqID, CodeOf(err), err.Error())
					return
				}
				w.send(TypeMetricsReply, StatusOK, reqID, func(b []byte) []byte {
					return appendMetricsReplyPayload(b, &m)
				})
			})
		case TypePing:
			if len(payload) != 0 {
				w.sendError(hdr.ReqID, StatusBadRequest, "unexpected ping payload")
				continue
			}
			s.dispatchWith(w, &reqWG, hdr.ReqID, func(w *connWriter, reqID uint64) {
				pong, err := s.h.Ping()
				if err != nil {
					w.sendError(reqID, CodeOf(err), err.Error())
					return
				}
				pong.Inflight = len(s.inflight)
				w.send(TypePong, StatusOK, reqID, func(b []byte) []byte {
					return appendPongPayload(b, &pong)
				})
			})
		default:
			w.sendError(hdr.ReqID, StatusBadRequest, fmt.Sprintf("unknown message type 0x%02x", hdr.Type))
		}
	}
}

// dispatch runs an estimate-producing handler under the in-flight
// bound, shedding immediately when the bound is hit.
func (s *Server) dispatch(w *connWriter, wg *sync.WaitGroup, reqID uint64, run func(*EstimateReply) error) {
	s.dispatchWith(w, wg, reqID, func(w *connWriter, reqID uint64) {
		var reply EstimateReply
		if err := run(&reply); err != nil {
			w.sendError(reqID, CodeOf(err), err.Error())
			return
		}
		w.send(TypeEstimate, StatusOK, reqID, func(b []byte) []byte {
			return appendEstimatePayload(b, &reply)
		})
	})
}

func (s *Server) dispatchWith(w *connWriter, wg *sync.WaitGroup, reqID uint64, run func(*connWriter, uint64)) {
	select {
	case s.inflight <- struct{}{}:
	default:
		s.sheds.Add(1)
		w.sendError(reqID, StatusOverloaded, fmt.Sprintf("server at max in-flight requests (%d)", s.cfg.MaxInflight))
		return
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { <-s.inflight }()
		run(w, reqID)
	}()
}

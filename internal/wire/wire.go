// Package wire is the serving cluster's binary protocol: a compact,
// length-prefixed, CRC-32C-checksummed message format that replaces
// per-request HTTP/JSON between load generators, the shard router and
// vvd-serve backends.
//
// Why a second protocol: one JSON-encoded 4500-pixel depth frame is
// ~40 KiB of text to parse per request; the same frame on the wire is
// 4 bytes a pixel, decoded by one bounds check and one memcpy. At
// cluster rates the JSON codec *is* the workload (EXPERIMENTS.md pins
// the gap), so the binary layer is what makes a multi-backend tier
// worth building.
//
// Connection model. One TCP connection carries any number of link
// sessions concurrently: every request frame has a caller-chosen
// request id, responses come back whenever they are ready (possibly out
// of order), and the Client correlates them — many links per
// connection, full pipelining, no head-of-line blocking on the slow
// submit path. The Server bounds concurrently-handled requests
// (ServerConfig.MaxInflight) and sheds beyond the bound with
// StatusOverloaded instead of queueing — the 503-equivalent that keeps
// an overloaded backend shedding rather than collapsing.
//
// Frame layout (all integers little-endian, mirroring the campaign
// store codec):
//
//	preface, once per connection and direction:
//	  u32  magic "VVDW" (0x57445656) + u32 protocol version
//	message, any number, either direction:
//	  u32  length L of everything after this field (min 16)
//	  u8   message type        u8  status (responses; 0 on requests)
//	  u16  reserved (0)        u64 request id
//	  ...  payload (type-specific, see messages.go)
//	  u32  CRC-32C over the L-4 bytes starting at the type byte
//
// Every float32 slice (image, CIR) travels as a u32 count plus raw
// little-endian payload; on little-endian hosts encode and decode are
// single memcpys against the typed slice's own backing array. Length
// fields are validated against the remaining frame before any
// allocation, so a hostile length claim cannot over-allocate
// (FuzzWireDecode pins this).
package wire

import (
	"errors"
	"fmt"
	"time"
)

// Magic opens every connection in both directions; the bytes on the
// wire are 'V','V','D','W'.
const Magic = uint32(0x57445656)

// Version is the protocol revision spoken by this build. A peer with a
// different version is rejected at the preface.
const Version = uint32(1)

// MaxWait caps the server-side estimate wait a Submit may request; a
// longer wait is clamped, bounding how long a hostile client can park
// an in-flight slot.
const MaxWait = time.Minute

// Message types. Requests flow client→server, replies server→client.
const (
	TypeSubmit       = 0x01 // frame submission (flag bit 0: fire-and-forget)
	TypeFetch        = 0x02 // freshest estimate for a link
	TypeEstimate     = 0x03 // reply to Submit/Fetch
	TypeStats        = 0x04 // link statistics (empty link id = all links)
	TypeStatsReply   = 0x05
	TypeMetrics      = 0x06 // service counters
	TypeMetricsReply = 0x07
	TypePing         = 0x08 // health probe
	TypePong         = 0x09 // reply with load signals
	TypeError        = 0x0A // any request can fail; status + message
)

// Status is the response status carried in the frame header. StatusOK
// on success; on failure the response is a TypeError frame whose status
// says why, mirroring the HTTP layer's code mapping.
type Status uint8

const (
	StatusOK           Status = 0
	StatusBadRequest   Status = 1 // malformed frame or request (HTTP 400)
	StatusNoEstimate   Status = 2 // nothing published yet (HTTP 404)
	StatusNotReady     Status = 3 // estimate missed the wait budget (HTTP 504)
	StatusOverloaded   Status = 4 // shed by an in-flight bound (HTTP 503 + Retry-After)
	StatusUnavailable  Status = 5 // service closed / backend unreachable (HTTP 503)
	StatusTooManyLinks Status = 6 // session cap reached (HTTP 429)
	StatusInternal     Status = 7 // handler failure (HTTP 500)
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBadRequest:
		return "bad-request"
	case StatusNoEstimate:
		return "no-estimate"
	case StatusNotReady:
		return "not-ready"
	case StatusOverloaded:
		return "overloaded"
	case StatusUnavailable:
		return "unavailable"
	case StatusTooManyLinks:
		return "too-many-links"
	case StatusInternal:
		return "internal"
	}
	return fmt.Sprintf("status-%d", uint8(s))
}

// StatusError is the protocol-level error: a status code plus a
// human-readable message. The Client returns it for every non-OK reply;
// the shard router forwards it across hops unchanged, so the end client
// sees the backend's own verdict (an overloaded shard reads as
// StatusOverloaded end to end).
type StatusError struct {
	Code Status
	Msg  string
}

func (e *StatusError) Error() string { return fmt.Sprintf("wire: %s: %s", e.Code, e.Msg) }

// Errf builds a StatusError.
func Errf(code Status, format string, args ...any) error {
	return &StatusError{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the Status of an error: the StatusError code if it is
// one, StatusInternal otherwise.
func CodeOf(err error) Status {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code
	}
	return StatusInternal
}

// Handler is the service a wire Server fronts. NewServiceHandler adapts
// a serve.Service; the shard router implements Handler itself, which is
// what lets the router speak the same protocol downstream and upstream.
//
// Methods write their result into caller-owned reply structs (reusing
// slice capacity) and return nil, or return an error — a *StatusError
// to choose the response status, anything else maps to StatusInternal.
type Handler interface {
	// Submit ingests a frame for a link session and, when wait >= 0,
	// blocks until the frame's (or a newer) estimate is published and
	// fills reply with it. wait == 0 means the server default; wait < 0
	// is fire-and-forget: only SubmittedSeq/DroppedOldest are filled.
	Submit(link string, img []float32, wait time.Duration, reply *EstimateReply) error
	// Fetch fills reply with the freshest published estimate for a link.
	Fetch(link string, reply *EstimateReply) error
	// Stats returns per-session statistics: one entry for the given
	// link, or every open session (sorted by id) when link is empty.
	Stats(link string) ([]LinkStats, error)
	// Metrics returns the service counter snapshot.
	Metrics() (MetricsReply, error)
	// Ping returns load signals for health checks. The wire server
	// overwrites Inflight with its own in-flight request count.
	Ping() (PongReply, error)
}

// EstimateReply is one served estimate (TypeEstimate payload). CIR is
// complex64: the inference engine computes float32 (PR 6), so nothing
// real is lost, and a 11-tap estimate is 88 payload bytes.
type EstimateReply struct {
	FrameSeq      uint64
	SubmittedSeq  uint64
	DroppedOldest bool
	Batch         int
	Age           time.Duration // age of the served estimate at reply time
	Inference     time.Duration
	CIR           []complex64
}

// LinkStats is one session's statistics (TypeStatsReply entry),
// mirroring serve.LinkStats.
type LinkStats struct {
	ID       string
	Served   uint64
	Dropped  uint64
	Pending  int
	LastAge  time.Duration
	MeanAge  time.Duration
	MaxAge   time.Duration
	OpenedAt time.Time
}

// MetricsReply is the service counter snapshot (TypeMetricsReply),
// mirroring serve.Metrics. The router aggregates one per shard.
type MetricsReply struct {
	FramesSubmitted uint64
	FramesDropped   uint64
	FramesInferred  uint64
	Batches         uint64
	LastSeq         uint64
	EstimatesServed uint64
	MeanBatch       float64
	InferMean       time.Duration
	InferMeanFrame  time.Duration
	InferMax        time.Duration
	AgeP50          time.Duration
	AgeP99          time.Duration
	QueueLen        int
	QueueCap        int
	ActiveLinks     int
	InferMode       string
	Err             string
}

// PongReply carries the load signals a health checker reads (TypePong).
type PongReply struct {
	QueueLen        int    // frames waiting for inference
	Inflight        int    // requests currently being handled
	ActiveLinks     int    // open sessions
	EstimatesServed uint64 // monotone progress signal
}

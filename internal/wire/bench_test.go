package wire

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"vvd/internal/serve"
)

// benchImage matches the model's 4500-pixel depth frame (PR 6) — the
// payload the JSON-vs-binary comparison in EXPERIMENTS.md is about.
const benchPixels = 4500

func benchImg() []float32 {
	img := make([]float32, benchPixels)
	for i := range img {
		img[i] = float32(i%97) * 0.03125
	}
	return img
}

func BenchmarkWireEncodeSubmit(b *testing.B) {
	img := benchImg()
	var buf []byte
	b.ReportAllocs()
	b.SetBytes(benchPixels * 4)
	for i := 0; i < b.N; i++ {
		f := beginFrame(buf, TypeSubmit, StatusOK, uint64(i))
		f = appendSubmitPayload(f, "bench-link", img, 2*time.Second)
		buf = finishFrame(f)
	}
}

func BenchmarkWireDecodeSubmit(b *testing.B) {
	frame := encodeFrame(TypeSubmit, StatusOK, 1, func(p []byte) []byte {
		return appendSubmitPayload(p, "bench-link", benchImg(), 2*time.Second)
	})
	var req SubmitRequest
	var buf []byte
	b.ReportAllocs()
	b.SetBytes(benchPixels * 4)
	for i := 0; i < b.N; i++ {
		r := bytes.NewReader(frame)
		_, payload, nbuf, err := readFrame(r, buf, DefaultMaxFrame)
		buf = nbuf
		if err != nil {
			b.Fatal(err)
		}
		if err := parseSubmitPayload(payload, &req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeEstimate(b *testing.B) {
	est := EstimateReply{
		FrameSeq: 7, SubmittedSeq: 7, Batch: 8,
		Age: 3 * time.Millisecond, Inference: 1600 * time.Microsecond,
		CIR: make([]complex64, 11),
	}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := beginFrame(buf, TypeEstimate, StatusOK, uint64(i))
		f = appendEstimatePayload(f, &est)
		buf = finishFrame(f)
	}
}

func BenchmarkWireDecodeEstimate(b *testing.B) {
	in := EstimateReply{FrameSeq: 7, SubmittedSeq: 7, Batch: 8, CIR: make([]complex64, 11)}
	frame := encodeFrame(TypeEstimate, StatusOK, 1, func(p []byte) []byte {
		return appendEstimatePayload(p, &in)
	})
	var out EstimateReply
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := bytes.NewReader(frame)
		_, payload, nbuf, err := readFrame(r, buf, DefaultMaxFrame)
		buf = nbuf
		if err != nil {
			b.Fatal(err)
		}
		if err := parseEstimatePayload(payload, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireSubmitRoundTrip measures the full stack on loopback —
// client encode, server decode, stub inference, estimate reply — the
// number the JSON round-trip benchmark in internal/serve is compared to.
func BenchmarkWireSubmitRoundTrip(b *testing.B) {
	svc, err := serve.New(serve.Config{Estimator: &serve.StubEstimator{}, InputSize: benchPixels})
	if err != nil {
		b.Fatal(err)
	}
	server := NewServer(NewServiceHandler(svc), ServerConfig{})
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	client, err := Dial(addr.String(), ClientConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		client.Close()
		svc.Close()
		server.Close()
	}()
	img := benchImg()
	var reply EstimateReply
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Submit("bench", img, 5*time.Second, &reply); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireSubmitPipelined drives the same round trip from P
// concurrent link sessions over one connection — the multiplexing win
// that a request-per-connection protocol cannot have.
func BenchmarkWireSubmitPipelined(b *testing.B) {
	svc, err := serve.New(serve.Config{Estimator: &serve.StubEstimator{}, InputSize: benchPixels, QueueDepth: 64})
	if err != nil {
		b.Fatal(err)
	}
	server := NewServer(NewServiceHandler(svc), ServerConfig{})
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	client, err := Dial(addr.String(), ClientConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		client.Close()
		svc.Close()
		server.Close()
	}()
	img := benchImg()
	b.ReportAllocs()
	b.ResetTimer()
	var id atomic.Int32
	b.RunParallel(func(pb *testing.PB) {
		link := fmt.Sprintf("bench-%d", id.Add(1))
		var reply EstimateReply
		for pb.Next() {
			if err := client.Submit(link, img, 5*time.Second, &reply); err != nil {
				b.Fatal(err)
			}
		}
	})
}

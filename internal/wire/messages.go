package wire

import (
	"math"
	"time"
)

// Typed payload codecs, one append/parse pair per message type. Append
// functions write into a frame started by beginFrame (reusing the
// buffer's capacity); parse functions read a payload returned by
// readFrame into caller-owned structs, reusing slice capacity, with
// every length validated before allocation.

const maxErrorMsg = 4096

// durations travel as signed nanoseconds in a u64.
func appendDur(b []byte, d time.Duration) []byte { return appendU64(b, uint64(int64(d))) }

func (c *cursor) dur() time.Duration { return time.Duration(int64(c.u64())) }

// ---- Submit ----

// SubmitRequest is the decoded TypeSubmit payload. Wait < 0 is
// fire-and-forget; Wait == 0 asks for the server default.
type SubmitRequest struct {
	Link  string
	Wait  time.Duration
	Image []float32
}

func appendSubmitPayload(b []byte, link string, img []float32, wait time.Duration) []byte {
	b = appendString(b, link)
	b = appendDur(b, wait)
	return appendF32s(b, img)
}

func parseSubmitPayload(p []byte, req *SubmitRequest) error {
	c := cursor{b: p}
	req.Link = c.str(maxLinkID)
	req.Wait = c.dur()
	req.Image = c.f32s(maxImagePixels, req.Image)
	if req.Wait > MaxWait {
		req.Wait = MaxWait
	}
	if req.Wait < -1 {
		req.Wait = -1
	}
	return c.done()
}

// ---- Fetch / Stats requests (a bare link id) ----

func appendLinkPayload(b []byte, link string) []byte { return appendString(b, link) }

func parseLinkPayload(p []byte) (string, error) {
	c := cursor{b: p}
	link := c.str(maxLinkID)
	return link, c.done()
}

// ---- Estimate reply ----

const estFlagDropped = 1 << 0

func appendEstimatePayload(b []byte, e *EstimateReply) []byte {
	b = appendU64(b, e.FrameSeq)
	b = appendU64(b, e.SubmittedSeq)
	var flags byte
	if e.DroppedOldest {
		flags |= estFlagDropped
	}
	batch := e.Batch
	if batch < 0 || batch > 0xFFFF {
		batch = 0xFFFF
	}
	b = append(b, flags, 0)
	b = appendU16(b, uint16(batch))
	b = appendDur(b, e.Age)
	b = appendDur(b, e.Inference)
	return appendC64s(b, e.CIR)
}

func parseEstimatePayload(p []byte, e *EstimateReply) error {
	c := cursor{b: p}
	e.FrameSeq = c.u64()
	e.SubmittedSeq = c.u64()
	flags := c.u8()
	c.u8() // pad
	e.DroppedOldest = flags&estFlagDropped != 0
	e.Batch = int(c.u16())
	e.Age = c.dur()
	e.Inference = c.dur()
	e.CIR = c.c64s(maxCIRTaps, e.CIR)
	return c.done()
}

// ---- Stats reply ----

func appendStatsReplyPayload(b []byte, stats []LinkStats) []byte {
	b = appendU32(b, uint32(len(stats)))
	for i := range stats {
		st := &stats[i]
		b = appendString(b, st.ID)
		b = appendU64(b, st.Served)
		b = appendU64(b, st.Dropped)
		b = appendU32(b, uint32(st.Pending))
		b = appendDur(b, st.LastAge)
		b = appendDur(b, st.MeanAge)
		b = appendDur(b, st.MaxAge)
		b = appendU64(b, uint64(st.OpenedAt.UnixNano()))
	}
	return b
}

func parseStatsReplyPayload(p []byte, dst []LinkStats) ([]LinkStats, error) {
	c := cursor{b: p}
	n := int(c.u32())
	if n > maxStatsEntries {
		return dst[:0], c.failDone("stats entry count %d exceeds limit %d", n, maxStatsEntries)
	}
	// Each entry is ≥ 50 bytes; bound the allocation by what is present.
	if c.err == nil && len(p)-c.off < n*50 {
		return dst[:0], c.failDone("stats payload too short for %d entries", n)
	}
	dst = dst[:0]
	for i := 0; i < n && c.err == nil; i++ {
		var st LinkStats
		st.ID = c.str(maxLinkID)
		st.Served = c.u64()
		st.Dropped = c.u64()
		st.Pending = int(c.u32())
		st.LastAge = c.dur()
		st.MeanAge = c.dur()
		st.MaxAge = c.dur()
		st.OpenedAt = time.Unix(0, int64(c.u64()))
		dst = append(dst, st)
	}
	return dst, c.done()
}

// failDone records a failure and returns the collected error in one
// step (for parse paths that bail before the end of the payload).
func (c *cursor) failDone(format string, args ...any) error {
	c.fail(format, args...)
	return c.err
}

// ---- Metrics reply ----

func appendMetricsReplyPayload(b []byte, m *MetricsReply) []byte {
	b = appendU64(b, m.FramesSubmitted)
	b = appendU64(b, m.FramesDropped)
	b = appendU64(b, m.FramesInferred)
	b = appendU64(b, m.Batches)
	b = appendU64(b, m.LastSeq)
	b = appendU64(b, m.EstimatesServed)
	b = appendU64(b, math.Float64bits(m.MeanBatch))
	b = appendDur(b, m.InferMean)
	b = appendDur(b, m.InferMeanFrame)
	b = appendDur(b, m.InferMax)
	b = appendDur(b, m.AgeP50)
	b = appendDur(b, m.AgeP99)
	b = appendU32(b, uint32(m.QueueLen))
	b = appendU32(b, uint32(m.QueueCap))
	b = appendU32(b, uint32(m.ActiveLinks))
	b = appendString(b, m.InferMode)
	return appendString(b, m.Err)
}

func parseMetricsReplyPayload(p []byte, m *MetricsReply) error {
	c := cursor{b: p}
	m.FramesSubmitted = c.u64()
	m.FramesDropped = c.u64()
	m.FramesInferred = c.u64()
	m.Batches = c.u64()
	m.LastSeq = c.u64()
	m.EstimatesServed = c.u64()
	m.MeanBatch = c.f64()
	m.InferMean = c.dur()
	m.InferMeanFrame = c.dur()
	m.InferMax = c.dur()
	m.AgeP50 = c.dur()
	m.AgeP99 = c.dur()
	m.QueueLen = int(c.u32())
	m.QueueCap = int(c.u32())
	m.ActiveLinks = int(c.u32())
	m.InferMode = c.str(maxErrorMsg)
	m.Err = c.str(maxErrorMsg)
	return c.done()
}

// ---- Ping / Pong ----

func appendPongPayload(b []byte, p *PongReply) []byte {
	b = appendU32(b, uint32(p.QueueLen))
	b = appendU32(b, uint32(p.Inflight))
	b = appendU32(b, uint32(p.ActiveLinks))
	return appendU64(b, p.EstimatesServed)
}

func parsePongPayload(p []byte, pong *PongReply) error {
	c := cursor{b: p}
	pong.QueueLen = int(c.u32())
	pong.Inflight = int(c.u32())
	pong.ActiveLinks = int(c.u32())
	pong.EstimatesServed = c.u64()
	return c.done()
}

// ---- Error ----

func appendErrorPayload(b []byte, msg string) []byte {
	if len(msg) > maxErrorMsg {
		msg = msg[:maxErrorMsg]
	}
	return appendString(b, msg)
}

func parseErrorPayload(p []byte) (string, error) {
	c := cursor{b: p}
	msg := c.str(maxErrorMsg)
	return msg, c.done()
}

package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// ClientConfig parameterizes a wire Client.
type ClientConfig struct {
	// MaxFrame bounds one received frame. Default DefaultMaxFrame.
	MaxFrame int
	// DialTimeout bounds connection + preface. Default 5s.
	DialTimeout time.Duration
	// CallTimeout bounds fetch/stats/metrics/ping round trips and is
	// the grace added on top of a Submit's wait budget. Default 5s.
	CallTimeout time.Duration
}

func (c *ClientConfig) fill() {
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 5 * time.Second
	}
}

// Client is one multiplexed wire connection: any number of goroutines
// (one per link session, typically many) issue requests concurrently;
// request ids correlate the pipelined responses. All methods are safe
// for concurrent use. A transport failure kills the connection and
// fails every pending call; the owner (shard pool, load generator)
// redials.
type Client struct {
	cfg  ClientConfig
	conn net.Conn

	wmu  sync.Mutex
	wbuf []byte

	pmu     sync.Mutex
	pending map[uint64]*call
	nextID  uint64
	err     error // terminal transport error, set once
	done    chan struct{}
}

// call is one in-flight request: exactly one response decode target is
// non-nil, matching the expected reply type.
type call struct {
	ch      chan error
	est     *EstimateReply
	stats   *[]LinkStats
	metrics *MetricsReply
	pong    *PongReply
}

// Dial connects to a wire server and performs the preface handshake.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	conn, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	_ = conn.SetDeadline(time.Now().Add(cfg.DialTimeout))
	if err := writePreface(conn); err != nil {
		conn.Close()
		return nil, err
	}
	if err := readPreface(conn); err != nil {
		conn.Close()
		return nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	c := &Client{
		cfg:     cfg,
		conn:    conn,
		pending: map[uint64]*call{},
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Err returns the terminal transport error, or nil while the
// connection is healthy.
func (c *Client) Err() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.err
}

// Close tears down the connection; pending calls fail.
func (c *Client) Close() error {
	c.fail(fmt.Errorf("wire: client closed"))
	return nil
}

// fail terminates the client once: records err, closes the conn, fails
// every pending call.
func (c *Client) fail(err error) {
	c.pmu.Lock()
	if c.err != nil {
		c.pmu.Unlock()
		return
	}
	c.err = err
	pending := c.pending
	c.pending = map[uint64]*call{}
	close(c.done)
	c.pmu.Unlock()
	c.conn.Close()
	for _, cl := range pending {
		cl.ch <- err
	}
}

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var buf []byte
	for {
		hdr, payload, nbuf, err := readFrame(br, buf, c.cfg.MaxFrame)
		buf = nbuf
		if err != nil {
			c.fail(fmt.Errorf("wire: connection lost: %w", err))
			return
		}
		c.pmu.Lock()
		cl := c.pending[hdr.ReqID]
		delete(c.pending, hdr.ReqID)
		c.pmu.Unlock()
		if cl == nil {
			continue // reply for a timed-out call; drop
		}
		cl.ch <- c.decodeReply(hdr, payload, cl)
	}
}

// decodeReply decodes a response frame into the call's target struct.
func (c *Client) decodeReply(hdr frameHeader, payload []byte, cl *call) error {
	switch hdr.Type {
	case TypeError:
		msg, err := parseErrorPayload(payload)
		if err != nil {
			return err
		}
		return &StatusError{Code: hdr.Status, Msg: msg}
	case TypeEstimate:
		if cl.est == nil {
			return fmt.Errorf("wire: unexpected estimate reply")
		}
		return parseEstimatePayload(payload, cl.est)
	case TypeStatsReply:
		if cl.stats == nil {
			return fmt.Errorf("wire: unexpected stats reply")
		}
		var err error
		*cl.stats, err = parseStatsReplyPayload(payload, (*cl.stats)[:0])
		return err
	case TypeMetricsReply:
		if cl.metrics == nil {
			return fmt.Errorf("wire: unexpected metrics reply")
		}
		return parseMetricsReplyPayload(payload, cl.metrics)
	case TypePong:
		if cl.pong == nil {
			return fmt.Errorf("wire: unexpected pong reply")
		}
		return parsePongPayload(payload, cl.pong)
	}
	return fmt.Errorf("wire: unknown reply type 0x%02x", hdr.Type)
}

// roundTrip sends one request frame and waits for its reply (or the
// timeout, or connection death).
func (c *Client) roundTrip(typ byte, enc func([]byte) []byte, cl *call, timeout time.Duration) error {
	cl.ch = make(chan error, 1)
	c.pmu.Lock()
	if c.err != nil {
		err := c.err
		c.pmu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = cl
	c.pmu.Unlock()

	c.wmu.Lock()
	b := beginFrame(c.wbuf, typ, StatusOK, id)
	if enc != nil {
		b = enc(b)
	}
	b = finishFrame(b)
	c.wbuf = b
	_, werr := c.conn.Write(b)
	c.wmu.Unlock()
	if werr != nil {
		c.forget(id)
		c.fail(fmt.Errorf("wire: write failed: %w", werr))
		return c.Err()
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-cl.ch:
		return err
	case <-timer.C:
		c.forget(id)
		return Errf(StatusNotReady, "no reply for request %d within %v", id, timeout)
	}
}

func (c *Client) forget(id uint64) {
	c.pmu.Lock()
	delete(c.pending, id)
	c.pmu.Unlock()
}

// Submit sends a frame for a link session and fills reply with the
// resulting estimate. wait is the server-side estimate wait (0 = server
// default, capped at MaxWait); the client waits wait+CallTimeout for
// the reply. reply's CIR capacity is reused across calls.
func (c *Client) Submit(link string, img []float32, wait time.Duration, reply *EstimateReply) error {
	if wait < 0 {
		wait = 0
	}
	if wait > MaxWait {
		wait = MaxWait
	}
	cl := &call{est: reply}
	return c.roundTrip(TypeSubmit, func(b []byte) []byte {
		return appendSubmitPayload(b, link, img, wait)
	}, cl, wait+c.cfg.CallTimeout)
}

// SubmitNoWait sends a frame without waiting for its estimate — the
// camera-feeder path. Only SubmittedSeq/DroppedOldest come back.
func (c *Client) SubmitNoWait(link string, img []float32, reply *EstimateReply) error {
	cl := &call{est: reply}
	return c.roundTrip(TypeSubmit, func(b []byte) []byte {
		return appendSubmitPayload(b, link, img, -1)
	}, cl, c.cfg.CallTimeout)
}

// Fetch fills reply with the freshest estimate for a link session.
func (c *Client) Fetch(link string, reply *EstimateReply) error {
	cl := &call{est: reply}
	return c.roundTrip(TypeFetch, func(b []byte) []byte {
		return appendLinkPayload(b, link)
	}, cl, c.cfg.CallTimeout)
}

// Stats returns session statistics: the named link's, or every open
// session when link is empty. dst capacity is reused.
func (c *Client) Stats(link string, dst []LinkStats) ([]LinkStats, error) {
	cl := &call{stats: &dst}
	err := c.roundTrip(TypeStats, func(b []byte) []byte {
		return appendLinkPayload(b, link)
	}, cl, c.cfg.CallTimeout)
	return dst, err
}

// Metrics fetches the service counter snapshot.
func (c *Client) Metrics() (MetricsReply, error) {
	var m MetricsReply
	cl := &call{metrics: &m}
	err := c.roundTrip(TypeMetrics, nil, cl, c.cfg.CallTimeout)
	return m, err
}

// Ping probes liveness and load within the given budget (0 = the
// configured CallTimeout).
func (c *Client) Ping(timeout time.Duration) (PongReply, error) {
	if timeout <= 0 {
		timeout = c.cfg.CallTimeout
	}
	var p PongReply
	cl := &call{pong: &p}
	err := c.roundTrip(TypePing, nil, cl, timeout)
	return p, err
}

package wire

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// seedFrames builds the fuzz seed corpus: one valid frame per message
// type, plus the classic corruption shapes — truncations, bit flips,
// hostile length claims — mirroring the campaign store's FuzzOpenCampaign
// seeds. The same frames are committed under testdata/fuzz/FuzzWireDecode
// (regenerate with TestWriteFuzzCorpus).
func seedFrames() map[string][]byte {
	img := make([]float32, 32)
	for i := range img {
		img[i] = float32(i) * 0.5
	}
	est := EstimateReply{
		FrameSeq: 7, SubmittedSeq: 7, Batch: 8,
		Age: 3 * time.Millisecond, Inference: 1600 * time.Microsecond,
		CIR: []complex64{complex(1, -1), complex(2, -2), complex(3, -3)},
	}
	stats := []LinkStats{{
		ID: "cam-0", Served: 12, Dropped: 1, Pending: 2,
		LastAge: time.Millisecond, MeanAge: 2 * time.Millisecond,
		MaxAge: 5 * time.Millisecond, OpenedAt: time.Unix(0, 1700000000000000000),
	}}
	metrics := MetricsReply{
		FramesSubmitted: 100, FramesInferred: 97, Batches: 13, LastSeq: 100,
		EstimatesServed: 450, MeanBatch: 7.46, InferMean: 1600 * time.Microsecond,
		AgeP50: 6 * time.Millisecond, AgeP99: 21 * time.Millisecond,
		QueueLen: 2, QueueCap: 8, ActiveLinks: 5, InferMode: "stub",
	}
	pong := PongReply{QueueLen: 1, Inflight: 3, ActiveLinks: 5, EstimatesServed: 450}

	seeds := map[string][]byte{
		"submit": encodeFrame(TypeSubmit, StatusOK, 1, func(b []byte) []byte {
			return appendSubmitPayload(b, "cam-0", img, 2*time.Second)
		}),
		"fetch": encodeFrame(TypeFetch, StatusOK, 2, func(b []byte) []byte {
			return appendLinkPayload(b, "cam-0")
		}),
		"estimate": encodeFrame(TypeEstimate, StatusOK, 1, func(b []byte) []byte {
			return appendEstimatePayload(b, &est)
		}),
		"stats_reply": encodeFrame(TypeStatsReply, StatusOK, 3, func(b []byte) []byte {
			return appendStatsReplyPayload(b, stats)
		}),
		"metrics_reply": encodeFrame(TypeMetricsReply, StatusOK, 4, func(b []byte) []byte {
			return appendMetricsReplyPayload(b, &metrics)
		}),
		"pong": encodeFrame(TypePong, StatusOK, 5, nil),
		"pong_payload": encodeFrame(TypePong, StatusOK, 5, func(b []byte) []byte {
			return appendPongPayload(b, &pong)
		}),
		"error": encodeFrame(TypeError, StatusOverloaded, 6, func(b []byte) []byte {
			return appendErrorPayload(b, "server at max in-flight requests (256)")
		}),
	}

	submit := seeds["submit"]
	truncated := append([]byte(nil), submit[:len(submit)*2/3]...)
	seeds["submit_truncated"] = truncated
	flipped := append([]byte(nil), submit...)
	flipped[len(flipped)/2] ^= 0x40
	seeds["submit_bitflip"] = flipped
	bogus := append([]byte(nil), submit...)
	bogus[0], bogus[1], bogus[2], bogus[3] = 0xFF, 0xFF, 0xFF, 0xFF
	seeds["bogus_length"] = bogus
	// A frame whose payload claims far more pixels than it carries.
	hostile := beginFrame(nil, TypeSubmit, StatusOK, 9)
	hostile = appendString(hostile, "l")
	hostile = appendDur(hostile, 0)
	hostile = appendU32(hostile, maxImagePixels) // count with no bytes behind it
	seeds["hostile_count"] = finishFrame(hostile)
	seeds["empty"] = nil
	seeds["length_only"] = []byte{16, 0, 0, 0}
	return seeds
}

// FuzzWireDecode throws arbitrary bytes at the frame reader and every
// payload parser. The invariants: no panic, clean errors, and no
// allocation larger than the data actually present — a hostile count
// field cannot make any decoded slice outgrow its own frame.
func FuzzWireDecode(f *testing.F) {
	for _, data := range seedFrames() {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, payload, _, err := readFrame(bytes.NewReader(data), nil, DefaultMaxFrame)
		if err != nil {
			return // rejected before parsing; nothing to check
		}
		if len(payload) > len(data) {
			t.Fatalf("payload %d bytes from a %d-byte input", len(payload), len(data))
		}
		// Run the payload through every parser, not just the one matching
		// hdr.Type: the server and client both dispatch on the type byte,
		// but a parser must stay safe on any payload.
		var req SubmitRequest
		if perr := parseSubmitPayload(payload, &req); perr == nil {
			if len(req.Image)*4 > len(payload) {
				t.Fatalf("decoded %d pixels from %d payload bytes", len(req.Image), len(payload))
			}
			if req.Wait > MaxWait || req.Wait < -1 {
				t.Fatalf("wait %v escaped clamping", req.Wait)
			}
		}
		if link, perr := parseLinkPayload(payload); perr == nil && len(link) > maxLinkID {
			t.Fatalf("link id %d bytes past the limit", len(link))
		}
		var est EstimateReply
		if perr := parseEstimatePayload(payload, &est); perr == nil {
			if len(est.CIR)*8 > len(payload) {
				t.Fatalf("decoded %d taps from %d payload bytes", len(est.CIR), len(payload))
			}
		}
		if stats, perr := parseStatsReplyPayload(payload, nil); perr == nil {
			if len(stats)*50 > len(payload)+50 {
				t.Fatalf("decoded %d stats entries from %d payload bytes", len(stats), len(payload))
			}
		}
		var m MetricsReply
		_ = parseMetricsReplyPayload(payload, &m)
		var pong PongReply
		_ = parsePongPayload(payload, &pong)
		_, _ = parseErrorPayload(payload)
		_ = hdr
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus. Normally a
// no-op; run with VVD_WRITE_FUZZ_CORPUS=1 after changing the frame
// format (and bump Version when doing that).
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("VVD_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set VVD_WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz/FuzzWireDecode")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWireDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seedFrames() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, "seed_"+name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSeedCorpusMatchesCommittedFiles pins that the committed corpus
// files exist and still decode the way the generator intends — a drifted
// frame format with a stale corpus would silently fuzz the wrong bytes.
func TestSeedCorpusMatchesCommittedFiles(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzWireDecode")
	for name := range seedFrames() {
		p := filepath.Join(dir, "seed_"+name)
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing committed corpus file %s (regenerate with VVD_WRITE_FUZZ_CORPUS=1)", p)
		}
	}
}

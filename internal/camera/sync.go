package camera

import "math"

// Synchronizer implements the LED-blink packet↔frame matching of the
// paper's Fig. 3: packets arrive every ~100 ms while frames arrive every
// ~33 ms, so two frames can be candidates for the same packet. The
// transmitter blinks its LED during transmission; the blink is visible in
// exactly the frame whose exposure covers the transmit instant, resolving
// the ambiguity.
type Synchronizer struct {
	FrameRate float64 // frames per second
}

// NewSynchronizer returns a synchronizer at the camera frame rate.
func NewSynchronizer() *Synchronizer { return &Synchronizer{FrameRate: FrameRate} }

// FrameIndex returns the index of the frame whose exposure interval
// [i/fps, (i+1)/fps) contains the packet transmit time.
func (s *Synchronizer) FrameIndex(packetTime float64) int {
	if packetTime < 0 {
		return 0
	}
	return int(math.Floor(packetTime * s.FrameRate))
}

// CandidateFrames returns the two frames nearest the packet time (the
// ambiguity of Fig. 3) with the LED-resolved frame first.
func (s *Synchronizer) CandidateFrames(packetTime float64) (ledFrame, other int) {
	led := s.FrameIndex(packetTime)
	mid := (float64(led) + 0.5) / s.FrameRate
	if packetTime < mid && led > 0 {
		return led, led - 1
	}
	return led, led + 1
}

// FrameTime returns the exposure start time of frame i.
func (s *Synchronizer) FrameTime(i int) float64 {
	return float64(i) / s.FrameRate
}

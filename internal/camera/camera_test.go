package camera

import (
	"math"
	"testing"

	"vvd/internal/room"
)

func testCam() *Camera { return New(room.DefaultLab(), 90) }

func centerHuman() room.Human {
	return room.DefaultHuman(room.Vec3{X: 4, Y: 3})
}

func TestRenderDimensions(t *testing.T) {
	img := testCam().Render(centerHuman())
	if img.Rows != NativeRows || img.Cols != NativeCols {
		t.Fatalf("render %dx%d", img.Rows, img.Cols)
	}
}

func TestRenderDepthsWithinRange(t *testing.T) {
	cam := testCam()
	img := cam.Render(centerHuman())
	for i, p := range img.Pix {
		if p <= 0 || float64(p) > cam.MaxRange+1e-6 {
			t.Fatalf("pixel %d depth %v outside (0, %v]", i, p, cam.MaxRange)
		}
	}
}

func TestHumanVisibleInDepthImage(t *testing.T) {
	cam := testCam()
	with := cam.Render(centerHuman())
	without := cam.Render(room.DefaultHuman(room.Vec3{X: 4, Y: 3, Z: -100})) // far below floor: invisible
	changed := 0
	for i := range with.Pix {
		if math.Abs(float64(with.Pix[i]-without.Pix[i])) > 1e-6 {
			changed++
		}
	}
	if changed < 10 {
		t.Fatalf("human changed only %d pixels", changed)
	}
	// The human must appear closer than the background it occludes.
	for i := range with.Pix {
		if with.Pix[i] > without.Pix[i]+1e-4 {
			t.Fatalf("pixel %d deeper with human present", i)
		}
	}
}

func TestHumanPositionMovesSilhouette(t *testing.T) {
	cam := testCam()
	a := cam.Render(room.DefaultHuman(room.Vec3{X: 2.5, Y: 3}))
	b := cam.Render(room.DefaultHuman(room.Vec3{X: 5.5, Y: 3}))
	diff := 0
	for i := range a.Pix {
		if math.Abs(float64(a.Pix[i]-b.Pix[i])) > 1e-6 {
			diff++
		}
	}
	if diff < 20 {
		t.Fatalf("moving the human only changed %d pixels", diff)
	}
}

func TestCloserHumanLooksLarger(t *testing.T) {
	cam := testCam()
	bg := cam.Render(room.DefaultHuman(room.Vec3{X: 4, Y: 3, Z: -100}))
	count := func(h room.Human) int {
		img := cam.Render(h)
		n := 0
		for i := range img.Pix {
			if math.Abs(float64(img.Pix[i]-bg.Pix[i])) > 1e-6 {
				n++
			}
		}
		return n
	}
	near := count(room.DefaultHuman(room.Vec3{X: 4, Y: 1.5}))
	far := count(room.DefaultHuman(room.Vec3{X: 4, Y: 4.5}))
	if near <= far {
		t.Fatalf("near human %d px should exceed far human %d px", near, far)
	}
}

func TestRenderDeterministic(t *testing.T) {
	cam := testCam()
	a := cam.Render(centerHuman())
	b := cam.Render(centerHuman())
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] { //vvdlint:bitexact -- render parity is bitwise by contract
			t.Fatal("render not deterministic")
		}
	}
}

func TestRenderPreprocessedShape(t *testing.T) {
	img := testCam().RenderPreprocessed(centerHuman())
	if img.Rows != CropRows || img.Cols != CropCols {
		t.Fatalf("preprocessed %dx%d want %dx%d", img.Rows, img.Cols, CropRows, CropCols)
	}
}

func TestCropMatchesNativeRegion(t *testing.T) {
	cam := testCam()
	native := cam.Render(centerHuman())
	crop, err := native.Crop(CropTop, CropLeft, CropRows, CropCols)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < CropRows; r++ {
		for c := 0; c < CropCols; c++ {
			if crop.At(r, c) != native.At(r+CropTop, c+CropLeft) { //vvdlint:bitexact -- render parity is bitwise by contract
				t.Fatalf("crop (%d,%d) mismatch", r, c)
			}
		}
	}
}

func TestCropOutOfBounds(t *testing.T) {
	img := NewDepth(10, 10)
	if _, err := img.Crop(5, 5, 10, 10); err == nil {
		t.Fatal("out-of-bounds crop accepted")
	}
	if _, err := img.Crop(-1, 0, 5, 5); err == nil {
		t.Fatal("negative crop accepted")
	}
}

func TestNormalizedRange(t *testing.T) {
	img := NewDepth(2, 2)
	img.Pix = []float32{0, 6, 12, 24}
	n := img.Normalized(12)
	want := []float64{0, 0.5, 1, 1}
	for i := range want {
		if math.Abs(n[i]-want[i]) > 1e-9 {
			t.Fatalf("n[%d] = %v want %v", i, n[i], want[i])
		}
	}
}

func TestDepthAtSet(t *testing.T) {
	img := NewDepth(3, 4)
	img.Set(2, 3, 7.5)
	if img.At(2, 3) != 7.5 {
		t.Fatal("At/Set round trip failed")
	}
}

func TestHumanDepthApproximatesDistance(t *testing.T) {
	// The nearest human pixel should be ≈ camera-to-cylinder distance.
	cam := testCam()
	h := centerHuman()
	bg := cam.Render(room.DefaultHuman(room.Vec3{X: 4, Y: 3, Z: -100}))
	img := cam.Render(h)
	nearest := math.Inf(1)
	for i := range img.Pix {
		if math.Abs(float64(img.Pix[i]-bg.Pix[i])) > 1e-6 {
			if d := float64(img.Pix[i]); d < nearest {
				nearest = d
			}
		}
	}
	axisDist := math.Hypot(h.Pos.X-cam.Pos.X, h.Pos.Y-cam.Pos.Y)
	if nearest > axisDist || nearest < axisDist-h.Radius-2 {
		t.Fatalf("nearest human depth %v vs axis distance %v", nearest, axisDist)
	}
}

func TestRayBoxEnterMisses(t *testing.T) {
	// Ray pointing away from the box.
	if _, ok := rayBoxEnter(room.Vec3{X: -1}, room.Vec3{X: -1}, room.Vec3{}, room.Vec3{X: 1, Y: 1, Z: 1}); ok {
		t.Fatal("ray away from box reported hit")
	}
}

func TestRayBoxEnterHits(t *testing.T) {
	tHit, ok := rayBoxEnter(room.Vec3{X: -2, Y: 0.5, Z: 0.5}, room.Vec3{X: 1}, room.Vec3{}, room.Vec3{X: 1, Y: 1, Z: 1})
	if !ok || math.Abs(tHit-2) > 1e-9 {
		t.Fatalf("hit = %v,%v want 2,true", tHit, ok)
	}
}

func TestRayCylinderSideAndCap(t *testing.T) {
	h := room.Human{Pos: room.Vec3{X: 0, Y: 0}, Radius: 0.5, Height: 2}
	// Horizontal ray at mid height hits the side at x = −0.5.
	tHit, ok := rayCylinder(room.Vec3{X: -3, Y: 0, Z: 1}, room.Vec3{X: 1}, h)
	if !ok || math.Abs(tHit-2.5) > 1e-9 {
		t.Fatalf("side hit = %v,%v want 2.5,true", tHit, ok)
	}
	// Downward ray above the cap hits at z = 2.
	tHit, ok = rayCylinder(room.Vec3{X: 0, Y: 0, Z: 5}, room.Vec3{Z: -1}, h)
	if !ok || math.Abs(tHit-3) > 1e-9 {
		t.Fatalf("cap hit = %v,%v want 3,true", tHit, ok)
	}
	// Ray passing beside the cylinder misses.
	if _, ok := rayCylinder(room.Vec3{X: -3, Y: 2, Z: 1}, room.Vec3{X: 1}, h); ok {
		t.Fatal("miss reported as hit")
	}
}

func TestSynchronizerFrameIndex(t *testing.T) {
	s := NewSynchronizer()
	if s.FrameIndex(0) != 0 {
		t.Fatal("t=0 must map to frame 0")
	}
	// 100 ms packets: packet k at t = 0.1k → frame 3k.
	if got := s.FrameIndex(0.1); got != 3 {
		t.Fatalf("frame(0.1) = %d want 3", got)
	}
	if got := s.FrameIndex(0.5); got != 15 {
		t.Fatalf("frame(0.5) = %d want 15", got)
	}
	if s.FrameIndex(-1) != 0 {
		t.Fatal("negative time must clamp to 0")
	}
}

func TestSynchronizerCandidates(t *testing.T) {
	s := NewSynchronizer()
	led, other := s.CandidateFrames(0.105) // early in frame 3's exposure
	if led != 3 {
		t.Fatalf("led frame = %d want 3", led)
	}
	if other != 2 && other != 4 {
		t.Fatalf("other frame = %d want neighbour of 3", other)
	}
	if led == other {
		t.Fatal("candidates must differ")
	}
}

func TestSynchronizerFrameTime(t *testing.T) {
	s := NewSynchronizer()
	if math.Abs(s.FrameTime(30)-1.0) > 1e-9 {
		t.Fatal("frame 30 must start at t=1s")
	}
}

func TestSynchronizerRoundTrip(t *testing.T) {
	s := NewSynchronizer()
	for i := 0; i < 100; i++ {
		tm := s.FrameTime(i) + 0.001
		if got := s.FrameIndex(tm); got != i {
			t.Fatalf("round trip frame %d → %d", i, got)
		}
	}
}

// Package camera simulates the RGB-D surveillance camera of the paper's
// testbed (a wall-mounted Stereolabs ZED at 30 fps): a pinhole depth
// renderer over the room geometry (walls, static furniture boxes, one
// cylinder per mobile occupant), the Fig. 7 preprocessing pipeline (downsample by
// 10, crop to 50×90) and the LED-blink frame↔packet synchronization.
package camera

import (
	"fmt"
	"math"

	"vvd/internal/room"
)

// Native render resolution: the paper's 720×1080 frames are downsampled by
// 10 to 72×108 before cropping; rendering directly at the downsampled
// resolution is equivalent for a synthetic scene.
const (
	NativeRows = 72
	NativeCols = 108
	// Crop window (Fig. 7): keep the region where mobility can appear.
	CropRows = 50
	CropCols = 90
	CropTop  = 12 // rows removed from the top (ceiling area)
	CropLeft = 9  // columns removed from each side

	// FrameRate of the camera in frames per second.
	FrameRate = 30.0
	// FrameInterval between consecutive frames in seconds (≈33.3 ms).
	FrameInterval = 1.0 / FrameRate
)

// Depth is a single-channel depth image in metres.
type Depth struct {
	Rows, Cols int
	Pix        []float32 // row-major, Rows*Cols entries
}

// NewDepth allocates a zero depth image.
func NewDepth(rows, cols int) *Depth {
	return &Depth{Rows: rows, Cols: cols, Pix: make([]float32, rows*cols)}
}

// At returns the depth at (r, c).
func (d *Depth) At(r, c int) float32 { return d.Pix[r*d.Cols+c] }

// Set writes the depth at (r, c).
func (d *Depth) Set(r, c int, v float32) { d.Pix[r*d.Cols+c] = v }

// Crop returns the sub-image with the given top-left corner and size.
func (d *Depth) Crop(top, left, rows, cols int) (*Depth, error) {
	if top < 0 || left < 0 || top+rows > d.Rows || left+cols > d.Cols {
		return nil, fmt.Errorf("camera: crop %dx%d@(%d,%d) outside %dx%d image",
			rows, cols, top, left, d.Rows, d.Cols)
	}
	out := NewDepth(rows, cols)
	for r := 0; r < rows; r++ {
		copy(out.Pix[r*cols:(r+1)*cols], d.Pix[(top+r)*d.Cols+left:(top+r)*d.Cols+left+cols])
	}
	return out, nil
}

// Normalized returns the pixels scaled to [0, 1] by maxRange (values beyond
// clamp to 1), as float64 for the neural network input.
func (d *Depth) Normalized(maxRange float64) []float64 {
	out := make([]float64, len(d.Pix))
	for i, p := range d.Pix {
		v := float64(p) / maxRange
		if v > 1 {
			v = 1
		}
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// NormalizedF32 is Normalized producing the float32 pixels the dataset
// stores, without the intermediate float64 image: each value equals
// float32(v) for the corresponding Normalized output v.
func (d *Depth) NormalizedF32(maxRange float64) []float32 {
	out := make([]float32, len(d.Pix))
	for i, p := range d.Pix {
		v := float64(p) / maxRange
		if v > 1 {
			v = 1
		}
		if v < 0 {
			v = 0
		}
		out[i] = float32(v)
	}
	return out
}

// Box is an axis-aligned static obstacle (desk, PC tower, robot chassis).
type Box struct {
	Min, Max room.Vec3
}

// DefaultFurniture places boxes roughly matching the scatterer objects.
func DefaultFurniture(r *room.Room) []Box {
	return []Box{
		{Min: room.Vec3{X: 0.2, Y: 0.6, Z: 0}, Max: room.Vec3{X: 0.9, Y: 1.4, Z: 0.9}},
		{Min: room.Vec3{X: 0.2, Y: 4.6, Z: 0}, Max: room.Vec3{X: 0.9, Y: 5.4, Z: 0.9}},
		{Min: room.Vec3{X: 7.1, Y: 0.6, Z: 0}, Max: room.Vec3{X: 7.8, Y: 1.4, Z: 0.9}},
		{Min: room.Vec3{X: 3.6, Y: 5.3, Z: 0}, Max: room.Vec3{X: 4.4, Y: 5.9, Z: 0.6}},
	}
}

// Camera is a pinhole depth camera.
type Camera struct {
	Pos      room.Vec3
	forward  room.Vec3
	right    room.Vec3
	up       room.Vec3
	hfovDeg  float64
	tanHalfH float64
	tanHalfV float64

	Room *room.Room
	// Furniture and MaxRange are consumed by New when it precomputes the
	// static background depth below; mutating them after construction has
	// no effect on rendering.
	Furniture []Box
	// MaxRange saturates the depth sensor (ZED: ~20 m; the room is smaller).
	MaxRange float64

	// dirs holds the per-pixel ray directions and bg the static background
	// depth (room walls + furniture) along each of them, both precomputed
	// in New: only the human moves between frames, so a render is a copy
	// of the background plus one cylinder intersection per pixel.
	dirs []room.Vec3
	bg   []float64
}

// New creates a camera from the room's mounting pose with the given
// horizontal field of view in degrees.
func New(r *room.Room, hfovDeg float64) *Camera {
	fwd := r.CameraLook.Normalize()
	worldUp := room.Vec3{Z: 1}
	right := fwd.Cross(worldUp).Normalize()
	if right.Norm() == 0 {
		right = room.Vec3{X: 1}
	}
	up := right.Cross(fwd).Normalize()
	tanH := math.Tan(hfovDeg * math.Pi / 360)
	aspect := float64(NativeRows) / float64(NativeCols)
	c := &Camera{
		Pos:       r.Camera,
		forward:   fwd,
		right:     right,
		up:        up,
		hfovDeg:   hfovDeg,
		tanHalfH:  tanH,
		tanHalfV:  tanH * aspect,
		Room:      r,
		Furniture: DefaultFurniture(r),
		MaxRange:  12,
	}
	c.dirs = make([]room.Vec3, NativeRows*NativeCols)
	c.bg = make([]float64, NativeRows*NativeCols)
	for row := 0; row < NativeRows; row++ {
		// NDC y: +1 at top row.
		ny := 1 - 2*(float64(row)+0.5)/float64(NativeRows)
		for col := 0; col < NativeCols; col++ {
			nx := 2*(float64(col)+0.5)/float64(NativeCols) - 1
			dir := c.forward.
				Add(c.right.Scale(nx * c.tanHalfH)).
				Add(c.up.Scale(ny * c.tanHalfV)).
				Normalize()
			i := row*NativeCols + col
			c.dirs[i] = dir
			c.bg[i] = c.staticDepth(dir)
		}
	}
	return c
}

// Render produces the native-resolution depth image of the room with the
// human at the given position. The static scene depth is precomputed, so
// each render costs one cylinder intersection per pixel.
func (c *Camera) Render(h room.Human) *Depth {
	return c.RenderMulti([]room.Human{h})
}

// RenderMulti renders the room with any number of occupants: every body's
// cylinder competes for the nearest hit along each ray, so occupants
// occlude each other (and the furniture) correctly. One occupant is
// pixel-identical to Render; none renders the static background.
func (c *Camera) RenderMulti(hs []room.Human) *Depth {
	img := NewDepth(NativeRows, NativeCols)
	for i, dir := range c.dirs {
		best := c.bg[i]
		for _, h := range hs {
			if t, ok := rayCylinder(c.Pos, dir, h); ok && t < best {
				best = t
			}
		}
		img.Pix[i] = float32(best)
	}
	return img
}

// RenderPreprocessed renders with the Fig. 7 crop applied, casting only
// the rays inside the crop window (pixel-identical to Render followed by
// Crop, without the native-resolution intermediate).
func (c *Camera) RenderPreprocessed(h room.Human) *Depth {
	return c.RenderPreprocessedMulti([]room.Human{h})
}

// RenderPreprocessedMulti is RenderMulti with the Fig. 7 crop applied
// (pixel-identical to RenderMulti followed by Crop).
func (c *Camera) RenderPreprocessedMulti(hs []room.Human) *Depth {
	out := NewDepth(CropRows, CropCols)
	for r := 0; r < CropRows; r++ {
		src := (CropTop+r)*NativeCols + CropLeft
		dst := out.Pix[r*CropCols : (r+1)*CropCols]
		for col := range dst {
			i := src + col
			best := c.bg[i]
			for _, h := range hs {
				if t, ok := rayCylinder(c.Pos, c.dirs[i], h); ok && t < best {
					best = t
				}
			}
			dst[col] = float32(best)
		}
	}
	return out
}

// staticDepth intersects dir with the human-independent scene: the room
// interior and the furniture boxes, clamped to MaxRange.
func (c *Camera) staticDepth(dir room.Vec3) float64 {
	best := c.MaxRange
	if t, ok := rayBoxExit(c.Pos, dir, room.Vec3{}, room.Vec3{X: c.Room.Width, Y: c.Room.Depth, Z: c.Room.Height}); ok && t < best {
		best = t
	}
	for _, b := range c.Furniture {
		if t, ok := rayBoxEnter(c.Pos, dir, b.Min, b.Max); ok && t < best {
			best = t
		}
	}
	return best
}

// rayBoxExit intersects a ray starting inside an AABB with its interior
// surface (the room walls) and returns the exit distance.
func rayBoxExit(o, d, min, max room.Vec3) (float64, bool) {
	tExit := math.Inf(1)
	axes := [3][3]float64{
		{o.X, d.X, 0}, {o.Y, d.Y, 1}, {o.Z, d.Z, 2},
	}
	mins := [3]float64{min.X, min.Y, min.Z}
	maxs := [3]float64{max.X, max.Y, max.Z}
	for i, a := range axes {
		oi, di := a[0], a[1]
		if math.Abs(di) < 1e-12 {
			continue
		}
		for _, plane := range [2]float64{mins[i], maxs[i]} {
			t := (plane - oi) / di
			if t > 1e-9 && t < tExit {
				tExit = t
			}
		}
	}
	if math.IsInf(tExit, 1) {
		return 0, false
	}
	return tExit, true
}

// rayBoxEnter intersects a ray starting outside an AABB (slab method) and
// returns the entry distance.
func rayBoxEnter(o, d, min, max room.Vec3) (float64, bool) {
	tmin, tmax := 0.0, math.Inf(1)
	oc := [3]float64{o.X, o.Y, o.Z}
	dc := [3]float64{d.X, d.Y, d.Z}
	lo := [3]float64{min.X, min.Y, min.Z}
	hi := [3]float64{max.X, max.Y, max.Z}
	for i := 0; i < 3; i++ {
		if math.Abs(dc[i]) < 1e-12 {
			if oc[i] < lo[i] || oc[i] > hi[i] {
				return 0, false
			}
			continue
		}
		t1 := (lo[i] - oc[i]) / dc[i]
		t2 := (hi[i] - oc[i]) / dc[i]
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		if t1 > tmin {
			tmin = t1
		}
		if t2 < tmax {
			tmax = t2
		}
		if tmin > tmax {
			return 0, false
		}
	}
	if tmin <= 1e-9 {
		return 0, false
	}
	return tmin, true
}

// rayCylinder intersects the ray with the human's finite vertical cylinder
// (side surface and top cap).
func rayCylinder(o, d room.Vec3, h room.Human) (float64, bool) {
	cx, cy := h.Pos.X, h.Pos.Y
	z0, z1 := h.Pos.Z, h.Pos.Z+h.Height
	r := h.Radius
	best := math.Inf(1)

	// Side surface: solve |(o+t·d − c)_xy|² = r².
	ox, oy := o.X-cx, o.Y-cy
	a := d.X*d.X + d.Y*d.Y
	if a > 1e-12 {
		b := 2 * (ox*d.X + oy*d.Y)
		cc := ox*ox + oy*oy - r*r
		disc := b*b - 4*a*cc
		if disc >= 0 {
			sq := math.Sqrt(disc)
			for _, t := range [2]float64{(-b - sq) / (2 * a), (-b + sq) / (2 * a)} {
				if t <= 1e-9 {
					continue
				}
				z := o.Z + t*d.Z
				if z >= z0 && z <= z1 && t < best {
					best = t
				}
			}
		}
	}
	// Top cap (the camera is mounted high, so the cap is visible).
	if math.Abs(d.Z) > 1e-12 {
		t := (z1 - o.Z) / d.Z
		if t > 1e-9 && t < best {
			x := o.X + t*d.X - cx
			y := o.Y + t*d.Y - cy
			if x*x+y*y <= r*r {
				best = t
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

package camera

import (
	"testing"

	"vvd/internal/room"
)

// TestRenderMultiSingleMatchesRender pins the single-occupant degenerate
// cases of the multi-body renderer: one body is pixel-identical to the
// historical Render/RenderPreprocessed, none is the static background.
func TestRenderMultiSingleMatchesRender(t *testing.T) {
	r := room.DefaultLab()
	c := New(r, 90)
	h := room.DefaultHuman(room.Vec3{X: 4, Y: 3})

	a := c.Render(h)
	b := c.RenderMulti([]room.Human{h})
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] { //vvdlint:bitexact -- render parity is bitwise by contract
			t.Fatalf("pixel %d: Render %g vs RenderMulti %g", i, a.Pix[i], b.Pix[i])
		}
	}

	ap := c.RenderPreprocessed(h)
	bp := c.RenderPreprocessedMulti([]room.Human{h})
	for i := range ap.Pix {
		if ap.Pix[i] != bp.Pix[i] { //vvdlint:bitexact -- render parity is bitwise by contract
			t.Fatalf("cropped pixel %d differs", i)
		}
	}

	empty := c.RenderPreprocessedMulti(nil)
	crop, err := c.RenderMulti(nil).Crop(CropTop, CropLeft, CropRows, CropCols)
	if err != nil {
		t.Fatal(err)
	}
	for i := range empty.Pix {
		if empty.Pix[i] != crop.Pix[i] { //vvdlint:bitexact -- render parity is bitwise by contract
			t.Fatalf("empty-room cropped pixel %d differs from background", i)
		}
	}
}

// TestRenderMultiOcclusion renders two bodies at different depths along
// similar view rays: the image must contain strictly more foreground
// (nearer-than-background) pixels than either body alone, and every pixel
// must equal the minimum over the single-body renders (nearest surface
// wins).
func TestRenderMultiOcclusion(t *testing.T) {
	r := room.DefaultLab()
	c := New(r, 90)
	near := room.DefaultHuman(room.Vec3{X: 3.2, Y: 2.0})
	far := room.DefaultHuman(room.Vec3{X: 4.8, Y: 4.2})

	a := c.RenderMulti([]room.Human{near})
	b := c.RenderMulti([]room.Human{far})
	both := c.RenderMulti([]room.Human{near, far})
	for i := range both.Pix {
		min := a.Pix[i]
		if b.Pix[i] < min {
			min = b.Pix[i]
		}
		if both.Pix[i] != min { //vvdlint:bitexact -- render parity is bitwise by contract
			t.Fatalf("pixel %d: two-body render %g, want min of singles %g", i, both.Pix[i], min)
		}
	}
}

package estimate

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"vvd/internal/dsp"
	"vvd/internal/phy"
)

func randSignal(rng *rand.Rand, n int) []complex128 {
	s := make([]complex128, n)
	for i := range s {
		s[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return s
}

func TestLSRecoversKnownChannel(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	known := randSignal(rng, 400)
	h := []complex128{0.1i, 0.8 - 0.3i, 0.2, -0.05i}
	rx := dsp.Convolve(known, h)
	got, err := LS(known, rx, len(h))
	if err != nil {
		t.Fatal(err)
	}
	for i := range h {
		if cmplx.Abs(got[i]-h[i]) > 1e-6 {
			t.Fatalf("tap %d = %v want %v", i, got[i], h[i])
		}
	}
}

func TestLSWithNoiseApproximate(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	known := randSignal(rng, 2000)
	h := []complex128{0.5, 0.3i, -0.2}
	rx := dsp.AddAWGN(dsp.Convolve(known, h), 20, rng)
	got, err := LS(known, rx, len(h))
	if err != nil {
		t.Fatal(err)
	}
	for i := range h {
		if cmplx.Abs(got[i]-h[i]) > 0.05 {
			t.Fatalf("tap %d = %v want ≈ %v", i, got[i], h[i])
		}
	}
}

func TestLSAbsorbsCommonPhase(t *testing.T) {
	// A constant phase rotation of rx appears as the same rotation of ĥ.
	rng := rand.New(rand.NewPCG(5, 6))
	known := randSignal(rng, 300)
	h := []complex128{0.9, 0.2i}
	rx := dsp.Rotate(dsp.Convolve(known, h), 0.8)
	got, err := LS(known, rx, len(h))
	if err != nil {
		t.Fatal(err)
	}
	wantTap0 := h[0] * cmplx.Exp(complex(0, 0.8))
	if cmplx.Abs(got[0]-wantTap0) > 1e-6 {
		t.Fatalf("tap0 = %v want %v", got[0], wantTap0)
	}
}

func TestLSErrors(t *testing.T) {
	if _, err := LS(nil, []complex128{1}, 1); err == nil {
		t.Fatal("empty known accepted")
	}
	if _, err := LS([]complex128{1, 2}, []complex128{1}, 3); err == nil {
		t.Fatal("short rx accepted")
	}
	if _, err := LS([]complex128{1}, []complex128{1}, 0); err == nil {
		t.Fatal("zero taps accepted")
	}
}

func TestZFInvertsChannel(t *testing.T) {
	h := []complex128{0.1, 1, 0.4 - 0.2i, 0.1i}
	c, delay, err := ZF(h, 31)
	if err != nil {
		t.Fatal(err)
	}
	comb := dsp.Convolve(h, c)
	// Combined response ≈ unit impulse at delay.
	if cmplx.Abs(comb[delay]-1) > 0.05 {
		t.Fatalf("comb[delay] = %v want ≈ 1", comb[delay])
	}
	var residual float64
	for i, v := range comb {
		if i != delay {
			residual += cmplx.Abs(v) * cmplx.Abs(v)
		}
	}
	if residual > 0.02 {
		t.Fatalf("residual ISI power %v too high", residual)
	}
}

func TestZFErrors(t *testing.T) {
	if _, _, err := ZF(nil, 5); err == nil {
		t.Fatal("empty channel accepted")
	}
	if _, _, err := ZF([]complex128{1}, 0); err == nil {
		t.Fatal("zero-length equalizer accepted")
	}
	if _, _, err := ZF([]complex128{0, 0}, 5); err == nil {
		t.Fatal("all-zero channel accepted")
	}
}

func TestEqualizeRecoversSignal(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	tx := randSignal(rng, 600)
	h := []complex128{0.05i, 0.9, 0.3, -0.1i}
	rx := dsp.Convolve(tx, h)
	c, delay, err := ZF(h, 41)
	if err != nil {
		t.Fatal(err)
	}
	eq := Equalize(rx, c, delay, len(tx))
	// Interior samples (away from edge effects) must match tx closely.
	var errPow, sigPow float64
	for i := 50; i < len(tx)-50; i++ {
		d := eq[i] - tx[i]
		errPow += real(d)*real(d) + imag(d)*imag(d)
		sigPow += real(tx[i])*real(tx[i]) + imag(tx[i])*imag(tx[i])
	}
	if 10*math.Log10(sigPow/errPow) < 20 {
		t.Fatalf("equalized SNR %.1f dB < 20 dB", 10*math.Log10(sigPow/errPow))
	}
}

func TestEqualizePadsBeyondEnd(t *testing.T) {
	out := Equalize([]complex128{1}, []complex128{1}, 0, 5)
	if len(out) != 5 {
		t.Fatalf("len = %d", len(out))
	}
	for _, v := range out[1:] {
		if v != 0 {
			t.Fatal("out-of-range samples must be zero")
		}
	}
}

func TestMeanPhaseShiftRecoversRotation(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	ref := randSignal(rng, 64)
	for _, theta := range []float64{-2.5, -0.7, 0, 0.3, 1.9} {
		rot := dsp.Rotate(ref, theta)
		got := MeanPhaseShift(rot, ref)
		if math.Abs(got-theta) > 1e-9 {
			t.Fatalf("theta = %v want %v", got, theta)
		}
	}
}

func TestAlignPhaseProperty(t *testing.T) {
	f := func(seed uint64, theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		rng := rand.New(rand.NewPCG(seed, 17))
		ref := randSignal(rng, 16)
		rot := dsp.Rotate(ref, theta)
		back := AlignPhase(rot, ref)
		for i := range ref {
			if cmplx.Abs(back[i]-ref[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateCFORecovery(t *testing.T) {
	// Build a periodic signal (like the preamble) and impose a CFO.
	m := phy.NewModulator()
	preamble := phy.SpreadBits(phy.BytesToBits(make([]byte, phy.PreambleBytes)))
	wave := m.ModulateChips(preamble)
	lag := 4 * PreamblePeriodSamples
	for _, cfo := range []float64{-800, -50, 120, 900} {
		shifted := dsp.ApplyCFO(wave, cfo, phy.SampleRate)
		got := EstimateCFO(shifted, lag, PreamblePeriodSamples, len(wave)-lag-2*PreamblePeriodSamples, phy.SampleRate)
		if math.Abs(got-cfo) > 2 {
			t.Fatalf("cfo = %v want %v", got, cfo)
		}
	}
}

func TestEstimateCFOZeroOnShortInput(t *testing.T) {
	if got := EstimateCFO([]complex128{1, 2}, 128, 0, 10, phy.SampleRate); got != 0 {
		t.Fatalf("got %v want 0", got)
	}
	if got := EstimateCFO([]complex128{1, 2, 3}, 0, 0, 1, phy.SampleRate); got != 0 {
		t.Fatalf("zero lag: got %v want 0", got)
	}
}

func TestBoxcarAveraging(t *testing.T) {
	x := []complex128{4, 8, 12, 16}
	out := Boxcar(x, 2)
	// out[i] is the mean of the last 2 samples (ramp-up at i=0).
	if out[1] != 6 || out[2] != 10 || out[3] != 14 {
		t.Fatalf("boxcar = %v", out)
	}
	cp := Boxcar(x, 1)
	cp[0] = 99
	if x[0] == 99 {
		t.Fatal("Boxcar(n=1) aliased input")
	}
}

func TestEstimateCFOSurvivesChannel(t *testing.T) {
	// CFO estimation must be channel-agnostic: convolve with a multipath
	// filter first.
	m := phy.NewModulator()
	preamble := phy.SpreadBits(phy.BytesToBits(make([]byte, phy.PreambleBytes)))
	wave := m.ModulateChips(preamble)
	h := []complex128{0.1i, 0.8, 0.3 - 0.2i}
	rx := dsp.ApplyCFO(dsp.Convolve(wave, h), 300, phy.SampleRate)
	lag := 4 * PreamblePeriodSamples
	got := EstimateCFO(rx, lag, PreamblePeriodSamples, len(wave)-lag-2*PreamblePeriodSamples, phy.SampleRate)
	if math.Abs(got-300) > 5 {
		t.Fatalf("cfo through channel = %v want ≈ 300", got)
	}
}

package estimate

import (
	"math/rand/v2"
	"testing"

	"vvd/internal/channel"
	"vvd/internal/dsp"
	"vvd/internal/phy"
	"vvd/internal/room"
)

// packetFixture builds one transmitted packet and its reception through the
// simulated lab channel.
type packetFixture struct {
	ppdu    *phy.PPDU
	txChips []byte
	txWave  []complex128
	rec     *channel.Reception
	model   *channel.Model
}

func makeFixture(t *testing.T, imp channel.Impairments, h room.Human, seed uint64) *packetFixture {
	t.Helper()
	frame := &phy.Frame{SeqNum: 5, Payload: phy.DefaultPayload(32)}
	psdu, err := frame.BuildPSDU()
	if err != nil {
		t.Fatal(err)
	}
	ppdu, err := phy.BuildPPDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	mod := phy.NewModulator()
	chips := phy.SpreadBits(ppdu.Bits)
	wave := mod.ModulateChips(chips)
	g := channel.NewGeometry(room.DefaultLab(), phy.Wavelength)
	m := channel.NewModel(g, phy.SampleRate)
	link := channel.NewLink(m, imp, rand.New(rand.NewPCG(seed, seed+1)))
	rec := link.Transmit(wave, h)
	return &packetFixture{ppdu: ppdu, txChips: chips, txWave: wave, rec: rec, model: m}
}

func clearHuman() room.Human   { return room.DefaultHuman(room.Vec3{X: 2.2, Y: 4.7}) }
func blockedHuman() room.Human { return room.DefaultHuman(room.Vec3{X: 4, Y: 3}) }

func TestGroundTruthEstimateMatchesTrueCIR(t *testing.T) {
	fx := makeFixture(t, channel.Impairments{SNRdB: 40}, clearHuman(), 11)
	r := NewReceiver(DefaultConfig())
	rx, _ := r.CorrectCFO(fx.rec.Waveform)
	got, err := r.EstimateGroundTruth(rx, fx.txWave)
	if err != nil {
		t.Fatal(err)
	}
	// The estimate includes the packet's crystal phase; align it out.
	aligned := AlignPhase(got, fx.rec.TrueCIR)
	var diff, ref float64
	for i := range aligned {
		diff += sq(aligned[i] - fx.rec.TrueCIR[i])
		ref += sq(fx.rec.TrueCIR[i])
	}
	if diff/ref > 0.01 {
		t.Fatalf("relative CIR error %v too large", diff/ref)
	}
}

func sq(c complex128) float64 { return real(c)*real(c) + imag(c)*imag(c) }

func TestDecodeWithGroundTruthSucceeds(t *testing.T) {
	fx := makeFixture(t, channel.DefaultImpairments(), clearHuman(), 21)
	r := NewReceiver(DefaultConfig())
	rx, _ := r.CorrectCFO(fx.rec.Waveform)
	h, err := r.EstimateGroundTruth(rx, fx.txWave)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Decode(rx, fx.ppdu, fx.txChips, h)
	if !res.PacketOK {
		t.Fatalf("ground-truth decode failed: %d/%d chip errors", res.ChipErrors, res.PSDUChips)
	}
	if res.CER() > 0.05 {
		t.Fatalf("CER %v too high with perfect estimate", res.CER())
	}
}

func TestDecodeWithPreambleEstimateSucceeds(t *testing.T) {
	fx := makeFixture(t, channel.DefaultImpairments(), clearHuman(), 31)
	r := NewReceiver(DefaultConfig())
	rx, _ := r.CorrectCFO(fx.rec.Waveform)
	h, err := r.EstimatePreamble(rx)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Decode(rx, fx.ppdu, fx.txChips, h)
	if !res.PacketOK {
		t.Fatalf("preamble decode failed: %d/%d chip errors", res.ChipErrors, res.PSDUChips)
	}
}

func TestDecodeWithTrueCIRAndPhaseAlignment(t *testing.T) {
	// Decoding with the true (unrotated) CIR exercises the Eq. 8 phase
	// correction path: the packet's crystal phase is unknown to the
	// estimate, and the preamble-based mean phase correction must fix it.
	fx := makeFixture(t, channel.Impairments{SNRdB: 20, PhaseStdDev: 1.5}, clearHuman(), 41)
	r := NewReceiver(DefaultConfig())
	rx, _ := r.CorrectCFO(fx.rec.Waveform)
	res := r.Decode(rx, fx.ppdu, fx.txChips, fx.rec.TrueCIR)
	if !res.PacketOK {
		t.Fatalf("true-CIR decode failed: %d/%d chip errors (phase %v)",
			res.ChipErrors, res.PSDUChips, res.Phase)
	}
}

func TestStandardDecodingCleanChannel(t *testing.T) {
	// Standard decoding (no equalization) should survive a mild channel.
	fx := makeFixture(t, channel.Impairments{SNRdB: 30}, clearHuman(), 51)
	r := NewReceiver(DefaultConfig())
	rx, _ := r.CorrectCFO(fx.rec.Waveform)
	res := r.Decode(rx, fx.ppdu, fx.txChips, nil)
	if !res.PacketOK {
		t.Fatalf("standard decoding failed in clean channel: CER %v", res.CER())
	}
}

func TestStandardDecodingWorseThanEqualized(t *testing.T) {
	// Aggregated over a sweep of mostly-clear positions, standard decoding
	// (no equalization: timing+phase only) must make more chip errors than
	// ground-truth ZF equalization, which recombines the fractional-delay
	// tap cluster and removes inter-sample interference.
	r := NewReceiver(DefaultConfig())
	imp := channel.Impairments{SNRdB: 9, PhaseStdDev: 1}
	var stdErr, eqErr int
	seed := uint64(100)
	for _, y := range []float64{4.0, 4.4, 4.8} {
		for x := 2.2; x <= 5.8; x += 0.6 {
			seed++
			fx := makeFixture(t, imp, room.DefaultHuman(room.Vec3{X: x, Y: y}), seed)
			rx, _ := r.CorrectCFO(fx.rec.Waveform)
			h, err := r.EstimateGroundTruth(rx, fx.txWave)
			if err != nil {
				t.Fatal(err)
			}
			stdErr += r.Decode(rx, fx.ppdu, fx.txChips, nil).ChipErrors
			eqErr += r.Decode(rx, fx.ppdu, fx.txChips, h).ChipErrors
		}
	}
	if stdErr <= eqErr {
		t.Fatalf("standard decoding (%d chip errors) not worse than equalized (%d)", stdErr, eqErr)
	}
}

func TestPreambleDetectionClearVsNoise(t *testing.T) {
	r := NewReceiver(DefaultConfig())
	fx := makeFixture(t, channel.Impairments{SNRdB: 25}, clearHuman(), 61)
	rx, _ := r.CorrectCFO(fx.rec.Waveform)
	ok, peak, _ := r.DetectPreamble(rx)
	if !ok {
		t.Fatalf("clear-channel preamble not detected (peak %v)", peak)
	}
	// Pure noise must not detect.
	rng := rand.New(rand.NewPCG(1, 1))
	noise := make([]complex128, len(rx))
	for i := range noise {
		noise[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	ok, peak, _ = r.DetectPreamble(noise)
	if ok {
		t.Fatalf("noise detected as preamble (peak %v)", peak)
	}
}

func TestDecodeCountsChipErrors(t *testing.T) {
	// Corrupt the waveform heavily: chip errors must be counted and the
	// packet must fail.
	fx := makeFixture(t, channel.Impairments{SNRdB: -15}, clearHuman(), 71)
	r := NewReceiver(DefaultConfig())
	rx, _ := r.CorrectCFO(fx.rec.Waveform)
	res := r.Decode(rx, fx.ppdu, fx.txChips, fx.rec.TrueCIR)
	if res.PacketOK {
		t.Fatal("packet decoded at −15 dB SNR")
	}
	if res.ChipErrors == 0 {
		t.Fatal("no chip errors counted at −15 dB SNR")
	}
	if res.PSDUChips != 32*8*phy.ChipsPerSymbol/phy.BitsPerSymbol/8*4 {
		// 32-byte PSDU = 64 symbols = 2048 chips.
		if res.PSDUChips != 2048 {
			t.Fatalf("PSDU chips = %d want 2048", res.PSDUChips)
		}
	}
}

func TestDecodeCFOEstimatePropagated(t *testing.T) {
	fx := makeFixture(t, channel.Impairments{SNRdB: 30, CFOStdDevHz: 200}, clearHuman(), 81)
	r := NewReceiver(DefaultConfig())
	rx, cfo := r.CorrectCFO(fx.rec.Waveform)
	if fx.rec.CFO != 0 && cfo == 0 {
		t.Fatal("CFO applied but estimate is zero")
	}
	// After correction, decoding with the true CIR must work.
	res := r.Decode(rx, fx.ppdu, fx.txChips, fx.rec.TrueCIR)
	if !res.PacketOK {
		t.Fatalf("decode failed after CFO correction (applied %v, estimated %v)", fx.rec.CFO, cfo)
	}
}

func TestDecodeAllZeroEstimateFails(t *testing.T) {
	fx := makeFixture(t, channel.Impairments{SNRdB: 30}, clearHuman(), 91)
	r := NewReceiver(DefaultConfig())
	rx, _ := r.CorrectCFO(fx.rec.Waveform)
	res := r.Decode(rx, fx.ppdu, fx.txChips, make([]complex128, 11))
	if res.PacketOK {
		t.Fatal("all-zero estimate should not decode")
	}
}

func TestResultCEREmpty(t *testing.T) {
	var res Result
	if res.CER() != 0 {
		t.Fatal("empty result CER must be 0")
	}
}

func TestCorrectCFOCopiesWhenZero(t *testing.T) {
	r := NewReceiver(DefaultConfig())
	in := []complex128{1, 2, 3}
	out, _ := r.CorrectCFO(in)
	out[0] = 99
	if in[0] == 99 {
		t.Fatal("CorrectCFO aliased input")
	}
}

func TestDecodeAgedEstimateDegrades(t *testing.T) {
	// Using the CIR from a very different human position must decode worse
	// (higher CER) on average than the true CIR — the basis of the paper's
	// aging experiments.
	r := NewReceiver(DefaultConfig())
	g := channel.NewGeometry(room.DefaultLab(), phy.Wavelength)
	m := channel.NewModel(g, phy.SampleRate)
	// Stale estimate taken while the LoS was blocked; the packets are sent
	// with a clear LoS, so the equalizer inverts the wrong channel. Run at
	// reduced SNR so the mismatch is visible in chip errors.
	staleCIR := m.CIR(blockedHuman())
	imp := channel.Impairments{SNRdB: 2, PhaseStdDev: 1}
	var trueErr, staleErr int
	for seed := uint64(0); seed < 12; seed++ {
		fx := makeFixture(t, imp, clearHuman(), 200+seed)
		rx, _ := r.CorrectCFO(fx.rec.Waveform)
		trueErr += r.Decode(rx, fx.ppdu, fx.txChips, fx.rec.TrueCIR).ChipErrors
		staleErr += r.Decode(rx, fx.ppdu, fx.txChips, staleCIR).ChipErrors
	}
	if staleErr <= trueErr {
		t.Fatalf("stale estimate (%d chip errors) outperformed true CIR (%d)", staleErr, trueErr)
	}
}

func TestEqualizedCleanWaveformMatchesTx(t *testing.T) {
	// Full pipeline sanity at very high SNR with no impairments: equalized
	// waveform ≈ transmitted waveform.
	fx := makeFixture(t, channel.Impairments{SNRdB: 60}, clearHuman(), 301)
	r := NewReceiver(DefaultConfig())
	rx, _ := r.CorrectCFO(fx.rec.Waveform)
	c, delay, err := ZF(fx.rec.TrueCIR, r.Cfg.EqTaps)
	if err != nil {
		t.Fatal(err)
	}
	eq := Equalize(rx, c, delay, len(fx.txWave))
	if snr := dsp.SNRdB(fx.txWave[100:len(fx.txWave)-100], eq[100:len(eq)-100]); snr < 20 {
		t.Fatalf("equalized SNR %.1f dB", snr)
	}
}

package estimate

import (
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"vvd/internal/channel"
	"vvd/internal/dsp"
)

func TestMMSEMatchesLSAtHighSNR(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	known := randSignal(rng, 500)
	h := []complex128{0.8, 0.3i, -0.1}
	rx := dsp.Convolve(known, h)
	ls, err := LS(known, rx, 3)
	if err != nil {
		t.Fatal(err)
	}
	mmse, err := MMSE(known, rx, 3, 1e-12, PriorVariance(ls))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ls {
		if cmplx.Abs(ls[i]-mmse[i]) > 1e-6 {
			t.Fatalf("tap %d: MMSE %v deviates from LS %v at zero noise", i, mmse[i], ls[i])
		}
	}
}

func TestMMSEBeatsLSAtLowSNR(t *testing.T) {
	// With strong noise, MMSE shrinkage must reduce the estimation error
	// on average — the paper's §6.6 remark about LS in the low-SNR regime.
	rng := rand.New(rand.NewPCG(3, 4))
	var lsErr, mmseErr float64
	h := []complex128{0.9, 0.25i, -0.15, 0.05}
	for trial := 0; trial < 30; trial++ {
		known := randSignal(rng, 120)
		clean := dsp.Convolve(known, h)
		noiseVar := dsp.Power(clean) * 2 // −3 dB SNR
		rx := dsp.AddNoise(clean, noiseVar, rng)
		ls, err := LS(known, rx, len(h))
		if err != nil {
			t.Fatal(err)
		}
		mmse, err := MMSE(known, rx, len(h), noiseVar, PriorVariance(h))
		if err != nil {
			t.Fatal(err)
		}
		for i := range h {
			dl := ls[i] - h[i]
			dm := mmse[i] - h[i]
			lsErr += real(dl)*real(dl) + imag(dl)*imag(dl)
			mmseErr += real(dm)*real(dm) + imag(dm)*imag(dm)
		}
	}
	if mmseErr >= lsErr {
		t.Fatalf("MMSE error %v not below LS error %v at −3 dB", mmseErr, lsErr)
	}
}

func TestMMSEErrors(t *testing.T) {
	if _, err := MMSE(nil, []complex128{1}, 1, 0, 1); err == nil {
		t.Fatal("empty known accepted")
	}
	if _, err := MMSE([]complex128{1}, []complex128{1}, 0, 0, 1); err == nil {
		t.Fatal("zero taps accepted")
	}
	if _, err := MMSE([]complex128{1, 2}, []complex128{1}, 3, 0, 1); err == nil {
		t.Fatal("short rx accepted")
	}
	if _, err := MMSE([]complex128{1, 2, 3}, []complex128{1, 2, 3, 4}, 2, 0, 0); err == nil {
		t.Fatal("zero prior accepted")
	}
}

func TestNoiseVarianceEstimate(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	known := randSignal(rng, 2000)
	h := []complex128{0.7, 0.2i}
	clean := dsp.Convolve(known, h)
	want := 0.25
	rx := dsp.AddNoise(clean, want, rng)
	est, err := LS(known, rx, len(h))
	if err != nil {
		t.Fatal(err)
	}
	got, err := NoiseVariance(known, rx, est)
	if err != nil {
		t.Fatal(err)
	}
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("noise variance %v want ≈ %v", got, want)
	}
}

func TestNoiseVarianceErrors(t *testing.T) {
	if _, err := NoiseVariance(nil, nil, nil); err == nil {
		t.Fatal("empty inputs accepted")
	}
	if _, err := NoiseVariance([]complex128{1, 2}, []complex128{1}, []complex128{1, 1}); err == nil {
		t.Fatal("short rx accepted")
	}
}

func TestPriorVariance(t *testing.T) {
	if PriorVariance(nil) != 0 {
		t.Fatal("empty prior must be 0")
	}
	if got := PriorVariance([]complex128{2, 2i}); got != 4 {
		t.Fatalf("prior = %v want 4", got)
	}
}

func TestEstimatePreambleMMSEOnSimulatedPacket(t *testing.T) {
	fx := makeFixture(t, channel.Impairments{SNRdB: 12, PhaseStdDev: 0.4}, clearHuman(), 501)
	r := NewReceiver(DefaultConfig())
	rx, _ := r.CorrectCFO(fx.rec.Waveform)
	mmse, err := r.EstimatePreambleMMSE(rx)
	if err != nil {
		t.Fatal(err)
	}
	if len(mmse) != r.Cfg.CIRTaps {
		t.Fatalf("taps = %d", len(mmse))
	}
	// MMSE estimate must still decode the packet.
	res := r.Decode(rx, fx.ppdu, fx.txChips, mmse)
	if !res.PacketOK {
		t.Fatalf("MMSE estimate failed to decode: CER %v", res.CER())
	}
	// Shrinkage: the MMSE estimate's norm cannot exceed the LS norm by a
	// meaningful margin.
	ls, err := r.EstimatePreamble(rx)
	if err != nil {
		t.Fatal(err)
	}
	if PriorVariance(mmse) > PriorVariance(ls)*1.01 {
		t.Fatal("MMSE did not shrink relative to LS")
	}
}

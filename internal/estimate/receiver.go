package estimate

import (
	"errors"
	"sync"

	"vvd/internal/dsp"
	"vvd/internal/phy"
)

// Config parameterizes the receiver chain.
type Config struct {
	CIRTaps           int     // N, FIR length of channel estimates (paper: 11)
	EqTaps            int     // L, FIR length of the ZF equalizer
	PreambleThreshold float64 // normalized sync-peak threshold for detection
	MaxSyncLag        int     // search window for coarse frame timing
	// SkipPhaseCorrection disables the Eq. 8 mean phase correction in
	// Decode — an ablation switch showing the correction is load-bearing
	// for blind estimates that cannot know the packet's crystal phase.
	SkipPhaseCorrection bool
	// SoftDespreading correlates soft chip values against the PN set
	// instead of hard Hamming-distance despreading (an extension beyond
	// the paper's receiver, worth ~1-2 dB near threshold).
	SoftDespreading bool
}

// DefaultConfig mirrors the paper's estimation settings.
func DefaultConfig() Config {
	return Config{CIRTaps: 11, EqTaps: 41, PreambleThreshold: 0.64, MaxSyncLag: 16}
}

// Receiver is the decode chain shared by every channel-estimation
// technique: CFO correction → (ZF equalization) → mean phase correction →
// chip decisions → despreading → FCS check. Only the channel estimate
// differs between techniques (paper §5.1).
type Receiver struct {
	Cfg  Config
	Refs *phy.ReferenceWaveforms

	// shrKnown is the SHR reference truncated to whole chips (the trailing
	// half-pulse overlaps the PHR in a real packet).
	shrKnown []complex128

	// preSolvers caches the SHR-reference LSSolver per tap count (keyed
	// because ablations sweep Cfg.CIRTaps): the reference-side normal
	// equations are shared by every packet's preamble estimate.
	preSolvers sync.Map // int -> *LSSolver
}

// NewReceiver builds a receiver with the given configuration.
func NewReceiver(cfg Config) *Receiver {
	refs := phy.NewReferenceWaveforms()
	shrSamples := phy.SyncSymbols * phy.ChipsPerSymbol * phy.SamplesPerChip
	return &Receiver{Cfg: cfg, Refs: refs, shrKnown: refs.SHR[:shrSamples]}
}

// CorrectCFO estimates the carrier frequency offset from the periodic
// preamble and returns the corrected waveform along with the estimate.
// The estimator prefilters to the signal band and correlates at half the
// preamble length for the lowest phase-noise floor.
func (r *Receiver) CorrectCFO(rx []complex128) ([]complex128, float64) {
	out := make([]complex128, len(rx))
	cfo := r.correctCFOTo(out, rx)
	return out, cfo
}

// CorrectCFOInPlace is CorrectCFO operating directly on rx, for callers
// that no longer need the uncorrected waveform (the generation hot path):
// it avoids the full-waveform output allocation.
func (r *Receiver) CorrectCFOInPlace(rx []complex128) ([]complex128, float64) {
	return rx, r.correctCFOTo(rx, rx)
}

// correctCFOTo estimates the CFO and writes the corrected waveform into
// dst (dst may alias rx). The estimator only reads the preamble, so the
// band prefilter runs over that prefix alone rather than the whole
// waveform.
func (r *Receiver) correctCFOTo(dst, rx []complex128) float64 {
	preamble := phy.PreambleBytes * 2 * phy.ChipsPerSymbol * phy.SamplesPerChip // 1024
	lag := preamble / 2                                                         // 4 periods
	start := PreamblePeriodSamples                                              // skip startup transient
	span := preamble - lag - start
	window := rx
	if len(window) > preamble {
		window = window[:preamble] // the boxcar is causal: prefix-exact
	}
	var fbuf [1024]complex128 // stack scratch for the common PHY constants
	scratch := fbuf[:]
	if len(window) > len(scratch) {
		scratch = make([]complex128, len(window)) // larger preamble (e.g. oversampling experiments)
	}
	filtered := boxcarInto(scratch[:len(window)], window, phy.SamplesPerChip)
	cfo := EstimateCFO(filtered, lag, start, span, phy.SampleRate)
	if cfo == 0 {
		copy(dst, rx)
		return 0
	}
	dsp.ApplyCFOTo(dst, rx, -cfo, phy.SampleRate)
	return cfo
}

// DetectPreamble computes the normalized sync correlation peak and compares
// it against the detection threshold. Deep fades (blocked LoS) and noise
// push the peak below threshold, reproducing the preamble detection
// failures that hold back preamble-based estimation in the paper.
func (r *Receiver) DetectPreamble(rx []complex128) (detected bool, peak float64, lag int) {
	peak, lag = r.Refs.NormalizedSyncPeak(rx, r.Cfg.MaxSyncLag)
	return peak >= r.Cfg.PreambleThreshold, peak, lag
}

// EstimateGroundTruth performs LS estimation over the whole transmitted
// waveform ("Perfect Channel Estimation"): practically impossible at a real
// receiver, used as the baseline (paper §5.2).
func (r *Receiver) EstimateGroundTruth(rx, txWave []complex128) ([]complex128, error) {
	return LS(txWave, rx, r.Cfg.CIRTaps)
}

// GroundTruthSolver returns an LSSolver that repeats EstimateGroundTruth
// against a fixed known transmit waveform: the reference-side normal
// equations are precomputed once, halving the per-packet estimation cost
// when many receptions share a transmit waveform (the campaign
// generator's case).
func (r *Receiver) GroundTruthSolver(txWave []complex128) (*LSSolver, error) {
	return NewLSSolver(txWave, r.Cfg.CIRTaps)
}

// EstimatePreamble performs LS estimation over the known synchronization
// header only (paper Fig. 9, "Preamble Based"). The SHR-side normal
// equations are cached per tap count, so each call pays only the
// observation cross-correlation and the solve.
func (r *Receiver) EstimatePreamble(rx []complex128) ([]complex128, error) {
	taps := r.Cfg.CIRTaps
	if v, ok := r.preSolvers.Load(taps); ok {
		return v.(*LSSolver).Estimate(rx)
	}
	s, err := NewLSSolver(r.shrKnown, taps)
	if err != nil {
		return nil, err
	}
	v, _ := r.preSolvers.LoadOrStore(taps, s)
	return v.(*LSSolver).Estimate(rx)
}

// Result summarizes the decode of a single packet.
type Result struct {
	PacketOK   bool    // FCS valid after decode
	ChipErrors int     // wrong hard chips over the PSDU
	PSDUChips  int     // total PSDU chips compared
	SyncPeak   float64 // normalized preamble correlation
	CFO        float64 // estimated carrier frequency offset (Hz)
	Phase      float64 // mean phase correction applied (radians)
}

// CER returns the chip error rate of this decode.
func (res *Result) CER() float64 {
	if res.PSDUChips == 0 {
		return 0
	}
	return float64(res.ChipErrors) / float64(res.PSDUChips)
}

// ErrNoEstimate signals a decode that required an estimate but got none.
var ErrNoEstimate = errors.New("estimate: nil channel estimate")

// Decode runs the chain on a CFO-corrected waveform with the given channel
// estimate. A nil estimate selects Standard Decoding (no equalization; the
// receiver aligns on the correlation peak only, per paper §5.1).
// txChips are the true transmitted chips, used to count chip errors.
func (r *Receiver) Decode(rx []complex128, ppdu *phy.PPDU, txChips []byte, h []complex128) Result {
	var res Result
	nchips := len(ppdu.Bits) / phy.BitsPerSymbol * phy.ChipsPerSymbol
	txLen := phy.WaveformLen(nchips)

	var aligned []complex128
	if h == nil {
		// Standard decoding (paper §5.1): frequency offset correction and
		// frame synchronization only — no equalization. Synchronization
		// yields coarse timing and carrier phase; it cannot compensate the
		// channel's frequency selectivity or inter-sample interference.
		_, peak, lag := r.DetectPreamble(rx)
		res.SyncPeak = peak
		if lag < len(rx) {
			aligned = rx[lag:]
		} else {
			aligned = rx
		}
	} else {
		c, delay, err := ZF(h, r.Cfg.EqTaps)
		if err != nil {
			return res // undecodable estimate → packet error
		}
		aligned = Equalize(rx, c, delay, txLen)
	}

	// Carrier phase recovery from the known SHR: for equalized techniques
	// this is the Eq. 8 / footnote 4 mean phase correction reverting the
	// unknown crystal offset; for standard decoding it is the phase of the
	// synchronization correlation.
	if !r.Cfg.SkipPhaseCorrection {
		n := len(r.shrKnown)
		if n > len(aligned) {
			n = len(aligned)
		}
		theta := MeanPhaseShift(aligned[:n], r.shrKnown[:n])
		res.Phase = theta
		aligned = dsp.Rotate(aligned, -theta)
	}

	// Matched filtering ahead of the chip decisions (suppresses
	// out-of-band noise, including ZF-enhanced noise).
	aligned = phy.MatchedFilter(aligned)

	chips := phy.ChipDecisions(aligned, nchips)

	// Chip errors over the PSDU region.
	headerChips := (len(ppdu.Bits) - ppdu.PSDUBits) / phy.BitsPerSymbol * phy.ChipsPerSymbol
	res.PSDUChips = nchips - headerChips
	for i := headerChips; i < nchips && i < len(txChips); i++ {
		if chips[i] != txChips[i] {
			res.ChipErrors++
		}
	}

	// Despread and validate.
	var bits []byte
	if r.Cfg.SoftDespreading {
		bits = phy.DespreadSoft(phy.SoftChips(aligned, nchips))
	} else {
		bits = phy.DespreadChips(chips)
	}
	if len(bits)%8 != 0 {
		return res
	}
	raw := phy.BitsToBytes(bits)
	hdr := phy.PreambleBytes + 2 // preamble + SFD + PHR
	if len(raw) < hdr+ppdu.PSDULen {
		return res
	}
	psdu := raw[hdr : hdr+ppdu.PSDULen]
	if _, err := phy.ParsePSDU(psdu); err == nil {
		res.PacketOK = true
	}
	return res
}

// Package estimate implements the data-based channel estimation stack of
// the paper: linear least-squares CIR estimation (Eq. 4), LS zero-forcing
// equalization (Eq. 6–7), mean phase-shift estimation and correction
// (Eq. 8), carrier-frequency-offset estimation from the periodic preamble,
// preamble detection, and the complete receiver decode chain shared by
// every compared technique.
package estimate

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"vvd/internal/dsp"
	"vvd/internal/mathx"
	"vvd/internal/phy"
)

// ErrShortObservation is returned when the received slice cannot cover the
// reference samples needed for an estimate.
var ErrShortObservation = errors.New("estimate: received signal shorter than reference window")

// LS computes the least-squares FIR channel estimate of Eq. 4:
//
//	ĥ = (XᴴX)⁻¹ Xᴴ y
//
// where X is the convolution matrix (Eq. 5) of the known transmitted
// samples and y the received samples over the same window. len(rx) must be
// at least len(known)+taps−1.
func LS(known, rx []complex128, taps int) ([]complex128, error) {
	if taps <= 0 {
		return nil, fmt.Errorf("estimate: LS needs taps > 0, got %d", taps)
	}
	if len(known) == 0 {
		return nil, errors.New("estimate: LS needs known samples")
	}
	rows := len(known) + taps - 1
	if len(rx) < rows {
		return nil, fmt.Errorf("%w: need %d have %d", ErrShortObservation, rows, len(rx))
	}
	x := mathx.ConvolutionMatrix(known, taps)
	return mathx.LeastSquares(x, rx[:rows])
}

// ZF computes the LS zero-forcing equalizer of Eq. 6–7: an L-tap FIR filter
// c such that h*c ≈ δ at the returned decision delay. The delay (the u
// vector's '1' position) is placed at the centre of the combined response,
// which accommodates the pre-cursor taps of the channel estimate.
func ZF(h []complex128, l int) (c []complex128, delay int, err error) {
	if l <= 0 {
		return nil, 0, fmt.Errorf("estimate: ZF needs L > 0, got %d", l)
	}
	if len(h) == 0 {
		return nil, 0, errors.New("estimate: ZF needs a channel estimate")
	}
	if mathx.MaxAbs(h) == 0 {
		return nil, 0, errors.New("estimate: ZF on all-zero channel")
	}
	hm := mathx.ConvolutionMatrix(h, l)
	rows := len(h) + l - 1
	delay = rows / 2
	u := make([]complex128, rows)
	u[delay] = 1
	c, err = mathx.LeastSquares(hm, u)
	if err != nil {
		return nil, 0, err
	}
	return c, delay, nil
}

// Equalize applies equalizer c to rx and returns n samples aligned with the
// transmitted waveform: out[i] = (c*rx)[i+delay].
func Equalize(rx, c []complex128, delay, n int) []complex128 {
	full := dsp.Convolve(rx, c)
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		if idx := i + delay; idx < len(full) {
			out[i] = full[idx]
		}
	}
	return out
}

// MeanPhaseShift implements Eq. 8: the phase of the correlation between two
// complex vectors, θ̂ = arg{a·bᴴ}. For channel estimates of the same
// environment taken by imperfect crystals this captures the common phase
// offset between them.
func MeanPhaseShift(a, b []complex128) float64 {
	return cmplx.Phase(mathx.Dot(a, b))
}

// AlignPhase de-rotates h by its mean phase shift relative to ref,
// returning a copy of h whose common phase matches ref.
func AlignPhase(h, ref []complex128) []complex128 {
	theta := MeanPhaseShift(h, ref)
	return dsp.Rotate(h, -theta)
}

// EstimateCFO estimates a carrier frequency offset from the periodic
// preamble: the preamble repeats every PreamblePeriodSamples, so
// arg Σ rx[n+lag]·conj(rx[n]) equals 2π·f·lag/fs for any lag that is a
// multiple of the period, regardless of the (static) channel. A longer lag
// divides the phase-noise floor by the lag, so the caller should use the
// largest lag the preamble allows. Accumulation runs over
// rx[start:start+span]; the caller must keep start ≥ one period (startup
// transient) and start+span+lag inside the preamble.
func EstimateCFO(rx []complex128, lag, start, span int, fs float64) float64 {
	if lag <= 0 || start < 0 || len(rx) < start+lag+2 {
		return 0
	}
	if span > len(rx)-lag-start {
		span = len(rx) - lag - start
	}
	var acc complex128
	for n := start; n < start+span; n++ {
		acc += rx[n+lag] * cmplx.Conj(rx[n])
	}
	if acc == 0 {
		return 0
	}
	return cmplx.Phase(acc) * fs / (2 * math.Pi * float64(lag))
}

// Boxcar applies an n-sample moving-average prefilter. The O-QPSK signal
// occupies only the lower quarter of the 8 MHz capture bandwidth, so a
// short boxcar suppresses out-of-band noise ahead of CFO estimation
// without distorting the periodicity.
func Boxcar(x []complex128, n int) []complex128 {
	if n <= 1 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out
	}
	out := make([]complex128, len(x))
	var acc complex128
	scale := complex(1/float64(n), 0)
	for i, v := range x {
		acc += v
		if i >= n {
			acc -= x[i-n]
		}
		out[i] = acc * scale
	}
	return out
}

// PreamblePeriodSamples is the periodicity of the 802.15.4 preamble
// waveform: one symbol-0 PN sequence of 32 chips.
const PreamblePeriodSamples = phy.ChipsPerSymbol * phy.SamplesPerChip

// Package estimate implements the data-based channel estimation stack of
// the paper: linear least-squares CIR estimation (Eq. 4), LS zero-forcing
// equalization (Eq. 6–7), mean phase-shift estimation and correction
// (Eq. 8), carrier-frequency-offset estimation from the periodic preamble,
// preamble detection, and the complete receiver decode chain shared by
// every compared technique.
package estimate

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"vvd/internal/dsp"
	"vvd/internal/mathx"
	"vvd/internal/phy"
)

// ErrShortObservation is returned when the received slice cannot cover the
// reference samples needed for an estimate.
var ErrShortObservation = errors.New("estimate: received signal shorter than reference window")

// LS computes the least-squares FIR channel estimate of Eq. 4:
//
//	ĥ = (XᴴX)⁻¹ Xᴴ y
//
// where X is the convolution matrix (Eq. 5) of the known transmitted
// samples and y the received samples over the same window. len(rx) must be
// at least len(known)+taps−1.
//
// The normal equations are assembled in correlation form — XᴴX is the
// Hermitian-Toeplitz autocorrelation of the known samples and Xᴴy their
// cross-correlation with the observation — so the (len(known)+taps−1)×taps
// convolution matrix is never materialized. For the full-waveform ground
// truth estimate this removes a ~6 MiB allocation and an O(n·taps²)
// product per packet, leaving O(n·taps) work.
func LS(known, rx []complex128, taps int) ([]complex128, error) {
	s, err := NewLSSolver(known, taps)
	if err != nil {
		return nil, err
	}
	return s.Estimate(rx)
}

// normalEquations builds XᴴX and Xᴴy for the convolution matrix X of the
// known samples without materializing X. Because X is the full (zero-
// boundary) convolution matrix, (XᴴX)[i][j] = Σ_m conj(x[m])·x[m+i−j] —
// the autocorrelation of the known sequence at lag i−j, giving a
// Hermitian-Toeplitz matrix from taps lag values — and
// (Xᴴy)[i] = Σ_m conj(x[m])·y[m+i], a cross-correlation at taps lags.
// len(rx) must be exactly len(known)+taps−1.
func normalEquations(known, rx []complex128, taps int) (*mathx.Matrix, []complex128) {
	return knownGram(known, taps), knownCrossCorr(known, rx, taps)
}

// knownGram builds the Hermitian-Toeplitz XᴴX block of the normal
// equations from the known sequence's autocorrelation at taps lags.
func knownGram(known []complex128, taps int) *mathx.Matrix {
	n := len(known)
	autoc := make([]complex128, taps)
	for d := 0; d < taps; d++ {
		var ra complex128
		x := known[d:]
		for m, kv := range known[:n-d] {
			ra += complex(real(kv), -imag(kv)) * x[m]
		}
		autoc[d] = ra
	}
	xhx := mathx.NewMatrix(taps, taps)
	for i := 0; i < taps; i++ {
		for j := 0; j < taps; j++ {
			if i >= j {
				xhx.Set(i, j, autoc[i-j])
			} else {
				r := autoc[j-i]
				xhx.Set(i, j, complex(real(r), -imag(r)))
			}
		}
	}
	return xhx
}

// knownCrossCorr computes Xᴴy: the cross-correlation of the observation
// with the known sequence at taps lags. len(rx) must be at least
// len(known)+taps−1.
func knownCrossCorr(known, rx []complex128, taps int) []complex128 {
	xhy := make([]complex128, taps)
	for d := 0; d < taps; d++ {
		var ry complex128
		y := rx[d:]
		for m, kv := range known {
			ry += complex(real(kv), -imag(kv)) * y[m]
		}
		xhy[d] = ry
	}
	return xhy
}

// LSSolver performs repeated LS channel estimation against one fixed
// known reference sequence. The reference-side normal-equation block XᴴX
// — which depends only on the known samples — is assembled (and diagonally
// loaded) once at construction, so each Estimate pays only the Xᴴy
// cross-correlation and the taps×taps solve. The campaign generator keys
// one solver per cached transmit waveform.
type LSSolver struct {
	knownConj []complex128 // conjugated reference, hoisted once
	taps      int
	lu        *mathx.LU // factored (XᴴX + εI)
}

// NewLSSolver validates the reference and precomputes the loaded XᴴX.
func NewLSSolver(known []complex128, taps int) (*LSSolver, error) {
	if taps <= 0 {
		return nil, fmt.Errorf("estimate: LSSolver needs taps > 0, got %d", taps)
	}
	if len(known) == 0 {
		return nil, errors.New("estimate: LSSolver needs known samples")
	}
	xhx := knownGram(known, taps)
	var trace float64
	for i := 0; i < taps; i++ {
		trace += real(xhx.At(i, i))
	}
	eps := complex(1e-12*trace/float64(taps), 0)
	for i := 0; i < taps; i++ {
		xhx.Set(i, i, xhx.At(i, i)+eps)
	}
	lu, err := mathx.Factor(xhx)
	if err != nil {
		return nil, err
	}
	kc := make([]complex128, len(known))
	for i, kv := range known {
		kc[i] = complex(real(kv), -imag(kv))
	}
	return &LSSolver{knownConj: kc, taps: taps, lu: lu}, nil
}

// Estimate solves for the channel seen by rx. The result equals
// LS(known, rx, taps) for the solver's reference up to summation-order
// rounding: Xᴴy accumulates all taps lags in a single pass over the
// reference, reading each operand once instead of once per lag. Safe for
// concurrent use.
func (s *LSSolver) Estimate(rx []complex128) ([]complex128, error) {
	rows := len(s.knownConj) + s.taps - 1
	if len(rx) < rows {
		return nil, fmt.Errorf("%w: need %d have %d", ErrShortObservation, rows, len(rx))
	}
	xhy := make([]complex128, s.taps)
	for m, kc := range s.knownConj {
		w := rx[m : m+s.taps]
		for d, wv := range w {
			xhy[d] += kc * wv
		}
	}
	return s.lu.Solve(xhy)
}

// ZF computes the LS zero-forcing equalizer of Eq. 6–7: an L-tap FIR filter
// c such that h*c ≈ δ at the returned decision delay. The delay (the u
// vector's '1' position) is placed at the centre of the combined response,
// which accommodates the pre-cursor taps of the channel estimate.
func ZF(h []complex128, l int) (c []complex128, delay int, err error) {
	if l <= 0 {
		return nil, 0, fmt.Errorf("estimate: ZF needs L > 0, got %d", l)
	}
	if len(h) == 0 {
		return nil, 0, errors.New("estimate: ZF needs a channel estimate")
	}
	if mathx.MaxAbs(h) == 0 {
		return nil, 0, errors.New("estimate: ZF on all-zero channel")
	}
	hm := mathx.ConvolutionMatrix(h, l)
	rows := len(h) + l - 1
	delay = rows / 2
	u := make([]complex128, rows)
	u[delay] = 1
	c, err = mathx.LeastSquares(hm, u)
	if err != nil {
		return nil, 0, err
	}
	return c, delay, nil
}

// Equalize applies equalizer c to rx and returns n samples aligned with the
// transmitted waveform: out[i] = (c*rx)[i+delay].
func Equalize(rx, c []complex128, delay, n int) []complex128 {
	full := dsp.Convolve(rx, c)
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		if idx := i + delay; idx < len(full) {
			out[i] = full[idx]
		}
	}
	return out
}

// MeanPhaseShift implements Eq. 8: the phase of the correlation between two
// complex vectors, θ̂ = arg{a·bᴴ}. For channel estimates of the same
// environment taken by imperfect crystals this captures the common phase
// offset between them.
func MeanPhaseShift(a, b []complex128) float64 {
	return cmplx.Phase(mathx.Dot(a, b))
}

// AlignPhase de-rotates h by its mean phase shift relative to ref,
// returning a copy of h whose common phase matches ref.
func AlignPhase(h, ref []complex128) []complex128 {
	theta := MeanPhaseShift(h, ref)
	return dsp.Rotate(h, -theta)
}

// EstimateCFO estimates a carrier frequency offset from the periodic
// preamble: the preamble repeats every PreamblePeriodSamples, so
// arg Σ rx[n+lag]·conj(rx[n]) equals 2π·f·lag/fs for any lag that is a
// multiple of the period, regardless of the (static) channel. A longer lag
// divides the phase-noise floor by the lag, so the caller should use the
// largest lag the preamble allows. Accumulation runs over
// rx[start:start+span]; the caller must keep start ≥ one period (startup
// transient) and start+span+lag inside the preamble.
func EstimateCFO(rx []complex128, lag, start, span int, fs float64) float64 {
	if lag <= 0 || start < 0 || len(rx) < start+lag+2 {
		return 0
	}
	if span > len(rx)-lag-start {
		span = len(rx) - lag - start
	}
	var acc complex128
	for n := start; n < start+span; n++ {
		acc += rx[n+lag] * cmplx.Conj(rx[n])
	}
	if acc == 0 {
		return 0
	}
	return cmplx.Phase(acc) * fs / (2 * math.Pi * float64(lag))
}

// Boxcar applies an n-sample moving-average prefilter. The O-QPSK signal
// occupies only the lower quarter of the 8 MHz capture bandwidth, so a
// short boxcar suppresses out-of-band noise ahead of CFO estimation
// without distorting the periodicity.
func Boxcar(x []complex128, n int) []complex128 {
	return boxcarInto(make([]complex128, len(x)), x, n)
}

// boxcarInto is Boxcar writing into dst (len(dst) must equal len(x); dst
// must not alias x unless n ≤ 1).
func boxcarInto(dst, x []complex128, n int) []complex128 {
	if n <= 1 {
		copy(dst, x)
		return dst
	}
	var acc complex128
	scale := complex(1/float64(n), 0)
	for i, v := range x {
		acc += v
		if i >= n {
			acc -= x[i-n]
		}
		dst[i] = acc * scale
	}
	return dst
}

// PreamblePeriodSamples is the periodicity of the 802.15.4 preamble
// waveform: one symbol-0 PN sequence of 32 chips.
const PreamblePeriodSamples = phy.ChipsPerSymbol * phy.SamplesPerChip

package estimate

import (
	"errors"
	"fmt"

	"vvd/internal/dsp"
	"vvd/internal/mathx"
)

// MMSE computes the linear minimum-mean-square-error channel estimate:
//
//	ĥ = (XᴴX + (σ²/σ_h²)·I)⁻¹ Xᴴ y
//
// i.e. LS with diagonal loading proportional to the noise-to-channel power
// ratio. The paper uses plain LS throughout and explicitly leaves
// noise-aware estimation "as future work to keep the proof of image based
// channel estimation simple" (§5); this implements that future work. In
// the low-SNR regime MMSE shrinks the noisy taps toward zero, which is
// exactly where the paper notes LS "is not the best fit" (§6.6).
//
// noiseVar is the per-sample noise power of rx; priorVar the expected
// per-tap channel power. Either may be estimated with NoiseVariance /
// PriorVariance.
func MMSE(known, rx []complex128, taps int, noiseVar, priorVar float64) ([]complex128, error) {
	if taps <= 0 {
		return nil, fmt.Errorf("estimate: MMSE needs taps > 0, got %d", taps)
	}
	if len(known) == 0 {
		return nil, errors.New("estimate: MMSE needs known samples")
	}
	rows := len(known) + taps - 1
	if len(rx) < rows {
		return nil, fmt.Errorf("%w: need %d have %d", ErrShortObservation, rows, len(rx))
	}
	if priorVar <= 0 {
		return nil, errors.New("estimate: MMSE needs positive prior variance")
	}
	if noiseVar < 0 {
		noiseVar = 0
	}
	xhx, xhy := normalEquations(known, rx[:rows], taps)
	load := complex(noiseVar/priorVar, 0)
	for i := 0; i < taps; i++ {
		xhx.Set(i, i, xhx.At(i, i)+load)
	}
	return mathx.Solve(xhx, xhy)
}

// NoiseVariance estimates the per-sample noise power from the residual of
// an LS fit: σ² = ‖y − X·ĥ‖² / (M − N) over the reference window.
func NoiseVariance(known, rx []complex128, hEst []complex128) (float64, error) {
	if len(known) == 0 || len(hEst) == 0 {
		return 0, errors.New("estimate: NoiseVariance needs inputs")
	}
	rows := len(known) + len(hEst) - 1
	if len(rx) < rows {
		return 0, ErrShortObservation
	}
	// X·ĥ is exactly the full linear convolution of the known samples with
	// the estimate — no need to materialize the convolution matrix.
	pred := dsp.Convolve(known, hEst)
	var res float64
	for i := 0; i < rows; i++ {
		d := rx[i] - pred[i]
		res += real(d)*real(d) + imag(d)*imag(d)
	}
	dof := rows - len(hEst)
	if dof <= 0 {
		dof = 1
	}
	return res / float64(dof), nil
}

// PriorVariance estimates the per-tap channel power from an existing
// estimate: σ_h² = ‖ĥ‖²/N.
func PriorVariance(hEst []complex128) float64 {
	if len(hEst) == 0 {
		return 0
	}
	var s float64
	for _, c := range hEst {
		s += real(c)*real(c) + imag(c)*imag(c)
	}
	return s / float64(len(hEst))
}

// EstimatePreambleMMSE is the MMSE counterpart of EstimatePreamble: it
// bootstraps noise and prior statistics from a first LS pass over the SHR,
// then solves the regularized system.
func (r *Receiver) EstimatePreambleMMSE(rx []complex128) ([]complex128, error) {
	ls, err := r.EstimatePreamble(rx)
	if err != nil {
		return nil, err
	}
	noiseVar, err := NoiseVariance(r.shrKnown, rx, ls)
	if err != nil {
		return nil, err
	}
	prior := PriorVariance(ls)
	if prior <= 0 {
		return ls, nil
	}
	return MMSE(r.shrKnown, rx, r.Cfg.CIRTaps, noiseVar, prior)
}

package mathx

import (
	"fmt"
	"math/cmplx"
)

// Autocorrelation returns the biased sample autocorrelation R[τ] of a complex
// series for lags 0..maxLag:
//
//	R[τ] = (1/N) Σ_{k=τ}^{N−1} x[k]·conj(x[k−τ])
//
// The biased estimator guarantees a positive semi-definite autocorrelation
// matrix, which Yule-Walker fitting relies on.
func Autocorrelation(x []complex128, maxLag int) []complex128 {
	if maxLag < 0 {
		panic("mathx: Autocorrelation needs maxLag >= 0")
	}
	n := len(x)
	out := make([]complex128, maxLag+1)
	if n == 0 {
		return out
	}
	for lag := 0; lag <= maxLag && lag < n; lag++ {
		var s complex128
		for k := lag; k < n; k++ {
			s += x[k] * cmplx.Conj(x[k-lag])
		}
		out[lag] = s / complex(float64(n), 0)
	}
	return out
}

// YuleWalker fits a complex AR(p) model to a series with the Yule-Walker
// equations (paper appendix, Eq. 12–14): R·φ = r where R is the Hermitian
// Toeplitz autocorrelation matrix. Returns the AR coefficients φ₁..φ_p and
// the innovation (driving noise) variance.
func YuleWalker(x []complex128, p int) (phi []complex128, noiseVar float64, err error) {
	if p <= 0 {
		return nil, 0, fmt.Errorf("mathx: YuleWalker needs order p > 0, got %d", p)
	}
	if len(x) <= p {
		return nil, 0, fmt.Errorf("mathx: YuleWalker needs len(x) > p (%d <= %d)", len(x), p)
	}
	r := Autocorrelation(x, p)
	if cmplx.Abs(r[0]) == 0 {
		// All-zero series: a zero AR model reproduces it exactly.
		return make([]complex128, p), 0, nil
	}
	// Hermitian Toeplitz matrix R with R[i][j] = r[i-j] (conj for j>i).
	R := NewMatrix(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			lag := i - j
			if lag >= 0 {
				R.Set(i, j, r[lag])
			} else {
				R.Set(i, j, cmplx.Conj(r[-lag]))
			}
		}
	}
	// Small diagonal loading stabilizes near-deterministic series.
	load := complex(1e-12*cmplx.Abs(r[0]), 0)
	for i := 0; i < p; i++ {
		R.Set(i, i, R.At(i, i)+load)
	}
	rhs := make([]complex128, p)
	copy(rhs, r[1:p+1])
	phi, err = Solve(R, rhs)
	if err != nil {
		return nil, 0, fmt.Errorf("mathx: YuleWalker solve: %w", err)
	}
	// Innovation variance σ² = R[0] − Σ φ_i·conj(R[i]).
	v := real(r[0])
	for i, c := range phi {
		v -= real(c * cmplx.Conj(r[i+1]))
	}
	if v < 0 {
		v = 0
	}
	return phi, v, nil
}

// Mean returns the arithmetic mean of a real series (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of a real series.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

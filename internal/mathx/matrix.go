// Package mathx provides the complex-valued linear algebra needed by the
// channel estimation stack: dense complex matrices, Hermitian products,
// least-squares solves via the normal equations, convolution (Toeplitz)
// matrix construction, autocorrelation and Yule-Walker AR fitting.
//
// Everything operates on complex128. Sizes in this problem domain are tiny
// (tens of rows/columns), so the implementations favour clarity and numeric
// robustness (partial pivoting) over asymptotic tricks.
package mathx

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrSingular is returned when a linear solve encounters a (numerically)
// singular system.
var ErrSingular = errors.New("mathx: singular matrix")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mathx: incompatible shapes")

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mathx: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mathx: FromRows needs at least one non-empty row")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("mathx: FromRows ragged input")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []complex128 {
	r := make([]complex128, m.Cols)
	copy(r, m.Data[i*m.Cols:(i+1)*m.Cols])
	return r
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []complex128 {
	c := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		c[i] = m.At(i, j)
	}
	return c
}

// Hermitian returns the conjugate transpose mᴴ.
func (m *Matrix) Hermitian() *Matrix {
	h := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			h.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return h
}

// Transpose returns mᵀ without conjugation.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("%w: (%dx%d)·(%dx%d)", ErrShape, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out, nil
}

// MulVec returns m·v for a column vector v.
func (m *Matrix) MulVec(v []complex128) ([]complex128, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("%w: (%dx%d)·vec(%d)", ErrShape, m.Rows, m.Cols, len(v))
	}
	out := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s complex128
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return nil, ErrShape
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out, nil
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) (*Matrix, error) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return nil, ErrShape
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= b.Data[i]
	}
	return out, nil
}

// Scale returns s·m.
func (m *Matrix) Scale(s complex128) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Solve solves the square system a·x = b for x using Gaussian elimination
// with partial pivoting. a and b are not modified.
func Solve(a *Matrix, b []complex128) ([]complex128, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: Solve needs square matrix, got %dx%d", ErrShape, a.Rows, a.Cols)
	}
	if a.Rows != len(b) {
		return nil, fmt.Errorf("%w: matrix %dx%d vs rhs %d", ErrShape, a.Rows, a.Cols, len(b))
	}
	n := a.Rows
	// Augmented working copies.
	w := a.Clone()
	x := make([]complex128, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot: pick the row with the largest magnitude in this column.
		pivot := col
		best := cmplx.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if mag := cmplx.Abs(w.At(r, col)); mag > best {
				best, pivot = mag, r
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				w.Data[col*n+j], w.Data[pivot*n+j] = w.Data[pivot*n+j], w.Data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / w.At(col, col)
		for r := col + 1; r < n; r++ {
			f := w.At(r, col) * inv
			if f == 0 {
				continue
			}
			w.Set(r, col, 0)
			for j := col + 1; j < n; j++ {
				w.Set(r, j, w.At(r, j)-f*w.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= w.At(i, j) * x[j]
		}
		x[i] = s / w.At(i, i)
	}
	return x, nil
}

// LU is a reusable partial-pivoting factorization for solving the same
// square system against many right-hand sides: Factor once, Solve per
// vector. The elimination follows Solve step for step (same pivot
// choices, same multiplier products), so LU.Solve(b) returns the same
// floats as Solve(a, b).
type LU struct {
	n   int
	w   *Matrix // upper triangle = U, strict lower = elimination factors
	piv []int   // row swapped with column i at step i
}

// Factor computes the PLU factorization of a square matrix. a is not
// modified.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: Factor needs square matrix, got %dx%d", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	w := a.Clone()
	piv := make([]int, n)
	for col := 0; col < n; col++ {
		pivot := col
		best := cmplx.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if mag := cmplx.Abs(w.At(r, col)); mag > best {
				best, pivot = mag, r
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		piv[col] = pivot
		if pivot != col {
			for j := 0; j < n; j++ {
				w.Data[col*n+j], w.Data[pivot*n+j] = w.Data[pivot*n+j], w.Data[col*n+j]
			}
		}
		inv := 1 / w.At(col, col)
		for r := col + 1; r < n; r++ {
			f := w.At(r, col) * inv
			w.Set(r, col, f) // store the multiplier in the eliminated slot
			if f == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				w.Set(r, j, w.At(r, j)-f*w.At(col, j))
			}
		}
	}
	return &LU{n: n, w: w, piv: piv}, nil
}

// Solve solves the factored system for one right-hand side. b is not
// modified. Safe for concurrent use.
func (lu *LU) Solve(b []complex128) ([]complex128, error) {
	n := lu.n
	if len(b) != n {
		return nil, fmt.Errorf("%w: LU %dx%d vs rhs %d", ErrShape, n, n, len(b))
	}
	x := make([]complex128, n)
	copy(x, b)
	w := lu.w
	// Apply every row interchange first: the stored multipliers were
	// row-swapped by later pivots during factorization, so the forward
	// substitution must run against the fully permuted right-hand side.
	for col := 0; col < n; col++ {
		if p := lu.piv[col]; p != col {
			x[col], x[p] = x[p], x[col]
		}
	}
	for col := 0; col < n; col++ {
		for r := col + 1; r < n; r++ {
			if f := w.At(r, col); f != 0 {
				x[r] -= f * x[col]
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= w.At(i, j) * x[j]
		}
		x[i] = s / w.At(i, i)
	}
	return x, nil
}

// Inverse returns a⁻¹ for a square matrix via column-wise solves.
func Inverse(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]complex128, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := Solve(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// LeastSquares solves min ‖a·x − b‖₂ via the normal equations
// (aᴴa)x = aᴴb, the formulation used throughout the paper (Eq. 4, Eq. 7).
// A tiny diagonal loading term keeps near-rank-deficient systems solvable.
func LeastSquares(a *Matrix, b []complex128) ([]complex128, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("%w: matrix %dx%d vs rhs %d", ErrShape, a.Rows, a.Cols, len(b))
	}
	ah := a.Hermitian()
	aha, err := ah.Mul(a)
	if err != nil {
		return nil, err
	}
	// Diagonal loading proportional to the matrix scale for robustness.
	var trace float64
	for i := 0; i < aha.Rows; i++ {
		trace += real(aha.At(i, i))
	}
	eps := complex(1e-12*trace/float64(aha.Rows), 0)
	for i := 0; i < aha.Rows; i++ {
		aha.Set(i, i, aha.At(i, i)+eps)
	}
	ahb, err := ah.MulVec(b)
	if err != nil {
		return nil, err
	}
	return Solve(aha, ahb)
}

// ConvolutionMatrix builds the (len(x)+taps−1)×taps convolution matrix Xᵏ of
// Eq. 5: column j holds x delayed by j rows. Multiplying by an FIR tap vector
// h performs full linear convolution x*h.
func ConvolutionMatrix(x []complex128, taps int) *Matrix {
	if taps <= 0 {
		panic("mathx: ConvolutionMatrix needs taps > 0")
	}
	if len(x) == 0 {
		panic("mathx: ConvolutionMatrix needs non-empty input")
	}
	m := NewMatrix(len(x)+taps-1, taps)
	for j := 0; j < taps; j++ {
		for i, v := range x {
			m.Set(i+j, j, v)
		}
	}
	return m
}

// MaxAbs returns the largest element magnitude in v.
func MaxAbs(v []complex128) float64 {
	var max float64
	for _, c := range v {
		if a := cmplx.Abs(c); a > max {
			max = a
		}
	}
	return max
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []complex128) float64 {
	var s float64
	for _, c := range v {
		s += real(c)*real(c) + imag(c)*imag(c)
	}
	return math.Sqrt(s)
}

// Dot returns the inner product Σ a[i]·conj(b[i]) (a correlates with b).
func Dot(a, b []complex128) complex128 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s complex128
	for i := 0; i < n; i++ {
		s += a[i] * cmplx.Conj(b[i])
	}
	return s
}

package mathx

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func cEq(t *testing.T, got, want complex128, msg string) {
	t.Helper()
	if cmplx.Abs(got-want) > tol {
		t.Fatalf("%s: got %v want %v", msg, got, want)
	}
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) not zero", i, j)
			}
		}
	}
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0x0 matrix")
		}
	}()
	NewMatrix(0, 0)
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 3+4i)
	cEq(t, m.At(1, 2), 3+4i, "At after Set")
	if m.At(0, 0) != 0 {
		t.Fatal("unrelated element modified")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			cEq(t, id.At(i, j), want, "identity element")
		}
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]complex128{{1, 2}, {3i, 4i}})
	cEq(t, m.At(0, 1), 2, "(0,1)")
	cEq(t, m.At(1, 0), 3i, "(1,0)")
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]complex128{{1, 2}, {3}})
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]complex128{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	cEq(t, m.At(0, 0), 1, "original unchanged after clone mutation")
}

func TestRowColCopies(t *testing.T) {
	m := FromRows([][]complex128{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	cEq(t, m.At(0, 0), 1, "Row returns a copy")
	c := m.Col(1)
	cEq(t, c[0], 2, "Col(1)[0]")
	cEq(t, c[1], 4, "Col(1)[1]")
}

func TestHermitian(t *testing.T) {
	m := FromRows([][]complex128{{1 + 1i, 2}, {3, 4 - 2i}, {5i, 6}})
	h := m.Hermitian()
	if h.Rows != 2 || h.Cols != 3 {
		t.Fatalf("hermitian shape %dx%d", h.Rows, h.Cols)
	}
	cEq(t, h.At(0, 0), 1-1i, "conjugated (0,0)")
	cEq(t, h.At(1, 1), 4+2i, "conjugated (1,1)")
	cEq(t, h.At(0, 2), -5i, "conjugated (0,2)")
}

func TestHermitianInvolution(t *testing.T) {
	m := randomMatrix(4, 3, 1)
	hh := m.Hermitian().Hermitian()
	for i := range m.Data {
		cEq(t, hh.Data[i], m.Data[i], "(Aᴴ)ᴴ = A")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]complex128{{1 + 1i, 2}, {3, 4}})
	tr := m.Transpose()
	cEq(t, tr.At(0, 0), 1+1i, "no conjugation in transpose")
	cEq(t, tr.At(1, 0), 2, "(1,0)")
}

func TestMul(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	cEq(t, c.At(0, 0), 19, "(0,0)")
	cEq(t, c.At(0, 1), 22, "(0,1)")
	cEq(t, c.At(1, 0), 43, "(1,0)")
	cEq(t, c.At(1, 1), 50, "(1,1)")
}

func TestMulShapeError(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]complex128{{1, 1i}, {2, 0}})
	v, err := a.MulVec([]complex128{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	cEq(t, v[0], 1+1i, "v[0]")
	cEq(t, v[1], 2, "v[1]")
}

func TestMulVecShapeError(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := a.MulVec([]complex128{1, 2}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{4, 3}, {2, 1}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	cEq(t, sum.At(0, 0), 5, "add")
	diff, err := a.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	cEq(t, diff.At(1, 1), 3, "sub")
	sc := a.Scale(2i)
	cEq(t, sc.At(0, 1), 4i, "scale")
}

func TestAddShapeError(t *testing.T) {
	a, b := NewMatrix(2, 2), NewMatrix(3, 3)
	if _, err := a.Add(b); err == nil {
		t.Fatal("expected shape error for Add")
	}
	if _, err := a.Sub(b); err == nil {
		t.Fatal("expected shape error for Sub")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]complex128{
		{2, 1},
		{1, 3},
	})
	x, err := Solve(a, []complex128{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	cEq(t, x[0], 1, "x[0]")
	cEq(t, x[1], 3, "x[1]")
}

func TestSolveComplexSystem(t *testing.T) {
	a := FromRows([][]complex128{
		{1 + 1i, 2},
		{3, 4 - 1i},
	})
	want := []complex128{2 - 1i, 1 + 2i}
	b, err := a.MulVec(want)
	if err != nil {
		t.Fatal(err)
	}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		cEq(t, x[i], want[i], "solution element")
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the initial pivot position: only solvable with row exchange.
	a := FromRows([][]complex128{
		{0, 1},
		{1, 0},
	})
	x, err := Solve(a, []complex128{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cEq(t, x[0], 3, "x[0]")
	cEq(t, x[1], 2, "x[1]")
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]complex128{
		{1, 2},
		{2, 4},
	})
	if _, err := Solve(a, []complex128{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSolveNonSquare(t *testing.T) {
	a := NewMatrix(3, 2)
	if _, err := Solve(a, []complex128{1, 2, 3}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := FromRows([][]complex128{{2, 1}, {1, 3}})
	b := []complex128{5, 10}
	orig := a.Clone()
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		cEq(t, a.Data[i], orig.Data[i], "matrix unchanged")
	}
	cEq(t, b[0], 5, "rhs unchanged")
}

func TestInverse(t *testing.T) {
	a := FromRows([][]complex128{
		{4, 7},
		{2, 6},
	})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := a.Mul(inv)
	if err != nil {
		t.Fatal(err)
	}
	id := Identity(2)
	for i := range id.Data {
		cEq(t, prod.Data[i], id.Data[i], "A·A⁻¹ = I")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent system recovers the generator exactly.
	a := randomMatrix(8, 3, 7)
	want := []complex128{1 + 2i, -0.5, 0.25i}
	b, err := a.MulVec(want)
	if err != nil {
		t.Fatal(err)
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if cmplx.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v want %v", i, x[i], want[i])
		}
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The LS residual must be orthogonal to the column space of A.
	a := randomMatrix(10, 3, 3)
	b := make([]complex128, 10)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax, err := a.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	res := make([]complex128, len(b))
	for i := range b {
		res[i] = b[i] - ax[i]
	}
	for j := 0; j < a.Cols; j++ {
		if d := cmplx.Abs(Dot(a.Col(j), res)); d > 1e-6 {
			t.Fatalf("residual not orthogonal to column %d: |dot| = %g", j, d)
		}
	}
}

func TestLeastSquaresShapeError(t *testing.T) {
	a := NewMatrix(4, 2)
	if _, err := LeastSquares(a, []complex128{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestConvolutionMatrixShape(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	m := ConvolutionMatrix(x, 3)
	if m.Rows != 6 || m.Cols != 3 {
		t.Fatalf("shape %dx%d, want 6x3", m.Rows, m.Cols)
	}
}

func TestConvolutionMatrixMatchesEq5(t *testing.T) {
	// Eq. 5 layout: column j is x shifted down by j.
	x := []complex128{10, 20, 30}
	m := ConvolutionMatrix(x, 2)
	want := [][]complex128{
		{10, 0},
		{20, 10},
		{30, 20},
		{0, 30},
	}
	for i, row := range want {
		for j, v := range row {
			cEq(t, m.At(i, j), v, "conv matrix element")
		}
	}
}

func TestConvolutionMatrixTimesTapsIsConvolution(t *testing.T) {
	x := []complex128{1, 2 + 1i, 3}
	h := []complex128{0.5, -0.25i}
	m := ConvolutionMatrix(x, len(h))
	got, err := m.MulVec(h)
	if err != nil {
		t.Fatal(err)
	}
	// Direct full convolution.
	want := make([]complex128, len(x)+len(h)-1)
	for i, xv := range x {
		for j, hv := range h {
			want[i+j] += xv * hv
		}
	}
	for i := range want {
		cEq(t, got[i], want[i], "convolution output")
	}
}

func TestConvolutionMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero taps")
		}
	}()
	ConvolutionMatrix([]complex128{1}, 0)
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs([]complex128{1, -2, 3i, 0}); got != 3 {
		t.Fatalf("MaxAbs = %v want 3", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Fatalf("MaxAbs(nil) = %v want 0", got)
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]complex128{3, 4i}); math.Abs(got-5) > tol {
		t.Fatalf("Norm2 = %v want 5", got)
	}
}

func TestDot(t *testing.T) {
	// Dot conjugates the second argument.
	got := Dot([]complex128{1i}, []complex128{1i})
	cEq(t, got, 1, "⟨i, i⟩ = 1")
}

func TestDotShorterSecondArg(t *testing.T) {
	got := Dot([]complex128{1, 2, 3}, []complex128{1})
	cEq(t, got, 1, "dot truncates to shorter length")
}

// Property: Solve(A, A·x) == x for random well-conditioned systems.
func TestSolvePropertyRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		n := 2 + int(seed%5)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		// Diagonal dominance guarantees conditioning.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+complex(float64(n)*3, 0))
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b, err := a.MulVec(x)
		if err != nil {
			return false
		}
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(got[i]-x[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᴴ = Bᴴ·Aᴴ.
func TestHermitianProductProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a := randomMatrix(3, 4, seed)
		b := randomMatrix(4, 2, seed+1)
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		lhs := ab.Hermitian()
		rhs, err := b.Hermitian().Mul(a.Hermitian())
		if err != nil {
			return false
		}
		for i := range lhs.Data {
			if cmplx.Abs(lhs.Data[i]-rhs.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func randomMatrix(rows, cols int, seed uint64) *Matrix {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

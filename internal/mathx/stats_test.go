package mathx

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestAutocorrelationLagZeroIsPower(t *testing.T) {
	x := []complex128{1, 1i, -1, -1i}
	r := Autocorrelation(x, 0)
	if math.Abs(real(r[0])-1) > tol || math.Abs(imag(r[0])) > tol {
		t.Fatalf("R[0] = %v want 1", r[0])
	}
}

func TestAutocorrelationConstantSeries(t *testing.T) {
	x := []complex128{2, 2, 2, 2, 2}
	r := Autocorrelation(x, 2)
	// Biased estimator: R[τ] = (N−τ)/N · 4.
	if math.Abs(real(r[1])-4.0*4/5) > tol {
		t.Fatalf("R[1] = %v", r[1])
	}
	if math.Abs(real(r[2])-4.0*3/5) > tol {
		t.Fatalf("R[2] = %v", r[2])
	}
}

func TestAutocorrelationEmpty(t *testing.T) {
	r := Autocorrelation(nil, 3)
	if len(r) != 4 {
		t.Fatalf("len = %d want 4", len(r))
	}
	for _, v := range r {
		if v != 0 {
			t.Fatal("expected zeros for empty input")
		}
	}
}

func TestAutocorrelationLagBeyondLength(t *testing.T) {
	x := []complex128{1, 2}
	r := Autocorrelation(x, 5)
	if len(r) != 6 {
		t.Fatalf("len = %d want 6", len(r))
	}
	for lag := 2; lag <= 5; lag++ {
		if r[lag] != 0 {
			t.Fatalf("R[%d] = %v want 0", lag, r[lag])
		}
	}
}

func TestAutocorrelationHermitianSymmetryOfR0(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	r := Autocorrelation(x, 0)
	if math.Abs(imag(r[0])) > 1e-12 {
		t.Fatalf("R[0] must be real, got %v", r[0])
	}
	if real(r[0]) < 0 {
		t.Fatalf("R[0] must be non-negative, got %v", r[0])
	}
}

func TestYuleWalkerRecoversAR1(t *testing.T) {
	// Simulate x[k] = φ·x[k−1] + w[k] and recover φ.
	phi := complex(0.8, 0.1)
	rng := rand.New(rand.NewPCG(42, 43))
	x := make([]complex128, 20000)
	for k := 1; k < len(x); k++ {
		w := complex(rng.NormFloat64(), rng.NormFloat64()) * 0.1
		x[k] = phi*x[k-1] + w
	}
	got, noise, err := YuleWalker(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(got[0]-phi) > 0.05 {
		t.Fatalf("phi = %v want ≈ %v", got[0], phi)
	}
	if noise <= 0 {
		t.Fatalf("noise variance = %v want > 0", noise)
	}
}

func TestYuleWalkerAR2(t *testing.T) {
	phi1, phi2 := complex(0.5, 0), complex(0.3, 0)
	rng := rand.New(rand.NewPCG(7, 8))
	x := make([]complex128, 30000)
	for k := 2; k < len(x); k++ {
		w := complex(rng.NormFloat64(), rng.NormFloat64()) * 0.05
		x[k] = phi1*x[k-1] + phi2*x[k-2] + w
	}
	got, _, err := YuleWalker(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(got[0]-phi1) > 0.06 || cmplx.Abs(got[1]-phi2) > 0.06 {
		t.Fatalf("phi = %v want ≈ [%v %v]", got, phi1, phi2)
	}
}

func TestYuleWalkerZeroSeries(t *testing.T) {
	x := make([]complex128, 100)
	phi, noise, err := YuleWalker(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range phi {
		if c != 0 {
			t.Fatal("expected zero AR coefficients for zero series")
		}
	}
	if noise != 0 {
		t.Fatalf("noise = %v want 0", noise)
	}
}

func TestYuleWalkerOrderErrors(t *testing.T) {
	if _, _, err := YuleWalker([]complex128{1, 2, 3}, 0); err == nil {
		t.Fatal("expected error for p=0")
	}
	if _, _, err := YuleWalker([]complex128{1, 2}, 5); err == nil {
		t.Fatal("expected error for len <= p")
	}
}

func TestYuleWalkerNoiseVarianceNonNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed*2+1))
		x := make([]complex128, 256)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		for p := 1; p <= 4; p++ {
			_, v, err := YuleWalker(x, p)
			if err != nil || v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVariance(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if m := Mean(x); math.Abs(m-2.5) > tol {
		t.Fatalf("Mean = %v", m)
	}
	if v := Variance(x); math.Abs(v-1.25) > tol {
		t.Fatalf("Variance = %v", v)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-input mean/variance should be 0")
	}
}

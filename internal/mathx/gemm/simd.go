package gemm

// Element-wise inference kernels that bracket the GEMMs: activation
// quantization, accumulator dequantization and fused ReLU+2×2 pooling.
// Like the matrix kernels they dispatch to AVX2 on amd64 and fall back to
// portable Go elsewhere. They live here rather than in the nn package so
// every SIMD entry point shares one CPU-feature gate.

var (
	quantU8Kern func(dst []uint8, src []float32, invA float32) int
	dequantKern func(dst []float32, acc []int32, scale float32) int
	poolAvgKern func(dst, r0, r1 []float32, c int) bool
	poolMaxKern func(dst, r0, r1 []float32, c int) bool
	packQuadK   func(dst, a, b, c, d []uint8)
)

// PackQuad8 writes one 32-byte quad block of the PackedAInt8 panel
// layout: dst[r*4+i] = src_i[r] for the four 8-byte source windows
// a,b,c,d (a 4×8 byte transpose). Each source must expose 8 bytes, dst 32.
func PackQuad8(dst, a, b, c, d []uint8) {
	if packQuadK != nil {
		packQuadK(dst, a, b, c, d)
		return
	}
	_ = dst[31]
	for r := 0; r < 8; r++ {
		dst[r*4] = a[r]
		dst[r*4+1] = b[r]
		dst[r*4+2] = c[r]
		dst[r*4+3] = d[r]
	}
}

// QuantizeU8 encodes activations as unsigned 7-bit codes:
// clamp(round(v·invA), 0, 127), rounding half to even.
func QuantizeU8(dst []uint8, src []float32, invA float32) {
	i := 0
	if quantU8Kern != nil {
		i = quantU8Kern(dst, src, invA)
	}
	quantizeU8Go(dst[i:], src[i:], invA)
}

func quantizeU8Go(dst []uint8, src []float32, invA float32) {
	for i, v := range src {
		q := v * invA
		switch {
		case q <= 0:
			dst[i] = 0
		case q >= 127:
			dst[i] = 127
		default:
			dst[i] = uint8(roundEven32(q))
		}
	}
}

// roundEven32 rounds to nearest, ties to even, for q in (0, 127) — the
// same rounding CVTPS2DQ applies in the vector path.
func roundEven32(q float32) int32 {
	r := int32(q + 0.5)
	if float32(r)-q == 0.5 && r&1 == 1 {
		r--
	}
	return r
}

// DequantScale writes dst[i] = float32(acc[i]) · scale.
func DequantScale(dst []float32, acc []int32, scale float32) {
	i := 0
	if dequantKern != nil {
		i = dequantKern(dst, acc, scale)
	}
	for ; i < len(dst); i++ {
		dst[i] = float32(acc[i]) * scale
	}
}

// Pool2x2AvgReLU writes one output row of fused ReLU + 2×2/stride-2
// average pooling over the interleaved-channel input rows r0 and r1:
//
//	dst[x·c+ch] = mean of max(0, ·) over the 2×2 window at (2x, ch)
//
// dst holds ow·c floats; r0 and r1 must each expose at least 2·ow·c.
func Pool2x2AvgReLU(dst, r0, r1 []float32, c int) {
	if c%8 == 0 && poolAvgKern != nil && poolAvgKern(dst, r0, r1, c) {
		return
	}
	for x := 0; x*c < len(dst); x++ {
		o, i0 := x*c, 2*x*c
		for ch := 0; ch < c; ch++ {
			dst[o+ch] = (relu(r0[i0+ch]) + relu(r0[i0+c+ch]) +
				relu(r1[i0+ch]) + relu(r1[i0+c+ch])) * 0.25
		}
	}
}

// Pool2x2MaxReLU is Pool2x2AvgReLU with max pooling.
func Pool2x2MaxReLU(dst, r0, r1 []float32, c int) {
	if c%8 == 0 && poolMaxKern != nil && poolMaxKern(dst, r0, r1, c) {
		return
	}
	for x := 0; x*c < len(dst); x++ {
		o, i0 := x*c, 2*x*c
		for ch := 0; ch < c; ch++ {
			best := r0[i0+ch]
			if v := r0[i0+c+ch]; v > best {
				best = v
			}
			if v := r1[i0+ch]; v > best {
				best = v
			}
			if v := r1[i0+c+ch]; v > best {
				best = v
			}
			if best < 0 {
				best = 0
			}
			dst[o+ch] = best
		}
	}
}

func relu(v float32) float32 {
	if v < 0 {
		return 0
	}
	return v
}

//go:build amd64

package gemm

// cpuid and xgetbv are implemented in detect_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// sgemmKern8x8 and qgemmKern8x8 are the AVX2+FMA micro-kernels in
// kernels_amd64.s. Panel layouts match the Go kernels exactly.
//
//go:noescape
func sgemmKern8x8(k int64, a, b, c *float32, ldc int64)

//go:noescape
func qgemmKern8x8(kp4 int64, a *uint8, b *int8, c *int32, ldc int64)

// Element-wise inference kernels in simd_amd64.s. The int results report
// how many leading elements were handled (a multiple of 8; the Go wrapper
// finishes the tail), the bool results report whether the kernel ran.
//
//go:noescape
func quantU8Asm(dst []uint8, src []float32, invA float32) int

//go:noescape
func dequantAsm(dst []float32, acc []int32, scale float32) int

//go:noescape
func poolAvgAsm(dst, r0, r1 []float32, c int) bool

//go:noescape
func poolMaxAsm(dst, r0, r1 []float32, c int) bool

//go:noescape
func packQuad8Asm(dst, a, b, c, d []uint8)

func init() {
	if !haveAVX2FMA() {
		return
	}
	accelerated = true
	kernF32 = func(kc int, a, b, c []float32, ldc int) {
		sgemmKern8x8(int64(kc), &a[0], &b[0], &c[0], int64(ldc))
	}
	kernI8 = func(kp4 int, a []uint8, b []int8, c []int32, ldc int) {
		qgemmKern8x8(int64(kp4), &a[0], &b[0], &c[0], int64(ldc))
	}
	quantU8Kern = quantU8Asm
	dequantKern = dequantAsm
	poolAvgKern = poolAvgAsm
	poolMaxKern = poolMaxAsm
	packQuadK = packQuad8Asm
}

// haveAVX2FMA reports CPU+OS support for the AVX2/FMA kernels.
func haveAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	const fma = 1 << 12
	if ecx1&osxsave == 0 || ecx1&avx == 0 || ecx1&fma == 0 {
		return false
	}
	// OS must preserve XMM+YMM state across context switches.
	xcr0, _ := xgetbv0()
	if xcr0&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

//go:build amd64

#include "textflag.h"

// Element-wise AVX2 inference kernels. All loops run 8 floats per
// iteration; callers guarantee the lengths they pass (quant/dequant
// handle any length by returning how much they processed, the pool
// kernels require len(dst) to be a multiple of c and c a multiple of 8).

// func quantU8Asm(dst []uint8, src []float32, invA float32) int
//
// dst[i] = clamp(round-to-even(src[i]·invA), 0, 127) for the leading
// len(src)&^7 elements; returns that count.
TEXT ·quantU8Asm(SB), NOSPLIT, $0-64
	MOVQ  dst_base+0(FP), DI
	MOVQ  src_base+24(FP), SI
	MOVQ  src_len+32(FP), CX
	ANDQ  $-8, CX
	MOVQ  CX, ret+56(FP)
	TESTQ CX, CX
	JZ    qdone
	VBROADCASTSS invA+48(FP), Y0
	VXORPS Y1, Y1, Y1
	MOVL  $0x42FE0000, AX // 127.0f
	MOVL  AX, X2
	VBROADCASTSS X2, Y2

qloop:
	VMULPS (SI), Y0, Y3
	VMAXPS Y1, Y3, Y3
	VMINPS Y2, Y3, Y3
	VCVTPS2DQ Y3, Y3            // round to nearest even
	VEXTRACTI128 $1, Y3, X4
	VPACKUSDW X4, X3, X3        // 8×s32 → 8×u16
	VPACKUSWB X3, X3, X3        // 8×u16 → 8×u8 (low half)
	MOVQ   X3, (DI)
	ADDQ   $32, SI
	ADDQ   $8, DI
	SUBQ   $8, CX
	JNZ    qloop

qdone:
	VZEROUPPER
	RET

// func dequantAsm(dst []float32, acc []int32, scale float32) int
//
// dst[i] = float32(acc[i])·scale for the leading len(dst)&^7 elements;
// returns that count.
TEXT ·dequantAsm(SB), NOSPLIT, $0-64
	MOVQ  dst_base+0(FP), DI
	MOVQ  acc_base+24(FP), SI
	MOVQ  dst_len+8(FP), CX
	ANDQ  $-8, CX
	MOVQ  CX, ret+56(FP)
	TESTQ CX, CX
	JZ    ddone
	VBROADCASTSS scale+48(FP), Y0

dloop:
	VCVTDQ2PS (SI), Y1
	VMULPS Y0, Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ   $32, SI
	ADDQ   $32, DI
	SUBQ   $8, CX
	JNZ    dloop

ddone:
	VZEROUPPER
	RET

// func poolAvgAsm(dst, r0, r1 []float32, c int) bool
//
// One output row of fused ReLU + 2×2/stride-2 average pooling over
// interleaved-channel rows r0/r1: dst[x·c+ch] = mean of the clamped 2×2
// window. len(dst) must be a multiple of c, c a multiple of 8.
TEXT ·poolAvgAsm(SB), NOSPLIT, $0-81
	MOVQ  dst_base+0(FP), DI
	MOVQ  dst_len+8(FP), CX
	MOVQ  r0_base+24(FP), SI
	MOVQ  r1_base+48(FP), DX
	MOVQ  c+72(FP), R8
	MOVB  $1, ret+80(FP)
	VXORPS Y1, Y1, Y1
	MOVL  $0x3E800000, AX // 0.25f
	MOVL  AX, X2
	VBROADCASTSS X2, Y2
	LEAQ  (R8*4), R9      // channel-block stride in bytes

pavgx:
	TESTQ CX, CX
	JZ    pavgdone
	LEAQ  (SI)(R9*1), R11 // right column of the window
	LEAQ  (DX)(R9*1), R12
	XORQ  R10, R10

pavgj:
	VMOVUPS (SI)(R10*1), Y3
	VMAXPS Y1, Y3, Y3
	VMOVUPS (R11)(R10*1), Y4
	VMAXPS Y1, Y4, Y4
	VADDPS Y4, Y3, Y3
	VMOVUPS (DX)(R10*1), Y5
	VMAXPS Y1, Y5, Y5
	VADDPS Y5, Y3, Y3
	VMOVUPS (R12)(R10*1), Y6
	VMAXPS Y1, Y6, Y6
	VADDPS Y6, Y3, Y3
	VMULPS Y2, Y3, Y3
	VMOVUPS Y3, (DI)(R10*1)
	ADDQ   $32, R10
	CMPQ   R10, R9
	JLT    pavgj

	ADDQ  R9, DI
	LEAQ  (SI)(R9*2), SI
	LEAQ  (DX)(R9*2), DX
	SUBQ  R8, CX
	JMP   pavgx

pavgdone:
	VZEROUPPER
	RET

// func poolMaxAsm(dst, r0, r1 []float32, c int) bool
//
// Max-pool variant of poolAvgAsm: dst[x·c+ch] = max(0, window max).
TEXT ·poolMaxAsm(SB), NOSPLIT, $0-81
	MOVQ  dst_base+0(FP), DI
	MOVQ  dst_len+8(FP), CX
	MOVQ  r0_base+24(FP), SI
	MOVQ  r1_base+48(FP), DX
	MOVQ  c+72(FP), R8
	MOVB  $1, ret+80(FP)
	VXORPS Y1, Y1, Y1
	LEAQ  (R8*4), R9

pmaxx:
	TESTQ CX, CX
	JZ    pmaxdone
	LEAQ  (SI)(R9*1), R11
	LEAQ  (DX)(R9*1), R12
	XORQ  R10, R10

pmaxj:
	VMOVUPS (SI)(R10*1), Y3
	VMAXPS (R11)(R10*1), Y3, Y3
	VMAXPS (DX)(R10*1), Y3, Y3
	VMAXPS (R12)(R10*1), Y3, Y3
	VMAXPS Y1, Y3, Y3
	VMOVUPS Y3, (DI)(R10*1)
	ADDQ   $32, R10
	CMPQ   R10, R9
	JLT    pmaxj

	ADDQ  R9, DI
	LEAQ  (SI)(R9*2), SI
	LEAQ  (DX)(R9*2), DX
	SUBQ  R8, CX
	JMP   pmaxx

pmaxdone:
	VZEROUPPER
	RET

// func packQuad8Asm(dst, a, b, c, d []uint8)
//
// 4×8 byte transpose: dst[r*4+i] = src_i[r]. One PackedAInt8 quad block
// from four 8-byte source windows, via SSE byte/word unpacks.
TEXT ·packQuad8Asm(SB), NOSPLIT, $0-120
	MOVQ  dst_base+0(FP), DI
	MOVQ  a_base+24(FP), SI
	MOVQ  b_base+48(FP), DX
	MOVQ  c_base+72(FP), CX
	MOVQ  d_base+96(FP), R8
	MOVQ  (SI), X0
	MOVQ  (DX), X1
	MOVQ  (CX), X2
	MOVQ  (R8), X3
	PUNPCKLBW X1, X0 // a0 b0 a1 b1 ...
	PUNPCKLBW X3, X2 // c0 d0 c1 d1 ...
	MOVO  X0, X4
	PUNPCKLWL X2, X0 // lanes 0-3: a b c d per lane
	PUNPCKHWL X2, X4 // lanes 4-7
	MOVOU X0, (DI)
	MOVOU X4, 16(DI)
	RET

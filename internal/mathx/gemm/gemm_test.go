package gemm

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
)

// refMul is the float64 reference: C += A·B in the same k-major
// summation order as the kernels.
func refMul(m, k, n int, a, b []float32, c []float64) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for p := 0; p < k; p++ {
				acc += float64(a[i*k+p]) * float64(b[p*n+j])
			}
			c[i*n+j] += acc
		}
	}
}

func randMat(rng *rand.Rand, size int) []float32 {
	m := make([]float32, size)
	for i := range m {
		m[i] = float32(rng.NormFloat64())
	}
	return m
}

// TestSgemmMatchesReference drives random shapes — including every edge
// case the tiler has (ragged rows, ragged cols, k above the chunk size) —
// against the float64 reference.
func TestSgemmMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 7))
	shapes := [][3]int{
		{1, 1, 1}, {8, 8, 8}, {7, 3, 5}, {9, 9, 9}, {16, 9, 8},
		{33, 17, 22}, {130, 72, 16}, {257, 224, 64}, {64, 1100, 9},
		{4224, 9, 8}, {5, 2048, 3},
	}
	for range 8 {
		shapes = append(shapes, [3]int{rng.IntN(200) + 1, rng.IntN(300) + 1, rng.IntN(70) + 1})
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randMat(rng, m*k)
		b := randMat(rng, k*n)
		c := make([]float32, m*n)
		for i := range c {
			c[i] = float32(rng.NormFloat64()) // C += must respect prior content
		}
		want := make([]float64, m*n)
		for i := range want {
			want[i] = float64(c[i])
		}
		refMul(m, k, n, a, b, want)
		Sgemm(m, k, n, a, b, c)
		for i := range c {
			diff := math.Abs(float64(c[i]) - want[i])
			tol := 1e-4 + 1e-5*math.Abs(want[i])*math.Sqrt(float64(k))
			if diff > tol {
				t.Fatalf("m=%d k=%d n=%d: c[%d]=%g want %g (diff %g)", m, k, n, i, c[i], want[i], diff)
			}
		}
	}
}

// TestSgemmKernelAgreement pins the assembly and Go micro-kernels against
// each other (FMA-rounding tolerance) on the same packed panels.
func TestSgemmKernelAgreement(t *testing.T) {
	if !Accelerated() {
		t.Skip("no SIMD kernel on this platform")
	}
	rng := rand.New(rand.NewPCG(3, 9))
	for _, kc := range []int{1, 2, 7, 8, 64, 129} {
		a := randMat(rng, kc*mr)
		b := randMat(rng, kc*nr)
		cAsm := make([]float32, mr*nr)
		cGo := make([]float32, mr*nr)
		kernF32(kc, a, b, cAsm, nr)
		sgemmKern8x8Go(kc, a, b, cGo, nr)
		for i := range cAsm {
			diff := math.Abs(float64(cAsm[i] - cGo[i]))
			if diff > 1e-3+1e-4*math.Abs(float64(cGo[i])) {
				t.Fatalf("kc=%d: asm[%d]=%g go=%g", kc, i, cAsm[i], cGo[i])
			}
		}
	}
}

// refMulInt8 is the exact integer reference.
func refMulInt8(m, k, n int, a []uint8, b []int8, c []int32) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for p := 0; p < k; p++ {
				acc += int32(a[i*k+p]) * int32(b[p*n+j])
			}
			c[i*n+j] += acc
		}
	}
}

// TestQgemmMatchesReference: the quantized path is exact integer math, so
// SIMD and Go must agree with the reference bit for bit.
func TestQgemmMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 77))
	shapes := [][3]int{
		{1, 1, 1}, {8, 8, 8}, {7, 3, 5}, {9, 9, 9}, {16, 10, 8},
		{33, 17, 22}, {130, 72, 16}, {257, 224, 64}, {4224, 9, 8}, {3, 127, 6},
	}
	for range 8 {
		shapes = append(shapes, [3]int{rng.IntN(200) + 1, rng.IntN(300) + 1, rng.IntN(70) + 1})
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := make([]uint8, m*k)
		for i := range a {
			a[i] = uint8(rng.IntN(128)) // quantizer range: 7-bit unsigned
		}
		b := make([]int8, k*n)
		for i := range b {
			b[i] = int8(rng.IntN(255) - 127)
		}
		c := make([]int32, m*n)
		for i := range c {
			c[i] = int32(rng.IntN(1000) - 500)
		}
		want := append([]int32(nil), c...)
		refMulInt8(m, k, n, a, b, want)
		QgemmPacked(m, a, k, PackBInt8(k, n, b), c, n)
		for i := range c {
			if c[i] != want[i] {
				t.Fatalf("m=%d k=%d n=%d: c[%d]=%d want %d", m, k, n, i, c[i], want[i])
			}
		}
	}
}

// TestQgemmSaturationBound documents the kernel precondition: with
// activations ≤127 and weights in [-127,127] the pairwise s16 sum of the
// SIMD path peaks at 2·127·127 = 32258 < 32767, so it can never saturate.
func TestQgemmSaturationBound(t *testing.T) {
	k := 64
	a := make([]uint8, k)
	b := make([]int8, k)
	for i := range a {
		a[i] = 127
		b[i] = -127
	}
	c := make([]int32, 1)
	QgemmPacked(1, a, k, PackBInt8(k, 1, b), c, 1)
	if want := int32(-127 * 127 * int32(k)); c[0] != want {
		t.Fatalf("worst-case accumulate = %d, want %d", c[0], want)
	}
}

func TestAcceleratedReportsPlatform(t *testing.T) {
	t.Logf("SIMD kernels active: %v", Accelerated())
}

// ---------- benchmarks ----------

// BenchmarkGemm measures the shapes the CNN inference path actually runs
// (conv1/conv2/conv3 im2col products and the hidden dense layer).
func BenchmarkGemm(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, s := range [][3]int{{4224, 9, 8}, {924, 72, 8}, {171, 72, 16}, {8, 224, 64}} {
		m, k, n := s[0], s[1], s[2]
		a := randMat(rng, m*k)
		pb := PackB(k, n, randMat(rng, k*n))
		c := make([]float32, m*n)
		b.Run(fmt.Sprintf("f32_%dx%dx%d", m, k, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SgemmPacked(m, a, k, pb, c, n)
			}
			b.ReportMetric(2*float64(m)*float64(k)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
		a8 := make([]uint8, m*k)
		for i := range a8 {
			a8[i] = uint8(rng.IntN(128))
		}
		b8 := make([]int8, k*n)
		for i := range b8 {
			b8[i] = int8(rng.IntN(255) - 127)
		}
		pb8 := PackBInt8(k, n, b8)
		c32 := make([]int32, m*n)
		b.Run(fmt.Sprintf("int8_%dx%dx%d", m, k, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				QgemmPacked(m, a8, k, pb8, c32, n)
			}
			b.ReportMetric(2*float64(m)*float64(k)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GOP/s")
		})
	}
}

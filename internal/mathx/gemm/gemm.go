// Package gemm implements the matrix-multiply core of the inference
// engine: a cache-blocked float32 GEMM and a symmetric-quantized
// int8×int8→int32 variant, both built around an 8×8 register micro-tile.
//
// The weight operand B is packed once (PackB / PackBInt8) into NR-wide
// column panels and reused across every call — for CNN inference the
// weights never change, so the packing cost is paid at model-compile time.
// The activation operand A is packed per call into MR-row panels held in
// pooled scratch, so steady-state calls allocate nothing. On amd64 with
// AVX2+FMA the micro-kernel is hand-written assembly (8 FMA lanes per
// cycle pair); everywhere else a pure-Go kernel with the same summation
// order runs, so results are platform-independent up to FMA rounding.
//
// Large products are tiled across goroutines by row block; row blocks are
// disjoint, so the parallel result is bitwise identical to sequential.
package gemm

import (
	"encoding/binary"
	"runtime"
	"sync"
)

const (
	// mr×nr is the register micro-tile computed by one kernel call.
	mr = 8
	nr = 8
	// mcRows bounds the packed-A block per worker pass (L2 budget:
	// 128 rows × 1024 k × 4 B = 512 KiB worst case, far less at CNN K).
	mcRows = 128
	// kcCols bounds the K extent of one packed panel pass so the A and B
	// panels stay L1-resident (8 × 1024 × 4 B = 32 KiB each at the cap).
	kcCols = 1024
	// parallelFlops is the m·k·n product above which SgemmPacked fans out
	// across GOMAXPROCS goroutines.
	parallelFlops = 1 << 20
)

// kernF32 is the active float32 micro-kernel: C[8×8] += A_panel·B_panel
// where a is k×8 (a[p*8+r]), b is k×8 (b[p*8+j]) and c has row stride ldc.
// dispatch_amd64.go swaps in the AVX2+FMA version when the CPU supports it.
var kernF32 = sgemmKern8x8Go

// kernI8 is the active int8 micro-kernel over k/2 byte-pair steps:
// C[8×8] += A_panel(u8)·B_panel(s8) with pair-interleaved panels (see
// packAInt8). Integer accumulation is exact, so both implementations
// return identical results.
var kernI8 = qgemmKern8x8Go

// Accelerated reports whether the SIMD micro-kernels are active (amd64
// with AVX2+FMA detected at startup).
func Accelerated() bool { return accelerated }

var accelerated bool

// ---------- float32 ----------

// PackedB is a weight matrix packed into NR-wide column panels, ready to
// stream through the micro-kernel. Build once per weight tensor.
type PackedB struct {
	K, N int
	data []float32 // ceil(N/nr) panels, each K×nr, zero-padded columns
}

// PackB packs the row-major k×n matrix b.
func PackB(k, n int, b []float32) *PackedB {
	if len(b) < k*n {
		panic("gemm: PackB matrix shorter than k×n")
	}
	tiles := (n + nr - 1) / nr
	pb := &PackedB{K: k, N: n, data: make([]float32, tiles*k*nr)}
	for t := 0; t < tiles; t++ {
		panel := pb.data[t*k*nr:]
		j0 := t * nr
		cols := min(nr, n-j0)
		for p := 0; p < k; p++ {
			row := b[p*n+j0:]
			dst := panel[p*nr : p*nr+nr]
			for j := 0; j < cols; j++ {
				dst[j] = row[j]
			}
			for j := cols; j < nr; j++ {
				dst[j] = 0
			}
		}
	}
	return pb
}

// scratch holds one worker's packing buffers and edge tiles.
type scratch struct {
	apanel  []float32
	apanel8 []uint8
	tile    [mr * nr]float32
	tile32  [mr * nr]int32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// SgemmPacked computes C += A·B: a is row-major m×K with stride lda,
// c is row-major m×N with stride ldc, b was packed with PackB. Safe for
// concurrent use; the call itself fans out over row blocks when the
// product is large enough.
func SgemmPacked(m int, a []float32, lda int, pb *PackedB, c []float32, ldc int) {
	if m == 0 {
		return
	}
	k, n := pb.K, pb.N
	workers := runtime.GOMAXPROCS(0)
	blocks := (m + mcRows - 1) / mcRows
	if workers > blocks {
		workers = blocks
	}
	if workers <= 1 || m*k*n < parallelFlops {
		sgemmRange(0, m, a, lda, pb, c, ldc)
		return
	}
	var wg sync.WaitGroup
	per := (blocks + workers - 1) / workers * mcRows
	for i0 := 0; i0 < m; i0 += per {
		i1 := min(i0+per, m)
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			sgemmRange(i0, i1, a, lda, pb, c, ldc)
		}(i0, i1)
	}
	wg.Wait()
}

// Sgemm is the convenience form: C += A·B with b packed on the fly
// (tests and one-shot callers; hot paths pre-pack).
func Sgemm(m, k, n int, a, b, c []float32) {
	SgemmPacked(m, a, k, PackB(k, n, b), c, n)
}

// ---------- caller-prepacked A ----------
//
// Producers that materialize A anyway (im2col) can write it directly in
// panel form and skip the per-call packing pass entirely. The float32
// layout is MR-row panels, k-major within a panel:
//
//	ap[t*k*MR + p*MR + r] = A[t*MR+r, p]
//
// with the tail panel's out-of-range rows zeroed by the producer. The
// int8 layout additionally interleaves K four deep (see PackedBInt8):
//
//	ap[t*KP(k)*MR + qq*4*MR + r*4 + i] = A[t*MR+r, 4*qq+i]
//
// The prepacked path does not chunk K, so it requires k ≤ the kcCols
// panel budget (every CNN patch depth is far below it).

// MR is the row count of one packed-A panel.
const MR = mr

// KP returns k rounded up to the int8 quad-interleave granularity.
func KP(k int) int { return (k + 3) &^ 3 }

// PackedALen returns the float32 buffer length for a prepacked m×k A.
func PackedALen(m, k int) int { return (m + mr - 1) / mr * k * mr }

// PackedAInt8Len returns the uint8 buffer length for a prepacked m×k A.
func PackedAInt8Len(m, k int) int { return (m + mr - 1) / mr * KP(k) * mr }

// SgemmPrepacked computes C += A·B with A already in panel layout (see
// above); c is row-major m×N with stride ldc. Requires pb.K ≤ 1024.
func SgemmPrepacked(m int, ap []float32, pb *PackedB, c []float32, ldc int) {
	if m == 0 {
		return
	}
	if pb.K > kcCols {
		panic("gemm: SgemmPrepacked requires K within the panel budget")
	}
	rtiles := (m + mr - 1) / mr
	workers := runtime.GOMAXPROCS(0)
	if workers > rtiles {
		workers = rtiles
	}
	if workers <= 1 || m*pb.K*pb.N < parallelFlops {
		sgemmPreRange(0, rtiles, m, ap, pb, c, ldc)
		return
	}
	var wg sync.WaitGroup
	per := (rtiles + workers - 1) / workers
	for q0 := 0; q0 < rtiles; q0 += per {
		q1 := min(q0+per, rtiles)
		wg.Add(1)
		go func(q0, q1 int) {
			defer wg.Done()
			sgemmPreRange(q0, q1, m, ap, pb, c, ldc)
		}(q0, q1)
	}
	wg.Wait()
}

func sgemmPreRange(q0, q1, m int, ap []float32, pb *PackedB, c []float32, ldc int) {
	k, n := pb.K, pb.N
	st := scratchPool.Get().(*scratch)
	defer scratchPool.Put(st)
	for q := q0; q < q1; q++ {
		a := ap[q*k*mr:]
		rrows := min(mr, m-q*mr)
		for t := 0; t*nr < n; t++ {
			bp := pb.data[t*k*nr:]
			j0 := t * nr
			cols := min(nr, n-j0)
			if rrows == mr && cols == nr {
				kernF32(k, a, bp, c[q*mr*ldc+j0:], ldc)
				continue
			}
			clear(st.tile[:])
			kernF32(k, a, bp, st.tile[:], nr)
			for r := 0; r < rrows; r++ {
				crow := c[(q*mr+r)*ldc+j0:]
				for j := 0; j < cols; j++ {
					crow[j] += st.tile[r*nr+j]
				}
			}
		}
	}
}

// QgemmPrepacked is the int8 counterpart of SgemmPrepacked: A already in
// quad-interleaved panel layout, C int32 row-major with stride ldc.
func QgemmPrepacked(m int, ap []uint8, pb *PackedBInt8, c []int32, ldc int) {
	if m == 0 {
		return
	}
	rtiles := (m + mr - 1) / mr
	workers := runtime.GOMAXPROCS(0)
	if workers > rtiles {
		workers = rtiles
	}
	if workers <= 1 || m*pb.K*pb.N < parallelFlops {
		qgemmPreRange(0, rtiles, m, ap, pb, c, ldc)
		return
	}
	var wg sync.WaitGroup
	per := (rtiles + workers - 1) / workers
	for q0 := 0; q0 < rtiles; q0 += per {
		q1 := min(q0+per, rtiles)
		wg.Add(1)
		go func(q0, q1 int) {
			defer wg.Done()
			qgemmPreRange(q0, q1, m, ap, pb, c, ldc)
		}(q0, q1)
	}
	wg.Wait()
}

func qgemmPreRange(q0, q1, m int, ap []uint8, pb *PackedBInt8, c []int32, ldc int) {
	n, kp := pb.N, pb.kp
	st := scratchPool.Get().(*scratch)
	defer scratchPool.Put(st)
	for q := q0; q < q1; q++ {
		a := ap[q*kp*mr:]
		rrows := min(mr, m-q*mr)
		for t := 0; t*nr < n; t++ {
			bp := pb.data[t*kp*nr:]
			j0 := t * nr
			cols := min(nr, n-j0)
			if rrows == mr && cols == nr {
				kernI8(kp/4, a, bp, c[q*mr*ldc+j0:], ldc)
				continue
			}
			clear(st.tile32[:])
			kernI8(kp/4, a, bp, st.tile32[:], nr)
			for r := 0; r < rrows; r++ {
				crow := c[(q*mr+r)*ldc+j0:]
				for j := 0; j < cols; j++ {
					crow[j] += st.tile32[r*nr+j]
				}
			}
		}
	}
}

func sgemmRange(i0, i1 int, a []float32, lda int, pb *PackedB, c []float32, ldc int) {
	k, n := pb.K, pb.N
	st := scratchPool.Get().(*scratch)
	defer scratchPool.Put(st)
	for ic := i0; ic < i1; ic += mcRows {
		rows := min(mcRows, i1-ic)
		rtiles := (rows + mr - 1) / mr
		for kc0 := 0; kc0 < k; kc0 += kcCols {
			kc := min(kcCols, k-kc0)
			st.apanel = packA(st.apanel, a[ic*lda+kc0:], lda, rows, kc)
			for t := 0; t*nr < n; t++ {
				bp := pb.data[t*k*nr+kc0*nr:]
				j0 := t * nr
				cols := min(nr, n-j0)
				for q := 0; q < rtiles; q++ {
					ap := st.apanel[q*kc*mr:]
					rrows := min(mr, rows-q*mr)
					if rrows == mr && cols == nr {
						kernF32(kc, ap, bp, c[(ic+q*mr)*ldc+j0:], ldc)
						continue
					}
					clear(st.tile[:])
					kernF32(kc, ap, bp, st.tile[:], nr)
					for r := 0; r < rrows; r++ {
						crow := c[(ic+q*mr+r)*ldc+j0:]
						for j := 0; j < cols; j++ {
							crow[j] += st.tile[r*nr+j]
						}
					}
				}
			}
		}
	}
}

// packA copies rows×kc of a (stride lda) into MR-row panels laid out
// a[q][p*mr+r], zero-padding the tail rows of the last panel.
func packA(dst []float32, a []float32, lda, rows, kc int) []float32 {
	rtiles := (rows + mr - 1) / mr
	need := rtiles * kc * mr
	if cap(dst) < need {
		dst = make([]float32, need)
	}
	dst = dst[:need]
	for q := 0; q < rtiles; q++ {
		panel := dst[q*kc*mr:]
		for r := 0; r < mr; r++ {
			row := q*mr + r
			if row >= rows {
				for p := 0; p < kc; p++ {
					panel[p*mr+r] = 0
				}
				continue
			}
			src := a[row*lda : row*lda+kc]
			for p, v := range src {
				panel[p*mr+r] = v
			}
		}
	}
	return dst
}

// sgemmKern8x8Go is the portable micro-kernel (same k-order summation as
// the assembly version, without fused multiply-add).
func sgemmKern8x8Go(kc int, a, b, c []float32, ldc int) {
	var acc [mr * nr]float32
	for p := 0; p < kc; p++ {
		bv := b[p*nr : p*nr+nr]
		av := a[p*mr : p*mr+mr]
		for r := 0; r < mr; r++ {
			ar := av[r]
			row := acc[r*nr : r*nr+nr]
			for j, bj := range bv {
				row[j] += ar * bj
			}
		}
	}
	for r := 0; r < mr; r++ {
		crow := c[r*ldc : r*ldc+nr]
		for j := 0; j < nr; j++ {
			crow[j] += acc[r*nr+j]
		}
	}
}

// ---------- int8 ----------

// PackedBInt8 is a symmetric-quantized weight matrix packed for the
// u8×s8→s32 kernel: NR-wide column panels with the K dimension
// interleaved four deep, so each 32-bit lane of a panel block holds one
// column's next four weights (VPMADDUBSW + VPMADDWD reduce a 4-deep dot
// product per lane).
type PackedBInt8 struct {
	K, N int
	kp   int // K rounded up to a multiple of 4
	data []int8
}

// PackBInt8 packs the row-major k×n int8 matrix b.
func PackBInt8(k, n int, b []int8) *PackedBInt8 {
	if len(b) < k*n {
		panic("gemm: PackBInt8 matrix shorter than k×n")
	}
	kp := (k + 3) &^ 3
	tiles := (n + nr - 1) / nr
	pb := &PackedBInt8{K: k, N: n, kp: kp, data: make([]int8, tiles*kp*nr)}
	for t := 0; t < tiles; t++ {
		panel := pb.data[t*kp*nr:]
		j0 := t * nr
		cols := min(nr, n-j0)
		for qq := 0; qq < kp/4; qq++ {
			blk := panel[qq*4*nr:]
			for j := 0; j < cols; j++ {
				for i := 0; i < 4; i++ {
					p := 4*qq + i
					if p < k {
						blk[j*4+i] = b[p*n+j0+j]
					}
				}
			}
		}
	}
	return pb
}

// QgemmPacked computes C += A·B for quantized operands: a is row-major
// m×K uint8 with stride lda, c is row-major m×N int32 with stride ldc.
// Accumulation is exact; callers zero c (or pre-load it with a bias in
// the int32 domain) before the call. The kernel requires activation
// values ≤ 127 — the quantizer's 7-bit unsigned range — so the s16
// intermediate of the SIMD path cannot saturate.
func QgemmPacked(m int, a []uint8, lda int, pb *PackedBInt8, c []int32, ldc int) {
	if m == 0 {
		return
	}
	k, n := pb.K, pb.N
	workers := runtime.GOMAXPROCS(0)
	blocks := (m + mcRows - 1) / mcRows
	if workers > blocks {
		workers = blocks
	}
	if workers <= 1 || m*k*n < parallelFlops {
		qgemmRange(0, m, a, lda, pb, c, ldc)
		return
	}
	var wg sync.WaitGroup
	per := (blocks + workers - 1) / workers * mcRows
	for i0 := 0; i0 < m; i0 += per {
		i1 := min(i0+per, m)
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			qgemmRange(i0, i1, a, lda, pb, c, ldc)
		}(i0, i1)
	}
	wg.Wait()
}

func qgemmRange(i0, i1 int, a []uint8, lda int, pb *PackedBInt8, c []int32, ldc int) {
	k, n, kp := pb.K, pb.N, pb.kp
	st := scratchPool.Get().(*scratch)
	defer scratchPool.Put(st)
	for ic := i0; ic < i1; ic += mcRows {
		rows := min(mcRows, i1-ic)
		rtiles := (rows + mr - 1) / mr
		// K is never chunked on the int8 path: CNN patch depths are far
		// below kcCols and the packed pair layout would complicate offsets.
		st.apanel8 = packAInt8(st.apanel8, a, lda, ic, rows, k, kp)
		for t := 0; t*nr < n; t++ {
			bp := pb.data[t*kp*nr:]
			j0 := t * nr
			cols := min(nr, n-j0)
			for q := 0; q < rtiles; q++ {
				ap := st.apanel8[q*kp*mr:]
				rrows := min(mr, rows-q*mr)
				if rrows == mr && cols == nr {
					kernI8(kp/4, ap, bp, c[(ic+q*mr)*ldc+j0:], ldc)
					continue
				}
				clear(st.tile32[:])
				kernI8(kp/4, ap, bp, st.tile32[:], nr)
				for r := 0; r < rrows; r++ {
					crow := c[(ic+q*mr+r)*ldc+j0:]
					for j := 0; j < cols; j++ {
						crow[j] += st.tile32[r*nr+j]
					}
				}
			}
		}
	}
}

// packAInt8 packs rows×k of a (stride lda, starting at row ic) into
// quad-interleaved MR-row panels: dst[q][qq*4*mr + r*4 + i] = A[row, 4qq+i].
func packAInt8(dst []uint8, a []uint8, lda, ic, rows, k, kp int) []uint8 {
	rtiles := (rows + mr - 1) / mr
	need := rtiles * kp * mr
	if cap(dst) < need {
		dst = make([]uint8, need)
	}
	dst = dst[:need]
	for q := 0; q < rtiles; q++ {
		panel := dst[q*kp*mr:]
		for r := 0; r < mr; r++ {
			row := q*mr + r
			if row >= rows {
				for qq := 0; qq < kp/4; qq++ {
					blk := panel[qq*4*mr+r*4:]
					blk[0], blk[1], blk[2], blk[3] = 0, 0, 0, 0
				}
				continue
			}
			src := a[(ic+row)*lda : (ic+row)*lda+k]
			nq := k >> 2
			for qq := 0; qq < nq; qq++ {
				binary.LittleEndian.PutUint32(panel[qq*4*mr+r*4:], binary.LittleEndian.Uint32(src[qq*4:]))
			}
			if k&3 != 0 {
				blk := panel[nq*4*mr+r*4:][:4]
				blk[0], blk[1], blk[2], blk[3] = 0, 0, 0, 0
				copy(blk, src[nq*4:])
			}
		}
	}
	return dst
}

// qgemmKern8x8Go is the portable int8 micro-kernel (exact integer match
// with the SIMD version).
func qgemmKern8x8Go(kp4 int, a []uint8, b []int8, c []int32, ldc int) {
	var acc [mr * nr]int32
	for qq := 0; qq < kp4; qq++ {
		ab := a[qq*4*mr : qq*4*mr+4*mr]
		bb := b[qq*4*nr : qq*4*nr+4*nr]
		for r := 0; r < mr; r++ {
			a0 := int32(ab[r*4])
			a1 := int32(ab[r*4+1])
			a2 := int32(ab[r*4+2])
			a3 := int32(ab[r*4+3])
			row := acc[r*nr : r*nr+nr]
			for j := 0; j < nr; j++ {
				bj := bb[j*4 : j*4+4]
				row[j] += a0*int32(bj[0]) + a1*int32(bj[1]) + a2*int32(bj[2]) + a3*int32(bj[3])
			}
		}
	}
	for r := 0; r < mr; r++ {
		crow := c[r*ldc : r*ldc+nr]
		for j := 0; j < nr; j++ {
			crow[j] += acc[r*nr+j]
		}
	}
}

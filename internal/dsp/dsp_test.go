package dsp

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func TestConvolveKnown(t *testing.T) {
	x := []complex128{1, 2, 3}
	h := []complex128{1, 1}
	got := Convolve(x, h)
	want := []complex128{1, 3, 5, 3}
	if len(got) != len(want) {
		t.Fatalf("len = %d want %d", len(got), len(want))
	}
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > tol {
			t.Fatalf("out[%d] = %v want %v", i, got[i], want[i])
		}
	}
}

func TestConvolveEmpty(t *testing.T) {
	if Convolve(nil, []complex128{1}) != nil {
		t.Fatal("expected nil for empty x")
	}
	if Convolve([]complex128{1}, nil) != nil {
		t.Fatal("expected nil for empty h")
	}
}

func TestConvolveIdentity(t *testing.T) {
	x := []complex128{1 + 1i, 2, -3i}
	got := Convolve(x, []complex128{1})
	for i := range x {
		if got[i] != x[i] { //vvdlint:bitexact -- identity/round-trip transform is exact by construction
			t.Fatal("convolution with unit impulse must be identity")
		}
	}
}

func TestConvolveCommutativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+9))
		x := randSlice(rng, 1+int(seed%8))
		h := randSlice(rng, 1+int((seed/8)%6))
		a, b := Convolve(x, h), Convolve(h, x)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if cmplx.Abs(a[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConvolveLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed*3+1))
		x := randSlice(rng, 5)
		y := randSlice(rng, 5)
		h := randSlice(rng, 3)
		sum := make([]complex128, 5)
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		lhs := Convolve(sum, h)
		cx, cy := Convolve(x, h), Convolve(y, h)
		for i := range lhs {
			if cmplx.Abs(lhs[i]-(cx[i]+cy[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterSameLengthAndValues(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	h := []complex128{1, -1}
	got := FilterSame(x, h)
	if len(got) != len(x) {
		t.Fatalf("len = %d want %d", len(got), len(x))
	}
	want := []complex128{1, 1, 1, 1}
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > tol {
			t.Fatalf("out[%d] = %v want %v", i, got[i], want[i])
		}
	}
}

func TestFilterSamePrefixOfFullConvolution(t *testing.T) {
	x := []complex128{1, 2i, 3, -4}
	h := []complex128{0.5, 0.25, -1i}
	same := FilterSame(x, h)
	full := Convolve(x, h)
	for i := range same {
		if cmplx.Abs(same[i]-full[i]) > tol {
			t.Fatalf("FilterSame[%d] != full conv prefix", i)
		}
	}
}

func TestCrossCorrelatePeakAtAlignment(t *testing.T) {
	ref := []complex128{1, -1, 1, 1}
	x := make([]complex128, 16)
	copy(x[5:], ref)
	c := CrossCorrelate(x, ref)
	best, bestLag := 0.0, -1
	for lag, v := range c {
		if a := cmplx.Abs(v); a > best {
			best, bestLag = a, lag
		}
	}
	if bestLag != 5 {
		t.Fatalf("peak at lag %d want 5", bestLag)
	}
	if math.Abs(best-4) > tol {
		t.Fatalf("peak magnitude %v want 4", best)
	}
}

func TestCrossCorrelateRefLongerThanX(t *testing.T) {
	if CrossCorrelate([]complex128{1}, []complex128{1, 2}) != nil {
		t.Fatal("expected nil when ref longer than x")
	}
}

func TestCrossCorrelatePhase(t *testing.T) {
	// A rotated copy of ref correlates with the rotation's phase.
	ref := []complex128{1, 1, 1, 1}
	theta := 0.7
	x := Rotate(ref, theta)
	c := CrossCorrelate(x, ref)
	if math.Abs(cmplx.Phase(c[0])-theta) > 1e-9 {
		t.Fatalf("phase = %v want %v", cmplx.Phase(c[0]), theta)
	}
}

func TestPower(t *testing.T) {
	if p := Power([]complex128{3, 4i}); math.Abs(p-12.5) > tol {
		t.Fatalf("Power = %v want 12.5", p)
	}
	if Power(nil) != 0 {
		t.Fatal("Power(nil) must be 0")
	}
}

func TestAddAWGNSNRLevel(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	x := make([]complex128, 200000)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, float64(i)))
	}
	for _, snr := range []float64{0, 10, 20} {
		noisy := AddAWGN(x, snr, rng)
		got := SNRdB(x, noisy)
		if math.Abs(got-snr) > 0.2 {
			t.Fatalf("requested %v dB, measured %v dB", snr, got)
		}
	}
}

func TestAddAWGNDoesNotMutate(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	x := []complex128{1, 2, 3}
	_ = AddAWGN(x, 0, rng)
	if x[0] != 1 || x[1] != 2 || x[2] != 3 {
		t.Fatal("input mutated")
	}
}

func TestSNRdBPerfect(t *testing.T) {
	x := []complex128{1, 2}
	if !math.IsInf(SNRdB(x, x), 1) {
		t.Fatal("identical signals must give +Inf SNR")
	}
}

func TestFractionalDelayKernelIntegerDelay(t *testing.T) {
	// Integer delay d puts a unit sample at center+d and ~0 elsewhere.
	k := FractionalDelayKernel(11, 5, 2)
	for i, v := range k {
		want := 0.0
		if i == 7 {
			want = 1.0
		}
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("k[%d] = %v want %v", i, v, want)
		}
	}
}

func TestFractionalDelayKernelSpreadsEnergy(t *testing.T) {
	k := FractionalDelayKernel(11, 5, 0.5)
	// Half-sample delay: the two neighbouring taps dominate equally.
	if math.Abs(k[5]-k[6]) > 1e-9 {
		t.Fatalf("taps around 0.5 delay not symmetric: %v vs %v", k[5], k[6])
	}
	if k[5] < 0.5 {
		t.Fatalf("dominant taps too small: %v", k[5])
	}
	// Pre-cursor (index < 5+0) energy exists but is small.
	if math.Abs(k[4]) < 1e-6 {
		t.Fatal("expected non-zero pre-cursor leakage")
	}
	if math.Abs(k[4]) > math.Abs(k[5]) {
		t.Fatal("pre-cursor must be below dominant tap")
	}
}

func TestFractionalDelayKernelZeroLength(t *testing.T) {
	if FractionalDelayKernel(0, 0, 1) != nil {
		t.Fatal("expected nil for n = 0")
	}
}

func TestUpsampleDownsampleRoundTrip(t *testing.T) {
	x := []complex128{1, 2i, 3, -4}
	up := Upsample(x, 4)
	if len(up) != 16 {
		t.Fatalf("len = %d want 16", len(up))
	}
	if up[4] != 2i || up[5] != 0 {
		t.Fatal("upsample zero stuffing wrong")
	}
	down := Downsample(up, 4, 0)
	for i := range x {
		if down[i] != x[i] { //vvdlint:bitexact -- identity/round-trip transform is exact by construction
			t.Fatal("round trip failed")
		}
	}
}

func TestUpsampleFactorOne(t *testing.T) {
	x := []complex128{1, 2}
	up := Upsample(x, 1)
	up[0] = 99
	if x[0] == 99 {
		t.Fatal("Upsample must copy even for factor 1")
	}
}

func TestDownsampleOffset(t *testing.T) {
	x := []complex128{0, 1, 2, 3, 4, 5}
	got := Downsample(x, 2, 1)
	want := []complex128{1, 3, 5}
	for i := range want {
		if got[i] != want[i] { //vvdlint:bitexact -- identity/round-trip transform is exact by construction
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestDownsamplePanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Downsample([]complex128{1}, 0, 0)
}

func TestHalfSinePulse(t *testing.T) {
	p := HalfSinePulse(4)
	if len(p) != 4 {
		t.Fatalf("len = %d", len(p))
	}
	if p[0] != 0 {
		t.Fatalf("p[0] = %v want 0", p[0])
	}
	if math.Abs(p[2]-1) > tol {
		t.Fatalf("p[2] = %v want 1 (peak at mid-chip)", p[2])
	}
	if math.Abs(p[1]-p[3]) > tol {
		t.Fatal("half-sine must be symmetric about its peak")
	}
}

func TestHalfSinePulsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HalfSinePulse(0)
}

func TestRotatePreservesMagnitudeProperty(t *testing.T) {
	f := func(seed uint64, theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		rng := rand.New(rand.NewPCG(seed, 11))
		x := randSlice(rng, 8)
		y := Rotate(x, theta)
		for i := range x {
			if math.Abs(cmplx.Abs(y[i])-cmplx.Abs(x[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyCFOThenInverseIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	x := randSlice(rng, 64)
	fwd := ApplyCFO(x, 1500, 8e6)
	back := ApplyCFO(fwd, -1500, 8e6)
	for i := range x {
		if cmplx.Abs(back[i]-x[i]) > 1e-9 {
			t.Fatal("CFO inverse failed")
		}
	}
}

func TestApplyCFOZeroIsIdentity(t *testing.T) {
	x := []complex128{1, 2i}
	y := ApplyCFO(x, 0, 8e6)
	for i := range x {
		if y[i] != x[i] { //vvdlint:bitexact -- identity/round-trip transform is exact by construction
			t.Fatal("zero CFO must be identity")
		}
	}
}

func randSlice(rng *rand.Rand, n int) []complex128 {
	s := make([]complex128, n)
	for i := range s {
		s[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return s
}

// Package fft implements the fast Fourier transforms backing the dsp
// package's fast convolution and correlation paths: an iterative in-place
// radix-2 Cooley-Tukey transform for power-of-two lengths and Bluestein's
// chirp-z algorithm for arbitrary lengths (including primes).
//
// Plans (twiddle factors, bit-reversal permutations, chirp sequences) are
// computed once per size and cached in a process-wide table; they are
// immutable after construction and safe for concurrent use. Scratch
// buffers are pooled so steady-state transforms allocate only their
// output.
package fft

import (
	"math"
	"sync"
)

// Plan holds the precomputed tables for a power-of-two transform size.
// A Plan is immutable and safe for concurrent use.
type Plan struct {
	n       int
	logN    uint
	rev     []int32      // bit-reversal permutation
	twiddle []complex128 // e^{-2πi k/n} for k = 0..n/2-1
}

var planCache sync.Map // int -> *Plan

// PlanFor returns the (cached) plan for power-of-two size n.
// It panics if n is not a positive power of two.
func PlanFor(n int) *Plan {
	if n <= 0 || n&(n-1) != 0 {
		panic("fft: PlanFor needs a positive power-of-two size")
	}
	if p, ok := planCache.Load(n); ok {
		return p.(*Plan)
	}
	p := newPlan(n)
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*Plan)
}

func newPlan(n int) *Plan {
	logN := uint(0)
	for 1<<logN < n {
		logN++
	}
	rev := make([]int32, n)
	for i := 1; i < n; i++ {
		rev[i] = rev[i>>1]>>1 | int32(i&1)<<(logN-1)
	}
	tw := make([]complex128, n/2)
	for k := range tw {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		tw[k] = complex(c, s)
	}
	return &Plan{n: n, logN: logN, rev: rev, twiddle: tw}
}

// N returns the transform size of the plan.
func (p *Plan) N() int { return p.n }

// Forward computes the in-place DFT of x (len(x) must equal p.N()).
func (p *Plan) Forward(x []complex128) {
	if len(x) != p.n {
		panic("fft: Forward length mismatch")
	}
	p.transform(x)
}

// Inverse computes the in-place inverse DFT of x, scaled by 1/n.
func (p *Plan) Inverse(x []complex128) {
	if len(x) != p.n {
		panic("fft: Inverse length mismatch")
	}
	// IFFT(x) = conj(FFT(conj(x)))/n.
	for i, v := range x {
		x[i] = complex(real(v), -imag(v))
	}
	p.transform(x)
	inv := 1 / float64(p.n)
	for i, v := range x {
		x[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}

// transform is the iterative radix-2 decimation-in-time kernel.
func (p *Plan) transform(x []complex128) {
	for i, r := range p.rev {
		if int32(i) < r {
			x[i], x[r] = x[r], x[i]
		}
	}
	n := p.n
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size // twiddle stride
		for start := 0; start < n; start += size {
			tw := 0
			for i := start; i < start+half; i++ {
				w := p.twiddle[tw]
				tw += step
				a, b := x[i], x[i+half]*w
				x[i], x[i+half] = a+b, a-b
			}
		}
	}
}

// NextPow2 returns the smallest power of two ≥ n (minimum 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// scratch pools per-size work buffers for the convolution helpers.
var scratch sync.Pool // *[]complex128

func getBuf(n int) []complex128 {
	if v := scratch.Get(); v != nil {
		b := *v.(*[]complex128)
		if cap(b) >= n {
			b = b[:n]
			for i := range b {
				b[i] = 0
			}
			return b
		}
	}
	return make([]complex128, n)
}

func putBuf(b []complex128) {
	scratch.Put(&b)
}

// Convolve returns the full linear convolution x*h (length
// len(x)+len(h)−1) computed with a single zero-padded power-of-two FFT
// (no overlap segmentation). Returns nil for empty inputs.
func Convolve(x, h []complex128) []complex128 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	out := make([]complex128, len(x)+len(h)-1)
	ConvolveTo(out, x, h)
	return out
}

// ConvolveTo writes the full linear convolution x*h into dst, which must
// have length len(x)+len(h)−1: the FFT pipeline runs entirely in pooled
// scratch, so a caller with a reusable output buffer allocates nothing.
func ConvolveTo(dst, x, h []complex128) {
	outLen := len(x) + len(h) - 1
	if len(dst) != outLen {
		panic("fft: ConvolveTo needs len(dst) == len(x)+len(h)-1")
	}
	n := NextPow2(outLen)
	p := PlanFor(n)
	a := getBuf(n)
	b := getBuf(n)
	copy(a, x)
	copy(b, h)
	p.Forward(a)
	p.Forward(b)
	for i := range a {
		a[i] *= b[i]
	}
	p.Inverse(a)
	copy(dst, a)
	putBuf(a)
	putBuf(b)
}

// CrossCorrelate computes c[lag] = Σ_n x[n+lag]·conj(ref[n]) for
// lag = 0..len(x)−len(ref) via FFT: the correlation is the convolution of
// x with the conjugated, time-reversed reference. Returns nil if ref is
// empty or longer than x.
func CrossCorrelate(x, ref []complex128) []complex128 {
	m := len(ref)
	if m == 0 || m > len(x) {
		return nil
	}
	outLen := len(x) - m + 1
	n := NextPow2(len(x) + m - 1)
	p := PlanFor(n)
	a := getBuf(n)
	b := getBuf(n)
	copy(a, x)
	for i, v := range ref { // conj + time reversal
		b[m-1-i] = complex(real(v), -imag(v))
	}
	p.Forward(a)
	p.Forward(b)
	for i := range a {
		a[i] *= b[i]
	}
	p.Inverse(a)
	// Full correlation lags start at −(m−1); lag 0 sits at index m−1.
	out := make([]complex128, outLen)
	copy(out, a[m-1:m-1+outLen])
	putBuf(a)
	putBuf(b)
	return out
}

// Transform returns the n-point DFT of x for any length n: radix-2 for
// powers of two, Bluestein's chirp-z algorithm otherwise. The input is not
// modified.
func Transform(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		PlanFor(n).Forward(out)
		return out
	}
	bluesteinFor(n).transform(out, false)
	return out
}

// InverseTransform returns the n-point inverse DFT of x (scaled by 1/n)
// for any length n. The input is not modified.
func InverseTransform(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		PlanFor(n).Inverse(out)
		return out
	}
	bluesteinFor(n).transform(out, true)
	return out
}

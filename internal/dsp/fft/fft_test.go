package fft

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
)

// naiveDFT is the O(n²) reference transform.
func naiveDFT(x []complex128, inv bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inv {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			s += x[t] * cmplx.Exp(complex(0, sign*2*math.Pi*float64(k)*float64(t)/float64(n)))
		}
		if inv {
			s /= complex(float64(n), 0)
		}
		out[k] = s
	}
	return out
}

func randVec(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestTransformMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	// Powers of two, composites, primes — Bluestein must cover them all.
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 13, 16, 31, 64, 97, 100, 128, 251} {
		x := randVec(rng, n)
		got := Transform(x)
		want := naiveDFT(x, false)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Fatalf("n=%d: max error %g", n, e)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{1, 2, 5, 8, 17, 32, 60, 101, 256} {
		x := randVec(rng, n)
		y := InverseTransform(Transform(x))
		if e := maxErr(y, x); e > 1e-9*float64(n) {
			t.Fatalf("n=%d: round trip error %g", n, e)
		}
	}
}

func TestTransformDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, n := range []int{8, 13} {
		x := randVec(rng, n)
		orig := append([]complex128(nil), x...)
		Transform(x)
		InverseTransform(x)
		for i := range x {
			if x[i] != orig[i] { //vvdlint:bitexact -- identity/round-trip transform is exact by construction
				t.Fatalf("n=%d: input modified", n)
			}
		}
	}
}

func naiveConvolve(x, h []complex128) []complex128 {
	out := make([]complex128, len(x)+len(h)-1)
	for i, xv := range x {
		for j, hv := range h {
			out[i+j] += xv * hv
		}
	}
	return out
}

func TestConvolveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for _, c := range []struct{ nx, nh int }{{1, 1}, {5, 3}, {64, 11}, {100, 41}, {257, 129}, {1000, 999}} {
		x, h := randVec(rng, c.nx), randVec(rng, c.nh)
		got := Convolve(x, h)
		want := naiveConvolve(x, h)
		if len(got) != len(want) {
			t.Fatalf("nx=%d nh=%d: length %d want %d", c.nx, c.nh, len(got), len(want))
		}
		if e := maxErr(got, want); e > 1e-8*math.Sqrt(float64(c.nx*c.nh)) {
			t.Fatalf("nx=%d nh=%d: max error %g", c.nx, c.nh, e)
		}
	}
	if Convolve(nil, randVec(rng, 4)) != nil || Convolve(randVec(rng, 4), nil) != nil {
		t.Fatal("empty convolution must be nil")
	}
}

func naiveCrossCorrelate(x, ref []complex128) []complex128 {
	out := make([]complex128, len(x)-len(ref)+1)
	for lag := range out {
		var s complex128
		for n, rv := range ref {
			s += x[lag+n] * cmplx.Conj(rv)
		}
		out[lag] = s
	}
	return out
}

func TestCrossCorrelateMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for _, c := range []struct{ nx, nr int }{{4, 4}, {16, 5}, {100, 100}, {301, 77}, {1024, 512}} {
		x, ref := randVec(rng, c.nx), randVec(rng, c.nr)
		got := CrossCorrelate(x, ref)
		want := naiveCrossCorrelate(x, ref)
		if len(got) != len(want) {
			t.Fatalf("nx=%d nr=%d: length %d want %d", c.nx, c.nr, len(got), len(want))
		}
		if e := maxErr(got, want); e > 1e-8*math.Sqrt(float64(c.nx*c.nr)) {
			t.Fatalf("nx=%d nr=%d: max error %g", c.nx, c.nr, e)
		}
	}
	if CrossCorrelate(randVec(rng, 3), randVec(rng, 4)) != nil {
		t.Fatal("ref longer than x must be nil")
	}
	if CrossCorrelate(randVec(rng, 3), nil) != nil {
		t.Fatal("empty ref must be nil")
	}
}

func TestPlanForRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("PlanFor(%d) did not panic", n)
				}
			}()
			PlanFor(n)
		}()
	}
}

func TestPlanConcurrentUse(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	x := randVec(rng, 311)
	h := randVec(rng, 97)
	want := Convolve(x, h)
	done := make(chan []complex128, 8)
	for g := 0; g < 8; g++ {
		go func() { done <- Convolve(x, h) }()
	}
	for g := 0; g < 8; g++ {
		got := <-done
		if e := maxErr(got, want); e > 1e-10 {
			t.Fatalf("concurrent convolution diverged: %g", e)
		}
	}
}

package fft

import (
	"math"
	"sync"
)

// bluestein holds the precomputed chirp state for an arbitrary transform
// length n: the DFT of any length reduces to a linear convolution with a
// chirp sequence, which runs on a power-of-two radix-2 plan of size
// ≥ 2n−1. Immutable after construction.
type bluestein struct {
	n     int
	m     int          // power-of-two convolution size, ≥ 2n−1
	plan  *Plan        // radix-2 plan of size m
	chirp []complex128 // w[k] = e^{-iπ k²/n}, k = 0..n−1
	bfft  []complex128 // FFT of the zero-padded, wrapped conj chirp
}

var bluesteinCache sync.Map // int -> *bluestein

func bluesteinFor(n int) *bluestein {
	if v, ok := bluesteinCache.Load(n); ok {
		return v.(*bluestein)
	}
	b := newBluestein(n)
	actual, _ := bluesteinCache.LoadOrStore(n, b)
	return actual.(*bluestein)
}

func newBluestein(n int) *bluestein {
	m := NextPow2(2*n - 1)
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k² mod 2n keeps the phase argument small for large n (k²/n is
		// only meaningful modulo 2).
		kk := (int64(k) * int64(k)) % int64(2*n)
		s, c := math.Sincos(-math.Pi * float64(kk) / float64(n))
		chirp[k] = complex(c, s)
	}
	// Convolution kernel: conj(chirp) at positive AND mirrored negative
	// lags, wrapped around the circular buffer of size m.
	bf := make([]complex128, m)
	for k := 0; k < n; k++ {
		cc := complex(real(chirp[k]), -imag(chirp[k]))
		bf[k] = cc
		if k > 0 {
			bf[m-k] = cc
		}
	}
	plan := PlanFor(m)
	plan.Forward(bf)
	return &bluestein{n: n, m: m, plan: plan, chirp: chirp, bfft: bf}
}

// transform computes the DFT (or inverse DFT when inv is true) of x in
// place; len(x) must equal b.n.
func (b *bluestein) transform(x []complex128, inv bool) {
	if len(x) != b.n {
		panic("fft: bluestein length mismatch")
	}
	if inv {
		for i, v := range x {
			x[i] = complex(real(v), -imag(v))
		}
	}
	a := getBuf(b.m)
	for k, v := range x {
		a[k] = v * b.chirp[k]
	}
	b.plan.Forward(a)
	for i := range a {
		a[i] *= b.bfft[i]
	}
	b.plan.Inverse(a)
	for k := range x {
		x[k] = a[k] * b.chirp[k]
	}
	putBuf(a)
	if inv {
		s := 1 / float64(b.n)
		for i, v := range x {
			x[i] = complex(real(v)*s, -imag(v)*s)
		}
	}
}

// Package dsp provides the signal-processing primitives shared by the PHY
// and the channel simulator: complex convolution and FIR filtering,
// cross-correlation, band-limited fractional-delay kernels, additive white
// Gaussian noise, and power/SNR utilities.
package dsp

import (
	"math"
	"math/cmplx"
	"math/rand/v2"

	"vvd/internal/dsp/fft"
)

// FFTMinOverlap is the measured size cutoff above which the zero-padded
// FFT path beats direct evaluation: both operands (and, for correlation,
// the number of output lags) must reach this length before the three
// transforms amortize. Below it — notably the 11-tap CIR convolutions —
// direct evaluation stays faster and bit-exact. See DESIGN.md
// ("generation pipeline") for the measurement.
const FFTMinOverlap = 128

// Convolve returns the full linear convolution x*h
// (length len(x)+len(h)−1). Either argument may be the longer one.
// Large inputs (both operands ≥ 128 samples) route through a zero-padded
// FFT, identical to the direct sum within float tolerance.
func Convolve(x, h []complex128) []complex128 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	if len(x) >= FFTMinOverlap && len(h) >= FFTMinOverlap {
		return fft.Convolve(x, h)
	}
	out := make([]complex128, len(x)+len(h)-1)
	directConvolve(out, x, h)
	return out
}

// directConvolve accumulates the linear convolution x*h into the zeroed
// buffer dst, iterating the shorter operand in the outer loop so the
// inner loop runs long contiguous spans.
func directConvolve(dst, x, h []complex128) {
	if len(h) < len(x) {
		x, h = h, x
	}
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		out := dst[i : i+len(h)]
		for j, hv := range h {
			out[j] += xv * hv
		}
	}
}

// ConvolveTo writes the full linear convolution x*h into dst, which must
// have length len(x)+len(h)−1 and must not alias either input (the
// direct path zeroes dst before reading the operands). It lets callers
// with a reusable output buffer avoid the per-call allocation of
// Convolve; the result is identical to Convolve for the same inputs.
func ConvolveTo(dst, x, h []complex128) {
	if len(dst) != len(x)+len(h)-1 {
		panic("dsp: ConvolveTo needs len(dst) == len(x)+len(h)-1")
	}
	if len(x) >= FFTMinOverlap && len(h) >= FFTMinOverlap {
		fft.ConvolveTo(dst, x, h)
		return
	}
	for i := range dst {
		dst[i] = 0
	}
	directConvolve(dst, x, h)
}

// FilterSame applies FIR taps h to x and returns the "same"-length output:
// out[n] = Σ h[k]·x[n−k], with x treated as zero outside its bounds.
// This equals the first len(x) samples of the full convolution, so it
// shares Convolve's FFT fast path above the size cutoff.
func FilterSame(x, h []complex128) []complex128 {
	if len(x) == 0 {
		return nil
	}
	if len(h) == 0 {
		return make([]complex128, len(x))
	}
	if len(x) >= FFTMinOverlap && len(h) >= FFTMinOverlap {
		return fft.Convolve(x, h)[:len(x)]
	}
	out := make([]complex128, len(x))
	for n := range x {
		var s complex128
		for k, hv := range h {
			if idx := n - k; idx >= 0 && idx < len(x) {
				s += hv * x[idx]
			}
		}
		out[n] = s
	}
	return out
}

// CrossCorrelate computes c[lag] = Σ_n x[n+lag]·conj(ref[n]) for
// lag = 0..len(x)−len(ref). It is the sliding correlation used for frame
// synchronization. Returns nil if ref is longer than x. When both the
// reference and the lag range are long (≥ 128) — preamble sync over a
// full waveform — the correlation runs via FFT; short lag windows stay on
// the direct path with the conjugated reference hoisted out of the lag
// loop.
func CrossCorrelate(x, ref []complex128) []complex128 {
	if len(ref) == 0 || len(ref) > len(x) {
		return nil
	}
	nlags := len(x) - len(ref) + 1
	if nlags >= FFTMinOverlap && len(ref) >= FFTMinOverlap {
		return fft.CrossCorrelate(x, ref)
	}
	// Hoist the conjugation: conj(ref) is reused by every lag.
	refC := make([]complex128, len(ref))
	for i, rv := range ref {
		refC[i] = complex(real(rv), -imag(rv))
	}
	out := make([]complex128, nlags)
	for lag := range out {
		var s complex128
		seg := x[lag : lag+len(refC)]
		for n, rv := range refC {
			s += seg[n] * rv
		}
		out[lag] = s
	}
	return out
}

// Power returns the mean squared magnitude of x (0 for empty input).
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, c := range x {
		s += real(c)*real(c) + imag(c)*imag(c)
	}
	return s / float64(len(x))
}

// AddAWGN adds circularly-symmetric complex Gaussian noise to x such that
// the resulting per-sample SNR equals snrDB relative to the signal power of
// x. It returns a new slice; x is unmodified. A nil rng panics.
func AddAWGN(x []complex128, snrDB float64, rng *rand.Rand) []complex128 {
	p := Power(x)
	noiseVar := p / math.Pow(10, snrDB/10)
	// Per-dimension standard deviation: total noise power split between I/Q.
	sigma := math.Sqrt(noiseVar / 2)
	out := make([]complex128, len(x))
	for i, c := range x {
		out[i] = c + complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return out
}

// AddNoise adds circularly-symmetric complex Gaussian noise with the given
// absolute per-sample noise power (variance split across I/Q). Unlike
// AddAWGN it does not scale with the signal, so fading dips genuinely lose
// SNR. It returns a new slice.
func AddNoise(x []complex128, noisePower float64, rng *rand.Rand) []complex128 {
	if noisePower < 0 {
		noisePower = 0
	}
	sigma := math.Sqrt(noisePower / 2)
	out := make([]complex128, len(x))
	for i, c := range x {
		out[i] = c + complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return out
}

// SNRdB estimates the SNR in dB between a clean reference and a noisy
// observation of the same length. Returns +Inf for a perfect match.
func SNRdB(clean, noisy []complex128) float64 {
	n := len(clean)
	if len(noisy) < n {
		n = len(noisy)
	}
	if n == 0 {
		return math.Inf(1)
	}
	var sig, err float64
	for i := 0; i < n; i++ {
		sig += real(clean[i])*real(clean[i]) + imag(clean[i])*imag(clean[i])
		d := noisy[i] - clean[i]
		err += real(d)*real(d) + imag(d)*imag(d)
	}
	if err == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sig/err)
}

// FractionalDelayKernel returns an n-tap windowed-sinc interpolation kernel
// that realizes a delay of `delay` samples (may be fractional) with the
// kernel's reference (zero-delay) position at index `center`. Projecting a
// continuous-delay multipath component through this kernel is what spreads
// its energy across neighbouring FIR taps, producing the pre-cursor leakage
// visible in the paper's Fig. 5.
//
// A Hann window bounds the sinc side lobes so truncation artifacts stay well
// below the dominant taps.
func FractionalDelayKernel(n, center int, delay float64) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	FractionalDelayKernelInto(out, center, delay)
	return out
}

// FractionalDelayKernelInto fills dst with the windowed-sinc kernel of
// FractionalDelayKernel (n = len(dst)), letting per-path projection loops
// reuse one kernel buffer instead of allocating per path.
func FractionalDelayKernelInto(dst []float64, center int, delay float64) {
	if center < 0 {
		center = 0
	}
	n := float64(len(dst))
	for i := range dst {
		t := float64(i-center) - delay
		dst[i] = sinc(t) * hann(t, n)
	}
}

func sinc(t float64) float64 {
	if math.Abs(t) < 1e-12 {
		return 1
	}
	return math.Sin(math.Pi*t) / (math.Pi * t)
}

// hann evaluates a Hann window of half-width n/2 centred on t = 0.
func hann(t, n float64) float64 {
	if math.Abs(t) >= n/2 {
		return 0
	}
	return 0.5 * (1 + math.Cos(2*math.Pi*t/n))
}

// Upsample inserts factor−1 zeros between samples (zero-order expansion
// without interpolation filtering).
func Upsample(x []complex128, factor int) []complex128 {
	if factor <= 1 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out
	}
	out := make([]complex128, len(x)*factor)
	for i, v := range x {
		out[i*factor] = v
	}
	return out
}

// Downsample keeps every factor-th sample starting at offset.
func Downsample(x []complex128, factor, offset int) []complex128 {
	if factor <= 0 {
		panic("dsp: Downsample factor must be positive")
	}
	if offset < 0 {
		offset = 0
	}
	var out []complex128
	for i := offset; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out
}

// HalfSinePulse returns the O-QPSK half-sine chip pulse sampled at sps
// samples per chip: p[k] = sin(π·k/sps) for k = 0..sps−1 (IEEE 802.15.4
// O-QPSK PHY pulse shape).
func HalfSinePulse(sps int) []float64 {
	if sps <= 0 {
		panic("dsp: HalfSinePulse needs sps > 0")
	}
	p := make([]float64, sps)
	for k := range p {
		p[k] = math.Sin(math.Pi * float64(k) / float64(sps))
	}
	return p
}

// Rotate multiplies every sample by exp(jθ), returning a new slice.
func Rotate(x []complex128, theta float64) []complex128 {
	r := cmplx.Exp(complex(0, theta))
	out := make([]complex128, len(x))
	for i, c := range x {
		out[i] = c * r
	}
	return out
}

// cfoResync bounds the incremental-rotation recurrence used by the CFO
// helpers: every cfoResync samples the rotator is recomputed exactly from
// the sample index, so the accumulated rounding of the one-multiply
// recurrence stays below ~cfoResync·2⁻⁵² in magnitude and phase.
const cfoResync = 256

// ApplyCFO applies a carrier frequency offset of freqHz at sample rate fs,
// rotating sample n by exp(j·2π·freqHz·n/fs).
func ApplyCFO(x []complex128, freqHz, fs float64) []complex128 {
	out := make([]complex128, len(x))
	ApplyCFOTo(out, x, freqHz, fs)
	return out
}

// ApplyCFOTo writes the CFO-rotated x into dst (dst and x may be the same
// slice for in-place operation; len(dst) must be ≥ len(x)). The per-sample
// rotation uses an incremental complex recurrence resynchronized every
// cfoResync samples instead of a trig call per sample.
func ApplyCFOTo(dst, x []complex128, freqHz, fs float64) {
	step := 2 * math.Pi * freqHz / fs
	sinS, cosS := math.Sincos(step)
	stepRot := complex(cosS, sinS)
	var rot complex128
	for n, c := range x {
		if n%cfoResync == 0 {
			s, co := math.Sincos(step * float64(n))
			rot = complex(co, s)
		}
		dst[n] = c * rot
		rot *= stepRot
	}
}

// Impair applies the per-packet receiver impairments in one fused in-place
// pass over x: a constant phase rotation exp(jθ), a carrier frequency
// offset of freqHz at sample rate fs, and additive circularly-symmetric
// Gaussian noise of the given absolute per-sample power. The noise draws
// consume exactly 2·len(x) normal variates in sample order, matching
// AddNoise. A nil rng panics when noise is applied.
func Impair(x []complex128, theta, freqHz, fs, noisePower float64, rng *rand.Rand) {
	if noisePower < 0 {
		noisePower = 0
	}
	sigma := math.Sqrt(noisePower / 2)
	step := 2 * math.Pi * freqHz / fs
	sinS, cosS := math.Sincos(step)
	stepRot := complex(cosS, sinS)
	base := cmplx.Exp(complex(0, theta))
	var rot complex128
	for n, c := range x {
		if n%cfoResync == 0 {
			s, co := math.Sincos(step * float64(n))
			rot = base * complex(co, s)
		}
		x[n] = c*rot + complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
		rot *= stepRot
	}
}

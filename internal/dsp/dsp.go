// Package dsp provides the signal-processing primitives shared by the PHY
// and the channel simulator: complex convolution and FIR filtering,
// cross-correlation, band-limited fractional-delay kernels, additive white
// Gaussian noise, and power/SNR utilities.
package dsp

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
)

// Convolve returns the full linear convolution x*h
// (length len(x)+len(h)−1). Either argument may be the longer one.
func Convolve(x, h []complex128) []complex128 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	out := make([]complex128, len(x)+len(h)-1)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		for j, hv := range h {
			out[i+j] += xv * hv
		}
	}
	return out
}

// FilterSame applies FIR taps h to x and returns the "same"-length output:
// out[n] = Σ h[k]·x[n−k], with x treated as zero outside its bounds.
func FilterSame(x, h []complex128) []complex128 {
	out := make([]complex128, len(x))
	for n := range x {
		var s complex128
		for k, hv := range h {
			if idx := n - k; idx >= 0 && idx < len(x) {
				s += hv * x[idx]
			}
		}
		out[n] = s
	}
	return out
}

// CrossCorrelate computes c[lag] = Σ_n x[n+lag]·conj(ref[n]) for
// lag = 0..len(x)−len(ref). It is the sliding correlation used for frame
// synchronization. Returns nil if ref is longer than x.
func CrossCorrelate(x, ref []complex128) []complex128 {
	if len(ref) == 0 || len(ref) > len(x) {
		return nil
	}
	out := make([]complex128, len(x)-len(ref)+1)
	for lag := range out {
		var s complex128
		for n, rv := range ref {
			s += x[lag+n] * cmplx.Conj(rv)
		}
		out[lag] = s
	}
	return out
}

// Power returns the mean squared magnitude of x (0 for empty input).
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, c := range x {
		s += real(c)*real(c) + imag(c)*imag(c)
	}
	return s / float64(len(x))
}

// AddAWGN adds circularly-symmetric complex Gaussian noise to x such that
// the resulting per-sample SNR equals snrDB relative to the signal power of
// x. It returns a new slice; x is unmodified. A nil rng panics.
func AddAWGN(x []complex128, snrDB float64, rng *rand.Rand) []complex128 {
	p := Power(x)
	noiseVar := p / math.Pow(10, snrDB/10)
	// Per-dimension standard deviation: total noise power split between I/Q.
	sigma := math.Sqrt(noiseVar / 2)
	out := make([]complex128, len(x))
	for i, c := range x {
		out[i] = c + complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return out
}

// AddNoise adds circularly-symmetric complex Gaussian noise with the given
// absolute per-sample noise power (variance split across I/Q). Unlike
// AddAWGN it does not scale with the signal, so fading dips genuinely lose
// SNR. It returns a new slice.
func AddNoise(x []complex128, noisePower float64, rng *rand.Rand) []complex128 {
	if noisePower < 0 {
		noisePower = 0
	}
	sigma := math.Sqrt(noisePower / 2)
	out := make([]complex128, len(x))
	for i, c := range x {
		out[i] = c + complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return out
}

// SNRdB estimates the SNR in dB between a clean reference and a noisy
// observation of the same length. Returns +Inf for a perfect match.
func SNRdB(clean, noisy []complex128) float64 {
	n := len(clean)
	if len(noisy) < n {
		n = len(noisy)
	}
	if n == 0 {
		return math.Inf(1)
	}
	var sig, err float64
	for i := 0; i < n; i++ {
		sig += real(clean[i])*real(clean[i]) + imag(clean[i])*imag(clean[i])
		d := noisy[i] - clean[i]
		err += real(d)*real(d) + imag(d)*imag(d)
	}
	if err == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sig/err)
}

// FractionalDelayKernel returns an n-tap windowed-sinc interpolation kernel
// that realizes a delay of `delay` samples (may be fractional) with the
// kernel's reference (zero-delay) position at index `center`. Projecting a
// continuous-delay multipath component through this kernel is what spreads
// its energy across neighbouring FIR taps, producing the pre-cursor leakage
// visible in the paper's Fig. 5.
//
// A Hann window bounds the sinc side lobes so truncation artifacts stay well
// below the dominant taps.
func FractionalDelayKernel(n, center int, delay float64) []float64 {
	if n <= 0 {
		return nil
	}
	if center < 0 {
		center = 0
	}
	out := make([]float64, n)
	for i := range out {
		t := float64(i-center) - delay
		out[i] = sinc(t) * hann(t, float64(n))
	}
	return out
}

func sinc(t float64) float64 {
	if math.Abs(t) < 1e-12 {
		return 1
	}
	return math.Sin(math.Pi*t) / (math.Pi * t)
}

// hann evaluates a Hann window of half-width n/2 centred on t = 0.
func hann(t, n float64) float64 {
	if math.Abs(t) >= n/2 {
		return 0
	}
	return 0.5 * (1 + math.Cos(2*math.Pi*t/n))
}

// Upsample inserts factor−1 zeros between samples (zero-order expansion
// without interpolation filtering).
func Upsample(x []complex128, factor int) []complex128 {
	if factor <= 1 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out
	}
	out := make([]complex128, len(x)*factor)
	for i, v := range x {
		out[i*factor] = v
	}
	return out
}

// Downsample keeps every factor-th sample starting at offset.
func Downsample(x []complex128, factor, offset int) []complex128 {
	if factor <= 0 {
		panic("dsp: Downsample factor must be positive")
	}
	if offset < 0 {
		offset = 0
	}
	var out []complex128
	for i := offset; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out
}

// HalfSinePulse returns the O-QPSK half-sine chip pulse sampled at sps
// samples per chip: p[k] = sin(π·k/sps) for k = 0..sps−1 (IEEE 802.15.4
// O-QPSK PHY pulse shape).
func HalfSinePulse(sps int) []float64 {
	if sps <= 0 {
		panic("dsp: HalfSinePulse needs sps > 0")
	}
	p := make([]float64, sps)
	for k := range p {
		p[k] = math.Sin(math.Pi * float64(k) / float64(sps))
	}
	return p
}

// Rotate multiplies every sample by exp(jθ), returning a new slice.
func Rotate(x []complex128, theta float64) []complex128 {
	r := cmplx.Exp(complex(0, theta))
	out := make([]complex128, len(x))
	for i, c := range x {
		out[i] = c * r
	}
	return out
}

// ApplyCFO applies a carrier frequency offset of freqHz at sample rate fs,
// rotating sample n by exp(j·2π·freqHz·n/fs).
func ApplyCFO(x []complex128, freqHz, fs float64) []complex128 {
	out := make([]complex128, len(x))
	step := 2 * math.Pi * freqHz / fs
	for n, c := range x {
		out[n] = c * cmplx.Exp(complex(0, step*float64(n)))
	}
	return out
}

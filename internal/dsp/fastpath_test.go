package dsp

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// The FFT fast paths must agree with the direct definitions within float
// tolerance at every length — including primes (Bluestein territory for
// the transform, odd padding for the helpers) and lengths straddling the
// FFTMinOverlap cutoff — and must preserve the argmax of a sync
// correlation exactly.

func randSignal(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// directConvolveRef is the textbook O(n·m) reference.
func directConvolveRef(x, h []complex128) []complex128 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	out := make([]complex128, len(x)+len(h)-1)
	for i, xv := range x {
		for j, hv := range h {
			out[i+j] += xv * hv
		}
	}
	return out
}

func directCrossCorrelateRef(x, ref []complex128) []complex128 {
	if len(ref) == 0 || len(ref) > len(x) {
		return nil
	}
	out := make([]complex128, len(x)-len(ref)+1)
	for lag := range out {
		var s complex128
		for n, rv := range ref {
			s += x[lag+n] * cmplx.Conj(rv)
		}
		out[lag] = s
	}
	return out
}

func directFilterSameRef(x, h []complex128) []complex128 {
	out := make([]complex128, len(x))
	for n := range x {
		var s complex128
		for k, hv := range h {
			if idx := n - k; idx >= 0 && idx < len(x) {
				s += hv * x[idx]
			}
		}
		out[n] = s
	}
	return out
}

func closeEnough(t *testing.T, name string, got, want []complex128) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d want %d", name, len(got), len(want))
	}
	var scale float64
	for _, v := range want {
		if a := cmplx.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		scale = 1
	}
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > 1e-9*scale*float64(len(want)) {
			t.Fatalf("%s: index %d: %v want %v", name, i, got[i], want[i])
		}
	}
}

// propertyLengths mixes primes, powers of two and cutoff-straddling sizes.
var propertyLengths = [][2]int{
	{11, 11}, {127, 11}, {127, 127}, {128, 128}, {129, 127},
	{131, 128}, {251, 131}, {500, 499}, {1009, 128}, {1284, 1284},
	{2048, 131}, {4093, 251},
}

func TestConvolveFFTMatchesDirectProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 200))
	for _, ln := range propertyLengths {
		x, h := randSignal(rng, ln[0]), randSignal(rng, ln[1])
		closeEnough(t, "Convolve", Convolve(x, h), directConvolveRef(x, h))
		dst := make([]complex128, len(x)+len(h)-1)
		ConvolveTo(dst, x, h)
		closeEnough(t, "ConvolveTo", dst, directConvolveRef(x, h))
	}
}

func TestFilterSameFFTMatchesDirectProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 201))
	for _, ln := range propertyLengths {
		x, h := randSignal(rng, ln[0]), randSignal(rng, ln[1])
		closeEnough(t, "FilterSame", FilterSame(x, h), directFilterSameRef(x, h))
	}
}

func TestCrossCorrelateFFTMatchesDirectProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(102, 202))
	for _, ln := range propertyLengths {
		n, m := ln[0], ln[1]
		if m > n {
			n, m = m, n
		}
		// Long lag ranges force the FFT path: x longer than ref by ≥ the
		// cutoff in half the cases.
		x, ref := randSignal(rng, n+200), randSignal(rng, m)
		closeEnough(t, "CrossCorrelate", CrossCorrelate(x, ref), directCrossCorrelateRef(x, ref))
	}
}

// TestApplyCFOToMatchesExp checks the incremental-rotation recurrence
// against the per-sample exponential definition across several spans
// (longer than the resync interval, so drift correction is exercised).
func TestApplyCFOToMatchesExp(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	x := randSignal(rng, 3000)
	const freq, fs = 137.5, 8e6
	got := ApplyCFO(x, freq, fs)
	want := make([]complex128, len(x))
	step := 2 * math.Pi * freq / fs
	for n, c := range x {
		want[n] = c * cmplx.Exp(complex(0, step*float64(n)))
	}
	closeEnough(t, "ApplyCFO", got, want)
}

// TestImpairMatchesSequence pins the fused impairment pass against the
// historical Rotate → ApplyCFO → AddNoise chain, including its RNG draw
// order (two normal variates per sample, in sample order).
func TestImpairMatchesSequence(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 42))
	x := randSignal(rng, 2000)
	const theta, freq, fs, np = 0.37, 250.0, 8e6, 0.02
	fused := append([]complex128(nil), x...)
	Impair(fused, theta, freq, fs, np, rand.New(rand.NewPCG(9, 9)))
	want := AddNoise(ApplyCFO(Rotate(x, theta), freq, fs), np, rand.New(rand.NewPCG(9, 9)))
	closeEnough(t, "Impair", fused, want)
}

// TestCrossCorrelateSyncPeakExact pins the frame-sync contract: whatever
// float-level differences the FFT path introduces, the index of the
// correlation peak — the receiver's timing decision — must match the
// direct computation exactly.
func TestCrossCorrelateSyncPeakExact(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
		refLen := 128 + int(rng.Uint64()%512) // straddles the FFT cutoff
		ref := randSignal(rng, refLen)
		offset := int(rng.Uint64() % 300)
		x := randSignal(rng, refLen+400)
		for i := range x {
			x[i] *= 0.05 // noise floor
		}
		for i, v := range ref {
			x[offset+i] += v
		}
		argmax := func(c []complex128) int {
			best, idx := -1.0, 0
			for i, v := range c {
				if a := cmplx.Abs(v); a > best {
					best, idx = a, i
				}
			}
			return idx
		}
		fftLag := argmax(CrossCorrelate(x, ref))
		directLag := argmax(directCrossCorrelateRef(x, ref))
		return fftLag == offset && directLag == offset
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

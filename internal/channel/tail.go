package channel

import (
	"math"
	"math/rand/v2"

	"vvd/internal/room"
)

// TailCluster models one delayed cluster of the room's diffuse multipath
// tail. Metal-rich industrial environments (the paper's lab holds "several
// PCs and metallic objects such as robots") exhibit RMS delay spreads of
// tens to hundreds of nanoseconds that a first-order image model of a bare
// 8×6 m room cannot produce; an 8 MHz receiver resolves that excess delay
// across multiple CIR taps. Each cluster therefore injects energy at a
// fixed excess delay whose complex gain has a static component (the empty
// room's standing multipath) plus a component "stirred" by the human: a
// smooth, deterministic complex field of the person's floor position, so
// the same displacement always reproduces the same channel (the paper's
// hypothesis 2) while movement between packets de-correlates estimates.
type TailCluster struct {
	ExcessDelay float64    // seconds after the line of sight
	Amp         float64    // amplitude relative to the LoS path
	Static      complex128 // standing component (unit magnitude)
	Stir        float64    // relative magnitude of the human-stirred part

	comps []fieldComponent
}

// fieldComponent is one spatial plane-wave component of the stirred field.
type fieldComponent struct {
	kx, ky float64 // spatial frequency (rad/m)
	phase  float64
	amp    float64
}

// Field evaluates the stirred complex field at a floor position. The field
// has zero mean, unit average power and spatial correlation lengths of a
// few decimetres — large enough for a depth camera to resolve, small
// enough that one packet interval of walking de-correlates it.
func (t *TailCluster) Field(x, y float64) complex128 {
	var re, im float64
	for _, c := range t.comps {
		arg := c.kx*x + c.ky*y + c.phase
		re += c.amp * math.Cos(arg)
		im += c.amp * math.Sin(arg)
	}
	return complex(re, im)
}

// Gain returns the cluster's complex gain (relative to its Amp) for a human
// position, or the static component when h is nil (empty room).
func (t *TailCluster) Gain(h *room.Human) complex128 {
	if h == nil || t.Stir == 0 {
		return t.Static
	}
	return t.Static + complex(t.Stir, 0)*t.Field(h.Pos.X, h.Pos.Y)
}

// GainMulti is Gain for any number of occupants: the stirred components of
// all bodies superpose (each body perturbs the diffuse field independently;
// their contributions add coherently). One occupant reproduces Gain
// bit-exactly; none yields the static (empty-room) component.
func (t *TailCluster) GainMulti(hs []room.Human) complex128 {
	if len(hs) == 0 || t.Stir == 0 {
		return t.Static
	}
	if len(hs) == 1 {
		return t.Static + complex(t.Stir, 0)*t.Field(hs[0].Pos.X, hs[0].Pos.Y)
	}
	var sum complex128
	for i := range hs {
		sum += t.Field(hs[i].Pos.X, hs[i].Pos.Y)
	}
	return t.Static + complex(t.Stir, 0)*sum
}

// DefaultTailClusters builds four clusters at one to four sample periods of
// excess delay (125–500 ns at 8 MHz), with amplitudes decaying like an
// exponential power-delay profile. The spatial fields are deterministic
// functions of the seed.
func DefaultTailClusters(seed uint64) []TailCluster {
	rng := rand.New(rand.NewPCG(seed, seed^0x7a11c105))
	delays := []float64{125e-9, 250e-9, 375e-9, 500e-9}
	amps := []float64{0.72, 0.55, 0.38, 0.25}
	out := make([]TailCluster, len(delays))
	for i := range out {
		phase := rng.Float64() * 2 * math.Pi
		t := TailCluster{
			ExcessDelay: delays[i],
			Amp:         amps[i],
			Static:      complex(math.Cos(phase), math.Sin(phase)),
			Stir:        0.16,
		}
		const nComp = 6
		// Normalize component amplitudes so E|Field|² = 1.
		compAmp := 1 / math.Sqrt(nComp/2)
		for c := 0; c < nComp; c++ {
			// Correlation length 0.25–0.6 m.
			lambda := 1.1 + 1.3*rng.Float64()
			k := 2 * math.Pi / lambda
			dir := rng.Float64() * 2 * math.Pi
			t.comps = append(t.comps, fieldComponent{
				kx:    k * math.Cos(dir),
				ky:    k * math.Sin(dir),
				phase: rng.Float64() * 2 * math.Pi,
				amp:   compAmp,
			})
		}
		out[i] = t
	}
	return out
}

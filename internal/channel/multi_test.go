package channel

import (
	"math"
	"math/rand/v2"
	"testing"

	"vvd/internal/phy"
	"vvd/internal/room"
)

// referenceSinglePaths is a frozen copy of the pre-multi-occupant Paths
// implementation (single human, human-scatter never shadowed, tail stirred
// by one body). TestPathsMultiSingleOccupantMatchesReference pins the
// generalized enumerator against it bit for bit.
func referenceSinglePaths(g *Geometry, h room.Human) []Path {
	r := g.Room
	var paths []Path

	losLen := r.TX.Dist(r.RX)
	paths = append(paths, Path{
		Kind:     KindLoS,
		Length:   losLen,
		Segments: [][2]room.Vec3{{r.TX, r.RX}},
		baseAmp:  g.Wavelength / (4 * math.Pi * losLen),
	})

	for _, pl := range g.planes() {
		img := mirror(r.TX, pl)
		dir := r.RX.Sub(img)
		denom := axisCoord(dir, pl.axis)
		if math.Abs(denom) < 1e-12 {
			continue
		}
		t := (pl.coord - axisCoord(img, pl.axis)) / denom
		if t <= 0 || t >= 1 {
			continue
		}
		hit := img.Add(dir.Scale(t))
		if hit.X < -1e-9 || hit.X > r.Width+1e-9 ||
			hit.Y < -1e-9 || hit.Y > r.Depth+1e-9 ||
			hit.Z < -1e-9 || hit.Z > r.Height+1e-9 {
			continue
		}
		length := img.Dist(r.RX)
		paths = append(paths, Path{
			Kind:     KindWallReflection,
			Length:   length,
			Segments: [][2]room.Vec3{{r.TX, hit}, {hit, r.RX}},
			baseAmp:  r.WallReflectionLoss * g.Wavelength / (4 * math.Pi * length),
		})
	}

	for _, s := range g.Scatterers {
		d1 := r.TX.Dist(s.Pos)
		d2 := s.Pos.Dist(r.RX)
		paths = append(paths, Path{
			Kind:     KindScatter,
			Length:   d1 + d2,
			Segments: [][2]room.Vec3{{r.TX, s.Pos}, {s.Pos, r.RX}},
			baseAmp:  s.Gain * g.Wavelength / (4 * math.Pi * d1 * d2),
		})
	}

	if g.HumanScatterGain > 0 {
		c := h.Center()
		d1 := r.TX.Dist(c)
		d2 := c.Dist(r.RX)
		paths = append(paths, Path{
			Kind:     KindHumanScatter,
			Length:   d1 + d2,
			Segments: nil, // the historical single-human path had no segments
			baseAmp:  g.HumanScatterGain * g.Wavelength / (4 * math.Pi * d1 * d2),
		})
	}

	losAmp := g.Wavelength / (4 * math.Pi * losLen)
	for ti := range g.TailClusters {
		t := &g.TailClusters[ti]
		paths = append(paths, Path{
			Kind:     KindDiffuseTail,
			Length:   losLen + t.ExcessDelay*speedOfLight,
			Segments: nil,
			baseAmp:  t.Amp * losAmp,
			tailGain: t.Gain(&h),
		})
	}

	for i := range paths {
		p := &paths[i]
		p.Delay = p.Length / speedOfLight
		block := 1.0
		if p.Kind != KindHumanScatter && len(p.Segments) > 0 {
			block = g.blockageFactor(p.Segments, h)
		}
		p.Blocked = block
		phase := -2 * math.Pi * p.Length / g.Wavelength
		amp := p.baseAmp * block
		p.Gain = complex(amp*math.Cos(phase), amp*math.Sin(phase))
		if p.Kind == KindDiffuseTail {
			p.Gain *= p.tailGain
		}
	}
	return paths
}

// TestPathsMultiSingleOccupantMatchesReference is the backward-compat
// property test of the occupancy generalization: over randomized human
// positions (including points straight on the LoS), the generalized
// enumerator reproduces the frozen pre-refactor path set bit for bit in
// every observable field — kind, length, delay, blockage and complex gain.
func TestPathsMultiSingleOccupantMatchesReference(t *testing.T) {
	g := NewGeometry(room.DefaultLab(), phy.Wavelength)
	rng := rand.New(rand.NewPCG(20260728, 42))
	area := g.Room.MovementArea
	for trial := 0; trial < 200; trial++ {
		var pos room.Vec3
		if trial%4 == 0 {
			// Force positions on (or near) the direct TX–RX line, where
			// blockage transitions are sharpest.
			tt := rng.Float64()
			pos = g.Room.TX.Add(g.Room.RX.Sub(g.Room.TX).Scale(tt))
			pos.Z = 0
			pos.Y += (rng.Float64() - 0.5) * 0.2
		} else {
			pos = room.Vec3{
				X: area.MinX + rng.Float64()*area.Width(),
				Y: area.MinY + rng.Float64()*area.Height(),
			}
		}
		h := room.DefaultHuman(pos)
		want := referenceSinglePaths(g, h)
		for _, got := range [][]Path{g.Paths(h), g.PathsMulti([]room.Human{h})} {
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d paths, reference has %d", trial, len(got), len(want))
			}
			for i := range want {
				a, b := got[i], want[i]
				if a.Kind != b.Kind || a.Length != b.Length || a.Delay != b.Delay || //vvdlint:bitexact -- frozen-reference path model parity is bitwise
					a.Gain != b.Gain || a.Blocked != b.Blocked { //vvdlint:bitexact -- frozen-reference path model parity is bitwise
					t.Fatalf("trial %d path %d (%v) diverges from pre-refactor reference:\n got  %+v\n want %+v",
						trial, i, b.Kind, a, b)
				}
			}
		}
	}
}

// TestPathsMultiNoOccupantsMatchesClear pins the other degenerate case: an
// empty occupant list is the empty room.
func TestPathsMultiNoOccupantsMatchesClear(t *testing.T) {
	g := NewGeometry(room.DefaultLab(), phy.Wavelength)
	got := g.PathsMulti(nil)
	want := g.PathsClear()
	if len(got) != len(want) {
		t.Fatalf("%d paths vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Gain != want[i].Gain || got[i].Blocked != want[i].Blocked { //vvdlint:bitexact -- frozen-reference path model parity is bitwise
			t.Fatalf("path %d differs from PathsClear", i)
		}
	}
}

// TestPathsMultiCrossOccupantShadowing places occupant B straight on
// occupant A's TX→body scatter leg: A's re-radiated component must be
// attenuated by B (but never by A itself), and the direct LoS must be
// shadowed by both bodies multiplicatively.
func TestPathsMultiCrossOccupantShadowing(t *testing.T) {
	g := NewGeometry(room.DefaultLab(), phy.Wavelength)
	a := room.DefaultHuman(room.Vec3{X: 5, Y: 4.5})
	// B stands on the segment TX(1,3,1) → A.center(5,4.5,0.9).
	bOn := room.DefaultHuman(room.Vec3{X: 3, Y: 3.75})
	bOff := room.DefaultHuman(room.Vec3{X: 5.8, Y: 1.4})

	humanPath := func(paths []Path, owner int) Path {
		seen := 0
		for _, p := range paths {
			if p.Kind == KindHumanScatter {
				if seen == owner {
					return p
				}
				seen++
			}
		}
		t.Fatalf("no human-scatter path for occupant %d", owner)
		return Path{}
	}

	clear := humanPath(g.PathsMulti([]room.Human{a, bOff}), 0)
	if clear.Blocked != 1 {
		t.Fatalf("occupant A's scatter path blocked (%g) with B far away", clear.Blocked)
	}
	shadowed := humanPath(g.PathsMulti([]room.Human{a, bOn}), 0)
	if shadowed.Blocked >= clear.Blocked {
		t.Fatalf("B on A's scatter leg did not attenuate it: %g vs %g", shadowed.Blocked, clear.Blocked)
	}

	// Two bodies on the LoS shadow it more than either alone.
	onA := room.DefaultHuman(room.Vec3{X: 3, Y: 3})
	onB := room.DefaultHuman(room.Vec3{X: 5, Y: 3})
	one := g.Paths(onA)[0].Blocked
	both := g.PathsMulti([]room.Human{onA, onB})[0].Blocked
	if one >= 1 {
		t.Fatal("single body on the LoS not shadowing")
	}
	if math.Abs(both-one*one) > 1e-12 {
		t.Fatalf("two-body LoS blockage %g, want multiplicative %g", both, one*one)
	}
}

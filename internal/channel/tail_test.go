package channel

import (
	"math"
	"math/cmplx"
	"testing"

	"vvd/internal/room"
)

func TestDefaultTailClustersStructure(t *testing.T) {
	clusters := DefaultTailClusters(2019)
	if len(clusters) != 4 {
		t.Fatalf("clusters = %d want 4", len(clusters))
	}
	prevDelay, prevAmp := 0.0, math.Inf(1)
	for i, c := range clusters {
		if c.ExcessDelay <= prevDelay {
			t.Fatalf("cluster %d delay not increasing", i)
		}
		if c.Amp >= prevAmp {
			t.Fatalf("cluster %d amplitude not decaying", i)
		}
		if math.Abs(cmplx.Abs(c.Static)-1) > 1e-12 {
			t.Fatalf("cluster %d static component not unit magnitude", i)
		}
		prevDelay, prevAmp = c.ExcessDelay, c.Amp
	}
}

func TestTailClustersDeterministicInSeed(t *testing.T) {
	a := DefaultTailClusters(7)
	b := DefaultTailClusters(7)
	c := DefaultTailClusters(8)
	h := room.DefaultHuman(room.Vec3{X: 3, Y: 2})
	for i := range a {
		if a[i].Gain(&h) != b[i].Gain(&h) { //vvdlint:bitexact -- frozen-reference path model parity is bitwise
			t.Fatal("same seed produced different fields")
		}
	}
	same := true
	for i := range a {
		if a[i].Gain(&h) != c[i].Gain(&h) { //vvdlint:bitexact -- frozen-reference path model parity is bitwise
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical fields")
	}
}

func TestTailGainStaticWithoutHuman(t *testing.T) {
	for _, c := range DefaultTailClusters(2019) {
		if c.Gain(nil) != c.Static { //vvdlint:bitexact -- frozen-reference path model parity is bitwise
			t.Fatal("empty room must use the static component")
		}
	}
}

func TestTailFieldSmooth(t *testing.T) {
	// A 5 cm step must change the field by much less than its magnitude
	// scale (correlation lengths are ≥ 1 m).
	c := DefaultTailClusters(2019)[0]
	maxStep := 0.0
	for x := 2.0; x < 6.0; x += 0.5 {
		for y := 1.5; y < 4.5; y += 0.5 {
			d := cmplx.Abs(c.Field(x+0.05, y) - c.Field(x, y))
			if d > maxStep {
				maxStep = d
			}
		}
	}
	if maxStep > 0.5 {
		t.Fatalf("field changes by %v over 5 cm — too rough for the camera to track", maxStep)
	}
}

func TestTailFieldVariesAcrossRoom(t *testing.T) {
	c := DefaultTailClusters(2019)[0]
	a := c.Field(2.0, 1.5)
	b := c.Field(5.5, 4.5)
	if cmplx.Abs(a-b) < 0.05 {
		t.Fatal("field barely varies across the movement area")
	}
}

func TestTailFieldUnitPowerScale(t *testing.T) {
	// Average |Field|² over the movement area should be O(1).
	c := DefaultTailClusters(2019)[1]
	var sum float64
	n := 0
	for x := 2.0; x <= 6.0; x += 0.2 {
		for y := 1.2; y <= 4.8; y += 0.2 {
			v := c.Field(x, y)
			sum += real(v)*real(v) + imag(v)*imag(v)
			n++
		}
	}
	mean := sum / float64(n)
	if mean < 0.3 || mean > 3 {
		t.Fatalf("mean field power %v outside [0.3, 3]", mean)
	}
}

func TestTailPathsPresentInCIR(t *testing.T) {
	g := testGeometry()
	var tails int
	for _, p := range g.Paths(humanFar()) {
		if p.Kind == KindDiffuseTail {
			tails++
			if p.Delay <= 0 {
				t.Fatal("tail path without delay")
			}
		}
	}
	if tails != len(g.TailClusters) {
		t.Fatalf("tail paths = %d want %d", tails, len(g.TailClusters))
	}
}

func TestTailMakesChannelShapeVary(t *testing.T) {
	// The tail must put meaningful energy beyond the dominant cluster so
	// that the channel is not a scalar multiple of a fixed kernel.
	g := testGeometry()
	m := NewModel(g, 8e6)
	cir := m.CIR(humanFar())
	dom := DominantTap(cir)
	var domP, tailP float64
	for i, c := range cir {
		p := real(c)*real(c) + imag(c)*imag(c)
		if i >= dom-1 && i <= dom+1 {
			domP += p
		} else if i > dom+1 {
			tailP += p
		}
	}
	if tailP < 0.05*domP {
		t.Fatalf("tail power %v too small vs dominant %v", tailP, domP)
	}
}

package channel

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"vvd/internal/dsp"
	"vvd/internal/phy"
	"vvd/internal/room"
)

func testGeometry() *Geometry {
	return NewGeometry(room.DefaultLab(), phy.Wavelength)
}

func humanAt(x, y float64) room.Human {
	return room.DefaultHuman(room.Vec3{X: x, Y: y})
}

// humanFar places the human away from every path in the default lab.
func humanFar() room.Human { return humanAt(2.2, 4.7) }

// humanOnLoS blocks the direct TX→RX line (y=3 at antenna height 1 m).
func humanOnLoS() room.Human { return humanAt(4.0, 3.0) }

func TestPathsIncludeLoSAndReflections(t *testing.T) {
	g := testGeometry()
	paths := g.Paths(humanFar())
	var los, wall, scat int
	for _, p := range paths {
		switch p.Kind {
		case KindLoS:
			los++
		case KindWallReflection:
			wall++
		case KindScatter:
			scat++
		}
	}
	if los != 1 {
		t.Fatalf("LoS paths = %d want 1", los)
	}
	if wall < 4 {
		t.Fatalf("wall reflections = %d want ≥ 4 (4 walls + floor/ceiling)", wall)
	}
	if scat != len(g.Scatterers) {
		t.Fatalf("scatter paths = %d want %d", scat, len(g.Scatterers))
	}
}

func TestLoSIsShortestAndStrongest(t *testing.T) {
	g := testGeometry()
	paths := g.Paths(humanFar())
	los := paths[0]
	if los.Kind != KindLoS {
		t.Fatal("first path must be LoS")
	}
	for _, p := range paths[1:] {
		if p.Length <= los.Length {
			t.Fatalf("%s path length %v not longer than LoS %v", p.Kind, p.Length, los.Length)
		}
		if cmplx.Abs(p.Gain) >= cmplx.Abs(los.Gain) {
			t.Fatalf("%s path stronger than unblocked LoS", p.Kind)
		}
	}
}

func TestPathDelaysMatchLengths(t *testing.T) {
	g := testGeometry()
	for _, p := range g.Paths(humanFar()) {
		want := p.Length / speedOfLight
		if math.Abs(p.Delay-want) > 1e-15 {
			t.Fatalf("delay %v want %v", p.Delay, want)
		}
	}
}

func TestWallReflectionGeometry(t *testing.T) {
	// Image method invariant: reflected path length equals the distance
	// from the mirrored TX to RX, and both segments join on the wall.
	g := testGeometry()
	for _, p := range g.Paths(humanFar()) {
		if p.Kind != KindWallReflection {
			continue
		}
		if len(p.Segments) != 2 {
			t.Fatal("wall path must have 2 segments")
		}
		hit := p.Segments[0][1]
		segLen := p.Segments[0][0].Dist(hit) + p.Segments[1][0].Dist(p.Segments[1][1])
		if math.Abs(segLen-p.Length) > 1e-9 {
			t.Fatalf("segment sum %v != path length %v", segLen, p.Length)
		}
		onWall := hit.X < 1e-6 || math.Abs(hit.X-g.Room.Width) < 1e-6 ||
			hit.Y < 1e-6 || math.Abs(hit.Y-g.Room.Depth) < 1e-6 ||
			hit.Z < 1e-6 || math.Abs(hit.Z-g.Room.Height) < 1e-6
		if !onWall {
			t.Fatalf("reflection point %+v not on any wall", hit)
		}
	}
}

func TestBlockageAttenuatesLoS(t *testing.T) {
	g := testGeometry()
	clear := g.Paths(humanFar())[0]
	blocked := g.Paths(humanOnLoS())[0]
	ratio := cmplx.Abs(blocked.Gain) / cmplx.Abs(clear.Gain)
	want := math.Pow(10, -g.BlockageLossDB/20)
	if math.Abs(ratio-want) > 1e-6 {
		t.Fatalf("blocked/clear = %v want %v", ratio, want)
	}
	if blocked.Blocked >= 1 {
		t.Fatal("Blocked factor not recorded")
	}
}

func TestBlockageSoftEdge(t *testing.T) {
	// Between full block and clear there must be intermediate attenuation.
	g := testGeometry()
	h := humanAt(4.0, 3.0+0.25+0.1) // inside the fade band (radius + half clearance)
	p := g.Paths(h)[0]
	full := math.Pow(10, -g.BlockageLossDB/20)
	if p.Blocked <= full+1e-9 || p.Blocked >= 1-1e-9 {
		t.Fatalf("edge blockage factor %v should be strictly between %v and 1", p.Blocked, full)
	}
}

func TestBlockageMonotonicInClearance(t *testing.T) {
	g := testGeometry()
	prev := -1.0
	for _, dy := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.6, 1.0} {
		p := g.Paths(humanAt(4.0, 3.0+dy))[0]
		if p.Blocked < prev-1e-9 {
			t.Fatalf("blockage factor not monotone at dy=%v", dy)
		}
		prev = p.Blocked
	}
}

func TestPathsClearHasNoBlockage(t *testing.T) {
	g := testGeometry()
	for _, p := range g.PathsClear() {
		if p.Blocked != 1 {
			t.Fatalf("clear path %s has blockage %v", p.Kind, p.Blocked)
		}
	}
}

func TestPathsDeterministic(t *testing.T) {
	g := testGeometry()
	a := g.Paths(humanOnLoS())
	b := g.Paths(humanOnLoS())
	if len(a) != len(b) {
		t.Fatal("path count differs")
	}
	for i := range a {
		if a[i].Gain != b[i].Gain || a[i].Length != b[i].Length { //vvdlint:bitexact -- frozen-reference path model parity is bitwise
			t.Fatal("paths not deterministic")
		}
	}
}

func TestPathKindString(t *testing.T) {
	if KindLoS.String() != "LoS" || KindWallReflection.String() != "wall" ||
		KindScatter.String() != "scatter" || PathKind(99).String() != "unknown" {
		t.Fatal("PathKind.String mismatch")
	}
}

func TestCIRDominantTapNearReference(t *testing.T) {
	g := testGeometry()
	m := NewModel(g, phy.SampleRate)
	cir := m.CIR(humanFar())
	if len(cir) != 11 {
		t.Fatalf("taps = %d want 11", len(cir))
	}
	dom := DominantTap(cir)
	// Paper Fig. 5: dominant energy on taps 6–8 (1-based) = 5–7 (0-based).
	if dom < m.Precursor || dom > m.Precursor+2 {
		t.Fatalf("dominant tap %d outside expected window [%d,%d]", dom, m.Precursor, m.Precursor+2)
	}
}

func TestCIRHasPrecursorLeakage(t *testing.T) {
	g := testGeometry()
	m := NewModel(g, phy.SampleRate)
	cir := m.CIR(humanFar())
	var pre float64
	for i := 0; i < m.Precursor; i++ {
		pre += cmplx.Abs(cir[i])
	}
	if pre == 0 {
		t.Fatal("expected non-zero pre-cursor tap energy (band-limited leakage)")
	}
	dom := cmplx.Abs(cir[DominantTap(cir)])
	if pre > dom {
		t.Fatal("pre-cursor energy should stay below the dominant tap")
	}
}

func TestCIRChangesWithHumanPosition(t *testing.T) {
	// Hypothesis 1: displacement changes the CIR.
	g := testGeometry()
	m := NewModel(g, phy.SampleRate)
	a := m.CIR(humanFar())
	b := m.CIR(humanOnLoS())
	var diff, ref float64
	for i := range a {
		diff += cmplx.Abs(a[i] - b[i])
		ref += cmplx.Abs(a[i])
	}
	if diff/ref < 0.05 {
		t.Fatalf("CIR barely changed with displacement: rel diff %v", diff/ref)
	}
}

func TestCIRSamePositionSameChannel(t *testing.T) {
	// Hypothesis 2: same displacement ⇒ same MPCs (deterministic model).
	g := testGeometry()
	m := NewModel(g, phy.SampleRate)
	a := m.CIR(humanAt(3.3, 2.2))
	b := m.CIR(humanAt(3.3, 2.2))
	for i := range a {
		if a[i] != b[i] { //vvdlint:bitexact -- frozen-reference path model parity is bitwise
			t.Fatal("same position must give identical CIR")
		}
	}
}

func TestProjectPathsSinglePathKernel(t *testing.T) {
	g := testGeometry()
	m := NewModel(g, phy.SampleRate)
	m.HardwareResponse = nil // isolate the geometric projection
	// A synthetic path exactly on the reference delay must put its full
	// gain on the reference tap.
	p := []Path{{Gain: 2 + 1i, Delay: m.ReferenceDelay}}
	cir := m.ProjectPaths(p)
	if cmplx.Abs(cir[m.Precursor]-(2+1i)) > 1e-9 {
		t.Fatalf("reference tap = %v want 2+1i", cir[m.Precursor])
	}
	for i, c := range cir {
		if i != m.Precursor && cmplx.Abs(c) > 1e-9 {
			t.Fatalf("tap %d leaked %v for zero fractional delay", i, c)
		}
	}
}

func TestDominantTap(t *testing.T) {
	if DominantTap([]complex128{1, 3i, -2}) != 1 {
		t.Fatal("DominantTap wrong")
	}
}

func TestLinkTransmitShape(t *testing.T) {
	g := testGeometry()
	m := NewModel(g, phy.SampleRate)
	link := NewLink(m, DefaultImpairments(), rand.New(rand.NewPCG(1, 2)))
	tx := make([]complex128, 256)
	for i := range tx {
		tx[i] = complex(math.Cos(float64(i)), math.Sin(float64(i)))
	}
	rec := link.Transmit(tx, humanFar())
	if len(rec.Waveform) != len(tx)+m.Taps-1 {
		t.Fatalf("rx len = %d want %d", len(rec.Waveform), len(tx)+m.Taps-1)
	}
	if len(rec.TrueCIR) != m.Taps {
		t.Fatalf("TrueCIR len = %d", len(rec.TrueCIR))
	}
}

func TestBlockageLowersChannelPower(t *testing.T) {
	// LoS blockage must remove a meaningful fraction of the wideband channel
	// gain Σ|h|² (the noise floor is absolute, so this is an SNR loss).
	g := testGeometry()
	m := NewModel(g, phy.SampleRate)
	power := func(cir []complex128) float64 {
		var p float64
		for _, c := range cir {
			p += real(c)*real(c) + imag(c)*imag(c)
		}
		return p
	}
	// Average over positions: individual spots can interfere constructively,
	// but on average a blocked LoS must cost several dB.
	var clear, blocked float64
	nClear, nBlocked := 0, 0
	for _, y := range []float64{4.3, 4.5, 4.7} {
		for x := 2.2; x <= 5.8; x += 0.4 {
			clear += power(m.CIR(humanAt(x, y)))
			nClear++
		}
	}
	for x := 2.5; x <= 5.5; x += 0.3 {
		blocked += power(m.CIR(humanAt(x, 3.0)))
		nBlocked++
	}
	lossDB := 10 * math.Log10((clear/float64(nClear))/(blocked/float64(nBlocked)))
	if lossDB < 2 {
		t.Fatalf("LoS blockage only removed %.2f dB of mean channel gain", lossDB)
	}
}

func TestLinkNoiseFloorAbsolute(t *testing.T) {
	// The injected noise power must not depend on the human position: the
	// residual (rx − clean) energy is the same for clear and blocked links.
	g := testGeometry()
	m := NewModel(g, phy.SampleRate)
	imp := Impairments{SNRdB: 15}
	residual := func(h room.Human) float64 {
		link := NewLink(m, imp, rand.New(rand.NewPCG(21, 9)))
		rng := rand.New(rand.NewPCG(4, 5))
		tx := make([]complex128, 8192)
		for i := range tx {
			tx[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		rec := link.Transmit(tx, h)
		clean := dsp.Convolve(tx, rec.TrueCIR)
		clean = dsp.Rotate(clean, rec.Phase)
		clean = dsp.ApplyCFO(clean, rec.CFO, m.SampleRate)
		diff := make([]complex128, len(clean))
		for i := range clean {
			diff[i] = rec.Waveform[i] - clean[i]
		}
		return dsp.Power(diff)
	}
	a, b := residual(humanFar()), residual(humanOnLoS())
	if math.Abs(10*math.Log10(a/b)) > 0.5 {
		t.Fatalf("noise floor moved with human position: %v vs %v", a, b)
	}
}

func TestLinkAppliesPhaseOffset(t *testing.T) {
	g := testGeometry()
	m := NewModel(g, phy.SampleRate)
	imp := Impairments{SNRdB: 80, PhaseStdDev: 1}
	link := NewLink(m, imp, rand.New(rand.NewPCG(7, 8)))
	tx := make([]complex128, 128)
	for i := range tx {
		tx[i] = 1
	}
	rec := link.Transmit(tx, humanFar())
	if rec.Phase == 0 {
		t.Fatal("expected non-zero phase draw")
	}
	// Undo the rotation: the result should match the unrotated convolution.
	undone := dsp.Rotate(rec.Waveform, -rec.Phase)
	clean := dsp.Convolve(tx, rec.TrueCIR)
	if dsp.SNRdB(clean, undone) < 40 {
		t.Fatal("phase-corrected waveform does not match clean convolution")
	}
}

func TestLinkNilRngPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLink(NewModel(testGeometry(), phy.SampleRate), DefaultImpairments(), nil)
}

func TestCIRContinuityProperty(t *testing.T) {
	// Small human displacements must produce small CIR changes (the
	// smoothness the CNN relies on). Large tap jumps would indicate a
	// discontinuous blockage model.
	g := testGeometry()
	m := NewModel(g, phy.SampleRate)
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		area := g.Room.MovementArea
		x := area.MinX + rng.Float64()*area.Width()
		y := area.MinY + rng.Float64()*area.Height()
		a := m.CIR(humanAt(x, y))
		b := m.CIR(humanAt(x+0.005, y)) // 5 mm step
		var diff, ref float64
		for i := range a {
			diff += cmplx.Abs(a[i] - b[i])
			ref += cmplx.Abs(a[i])
		}
		return diff/ref < 0.35
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package channel

import (
	"math"
	"math/rand/v2"
	"sync"

	"vvd/internal/dsp"
	"vvd/internal/room"
)

// Model projects the continuous-delay multipath components onto the
// band-limited FIR CIR that the receiver estimates: an N-tap filter at the
// receiver sample rate with a configurable number of pre-cursor taps (the
// paper estimates 11 taps with the dominant energy on taps 6–8 because
// pre-cursor taps are allowed).
type Model struct {
	Geometry   *Geometry
	Taps       int     // FIR length (paper: 11)
	Precursor  int     // index of the zero-delay reference tap (paper: 5, 0-based)
	SampleRate float64 // receiver sample rate in Hz

	// ReferenceDelay is subtracted from every path delay before projection
	// so the earliest arrival lands on the reference tap. It is fixed to
	// the LoS delay of the empty room, mirroring a receiver synchronized
	// once to the strongest arrival.
	ReferenceDelay float64

	// HardwareResponse is the combined transmit/receive chain impulse
	// response (mote pulse-shaping imperfections, USRP analog and CIC
	// filters) convolved into every CIR. It gives the channel genuine
	// multi-tap inter-sample interference — the component a ZF equalizer
	// removes and standard (non-equalized) decoding cannot. Index
	// HardwareDelay is the main tap.
	HardwareResponse []complex128
	// HardwareDelay is the index of the main tap in HardwareResponse.
	HardwareDelay int

	// clearGain caches Σ|h_i|² of the empty-room CIR (computed once on
	// first use): every Link over the same model shares it, so per-packet
	// link construction no longer re-projects the clear channel.
	clearOnce sync.Once
	clearGain float64
}

// ClearGain returns Σ|h_i|² of the empty-room CIR, computed once and
// cached. It converts the nominal clear-channel SNR into an absolute
// noise power.
func (m *Model) ClearGain() float64 {
	m.clearOnce.Do(func() {
		clear := m.ProjectPaths(m.Geometry.PathsClear())
		for _, c := range clear {
			m.clearGain += real(c)*real(c) + imag(c)*imag(c)
		}
	})
	return m.clearGain
}

// DefaultHardwareResponse models the testbed radio chain: a causal main
// tap with pre/post ringing and a slight quadrature skew.
func DefaultHardwareResponse() []complex128 {
	return []complex128{
		0.10i, // −4 samples (one chip early)
		0,
		0.08 - 0.05i, // −2 samples
		0,
		1, // main tap
		0,
		0.18 - 0.22i,  // +2 samples (half chip)
		0.12 + 0.10i,  // +3 samples
		-0.12 + 0.28i, // +4 samples (one chip late)
	}
}

// SamplingPhase is the fractional-sample offset between the receiver's
// sampling clock and the first arrival. A real sniffer samples at an
// arbitrary phase; a non-zero fraction splits the dominant arrival across
// two to three taps, reproducing the paper's Fig. 5 tap cluster (taps 6–8)
// and giving the ZF equalizer genuine inter-sample interference to remove.
const SamplingPhase = 0.40

// NewModel builds the default 11-tap model over a geometry.
func NewModel(g *Geometry, sampleRate float64) *Model {
	losDelay := g.Room.TX.Dist(g.Room.RX) / speedOfLight
	return &Model{
		Geometry:         g,
		Taps:             11,
		Precursor:        5,
		SampleRate:       sampleRate,
		ReferenceDelay:   losDelay - SamplingPhase/sampleRate,
		HardwareResponse: DefaultHardwareResponse(),
		HardwareDelay:    4,
	}
}

// CIR returns the N-tap complex channel impulse response for the given
// human position. Each path contributes its complex gain through a
// windowed-sinc fractional-delay kernel, which spreads energy onto
// neighbouring taps (band-limitation leakage).
func (m *Model) CIR(h room.Human) []complex128 {
	paths := m.Geometry.Paths(h)
	return m.ProjectPaths(paths)
}

// CIRMulti is CIR for any number of occupants (bit-identical to CIR for
// exactly one, to the empty-room projection for none).
func (m *Model) CIRMulti(hs []room.Human) []complex128 {
	return m.ProjectPaths(m.Geometry.PathsMulti(hs))
}

// ProjectPaths maps explicit paths onto the FIR taps and convolves in the
// hardware response (truncated back to Taps, keeping the main tap on the
// same index).
func (m *Model) ProjectPaths(paths []Path) []complex128 {
	taps := make([]complex128, m.Taps)
	var kbuf [32]float64 // stack buffer reused across paths (Taps ≤ 32)
	kernel := kbuf[:]
	if m.Taps > len(kbuf) {
		kernel = make([]float64, m.Taps)
	}
	kernel = kernel[:m.Taps]
	for _, p := range paths {
		d := (p.Delay - m.ReferenceDelay) * m.SampleRate // delay in samples
		dsp.FractionalDelayKernelInto(kernel, m.Precursor, d)
		for i, k := range kernel {
			taps[i] += p.Gain * complex(k, 0)
		}
	}
	if len(m.HardwareResponse) == 0 {
		return taps
	}
	n := m.Taps + len(m.HardwareResponse) - 1
	var fbuf [64]complex128
	var full []complex128
	if n <= len(fbuf) {
		full = fbuf[:n]
	} else {
		full = make([]complex128, n)
	}
	dsp.ConvolveTo(full, taps, m.HardwareResponse)
	// Truncate back into taps (full was computed from it; it is free now).
	for i := range taps {
		if idx := i + m.HardwareDelay; idx < n {
			taps[i] = full[idx]
		} else {
			taps[i] = 0
		}
	}
	return taps
}

// DominantTap returns the index of the largest-magnitude tap.
func DominantTap(cir []complex128) int {
	best, idx := -1.0, 0
	for i, c := range cir {
		if a := real(c)*real(c) + imag(c)*imag(c); a > best {
			best, idx = a, i
		}
	}
	return idx
}

// Impairments models the receiver-side non-idealities of the testbed.
type Impairments struct {
	SNRdB float64 // per-sample AWGN level
	// PhaseStdDev is the standard deviation (radians) of the per-packet
	// mean phase offset caused by imperfect sensor crystals (paper §3.1);
	// each packet draws an independent offset.
	PhaseStdDev float64
	// CFOStdDevHz is the std-dev of a small residual carrier frequency
	// offset per packet.
	CFOStdDevHz float64
}

// DefaultImpairments mirrors the measurement conditions: an operating point
// where deep fades cause packet loss (paper PERs fall in 10⁻²…10⁻¹),
// noticeable crystal phase offsets, small residual CFO.
func DefaultImpairments() Impairments {
	return Impairments{SNRdB: 13, PhaseStdDev: 0.45, CFOStdDevHz: 40}
}

// Link ties the channel model and impairments together to produce received
// waveforms. It is the simulated equivalent of "transmit from the mote,
// capture with the USRP".
//
// The noise floor is absolute: Imp.SNRdB defines the SNR of the *clear*
// (no-human) channel, so human blockage genuinely degrades the link.
type Link struct {
	Model *Model
	Imp   Impairments
	rng   *rand.Rand
}

// NewLink creates a link; rng drives noise and impairment draws.
func NewLink(m *Model, imp Impairments, rng *rand.Rand) *Link {
	if rng == nil {
		panic("channel: NewLink needs a rand source")
	}
	m.ClearGain() // warm the shared clear-channel gain cache
	return &Link{Model: m, Imp: imp, rng: rng}
}

// Reception is one received packet observation.
type Reception struct {
	Waveform []complex128 // received baseband samples (full convolution tail included)
	TrueCIR  []complex128 // the block-fading CIR actually applied
	Phase    float64      // crystal phase offset applied (radians)
	CFO      float64      // carrier frequency offset applied (Hz)
}

// Transmit applies block fading (one CIR for the whole packet), the crystal
// phase offset, CFO and AWGN to a transmit waveform given the instantaneous
// human position.
func (l *Link) Transmit(tx []complex128, h room.Human) *Reception {
	return l.TransmitBuf(tx, h, nil)
}

// TransmitBuf is Transmit with an optional reusable output buffer: when
// buf has capacity for the received waveform it backs Reception.Waveform,
// so a caller processing packets in a loop pays one waveform allocation
// total instead of one per packet (plus one per-pass impairment fusion
// instead of three full-waveform copies). The impairment chain —
// phase rotation, CFO, absolute-power AWGN — runs as a single in-place
// pass with the same RNG draw order as the historical
// Rotate/ApplyCFO/AddNoise sequence, keeping link realizations seed-
// reproducible.
func (l *Link) TransmitBuf(tx []complex128, h room.Human, buf []complex128) *Reception {
	return l.TransmitBufPow(tx, dsp.Power(tx), h, buf)
}

// TransmitBufPow is TransmitBuf for callers that already know the mean
// power of tx (e.g. a cached transmit waveform): it skips the per-call
// full-waveform power pass. txPower must equal dsp.Power(tx).
func (l *Link) TransmitBufPow(tx []complex128, txPower float64, h room.Human, buf []complex128) *Reception {
	return l.TransmitMultiBufPow(tx, txPower, []room.Human{h}, buf)
}

// TransmitMulti is Transmit for any number of occupants: the block-fading
// CIR reflects every body's blockage, scatter and tail stirring. One
// occupant reproduces Transmit bit-exactly over the same RNG stream; zero
// occupants transmits through the empty room.
func (l *Link) TransmitMulti(tx []complex128, hs []room.Human) *Reception {
	return l.TransmitMultiBufPow(tx, dsp.Power(tx), hs, nil)
}

// TransmitMultiBufPow is the multi-occupant TransmitBufPow.
func (l *Link) TransmitMultiBufPow(tx []complex128, txPower float64, hs []room.Human, buf []complex128) *Reception {
	cir := l.Model.CIRMulti(hs)
	n := len(tx) + len(cir) - 1
	var rx []complex128
	if cap(buf) >= n {
		rx = buf[:n]
		dsp.ConvolveTo(rx, tx, cir)
	} else {
		rx = dsp.Convolve(tx, cir)
	}
	phase := l.rng.NormFloat64() * l.Imp.PhaseStdDev
	cfo := l.rng.NormFloat64() * l.Imp.CFOStdDevHz
	noisePower := txPower * l.Model.ClearGain() / math.Pow(10, l.Imp.SNRdB/10)
	dsp.Impair(rx, phase, cfo, l.Model.SampleRate, noisePower, l.rng)
	return &Reception{Waveform: rx, TrueCIR: cir, Phase: phase, CFO: cfo}
}

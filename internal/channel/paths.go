// Package channel implements the wireless propagation substrate: an
// image-method multipath ray model of the laboratory room (LoS, wall /
// floor / ceiling reflections and static metallic scatterers), human-body
// blockage, projection of the continuous-delay paths onto a band-limited
// FIR channel (the 11-tap CIR the paper estimates), and application of the
// channel plus receiver impairments (AWGN, crystal phase offset, CFO) to
// transmit waveforms.
package channel

import (
	"math"

	"vvd/internal/room"
)

// PathKind labels how a multipath component reaches the receiver.
type PathKind int

// Path kinds.
const (
	KindLoS PathKind = iota
	KindWallReflection
	KindScatter
	KindHumanScatter
	KindDiffuseTail
)

func (k PathKind) String() string {
	switch k {
	case KindLoS:
		return "LoS"
	case KindWallReflection:
		return "wall"
	case KindScatter:
		return "scatter"
	case KindHumanScatter:
		return "human"
	case KindDiffuseTail:
		return "tail"
	default:
		return "unknown"
	}
}

// Path is a single multipath component (MPC).
type Path struct {
	Kind     PathKind
	Length   float64        // total travelled distance in metres
	Delay    float64        // propagation delay in seconds
	Gain     complex128     // complex amplitude including carrier phase
	Segments [][2]room.Vec3 // polyline segments for blockage tests
	Blocked  float64        // blockage attenuation factor actually applied (1 = clear)

	// baseAmp is the unblocked amplitude before carrier phase, set during
	// enumeration (free-space for LoS, ·Γ for reflections, two-leg product
	// for scatterers).
	baseAmp float64
	// tailGain is the extra complex factor of diffuse-tail paths (1 for
	// specular paths).
	tailGain complex128
	// owner is the occupant index whose body re-radiates this path
	// (KindHumanScatter), or -1: a body never shadows its own scatter path,
	// but it does shadow every other occupant's.
	owner int
}

// speedOfLight in m/s.
const speedOfLight = 2.99792458e8

// Scatterer is a static metallic object (PCs, robots in the paper's lab)
// that produces an additional MPC via point scattering.
type Scatterer struct {
	Pos  room.Vec3
	Gain float64 // scattering efficiency (dimensionless, <1)
}

// DefaultScatterers places metallic lab objects consistent with Fig. 2:
// desks with PCs along the walls and a robot near a corner.
func DefaultScatterers(r *room.Room) []Scatterer {
	return []Scatterer{
		{Pos: room.Vec3{X: 0.5, Y: 1.0, Z: 0.8}, Gain: 0.25},
		{Pos: room.Vec3{X: 0.5, Y: 5.0, Z: 0.8}, Gain: 0.22},
		{Pos: room.Vec3{X: 7.5, Y: 1.0, Z: 0.8}, Gain: 0.25},
		{Pos: room.Vec3{X: 4.0, Y: 5.6, Z: 0.5}, Gain: 0.20},
		{Pos: room.Vec3{X: 6.5, Y: 5.5, Z: 1.2}, Gain: 0.18},
	}
}

// Geometry enumerates the multipath components of a room for a given human
// position. It is deterministic: the same human position always yields the
// same paths.
type Geometry struct {
	Room       *room.Room
	Scatterers []Scatterer
	Wavelength float64

	// BlockageClearance is the extra clearance (in metres) beyond the body
	// radius over which blockage attenuation fades to none. It produces the
	// soft shadowing edge that makes LoS/NLoS transitions gradual.
	BlockageClearance float64
	// BlockageLossDB is the amplitude attenuation (in dB) of a fully
	// blocked path (human body shadowing at 2.45 GHz).
	BlockageLossDB float64
	// HumanScatterGain is the re-radiation efficiency of the human body.
	// The TX→human→RX path is what makes the CIR vary continuously with
	// the person's position even when no path is shadowed (the paper's
	// Hypothesis 1: any displacement changes MPC phase and amplitude).
	HumanScatterGain float64
	// TailClusters is the diffuse excess-delay tail of the metal-rich lab
	// (see TailCluster); it gives the channel genuine shape variation that
	// an aged estimate cannot track.
	TailClusters []TailCluster
}

// NewGeometry builds a Geometry with default blockage parameters.
func NewGeometry(r *room.Room, wavelength float64) *Geometry {
	return &Geometry{
		Room:              r,
		Scatterers:        DefaultScatterers(r),
		Wavelength:        wavelength,
		BlockageClearance: 0.45,
		BlockageLossDB:    18,
		HumanScatterGain:  0.25,
		TailClusters:      DefaultTailClusters(2019),
	}
}

// reflectionPlane describes one of the six room surfaces.
type reflectionPlane struct {
	axis  int     // 0 = X, 1 = Y, 2 = Z
	coord float64 // plane position along that axis
}

func (g *Geometry) planes() []reflectionPlane {
	r := g.Room
	return []reflectionPlane{
		{axis: 0, coord: 0}, {axis: 0, coord: r.Width},
		{axis: 1, coord: 0}, {axis: 1, coord: r.Depth},
		{axis: 2, coord: 0}, {axis: 2, coord: r.Height},
	}
}

func mirror(p room.Vec3, pl reflectionPlane) room.Vec3 {
	switch pl.axis {
	case 0:
		p.X = 2*pl.coord - p.X
	case 1:
		p.Y = 2*pl.coord - p.Y
	default:
		p.Z = 2*pl.coord - p.Z
	}
	return p
}

func axisCoord(p room.Vec3, axis int) float64 {
	switch axis {
	case 0:
		return p.X
	case 1:
		return p.Y
	default:
		return p.Z
	}
}

// Paths enumerates LoS, first-order surface reflections and scatterer
// bounces between TX and RX, applying human blockage to every segment.
func (g *Geometry) Paths(h room.Human) []Path {
	return g.paths([]room.Human{h})
}

// PathsMulti enumerates the same paths with any number of occupants in the
// room: blockage multiplies over every body crossing a segment, each
// occupant contributes its own body-scatter component (shadowed by the
// *other* occupants, never by itself), and the diffuse tail is stirred by
// the superposition of all occupants' fields. With exactly one occupant the
// result is bit-identical to Paths (pinned by
// TestPathsMultiSingleOccupantMatchesReference); with none it equals
// PathsClear.
func (g *Geometry) PathsMulti(hs []room.Human) []Path {
	return g.paths(hs)
}

// PathsClear enumerates the same paths with no human in the room (the
// stationary environment of the paper's Fig. 1a). Used as the nominal
// channel for absolute noise-floor calibration.
func (g *Geometry) PathsClear() []Path {
	return g.paths(nil)
}

func (g *Geometry) paths(hs []room.Human) []Path {
	r := g.Room
	paths := make([]Path, 0, 16+len(hs))
	// One backing array for every path's blockage polyline (full-capacity
	// subslices, so a later grow cannot alias an earlier path's segments).
	segbuf := make([][2]room.Vec3, 0, 24+2*len(hs))
	seg2 := func(a, b, c, d room.Vec3) [][2]room.Vec3 {
		start := len(segbuf)
		segbuf = append(segbuf, [2]room.Vec3{a, b}, [2]room.Vec3{c, d})
		return segbuf[start:len(segbuf):len(segbuf)]
	}

	// Line of sight.
	losLen := r.TX.Dist(r.RX)
	start := len(segbuf)
	segbuf = append(segbuf, [2]room.Vec3{r.TX, r.RX})
	los := Path{
		Kind:     KindLoS,
		Length:   losLen,
		Segments: segbuf[start:len(segbuf):len(segbuf)],
		baseAmp:  g.Wavelength / (4 * math.Pi * losLen),
		owner:    -1,
	}
	paths = append(paths, los)

	// First-order reflections via the image method.
	for _, pl := range g.planes() {
		img := mirror(r.TX, pl)
		dir := r.RX.Sub(img)
		denom := axisCoord(dir, pl.axis)
		if math.Abs(denom) < 1e-12 {
			continue // ray parallel to the plane
		}
		t := (pl.coord - axisCoord(img, pl.axis)) / denom
		if t <= 0 || t >= 1 {
			continue // reflection point not between the endpoints
		}
		hit := img.Add(dir.Scale(t))
		// Reflection point must lie on the actual wall rectangle.
		if hit.X < -1e-9 || hit.X > r.Width+1e-9 ||
			hit.Y < -1e-9 || hit.Y > r.Depth+1e-9 ||
			hit.Z < -1e-9 || hit.Z > r.Height+1e-9 {
			continue
		}
		length := img.Dist(r.RX)
		paths = append(paths, Path{
			Kind:     KindWallReflection,
			Length:   length,
			Segments: seg2(r.TX, hit, hit, r.RX),
			baseAmp:  r.WallReflectionLoss * g.Wavelength / (4 * math.Pi * length),
			owner:    -1,
		})
	}

	// Static scatterers: two-leg product path loss (re-radiation), which
	// keeps scattered MPCs realistically below the specular components.
	for _, s := range g.Scatterers {
		d1 := r.TX.Dist(s.Pos)
		d2 := s.Pos.Dist(r.RX)
		paths = append(paths, Path{
			Kind:     KindScatter,
			Length:   d1 + d2,
			Segments: seg2(r.TX, s.Pos, s.Pos, r.RX),
			baseAmp:  s.Gain * g.Wavelength / (4 * math.Pi * d1 * d2),
			owner:    -1,
		})
	}

	// Human body scattering: each occupant is itself a (moving) reflector.
	// An occupant's two-leg path can be shadowed by any *other* occupant
	// crossing it (owner excludes the body from its own blockage test).
	if g.HumanScatterGain > 0 {
		for i := range hs {
			c := hs[i].Center()
			d1 := r.TX.Dist(c)
			d2 := c.Dist(r.RX)
			paths = append(paths, Path{
				Kind:     KindHumanScatter,
				Length:   d1 + d2,
				Segments: seg2(r.TX, c, c, r.RX),
				baseAmp:  g.HumanScatterGain * g.Wavelength / (4 * math.Pi * d1 * d2),
				owner:    i,
			})
		}
	}

	// Diffuse excess-delay tail, stirred by every occupant's position.
	losAmp := g.Wavelength / (4 * math.Pi * losLen)
	for ti := range g.TailClusters {
		t := &g.TailClusters[ti]
		paths = append(paths, Path{
			Kind:     KindDiffuseTail,
			Length:   losLen + t.ExcessDelay*speedOfLight,
			Segments: nil, // diffuse: not shadowed as a single ray
			baseAmp:  t.Amp * losAmp,
			tailGain: t.GainMulti(hs),
			owner:    -1,
		})
	}

	// Carrier phase + blockage. Blockage multiplies over occupants in index
	// order (shadowing bodies attenuate independently); a path's owning body
	// never shadows its own re-radiation.
	for i := range paths {
		p := &paths[i]
		p.Delay = p.Length / speedOfLight
		block := 1.0
		if len(p.Segments) > 0 {
			for j := range hs {
				if j == p.owner {
					continue
				}
				block *= g.blockageFactor(p.Segments, hs[j])
			}
		}
		p.Blocked = block
		phase := -2 * math.Pi * p.Length / g.Wavelength
		amp := p.baseAmp * block
		p.Gain = complex(amp*math.Cos(phase), amp*math.Sin(phase))
		if p.Kind == KindDiffuseTail {
			p.Gain *= p.tailGain
		}
	}
	return paths
}

// blockageFactor returns the amplitude factor (≤1) from human shadowing
// over a path polyline: 1 when every segment clears the body by more than
// Radius+Clearance, the full configured loss when a segment intersects the
// body, with a smooth (smoothstep) transition in between.
func (g *Geometry) blockageFactor(segs [][2]room.Vec3, h room.Human) float64 {
	clear := math.Inf(1)
	for _, s := range segs {
		d := room.SegmentDistanceToVertical(s[0], s[1], h.Pos.X, h.Pos.Y, h.Pos.Z, h.Pos.Z+h.Height)
		if d < clear {
			clear = d
		}
	}
	fade := g.BlockageClearance
	switch {
	case clear >= h.Radius+fade:
		return 1
	case clear <= h.Radius:
		return math.Pow(10, -g.BlockageLossDB/20)
	default:
		// Smoothstep from full loss at Radius to no loss at Radius+fade.
		t := (clear - h.Radius) / fade
		s := t * t * (3 - 2*t)
		lossDB := g.BlockageLossDB * (1 - s)
		return math.Pow(10, -lossDB/20)
	}
}

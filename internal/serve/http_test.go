package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func httpFixture(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s, err := New(Config{Estimator: &stubEstimator{}, InputSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHTTPEstimateRoundTrip(t *testing.T) {
	_, ts := httpFixture(t)

	// No estimate published yet.
	resp, body := getJSON(t, ts.URL+"/estimate?link=a")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before publish: %d (%v), want 404", resp.StatusCode, body)
	}

	// POST a frame and get its estimate back.
	resp, body = postJSON(t, ts.URL+"/estimate", map[string]any{"link": "a", "image": []float32{42}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d (%v)", resp.StatusCode, body)
	}
	cir := body["cir"].([]any)
	if len(cir) != 1 || cir[0].([]any)[0].(float64) != 42 {
		t.Fatalf("cir = %v, want [[42 0]]", cir)
	}
	if body["frame_seq"].(float64) != 1 {
		t.Fatalf("frame_seq = %v, want 1", body["frame_seq"])
	}

	// GET now serves the freshest estimate, auto-opening a new session.
	resp, body = getJSON(t, ts.URL+"/estimate?link=b")
	if resp.StatusCode != http.StatusOK || body["frame_seq"].(float64) != 1 {
		t.Fatalf("GET after publish: %d (%v)", resp.StatusCode, body)
	}

	// /links reflects both sessions and their serving stats.
	resp, body = getJSON(t, ts.URL+"/links")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/links: %d", resp.StatusCode)
	}
	links := body["links"].([]any)
	if len(links) != 2 {
		t.Fatalf("links = %v, want sessions a and b", links)
	}
	first := links[0].(map[string]any)
	if first["id"].(string) != "a" || first["served"].(float64) != 1 {
		t.Fatalf("link a stats = %v", first)
	}

	// /metricsz accounts for the one inferred frame.
	resp, body = getJSON(t, ts.URL+"/metricsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metricsz: %d", resp.StatusCode)
	}
	if body["frames_inferred"].(float64) != 1 || body["active_links"].(float64) != 2 {
		t.Fatalf("metrics = %v", body)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := httpFixture(t)
	cases := []struct {
		name string
		do   func() (*http.Response, map[string]any)
		want int
	}{
		{"bad json", func() (*http.Response, map[string]any) {
			resp, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewReader([]byte("{nope")))
			if err != nil {
				t.Fatal(err)
			}
			return resp, decodeBody(t, resp)
		}, http.StatusBadRequest},
		{"missing link", func() (*http.Response, map[string]any) {
			return postJSON(t, ts.URL+"/estimate", map[string]any{"image": []float32{1}})
		}, http.StatusBadRequest},
		{"wrong image size", func() (*http.Response, map[string]any) {
			return postJSON(t, ts.URL+"/estimate", map[string]any{"link": "a", "image": []float32{1, 2, 3}})
		}, http.StatusBadRequest},
		{"missing query link", func() (*http.Response, map[string]any) {
			return getJSON(t, ts.URL+"/estimate")
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := tc.do()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d (%v), want %d", tc.name, resp.StatusCode, body, tc.want)
		}
		if body["error"] == "" {
			t.Fatalf("%s: missing error message", tc.name)
		}
	}
}

func TestHTTPPostWithoutImageServesFreshest(t *testing.T) {
	s, ts := httpFixture(t)
	seq, _, err := s.Submit([]float32{7})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.WaitFor(seq, 5*time.Second); !ok {
		t.Fatal("estimate never published")
	}
	resp, body := postJSON(t, ts.URL+"/estimate", map[string]any{"link": "poller"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST without image: %d (%v)", resp.StatusCode, body)
	}
	if got := body["cir"].([]any)[0].([]any)[0].(float64); got != 7 {
		t.Fatalf("cir = %v, want frame 7", got)
	}
}

func TestHTTPCloseLinkAndCap(t *testing.T) {
	s, err := New(Config{Estimator: &stubEstimator{}, InputSize: 1, MaxLinks: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s))
	defer func() {
		ts.Close()
		s.Close()
	}()
	// First session fits; the second hits the cap.
	getJSON(t, ts.URL+"/estimate?link=a")
	resp, body := getJSON(t, ts.URL+"/estimate?link=b")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap session: %d (%v), want 429", resp.StatusCode, body)
	}
	// DELETE frees the slot.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/links?id=a", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if body := decodeBody(t, resp2); resp2.StatusCode != http.StatusOK || body["closed"] != "a" {
		t.Fatalf("DELETE /links: %d (%v)", resp2.StatusCode, body)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/links?id=a", nil)
	resp2, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE of closed link: %d, want 404", resp2.StatusCode)
	}
	resp2.Body.Close()
	resp, body = getJSON(t, ts.URL+"/estimate?link=b")
	if resp.StatusCode == http.StatusTooManyRequests {
		t.Fatalf("capacity not freed after DELETE: %v", body)
	}
}

func TestHTTPClosedServiceIs503(t *testing.T) {
	s, ts := httpFixture(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/estimate", map[string]any{"link": "a", "image": []float32{1}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST to closed service: %d (%v), want 503", resp.StatusCode, body)
	}
}

func TestHTTPOversizedBodyIs413(t *testing.T) {
	_, ts := httpFixture(t) // InputSize 1 → body cap is tiny
	big := make([]byte, 64<<10)
	for i := range big {
		big[i] = '1'
	}
	body := append([]byte(`{"link":"a","image":[`), big...)
	body = append(body, []byte(`]}`)...)
	resp, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out := decodeBody(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d (%v), want 413", resp.StatusCode, out)
	}
}

package serve

import (
	"errors"
	"fmt"
	"time"
)

// DefaultWait is how long SubmitAndWait blocks for the submitted frame's
// estimate when the caller does not say — a few camera frame periods.
const DefaultWait = 2 * time.Second

// Transport-agnostic error taxonomy: every protocol front-end (HTTP/JSON
// in this package, the binary wire protocol in internal/wire) maps these
// sentinels onto its own status codes instead of re-implementing the
// session flow.
var (
	// ErrNoEstimate: the service has not published a single estimate yet.
	ErrNoEstimate = errors.New("serve: no estimate published yet")
	// ErrNotReady: the submitted frame's estimate did not arrive within
	// the wait budget (the frame may still be inferred later).
	ErrNotReady = errors.New("serve: estimate not ready")
	// ErrLinkLimit: Config.MaxLinks open sessions already exist.
	ErrLinkLimit = errors.New("serve: link session limit reached")
)

// SubmitResult is the outcome of one SubmitAndWait call: the estimate
// served to the link plus the submission bookkeeping the transports echo
// back to the client.
type SubmitResult struct {
	Estimate
	SubmittedSeq  uint64 // sequence assigned to the submitted frame
	DroppedOldest bool   // submission evicted the oldest queued frame
}

// SubmitAndWait is the whole "POST a frame" session flow with no
// transport attached: resolve (auto-open) the link session, submit the
// frame, wait until an estimate for it — or a newer frame, freshest-wins —
// is published, and serve that estimate through the link so the session
// statistics record it. wait <= 0 means DefaultWait.
//
// Errors are the package sentinels (possibly wrapped): ErrLinkLimit,
// ErrClosed, ErrNotReady, ErrNoEstimate; anything else is a malformed
// frame (wrong pixel count, empty image).
func (s *Service) SubmitAndWait(linkID string, img []float32, wait time.Duration) (SubmitResult, error) {
	if len(img) == 0 {
		return SubmitResult{}, fmt.Errorf("serve: empty frame")
	}
	link, err := s.Link(linkID)
	if err != nil {
		return SubmitResult{}, err
	}
	seq, dropped, err := s.Submit(img)
	if err != nil {
		return SubmitResult{}, err
	}
	res := SubmitResult{SubmittedSeq: seq, DroppedOldest: dropped}
	if wait <= 0 {
		wait = DefaultWait
	}
	if _, ok := s.WaitFor(seq, wait); !ok {
		select {
		case <-s.done:
			return res, ErrClosed
		default:
			return res, fmt.Errorf("%w: frame %d after %v", ErrNotReady, seq, wait)
		}
	}
	e, ok := link.Latest()
	if !ok {
		return res, ErrNoEstimate
	}
	res.Estimate = e
	return res, nil
}

// SubmitFor submits a frame on behalf of a link session without waiting
// for its estimate — the fire-and-forget half of SubmitAndWait, used by
// camera feeders that only push frames while other sessions read.
func (s *Service) SubmitFor(linkID string, img []float32) (SubmitResult, error) {
	if len(img) == 0 {
		return SubmitResult{}, fmt.Errorf("serve: empty frame")
	}
	if _, err := s.Link(linkID); err != nil {
		return SubmitResult{}, err
	}
	seq, dropped, err := s.Submit(img)
	if err != nil {
		return SubmitResult{}, err
	}
	return SubmitResult{SubmittedSeq: seq, DroppedOldest: dropped}, nil
}

// Fetch is the transport-agnostic "GET the freshest estimate" flow:
// resolve (auto-open) the link session and serve the latest published
// estimate through it. ErrNoEstimate before the first publish.
func (s *Service) Fetch(linkID string) (Estimate, error) {
	link, err := s.Link(linkID)
	if err != nil {
		return Estimate{}, err
	}
	e, ok := link.Latest()
	if !ok {
		return Estimate{}, ErrNoEstimate
	}
	return e, nil
}

package serve

import (
	"sort"
	"sync/atomic"
	"time"
)

// servedAgeWindow is the number of recent served-estimate ages kept for
// the Metrics percentile snapshot. A power of two so the ring index is a
// mask. ~4k samples is a fraction of a second of traffic at cluster rates
// — enough for a stable tail estimate, small enough to sort on demand.
const servedAgeWindow = 4096

// ageSampler is a lock-free ring of the most recent served-estimate ages.
// Writers (every Latest/Next read on every link) pay one atomic add and
// one atomic store; readers (Metrics) copy the ring and sort. A snapshot
// taken concurrently with writes may mix samples from both sides of the
// copy instant — fine for a statistic, and no value is ever torn.
type ageSampler struct {
	n     atomic.Uint64
	slots [servedAgeWindow]atomic.Int64
}

func (a *ageSampler) record(d time.Duration) {
	i := a.n.Add(1) - 1
	a.slots[i&(servedAgeWindow-1)].Store(int64(d))
}

// percentiles returns the p50 and p99 of the sampled ages (zeros before
// the first served estimate).
func (a *ageSampler) percentiles() (p50, p99 time.Duration) {
	total := a.n.Load()
	k := int(min(total, servedAgeWindow))
	if k == 0 {
		return 0, 0
	}
	sample := make([]int64, k)
	for i := range sample {
		sample[i] = a.slots[i].Load()
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	return quantile(sample, 0.50), quantile(sample, 0.99)
}

// quantile is the nearest-rank quantile of an ascending sample.
func quantile(sorted []int64, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)-1) + 0.5)
	if i > len(sorted)-1 {
		i = len(sorted) - 1
	}
	return time.Duration(sorted[i])
}

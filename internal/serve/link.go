package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Link is one receiver's session with the service. Latest reads the
// freshest-wins published value; Next consumes the link's bounded inbox
// (drop-oldest when the consumer lags). The inbox only starts filling
// after the first Next call — sessions that only ever poll Latest (the
// HTTP GET pattern) cost the publish fan-out a single atomic load, so
// per-frame publish work stays negligible even with thousands of
// poll-only sessions open. A Link additionally keeps per-session serving
// statistics — how many estimates it consumed and how stale they were.
type Link struct {
	id  string
	svc *Service

	wantsStream atomic.Bool // set by the first Next call; gates offer()

	mu       sync.Mutex
	inbox    []Estimate
	notify   chan struct{} // 1-buffered inbox signal for Next
	served   uint64
	dropped  uint64
	lastAge  time.Duration
	ageTotal time.Duration
	maxAge   time.Duration
	openedAt time.Time
}

// LinkStats is a point-in-time snapshot of one session.
type LinkStats struct {
	ID       string
	Served   uint64        // estimates read through Latest/Next
	Dropped  uint64        // inbox evictions (consumer slower than camera)
	Pending  int           // estimates waiting in the inbox
	LastAge  time.Duration // age of the most recently served estimate
	MeanAge  time.Duration
	MaxAge   time.Duration
	OpenedAt time.Time
}

// OpenLink creates a new link session. The id must be non-empty and
// unique among open sessions; when Config.MaxLinks is set, opening
// beyond the cap fails.
func (s *Service) OpenLink(id string) (*Link, error) {
	if id == "" {
		return nil, fmt.Errorf("serve: link id must be non-empty")
	}
	s.state.Lock()
	defer s.state.Unlock()
	if _, ok := s.links[id]; ok {
		return nil, fmt.Errorf("serve: link %q already open", id)
	}
	if s.cfg.MaxLinks > 0 && len(s.links) >= s.cfg.MaxLinks {
		return nil, fmt.Errorf("%w (%d)", ErrLinkLimit, s.cfg.MaxLinks)
	}
	l := &Link{id: id, svc: s, notify: make(chan struct{}, 1), openedAt: s.clock()}
	s.links[id] = l
	return l, nil
}

// Link returns the open session with the given id, opening it if needed —
// the auto-session behavior the HTTP layer uses. It fails only for an
// invalid id or when the MaxLinks cap is reached.
func (s *Service) Link(id string) (*Link, error) {
	s.state.RLock()
	l := s.links[id]
	s.state.RUnlock()
	if l != nil {
		return l, nil
	}
	l, err := s.OpenLink(id)
	if err != nil {
		// Another opener may have won the race; only then is the
		// session there to return.
		s.state.RLock()
		l = s.links[id]
		s.state.RUnlock()
		if l != nil {
			return l, nil
		}
		return nil, err
	}
	return l, nil
}

// CloseLink removes a session; it reports whether the id was open.
func (s *Service) CloseLink(id string) bool {
	s.state.Lock()
	defer s.state.Unlock()
	_, ok := s.links[id]
	delete(s.links, id)
	return ok
}

// Links returns a snapshot of every open session, sorted by id. The
// collected slice is sorted before any per-link state is touched, so map
// iteration order never reaches the output (vvd-lint maporder).
func (s *Service) Links() []LinkStats {
	s.state.RLock()
	links := make([]*Link, 0, len(s.links))
	for _, l := range s.links {
		links = append(links, l)
	}
	s.state.RUnlock()
	sort.Slice(links, func(i, j int) bool { return links[i].id < links[j].id })
	out := make([]LinkStats, len(links))
	for i, l := range links {
		out[i] = l.Stats()
	}
	return out
}

// ID returns the session id.
func (l *Link) ID() string { return l.id }

// Latest returns the freshest published estimate (freshest-wins — the
// paper's serving semantics: decode with the newest view of the channel)
// and records its age in the session statistics.
func (l *Link) Latest() (Estimate, bool) {
	e, ok := l.svc.Latest()
	if !ok {
		return Estimate{}, false
	}
	l.record(e)
	return e, true
}

// Next pops the oldest estimate from the session inbox, blocking up to
// timeout for one to arrive. Consumers that keep up see every estimate in
// order; consumers that lag see the newest LinkBuffer ones. The first
// Next call subscribes the session to the estimate stream: estimates
// published before it are only reachable through Latest.
func (l *Link) Next(timeout time.Duration) (Estimate, bool) {
	l.wantsStream.Store(true)
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		l.mu.Lock()
		if len(l.inbox) > 0 {
			e := l.inbox[0]
			l.inbox = append(l.inbox[:0], l.inbox[1:]...)
			l.mu.Unlock()
			l.record(e)
			return e, true
		}
		l.mu.Unlock()
		select {
		case <-l.notify:
		case <-l.svc.done:
			// Service stopped; one last non-blocking drain attempt.
			l.mu.Lock()
			if len(l.inbox) > 0 {
				l.mu.Unlock()
				continue
			}
			l.mu.Unlock()
			return Estimate{}, false
		case <-deadline.C:
			return Estimate{}, false
		}
	}
}

// Stats returns a snapshot of the session counters.
func (l *Link) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := LinkStats{
		ID:       l.id,
		Served:   l.served,
		Dropped:  l.dropped,
		Pending:  len(l.inbox),
		LastAge:  l.lastAge,
		MaxAge:   l.maxAge,
		OpenedAt: l.openedAt,
	}
	if l.served > 0 {
		st.MeanAge = l.ageTotal / time.Duration(l.served)
	}
	return st
}

// record updates serving statistics for one consumed estimate.
func (l *Link) record(e Estimate) {
	age := e.AgeAt(l.svc.clock())
	l.mu.Lock()
	l.served++
	l.lastAge = age
	l.ageTotal += age
	if age > l.maxAge {
		l.maxAge = age
	}
	l.mu.Unlock()
	l.svc.served.Add(1)
	l.svc.ages.record(age)
}

// offer pushes a published estimate into the inbox, evicting the oldest
// entry when full. Runs on the estimator goroutine outside s.state (see
// publish) and takes only the link mutex — it must not touch service
// fields guarded by s.state. Sessions that never called Next are skipped
// with one atomic load.
func (l *Link) offer(e Estimate) {
	if !l.wantsStream.Load() {
		return
	}
	l.mu.Lock()
	if len(l.inbox) >= l.svc.cfg.LinkBuffer {
		l.inbox = append(l.inbox[:0], l.inbox[1:]...)
		l.dropped++
	}
	l.inbox = append(l.inbox, e)
	l.mu.Unlock()
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

// Package serve turns a trained VVD model into a long-running estimation
// service: one depth-frame stream in, fresh channel estimates out to any
// number of concurrent link sessions.
//
// The paper's scalability argument (§6.6, Table 1) is that camera-based
// estimation costs one CNN inference per frame *no matter how many links
// it serves* — the estimate describes the environment, not a transmitter.
// This package is that argument as infrastructure:
//
//   - Frames enter a bounded queue via Submit. When the estimator falls
//     behind, the queue drops its oldest frame (drop-oldest backpressure):
//     a stale depth frame is worthless once a fresher one exists.
//   - A single estimator goroutine drains the queue in batches of up to
//     MaxBatch frames and runs one batched CNN inference per drain
//     (core.VVD.EstimateBatch), amortizing the layer-weight traversal
//     across everything that queued up during the previous inference.
//   - Every produced estimate is published freshest-wins: Latest always
//     returns the estimate of the newest inferred frame, stamped with its
//     capture time so consumers can judge its age against the channel
//     coherence time (~50 ms indoors).
//   - Link sessions (OpenLink) are per-receiver views: each records how
//     many estimates it was served and how old they were, and each owns a
//     bounded estimate inbox (again drop-oldest) for consumers that want
//     the estimate stream rather than just the freshest value. Inboxes
//     start filling on the session's first Next call, so poll-only
//     sessions cost the publish fan-out almost nothing.
//
// cmd/vvd-serve exposes a Service over HTTP/JSON; examples/streaming
// drives one from a simulated camera in real time.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by Submit once the service has stopped —
// explicitly via Close, or because the estimator failed (see Err).
var ErrClosed = errors.New("serve: service closed")

// BatchEstimator is the inference dependency of a Service: one batched
// image→CIR estimation. *core.VVD implements it; tests substitute stubs.
type BatchEstimator interface {
	EstimateBatch(imgs [][]float32) ([][]complex128, error)
}

// ModeReporter is an optional BatchEstimator extension that reports the
// active inference kernel set ("float32", "int8", "int8-calibrating").
// When the estimator implements it, Metrics and /metricsz expose the
// mode. *core.VVD implements it.
type ModeReporter interface {
	InferenceMode() string
}

// Config parameterizes a Service.
type Config struct {
	// Estimator runs the batched CNN inference. Required.
	Estimator BatchEstimator
	// InputSize, when non-zero, lets Submit reject frames of the wrong
	// pixel count up front (use model.Net.In.Size()).
	InputSize int
	// QueueDepth bounds the frame queue; a full queue drops its oldest
	// frame on the next Submit. Default 8.
	QueueDepth int
	// MaxBatch caps the frames handed to one EstimateBatch call.
	// Default 8.
	MaxBatch int
	// LinkBuffer bounds each link session's estimate inbox; a full inbox
	// drops its oldest estimate. Default 4.
	LinkBuffer int
	// MaxLinks, when non-zero, caps the number of open link sessions —
	// the guard that keeps unauthenticated GET /estimate?link=<random>
	// traffic from growing the session map (and the publish fan-out)
	// without bound. 0 = unlimited.
	MaxLinks int
	// Clock substitutes a time source (tests). Default time.Now.
	Clock func() time.Time
}

// Frame is one queued depth frame.
type Frame struct {
	Seq        uint64 // 1-based submission sequence number
	Image      []float32
	CapturedAt time.Time
}

// Estimate is one published channel estimate.
type Estimate struct {
	CIR         []complex128
	FrameSeq    uint64        // frame the estimate was inferred from
	CapturedAt  time.Time     // when that frame was captured
	PublishedAt time.Time     // when the estimate became visible
	Inference   time.Duration // latency of the batch that produced it
	Batch       int           // number of frames in that batch
}

// AgeAt returns how old the underlying channel observation is at the
// given instant — the quantity the paper compares to the coherence time.
func (e Estimate) AgeAt(now time.Time) time.Duration { return now.Sub(e.CapturedAt) }

// Metrics is a point-in-time snapshot of service counters.
type Metrics struct {
	FramesSubmitted uint64
	FramesDropped   uint64 // evicted by drop-oldest before inference
	FramesInferred  uint64
	Batches         uint64
	MeanBatch       float64       // frames per EstimateBatch call
	InferMean       time.Duration // mean latency of one EstimateBatch call
	InferMeanFrame  time.Duration // mean inference cost per frame (batch latency / batch size)
	InferMax        time.Duration // worst single EstimateBatch latency
	LastSeq         uint64        // newest published frame sequence (0 = none)
	QueueLen        int
	QueueCap        int
	ActiveLinks     int
	EstimatesServed uint64        // Latest/Next reads across all sessions, ever
	AgeP50          time.Duration // median served-estimate age (recent window)
	AgeP99          time.Duration // tail served-estimate age — mean/max hide this
	InferMode       string        // estimator kernel set, when it reports one
	Err             string        // first estimator error, if any
}

// Service is the multi-link estimation pipeline. Create with New, feed
// with Submit, read through Latest or link sessions, stop with Close.
// All methods are safe for concurrent use.
type Service struct {
	cfg   Config
	clock func() time.Time

	mu        sync.Mutex // frame queue + submission counters
	cond      *sync.Cond
	queue     []Frame
	nextSeq   uint64
	submitted uint64
	dropped   uint64
	closed    bool

	state       sync.RWMutex // published estimate, links, inference counters
	latest      Estimate
	links       map[string]*Link
	inferred    uint64
	batches     uint64
	batchFrames uint64
	inferTotal  time.Duration
	inferMax    time.Duration
	err         error

	served atomic.Uint64 // Latest/Next reads across all sessions
	ages   ageSampler    // recent served ages for the percentile snapshot

	pubMu   sync.Mutex // publish broadcast for WaitFor
	pubCh   chan struct{}
	lastPub uint64

	done chan struct{}
}

// New starts a Service; the estimator goroutine runs until Close.
func New(cfg Config) (*Service, error) {
	if cfg.Estimator == nil {
		return nil, errors.New("serve: Config.Estimator is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	if cfg.LinkBuffer <= 0 {
		cfg.LinkBuffer = 4
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	s := &Service{
		cfg:   cfg,
		clock: cfg.Clock,
		links: map[string]*Link{},
		pubCh: make(chan struct{}),
		done:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.run()
	return s, nil
}

// Submit enqueues a frame captured now. See SubmitAt.
func (s *Service) Submit(img []float32) (seq uint64, droppedOldest bool, err error) {
	return s.SubmitAt(img, s.clock())
}

// SubmitAt enqueues a frame with an explicit capture time and returns its
// sequence number. If the queue is full the oldest queued frame is
// evicted (droppedOldest reports that) — the newest observation always
// gets in. Submitting to a closed service returns an error.
func (s *Service) SubmitAt(img []float32, capturedAt time.Time) (seq uint64, droppedOldest bool, err error) {
	if s.cfg.InputSize > 0 && len(img) != s.cfg.InputSize {
		return 0, false, fmt.Errorf("serve: frame has %d pixels, want %d", len(img), s.cfg.InputSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, false, ErrClosed
	}
	s.nextSeq++
	seq = s.nextSeq
	if len(s.queue) >= s.cfg.QueueDepth {
		s.queue = append(s.queue[:0], s.queue[1:]...)
		s.dropped++
		droppedOldest = true
	}
	s.queue = append(s.queue, Frame{Seq: seq, Image: img, CapturedAt: capturedAt})
	s.submitted++
	s.cond.Signal()
	return seq, droppedOldest, nil
}

// Latest returns the freshest published estimate (ok=false before the
// first publish). Reads through a Link session instead to record serving
// statistics.
func (s *Service) Latest() (Estimate, bool) {
	s.state.RLock()
	defer s.state.RUnlock()
	return s.latest, s.latest.FrameSeq != 0
}

// WaitFor blocks until an estimate for frame sequence seq or newer has
// been published, then returns the freshest estimate. ok=false on
// timeout or when the service stops before reaching seq (a frame evicted
// by drop-oldest is never inferred, but a later frame satisfies the wait).
func (s *Service) WaitFor(seq uint64, timeout time.Duration) (Estimate, bool) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		s.pubMu.Lock()
		last, ch := s.lastPub, s.pubCh
		s.pubMu.Unlock()
		if last >= seq {
			return s.Latest()
		}
		select {
		case <-ch:
		case <-s.done:
			// Drained and stopped without reaching seq.
			s.pubMu.Lock()
			last = s.lastPub
			s.pubMu.Unlock()
			if last >= seq {
				return s.Latest()
			}
			return Estimate{}, false
		case <-deadline.C:
			return Estimate{}, false
		}
	}
}

// Now reads the service clock (Config.Clock) — the time base every
// transport must use when stamping estimate ages.
func (s *Service) Now() time.Time { return s.clock() }

// Err returns the first estimator error, if any.
func (s *Service) Err() error {
	s.state.RLock()
	defer s.state.RUnlock()
	return s.err
}

// Metrics returns a consistent snapshot of the service counters: both
// counter groups are read under their locks simultaneously (queue lock,
// then state lock — no other path holds both), so the snapshot can never
// show more frames inferred than were submitted.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		FramesSubmitted: s.submitted,
		FramesDropped:   s.dropped,
		QueueLen:        len(s.queue),
		QueueCap:        s.cfg.QueueDepth,
	}
	s.state.RLock()
	m.FramesInferred = s.inferred
	m.Batches = s.batches
	if s.batches > 0 {
		m.MeanBatch = float64(s.batchFrames) / float64(s.batches)
		m.InferMean = s.inferTotal / time.Duration(s.batches)
	}
	if s.inferred > 0 {
		m.InferMeanFrame = s.inferTotal / time.Duration(s.inferred)
	}
	m.InferMax = s.inferMax
	m.LastSeq = s.latest.FrameSeq
	m.ActiveLinks = len(s.links)
	m.EstimatesServed = s.served.Load()
	m.AgeP50, m.AgeP99 = s.ages.percentiles()
	if s.err != nil {
		m.Err = s.err.Error()
	}
	s.state.RUnlock()
	if mr, ok := s.cfg.Estimator.(ModeReporter); ok {
		m.InferMode = mr.InferenceMode()
	}
	return m
}

// Close stops accepting frames, lets the estimator drain what is already
// queued, waits for it to exit and returns the first estimator error.
func (s *Service) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	<-s.done
	return s.Err()
}

// run is the estimator goroutine: drain a batch, infer, publish, repeat.
func (s *Service) run() {
	defer close(s.done)
	for {
		frames := s.take()
		if frames == nil {
			return
		}
		imgs := make([][]float32, len(frames))
		for i := range frames {
			imgs[i] = frames[i].Image
		}
		t0 := s.clock()
		cirs, err := s.cfg.Estimator.EstimateBatch(imgs)
		lat := s.clock().Sub(t0)
		if err == nil && len(cirs) != len(frames) {
			err = fmt.Errorf("serve: estimator returned %d estimates for %d frames", len(cirs), len(frames))
		}
		if err != nil {
			s.state.Lock()
			if s.err == nil {
				s.err = err
			}
			s.state.Unlock()
			s.mu.Lock()
			s.closed = true
			s.queue = nil
			s.mu.Unlock()
			return
		}
		s.publish(frames, cirs, lat)
	}
}

// take blocks until at least one frame is queued (or the service closed
// and drained) and removes up to MaxBatch oldest frames.
func (s *Service) take() []Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.queue) == 0 {
		return nil
	}
	n := min(len(s.queue), s.cfg.MaxBatch)
	frames := make([]Frame, n)
	copy(frames, s.queue[:n])
	s.queue = append(s.queue[:0], s.queue[n:]...)
	return frames
}

// publish makes a batch's estimates visible (the batch's newest frame
// becomes Latest) and fans them out to link inboxes in frame order. The
// state write lock covers only the counter/latest update and a snapshot
// of the session list; the O(links × frames) inbox fan-out runs outside
// it (only the per-link mutexes), so Latest reads never stall behind it.
// Publish order across batches is preserved because run() is the only
// publisher.
func (s *Service) publish(frames []Frame, cirs [][]complex128, lat time.Duration) {
	now := s.clock()
	ests := make([]Estimate, len(frames))
	for i, f := range frames {
		ests[i] = Estimate{
			CIR:         cirs[i],
			FrameSeq:    f.Seq,
			CapturedAt:  f.CapturedAt,
			PublishedAt: now,
			Inference:   lat,
			Batch:       len(frames),
		}
	}
	s.state.Lock()
	s.latest = ests[len(ests)-1]
	s.inferred += uint64(len(frames))
	s.batches++
	s.batchFrames += uint64(len(frames))
	s.inferTotal += lat
	if lat > s.inferMax {
		s.inferMax = lat
	}
	links := make([]*Link, 0, len(s.links))
	//vvdlint:allow maporder -- fan-out to independent per-link inboxes; each link sees every estimate in order, cross-link delivery order is immaterial
	for _, l := range s.links {
		links = append(links, l)
	}
	s.state.Unlock()
	for _, e := range ests {
		for _, l := range links {
			l.offer(e)
		}
	}

	s.pubMu.Lock()
	s.lastPub = frames[len(frames)-1].Seq
	close(s.pubCh)
	s.pubCh = make(chan struct{})
	s.pubMu.Unlock()
}

package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubEstimator encodes each frame's first pixel into a 1-tap CIR, so
// tests can tell which frame an estimate came from. An optional gate makes
// inference block deterministically; batches records every call's size.
type stubEstimator struct {
	mu      sync.Mutex
	batches []int
	gate    chan struct{} // when non-nil, each call receives once before returning
	started chan struct{} // when non-nil, signaled as each call begins
	err     error
}

func (e *stubEstimator) EstimateBatch(imgs [][]float32) ([][]complex128, error) {
	if e.started != nil {
		e.started <- struct{}{}
	}
	if e.gate != nil {
		<-e.gate
	}
	if e.err != nil {
		return nil, e.err
	}
	e.mu.Lock()
	e.batches = append(e.batches, len(imgs))
	e.mu.Unlock()
	out := make([][]complex128, len(imgs))
	for i, img := range imgs {
		out[i] = []complex128{complex(float64(img[0]), 0)}
	}
	return out, nil
}

func (e *stubEstimator) batchSizes() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]int(nil), e.batches...)
}

// frame builds a 1-pixel image carrying its sequence number.
func frame(n int) []float32 { return []float32{float32(n)} }

// fakeClock is a concurrency-safe manual clock.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

func TestFreshestWins(t *testing.T) {
	est := &stubEstimator{}
	s, err := New(Config{Estimator: est})
	if err != nil {
		t.Fatal(err)
	}
	var lastSeq uint64
	for i := 1; i <= 20; i++ {
		seq, _, err := s.Submit(frame(i))
		if err != nil {
			t.Fatal(err)
		}
		lastSeq = seq
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	e, ok := s.Latest()
	if !ok {
		t.Fatal("no estimate after close")
	}
	if e.FrameSeq != lastSeq {
		t.Fatalf("latest frame seq %d, want %d", e.FrameSeq, lastSeq)
	}
	if real(e.CIR[0]) != 20 {
		t.Fatalf("latest CIR encodes frame %v, want 20", real(e.CIR[0]))
	}
	m := s.Metrics()
	if m.FramesSubmitted != 20 || m.FramesInferred+m.FramesDropped != 20 {
		t.Fatalf("metrics don't account for all frames: %+v", m)
	}
}

// TestDropOldestBackpressure pins the queue policy: when the estimator is
// busy and the queue fills, the oldest queued frame is evicted and the
// newest always gets in.
func TestDropOldestBackpressure(t *testing.T) {
	est := &stubEstimator{gate: make(chan struct{}, 16), started: make(chan struct{}, 16)}
	s, err := New(Config{Estimator: est, QueueDepth: 3, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Frame 1 is picked up and blocks inside the estimator.
	if _, _, err := s.Submit(frame(1)); err != nil {
		t.Fatal(err)
	}
	<-est.started
	// Frames 2, 3, 4 fill the queue; frame 5 evicts frame 2.
	for i := 2; i <= 4; i++ {
		if _, dropped, err := s.Submit(frame(i)); err != nil || dropped {
			t.Fatalf("frame %d: dropped=%v err=%v", i, dropped, err)
		}
	}
	seq5, dropped, err := s.Submit(frame(5))
	if err != nil {
		t.Fatal(err)
	}
	if !dropped {
		t.Fatal("frame 5 should evict the oldest queued frame")
	}
	est.gate <- struct{}{} // release frame 1's inference
	est.gate <- struct{}{} // release the drained batch {3,4,5}
	if _, ok := s.WaitFor(seq5, 5*time.Second); !ok {
		t.Fatal("frame 5 estimate never published")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.FramesDropped != 1 {
		t.Fatalf("FramesDropped = %d, want 1", m.FramesDropped)
	}
	if m.FramesInferred != 4 {
		t.Fatalf("FramesInferred = %d, want 4 (frame 2 evicted)", m.FramesInferred)
	}
	if got := est.batchSizes(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("batch sizes = %v, want [1 3]", got)
	}
	e, _ := s.Latest()
	if e.FrameSeq != seq5 || e.Batch != 3 {
		t.Fatalf("latest = seq %d batch %d, want seq %d batch 3", e.FrameSeq, e.Batch, seq5)
	}
}

// TestBatchAmortization: everything that queues during one inference is
// drained as a single EstimateBatch call (up to MaxBatch).
func TestBatchAmortization(t *testing.T) {
	est := &stubEstimator{gate: make(chan struct{}, 16), started: make(chan struct{}, 16)}
	s, err := New(Config{Estimator: est, QueueDepth: 16, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(frame(1))
	<-est.started
	var last uint64
	for i := 2; i <= 7; i++ { // 6 frames queue up: batches of 4 then 2
		last, _, _ = s.Submit(frame(i))
	}
	for i := 0; i < 3; i++ {
		est.gate <- struct{}{}
	}
	if _, ok := s.WaitFor(last, 5*time.Second); !ok {
		t.Fatal("frame 7 estimate never published")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := est.batchSizes(); len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 2 {
		t.Fatalf("batch sizes = %v, want [1 4 2]", got)
	}
	m := s.Metrics()
	if m.Batches != 3 || m.FramesInferred != 7 {
		t.Fatalf("metrics = %+v, want 3 batches / 7 inferred", m)
	}
}

func TestLinkInboxOrderAndDropOldest(t *testing.T) {
	est := &stubEstimator{}
	s, err := New(Config{Estimator: est, LinkBuffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.OpenLink("sensor-7")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.OpenLink("sensor-7"); err == nil {
		t.Fatal("duplicate link id must fail")
	}
	// The first Next call subscribes the session to the estimate stream
	// (nothing published yet, so it times out).
	if _, ok := l.Next(5 * time.Millisecond); ok {
		t.Fatal("Next before any publish must time out")
	}
	var last uint64
	for i := 1; i <= 5; i++ {
		last, _, _ = s.Submit(frame(i))
		if _, ok := s.WaitFor(last, 5*time.Second); !ok {
			t.Fatalf("frame %d never published", i)
		}
	}
	// Inbox holds the newest 2 of 5 published estimates.
	e1, ok := l.Next(time.Second)
	if !ok || real(e1.CIR[0]) != 4 {
		t.Fatalf("first inbox pop = %v (ok=%v), want frame 4", e1.CIR, ok)
	}
	e2, ok := l.Next(time.Second)
	if !ok || real(e2.CIR[0]) != 5 {
		t.Fatalf("second inbox pop = %v (ok=%v), want frame 5", e2.CIR, ok)
	}
	if _, ok := l.Next(10 * time.Millisecond); ok {
		t.Fatal("empty inbox must time out")
	}
	st := l.Stats()
	if st.Dropped != 3 || st.Served != 2 {
		t.Fatalf("stats = %+v, want 3 dropped / 2 served", st)
	}
	if !s.CloseLink("sensor-7") || s.CloseLink("sensor-7") {
		t.Fatal("CloseLink bookkeeping wrong")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestManyConcurrentLinks is the serving-scale acceptance test: ≥100 link
// sessions read estimates concurrently with the camera feed, and every
// served estimate's age stays within one frame period plus the inference
// latency. Time is virtual (a manual clock that only advances between
// publish cycles), so in clock terms the inference latency is zero and
// the bound is exactly the frame period; goroutine interleaving stays
// real, which is what -race exercises.
func TestManyConcurrentLinks(t *testing.T) {
	runManyConcurrentLinks(t, &stubEstimator{}, 0, frame)
}

// runManyConcurrentLinks is the acceptance body shared by the stub and the
// quantized-CNN variants: the estimator and frame shape are the only
// degrees of freedom, every assertion is estimator-agnostic (sequence
// numbers and ages, never CIR contents).
func runManyConcurrentLinks(t *testing.T, est BatchEstimator, inputSize int, mkFrame func(int) []float32) {
	t.Helper()
	const (
		nLinks      = 120
		nFrames     = 40
		framePeriod = 33 * time.Millisecond
	)
	clk := &fakeClock{}
	s, err := New(Config{Estimator: est, InputSize: inputSize, QueueDepth: 8, MaxBatch: 8, Clock: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	links := make([]*Link, nLinks)
	for i := range links {
		if links[i], err = s.OpenLink(fmt.Sprintf("link-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	var violations atomic.Int64
	var lastSubmitted atomic.Uint64
	for _, l := range links {
		wg.Add(1)
		go func(l *Link) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				floor := s.Metrics().LastSeq // published before our read
				e, ok := l.Latest()
				if ok {
					// Freshest-wins: never older than what was already
					// published when we asked.
					if e.FrameSeq < floor {
						violations.Add(1)
					}
					if e.FrameSeq > lastSubmitted.Load() {
						violations.Add(1)
					}
				}
				runtime.Gosched()
			}
		}(l)
	}

	var lastSeq uint64
	for i := 1; i <= nFrames; i++ {
		clk.advance(framePeriod)
		// The single feeder owns the sequence space, so frame i gets seq i;
		// publish the bound before Submit so readers never race ahead of it.
		lastSubmitted.Store(uint64(i))
		seq, _, err := s.SubmitAt(mkFrame(i), clk.now())
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
		lastSeq = seq
		if _, ok := s.WaitFor(seq, 10*time.Second); !ok {
			t.Fatalf("frame %d never published", i)
		}
	}
	close(done)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if violations.Load() != 0 {
		t.Fatalf("%d freshness violations across %d links", violations.Load(), nLinks)
	}
	var served uint64
	for _, l := range links {
		st := l.Stats()
		served += st.Served
		// The age bound: frame period + inference latency (zero in
		// virtual time, since the clock only advances between frames).
		if st.MaxAge > framePeriod {
			t.Fatalf("link %s served an estimate aged %v > frame period %v", st.ID, st.MaxAge, framePeriod)
		}
	}
	e, ok := s.Latest()
	if !ok || e.FrameSeq != lastSeq {
		t.Fatalf("final latest seq %d, want %d", e.FrameSeq, lastSeq)
	}
	m := s.Metrics()
	if m.ActiveLinks != nLinks {
		t.Fatalf("ActiveLinks = %d, want %d", m.ActiveLinks, nLinks)
	}
	if m.EstimatesServed != served {
		t.Fatalf("EstimatesServed = %d, links saw %d", m.EstimatesServed, served)
	}
	t.Logf("%d links served %d estimates over %d frames (mean %.1f reads/frame/link)",
		nLinks, served, nFrames, float64(served)/float64(nFrames)/float64(nLinks))
}

func TestSubmitValidationAndClose(t *testing.T) {
	est := &stubEstimator{}
	s, err := New(Config{Estimator: est, InputSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Submit([]float32{1, 2}); err == nil {
		t.Fatal("wrong-size frame must be rejected")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Submit(frame(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	if _, ok := s.WaitFor(99, 10*time.Millisecond); ok {
		t.Fatal("WaitFor on a closed, drained service must fail")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without estimator must fail")
	}
}

func TestEstimatorErrorStopsService(t *testing.T) {
	boom := errors.New("inference exploded")
	est := &stubEstimator{err: boom}
	s, err := New(Config{Estimator: est})
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := s.Submit(frame(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.WaitFor(seq, time.Second); ok {
		t.Fatal("failed inference must not publish")
	}
	if err := s.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want the estimator error", err)
	}
	if m := s.Metrics(); m.Err == "" {
		t.Fatal("metrics must surface the estimator error")
	}
}

func TestLinkCapAndInvalidID(t *testing.T) {
	s, err := New(Config{Estimator: &stubEstimator{}, MaxLinks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Link(""); err == nil {
		t.Fatal("empty link id must fail")
	}
	if _, err := s.Link("a"); err != nil {
		t.Fatal(err)
	}
	if l, err := s.Link("a"); err != nil || l == nil {
		t.Fatalf("reopening an existing session must succeed: %v", err)
	}
	if _, err := s.Link("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Link("c"); err == nil {
		t.Fatal("MaxLinks cap must reject a third session")
	}
	if _, err := s.OpenLink("c"); err == nil {
		t.Fatal("MaxLinks cap must apply to OpenLink too")
	}
	if !s.CloseLink("a") {
		t.Fatal("CloseLink failed")
	}
	if _, err := s.Link("c"); err != nil {
		t.Fatalf("closing a session must free capacity: %v", err)
	}
}

package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"
)

// verifyNoLeaks snapshots the running goroutine count and registers a
// cleanup — running after the test's own cleanups, so after every Close —
// that polls until the count is back at the snapshot. Goroutines unwind
// asynchronously after Service.Close and server shutdown, hence the retry
// loop; if the count never recovers the surviving stacks are reported.
// Under -race (CI runs the whole suite with it) this pins the contract
// that no exit path strands an estimator goroutine, a blocked Next
// consumer, or an HTTP worker.
func verifyNoLeaks(t *testing.T) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			// Keep-alive connections from the test HTTP client hold
			// goroutines until the idle pool is drained.
			http.DefaultClient.CloseIdleConnections()
			if runtime.NumGoroutine() <= baseline {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d at baseline, %d after cleanup; stacks:\n%s",
			baseline, runtime.NumGoroutine(), buf[:n])
	})
}

// TestCloseReturnsGoroutinesToBaseline drives the full lifecycle — open
// sessions, blocked stream consumers, batched inference — and asserts
// Service.Close unwinds every goroutine it or its consumers started.
func TestCloseReturnsGoroutinesToBaseline(t *testing.T) {
	verifyNoLeaks(t)
	s, err := New(Config{Estimator: &stubEstimator{}, InputSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Consumers blocked deep inside Next with a generous timeout: Close
	// must wake them long before the deadline.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		l, err := s.OpenLink(fmt.Sprintf("l%d", i))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := l.Next(time.Minute); !ok {
					return
				}
			}
		}()
	}
	for i := 1; i <= 16; i++ {
		if _, _, err := s.Submit(frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.WaitFor(16, 5*time.Second); !ok {
		t.Fatal("estimates never published")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestHTTPSessionDeleteReturnsGoroutinesToBaseline exercises the HTTP
// surface: auto-opened session, session DELETE, then server and service
// shutdown must return the process to its goroutine baseline.
func TestHTTPSessionDeleteReturnsGoroutinesToBaseline(t *testing.T) {
	verifyNoLeaks(t)
	_, ts := httpFixture(t)

	resp, body := postJSON(t, ts.URL+"/estimate", map[string]any{
		"link": "ephemeral", "image": []float32{7},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /estimate: got %d (%v)", resp.StatusCode, body)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/links?id=ephemeral", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeBody(t, dresp); dresp.StatusCode != http.StatusOK || got["closed"] != "ephemeral" {
		t.Fatalf("DELETE /links: got %d (%v)", dresp.StatusCode, got)
	}

	_, links := getJSON(t, ts.URL+"/links")
	if ls, ok := links["links"].([]any); !ok || len(ls) != 0 {
		t.Fatalf("links after DELETE: %v", links)
	}
}

package serve

import (
	"math/rand/v2"
	"testing"

	"vvd/internal/core"
	"vvd/internal/dataset"
	"vvd/internal/nn"
)

// quantFrame builds a full-size preprocessed depth image whose pixels vary
// with the frame index, so every inference sees distinct activations.
func quantFrame(n int) []float32 {
	img := make([]float32, dataset.ImagePixels)
	for p := range img {
		img[p] = float32((n*31+p)%97) / 96
	}
	return img
}

// quantVVD builds a tiny untrained VVD and calibrates it straight to int8:
// the serving path only cares that EstimateBatch is a real quantized CNN
// forward pass, not that the weights mean anything.
func quantVVD(t *testing.T) *core.VVD {
	t.Helper()
	arch := core.Arch{Conv1: 2, Conv2: 2, Conv3: 4, Conv4: 4, Dense: 16, Pool: nn.AvgPool}
	net, err := core.BuildNetwork(arch, rand.New(rand.NewPCG(11, 13)))
	if err != nil {
		t.Fatal(err)
	}
	v := &core.VVD{Net: net, Norm: 1, Mean: make([]complex128, core.OutputTaps)}
	calib := make([][]float32, 64)
	for i := range calib {
		calib[i] = quantFrame(i)
	}
	if err := v.CalibrateQuantization(calib); err != nil {
		t.Fatal(err)
	}
	if mode := v.InferenceMode(); mode != "int8" {
		t.Fatalf("inference mode after calibration = %q, want int8", mode)
	}
	return v
}

// TestManyConcurrentLinksQuantized is the serving-scale acceptance test
// again, but with the real estimator stack underneath: a CNN running on
// the int8 GEMM kernels instead of the 1-pixel stub. Same 120 links, same
// virtual-clock freshness and age bounds — and the engine must still be
// on the int8 path once the run is over (concurrent batches must not
// knock it back to float32).
func TestManyConcurrentLinksQuantized(t *testing.T) {
	v := quantVVD(t)
	runManyConcurrentLinks(t, v, dataset.ImagePixels, quantFrame)
	if mode := v.InferenceMode(); mode != "int8" {
		t.Fatalf("inference mode after serving run = %q, want int8", mode)
	}
}

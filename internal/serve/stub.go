package serve

import "time"

// StubEstimator is a load-testing BatchEstimator: it produces a
// deterministic CIR from each frame after an optional fixed per-batch
// latency, with no model and (almost) no CPU. It exists so the cluster
// tier — wire protocol, shard router, load generator — can be measured
// and tested without re-measuring the inference kernel underneath:
// Latency is set to the real engine's measured per-batch cost (PR 6:
// ~1.6 ms for a batch of 8 on one core) to emulate a backend of known
// capacity, or to 0 to make the transport itself the bottleneck.
//
// The CIR is a pure function of the frame bytes and is batch-invariant,
// so any two backends given the same frame produce byte-identical
// estimates — the property the router integration tests pin.
type StubEstimator struct {
	// Taps is the CIR length per estimate. Default 11 (the paper's
	// channel length) when zero.
	Taps int
	// Latency, when positive, is slept once per EstimateBatch call —
	// a fixed inference cost per batch, like a busy accelerator.
	Latency time.Duration
}

// EstimateBatch derives one Taps-long CIR per frame: every tap mixes a
// full-image checksum with the tap index, so a single flipped pixel
// changes every tap.
func (e *StubEstimator) EstimateBatch(imgs [][]float32) ([][]complex128, error) {
	if e.Latency > 0 {
		time.Sleep(e.Latency)
	}
	taps := e.Taps
	if taps <= 0 {
		taps = 11
	}
	out := make([][]complex128, len(imgs))
	for i, img := range imgs {
		var sum float64
		for j, p := range img {
			sum += float64(p) * float64(j%7+1)
		}
		cir := make([]complex128, taps)
		for k := range cir {
			cir[k] = complex(sum+float64(k), float64(len(img))-float64(2*k))
		}
		out[i] = cir
	}
	return out, nil
}

// InferenceMode labels the stub in /metricsz and wire metrics.
func (e *StubEstimator) InferenceMode() string { return "stub" }

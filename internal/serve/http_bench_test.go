package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// The HTTP/JSON round-trip benchmarks, with -benchmem, pin the pooled
// encode/decode buffers: steady-state request handling must not grow
// per-request garbage with the 4500-pixel frame size the model serves.
// They are also the single-node baseline the wire protocol benchmarks
// (internal/wire) and EXPERIMENTS.md compare against.

const benchPixels = 4500

func benchHTTPFixture(b *testing.B) (*httptest.Server, []byte) {
	b.Helper()
	s, err := New(Config{Estimator: &StubEstimator{}, InputSize: benchPixels, QueueDepth: 64})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s))
	b.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	img := make([]float32, benchPixels)
	for i := range img {
		img[i] = float32(i%97) * 0.03125
	}
	body, err := json.Marshal(map[string]any{"link": "bench", "image": img})
	if err != nil {
		b.Fatal(err)
	}
	return ts, body
}

func drainOK(b *testing.B, resp *http.Response, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		b.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
}

func BenchmarkHTTPEstimatePost(b *testing.B) {
	ts, body := benchHTTPFixture(b)
	client := ts.Client()
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(body))
		drainOK(b, resp, err)
	}
}

func BenchmarkHTTPEstimateGet(b *testing.B) {
	ts, body := benchHTTPFixture(b)
	client := ts.Client()
	// Publish one estimate for GET to serve.
	resp, err := client.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(body))
	drainOK(b, resp, err)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(ts.URL + "/estimate?link=bench")
		drainOK(b, resp, err)
	}
}

// BenchmarkHTTPEstimatePostParallel is the HTTP twin of the wire
// protocol's pipelined benchmark: P concurrent link sessions, one
// keep-alive connection each.
func BenchmarkHTTPEstimatePostParallel(b *testing.B) {
	s, err := New(Config{Estimator: &StubEstimator{}, InputSize: benchPixels, QueueDepth: 64})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s))
	b.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	img := make([]float32, benchPixels)
	for i := range img {
		img[i] = float32(i%97) * 0.03125
	}
	client := ts.Client()
	b.ReportAllocs()
	b.ResetTimer()
	var id atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		body, err := json.Marshal(map[string]any{"link": fmt.Sprintf("bench-%d", id.Add(1)), "image": img})
		if err != nil {
			b.Fatal(err)
		}
		for pb.Next() {
			resp, err := client.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(body))
			drainOK(b, resp, err)
		}
	})
}

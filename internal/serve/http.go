package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// NewHandler exposes a Service over HTTP/JSON (stdlib only):
//
//	POST   /estimate   {"link":"a","image":[...]}  submit a frame, wait for
//	                   its (or a newer) estimate and return it
//	GET    /estimate?link=a                        freshest estimate for a link
//	GET    /links                                  per-session statistics
//	DELETE /links?id=a                             close a session
//	GET    /metricsz                               service counters
//
// Link sessions are opened on first use (429 once Config.MaxLinks is
// reached — set it on Internet-facing services). CIRs travel as
// [[re,im], ...] pairs and durations as milliseconds.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /estimate", func(w http.ResponseWriter, r *http.Request) {
		// Bound the body before decoding: an anonymous POST must not be
		// able to make the server buffer an arbitrarily long image array.
		// ~32 bytes per JSON-encoded pixel is generous.
		maxBody := int64(4 << 20)
		if s.cfg.InputSize > 0 {
			maxBody = int64(s.cfg.InputSize)*32 + 4096
		}
		r.Body = http.MaxBytesReader(w, r.Body, maxBody)
		var req estimateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
				return
			}
			httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
		if req.Link == "" {
			httpError(w, http.StatusBadRequest, "missing link id")
			return
		}
		link, err := s.Link(req.Link)
		if err != nil {
			httpError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		if len(req.Image) == 0 {
			serveLatest(w, s, link)
			return
		}
		seq, dropped, err := s.Submit(req.Image)
		if err != nil {
			// A closed service is a server-side condition (estimator
			// failure or shutdown), not a malformed request.
			if errors.Is(err, ErrClosed) {
				httpError(w, http.StatusServiceUnavailable, "%v", err)
			} else {
				httpError(w, http.StatusBadRequest, "%v", err)
			}
			return
		}
		wait := 2 * time.Second
		if req.WaitMS > 0 {
			wait = time.Duration(req.WaitMS) * time.Millisecond
		}
		if _, ok := s.WaitFor(seq, wait); !ok {
			httpError(w, http.StatusGatewayTimeout, "estimate for frame %d not ready after %v", seq, wait)
			return
		}
		e, ok := link.Latest()
		if !ok {
			httpError(w, http.StatusServiceUnavailable, "no estimate published")
			return
		}
		writeJSON(w, estimateResponse{
			Link: link.ID(), FrameSeq: e.FrameSeq, SubmittedSeq: seq, DroppedOldest: dropped,
			CIR: cirPairs(e.CIR), AgeMS: ms(e.AgeAt(s.clock())), InferenceMS: ms(e.Inference), Batch: e.Batch,
		})
	})
	mux.HandleFunc("GET /estimate", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("link")
		if id == "" {
			httpError(w, http.StatusBadRequest, "missing ?link=")
			return
		}
		link, err := s.Link(id)
		if err != nil {
			httpError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		serveLatest(w, s, link)
	})
	mux.HandleFunc("DELETE /links", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" {
			httpError(w, http.StatusBadRequest, "missing ?id=")
			return
		}
		if !s.CloseLink(id) {
			httpError(w, http.StatusNotFound, "link %q not open", id)
			return
		}
		writeJSON(w, map[string]string{"closed": id})
	})
	mux.HandleFunc("GET /links", func(w http.ResponseWriter, r *http.Request) {
		stats := s.Links()
		out := make([]linkJSON, len(stats))
		for i, st := range stats {
			out[i] = linkJSON{
				ID: st.ID, Served: st.Served, Dropped: st.Dropped, Pending: st.Pending,
				LastAgeMS: ms(st.LastAge), MeanAgeMS: ms(st.MeanAge), MaxAgeMS: ms(st.MaxAge),
				OpenedAt: st.OpenedAt,
			}
		}
		writeJSON(w, map[string]any{"links": out})
	})
	mux.HandleFunc("GET /metricsz", func(w http.ResponseWriter, r *http.Request) {
		m := s.Metrics()
		writeJSON(w, metricsJSON{
			FramesSubmitted: m.FramesSubmitted, FramesDropped: m.FramesDropped,
			FramesInferred: m.FramesInferred, Batches: m.Batches, MeanBatch: m.MeanBatch,
			InferMeanMS: ms(m.InferMean), InferFrameMeanMS: ms(m.InferMeanFrame),
			InferMaxMS: ms(m.InferMax), LastSeq: m.LastSeq,
			QueueLen: m.QueueLen, QueueCap: m.QueueCap, ActiveLinks: m.ActiveLinks,
			EstimatesServed: m.EstimatesServed, InferMode: m.InferMode, Err: m.Err,
		})
	})
	return mux
}

type estimateRequest struct {
	Link   string    `json:"link"`
	Image  []float32 `json:"image,omitempty"`
	WaitMS int       `json:"wait_ms,omitempty"`
}

type estimateResponse struct {
	Link          string       `json:"link"`
	FrameSeq      uint64       `json:"frame_seq"`
	SubmittedSeq  uint64       `json:"submitted_seq,omitempty"`
	DroppedOldest bool         `json:"dropped_oldest,omitempty"`
	CIR           [][2]float64 `json:"cir"`
	AgeMS         float64      `json:"age_ms"`
	InferenceMS   float64      `json:"inference_ms"`
	Batch         int          `json:"batch"`
}

type linkJSON struct {
	ID        string    `json:"id"`
	Served    uint64    `json:"served"`
	Dropped   uint64    `json:"dropped"`
	Pending   int       `json:"pending"`
	LastAgeMS float64   `json:"last_age_ms"`
	MeanAgeMS float64   `json:"mean_age_ms"`
	MaxAgeMS  float64   `json:"max_age_ms"`
	OpenedAt  time.Time `json:"opened_at"`
}

type metricsJSON struct {
	FramesSubmitted  uint64  `json:"frames_submitted"`
	FramesDropped    uint64  `json:"frames_dropped"`
	FramesInferred   uint64  `json:"frames_inferred"`
	Batches          uint64  `json:"batches"`
	MeanBatch        float64 `json:"mean_batch"`
	InferMeanMS      float64 `json:"infer_mean_ms"`       // per EstimateBatch call
	InferFrameMeanMS float64 `json:"infer_frame_mean_ms"` // per inferred frame
	InferMaxMS       float64 `json:"infer_max_ms"`
	LastSeq          uint64  `json:"last_seq"`
	QueueLen         int     `json:"queue_len"`
	QueueCap         int     `json:"queue_cap"`
	ActiveLinks      int     `json:"active_links"`
	EstimatesServed  uint64  `json:"estimates_served"`
	InferMode        string  `json:"inference_mode,omitempty"` // float32 / int8 / int8-calibrating
	Err              string  `json:"err,omitempty"`
}

func serveLatest(w http.ResponseWriter, s *Service, link *Link) {
	e, ok := link.Latest()
	if !ok {
		httpError(w, http.StatusNotFound, "no estimate published yet")
		return
	}
	writeJSON(w, estimateResponse{
		Link: link.ID(), FrameSeq: e.FrameSeq, CIR: cirPairs(e.CIR),
		AgeMS: ms(e.AgeAt(s.clock())), InferenceMS: ms(e.Inference), Batch: e.Batch,
	})
}

func cirPairs(cir []complex128) [][2]float64 {
	out := make([][2]float64, len(cir))
	for i, c := range cir {
		out[i] = [2]float64{real(c), imag(c)}
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

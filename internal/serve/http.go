package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// NewHandler exposes a Service over HTTP/JSON (stdlib only):
//
//	POST   /estimate   {"link":"a","image":[...]}  submit a frame, wait for
//	                   its (or a newer) estimate and return it; wait_ms<0
//	                   submits without waiting (fire-and-forget feeders)
//	GET    /estimate?link=a                        freshest estimate for a link
//	GET    /links                                  per-session statistics
//	DELETE /links?id=a                             close a session
//	GET    /metricsz                               service counters
//
// Link sessions are opened on first use (429 once Config.MaxLinks is
// reached — set it on Internet-facing services). CIRs travel as
// [[re,im], ...] pairs and durations as milliseconds.
//
// The session flow itself lives in Service.SubmitAndWait/Fetch — this
// file only maps the serve error taxonomy onto HTTP status codes and
// JSON shapes; internal/wire maps the same flow onto the binary
// protocol.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /estimate", func(w http.ResponseWriter, r *http.Request) {
		// Bound the body before decoding: an anonymous POST must not be
		// able to make the server buffer an arbitrarily long image array.
		// ~32 bytes per JSON-encoded pixel is generous.
		maxBody := int64(4 << 20)
		if s.cfg.InputSize > 0 {
			maxBody = int64(s.cfg.InputSize)*32 + 4096
		}
		r.Body = http.MaxBytesReader(w, r.Body, maxBody)
		body := bodyPool.Get().(*bytes.Buffer)
		defer func() { body.Reset(); bodyPool.Put(body) }()
		if _, err := body.ReadFrom(r.Body); err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
				return
			}
			httpError(w, http.StatusBadRequest, "reading body: %v", err)
			return
		}
		var req estimateRequest
		if err := json.Unmarshal(body.Bytes(), &req); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
		if req.Link == "" {
			httpError(w, http.StatusBadRequest, "missing link id")
			return
		}
		if len(req.Image) == 0 {
			serveFetch(w, s, req.Link)
			return
		}
		if req.WaitMS < 0 {
			// Fire-and-forget submission: camera feeders push frames
			// without consuming the estimate stream.
			res, err := s.SubmitFor(req.Link, req.Image)
			if err != nil {
				httpError(w, statusFor(err), "%v", err)
				return
			}
			writeJSON(w, submitResponse{Link: req.Link, SubmittedSeq: res.SubmittedSeq, DroppedOldest: res.DroppedOldest})
			return
		}
		res, err := s.SubmitAndWait(req.Link, req.Image, time.Duration(req.WaitMS)*time.Millisecond)
		if err != nil {
			if errors.Is(err, ErrNotReady) {
				httpError(w, http.StatusGatewayTimeout, "%v", err)
				return
			}
			if errors.Is(err, ErrNoEstimate) {
				httpError(w, http.StatusServiceUnavailable, "no estimate published")
				return
			}
			httpError(w, statusFor(err), "%v", err)
			return
		}
		writeEstimate(w, s, req.Link, res.Estimate, res.SubmittedSeq, res.DroppedOldest)
	})
	mux.HandleFunc("GET /estimate", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("link")
		if id == "" {
			httpError(w, http.StatusBadRequest, "missing ?link=")
			return
		}
		serveFetch(w, s, id)
	})
	mux.HandleFunc("DELETE /links", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" {
			httpError(w, http.StatusBadRequest, "missing ?id=")
			return
		}
		if !s.CloseLink(id) {
			httpError(w, http.StatusNotFound, "link %q not open", id)
			return
		}
		writeJSON(w, map[string]string{"closed": id})
	})
	mux.HandleFunc("GET /links", func(w http.ResponseWriter, r *http.Request) {
		stats := s.Links()
		out := make([]linkJSON, len(stats))
		for i, st := range stats {
			out[i] = linkJSON{
				ID: st.ID, Served: st.Served, Dropped: st.Dropped, Pending: st.Pending,
				LastAgeMS: ms(st.LastAge), MeanAgeMS: ms(st.MeanAge), MaxAgeMS: ms(st.MaxAge),
				OpenedAt: st.OpenedAt,
			}
		}
		writeJSON(w, map[string]any{"links": out})
	})
	mux.HandleFunc("GET /metricsz", func(w http.ResponseWriter, r *http.Request) {
		m := s.Metrics()
		writeJSON(w, metricsJSON{
			FramesSubmitted: m.FramesSubmitted, FramesDropped: m.FramesDropped,
			FramesInferred: m.FramesInferred, Batches: m.Batches, MeanBatch: m.MeanBatch,
			InferMeanMS: ms(m.InferMean), InferFrameMeanMS: ms(m.InferMeanFrame),
			InferMaxMS: ms(m.InferMax), LastSeq: m.LastSeq,
			QueueLen: m.QueueLen, QueueCap: m.QueueCap, ActiveLinks: m.ActiveLinks,
			EstimatesServed: m.EstimatesServed,
			AgeP50MS:        ms(m.AgeP50), AgeP99MS: ms(m.AgeP99),
			InferMode: m.InferMode, Err: m.Err,
		})
	})
	return mux
}

// statusFor maps the serve error taxonomy onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrLinkLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		// A closed service is a server-side condition (estimator failure
		// or shutdown), not a malformed request.
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNotReady):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrNoEstimate):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

type estimateRequest struct {
	Link   string    `json:"link"`
	Image  []float32 `json:"image,omitempty"`
	WaitMS int       `json:"wait_ms,omitempty"`
}

type estimateResponse struct {
	Link          string       `json:"link"`
	FrameSeq      uint64       `json:"frame_seq"`
	SubmittedSeq  uint64       `json:"submitted_seq,omitempty"`
	DroppedOldest bool         `json:"dropped_oldest,omitempty"`
	CIR           [][2]float64 `json:"cir"`
	AgeMS         float64      `json:"age_ms"`
	InferenceMS   float64      `json:"inference_ms"`
	Batch         int          `json:"batch"`
}

type submitResponse struct {
	Link          string `json:"link"`
	SubmittedSeq  uint64 `json:"submitted_seq"`
	DroppedOldest bool   `json:"dropped_oldest,omitempty"`
}

type linkJSON struct {
	ID        string    `json:"id"`
	Served    uint64    `json:"served"`
	Dropped   uint64    `json:"dropped"`
	Pending   int       `json:"pending"`
	LastAgeMS float64   `json:"last_age_ms"`
	MeanAgeMS float64   `json:"mean_age_ms"`
	MaxAgeMS  float64   `json:"max_age_ms"`
	OpenedAt  time.Time `json:"opened_at"`
}

type metricsJSON struct {
	FramesSubmitted  uint64  `json:"frames_submitted"`
	FramesDropped    uint64  `json:"frames_dropped"`
	FramesInferred   uint64  `json:"frames_inferred"`
	Batches          uint64  `json:"batches"`
	MeanBatch        float64 `json:"mean_batch"`
	InferMeanMS      float64 `json:"infer_mean_ms"`       // per EstimateBatch call
	InferFrameMeanMS float64 `json:"infer_frame_mean_ms"` // per inferred frame
	InferMaxMS       float64 `json:"infer_max_ms"`
	LastSeq          uint64  `json:"last_seq"`
	QueueLen         int     `json:"queue_len"`
	QueueCap         int     `json:"queue_cap"`
	ActiveLinks      int     `json:"active_links"`
	EstimatesServed  uint64  `json:"estimates_served"`
	AgeP50MS         float64 `json:"age_p50_ms"`               // served-age percentiles over the
	AgeP99MS         float64 `json:"age_p99_ms"`               // recent window — the tail signal
	InferMode        string  `json:"inference_mode,omitempty"` // float32 / int8 / int8-calibrating
	Err              string  `json:"err,omitempty"`
}

func serveFetch(w http.ResponseWriter, s *Service, linkID string) {
	e, err := s.Fetch(linkID)
	if err != nil {
		httpError(w, statusFor(err), "%v", err)
		return
	}
	writeEstimate(w, s, linkID, e, 0, false)
}

// Per-request scratch, pooled: the POST body buffer above, and below the
// response encode buffer plus the [[re,im],...] CIR pair slice. The hot
// /estimate path allocates only what it must hand off (the decoded image
// travels into the frame queue, so its buffer cannot be reused) — pinned
// by BenchmarkHTTPEstimate{Post,Get} with -benchmem.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

type respScratch struct {
	buf   bytes.Buffer
	pairs [][2]float64
}

var respPool = sync.Pool{New: func() any { return new(respScratch) }}

func writeEstimate(w http.ResponseWriter, s *Service, linkID string, e Estimate, submitted uint64, dropped bool) {
	rs := respPool.Get().(*respScratch)
	defer func() { rs.buf.Reset(); respPool.Put(rs) }()
	rs.pairs = appendCIRPairs(rs.pairs[:0], e.CIR)
	encodeJSON(&rs.buf, estimateResponse{
		Link: linkID, FrameSeq: e.FrameSeq, SubmittedSeq: submitted, DroppedOldest: dropped,
		CIR: rs.pairs, AgeMS: ms(e.AgeAt(s.clock())), InferenceMS: ms(e.Inference), Batch: e.Batch,
	})
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(rs.buf.Bytes())
}

func appendCIRPairs(dst [][2]float64, cir []complex128) [][2]float64 {
	for _, c := range cir {
		dst = append(dst, [2]float64{real(c), imag(c)})
	}
	return dst
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func encodeJSON(buf *bytes.Buffer, v any) {
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeJSON(w http.ResponseWriter, v any) {
	rs := respPool.Get().(*respScratch)
	defer func() { rs.buf.Reset(); respPool.Put(rs) }()
	encodeJSON(&rs.buf, v)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(rs.buf.Bytes())
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

package report

import (
	"strings"
	"testing"

	"vvd/internal/metrics"
)

func sampleStats() map[string]metrics.BoxStats {
	return map[string]metrics.BoxStats{
		"Standard Decoding": {N: 5, Min: 0.05, Q1: 0.07, Median: 0.09, Q3: 0.11, Max: 0.15},
		"Ground Truth":      {N: 5, Min: 0.005, Q1: 0.007, Median: 0.009, Q3: 0.012, Max: 0.02},
	}
}

func TestBoxPlotRendersAllTechniques(t *testing.T) {
	out := BoxPlot("Fig. 12", []string{"Ground Truth", "Standard Decoding"}, sampleStats(), 60)
	if !strings.Contains(out, "Ground Truth") || !strings.Contains(out, "Standard Decoding") {
		t.Fatalf("missing rows:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "=") {
		t.Fatalf("missing box glyphs:\n%s", out)
	}
}

func TestBoxPlotOrderReflectsMagnitude(t *testing.T) {
	out := BoxPlot("per", []string{"Ground Truth", "Standard Decoding"}, sampleStats(), 60)
	lines := strings.Split(out, "\n")
	var gtLine, stdLine string
	for _, l := range lines {
		if strings.Contains(l, "Ground Truth") {
			gtLine = l
		}
		if strings.Contains(l, "Standard Decoding") {
			stdLine = l
		}
	}
	// The median marker of the (smaller) ground-truth row must sit left of
	// the standard-decoding marker on the shared log axis.
	if strings.IndexByte(gtLine, '#') >= strings.IndexByte(stdLine, '#') {
		t.Fatalf("log axis ordering broken:\n%s", out)
	}
}

func TestBoxPlotSkipsMissing(t *testing.T) {
	out := BoxPlot("per", []string{"Nope", "Ground Truth"}, sampleStats(), 60)
	if strings.Contains(out, "Nope") {
		t.Fatal("missing technique rendered")
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	out := BoxPlot("per", []string{"Nope"}, sampleStats(), 60)
	if !strings.Contains(out, "no data") {
		t.Fatalf("expected no-data placeholder:\n%s", out)
	}
}

func TestBoxPlotDegenerateStats(t *testing.T) {
	stats := map[string]metrics.BoxStats{"A": {N: 1}}
	out := BoxPlot("per", []string{"A"}, stats, 60)
	if !strings.Contains(out, "A") {
		t.Fatalf("degenerate stats not rendered:\n%s", out)
	}
}

func TestLinePlotRendersMarkersAndLegend(t *testing.T) {
	out := LinePlot("Fig. 16", []string{"0", "0.1", "0.5", "1", "2"},
		[]Series{
			{Name: "genie", Values: []float64{1e-8, 3e-8, 6e-8, 6e-8, 6.4e-8}},
			{Name: "VVD", Values: []float64{2e-8, 2.1e-8, 2.3e-8, 2.6e-8, 3e-8}},
		}, 8)
	if !strings.Contains(out, "genie") || !strings.Contains(out, "VVD") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "0.5") {
		t.Fatalf("x labels missing:\n%s", out)
	}
}

func TestLinePlotMonotoneSeriesRowOrder(t *testing.T) {
	// A strictly increasing series must place later markers on higher rows
	// (smaller row index = larger value).
	out := LinePlot("t", []string{"a", "b", "c"},
		[]Series{{Name: "up", Values: []float64{1e-8, 1e-7, 1e-6}}}, 9)
	lines := strings.Split(out, "\n")
	rowOf := func(col int) int {
		for r, l := range lines {
			idx := strings.IndexByte(l, '*')
			if idx >= 0 && (idx-10)/6 == col {
				return r
			}
		}
		return -1
	}
	r0, r2 := rowOf(0), rowOf(2)
	if r0 < 0 || r2 < 0 || r2 >= r0 {
		t.Fatalf("marker rows not ordered (r0=%d r2=%d):\n%s", r0, r2, out)
	}
}

func TestLinePlotEmpty(t *testing.T) {
	out := LinePlot("t", nil, nil, 5)
	if !strings.Contains(out, "no data") {
		t.Fatalf("expected no-data placeholder:\n%s", out)
	}
}

func TestTruncate(t *testing.T) {
	if truncate("abcdef", 4) != "abc…" {
		t.Fatalf("truncate = %q", truncate("abcdef", 4))
	}
	if truncate("ab", 4) != "ab" {
		t.Fatal("short strings must pass through")
	}
}

// Package report renders the evaluation results as ASCII charts: the box
// plots of Figs. 11–14 and the log-scale aging curves of Figs. 16–17, so
// the harness output carries the same visual shape as the paper's figures
// without any plotting dependency.
package report

import (
	"fmt"
	"math"
	"strings"

	"vvd/internal/metrics"
)

// BoxPlot renders per-technique box statistics on a shared horizontal
// log-scale axis: `|----[  med  ]----|` spans min..q1..median..q3..max.
func BoxPlot(title string, order []string, stats map[string]metrics.BoxStats, width int) string {
	if width < 40 {
		width = 72
	}
	var present []string
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, name := range order {
		s, ok := stats[name]
		if !ok {
			continue
		}
		present = append(present, name)
		if s.Min > 0 && s.Min < lo {
			lo = s.Min
		}
		if s.Max > hi {
			hi = s.Max
		}
	}
	if len(present) == 0 {
		return title + "\n(no data)\n"
	}
	if !(lo > 0) || !(hi > 0) || hi <= lo {
		// Degenerate axis (all zeros or a single point): pad around hi.
		if hi <= 0 {
			hi = 1
		}
		lo = hi / 10
	}
	logLo, logHi := math.Log10(lo), math.Log10(hi)
	if logHi-logLo < 0.5 {
		mid := (logHi + logLo) / 2
		logLo, logHi = mid-0.25, mid+0.25
	}
	span := logHi - logLo
	pos := func(v float64) int {
		if v <= 0 {
			return 0
		}
		p := (math.Log10(v) - logLo) / span
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		return int(p * float64(width-1))
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s  (log scale %.2e … %.2e)\n", title, math.Pow(10, logLo), math.Pow(10, logHi))
	for _, name := range present {
		s := stats[name]
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		mn, q1, med, q3, mx := pos(s.Min), pos(s.Q1), pos(s.Median), pos(s.Q3), pos(s.Max)
		for i := mn; i <= mx && i < width; i++ {
			line[i] = '-'
		}
		for i := q1; i <= q3 && i < width; i++ {
			line[i] = '='
		}
		line[mn] = '|'
		line[mx] = '|'
		line[med] = '#'
		fmt.Fprintf(&b, "%-26s %s %.3e\n", truncate(name, 26), string(line), s.Median)
	}
	return b.String()
}

// Series is one named curve for LinePlot.
type Series struct {
	Name   string
	Values []float64
}

// LinePlot renders curves over a shared x-axis on a log-scale y grid:
// each series gets a marker; rows run from the highest decade down.
func LinePlot(title string, xLabels []string, series []Series, height int) string {
	if height < 4 {
		height = 10
	}
	markers := []byte{'*', 'o', '+', 'x', '@', '%'}
	lo, hi := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range series {
		for _, v := range s.Values {
			if v > 0 {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		if len(s.Values) > n {
			n = len(s.Values)
		}
	}
	if n == 0 || !(lo > 0) {
		return title + "\n(no data)\n"
	}
	logLo, logHi := math.Log10(lo), math.Log10(hi)
	if logHi-logLo < 0.2 {
		mid := (logHi + logLo) / 2
		logLo, logHi = mid-0.1, mid+0.1
	}
	colWidth := 6
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = make([]byte, n*colWidth)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	row := func(v float64) int {
		p := (math.Log10(v) - logLo) / (logHi - logLo)
		r := int(math.Round((1 - p) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i, v := range s.Values {
			if v <= 0 {
				continue
			}
			grid[row(v)][i*colWidth+colWidth/2] = m
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (log scale %.1e … %.1e)\n", title, lo, hi)
	for r := 0; r < height; r++ {
		frac := 1 - float64(r)/float64(height-1)
		val := math.Pow(10, logLo+frac*(logHi-logLo))
		fmt.Fprintf(&b, "%9.1e |%s\n", val, string(grid[r]))
	}
	fmt.Fprintf(&b, "%9s +%s\n", "", strings.Repeat("-", n*colWidth))
	fmt.Fprintf(&b, "%9s  ", "")
	for i := 0; i < n; i++ {
		label := ""
		if i < len(xLabels) {
			label = xLabels[i]
		}
		fmt.Fprintf(&b, "%-*s", colWidth, truncate(label, colWidth-1))
	}
	b.WriteByte('\n')
	for si, s := range series {
		fmt.Fprintf(&b, "%9s  %c = %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}

// Package shard is the serving cluster's routing tier: a consistent-hash
// router that spreads link sessions across N vvd-serve backends reached
// over the binary wire protocol (internal/wire).
//
// Placement is by link id — every frame and fetch for a link lands on
// the same backend, so that backend's freshest-wins estimate stream is
// the link's estimate stream; backends share nothing. The hash ring uses
// virtual nodes (Config.VNodes per backend) so load spreads evenly and
// adding or removing one backend remaps only the ~1/N of links it owns,
// never reshuffling the rest of the cluster — the property that makes
// hot add/remove cheap while cameras keep streaming.
package shard

import (
	"fmt"
	"sort"
)

// hash64 positions a key on the circle: 64-bit FNV-1a — tiny,
// allocation-free, and stable across processes (the ring must hash
// identically in every router) — followed by a finalizer. Raw FNV-1a
// output correlates strongly for keys that differ only in a trailing
// counter ("addr#0", "addr#1", …), which clumps a backend's virtual
// nodes onto one arc; the avalanche mix spreads them uniformly.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	// Murmur3/splitmix-style finalizer.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ringEntry is one virtual node: a point on the hash circle owned by a
// backend.
type ringEntry struct {
	hash uint64
	b    *backend
}

// ring is an immutable consistent-hash ring. Routers swap whole rings
// on membership change (copy-on-write), so lookups never lock.
type ring struct {
	entries []ringEntry // sorted by hash
}

// buildRing places vnodes virtual nodes per backend on the circle.
func buildRing(backends []*backend, vnodes int) *ring {
	entries := make([]ringEntry, 0, len(backends)*vnodes)
	for _, b := range backends {
		for v := 0; v < vnodes; v++ {
			entries = append(entries, ringEntry{hash: hash64(fmt.Sprintf("%s#%d", b.addr, v)), b: b})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].hash != entries[j].hash {
			return entries[i].hash < entries[j].hash
		}
		// Hash ties (astronomically rare) break by address so every
		// router builds the identical ring.
		return entries[i].b.addr < entries[j].b.addr
	})
	return &ring{entries: entries}
}

// owner returns the backend owning a link: the first virtual node at or
// clockwise of the link's hash.
func (r *ring) owner(link string) *backend {
	if len(r.entries) == 0 {
		return nil
	}
	h := hash64(link)
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].hash >= h })
	if i == len(r.entries) {
		i = 0
	}
	return r.entries[i].b
}

// walk visits the distinct backends clockwise from a link's position —
// the owner first, then each successive failover candidate — until the
// visit callback returns true or every backend has been offered.
func (r *ring) walk(link string, visit func(*backend) bool) {
	if len(r.entries) == 0 {
		return
	}
	h := hash64(link)
	start := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].hash >= h })
	seen := make(map[*backend]bool)
	for k := 0; k < len(r.entries); k++ {
		e := r.entries[(start+k)%len(r.entries)]
		if seen[e.b] {
			continue
		}
		seen[e.b] = true
		if visit(e.b) {
			return
		}
	}
}

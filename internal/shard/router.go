package shard

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vvd/internal/wire"
)

// Config parameterizes a Router.
type Config struct {
	// Backends are the initial shard addresses (host:port, wire
	// protocol). More can join and leave at runtime.
	Backends []string
	// VNodes is the number of virtual nodes per backend on the hash
	// ring. Default 64 — load imbalance shrinks as sqrt of this.
	VNodes int
	// Conns is the multiplexed connection pool size per backend.
	// Default 2.
	Conns int
	// MaxInflight bounds concurrently-forwarded requests per backend;
	// beyond it the router sheds with StatusOverloaded. Default 128.
	MaxInflight int
	// HealthInterval is the Ping cadence per backend. Default 1s; < 0
	// disables active health checking (transport failures still mark
	// backends down).
	HealthInterval time.Duration
	// HealthFailures is how many consecutive probe failures take a
	// backend out of rotation. Default 3. A single successful probe
	// rejoins it.
	HealthFailures int
	// Client configures each pooled wire connection.
	Client wire.ClientConfig
}

func (c *Config) fill() {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 128
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthFailures <= 0 {
		c.HealthFailures = 3
	}
}

// Router fronts N vvd-serve shards behind the wire protocol. It
// implements wire.Handler, so the same wire.Server that exposes one
// backend exposes a whole cluster: clients cannot tell a router from a
// single node, and routers could in principle stack.
//
// Routing is consistent-hash by link id (see package doc). A request
// for a link whose owner is down walks clockwise to the next healthy
// backend — the link degrades to a cold session there rather than
// failing. An overloaded shard is NOT failed over: spilling an
// overloaded shard's traffic onto its neighbours converts one hot shard
// into a cluster-wide cascade, so the shed comes back to the client as
// StatusOverloaded unchanged.
type Router struct {
	cfg Config

	ring atomic.Pointer[ring]

	mu       sync.Mutex
	backends map[string]*backend
	closed   bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewRouter builds a router over the configured backends and starts its
// health loop. Backends are assumed healthy until probed otherwise.
func NewRouter(cfg Config) (*Router, error) {
	cfg.fill()
	r := &Router{
		cfg:      cfg,
		backends: map[string]*backend{},
		stop:     make(chan struct{}),
	}
	for _, addr := range cfg.Backends {
		if addr == "" {
			return nil, fmt.Errorf("shard: empty backend address")
		}
		if _, dup := r.backends[addr]; dup {
			return nil, fmt.Errorf("shard: duplicate backend %s", addr)
		}
		r.backends[addr] = newBackend(addr, cfg.Conns, cfg.MaxInflight, cfg.Client)
	}
	r.rebuild()
	if cfg.HealthInterval > 0 {
		r.wg.Add(1)
		go r.healthLoop()
	}
	return r, nil
}

// rebuild swaps in a fresh ring from the current membership. Callers
// hold r.mu or are the constructor.
func (r *Router) rebuild() {
	backends := make([]*backend, 0, len(r.backends))
	for _, b := range r.backends {
		backends = append(backends, b)
	}
	// buildRing sorts by hash; pre-sorting by addr just makes the input
	// order deterministic for the tie-break path.
	sort.Slice(backends, func(i, j int) bool { return backends[i].addr < backends[j].addr })
	r.ring.Store(buildRing(backends, r.cfg.VNodes))
}

// AddBackend brings a new shard into rotation. Only the ~1/N of links
// that hash to it move; everything else keeps its backend.
func (r *Router) AddBackend(addr string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("shard: router closed")
	}
	if addr == "" {
		return fmt.Errorf("shard: empty backend address")
	}
	if _, dup := r.backends[addr]; dup {
		return fmt.Errorf("shard: backend %s already present", addr)
	}
	r.backends[addr] = newBackend(addr, r.cfg.Conns, r.cfg.MaxInflight, r.cfg.Client)
	r.rebuild()
	return nil
}

// RemoveBackend takes a shard out of rotation and closes its pool. Its
// links remap to their ring successors on their next request.
func (r *Router) RemoveBackend(addr string) error {
	r.mu.Lock()
	b, ok := r.backends[addr]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("shard: backend %s not present", addr)
	}
	delete(r.backends, addr)
	r.rebuild()
	r.mu.Unlock()
	b.close()
	return nil
}

// Close stops the health loop and closes every backend pool.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.wg.Wait()
		return nil
	}
	r.closed = true
	backends := make([]*backend, 0, len(r.backends))
	//vvdlint:allow maporder -- teardown closes every backend; order is immaterial
	for _, b := range r.backends {
		backends = append(backends, b)
	}
	r.mu.Unlock()
	close(r.stop)
	r.wg.Wait()
	for _, b := range backends {
		b.close()
	}
	return nil
}

// snapshot returns the current backends (unordered).
func (r *Router) snapshot() []*backend {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*backend, 0, len(r.backends))
	//vvdlint:allow maporder -- unordered snapshot; consumers sort (Status) or fan out (Ping/Metrics)
	for _, b := range r.backends {
		out = append(out, b)
	}
	return out
}

// ---- health ----

func (r *Router) healthLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
		backends := r.snapshot()
		var wg sync.WaitGroup
		for _, b := range backends {
			wg.Add(1)
			go func(b *backend) {
				defer wg.Done()
				r.probe(b)
			}(b)
		}
		wg.Wait()
	}
}

// probe pings one backend outside the in-flight bound (health must be
// observable through overload). Any frame that comes back — including a
// StatusOverloaded shed — proves the shard alive; only transport
// failures count against it.
func (r *Router) probe(b *backend) {
	c, err := b.client()
	if err == nil {
		_, err = c.Ping(r.cfg.HealthInterval)
	}
	if err == nil || !isTransport(err) {
		b.fails.Store(0)
		b.healthy.Store(true)
		return
	}
	if int(b.fails.Add(1)) >= r.cfg.HealthFailures {
		b.healthy.Store(false)
	}
}

// isTransport reports whether an error is a connection-level failure
// (dial failure, connection lost, reply never arrived) rather than a
// protocol verdict from a live server.
func isTransport(err error) bool {
	var se *wire.StatusError
	if !errors.As(err, &se) {
		return true // raw net error
	}
	// The backend pool wraps dial/conn-loss failures as
	// StatusUnavailable with its own message; a real server verdict
	// arrives as any status straight off the wire. NotReady from a
	// timed-out round trip also means "no frame came back".
	return se.Code == wire.StatusUnavailable && strings.HasPrefix(se.Msg, "backend ") ||
		se.Code == wire.StatusNotReady && strings.HasPrefix(se.Msg, "no reply")
}

// ---- routing core ----

// route finds the link's owner (or its failover successor) and runs the
// call against it under that shard's in-flight bound. Unhealthy backends
// are skipped; a transport failure marks the backend down immediately
// and tries the next one; a protocol verdict — success, overload shed,
// no-estimate — is final.
func (r *Router) route(link string, fn func(*wire.Client) error) error {
	rg := r.ring.Load()
	if rg == nil || len(rg.entries) == 0 {
		return wire.Errf(wire.StatusUnavailable, "no backends configured")
	}
	err := wire.Errf(wire.StatusUnavailable, "no healthy backend for link %q", link)
	rg.walk(link, func(b *backend) bool {
		if !b.healthy.Load() {
			return false
		}
		err = b.do(fn)
		if err != nil && isTransport(err) {
			// The shard vanished under us: out of rotation now, next
			// candidate serves the link. The health loop rejoins it.
			b.healthy.Store(false)
			return false
		}
		return true
	})
	return err
}

// ---- wire.Handler ----

// Submit implements wire.Handler by forwarding to the link's shard.
func (r *Router) Submit(link string, img []float32, wait time.Duration, reply *wire.EstimateReply) error {
	return r.route(link, func(c *wire.Client) error {
		if wait < 0 {
			return c.SubmitNoWait(link, img, reply)
		}
		return c.Submit(link, img, wait, reply)
	})
}

// Fetch implements wire.Handler.
func (r *Router) Fetch(link string, reply *wire.EstimateReply) error {
	return r.route(link, func(c *wire.Client) error {
		return c.Fetch(link, reply)
	})
}

// Stats implements wire.Handler. A named link routes to its shard; the
// empty link fans out to every backend and merges, sorted by id (links
// are disjoint across shards, except transiently after a remap).
func (r *Router) Stats(link string) ([]wire.LinkStats, error) {
	if link != "" {
		var out []wire.LinkStats
		err := r.route(link, func(c *wire.Client) error {
			var cerr error
			out, cerr = c.Stats(link, out[:0])
			return cerr
		})
		return out, err
	}
	var mu sync.Mutex
	var merged []wire.LinkStats
	if err := r.fanOut(func(c *wire.Client) error {
		stats, err := c.Stats("", nil)
		if err != nil {
			return err
		}
		mu.Lock()
		merged = append(merged, stats...)
		mu.Unlock()
		return nil
	}); err != nil {
		return nil, err
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ID < merged[j].ID })
	return merged, nil
}

// Metrics implements wire.Handler: the cluster-wide counter roll-up.
// Counters sum; per-batch means weight by batch count; latency maxima
// and age percentiles take the worst shard (a conservative tail — the
// true cluster percentile needs the samples, which stay on the shards).
func (r *Router) Metrics() (wire.MetricsReply, error) {
	var mu sync.Mutex
	var out wire.MetricsReply
	var batchWeighted, frameWeighted float64
	modes := map[string]bool{}
	var errs []string
	if err := r.fanOut(func(c *wire.Client) error {
		m, err := c.Metrics()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		out.FramesSubmitted += m.FramesSubmitted
		out.FramesDropped += m.FramesDropped
		out.FramesInferred += m.FramesInferred
		out.Batches += m.Batches
		out.EstimatesServed += m.EstimatesServed
		if m.LastSeq > out.LastSeq {
			out.LastSeq = m.LastSeq // per-shard sequences; keep the max as a progress signal
		}
		batchWeighted += m.MeanBatch * float64(m.Batches)
		frameWeighted += float64(m.InferMean) * float64(m.Batches)
		if m.InferMax > out.InferMax {
			out.InferMax = m.InferMax
		}
		if m.AgeP50 > out.AgeP50 {
			out.AgeP50 = m.AgeP50
		}
		if m.AgeP99 > out.AgeP99 {
			out.AgeP99 = m.AgeP99
		}
		if m.InferMeanFrame > out.InferMeanFrame {
			out.InferMeanFrame = m.InferMeanFrame
		}
		out.QueueLen += m.QueueLen
		out.QueueCap += m.QueueCap
		out.ActiveLinks += m.ActiveLinks
		modes[m.InferMode] = true
		if m.Err != "" {
			errs = append(errs, m.Err)
		}
		return nil
	}); err != nil {
		return wire.MetricsReply{}, err
	}
	if out.Batches > 0 {
		out.MeanBatch = batchWeighted / float64(out.Batches)
		out.InferMean = time.Duration(frameWeighted / float64(out.Batches))
	}
	modeList := make([]string, 0, len(modes))
	for m := range modes {
		modeList = append(modeList, m)
	}
	sort.Strings(modeList)
	out.InferMode = strings.Join(modeList, ",")
	sort.Strings(errs)
	out.Err = strings.Join(errs, "; ")
	return out, nil
}

// Ping implements wire.Handler: alive while at least one shard is.
func (r *Router) Ping() (wire.PongReply, error) {
	var mu sync.Mutex
	var out wire.PongReply
	var reached int
	err := r.fanOut(func(c *wire.Client) error {
		p, err := c.Ping(0)
		if err != nil {
			return err
		}
		mu.Lock()
		out.QueueLen += p.QueueLen
		out.ActiveLinks += p.ActiveLinks
		out.EstimatesServed += p.EstimatesServed
		reached++
		mu.Unlock()
		return nil
	})
	if reached == 0 {
		if err == nil {
			err = wire.Errf(wire.StatusUnavailable, "no healthy backends")
		}
		return wire.PongReply{}, err
	}
	return out, nil
}

// fanOut runs a call against every healthy backend concurrently and
// returns nil if at least one succeeded (the cluster answer is the
// reachable shards' answer; a partial cluster still serves).
func (r *Router) fanOut(fn func(*wire.Client) error) error {
	backends := r.snapshot()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var ok int
	for _, b := range backends {
		if !b.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			err := b.do(fn)
			mu.Lock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				ok++
			}
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	if ok == 0 {
		if firstErr == nil {
			firstErr = wire.Errf(wire.StatusUnavailable, "no healthy backends")
		}
		return firstErr
	}
	return nil
}

// Status is the per-shard operational snapshot (vvd-router's /shardz),
// sorted by address.
type Status struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Inflight int    `json:"inflight"`
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	Sheds    uint64 `json:"sheds"`
}

// Status reports every backend's state, sorted by address.
func (r *Router) Status() []Status {
	backends := r.snapshot()
	out := make([]Status, 0, len(backends))
	for _, b := range backends {
		out = append(out, Status{
			Addr:     b.addr,
			Healthy:  b.healthy.Load(),
			Inflight: len(b.inflight),
			Requests: b.requests.Load(),
			Errors:   b.errors.Load(),
			Sheds:    b.sheds.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

package shard

import (
	"fmt"
	"testing"

	"vvd/internal/wire"
)

func testBackends(addrs ...string) []*backend {
	out := make([]*backend, len(addrs))
	for i, a := range addrs {
		out[i] = newBackend(a, 1, 1, wire.ClientConfig{})
	}
	return out
}

func TestRingDeterministic(t *testing.T) {
	a := buildRing(testBackends("h1:1", "h2:1", "h3:1"), 64)
	b := buildRing(testBackends("h3:1", "h1:1", "h2:1"), 64) // different order, same set
	for i := 0; i < 1000; i++ {
		link := fmt.Sprintf("link-%d", i)
		if a.owner(link).addr != b.owner(link).addr {
			t.Fatalf("link %q: owner %s vs %s for the same membership", link, a.owner(link).addr, b.owner(link).addr)
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	backends := testBackends("h1:1", "h2:1", "h3:1", "h4:1")
	r := buildRing(backends, 64)
	counts := map[string]int{}
	const links = 4000
	for i := 0; i < links; i++ {
		counts[r.owner(fmt.Sprintf("link-%d", i)).addr]++
	}
	// 64 vnodes: shares land near 25% ±, never collapse onto one shard.
	for _, b := range backends {
		share := float64(counts[b.addr]) / links
		if share < 0.10 || share > 0.45 {
			t.Errorf("backend %s owns %.1f%% of links (counts %v)", b.addr, 100*share, counts)
		}
	}
}

func TestRingRemapBounds(t *testing.T) {
	full := testBackends("h1:1", "h2:1", "h3:1")
	before := buildRing(full, 64)
	after := buildRing(full[:2], 64) // h3 leaves

	const links = 3000
	var moved, ownedByGone int
	for i := 0; i < links; i++ {
		link := fmt.Sprintf("link-%d", i)
		oldOwner := before.owner(link).addr
		newOwner := after.owner(link).addr
		if oldOwner == "h3:1" {
			ownedByGone++
			continue // must move somewhere; that is the point
		}
		if oldOwner != newOwner {
			moved++
		}
	}
	// Consistent hashing's contract: links not owned by the departed
	// backend keep their assignment exactly.
	if moved != 0 {
		t.Errorf("%d links not owned by the removed backend still remapped", moved)
	}
	if ownedByGone == 0 || ownedByGone > links/2 {
		t.Errorf("removed backend owned %d/%d links, expected roughly a third", ownedByGone, links)
	}
}

func TestRingWalkVisitsEachBackendOnce(t *testing.T) {
	r := buildRing(testBackends("h1:1", "h2:1", "h3:1"), 64)
	var order []string
	r.walk("some-link", func(b *backend) bool {
		order = append(order, b.addr)
		return false // keep walking
	})
	if len(order) != 3 {
		t.Fatalf("walk visited %v, want all 3 backends exactly once", order)
	}
	seen := map[string]bool{}
	for _, a := range order {
		if seen[a] {
			t.Fatalf("walk visited %s twice: %v", a, order)
		}
		seen[a] = true
	}
	if order[0] != r.owner("some-link").addr {
		t.Fatalf("walk started at %s, owner is %s", order[0], r.owner("some-link").addr)
	}
}

func TestRingEmpty(t *testing.T) {
	r := buildRing(nil, 64)
	if r.owner("x") != nil {
		t.Fatal("empty ring returned an owner")
	}
	called := false
	r.walk("x", func(*backend) bool { called = true; return true })
	if called {
		t.Fatal("empty ring walked somewhere")
	}
}

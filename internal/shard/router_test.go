package shard

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"vvd/internal/serve"
	"vvd/internal/wire"
)

// verifyNoLeaks is the serve/wire packages' goroutine-leak check: every
// Close path — backends, router, wire servers, health loop — must
// unwind to the pre-test goroutine count.
func verifyNoLeaks(t *testing.T) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if runtime.NumGoroutine() <= baseline {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d at baseline, %d after cleanup; stacks:\n%s",
			baseline, runtime.NumGoroutine(), buf[:n])
	})
}

const testPixels = 64

func testImage(seed int) []float32 {
	img := make([]float32, testPixels)
	for i := range img {
		img[i] = float32(seed*31+i) * 0.125
	}
	return img
}

// node is one in-process vvd-serve shard.
type node struct {
	svc    *serve.Service
	server *wire.Server
	addr   string
}

func (n *node) close() {
	n.svc.Close()
	n.server.Close()
}

// startNode stands up a shard on addr (":0" for any port), optionally
// with a fixed stub latency.
func startNode(t *testing.T, addr string, latency time.Duration) *node {
	t.Helper()
	svc, err := serve.New(serve.Config{
		Estimator:  &serve.StubEstimator{Latency: latency},
		InputSize:  testPixels,
		QueueDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	server := wire.NewServer(wire.NewServiceHandler(svc), wire.ServerConfig{})
	bound, err := server.Listen(addr)
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	return &node{svc: svc, server: server, addr: bound.String()}
}

// cluster is the full stack under test: N shards, a router, and a wire
// server + client fronting the router — exactly what vvd-router runs.
type cluster struct {
	nodes  []*node
	router *Router
	client *wire.Client
}

func startCluster(t *testing.T, nodes int, cfg Config, latency time.Duration) *cluster {
	t.Helper()
	verifyNoLeaks(t)
	c := &cluster{}
	for i := 0; i < nodes; i++ {
		n := startNode(t, "127.0.0.1:0", latency)
		c.nodes = append(c.nodes, n)
		cfg.Backends = append(cfg.Backends, n.addr)
	}
	router, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.router = router
	front := wire.NewServer(router, wire.ServerConfig{})
	addr, err := front.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := wire.Dial(addr.String(), wire.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c.client = client
	t.Cleanup(func() {
		client.Close()
		router.Close()
		front.Close()
		for _, n := range c.nodes {
			n.close()
		}
	})
	return c
}

// linksOwnedBy finds n link ids the router's ring assigns to the given
// backend address.
func linksOwnedBy(t *testing.T, c *cluster, addr string, n int) []string {
	t.Helper()
	rg := c.router.ring.Load()
	var out []string
	for i := 0; len(out) < n && i < 100000; i++ {
		link := fmt.Sprintf("probe-%d", i)
		if rg.owner(link).addr == addr {
			out = append(out, link)
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d/%d links owned by %s", len(out), n, addr)
	}
	return out
}

func cirEqual(a, b []complex64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { //vvdlint:bitexact -- routed estimates are byte-identical to direct by contract
			return false
		}
	}
	return true
}

// TestRoutedEstimatesByteIdenticalToDirect is the acceptance-criterion
// test: frames served through a 2-backend router produce estimates
// byte-identical to direct single-node serving, and concurrent links
// through the router stay correct under -race.
func TestRoutedEstimatesByteIdenticalToDirect(t *testing.T) {
	c := startCluster(t, 2, Config{HealthInterval: -1}, 0)

	// The direct single node everything is compared against.
	direct := startNode(t, "127.0.0.1:0", 0)
	t.Cleanup(direct.close)
	dclient, err := wire.Dial(direct.addr, wire.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dclient.Close() })

	const links = 10

	// Phase 1 — serial byte-identical comparison. One frame in flight
	// per service keeps each node's freshest-wins stream deterministic:
	// the estimate each submit waits for is exactly its own frame's, so
	// routed and direct replies must agree bit for bit.
	var routed, ref wire.EstimateReply
	for l := 0; l < links; l++ {
		img := testImage(l * 1000)
		link := fmt.Sprintf("link-%d", l)
		if err := c.client.Submit(link, img, 0, &routed); err != nil {
			t.Fatalf("routed submit %s: %v", link, err)
		}
		if err := dclient.Submit(fmt.Sprintf("direct-%d", l), img, 0, &ref); err != nil {
			t.Fatalf("direct submit: %v", err)
		}
		if !cirEqual(routed.CIR, ref.CIR) {
			t.Fatalf("link %s: routed CIR %v != direct %v", link, routed.CIR, ref.CIR)
		}
	}

	// Both shards actually served traffic (10 links over 2 shards).
	var shardsServing int
	for _, n := range c.nodes {
		if n.svc.Metrics().FramesSubmitted > 0 {
			shardsServing++
		}
	}
	if shardsServing != 2 {
		t.Errorf("%d of 2 shards saw traffic; routing collapsed onto one", shardsServing)
	}

	// Phase 2 — the same links hammered concurrently. Estimates are a
	// shared freshest-wins stream per shard, so a reply may carry a
	// newer frame than the one submitted; assert the protocol-level
	// invariants instead of frame identity.
	const perLink = 4
	var wg sync.WaitGroup
	errs := make(chan error, links)
	for l := 0; l < links; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			var reply wire.EstimateReply
			for i := 1; i <= perLink; i++ {
				link := fmt.Sprintf("link-%d", l)
				if err := c.client.Submit(link, testImage(l*1000+i), 0, &reply); err != nil {
					errs <- fmt.Errorf("routed submit %s/%d: %w", link, i, err)
					return
				}
				if reply.FrameSeq < reply.SubmittedSeq {
					errs <- fmt.Errorf("link %s: FrameSeq %d < SubmittedSeq %d", link, reply.FrameSeq, reply.SubmittedSeq)
					return
				}
				if len(reply.CIR) != len(routed.CIR) {
					errs <- fmt.Errorf("link %s: %d taps, want %d", link, len(reply.CIR), len(routed.CIR))
					return
				}
			}
		}(l)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Cluster metrics roll up both shards.
	m, err := c.client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.FramesSubmitted != links*(perLink+1) {
		t.Errorf("cluster FramesSubmitted = %d, want %d", m.FramesSubmitted, links*(perLink+1))
	}
	if m.ActiveLinks != links {
		t.Errorf("cluster ActiveLinks = %d, want %d", m.ActiveLinks, links)
	}
}

func TestLinkAffinity(t *testing.T) {
	c := startCluster(t, 2, Config{HealthInterval: -1}, 0)
	var reply wire.EstimateReply
	const frames = 6
	link := "affine-link"
	for i := 0; i < frames; i++ {
		if err := c.client.Submit(link, testImage(i), 0, &reply); err != nil {
			t.Fatal(err)
		}
	}
	// Every frame landed on one shard: session state is not split.
	var with, without int
	for _, n := range c.nodes {
		switch n.svc.Metrics().FramesSubmitted {
		case frames:
			with++
		case 0:
			without++
		default:
			t.Fatalf("shard %s saw %d of %d frames: link split across shards",
				n.addr, n.svc.Metrics().FramesSubmitted, frames)
		}
	}
	if with != 1 || without != 1 {
		t.Fatalf("frames spread %d/%d shards, want all on one", with, without)
	}
}

func TestStatsFanOutMergesSorted(t *testing.T) {
	c := startCluster(t, 2, Config{HealthInterval: -1}, 0)
	var reply wire.EstimateReply
	links := []string{"zeta", "alpha", "mid", "beta"}
	for i, l := range links {
		if err := c.client.Submit(l, testImage(i), 0, &reply); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := c.client.Stats("", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(links) {
		t.Fatalf("stats entries = %d, want %d", len(stats), len(links))
	}
	for i := 1; i < len(stats); i++ {
		if stats[i-1].ID >= stats[i].ID {
			t.Fatalf("stats not sorted: %s before %s", stats[i-1].ID, stats[i].ID)
		}
	}
	// A named link routes to its shard.
	one, err := c.client.Stats("alpha", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].ID != "alpha" || one[0].Served != 1 {
		t.Fatalf("named stats = %+v", one)
	}
}

func TestRouterOverloadSheds(t *testing.T) {
	// One in-flight slot per shard, slow backends: concurrent requests
	// for the same shard shed at the router with StatusOverloaded before
	// ever reaching the backend.
	c := startCluster(t, 2, Config{HealthInterval: -1, MaxInflight: 1}, 300*time.Millisecond)

	link := linksOwnedBy(t, c, c.nodes[0].addr, 1)[0]
	started := make(chan struct{})
	firstErr := make(chan error, 1)
	go func() {
		var reply wire.EstimateReply
		close(started)
		firstErr <- c.client.Submit(link, testImage(0), 5*time.Second, &reply)
	}()
	<-started
	// Wait for the slot to be occupied.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := c.router.Status()
		busy := false
		for _, s := range st {
			if s.Inflight > 0 {
				busy = true
			}
		}
		if busy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first submit never became in-flight at the router")
		}
		time.Sleep(time.Millisecond)
	}

	var sheds int
	for i := 0; i < 5; i++ {
		var reply wire.EstimateReply
		err := c.client.Fetch(link, &reply)
		if wire.CodeOf(err) == wire.StatusOverloaded {
			sheds++
		}
	}
	if sheds == 0 {
		t.Fatal("no request shed while the shard's in-flight slot was held")
	}
	for _, s := range c.router.Status() {
		if s.Sheds > 0 {
			goto counted
		}
	}
	t.Fatal("router shed counter did not advance")
counted:
	if err := <-firstErr; err != nil {
		t.Fatalf("parked submit failed: %v", err)
	}
}

func TestFailoverAndRejoin(t *testing.T) {
	c := startCluster(t, 2, Config{
		HealthInterval: 20 * time.Millisecond,
		HealthFailures: 2,
	}, 0)
	victim := c.nodes[1]
	links := linksOwnedBy(t, c, victim.addr, 3)

	var reply wire.EstimateReply
	for _, l := range links {
		if err := c.client.Submit(l, testImage(1), 0, &reply); err != nil {
			t.Fatalf("pre-kill submit %s: %v", l, err)
		}
	}
	survivorSubmitted := c.nodes[0].svc.Metrics().FramesSubmitted

	// Kill the victim shard.
	victim.close()

	// Every link the victim owned keeps being served — first request
	// eats the transport failure, fails over to the survivor, and marks
	// the victim down.
	for _, l := range links {
		if err := c.client.Submit(l, testImage(2), 0, &reply); err != nil {
			t.Fatalf("post-kill submit %s: %v", l, err)
		}
	}
	if got := c.nodes[0].svc.Metrics().FramesSubmitted; got != survivorSubmitted+uint64(len(links)) {
		t.Fatalf("survivor submitted = %d, want %d", got, survivorSubmitted+uint64(len(links)))
	}
	// Status reflects the dead shard.
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy := true
		for _, s := range c.router.Status() {
			if s.Addr == victim.addr {
				healthy = s.Healthy
			}
		}
		if !healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never marked unhealthy")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Resurrect the shard on the same address; the health loop rejoins
	// it and its links come home.
	reborn := startNode(t, victim.addr, 0)
	t.Cleanup(reborn.close)
	deadline = time.Now().Add(5 * time.Second)
	for {
		healthy := false
		for _, s := range c.router.Status() {
			if s.Addr == victim.addr {
				healthy = s.Healthy
			}
		}
		if healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reborn shard never rejoined")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.client.Submit(links[0], testImage(3), 0, &reply); err != nil {
		t.Fatalf("post-rejoin submit: %v", err)
	}
	if got := reborn.svc.Metrics().FramesSubmitted; got != 1 {
		t.Fatalf("reborn shard submitted = %d, want 1 (link did not come home)", got)
	}
}

func TestHotAddRemove(t *testing.T) {
	c := startCluster(t, 1, Config{HealthInterval: -1}, 0)

	// Grow the cluster by one live shard.
	extra := startNode(t, "127.0.0.1:0", 0)
	t.Cleanup(extra.close)
	if err := c.router.AddBackend(extra.addr); err != nil {
		t.Fatal(err)
	}
	if err := c.router.AddBackend(extra.addr); err == nil {
		t.Fatal("duplicate AddBackend succeeded")
	}

	// Links owned by the new shard land on it.
	links := linksOwnedBy(t, c, extra.addr, 3)
	var reply wire.EstimateReply
	for i, l := range links {
		if err := c.client.Submit(l, testImage(i), 0, &reply); err != nil {
			t.Fatal(err)
		}
	}
	if got := extra.svc.Metrics().FramesSubmitted; got != uint64(len(links)) {
		t.Fatalf("new shard submitted = %d, want %d", got, len(links))
	}

	// Shrink back; the same links flow to the original shard.
	if err := c.router.RemoveBackend(extra.addr); err != nil {
		t.Fatal(err)
	}
	if err := c.router.RemoveBackend(extra.addr); err == nil {
		t.Fatal("double RemoveBackend succeeded")
	}
	before := c.nodes[0].svc.Metrics().FramesSubmitted
	for i, l := range links {
		if err := c.client.Submit(l, testImage(i), 0, &reply); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.nodes[0].svc.Metrics().FramesSubmitted; got != before+uint64(len(links)) {
		t.Fatalf("original shard submitted = %d, want %d", got, before+uint64(len(links)))
	}
}

func TestRouterNoBackends(t *testing.T) {
	verifyNoLeaks(t)
	r, err := NewRouter(Config{HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	var reply wire.EstimateReply
	if err := r.Submit("l", testImage(0), 0, &reply); wire.CodeOf(err) != wire.StatusUnavailable {
		t.Fatalf("err = %v, want StatusUnavailable", err)
	}
	if _, err := r.Ping(); wire.CodeOf(err) != wire.StatusUnavailable {
		t.Fatalf("ping err = %v, want StatusUnavailable", err)
	}
}

func TestRouterConfigValidation(t *testing.T) {
	verifyNoLeaks(t)
	if _, err := NewRouter(Config{Backends: []string{"a:1", "a:1"}, HealthInterval: -1}); err == nil {
		t.Fatal("duplicate backends accepted")
	}
	if _, err := NewRouter(Config{Backends: []string{""}, HealthInterval: -1}); err == nil {
		t.Fatal("empty backend address accepted")
	}
}

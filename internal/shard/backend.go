package shard

import (
	"sync"
	"sync/atomic"

	"vvd/internal/wire"
)

// backend is one vvd-serve shard: a small pool of multiplexed wire
// connections, a per-shard in-flight bound, and the health state the
// ring consults when routing.
type backend struct {
	addr string
	ccfg wire.ClientConfig

	// healthy gates routing. Starts true (a new backend gets traffic
	// immediately; the first failed calls flip it) and is owned by the
	// router's health loop plus the transport-failure path.
	healthy atomic.Bool
	fails   atomic.Int32 // consecutive failed health probes

	// inflight bounds concurrently-forwarded requests to this shard;
	// beyond it the router sheds with StatusOverloaded instead of
	// queueing, same policy as the wire server itself.
	inflight chan struct{}

	requests atomic.Uint64 // calls forwarded (incl. failures)
	errors   atomic.Uint64 // calls that returned a transport error
	sheds    atomic.Uint64 // calls shed by the in-flight bound

	mu     sync.Mutex
	conns  []*wire.Client // fixed slots, dialed lazily, redialed on death
	next   int            // round-robin slot cursor
	closed bool
}

func newBackend(addr string, conns int, inflight int, ccfg wire.ClientConfig) *backend {
	b := &backend{
		addr:     addr,
		ccfg:     ccfg,
		inflight: make(chan struct{}, inflight),
		conns:    make([]*wire.Client, conns),
	}
	b.healthy.Store(true)
	return b
}

// client returns a live connection from the pool, dialing (or redialing
// a dead slot) as needed. Round-robin across slots spreads links over
// connections; the mutex only guards slot assignment, not calls.
func (b *backend) client() (*wire.Client, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, wire.Errf(wire.StatusUnavailable, "backend %s removed", b.addr)
	}
	slot := b.next
	b.next = (b.next + 1) % len(b.conns)
	c := b.conns[slot]
	if c != nil && c.Err() == nil {
		b.mu.Unlock()
		return c, nil
	}
	b.mu.Unlock()

	// Dial outside the lock; a slow backend must not stall other slots.
	nc, err := wire.Dial(b.addr, b.ccfg)
	if err != nil {
		return nil, wire.Errf(wire.StatusUnavailable, "backend %s unreachable: %v", b.addr, err)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		nc.Close()
		return nil, wire.Errf(wire.StatusUnavailable, "backend %s removed", b.addr)
	}
	if old := b.conns[slot]; old != nil && old.Err() == nil {
		// Another goroutine redialed the slot first; use theirs.
		b.mu.Unlock()
		nc.Close()
		return old, nil
	}
	if old := b.conns[slot]; old != nil {
		old.Close()
	}
	b.conns[slot] = nc
	b.mu.Unlock()
	return nc, nil
}

// do forwards one call under the shard's in-flight bound.
func (b *backend) do(fn func(*wire.Client) error) error {
	select {
	case b.inflight <- struct{}{}:
	default:
		b.sheds.Add(1)
		return wire.Errf(wire.StatusOverloaded, "shard %s at max in-flight requests (%d)", b.addr, cap(b.inflight))
	}
	defer func() { <-b.inflight }()
	b.requests.Add(1)
	c, err := b.client()
	if err != nil {
		b.errors.Add(1)
		return err
	}
	err = fn(c)
	if err != nil && c.Err() != nil {
		// The connection died under the call: transport failure, not a
		// protocol verdict. Count it; the health loop decides membership.
		b.errors.Add(1)
		return wire.Errf(wire.StatusUnavailable, "backend %s connection lost: %v", b.addr, err)
	}
	return err
}

// close tears down the pool. In-flight calls fail with their
// connections.
func (b *backend) close() {
	b.mu.Lock()
	b.closed = true
	conns := b.conns
	b.conns = make([]*wire.Client, len(conns))
	b.mu.Unlock()
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

package dataset

import (
	"reflect"
	"testing"
)

// TestGenerateParallelMatchesSequential pins the determinism contract of
// the parallel generator: a campaign generated with 8 workers is
// byte-identical to the sequential one — every float of every estimate,
// every sync statistic, every image buffer. Run under -race in CI it also
// exercises the memoized frame renders and the shared transmit cache for
// data races.
func TestGenerateParallelMatchesSequential(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 1
	seq, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Sets) != len(par.Sets) {
		t.Fatalf("set counts differ: %d vs %d", len(seq.Sets), len(par.Sets))
	}
	for si := range seq.Sets {
		a, b := seq.Sets[si], par.Sets[si]
		if len(a.Packets) != len(b.Packets) {
			t.Fatalf("set %d packet counts differ", si)
		}
		for ki := range a.Packets {
			if !reflect.DeepEqual(a.Packets[ki], b.Packets[ki]) {
				t.Fatalf("set %d packet %d differs between workers=1 and workers=8", si, ki)
			}
		}
	}
}

// TestGenerateSharesFrameBuffers checks the frame-render memoization:
// consecutive packets reference overlapping camera frames (packet k's
// current frame is packet k+1's 100 ms-lagged frame), and memoized
// renders must share the same normalized buffer rather than re-render.
func TestGenerateSharesFrameBuffers(t *testing.T) {
	c := genSmall(t)
	shared := false
	for _, s := range c.Sets {
		for k := 0; k+1 < len(s.Packets); k++ {
			cur := s.Packets[k].Images[LagCurrent]
			lagged := s.Packets[k+1].Images[Lag100ms]
			if len(cur) > 0 && len(lagged) > 0 && &cur[0] == &lagged[0] {
				shared = true
			}
		}
	}
	if !shared {
		t.Fatal("no overlapping frames share a render buffer — memoization not effective")
	}
}

// TestGenerateWorkersErrorPropagates checks fail-fast error handling in
// the parallel path (invalid PSDU surfaces as an error, not a panic).
func TestGenerateWorkersErrorPropagates(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 4
	cfg.PSDULen = 1
	if _, err := Generate(cfg); err == nil {
		t.Fatal("invalid PSDU accepted by parallel generator")
	}
}

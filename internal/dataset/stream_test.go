package dataset

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the testdata golden fixtures")

// fidelityConfig is the config class the v1 store could not round-trip:
// scripted trajectory plus a nonzero human scatter gain override.
func fidelityConfig() Config {
	cfg := smallConfig()
	cfg.Scripted = true
	cfg.HumanScatterGain = 0.4
	return cfg
}

func comparePackets(t *testing.T, orig, loaded *Campaign) {
	t.Helper()
	if len(loaded.Sets) != len(orig.Sets) {
		t.Fatalf("sets = %d, want %d", len(loaded.Sets), len(orig.Sets))
	}
	for si := range orig.Sets {
		a, b := orig.Sets[si], loaded.Sets[si]
		if a.Index != b.Index || len(a.Packets) != len(b.Packets) {
			t.Fatalf("set %d shape mismatch", si)
		}
		for ki := range a.Packets {
			if !reflect.DeepEqual(a.Packets[ki], b.Packets[ki]) {
				t.Fatalf("set %d packet %d mismatch", si, ki)
			}
		}
	}
}

func compareReception(t *testing.T, orig, loaded *Campaign, set, pkt int) {
	t.Helper()
	_, _, _, recA, err := orig.Reception(set, pkt)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, recB, err := loaded.Reception(set, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recA.Waveform) != len(recB.Waveform) {
		t.Fatal("regenerated waveform length differs")
	}
	for i := range recA.Waveform {
		if recA.Waveform[i] != recB.Waveform[i] { //vvdlint:bitexact -- store round-trip and regeneration are bit-identical by format contract
			t.Fatalf("regenerated waveforms differ at sample %d", i)
		}
	}
}

// TestV2RoundTripFullConfig pins the fidelity fix: a scripted,
// nonzero-scatter-gain campaign survives Save→Load with its complete
// Config and regenerates bit-identical receptions.
func TestV2RoundTripFullConfig(t *testing.T) {
	orig, err := Generate(fidelityConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCampaign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg != orig.Cfg {
		t.Fatalf("config not preserved:\n got %+v\nwant %+v", loaded.Cfg, orig.Cfg)
	}
	if got := loaded.Geometry.HumanScatterGain; got != 0.4 {
		t.Fatalf("rebuilt geometry scatter gain = %v, want 0.4", got)
	}
	comparePackets(t, orig, loaded)
	compareReception(t, orig, loaded, 1, 2)
	compareReception(t, orig, loaded, 3, 0)
}

// TestV1DropsScatterGain documents the legacy limitation the v2 format
// fixes by construction: v1 never serialized HumanScatterGain, so a
// reloaded v1 campaign rebuilds the default-geometry environment.
func TestV1DropsScatterGain(t *testing.T) {
	orig, err := Generate(fidelityConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := saveV1(orig, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCampaign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg.HumanScatterGain != 0 {
		t.Fatal("v1 cannot carry HumanScatterGain; expected it dropped")
	}
	if !loaded.Cfg.Scripted {
		t.Fatal("v1 stores the Scripted flag; expected it preserved")
	}
	if loaded.Geometry.HumanScatterGain == orig.Geometry.HumanScatterGain { //vvdlint:bitexact -- store round-trip and regeneration are bit-identical by format contract
		t.Fatal("expected the v1 rebuild to fall back to the default scatter gain")
	}
}

// TestV1CompatRoundTrip exercises the frozen v1 codec end to end,
// including the depth-image path.
func TestV1CompatRoundTrip(t *testing.T) {
	orig, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := saveV1(orig, &buf); err != nil {
		t.Fatal(err)
	}
	r, err := OpenCampaign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 1 {
		t.Fatalf("version = %d, want 1", r.Version())
	}
	loaded, err := r.ReadSets(nil)
	if err != nil {
		t.Fatal(err)
	}
	comparePackets(t, orig, loaded)
	compareReception(t, orig, loaded, 1, 3)
}

// goldenV1Config must stay frozen: testdata/campaign_v1.bin was generated
// from it (go test -run TestV1GoldenFixture -update-golden).
func goldenV1Config() Config {
	cfg := DefaultConfig()
	cfg.Sets = 2
	cfg.PacketsPerSet = 6
	cfg.PSDULen = 24
	cfg.Seed = 5
	cfg.RenderImages = false
	cfg.Scripted = true
	return cfg
}

// TestV1GoldenFixture decodes the committed v1 fixture through the compat
// path and checks it against a freshly generated campaign — the guarantee
// that campaign files written before the v2 store keep loading, bit for
// bit, as the codebase evolves.
func TestV1GoldenFixture(t *testing.T) {
	path := filepath.Join("testdata", "campaign_v1.bin")
	cfg := goldenV1Config()
	want, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		var buf bytes.Buffer
		if err := saveV1(want, &buf); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCampaign(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg != cfg {
		t.Fatalf("fixture config = %+v, want %+v", loaded.Cfg, cfg)
	}
	comparePackets(t, want, loaded)
	compareReception(t, want, loaded, 2, 1)
}

func saveV2(t *testing.T, c *Campaign) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStreamNextSetAndEOF(t *testing.T) {
	orig, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenCampaign(bytes.NewReader(saveV2(t, orig)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 3 || r.NumSets() != len(orig.Sets) {
		t.Fatalf("header: version %d sets %d", r.Version(), r.NumSets())
	}
	if r.Config() != orig.Cfg {
		t.Fatalf("header config mismatch")
	}
	for i := 0; i < len(orig.Sets); i++ {
		set, err := r.NextSet()
		if err != nil {
			t.Fatal(err)
		}
		if set.Index != i+1 || len(set.Packets) != len(orig.Sets[i].Packets) {
			t.Fatalf("set %d shape mismatch", i)
		}
		if !reflect.DeepEqual(set.Packets, orig.Sets[i].Packets) {
			t.Fatalf("set %d payload mismatch", i)
		}
	}
	if _, err := r.NextSet(); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}

func TestStreamSkipAndReadSet(t *testing.T) {
	orig, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	blob := saveV2(t, orig)

	r, err := OpenCampaign(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if idx, err := r.SkipSet(); err != nil || idx != 1 {
		t.Fatalf("SkipSet = %d, %v", idx, err)
	}
	set, err := r.NextSet()
	if err != nil || set.Index != 2 {
		t.Fatalf("NextSet after skip: %v, %v", set, err)
	}

	r, err = OpenCampaign(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	set, err = r.ReadSet(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(set.Packets, orig.Sets[2].Packets) {
		t.Fatal("ReadSet(3) payload mismatch")
	}
	// The stream has been consumed past set 1.
	if _, err := r.ReadSet(1); err == nil {
		t.Fatal("expected backward ReadSet to fail")
	}
	if _, err := r.ReadSet(99); err == nil {
		t.Fatal("expected out-of-range ReadSet to fail")
	}
}

func TestStreamReadSetsSubset(t *testing.T) {
	orig, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenCampaign(bytes.NewReader(saveV2(t, orig)))
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.ReadSets(func(id int) bool { return id != 2 })
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sets) != 3 {
		t.Fatalf("placeholder slice length %d", len(c.Sets))
	}
	if len(c.Sets[1].Packets) != 0 || c.Sets[1].Index != 2 {
		t.Fatal("skipped set should be an empty placeholder")
	}
	if !reflect.DeepEqual(c.Sets[0].Packets, orig.Sets[0].Packets) ||
		!reflect.DeepEqual(c.Sets[2].Packets, orig.Sets[2].Packets) {
		t.Fatal("kept sets mismatch")
	}
	// Receptions regenerate against the rebuilt environment.
	compareReception(t, orig, c, 3, 1)
}

func TestStreamShellEnvironment(t *testing.T) {
	orig, err := Generate(fidelityConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenCampaign(bytes.NewReader(saveV2(t, orig)))
	if err != nil {
		t.Fatal(err)
	}
	shell, err := r.Shell()
	if err != nil {
		t.Fatal(err)
	}
	if shell.Geometry.HumanScatterGain != orig.Geometry.HumanScatterGain { //vvdlint:bitexact -- store round-trip and regeneration are bit-identical by format contract
		t.Fatal("shell geometry differs")
	}
	if !reflect.DeepEqual(shell.RefCIR, orig.RefCIR) {
		t.Fatal("shell reference CIR differs")
	}
	if len(shell.Sets) != len(orig.Sets) {
		t.Fatal("shell placeholder count differs")
	}
	// A streamed set decodes packets that regenerate identically via the
	// shell, without the other sets ever being materialized.
	set, err := r.ReadSet(2)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, recA, err := orig.Reception(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, recB, err := shell.ReceptionPacket(&set.Packets[4])
	if err != nil {
		t.Fatal(err)
	}
	for i := range recA.Waveform {
		if recA.Waveform[i] != recB.Waveform[i] { //vvdlint:bitexact -- store round-trip and regeneration are bit-identical by format contract
			t.Fatal("shell reception differs")
		}
	}
}

// TestV2CorruptionDetected flips bytes across the whole file — header,
// config, set headers, payloads, checksums — and requires every flip to be
// rejected: the v2 layout leaves no byte uncovered by a CRC.
func TestV2CorruptionDetected(t *testing.T) {
	cfg := smallConfig()
	cfg.RenderImages = false
	orig, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob := saveV2(t, orig)
	step := len(blob)/512 + 1
	for pos := 0; pos < len(blob); pos += step {
		mut := append([]byte(nil), blob...)
		mut[pos] ^= 0x5a
		if _, err := LoadCampaign(bytes.NewReader(mut)); err == nil {
			t.Fatalf("byte flip at offset %d of %d went undetected", pos, len(blob))
		}
	}
}

// TestV2TruncationDetected cuts the stream at assorted points; every
// prefix must be rejected.
func TestV2TruncationDetected(t *testing.T) {
	cfg := smallConfig()
	cfg.RenderImages = false
	orig, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob := saveV2(t, orig)
	cuts := []int{0, 1, 3, 7, 11, 40, len(blob) / 3, len(blob) / 2, len(blob) - 5, len(blob) - 1}
	for _, cut := range cuts {
		if _, err := LoadCampaign(bytes.NewReader(blob[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", cut, len(blob))
		}
	}
}

func TestV2VersionGate(t *testing.T) {
	// A header claiming a future version must be refused with a version
	// message, not misparsed.
	hdr := appendU32(nil, campaignMagicV2)
	hdr = appendU32(hdr, campaignVersion+1)
	hdr = appendU32(hdr, 2)
	hdr = append(hdr, '{', '}')
	hdr = appendU32(hdr, 0)
	hdr = appendU32(hdr, 0xdeadbeef)
	_, err := OpenCampaign(bytes.NewReader(hdr))
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("version %d", campaignVersion+1)) {
		t.Fatalf("expected version error, got %v", err)
	}
	// Version 1 inside the VVD2 magic family is equally unreadable.
	hdr = appendU32(nil, campaignMagicV2)
	hdr = appendU32(hdr, 1)
	hdr = appendU32(hdr, 2)
	hdr = append(hdr, '{', '}')
	hdr = appendU32(hdr, 0)
	hdr = appendU32(hdr, 0xdeadbeef)
	if _, err := OpenCampaign(bytes.NewReader(hdr)); err == nil || !strings.Contains(err.Error(), "version 1") {
		t.Fatalf("expected version error, got %v", err)
	}
}

// goldenV2Config must stay frozen: testdata/campaign_v2.bin was written by
// the version-2 codec before the v3 (multi-occupant) layout existed, and is
// never regenerated — it is the proof that v2 files keep decoding.
func goldenV2Config() Config {
	cfg := DefaultConfig()
	cfg.Sets = 2
	cfg.PacketsPerSet = 6
	cfg.PSDULen = 24
	cfg.Seed = 9
	cfg.RenderImages = false
	cfg.HumanScatterGain = 0.3
	return cfg
}

// TestV2GoldenFixture decodes the committed v2 fixture and checks it
// against a freshly generated campaign of the same configuration: the v2
// payload layout stays readable, and single-occupant generation reproduces
// the pre-multi-occupant packets bit for bit (the acceptance bound of the
// occupancy generalization).
func TestV2GoldenFixture(t *testing.T) {
	path := filepath.Join("testdata", "campaign_v2.bin")
	cfg := goldenV2Config()
	want, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenCampaign(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 2 {
		t.Fatalf("fixture version = %d, want 2", r.Version())
	}
	loaded, err := r.ReadSets(nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg != cfg {
		t.Fatalf("fixture config = %+v, want %+v", loaded.Cfg, cfg)
	}
	comparePackets(t, want, loaded)
	compareReception(t, want, loaded, 2, 1)
}

func TestWriterMisuse(t *testing.T) {
	cfg := smallConfig()
	cfg.Sets, cfg.PacketsPerSet = 2, 2
	cfg.RenderImages = false
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, c.Cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSet(&Set{Index: 0}); err == nil {
		t.Fatal("index 0 accepted")
	}
	if err := w.WriteSet(&c.Sets[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close with a missing declared set accepted")
	}

	buf.Reset()
	w, err = NewWriter(&buf, c.Cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSet(&c.Sets[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSet(&c.Sets[1]); err == nil {
		t.Fatal("extra set beyond declared count accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSet(&c.Sets[1]); err == nil {
		t.Fatal("WriteSet after Close accepted")
	}
}

// ---------------------------------------------------------------------------
// benchmarks: the Save/Load perf contract of the v2 store

var (
	benchOnce sync.Once
	benchCamp *Campaign
	benchV2   []byte
	benchV1   []byte
	benchErr  error
)

// benchCampaign builds a mid-size default-shape campaign (depth images on)
// shared by every persistence benchmark.
func benchCampaign(b *testing.B) (*Campaign, []byte, []byte) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Sets = 4
		cfg.PacketsPerSet = 40
		cfg.PSDULen = 64
		cfg.Seed = 11
		benchCamp, benchErr = Generate(cfg)
		if benchErr != nil {
			return
		}
		var v2, v1 bytes.Buffer
		if benchErr = benchCamp.Save(&v2); benchErr != nil {
			return
		}
		if benchErr = saveV1(benchCamp, &v1); benchErr != nil {
			return
		}
		benchV2, benchV1 = v2.Bytes(), v1.Bytes()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCamp, benchV2, benchV1
}

func BenchmarkCampaignSave(b *testing.B) {
	c, v2, _ := benchCampaign(b)
	b.SetBytes(int64(len(v2)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Save(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignSaveV1(b *testing.B) {
	c, _, v1 := benchCampaign(b)
	b.SetBytes(int64(len(v1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := saveV1(c, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignLoad(b *testing.B) {
	_, v2, _ := benchCampaign(b)
	b.SetBytes(int64(len(v2)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadCampaign(bytes.NewReader(v2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignLoadV1(b *testing.B) {
	_, _, v1 := benchCampaign(b)
	b.SetBytes(int64(len(v1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadCampaign(bytes.NewReader(v1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignStream measures the set-at-a-time path every streaming
// consumer uses: decode one set, drop it, move on — peak live memory is
// one set regardless of campaign size.
func BenchmarkCampaignStream(b *testing.B) {
	_, v2, _ := benchCampaign(b)
	b.SetBytes(int64(len(v2)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenCampaign(bytes.NewReader(v2))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := r.NextSet(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCampaignInspect measures the decode-free verification path:
// header parse plus CRC sweep of every set payload.
func BenchmarkCampaignInspect(b *testing.B) {
	_, v2, _ := benchCampaign(b)
	b.SetBytes(int64(len(v2)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenCampaign(bytes.NewReader(v2))
		if err != nil {
			b.Fatal(err)
		}
		infos, err := r.Inspect()
		if err != nil {
			b.Fatal(err)
		}
		for _, si := range infos {
			if !si.CRCOK {
				b.Fatal("checksum mismatch")
			}
		}
	}
}

func TestWriterRejectsDuplicateIndex(t *testing.T) {
	cfg := smallConfig()
	cfg.Sets, cfg.PacketsPerSet = 2, 2
	cfg.RenderImages = false
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, c.Cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSet(&c.Sets[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSet(&c.Sets[0]); err == nil {
		t.Fatal("duplicate set index accepted")
	}
}

func TestV2RejectsNaNCIR(t *testing.T) {
	cfg := smallConfig()
	cfg.Sets, cfg.PacketsPerSet = 1, 2
	cfg.RenderImages = false
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Sets[0].Packets[1].Perfect[0] = complex(math.NaN(), 0)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_, err = LoadCampaign(&buf)
	if err == nil || !strings.Contains(err.Error(), "NaN") {
		t.Fatalf("expected NaN rejection, got %v", err)
	}
}

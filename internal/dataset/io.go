package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"vvd/internal/room"
)

// campaignMagic identifies the on-disk campaign format ("VVDC" + version).
const campaignMagic = 0x56564443

// Save writes the campaign (configuration, per-packet estimates and depth
// images) in a compact little-endian binary format — the repository's
// equivalent of the paper's published trace.
func (c *Campaign) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	wU32 := func(v uint32) error { return binary.Write(bw, le, v) }
	wF64 := func(v float64) error { return binary.Write(bw, le, v) }
	if err := wU32(campaignMagic); err != nil {
		return err
	}
	hdr := []uint32{
		uint32(c.Cfg.Sets), uint32(c.Cfg.PacketsPerSet), uint32(c.Cfg.PSDULen),
		uint32(c.Cfg.Seed), uint32(c.Cfg.Seed >> 32), boolU32(c.Cfg.RenderImages), boolU32(c.Cfg.Scripted),
	}
	for _, v := range hdr {
		if err := wU32(v); err != nil {
			return err
		}
	}
	for _, v := range []float64{
		c.Cfg.Imp.SNRdB, c.Cfg.Imp.PhaseStdDev, c.Cfg.Imp.CFOStdDevHz,
		c.Cfg.Mobility.SpeedMin, c.Cfg.Mobility.SpeedMax, c.Cfg.Mobility.PauseTime,
	} {
		if err := wF64(v); err != nil {
			return err
		}
	}
	writeCVec := func(v []complex128) error {
		if err := wU32(uint32(len(v))); err != nil {
			return err
		}
		for _, x := range v {
			if err := wF64(real(x)); err != nil {
				return err
			}
			if err := wF64(imag(x)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, set := range c.Sets {
		for _, p := range set.Packets {
			if err := wU32(uint32(p.Index)); err != nil {
				return err
			}
			if err := wF64(p.Time); err != nil {
				return err
			}
			if err := wU32(uint32(p.SeqNum)); err != nil {
				return err
			}
			for _, v := range []float64{p.Pos.X, p.Pos.Y, p.Pos.Z, p.SyncPeak} {
				if err := wF64(v); err != nil {
					return err
				}
			}
			if err := binary.Write(bw, le, p.LinkSeed); err != nil {
				return err
			}
			if err := wU32(boolU32(p.PreambleDetected)); err != nil {
				return err
			}
			for _, vec := range [][]complex128{p.TrueCIR, p.Perfect, p.PerfectAligned, p.PreambleEst} {
				if err := writeCVec(vec); err != nil {
					return err
				}
			}
			for lag := ImageLag(0); lag < numLags; lag++ {
				img := p.Images[lag]
				if err := wU32(uint32(len(img))); err != nil {
					return err
				}
				if len(img) > 0 {
					if err := binary.Write(bw, le, img); err != nil {
						return err
					}
				}
			}
		}
	}
	return bw.Flush()
}

func boolU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// LoadCampaign reads a campaign written by Save, rebuilding the simulation
// objects from the stored configuration.
func LoadCampaign(r io.Reader) (*Campaign, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	rU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, le, &v)
		return v, err
	}
	rF64 := func() (float64, error) {
		var v float64
		err := binary.Read(br, le, &v)
		return v, err
	}
	magic, err := rU32()
	if err != nil {
		return nil, err
	}
	if magic != campaignMagic {
		return nil, errors.New("dataset: bad campaign magic")
	}
	var hdr [7]uint32
	for i := range hdr {
		if hdr[i], err = rU32(); err != nil {
			return nil, err
		}
	}
	cfg := Config{
		Sets:          int(hdr[0]),
		PacketsPerSet: int(hdr[1]),
		PSDULen:       int(hdr[2]),
		Seed:          uint64(hdr[3]) | uint64(hdr[4])<<32,
		RenderImages:  hdr[5] != 0,
		Scripted:      hdr[6] != 0,
	}
	if cfg.Sets <= 0 || cfg.Sets > 1024 || cfg.PacketsPerSet <= 0 || cfg.PacketsPerSet > 1_000_000 {
		return nil, fmt.Errorf("dataset: implausible campaign header %dx%d", cfg.Sets, cfg.PacketsPerSet)
	}
	flts := make([]float64, 6)
	for i := range flts {
		if flts[i], err = rF64(); err != nil {
			return nil, err
		}
	}
	cfg.Imp.SNRdB, cfg.Imp.PhaseStdDev, cfg.Imp.CFOStdDevHz = flts[0], flts[1], flts[2]
	cfg.Mobility.SpeedMin, cfg.Mobility.SpeedMax, cfg.Mobility.PauseTime = flts[3], flts[4], flts[5]

	// Rebuild the simulation environment exactly as Generate does, but fill
	// packets from the stream instead of simulating.
	mob := cfg.Mobility
	if mob.SpeedMax <= 0 {
		mob = room.DefaultMobility()
	}
	shell, err := Generate(Config{
		Sets: 1, PacketsPerSet: 1, PSDULen: cfg.PSDULen, Seed: cfg.Seed,
		Imp: cfg.Imp, Mobility: mob,
	})
	if err != nil {
		return nil, err
	}
	c := &Campaign{
		Cfg:      cfg,
		Room:     shell.Room,
		Geometry: shell.Geometry,
		Model:    shell.Model,
		Receiver: shell.Receiver,
		Camera:   shell.Camera,
		RefCIR:   shell.RefCIR,
	}

	readCVec := func() ([]complex128, error) {
		n, err := rU32()
		if err != nil {
			return nil, err
		}
		if n > 4096 {
			return nil, errors.New("dataset: implausible CIR length")
		}
		out := make([]complex128, n)
		for i := range out {
			re, err := rF64()
			if err != nil {
				return nil, err
			}
			im, err := rF64()
			if err != nil {
				return nil, err
			}
			if math.IsNaN(re) || math.IsNaN(im) {
				return nil, errors.New("dataset: NaN in stored CIR")
			}
			out[i] = complex(re, im)
		}
		return out, nil
	}

	for s := 0; s < cfg.Sets; s++ {
		set := Set{Index: s + 1, Packets: make([]Packet, cfg.PacketsPerSet)}
		for k := 0; k < cfg.PacketsPerSet; k++ {
			var p Packet
			idx, err := rU32()
			if err != nil {
				return nil, err
			}
			p.Index = int(idx)
			if p.Time, err = rF64(); err != nil {
				return nil, err
			}
			seq, err := rU32()
			if err != nil {
				return nil, err
			}
			p.SeqNum = byte(seq)
			var pos [4]float64
			for i := range pos {
				if pos[i], err = rF64(); err != nil {
					return nil, err
				}
			}
			p.Pos.X, p.Pos.Y, p.Pos.Z, p.SyncPeak = pos[0], pos[1], pos[2], pos[3]
			if err := binary.Read(br, le, &p.LinkSeed); err != nil {
				return nil, err
			}
			det, err := rU32()
			if err != nil {
				return nil, err
			}
			p.PreambleDetected = det != 0
			if p.TrueCIR, err = readCVec(); err != nil {
				return nil, err
			}
			if p.Perfect, err = readCVec(); err != nil {
				return nil, err
			}
			if p.PerfectAligned, err = readCVec(); err != nil {
				return nil, err
			}
			if p.PreambleEst, err = readCVec(); err != nil {
				return nil, err
			}
			for lag := ImageLag(0); lag < numLags; lag++ {
				n, err := rU32()
				if err != nil {
					return nil, err
				}
				if n == 0 {
					continue
				}
				if n > 10_000_000 {
					return nil, errors.New("dataset: implausible image size")
				}
				img := make([]float32, n)
				if err := binary.Read(br, le, img); err != nil {
					return nil, err
				}
				p.Images[lag] = img
			}
			set.Packets[k] = p
		}
		c.Sets = append(c.Sets, set)
	}
	return c, nil
}

// Campaign persistence. The current on-disk format is v2 (stream.go): a
// versioned, checksummed, streaming store whose header carries the complete
// Config. The original unversioned v1 format remains readable through the
// magic switch below; saveV1/loadCampaignV1 in this file are the frozen v1
// codec, kept for the committed golden fixture and old campaign files.
//
// Compatibility policy: Save always writes the newest format; LoadCampaign
// reads every format ever shipped. v1 predates the HumanScatterGain config
// field, so v1 files of nonzero-scatter-gain campaigns cannot be rebuilt
// faithfully — v2 serializes the complete Config by construction.

package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"vvd/internal/room"
)

// campaignMagicV1 identifies the legacy v1 campaign format ("VVDC",
// unversioned, no checksums, whole-campaign decode only).
const campaignMagicV1 = 0x56564443

// Save writes the campaign in the current (v2) on-disk format — the
// repository's equivalent of the paper's published trace. See stream.go
// for the layout and NewWriter for set-at-a-time streaming writes.
func (c *Campaign) Save(w io.Writer) error {
	sw, err := NewWriter(w, c.Cfg, len(c.Sets))
	if err != nil {
		return err
	}
	for i := range c.Sets {
		if err := sw.WriteSet(&c.Sets[i]); err != nil {
			return err
		}
	}
	return sw.Close()
}

// LoadCampaign reads a campaign written by any Save version, rebuilding the
// simulation objects from the stored configuration. It materializes every
// set; use OpenCampaign to stream set-at-a-time instead.
func LoadCampaign(r io.Reader) (*Campaign, error) {
	cr, err := OpenCampaign(r)
	if err != nil {
		return nil, err
	}
	return cr.ReadSets(nil)
}

// rebuildShell reconstructs the simulation environment for a loaded
// campaign from its stored configuration — including the Scripted flag and
// HumanScatterGain override, both of which the original loader dropped
// (reloaded campaigns regenerated different receptions than the saved
// ones). Legacy files with an unset mobility fall back to the default walk.
func rebuildShell(cfg Config) (*Campaign, error) {
	if !cfg.Scripted && cfg.Mobility.SpeedMax <= 0 {
		cfg.Mobility = room.DefaultMobility()
	}
	return NewShell(cfg)
}

// ---------------------------------------------------------------------------
// v1 codec (frozen)

// saveV1 writes the legacy v1 format. It exists only so tests and
// benchmarks can produce v1 streams (and regenerate the golden fixture);
// production saves always use the v2 Writer.
func saveV1(c *Campaign, w io.Writer) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	wU32 := func(v uint32) error { return binary.Write(bw, le, v) }
	wF64 := func(v float64) error { return binary.Write(bw, le, v) }
	if err := wU32(campaignMagicV1); err != nil {
		return err
	}
	hdr := []uint32{
		uint32(c.Cfg.Sets), uint32(c.Cfg.PacketsPerSet), uint32(c.Cfg.PSDULen),
		uint32(c.Cfg.Seed), uint32(c.Cfg.Seed >> 32), boolU32(c.Cfg.RenderImages), boolU32(c.Cfg.Scripted),
	}
	for _, v := range hdr {
		if err := wU32(v); err != nil {
			return err
		}
	}
	for _, v := range []float64{
		c.Cfg.Imp.SNRdB, c.Cfg.Imp.PhaseStdDev, c.Cfg.Imp.CFOStdDevHz,
		c.Cfg.Mobility.SpeedMin, c.Cfg.Mobility.SpeedMax, c.Cfg.Mobility.PauseTime,
	} {
		if err := wF64(v); err != nil {
			return err
		}
	}
	writeCVec := func(v []complex128) error {
		if err := wU32(uint32(len(v))); err != nil {
			return err
		}
		for _, x := range v {
			if err := wF64(real(x)); err != nil {
				return err
			}
			if err := wF64(imag(x)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, set := range c.Sets {
		for _, p := range set.Packets {
			if err := wU32(uint32(p.Index)); err != nil {
				return err
			}
			if err := wF64(p.Time); err != nil {
				return err
			}
			if err := wU32(uint32(p.SeqNum)); err != nil {
				return err
			}
			for _, v := range []float64{p.Pos.X, p.Pos.Y, p.Pos.Z, p.SyncPeak} {
				if err := wF64(v); err != nil {
					return err
				}
			}
			if err := binary.Write(bw, le, p.LinkSeed); err != nil {
				return err
			}
			if err := wU32(boolU32(p.PreambleDetected)); err != nil {
				return err
			}
			for _, vec := range [][]complex128{p.TrueCIR, p.Perfect, p.PerfectAligned, p.PreambleEst} {
				if err := writeCVec(vec); err != nil {
					return err
				}
			}
			for lag := ImageLag(0); lag < numLags; lag++ {
				img := p.Images[lag]
				if err := wU32(uint32(len(img))); err != nil {
					return err
				}
				if len(img) > 0 {
					if err := binary.Write(bw, le, img); err != nil {
						return err
					}
				}
			}
		}
	}
	return bw.Flush()
}

func boolU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// loadCampaignV1 decodes the legacy v1 body (the magic word has already
// been consumed by OpenCampaign).
func loadCampaignV1(br *bufio.Reader) (*Campaign, error) {
	le := binary.LittleEndian
	rU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, le, &v)
		return v, err
	}
	rF64 := func() (float64, error) {
		var v float64
		err := binary.Read(br, le, &v)
		return v, err
	}
	var hdr [7]uint32
	var err error
	for i := range hdr {
		if hdr[i], err = rU32(); err != nil {
			return nil, err
		}
	}
	cfg := Config{
		Sets:          int(hdr[0]),
		PacketsPerSet: int(hdr[1]),
		PSDULen:       int(hdr[2]),
		Seed:          uint64(hdr[3]) | uint64(hdr[4])<<32,
		RenderImages:  hdr[5] != 0,
		Scripted:      hdr[6] != 0,
	}
	if cfg.Sets <= 0 || cfg.Sets > 1024 || cfg.PacketsPerSet <= 0 || cfg.PacketsPerSet > 1_000_000 {
		return nil, fmt.Errorf("dataset: implausible campaign header %dx%d", cfg.Sets, cfg.PacketsPerSet)
	}
	flts := make([]float64, 6)
	for i := range flts {
		if flts[i], err = rF64(); err != nil {
			return nil, err
		}
	}
	cfg.Imp.SNRdB, cfg.Imp.PhaseStdDev, cfg.Imp.CFOStdDevHz = flts[0], flts[1], flts[2]
	cfg.Mobility.SpeedMin, cfg.Mobility.SpeedMax, cfg.Mobility.PauseTime = flts[3], flts[4], flts[5]

	c, err := rebuildShell(cfg)
	if err != nil {
		return nil, err
	}

	readCVec := func() ([]complex128, error) {
		n, err := rU32()
		if err != nil {
			return nil, err
		}
		if n > maxCIRLen {
			return nil, errors.New("dataset: implausible CIR length")
		}
		out := make([]complex128, n)
		for i := range out {
			re, err := rF64()
			if err != nil {
				return nil, err
			}
			im, err := rF64()
			if err != nil {
				return nil, err
			}
			if math.IsNaN(re) || math.IsNaN(im) {
				return nil, errors.New("dataset: NaN in stored CIR")
			}
			out[i] = complex(re, im)
		}
		return out, nil
	}

	for s := 0; s < cfg.Sets; s++ {
		set := Set{Index: s + 1, Packets: make([]Packet, cfg.PacketsPerSet)}
		for k := 0; k < cfg.PacketsPerSet; k++ {
			var p Packet
			idx, err := rU32()
			if err != nil {
				return nil, err
			}
			p.Index = int(idx)
			if p.Time, err = rF64(); err != nil {
				return nil, err
			}
			seq, err := rU32()
			if err != nil {
				return nil, err
			}
			p.SeqNum = byte(seq)
			var pos [4]float64
			for i := range pos {
				if pos[i], err = rF64(); err != nil {
					return nil, err
				}
			}
			p.Pos.X, p.Pos.Y, p.Pos.Z, p.SyncPeak = pos[0], pos[1], pos[2], pos[3]
			if err := binary.Read(br, le, &p.LinkSeed); err != nil {
				return nil, err
			}
			det, err := rU32()
			if err != nil {
				return nil, err
			}
			p.PreambleDetected = det != 0
			if p.TrueCIR, err = readCVec(); err != nil {
				return nil, err
			}
			if p.Perfect, err = readCVec(); err != nil {
				return nil, err
			}
			if p.PerfectAligned, err = readCVec(); err != nil {
				return nil, err
			}
			if p.PreambleEst, err = readCVec(); err != nil {
				return nil, err
			}
			for lag := ImageLag(0); lag < numLags; lag++ {
				n, err := rU32()
				if err != nil {
					return nil, err
				}
				if n == 0 {
					continue
				}
				if n > maxImagePixels {
					return nil, errors.New("dataset: implausible image size")
				}
				img := make([]float32, n)
				if err := binary.Read(br, le, img); err != nil {
					return nil, err
				}
				p.Images[lag] = img
			}
			set.Packets[k] = p
		}
		c.Sets = append(c.Sets, set)
	}
	return c, nil
}

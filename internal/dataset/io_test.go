package dataset

import (
	"bytes"
	"testing"
)

func TestCampaignSaveLoadRoundTrip(t *testing.T) {
	orig, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCampaign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg.Sets != orig.Cfg.Sets || loaded.Cfg.PSDULen != orig.Cfg.PSDULen {
		t.Fatalf("config mismatch: %+v", loaded.Cfg)
	}
	if len(loaded.Sets) != len(orig.Sets) {
		t.Fatalf("sets = %d", len(loaded.Sets))
	}
	for si := range orig.Sets {
		for ki := range orig.Sets[si].Packets {
			a := orig.Sets[si].Packets[ki]
			b := loaded.Sets[si].Packets[ki]
			if a.Pos != b.Pos || a.SeqNum != b.SeqNum || a.LinkSeed != b.LinkSeed ||
				a.PreambleDetected != b.PreambleDetected {
				t.Fatalf("packet %d/%d metadata mismatch", si, ki)
			}
			for i := range a.Perfect {
				if a.Perfect[i] != b.Perfect[i] || a.PerfectAligned[i] != b.PerfectAligned[i] { //vvdlint:bitexact -- store round-trip and regeneration are bit-identical by format contract
					t.Fatalf("packet %d/%d estimates mismatch", si, ki)
				}
			}
			for lag := ImageLag(0); lag < numLags; lag++ {
				if len(a.Images[lag]) != len(b.Images[lag]) {
					t.Fatalf("packet %d/%d image lag %d length mismatch", si, ki, lag)
				}
				for i := range a.Images[lag] {
					if a.Images[lag][i] != b.Images[lag][i] { //vvdlint:bitexact -- store round-trip and regeneration are bit-identical by format contract
						t.Fatalf("packet %d/%d image pixel mismatch", si, ki)
					}
				}
			}
		}
	}
	// The loaded campaign must regenerate identical receptions.
	_, _, _, recA, err := orig.Reception(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, recB, err := loaded.Reception(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recA.Waveform {
		if recA.Waveform[i] != recB.Waveform[i] { //vvdlint:bitexact -- store round-trip and regeneration are bit-identical by format contract
			t.Fatal("loaded campaign regenerates different waveforms")
		}
	}
}

func TestCampaignSaveLoadWithoutImages(t *testing.T) {
	cfg := smallConfig()
	cfg.RenderImages = false
	orig, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCampaign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Sets[0].Packets[0].Images[LagCurrent] != nil {
		t.Fatal("images materialized from nothing")
	}
}

func TestLoadCampaignGarbage(t *testing.T) {
	if _, err := LoadCampaign(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadCampaign(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("zero blob accepted")
	}
}

func TestLoadCampaignTruncated(t *testing.T) {
	orig, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := LoadCampaign(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated campaign accepted")
	}
}

package dataset

import "fmt"

// Combination is one train/validation/test partition of the measurement
// sets (paper Table 2). Set ids are 1-based.
type Combination struct {
	Number   int
	Training []int
	Val      int
	Test     int
}

// Combinations reproduces the paper's Table 2 exactly: fifteen
// leave-sets-out partitions giving every measurement set one turn as the
// test set (cross-validation over takes).
var Combinations = []Combination{
	{1, []int{1, 2, 3, 4, 5, 7, 9, 10, 11, 12, 13, 14, 15}, 6, 8},
	{2, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 14}, 11, 15},
	{3, []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 15}, 14, 9},
	{4, []int{1, 3, 4, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, 5, 2},
	{5, []int{1, 2, 3, 5, 6, 7, 8, 9, 10, 11, 13, 14, 15}, 12, 4},
	{6, []int{2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 14, 15}, 10, 1},
	{7, []int{1, 2, 3, 4, 5, 7, 8, 10, 11, 12, 13, 14, 15}, 9, 6},
	{8, []int{1, 2, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14, 15}, 13, 3},
	{9, []int{1, 2, 3, 4, 6, 7, 9, 10, 11, 12, 13, 14, 15}, 8, 5},
	{10, []int{1, 2, 3, 5, 6, 8, 9, 10, 11, 12, 13, 14, 15}, 4, 7},
	{11, []int{1, 2, 4, 5, 6, 7, 8, 9, 11, 12, 13, 14, 15}, 3, 10},
	{12, []int{1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 13, 14, 15}, 7, 11},
	{13, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 14, 15}, 13, 12},
	{14, []int{1, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14, 15}, 2, 13},
	{15, []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15}, 1, 14},
}

// CombinationsFor adapts Table 2 to a campaign with the given number of
// sets. A full 15-set campaign uses the paper's combinations verbatim;
// smaller campaigns synthesize the same leave-sets-out rotation (test set i,
// validation set i+1 cyclically, all remaining sets for training). Returns
// at most max entries (0 = all).
func CombinationsFor(sets, max int) []Combination {
	var out []Combination
	if sets >= len(Combinations) {
		out = append(out, Combinations...)
	} else {
		if sets < 3 {
			return nil // need at least train + val + test
		}
		for i := 1; i <= sets; i++ {
			val := i%sets + 1
			var train []int
			for s := 1; s <= sets; s++ {
				if s != i && s != val {
					train = append(train, s)
				}
			}
			out = append(out, Combination{Number: i, Training: train, Val: val, Test: i})
		}
	}
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Validate checks a combination against a campaign.
func (cb Combination) Validate(c *Campaign) error {
	check := func(id int) error {
		if id < 1 || id > len(c.Sets) {
			return fmt.Errorf("dataset: combination %d references set %d, campaign has %d",
				cb.Number, id, len(c.Sets))
		}
		return nil
	}
	for _, s := range cb.Training {
		if err := check(s); err != nil {
			return err
		}
		if s == cb.Val || s == cb.Test {
			return fmt.Errorf("dataset: combination %d reuses set %d across partitions", cb.Number, s)
		}
	}
	if err := check(cb.Val); err != nil {
		return err
	}
	if err := check(cb.Test); err != nil {
		return err
	}
	if cb.Val == cb.Test {
		return fmt.Errorf("dataset: combination %d has val == test", cb.Number)
	}
	return nil
}

// TrainingPackets returns the packets of all training sets, in set order.
func (c *Campaign) TrainingPackets(cb Combination) []*Packet {
	var out []*Packet
	for _, id := range cb.Training {
		set := &c.Sets[id-1]
		for i := range set.Packets {
			out = append(out, &set.Packets[i])
		}
	}
	return out
}

// ValPackets returns the validation set packets.
func (c *Campaign) ValPackets(cb Combination) []*Packet {
	set := &c.Sets[cb.Val-1]
	out := make([]*Packet, len(set.Packets))
	for i := range set.Packets {
		out[i] = &set.Packets[i]
	}
	return out
}

// TestPackets returns the test set packets in time order.
func (c *Campaign) TestPackets(cb Combination) []*Packet {
	set := &c.Sets[cb.Test-1]
	out := make([]*Packet, len(set.Packets))
	for i := range set.Packets {
		out[i] = &set.Packets[i]
	}
	return out
}

// NormalizationFactor returns the max |CIR| element over the training
// packets' aligned perfect estimates — the paper's output normalization
// (divide by the maximum absolute CIR value of the training partition).
func (c *Campaign) NormalizationFactor(cb Combination) float64 {
	var max float64
	for _, p := range c.TrainingPackets(cb) {
		for _, v := range p.PerfectAligned {
			if m := abs(real(v)); m > max {
				max = m
			}
			if m := abs(imag(v)); m > max {
				max = m
			}
		}
	}
	if max == 0 {
		return 1
	}
	return max
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

package dataset

import (
	"math/cmplx"
	"testing"

	"vvd/internal/estimate"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Sets = 3
	cfg.PacketsPerSet = 8
	cfg.PSDULen = 24
	cfg.RenderImages = true
	return cfg
}

func genSmall(t *testing.T) *Campaign {
	t.Helper()
	c, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateShape(t *testing.T) {
	c := genSmall(t)
	if len(c.Sets) != 3 {
		t.Fatalf("sets = %d", len(c.Sets))
	}
	for si, s := range c.Sets {
		if s.Index != si+1 {
			t.Fatalf("set %d has index %d", si, s.Index)
		}
		if len(s.Packets) != 8 {
			t.Fatalf("set %d has %d packets", si, len(s.Packets))
		}
		for ki, p := range s.Packets {
			if len(p.TrueCIR) != c.Model.Taps || len(p.Perfect) != c.Model.Taps {
				t.Fatalf("packet %d/%d estimate lengths wrong", si, ki)
			}
			if len(p.Images[LagCurrent]) != ImagePixels {
				t.Fatalf("packet %d/%d image size %d", si, ki, len(p.Images[LagCurrent]))
			}
			if !c.Room.MovementArea.Contains(p.Pos.X, p.Pos.Y) {
				t.Fatalf("packet %d/%d position outside movement area", si, ki)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	bad := smallConfig()
	bad.Sets = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("zero sets accepted")
	}
	bad = smallConfig()
	bad.PSDULen = 2
	if _, err := Generate(bad); err == nil {
		t.Fatal("tiny PSDU accepted")
	}
	bad = smallConfig()
	bad.PSDULen = 500
	if _, err := Generate(bad); err == nil {
		t.Fatal("oversize PSDU accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Sets[1].Packets[3], b.Sets[1].Packets[3]
	if pa.Pos != pb.Pos {
		t.Fatal("positions differ across identical generations")
	}
	for i := range pa.Perfect {
		if pa.Perfect[i] != pb.Perfect[i] { //vvdlint:bitexact -- store round-trip and regeneration are bit-identical by format contract
			t.Fatal("estimates differ across identical generations")
		}
	}
}

func TestSetsDiffer(t *testing.T) {
	c := genSmall(t)
	if c.Sets[0].Packets[5].Pos == c.Sets[1].Packets[5].Pos {
		t.Fatal("independent sets share trajectories")
	}
}

func TestReceptionReproducible(t *testing.T) {
	c := genSmall(t)
	_, _, _, rec1, err := c.Reception(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, rec2, err := c.Reception(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec1.Waveform) != len(rec2.Waveform) {
		t.Fatal("regenerated lengths differ")
	}
	for i := range rec1.Waveform {
		if rec1.Waveform[i] != rec2.Waveform[i] { //vvdlint:bitexact -- store round-trip and regeneration are bit-identical by format contract
			t.Fatal("regenerated waveform differs")
		}
	}
	// The regenerated CIR must equal the stored one.
	pkt := c.Sets[1].Packets[4]
	for i := range pkt.TrueCIR {
		if rec1.TrueCIR[i] != pkt.TrueCIR[i] { //vvdlint:bitexact -- store round-trip and regeneration are bit-identical by format contract
			t.Fatal("regenerated CIR differs from stored")
		}
	}
}

func TestReceptionMatchesStoredEstimate(t *testing.T) {
	// Recomputing the ground-truth estimate from the regenerated waveform
	// must reproduce the stored Perfect estimate.
	c := genSmall(t)
	_, txWave, _, rec, err := c.Reception(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	rxc, _ := c.Receiver.CorrectCFO(rec.Waveform)
	perfect, err := c.Receiver.EstimateGroundTruth(rxc, txWave)
	if err != nil {
		t.Fatal(err)
	}
	stored := c.Sets[0].Packets[2].Perfect
	for i := range stored {
		if cmplx.Abs(perfect[i]-stored[i]) > 1e-12 {
			t.Fatal("recomputed estimate differs from stored")
		}
	}
}

func TestReceptionOutOfRange(t *testing.T) {
	c := genSmall(t)
	if _, _, _, _, err := c.Reception(9, 0); err == nil {
		t.Fatal("bad set accepted")
	}
	if _, _, _, _, err := c.Reception(1, 99); err == nil {
		t.Fatal("bad packet accepted")
	}
}

func TestPerfectAlignedPhase(t *testing.T) {
	// After alignment, the mean phase shift to the reference must be ~0.
	c := genSmall(t)
	for _, p := range c.Sets[0].Packets {
		theta := estimate.MeanPhaseShift(p.PerfectAligned, c.RefCIR)
		if theta > 1e-6 || theta < -1e-6 {
			t.Fatalf("aligned estimate has residual phase %v", theta)
		}
	}
}

func TestImagesVaryWithLag(t *testing.T) {
	c := genSmall(t)
	// At least some packets should show the human moving between the
	// 100 ms-earlier frame and the current frame.
	moved := 0
	for _, s := range c.Sets {
		for _, p := range s.Packets {
			for i := range p.Images[LagCurrent] {
				if p.Images[LagCurrent][i] != p.Images[Lag100ms][i] { //vvdlint:bitexact -- store round-trip and regeneration are bit-identical by format contract
					moved++
					break
				}
			}
		}
	}
	if moved == 0 {
		t.Fatal("no packet shows motion between lagged frames")
	}
}

func TestRenderImagesOff(t *testing.T) {
	cfg := smallConfig()
	cfg.RenderImages = false
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sets[0].Packets[0].Images[LagCurrent] != nil {
		t.Fatal("images rendered despite RenderImages=false")
	}
}

func TestTable2Combinations(t *testing.T) {
	if len(Combinations) != 15 {
		t.Fatalf("combinations = %d want 15", len(Combinations))
	}
	testSeen := map[int]bool{}
	for _, cb := range Combinations {
		if len(cb.Training) != 13 {
			t.Fatalf("combination %d has %d training sets, want 13", cb.Number, len(cb.Training))
		}
		if testSeen[cb.Test] {
			t.Fatalf("test set %d reused", cb.Test)
		}
		testSeen[cb.Test] = true
		seen := map[int]bool{cb.Val: true, cb.Test: true}
		for _, s := range cb.Training {
			if seen[s] {
				t.Fatalf("combination %d: set %d appears twice", cb.Number, s)
			}
			seen[s] = true
		}
		// Combination 13 is the paper's quirk: val=13, test=12, and set 13
		// also appears nowhere else; all others must cover all 15 sets.
		if cb.Number != 13 && len(seen) != 15 {
			t.Fatalf("combination %d covers %d sets", cb.Number, len(seen))
		}
	}
	// Every set 1..15 serves as a test set exactly once.
	for s := 1; s <= 15; s++ {
		if !testSeen[s] {
			t.Fatalf("set %d never used as test", s)
		}
	}
}

func TestCombinationsForScaling(t *testing.T) {
	combos := CombinationsFor(3, 0)
	if len(combos) != 3 {
		t.Fatalf("3-set campaign should synthesize 3 combinations, got %d", len(combos))
	}
	testSeen := map[int]bool{}
	for _, cb := range combos {
		if cb.Val > 3 || cb.Test > 3 || cb.Val == cb.Test {
			t.Fatalf("combination %d references missing or overlapping sets", cb.Number)
		}
		if len(cb.Training) != 1 {
			t.Fatalf("combination %d has %d training sets, want 1", cb.Number, len(cb.Training))
		}
		if cb.Training[0] == cb.Val || cb.Training[0] == cb.Test {
			t.Fatalf("combination %d training overlaps val/test", cb.Number)
		}
		testSeen[cb.Test] = true
	}
	if len(testSeen) != 3 {
		t.Fatal("synthesized combinations must rotate the test set")
	}
	if CombinationsFor(2, 0) != nil {
		t.Fatal("2-set campaign cannot form a combination")
	}
	if len(CombinationsFor(15, 4)) != 4 {
		t.Fatal("max limit not applied")
	}
	if len(CombinationsFor(15, 0)) != 15 {
		t.Fatal("full campaign should keep all 15 combinations")
	}
	if len(CombinationsFor(20, 0)) != 15 {
		t.Fatal("oversized campaign should still use Table 2")
	}
}

func TestCombinationValidate(t *testing.T) {
	c := genSmall(t)
	good := Combination{Number: 99, Training: []int{1}, Val: 2, Test: 3}
	if err := good.Validate(c); err != nil {
		t.Fatal(err)
	}
	bad := Combination{Number: 99, Training: []int{1}, Val: 2, Test: 9}
	if err := bad.Validate(c); err == nil {
		t.Fatal("missing test set accepted")
	}
	bad = Combination{Number: 99, Training: []int{2}, Val: 2, Test: 3}
	if err := bad.Validate(c); err == nil {
		t.Fatal("overlapping partitions accepted")
	}
	bad = Combination{Number: 99, Training: []int{1}, Val: 3, Test: 3}
	if err := bad.Validate(c); err == nil {
		t.Fatal("val == test accepted")
	}
}

func TestPartitionAccessors(t *testing.T) {
	c := genSmall(t)
	cb := Combination{Number: 1, Training: []int{1, 2}, Val: 3, Test: 2}
	if got := len(c.TrainingPackets(cb)); got != 16 {
		t.Fatalf("training packets = %d want 16", got)
	}
	if got := len(c.ValPackets(cb)); got != 8 {
		t.Fatalf("val packets = %d want 8", got)
	}
	if got := len(c.TestPackets(cb)); got != 8 {
		t.Fatalf("test packets = %d want 8", got)
	}
}

func TestNormalizationFactor(t *testing.T) {
	c := genSmall(t)
	cb := Combination{Number: 1, Training: []int{1, 2}, Val: 3, Test: 3}
	norm := c.NormalizationFactor(cb)
	if norm <= 0 {
		t.Fatalf("norm = %v", norm)
	}
	// Every normalized training component must be within [−1, 1].
	for _, p := range c.TrainingPackets(cb) {
		for _, v := range p.PerfectAligned {
			if abs(real(v))/norm > 1+1e-12 || abs(imag(v))/norm > 1+1e-12 {
				t.Fatal("normalization does not bound training targets")
			}
		}
	}
}

func TestSetAccessor(t *testing.T) {
	c := genSmall(t)
	s, err := c.Set(2)
	if err != nil || s.Index != 2 {
		t.Fatalf("Set(2) = %v, %v", s, err)
	}
	if _, err := c.Set(0); err == nil {
		t.Fatal("Set(0) accepted")
	}
	if _, err := c.Set(4); err == nil {
		t.Fatal("Set(4) accepted")
	}
}

func TestPreambleDetectionMostlySucceeds(t *testing.T) {
	c := genSmall(t)
	detected, total := 0, 0
	for _, s := range c.Sets {
		for _, p := range s.Packets {
			if p.PreambleDetected {
				detected++
			}
			total++
		}
	}
	if detected < total/2 {
		t.Fatalf("only %d/%d preambles detected — threshold miscalibrated", detected, total)
	}
}

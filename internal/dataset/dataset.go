// Package dataset generates and organizes the measurement campaign the
// paper collected on its testbed: 15 measurement sets ("takes") of packets
// transmitted every 100 ms while people walk through the room (the paper's
// single human, a collision-avoiding crowd, or nobody — see
// Config.Occupants and internal/scenario), each packet synchronized (LED
// blink) with the depth-camera frame stream, plus the Table 2
// train/validation/test set combinations and the CIR normalization used
// for the ML targets.
//
// Waveforms are not stored: every packet records the RNG seed of its link
// realization, so receptions can be regenerated bit-exactly on demand.
package dataset

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"vvd/internal/camera"
	"vvd/internal/channel"
	"vvd/internal/dsp"
	"vvd/internal/estimate"
	"vvd/internal/phy"
	"vvd/internal/room"
)

// PacketInterval is the transmit period (paper: one packet each 100 ms).
const PacketInterval = 0.1

// ImageLag enumerates the depth-image inputs stored per packet: the
// LED-synchronized current frame plus the frames one and three frame
// periods earlier (inputs of the VVD-33.3ms-Future and VVD-100ms-Future
// variants).
type ImageLag int

// Image lags.
const (
	LagCurrent ImageLag = iota // frame synchronized with the packet
	Lag33ms                    // one frame earlier (≈33.3 ms)
	Lag100ms                   // three frames earlier (≈100 ms)
	numLags
)

// Config parameterizes campaign generation.
type Config struct {
	Sets          int    // number of measurement takes (paper: 15)
	PacketsPerSet int    // packets per take
	PSDULen       int    // PSDU size in bytes (paper: 127)
	Seed          uint64 // master seed
	RenderImages  bool   // render depth images (needed for VVD)
	Imp           channel.Impairments
	Mobility      room.MobilityConfig
	// Scripted replaces the random-waypoint walk with the deterministic
	// diagonal path that repeatedly crosses the TX–RX line — used by the
	// burst-error timeline experiment (paper Fig. 15).
	Scripted bool
	// HumanScatterGain overrides the geometry's human re-radiation
	// efficiency when non-zero (how strongly the person's body itself
	// contributes a moving multipath component).
	HumanScatterGain float64
	// Scenario names the registered preset this configuration was derived
	// from (internal/scenario), purely as provenance: the fields above carry
	// everything generation needs, so the label round-trips through the
	// store header and survives into reports without being re-resolved.
	Scenario string `json:",omitempty"`
	// Occupants is the number of people walking the room: 0 keeps the
	// paper's single human (the zero value of every pre-scenario campaign),
	// N > 1 puts N collision-avoiding walkers in the movement area, and -1
	// empties the room entirely (static channel, background-only frames).
	// With Scripted set, occupant 0 follows the deterministic diagonal and
	// the remaining occupants walk randomly around it.
	Occupants int `json:",omitempty"`
	// RoomWidth/RoomDepth/RoomHeight override the laboratory dimensions in
	// metres. All three zero (the pre-geometry zero value) keeps the
	// paper's 8×6×3 m room; otherwise all three must be positive and the
	// layout (antennas, camera, movement area) scales proportionally via
	// room.ScaledLab. Like every world-shaping field they round-trip
	// through the campaign store header.
	RoomWidth  float64 `json:",omitempty"`
	RoomDepth  float64 `json:",omitempty"`
	RoomHeight float64 `json:",omitempty"`
	// Workers bounds the goroutines generating packets (and rendering
	// their camera frames); 0 means one per core, 1 means sequential,
	// matching the evaluation engine's knob. The generated campaign is
	// byte-identical for every worker count: packets are independent given
	// their link seeds and the per-set frame trajectories, which are
	// precomputed sequentially. As a pure execution knob it is excluded
	// from the campaign store header, keeping written files identical
	// across worker counts too.
	Workers int `json:"-"`
}

// DefaultConfig returns a laptop-scale campaign (the paper's full campaign
// is 22,704 packets over 15 sets; see EXPERIMENTS.md for scaling notes).
func DefaultConfig() Config {
	return Config{
		Sets:          15,
		PacketsPerSet: 120,
		PSDULen:       phy.DefaultPSDULen,
		Seed:          1,
		RenderImages:  true,
		Imp:           channel.DefaultImpairments(),
		Mobility:      room.DefaultMobility(),
	}
}

// Packet is one synchronized (image, waveform, estimate) observation. The
// reception itself is regenerated from LinkSeed when needed.
type Packet struct {
	Index    int       // packet index within the set
	Time     float64   // transmit time within the take (seconds)
	SeqNum   byte      // 802.15.4 sequence number
	Pos      room.Vec3 // first occupant's position during the synchronized frame
	LinkSeed uint64    // seed of the link realization

	// Others holds the positions of occupants beyond the first (nil for the
	// paper's single-human campaigns and for the empty room), so receptions
	// of multi-occupant campaigns regenerate bit-exactly from the packet
	// record alone.
	Others []room.Vec3

	TrueCIR        []complex128 // oracle: the block-fading CIR applied
	Perfect        []complex128 // LS estimate over the whole packet ("Ground Truth")
	PerfectAligned []complex128 // Perfect, mean-phase-aligned to the campaign reference
	PreambleEst    []complex128 // LS estimate over the SHR (always computed: "Genie")

	SyncPeak         float64 // normalized preamble correlation
	PreambleDetected bool    // whether detection passed the threshold

	// Images holds the normalized depth images (row-major CropRows×CropCols,
	// [0,1] floats) for each ImageLag; nil when rendering is disabled.
	Images [numLags][]float32
}

// Set is one measurement take.
type Set struct {
	Index   int // 1-based set id as used by Table 2
	Packets []Packet
}

// Campaign is a full generated measurement campaign plus the simulation
// objects needed to regenerate receptions.
type Campaign struct {
	Cfg      Config
	Room     *room.Room
	Geometry *channel.Geometry
	Model    *channel.Model
	Receiver *estimate.Receiver
	Camera   *camera.Camera
	Sets     []Set

	// RefCIR is the clear-room CIR every estimate is phase-aligned to.
	RefCIR []complex128

	// tx caches the transmit-side build per 802.15.4 sequence number:
	// BuildTx output depends only on (seq, PSDULen), so a campaign needs
	// at most 256 variants no matter how many packets it generates or
	// regenerates.
	tx *txCache
}

// txVariant is one cached transmit build plus the ground-truth LS solver
// whose reference-side normal equations depend only on the waveform.
type txVariant struct {
	ppdu     *phy.PPDU
	wave     []complex128
	power    float64 // dsp.Power(wave), constant per variant
	chips    []byte
	gtSolver *estimate.LSSolver
}

// txCache lazily builds and retains the ≤256 (seq → transmit) variants of
// a campaign. Reads are lock-free; the mutex only serializes first
// construction of a variant. All returned slices are shared and must be
// treated as read-only.
type txCache struct {
	psduLen  int
	receiver *estimate.Receiver
	mod      *phy.Modulator

	mu       sync.Mutex
	variants [256]atomic.Pointer[txVariant]
}

func newTxCache(psduLen int, receiver *estimate.Receiver) *txCache {
	return &txCache{psduLen: psduLen, receiver: receiver, mod: phy.NewModulator()}
}

func (tc *txCache) get(seq byte) (*txVariant, error) {
	if v := tc.variants[seq].Load(); v != nil {
		return v, nil
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if v := tc.variants[seq].Load(); v != nil {
		return v, nil
	}
	ppdu, wave, chips, err := BuildTx(tc.mod, seq, tc.psduLen)
	if err != nil {
		return nil, err
	}
	solver, err := tc.receiver.GroundTruthSolver(wave)
	if err != nil {
		return nil, err
	}
	v := &txVariant{ppdu: ppdu, wave: wave, power: dsp.Power(wave), chips: chips, gtSolver: solver}
	tc.variants[seq].Store(v)
	return v, nil
}

// ImagePixels is the flattened size of one preprocessed depth image.
const ImagePixels = camera.CropRows * camera.CropCols

// NumOccupants resolves the Occupants knob: 0 (the pre-scenario zero value)
// means the paper's single human, negative values mean an empty room.
func (c Config) NumOccupants() int {
	switch {
	case c.Occupants < 0:
		return 0
	case c.Occupants == 0:
		return 1
	}
	return c.Occupants
}

// Bodies reconstructs the occupant bodies present while the packet was
// received: the first occupant at Pos plus one per entry of Others, or none
// for an empty-room campaign. The result feeds the multi-occupant channel
// and camera paths during regeneration.
func (p *Packet) Bodies(cfg Config) []room.Human {
	if cfg.NumOccupants() == 0 {
		return nil
	}
	hs := make([]room.Human, 1+len(p.Others))
	hs[0] = room.DefaultHuman(p.Pos)
	for i, o := range p.Others {
		hs[i+1] = room.DefaultHuman(o)
	}
	return hs
}

// NewShell builds the simulation environment of a campaign — room,
// geometry, channel model, receiver, camera and reference CIR — exactly as
// Generate does, but with no measurement sets. Every configuration field
// that shapes the environment (notably HumanScatterGain) is honored, so a
// shell plus stored packets regenerates receptions bit-identically to the
// campaign that produced them. The campaign store uses it to rebuild
// loaded campaigns.
func NewShell(cfg Config) (*Campaign, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lab, err := cfg.lab()
	if err != nil {
		return nil, err
	}
	g := channel.NewGeometry(lab, phy.Wavelength)
	if cfg.HumanScatterGain != 0 {
		g.HumanScatterGain = cfg.HumanScatterGain
	}
	model := channel.NewModel(g, phy.SampleRate)
	rx := estimate.NewReceiver(estimate.DefaultConfig())
	return &Campaign{
		Cfg:      cfg,
		Room:     lab,
		Geometry: g,
		Model:    model,
		Receiver: rx,
		Camera:   camera.New(lab, 90),
		RefCIR:   model.ProjectPaths(g.PathsClear()),
		tx:       newTxCache(cfg.PSDULen, rx),
	}, nil
}

// setPlan holds the precomputed, deterministic per-set state packets draw
// from: the frame-resolution trajectories of every occupant, each packet's
// LED-synchronized frame index, and the memoized frame renders.
type setPlan struct {
	seed uint64
	// framePos[f] lists the occupant positions at frame f (occupant 0
	// first; empty for an empty-room campaign); frameHumans[f] is the same
	// frame as ready-made bodies for the channel and camera.
	framePos    [][]room.Vec3
	frameHumans [][]room.Human
	frames      []int // per-packet LED frame index
	renders     []frameRender
}

// frameRender memoizes one camera frame: packets at the three image lags
// reference overlapping frames, so each referenced frame is rendered
// exactly once per set and its normalized float32 buffer shared by every
// packet (and lag) that uses it. sync.Once keeps the laziness safe under
// the parallel packet fan-out.
type frameRender struct {
	once sync.Once
	pix  []float32
}

func (p *setPlan) framePix(c *Campaign, f int) []float32 {
	r := &p.renders[f]
	r.once.Do(func() {
		img := c.Camera.RenderPreprocessedMulti(p.frameHumans[f])
		r.pix = img.NormalizedF32(c.Camera.MaxRange)
	})
	return r.pix
}

// planSet precomputes the trajectories and frame indices of one set.
//
// Occupant 0 reuses the exact random stream of the pre-scenario single
// walker (the per-occupant seed derivation is the identity at i = 0), so
// single-occupant campaigns are bit-identical to campaigns generated before
// occupancy existed. Further occupants draw from independent streams and
// step through a collision-avoiding room.Crowd.
func planSet(c *Campaign, s int) *setPlan {
	cfg := c.Cfg
	occ := cfg.NumOccupants()
	setSeed := cfg.Seed + uint64(s)*1_000_003
	// Simulate the take at camera frame resolution.
	nFrames := int(float64(cfg.PacketsPerSet)*PacketInterval*camera.FrameRate) + 8
	flatPos := make([]room.Vec3, nFrames*occ)
	framePos := make([][]room.Vec3, nFrames)
	for f := range framePos {
		framePos[f] = flatPos[f*occ : (f+1)*occ : (f+1)*occ]
	}
	occRNG := func(i int) *rand.Rand {
		oseed := setSeed + uint64(i)*0x9E3779B97F4A7C15
		return rand.New(rand.NewPCG(oseed, oseed^0x5bd1e995))
	}
	switch {
	case occ == 0:
		// Empty room: no trajectories to simulate.
	case cfg.Scripted:
		pts := room.ScriptedPath(c.Room.MovementArea, nFrames, camera.FrameInterval, 1.1)
		for f := range framePos {
			framePos[f][0] = pts[f].Pos
		}
		if occ > 1 {
			crowd := room.NewCrowd(c.Room.MovementArea, cfg.Mobility, occ-1,
				func(i int) *rand.Rand { return occRNG(i + 1) }, 0)
			// The scripted occupant is not steered by the crowd; the
			// random walkers yield to it where their slower walking
			// dynamics allow (it can still brush past them).
			crowd.Obstacles = make([]room.Vec3, 1)
			for f := range framePos {
				crowd.Obstacles[0] = pts[f].Pos
				crowd.Step(camera.FrameInterval)
				framePos[f] = crowd.Positions(framePos[f][:1])
			}
		}
	default:
		crowd := room.NewCrowd(c.Room.MovementArea, cfg.Mobility, occ, occRNG, 0)
		for f := range framePos {
			crowd.Step(camera.FrameInterval)
			framePos[f] = crowd.Positions(framePos[f][:0])
		}
	}
	flatHum := make([]room.Human, nFrames*occ)
	frameHumans := make([][]room.Human, nFrames)
	for f := range frameHumans {
		hf := flatHum[f*occ : (f+1)*occ : (f+1)*occ]
		for i := range hf {
			hf[i] = room.DefaultHuman(framePos[f][i])
		}
		frameHumans[f] = hf
	}
	sync := camera.NewSynchronizer()
	frames := make([]int, cfg.PacketsPerSet)
	for k := range frames {
		frame := sync.FrameIndex(float64(k+1) * PacketInterval)
		if frame >= nFrames {
			frame = nFrames - 1
		}
		frames[k] = frame
	}
	return &setPlan{seed: setSeed, framePos: framePos, frameHumans: frameHumans, frames: frames, renders: make([]frameRender, nFrames)}
}

// genWorker carries one generation goroutine's reusable state: the
// reception waveform buffer and a reseedable RNG (a packet's link stream
// is a function of its seed alone, so reseeding one PCG is equivalent to
// constructing a fresh one per packet).
type genWorker struct {
	c       *Campaign
	pcg     *rand.PCG
	rng     *rand.Rand
	waveBuf []complex128
}

func newGenWorker(c *Campaign) *genWorker {
	pcg := rand.NewPCG(0, 0)
	return &genWorker{c: c, pcg: pcg, rng: rand.New(pcg)}
}

// packet builds packet k of set s into its preallocated slot.
func (g *genWorker) packet(plan *setPlan, s, k int) error {
	c := g.c
	cfg := c.Cfg
	t := float64(k+1) * PacketInterval
	frame := plan.frames[k]
	humans := plan.frameHumans[frame]
	var pos room.Vec3
	var others []room.Vec3
	if len(humans) > 0 {
		pos = plan.framePos[frame][0]
		if rest := plan.framePos[frame][1:]; len(rest) > 0 {
			others = append([]room.Vec3(nil), rest...)
		}
	}
	seq := byte(k % 256)
	linkSeed := plan.seed*31 + uint64(k)*2_654_435_761
	tv, err := c.tx.get(seq)
	if err != nil {
		return err
	}
	g.pcg.Seed(linkSeed, linkSeed^0x9e3779b9)
	link := channel.NewLink(c.Model, cfg.Imp, g.rng)
	rec := link.TransmitMultiBufPow(tv.wave, tv.power, humans, g.waveBuf)
	g.waveBuf = rec.Waveform
	rxc, _ := c.Receiver.CorrectCFOInPlace(rec.Waveform)
	detected, peak, _ := c.Receiver.DetectPreamble(rxc)
	perfect, err := tv.gtSolver.Estimate(rxc)
	if err != nil {
		return fmt.Errorf("dataset: set %d packet %d ground truth: %w", s+1, k, err)
	}
	preamble, err := c.Receiver.EstimatePreamble(rxc)
	if err != nil {
		return fmt.Errorf("dataset: set %d packet %d preamble estimate: %w", s+1, k, err)
	}
	pkt := Packet{
		Index:            k,
		Time:             t,
		SeqNum:           seq,
		Pos:              pos,
		Others:           others,
		LinkSeed:         linkSeed,
		TrueCIR:          rec.TrueCIR,
		Perfect:          perfect,
		PerfectAligned:   estimate.AlignPhase(perfect, c.RefCIR),
		PreambleEst:      preamble,
		SyncPeak:         peak,
		PreambleDetected: detected,
	}
	if cfg.RenderImages {
		for lag := ImageLag(0); lag < numLags; lag++ {
			f := frame - lagFrames(lag)
			if f < 0 {
				f = 0
			}
			pkt.Images[lag] = plan.framePix(c, f)
		}
	}
	c.Sets[s].Packets[k] = pkt
	return nil
}

// Generate builds a campaign. Each set uses an independent random-waypoint
// trajectory; the packet↔frame pairing follows the LED synchronization.
//
// Packets are generated by Config.Workers goroutines. Each packet's link
// realization is seeded individually and the per-set trajectories are
// precomputed sequentially, so the campaign is byte-identical for every
// worker count (pinned by TestGenerateParallelMatchesSequential).
func Generate(cfg Config) (*Campaign, error) {
	if cfg.Sets <= 0 || cfg.PacketsPerSet <= 0 {
		return nil, fmt.Errorf("dataset: need positive sets/packets, got %d/%d", cfg.Sets, cfg.PacketsPerSet)
	}
	c, err := NewShell(cfg)
	if err != nil {
		return nil, err
	}
	plans := make([]*setPlan, cfg.Sets)
	c.Sets = make([]Set, cfg.Sets)
	for s := range plans {
		plans[s] = planSet(c, s)
		c.Sets[s] = Set{Index: s + 1, Packets: make([]Packet, cfg.PacketsPerSet)}
	}

	total := cfg.Sets * cfg.PacketsPerSet
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	if workers == 1 {
		g := newGenWorker(c)
		for i := 0; i < total; i++ {
			if err := g.packet(plans[i/cfg.PacketsPerSet], i/cfg.PacketsPerSet, i%cfg.PacketsPerSet); err != nil {
				return nil, err
			}
		}
		return c, nil
	}

	// Parallel fan-out: workers pull packet indices from a shared counter
	// and write disjoint packet slots; the first error stops the fleet.
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := newGenWorker(c)
			for {
				i := int(next.Add(1) - 1)
				if i >= total || failed.Load() {
					return
				}
				s, k := i/cfg.PacketsPerSet, i%cfg.PacketsPerSet
				if err := g.packet(plans[s], s, k); err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return c, nil
}

func lagFrames(lag ImageLag) int {
	switch lag {
	case Lag33ms:
		return 1
	case Lag100ms:
		return 3
	default:
		return 0
	}
}

// BuildTx assembles the PPDU, waveform and chip sequence for a sequence
// number at the configured PSDU length.
func BuildTx(mod *phy.Modulator, seq byte, psduLen int) (*phy.PPDU, []complex128, []byte, error) {
	frame := &phy.Frame{SeqNum: seq, Payload: phy.DefaultPayload(psduLen)}
	psdu, err := frame.BuildPSDU()
	if err != nil {
		return nil, nil, nil, err
	}
	ppdu, err := phy.BuildPPDU(psdu)
	if err != nil {
		return nil, nil, nil, err
	}
	chips := phy.SpreadBits(ppdu.Bits)
	wave := mod.ModulateChips(chips)
	return ppdu, wave, chips, nil
}

// Reception regenerates the bit-exact link realization of a packet.
func (c *Campaign) Reception(setIdx1Based, pktIdx int) (*phy.PPDU, []complex128, []byte, *channel.Reception, error) {
	if setIdx1Based < 1 || setIdx1Based > len(c.Sets) {
		return nil, nil, nil, nil, fmt.Errorf("dataset: set %d out of range", setIdx1Based)
	}
	set := c.Sets[setIdx1Based-1]
	if pktIdx < 0 || pktIdx >= len(set.Packets) {
		return nil, nil, nil, nil, fmt.Errorf("dataset: packet %d out of range", pktIdx)
	}
	return c.ReceptionPacket(&set.Packets[pktIdx])
}

// ReceptionPacket regenerates the bit-exact link realization of a packet
// that need not live in c.Sets — the streaming path hands packets of one
// decoded set to a campaign shell without materializing the others.
//
// The transmit-side artifacts (PPDU, waveform, chips) come from the
// campaign's per-sequence cache and are shared between calls: treat them
// as read-only.
func (c *Campaign) ReceptionPacket(pkt *Packet) (*phy.PPDU, []complex128, []byte, *channel.Reception, error) {
	var (
		ppdu  *phy.PPDU
		wave  []complex128
		chips []byte
	)
	if c.tx != nil {
		tv, err := c.tx.get(pkt.SeqNum)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		ppdu, wave, chips = tv.ppdu, tv.wave, tv.chips
	} else {
		// Campaigns built by NewShell always carry the cache; a hand-rolled
		// shell (zero-value Campaign) gets a one-off build.
		var err error
		ppdu, wave, chips, err = BuildTx(phy.NewModulator(), pkt.SeqNum, c.Cfg.PSDULen)
		if err != nil {
			return nil, nil, nil, nil, err
		}
	}
	link := channel.NewLink(c.Model, c.Cfg.Imp, rand.New(rand.NewPCG(pkt.LinkSeed, pkt.LinkSeed^0x9e3779b9)))
	rec := link.TransmitMulti(wave, pkt.Bodies(c.Cfg))
	return ppdu, wave, chips, rec, nil
}

// Set returns the 1-based measurement set.
func (c *Campaign) Set(idx1Based int) (*Set, error) {
	if idx1Based < 1 || idx1Based > len(c.Sets) {
		return nil, fmt.Errorf("dataset: set %d out of range (have %d)", idx1Based, len(c.Sets))
	}
	return &c.Sets[idx1Based-1], nil
}

// ErrNoImages indicates the campaign was generated without depth images.
var ErrNoImages = errors.New("dataset: campaign generated with RenderImages=false")

// Package dataset generates and organizes the measurement campaign the
// paper collected on its testbed: 15 measurement sets ("takes") of packets
// transmitted every 100 ms while a human walks through the room, each
// packet synchronized (LED blink) with the depth-camera frame stream, plus
// the Table 2 train/validation/test set combinations and the CIR
// normalization used for the ML targets.
//
// Waveforms are not stored: every packet records the RNG seed of its link
// realization, so receptions can be regenerated bit-exactly on demand.
package dataset

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"vvd/internal/camera"
	"vvd/internal/channel"
	"vvd/internal/estimate"
	"vvd/internal/phy"
	"vvd/internal/room"
)

// PacketInterval is the transmit period (paper: one packet each 100 ms).
const PacketInterval = 0.1

// ImageLag enumerates the depth-image inputs stored per packet: the
// LED-synchronized current frame plus the frames one and three frame
// periods earlier (inputs of the VVD-33.3ms-Future and VVD-100ms-Future
// variants).
type ImageLag int

// Image lags.
const (
	LagCurrent ImageLag = iota // frame synchronized with the packet
	Lag33ms                    // one frame earlier (≈33.3 ms)
	Lag100ms                   // three frames earlier (≈100 ms)
	numLags
)

// Config parameterizes campaign generation.
type Config struct {
	Sets          int    // number of measurement takes (paper: 15)
	PacketsPerSet int    // packets per take
	PSDULen       int    // PSDU size in bytes (paper: 127)
	Seed          uint64 // master seed
	RenderImages  bool   // render depth images (needed for VVD)
	Imp           channel.Impairments
	Mobility      room.MobilityConfig
	// Scripted replaces the random-waypoint walk with the deterministic
	// diagonal path that repeatedly crosses the TX–RX line — used by the
	// burst-error timeline experiment (paper Fig. 15).
	Scripted bool
	// HumanScatterGain overrides the geometry's human re-radiation
	// efficiency when non-zero (how strongly the person's body itself
	// contributes a moving multipath component).
	HumanScatterGain float64
}

// DefaultConfig returns a laptop-scale campaign (the paper's full campaign
// is 22,704 packets over 15 sets; see EXPERIMENTS.md for scaling notes).
func DefaultConfig() Config {
	return Config{
		Sets:          15,
		PacketsPerSet: 120,
		PSDULen:       phy.DefaultPSDULen,
		Seed:          1,
		RenderImages:  true,
		Imp:           channel.DefaultImpairments(),
		Mobility:      room.DefaultMobility(),
	}
}

// Packet is one synchronized (image, waveform, estimate) observation. The
// reception itself is regenerated from LinkSeed when needed.
type Packet struct {
	Index    int       // packet index within the set
	Time     float64   // transmit time within the take (seconds)
	SeqNum   byte      // 802.15.4 sequence number
	Pos      room.Vec3 // human position during the synchronized frame
	LinkSeed uint64    // seed of the link realization

	TrueCIR        []complex128 // oracle: the block-fading CIR applied
	Perfect        []complex128 // LS estimate over the whole packet ("Ground Truth")
	PerfectAligned []complex128 // Perfect, mean-phase-aligned to the campaign reference
	PreambleEst    []complex128 // LS estimate over the SHR (always computed: "Genie")

	SyncPeak         float64 // normalized preamble correlation
	PreambleDetected bool    // whether detection passed the threshold

	// Images holds the normalized depth images (row-major CropRows×CropCols,
	// [0,1] floats) for each ImageLag; nil when rendering is disabled.
	Images [numLags][]float32
}

// Set is one measurement take.
type Set struct {
	Index   int // 1-based set id as used by Table 2
	Packets []Packet
}

// Campaign is a full generated measurement campaign plus the simulation
// objects needed to regenerate receptions.
type Campaign struct {
	Cfg      Config
	Room     *room.Room
	Geometry *channel.Geometry
	Model    *channel.Model
	Receiver *estimate.Receiver
	Camera   *camera.Camera
	Sets     []Set

	// RefCIR is the clear-room CIR every estimate is phase-aligned to.
	RefCIR []complex128
}

// ImagePixels is the flattened size of one preprocessed depth image.
const ImagePixels = camera.CropRows * camera.CropCols

// NewShell builds the simulation environment of a campaign — room,
// geometry, channel model, receiver, camera and reference CIR — exactly as
// Generate does, but with no measurement sets. Every configuration field
// that shapes the environment (notably HumanScatterGain) is honored, so a
// shell plus stored packets regenerates receptions bit-identically to the
// campaign that produced them. The campaign store uses it to rebuild
// loaded campaigns.
func NewShell(cfg Config) (*Campaign, error) {
	if cfg.PSDULen < 4 || cfg.PSDULen > phy.MaxPSDU {
		return nil, fmt.Errorf("dataset: PSDU length %d outside [4,%d]", cfg.PSDULen, phy.MaxPSDU)
	}
	lab := room.DefaultLab()
	g := channel.NewGeometry(lab, phy.Wavelength)
	if cfg.HumanScatterGain != 0 {
		g.HumanScatterGain = cfg.HumanScatterGain
	}
	model := channel.NewModel(g, phy.SampleRate)
	return &Campaign{
		Cfg:      cfg,
		Room:     lab,
		Geometry: g,
		Model:    model,
		Receiver: estimate.NewReceiver(estimate.DefaultConfig()),
		Camera:   camera.New(lab, 90),
		RefCIR:   model.ProjectPaths(g.PathsClear()),
	}, nil
}

// Generate builds a campaign. Each set uses an independent random-waypoint
// trajectory; the packet↔frame pairing follows the LED synchronization.
func Generate(cfg Config) (*Campaign, error) {
	if cfg.Sets <= 0 || cfg.PacketsPerSet <= 0 {
		return nil, fmt.Errorf("dataset: need positive sets/packets, got %d/%d", cfg.Sets, cfg.PacketsPerSet)
	}
	c, err := NewShell(cfg)
	if err != nil {
		return nil, err
	}
	lab, model, cam, rx := c.Room, c.Model, c.Camera, c.Receiver
	sync := camera.NewSynchronizer()

	mod := phy.NewModulator()
	for s := 0; s < cfg.Sets; s++ {
		setSeed := cfg.Seed + uint64(s)*1_000_003
		// Simulate the take at camera frame resolution.
		nFrames := int(float64(cfg.PacketsPerSet)*PacketInterval*camera.FrameRate) + 8
		framePos := make([]room.Vec3, nFrames)
		if cfg.Scripted {
			pts := room.ScriptedPath(lab.MovementArea, nFrames, camera.FrameInterval, 1.1)
			for f := range framePos {
				framePos[f] = pts[f].Pos
			}
		} else {
			walker := room.NewWalker(lab.MovementArea, cfg.Mobility, rand.New(rand.NewPCG(setSeed, setSeed^0x5bd1e995)))
			for f := range framePos {
				framePos[f] = walker.Step(camera.FrameInterval)
			}
		}
		set := Set{Index: s + 1, Packets: make([]Packet, cfg.PacketsPerSet)}
		for k := 0; k < cfg.PacketsPerSet; k++ {
			t := float64(k+1) * PacketInterval
			frame := sync.FrameIndex(t)
			if frame >= nFrames {
				frame = nFrames - 1
			}
			pos := framePos[frame]
			human := room.DefaultHuman(pos)
			seq := byte(k % 256)
			linkSeed := setSeed*31 + uint64(k)*2_654_435_761
			ppdu, txWave, txChips, err := BuildTx(mod, seq, cfg.PSDULen)
			if err != nil {
				return nil, err
			}
			_ = txChips
			link := channel.NewLink(model, cfg.Imp, rand.New(rand.NewPCG(linkSeed, linkSeed^0x9e3779b9)))
			rec := link.Transmit(txWave, human)
			rxc, _ := rx.CorrectCFO(rec.Waveform)
			detected, peak, _ := rx.DetectPreamble(rxc)
			perfect, err := rx.EstimateGroundTruth(rxc, txWave)
			if err != nil {
				return nil, fmt.Errorf("dataset: set %d packet %d ground truth: %w", s+1, k, err)
			}
			preamble, err := rx.EstimatePreamble(rxc)
			if err != nil {
				return nil, fmt.Errorf("dataset: set %d packet %d preamble estimate: %w", s+1, k, err)
			}
			pkt := Packet{
				Index:            k,
				Time:             t,
				SeqNum:           seq,
				Pos:              pos,
				LinkSeed:         linkSeed,
				TrueCIR:          rec.TrueCIR,
				Perfect:          perfect,
				PerfectAligned:   estimate.AlignPhase(perfect, c.RefCIR),
				PreambleEst:      preamble,
				SyncPeak:         peak,
				PreambleDetected: detected,
			}
			if cfg.RenderImages {
				for lag := ImageLag(0); lag < numLags; lag++ {
					f := frame - lagFrames(lag)
					if f < 0 {
						f = 0
					}
					img := cam.RenderPreprocessed(room.DefaultHuman(framePos[f]))
					pix := img.Normalized(cam.MaxRange)
					f32 := make([]float32, len(pix))
					for i, v := range pix {
						f32[i] = float32(v)
					}
					pkt.Images[lag] = f32
				}
			}
			set.Packets[k] = pkt
			_ = ppdu
		}
		c.Sets = append(c.Sets, set)
	}
	return c, nil
}

func lagFrames(lag ImageLag) int {
	switch lag {
	case Lag33ms:
		return 1
	case Lag100ms:
		return 3
	default:
		return 0
	}
}

// BuildTx assembles the PPDU, waveform and chip sequence for a sequence
// number at the configured PSDU length.
func BuildTx(mod *phy.Modulator, seq byte, psduLen int) (*phy.PPDU, []complex128, []byte, error) {
	frame := &phy.Frame{SeqNum: seq, Payload: phy.DefaultPayload(psduLen)}
	psdu, err := frame.BuildPSDU()
	if err != nil {
		return nil, nil, nil, err
	}
	ppdu, err := phy.BuildPPDU(psdu)
	if err != nil {
		return nil, nil, nil, err
	}
	chips := phy.SpreadBits(ppdu.Bits)
	wave := mod.ModulateChips(chips)
	return ppdu, wave, chips, nil
}

// Reception regenerates the bit-exact link realization of a packet.
func (c *Campaign) Reception(setIdx1Based, pktIdx int) (*phy.PPDU, []complex128, []byte, *channel.Reception, error) {
	if setIdx1Based < 1 || setIdx1Based > len(c.Sets) {
		return nil, nil, nil, nil, fmt.Errorf("dataset: set %d out of range", setIdx1Based)
	}
	set := c.Sets[setIdx1Based-1]
	if pktIdx < 0 || pktIdx >= len(set.Packets) {
		return nil, nil, nil, nil, fmt.Errorf("dataset: packet %d out of range", pktIdx)
	}
	return c.ReceptionPacket(&set.Packets[pktIdx])
}

// ReceptionPacket regenerates the bit-exact link realization of a packet
// that need not live in c.Sets — the streaming path hands packets of one
// decoded set to a campaign shell without materializing the others.
func (c *Campaign) ReceptionPacket(pkt *Packet) (*phy.PPDU, []complex128, []byte, *channel.Reception, error) {
	mod := phy.NewModulator()
	ppdu, txWave, txChips, err := BuildTx(mod, pkt.SeqNum, c.Cfg.PSDULen)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	link := channel.NewLink(c.Model, c.Cfg.Imp, rand.New(rand.NewPCG(pkt.LinkSeed, pkt.LinkSeed^0x9e3779b9)))
	rec := link.Transmit(txWave, room.DefaultHuman(pkt.Pos))
	return ppdu, txWave, txChips, rec, nil
}

// Set returns the 1-based measurement set.
func (c *Campaign) Set(idx1Based int) (*Set, error) {
	if idx1Based < 1 || idx1Based > len(c.Sets) {
		return nil, fmt.Errorf("dataset: set %d out of range (have %d)", idx1Based, len(c.Sets))
	}
	return &c.Sets[idx1Based-1], nil
}

// ErrNoImages indicates the campaign was generated without depth images.
var ErrNoImages = errors.New("dataset: campaign generated with RenderImages=false")

package dataset

import (
	"bytes"
	"io"
	"os"
	"testing"
)

// FuzzOpenCampaign fuzzes the campaign store decoder over mutated bytes:
// whatever the input, OpenCampaign/NextSet/Shell must either succeed or
// return an error — never panic, and never allocate beyond the decoder's
// sanity bounds (every length field is checked against its limit and the
// remaining payload before allocation). The committed seed corpus under
// testdata/fuzz covers all three on-disk formats (v1, v2, v3); f.Add seeds
// the same shapes plus truncations and flips so a fresh checkout fuzzes the
// interesting region immediately.
func FuzzOpenCampaign(f *testing.F) {
	for _, p := range []string{
		"testdata/campaign_v1.bin",
		"testdata/campaign_v2.bin",
	} {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/3])
	}
	cfg := DefaultConfig()
	cfg.Sets = 2
	cfg.PacketsPerSet = 3
	cfg.PSDULen = 24
	cfg.Seed = 13
	cfg.RenderImages = false
	cfg.Occupants = 3
	cfg.Scenario = "fuzz"
	c, err := Generate(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		f.Fatal(err)
	}
	v3 := buf.Bytes()
	f.Add(v3)
	f.Add(v3[:len(v3)-7])
	for _, pos := range []int{4, 8, 40, len(v3) / 2, len(v3) - 9} {
		mut := append([]byte(nil), v3...)
		mut[pos] ^= 0x41
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("VVD2"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := OpenCampaign(bytes.NewReader(data))
		if err != nil {
			return
		}
		// The header parsed: the rest of the stream must decode or error
		// cleanly too.
		if _, err := r.Shell(); err != nil {
			return
		}
		for {
			if _, err := r.NextSet(); err != nil {
				if err != io.EOF {
					return
				}
				break
			}
		}
	})
}

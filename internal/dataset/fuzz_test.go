package dataset

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"strings"
	"testing"
)

// FuzzOpenCampaign fuzzes the campaign store decoder over mutated bytes:
// whatever the input, OpenCampaign/NextSet/Shell must either succeed or
// return an error — never panic, and never allocate beyond the decoder's
// sanity bounds (every length field is checked against its limit and the
// remaining payload before allocation). The committed seed corpus under
// testdata/fuzz covers all three on-disk formats (v1, v2, v3); f.Add seeds
// the same shapes plus truncations and flips so a fresh checkout fuzzes the
// interesting region immediately.
func FuzzOpenCampaign(f *testing.F) {
	for _, p := range []string{
		"testdata/campaign_v1.bin",
		"testdata/campaign_v2.bin",
	} {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/3])
	}
	cfg := DefaultConfig()
	cfg.Sets = 2
	cfg.PacketsPerSet = 3
	cfg.PSDULen = 24
	cfg.Seed = 13
	cfg.RenderImages = false
	cfg.Occupants = 3
	cfg.Scenario = "fuzz"
	c, err := Generate(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		f.Fatal(err)
	}
	v3 := buf.Bytes()
	f.Add(v3)
	f.Add(v3[:len(v3)-7])
	for _, pos := range []int{4, 8, 40, len(v3) / 2, len(v3) - 9} {
		mut := append([]byte(nil), v3...)
		mut[pos] ^= 0x41
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("VVD2"))
	f.Add(truncatedOccupantBlock(f))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := OpenCampaign(bytes.NewReader(data))
		if err != nil {
			return
		}
		// The header parsed: the rest of the stream must decode or error
		// cleanly too.
		if _, err := r.Shell(); err != nil {
			return
		}
		for {
			if _, err := r.NextSet(); err != nil {
				if err != io.EOF {
					return
				}
				break
			}
		}
	})
}

// truncatedOccupantBlock builds a v3 stream whose set block passes the CRC
// but lies in its occupant count: the packet claims 50 extra occupants while
// only one coordinate follows. Plain truncations die at the length/CRC
// checks before the occupant decoder ever runs; this shape is the one that
// reaches cursor.others with a hostile count, which is exactly the
// bounds-check the decoder must not trust the count without.
func truncatedOccupantBlock(tb testing.TB) []byte {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.Sets = 1
	cfg.PacketsPerSet = 1
	cfg.PSDULen = 24
	cfg.Seed = 7
	cfg.RenderImages = false
	cfg.Occupants = 2
	c, err := Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	v3 := buf.Bytes()
	// Header: magic + version + configJSON length + configJSON + sets + CRC.
	cfgLen := int(binary.LittleEndian.Uint32(v3[8:12]))
	hdrLen := 4 + 4 + 4 + cfgLen + 4 + 4

	// Forge the set block: valid 57-byte packet prefix (index, seq, link
	// seed, flags, five float64s), then an occupant count the remaining
	// payload cannot satisfy.
	p := &c.Sets[0].Packets[0]
	b := appendU32(nil, 1) // set index
	b = appendU32(b, 1)    // one packet
	b = appendU64(b, 0)    // payload length, patched below
	b = appendU32(b, uint32(p.Index))
	b = appendU32(b, uint32(p.SeqNum))
	b = appendU64(b, p.LinkSeed)
	b = append(b, 1) // flags: preamble detected
	for _, f := range []float64{p.Time, p.Pos.X, p.Pos.Y, p.Pos.Z, p.SyncPeak} {
		b = appendF64(b, f)
	}
	b = appendU32(b, 50) // claims 50 extra occupants (within maxOccupants)...
	b = appendF64(b, 1)  // ...but only 8 of the 1200 coordinate bytes follow
	binary.LittleEndian.PutUint64(b[8:], uint64(len(b)-16))
	b = appendU32(b, crc32.Checksum(b, castagnoli))
	return append(append([]byte(nil), v3[:hdrLen]...), b...)
}

// TestOpenCampaignRejectsTruncatedOccupantBlock pins the regression the
// corpus entry of the same name guards: a CRC-valid set block whose occupant
// count exceeds the remaining payload must fail with the short-payload
// error, not panic or over-allocate.
func TestOpenCampaignRejectsTruncatedOccupantBlock(t *testing.T) {
	data := truncatedOccupantBlock(t)
	r, err := OpenCampaign(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("header must parse (the forgery is in the set block): %v", err)
	}
	if _, err := r.Shell(); err != nil {
		t.Fatalf("shell must parse: %v", err)
	}
	_, err = r.NextSet()
	if err == nil {
		t.Fatal("decoder accepted a set whose occupant block is truncated")
	}
	if !strings.Contains(err.Error(), "payload shorter") {
		t.Fatalf("want the short-payload error, got: %v", err)
	}
}

package dataset

import (
	"fmt"
	"math"

	"vvd/internal/phy"
	"vvd/internal/room"
)

// Room dimension bounds accepted by Validate (metres). The scaled-lab
// layout keeps its proportions at any size, but rooms outside this range
// stop being a plausible indoor measurement environment (and a hostile
// stored config could otherwise request degenerate geometry).
const (
	MinRoomDim = 2.0
	MaxRoomDim = 100.0
)

// MaxConfigOccupants is the largest supported occupant count, shared with
// the campaign store's per-packet occupant-block bound.
const MaxConfigOccupants = maxOccupants

// finite reports whether x is a usable real number (not NaN, not ±Inf).
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Validate checks every world-shaping field of the configuration and
// returns a descriptive error naming the offending field. Before this
// gate existed, bad values flowed into generation and failed far from the
// cause — or worse, were silently clamped (a zero walker speed used to
// become 0.5 m/s inside room.Walker). Generate, NewShell and therefore
// every campaign store load run through it.
//
// Scale knobs (Sets, PacketsPerSet, Seed, RenderImages, Workers) are not
// validated here: Generate checks the counts it needs, and a stored
// campaign's shell does not need them.
func (c Config) Validate() error {
	if c.PSDULen < 4 || c.PSDULen > phy.MaxPSDU {
		return fmt.Errorf("dataset: PSDU length %d outside [4,%d]", c.PSDULen, phy.MaxPSDU)
	}
	if c.Occupants < -1 || c.Occupants > MaxConfigOccupants {
		return fmt.Errorf("dataset: Occupants %d outside [-1,%d] (-1 = empty room, 0 = the single human)", c.Occupants, MaxConfigOccupants)
	}
	if !finite(c.Imp.SNRdB) || c.Imp.SNRdB < 0 {
		return fmt.Errorf("dataset: Imp.SNRdB %g must be a finite non-negative dB value", c.Imp.SNRdB)
	}
	if !finite(c.Imp.PhaseStdDev) || c.Imp.PhaseStdDev < 0 {
		return fmt.Errorf("dataset: Imp.PhaseStdDev %g must be finite and non-negative", c.Imp.PhaseStdDev)
	}
	if !finite(c.Imp.CFOStdDevHz) || c.Imp.CFOStdDevHz < 0 {
		return fmt.Errorf("dataset: Imp.CFOStdDevHz %g must be finite and non-negative", c.Imp.CFOStdDevHz)
	}
	if !finite(c.HumanScatterGain) || c.HumanScatterGain < 0 || c.HumanScatterGain > 1 {
		return fmt.Errorf("dataset: HumanScatterGain %g outside [0,1] (0 keeps the default)", c.HumanScatterGain)
	}
	if err := c.validateMobility(); err != nil {
		return err
	}
	return c.validateRoom()
}

// validateMobility rejects walker dynamics that the walker model used to
// clamp silently. A fully zero MobilityConfig is accepted when no random
// walker consumes it (empty room, or a single scripted occupant).
func (c Config) validateMobility() error {
	m := c.Mobility
	if !finite(m.SpeedMin) || m.SpeedMin < 0 {
		return fmt.Errorf("dataset: Mobility.SpeedMin %g must be finite and non-negative", m.SpeedMin)
	}
	if !finite(m.SpeedMax) || m.SpeedMax < 0 {
		return fmt.Errorf("dataset: Mobility.SpeedMax %g must be finite and non-negative", m.SpeedMax)
	}
	if m.SpeedMax < m.SpeedMin {
		return fmt.Errorf("dataset: Mobility speed range [%g,%g] inverted", m.SpeedMin, m.SpeedMax)
	}
	if !finite(m.PauseTime) || m.PauseTime < 0 {
		return fmt.Errorf("dataset: Mobility.PauseTime %g must be finite and non-negative", m.PauseTime)
	}
	randomWalkers := c.NumOccupants()
	if c.Scripted && randomWalkers > 0 {
		randomWalkers-- // occupant 0 follows the deterministic diagonal
	}
	if randomWalkers > 0 && m.SpeedMax == 0 {
		return fmt.Errorf("dataset: Mobility.SpeedMax 0 with %d random walker(s); the walk needs a positive speed", randomWalkers)
	}
	return nil
}

// validateRoom checks the room-geometry override: all three dimensions
// zero keeps the paper's lab, anything else must describe a full,
// plausibly-sized room.
func (c Config) validateRoom() error {
	w, d, h := c.RoomWidth, c.RoomDepth, c.RoomHeight
	if w == 0 && d == 0 && h == 0 {
		return nil
	}
	for _, dim := range []struct {
		name string
		v    float64
	}{{"RoomWidth", w}, {"RoomDepth", d}, {"RoomHeight", h}} {
		if !finite(dim.v) || dim.v <= 0 {
			return fmt.Errorf("dataset: %s %g: zero-size or non-finite room (set all three dimensions, or none for the paper's 8x6x3 m lab)", dim.name, dim.v)
		}
		if dim.v < MinRoomDim || dim.v > MaxRoomDim {
			return fmt.Errorf("dataset: %s %g outside [%g,%g] m", dim.name, dim.v, MinRoomDim, MaxRoomDim)
		}
	}
	return nil
}

// lab resolves the configured room: the paper's laboratory, or its layout
// scaled to the overridden dimensions. Validate has already bounded the
// dimensions, so ScaledLab cannot fail on a validated config.
func (c Config) lab() (*room.Room, error) {
	if c.RoomWidth == 0 && c.RoomDepth == 0 && c.RoomHeight == 0 {
		return room.DefaultLab(), nil
	}
	return room.ScaledLab(c.RoomWidth, c.RoomDepth, c.RoomHeight)
}

package dataset

import (
	"math"
	"strings"
	"testing"

	"vvd/internal/room"
)

// validBase returns a configuration Validate accepts, used as the mutation
// base of the rejection table.
func validBase() Config {
	cfg := DefaultConfig()
	cfg.Sets = 1
	cfg.PacketsPerSet = 2
	cfg.PSDULen = 24
	cfg.RenderImages = false
	return cfg
}

// TestConfigValidateRejections drives Validate over one mutation per
// guarded field: each bad value must be rejected with an error that names
// the field, instead of flowing into generation and failing far from the
// cause (or being silently clamped).
func TestConfigValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string // substring the error must contain
	}{
		{"psdu too small", func(c *Config) { c.PSDULen = 3 }, "PSDU"},
		{"psdu too large", func(c *Config) { c.PSDULen = 128 }, "PSDU"},
		{"occupants below -1", func(c *Config) { c.Occupants = -2 }, "Occupants"},
		{"occupants above max", func(c *Config) { c.Occupants = MaxConfigOccupants + 1 }, "Occupants"},
		{"snr NaN", func(c *Config) { c.Imp.SNRdB = math.NaN() }, "SNRdB"},
		{"snr negative", func(c *Config) { c.Imp.SNRdB = -3 }, "SNRdB"},
		{"snr infinite", func(c *Config) { c.Imp.SNRdB = math.Inf(1) }, "SNRdB"},
		{"phase stddev NaN", func(c *Config) { c.Imp.PhaseStdDev = math.NaN() }, "PhaseStdDev"},
		{"phase stddev negative", func(c *Config) { c.Imp.PhaseStdDev = -0.1 }, "PhaseStdDev"},
		{"cfo stddev NaN", func(c *Config) { c.Imp.CFOStdDevHz = math.NaN() }, "CFOStdDevHz"},
		{"cfo stddev negative", func(c *Config) { c.Imp.CFOStdDevHz = -1 }, "CFOStdDevHz"},
		{"scatter gain NaN", func(c *Config) { c.HumanScatterGain = math.NaN() }, "HumanScatterGain"},
		{"scatter gain negative", func(c *Config) { c.HumanScatterGain = -0.2 }, "HumanScatterGain"},
		{"scatter gain above 1", func(c *Config) { c.HumanScatterGain = 1.5 }, "HumanScatterGain"},
		{"speed min NaN", func(c *Config) { c.Mobility.SpeedMin = math.NaN() }, "SpeedMin"},
		{"speed min negative", func(c *Config) { c.Mobility.SpeedMin = -0.5 }, "SpeedMin"},
		{"speed max NaN", func(c *Config) { c.Mobility.SpeedMax = math.NaN() }, "SpeedMax"},
		{"speed max negative", func(c *Config) { c.Mobility.SpeedMax = -0.5 }, "SpeedMax"},
		{"speed range inverted", func(c *Config) {
			c.Mobility.SpeedMin = 1.5
			c.Mobility.SpeedMax = 0.5
		}, "inverted"},
		{"pause time NaN", func(c *Config) { c.Mobility.PauseTime = math.NaN() }, "PauseTime"},
		{"pause time negative", func(c *Config) { c.Mobility.PauseTime = -1 }, "PauseTime"},
		{"zero walker speed with walkers", func(c *Config) {
			c.Mobility.SpeedMin = 0
			c.Mobility.SpeedMax = 0
		}, "positive speed"},
		{"room width only", func(c *Config) { c.RoomWidth = 8 }, "RoomDepth"},
		{"room depth zero", func(c *Config) {
			c.RoomWidth, c.RoomDepth, c.RoomHeight = 8, 0, 3
		}, "RoomDepth"},
		{"room height NaN", func(c *Config) {
			c.RoomWidth, c.RoomDepth, c.RoomHeight = 8, 6, math.NaN()
		}, "RoomHeight"},
		{"room width negative", func(c *Config) {
			c.RoomWidth, c.RoomDepth, c.RoomHeight = -8, 6, 3
		}, "RoomWidth"},
		{"room too small", func(c *Config) {
			c.RoomWidth, c.RoomDepth, c.RoomHeight = 8, 6, 0.5
		}, "RoomHeight"},
		{"room too large", func(c *Config) {
			c.RoomWidth, c.RoomDepth, c.RoomHeight = 500, 6, 3
		}, "RoomWidth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validBase()
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the offending field (want %q)", err, tc.want)
			}
			// The same rejection must surface through Generate (and
			// therefore through NewShell and every store load).
			if _, gerr := Generate(cfg); gerr == nil {
				t.Fatal("Generate accepted a config Validate rejects")
			}
		})
	}
}

// TestConfigValidateAccepts pins the accepted shapes: the defaults, every
// boundary value, and the legacy zero-mobility empty room.
func TestConfigValidateAccepts(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"default", func(c *Config) {}},
		{"zero snr floor", func(c *Config) { c.Imp.SNRdB = 0 }},
		{"empty room", func(c *Config) { c.Occupants = -1 }},
		{"max occupants", func(c *Config) { c.Occupants = MaxConfigOccupants }},
		{"scaled room", func(c *Config) { c.RoomWidth, c.RoomDepth, c.RoomHeight = 12, 9, 4 }},
		{"room at bounds", func(c *Config) { c.RoomWidth, c.RoomDepth, c.RoomHeight = MinRoomDim, MinRoomDim, MinRoomDim }},
		{"zero mobility empty room", func(c *Config) {
			c.Occupants = -1
			c.Mobility.SpeedMin, c.Mobility.SpeedMax = 0, 0
		}},
		{"zero mobility single scripted", func(c *Config) {
			c.Scripted = true
			c.Mobility.SpeedMin, c.Mobility.SpeedMax = 0, 0
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validBase()
			tc.mut(&cfg)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("Validate rejected a legal config: %v", err)
			}
		})
	}
}

// TestGenerateScaledRoom exercises the geometry axis end to end: a
// non-default room must generate, scale the movement area, and keep every
// occupant inside it.
func TestGenerateScaledRoom(t *testing.T) {
	cfg := validBase()
	cfg.RoomWidth, cfg.RoomDepth, cfg.RoomHeight = 12, 9, 3.5
	cfg.Occupants = 3
	cfg.PacketsPerSet = 6
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Room.Width != 12 || c.Room.Depth != 9 || c.Room.Height != 3.5 {
		t.Fatalf("room not scaled: %gx%gx%g", c.Room.Width, c.Room.Depth, c.Room.Height)
	}
	area := c.Room.MovementArea
	for _, p := range c.Sets[0].Packets {
		for _, pos := range append([]room.Vec3{p.Pos}, p.Others...) {
			if !area.Contains(pos.X, pos.Y) {
				t.Fatalf("occupant at (%g,%g) outside scaled movement area %+v", pos.X, pos.Y, area)
			}
		}
	}
}

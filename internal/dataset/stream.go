// Campaign store format v2: a versioned, checksummed, streaming container.
//
// Layout (all integers little-endian):
//
//	header:
//	  u32  magic "VVD2" (0x32445656)
//	  u32  format version (currently 3; v2 files remain readable — they
//	       differ only in lacking the per-packet extra-occupant positions)
//	  u32  config length N
//	  N    bytes: the complete Config as JSON (self-describing: every
//	       field that shapes reception regeneration travels with the file)
//	  u32  set count
//	  u32  CRC-32C over every preceding header byte
//	per set, in file order:
//	  u32  set index (1-based)
//	  u32  packet count
//	  u64  payload length P
//	  P    bytes: packets, bulk-encoded (see appendPacket); every float
//	       array (CIR vector, image) is preceded by zero padding to an
//	       8-byte boundary relative to the payload start
//	  u32  CRC-32C over the 16 set-header bytes plus the payload
//
// The alignment padding is what lets the decoder hand out CIR vectors and
// images that alias the set's payload buffer directly (zero copy, zero
// per-array allocation) on little-endian machines — see cursor.
//
// The per-set framing is what makes the store streamable: a Reader decodes
// one set at a time (O(one set) peak memory) and can skip a set it does
// not need by its payload length without decoding a single packet — which
// is also how `vvd-dataset -inspect` verifies checksums without decoding.
//
// Versioning/compat policy: the magic word selects the decoder family
// (legacy v1 files keep their original magic and route to the frozen v1
// codec in io.go), the version field gates layout changes within this
// family, and the JSON config tolerates unknown fields so adding a Config
// field is not a format break. Save always writes the newest version.

package dataset

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"slices"
	"unsafe"

	"vvd/internal/room"
)

// nativeLittleEndian reports whether this machine's memory order matches
// the on-disk little-endian layout. When it does (amd64, arm64, …), the
// float payload codecs degenerate to memcpy: a typed slice is viewed as
// raw bytes through unsafe.Slice — always via the typed side's own backing
// array, so alignment is preserved and the conversion is checkptr-clean —
// and copied in one pass instead of one Float{32,64}bits round trip per
// value. Big-endian machines fall back to the portable per-value loop.
var nativeLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// f32Bytes returns the raw byte view of a float32 slice (len > 0).
func f32Bytes(v []float32) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
}

// c128Bytes returns the raw byte view of a complex128 slice (len > 0); the
// in-memory layout (real then imaginary float64 per element) matches the
// on-disk interleaving.
func c128Bytes(v []complex128) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 16*len(v))
}

// campaignMagicV2 identifies the v2 container family ("VVD2"). Versions 2
// and 3 share this magic; the header's version field selects the payload
// layout (v3 added per-packet extra-occupant positions).
const campaignMagicV2 = 0x32445656

// campaignVersion is the layout revision written by Save.
const campaignVersion = 3

// minReadVersion is the oldest VVD2-family layout this build decodes.
const minReadVersion = 2

// Decoder sanity limits: corrupt or hostile length fields are rejected
// before any allocation larger than these bounds.
const (
	maxCIRLen        = 4096       // complex taps per stored vector
	maxImagePixels   = 10_000_000 // float32 pixels per depth image
	maxPacketsPerSet = 1_000_000  // packets in one measurement set
	maxSets          = 65535      // sets per campaign
	maxSetPayload    = 1 << 30    // bytes of one set's encoded packets
	maxConfigJSON    = 1 << 20    // bytes of the serialized Config
	maxOccupants     = 64         // occupants per campaign (Config + per-packet positions)
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer streams a campaign to disk set-at-a-time in format v2. The header
// is written on construction; call WriteSet once per measurement set and
// Close to flush. Peak memory is one encoded set.
type Writer struct {
	bw       *bufio.Writer
	declared int
	written  int
	seen     []bool // set indices already written; readers reject duplicates
	buf      []byte
	closed   bool
}

// NewWriter writes the v2 header for a campaign with the given
// configuration and set count, returning a Writer for the set payloads.
func NewWriter(w io.Writer, cfg Config, sets int) (*Writer, error) {
	if sets < 0 || sets > maxSets {
		return nil, fmt.Errorf("dataset: campaign set count %d outside [0,%d]", sets, maxSets)
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("dataset: serializing config: %w", err)
	}
	if len(cfgJSON) > maxConfigJSON {
		return nil, fmt.Errorf("dataset: serialized config is %d bytes (max %d)", len(cfgJSON), maxConfigJSON)
	}
	sw := &Writer{bw: bufio.NewWriterSize(w, 1<<16), declared: sets, seen: make([]bool, sets)}
	hdr := appendU32(nil, campaignMagicV2)
	hdr = appendU32(hdr, campaignVersion)
	hdr = appendU32(hdr, uint32(len(cfgJSON)))
	hdr = append(hdr, cfgJSON...)
	hdr = appendU32(hdr, uint32(sets))
	hdr = appendU32(hdr, crc32.Checksum(hdr, castagnoli))
	if _, err := sw.bw.Write(hdr); err != nil {
		return nil, err
	}
	return sw, nil
}

// WriteSet encodes and appends one measurement set.
func (w *Writer) WriteSet(s *Set) error {
	if w.closed {
		return fmt.Errorf("dataset: WriteSet on closed Writer")
	}
	if w.written >= w.declared {
		return fmt.Errorf("dataset: campaign declared %d sets, got more", w.declared)
	}
	if s.Index < 1 || s.Index > w.declared {
		return fmt.Errorf("dataset: set index %d outside [1,%d]", s.Index, w.declared)
	}
	if w.seen[s.Index-1] {
		return fmt.Errorf("dataset: set index %d written twice", s.Index)
	}
	w.seen[s.Index-1] = true
	if len(s.Packets) > maxPacketsPerSet {
		return fmt.Errorf("dataset: set %d has %d packets (max %d)", s.Index, len(s.Packets), maxPacketsPerSet)
	}
	// Encode the 16-byte set header with a payload-length placeholder, then
	// the packets, then patch the length in.
	b := w.buf[:0]
	b = appendU32(b, uint32(s.Index))
	b = appendU32(b, uint32(len(s.Packets)))
	b = appendU64(b, 0)
	var err error
	for i := range s.Packets {
		if b, err = appendPacket(b, &s.Packets[i]); err != nil {
			return fmt.Errorf("dataset: set %d: %w", s.Index, err)
		}
	}
	payload := uint64(len(b) - 16)
	if payload > maxSetPayload {
		return fmt.Errorf("dataset: set %d payload is %d bytes (max %d)", s.Index, payload, maxSetPayload)
	}
	binary.LittleEndian.PutUint64(b[8:], payload)
	b = appendU32(b, crc32.Checksum(b, castagnoli))
	w.buf = b
	if _, err := w.bw.Write(b); err != nil {
		return err
	}
	w.written++
	return nil
}

// Close flushes the stream and verifies every declared set was written.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.written != w.declared {
		return fmt.Errorf("dataset: campaign declared %d sets, wrote %d", w.declared, w.written)
	}
	return w.bw.Flush()
}

// SetInfo describes one stored set without decoding its packets.
type SetInfo struct {
	Index        int
	Packets      int
	PayloadBytes int64
	Checksummed  bool // false for v1 files, which carry no CRCs
	CRCOK        bool
}

// Reader streams a stored campaign set-at-a-time. Obtain one with
// OpenCampaign; the header (config, set count) is available immediately,
// sets are decoded on demand by NextSet/ReadSet/ReadSets.
//
// v1 files are readable through the same interface, but since the v1
// layout is not skippable the whole campaign is materialized on open —
// only v2 files get the streaming memory profile.
type Reader struct {
	br      *bufio.Reader
	version int
	cfg     Config
	numSets int
	read    int // set records consumed from the stream
	buf     []byte

	v1 *Campaign // materialized legacy campaign, nil for v2
}

// OpenCampaign reads and validates a campaign header from r, dispatching
// on the magic word to the v2 streaming decoder or the legacy v1 codec.
func OpenCampaign(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading campaign magic: %w", err)
	}
	switch binary.LittleEndian.Uint32(magic[:]) {
	case campaignMagicV1:
		c, err := loadCampaignV1(br)
		if err != nil {
			return nil, err
		}
		return &Reader{version: 1, cfg: c.Cfg, numSets: len(c.Sets), v1: c}, nil
	case campaignMagicV2:
		// fall through to the v2 header below
	default:
		return nil, fmt.Errorf("dataset: bad campaign magic")
	}
	hdr := append([]byte(nil), magic[:]...)
	var fixed [8]byte
	if _, err := io.ReadFull(br, fixed[:]); err != nil {
		return nil, fmt.Errorf("dataset: truncated campaign header: %w", err)
	}
	hdr = append(hdr, fixed[:]...)
	version := binary.LittleEndian.Uint32(fixed[0:])
	cfgLen := binary.LittleEndian.Uint32(fixed[4:])
	if version < minReadVersion || version > campaignVersion {
		return nil, fmt.Errorf("dataset: campaign format version %d (this build reads %d-%d) — written by a newer tool?", version, minReadVersion, campaignVersion)
	}
	if cfgLen > maxConfigJSON {
		return nil, fmt.Errorf("dataset: implausible config length %d", cfgLen)
	}
	cfgJSON := make([]byte, cfgLen)
	if _, err := io.ReadFull(br, cfgJSON); err != nil {
		return nil, fmt.Errorf("dataset: truncated campaign config: %w", err)
	}
	hdr = append(hdr, cfgJSON...)
	var tail [8]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("dataset: truncated campaign header: %w", err)
	}
	hdr = append(hdr, tail[:4]...)
	numSets := binary.LittleEndian.Uint32(tail[0:])
	wantCRC := binary.LittleEndian.Uint32(tail[4:])
	if got := crc32.Checksum(hdr, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("dataset: campaign header checksum mismatch (stored %08x, computed %08x)", wantCRC, got)
	}
	if numSets > maxSets {
		return nil, fmt.Errorf("dataset: implausible set count %d", numSets)
	}
	var cfg Config
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return nil, fmt.Errorf("dataset: decoding campaign config: %w", err)
	}
	return &Reader{br: br, version: int(version), cfg: cfg, numSets: int(numSets)}, nil
}

// Version reports the on-disk format version (1, 2 or 3).
func (r *Reader) Version() int { return r.version }

// Config returns the stored campaign configuration.
func (r *Reader) Config() Config { return r.cfg }

// NumSets returns the number of stored measurement sets.
func (r *Reader) NumSets() int { return r.numSets }

// Shell rebuilds the simulation environment for the stored configuration:
// a Campaign whose Sets slice has one empty placeholder per stored set.
// Callers that stream sets can regenerate receptions against the shell
// (ReceptionPacket) without ever materializing the full campaign.
func (r *Reader) Shell() (*Campaign, error) {
	c, err := rebuildShell(r.cfg)
	if err != nil {
		return nil, err
	}
	c.Sets = make([]Set, r.numSets)
	for i := range c.Sets {
		c.Sets[i].Index = i + 1
	}
	return c, nil
}

// setHeader is the decoded 16-byte per-set framing plus its raw bytes
// (needed to continue the CRC over header and payload).
type setHeader struct {
	index   int
	packets int
	payload uint64
	raw     [16]byte
}

// readSetHeader consumes the next set's framing. Returns io.EOF once every
// declared set has been consumed; a short read mid-stream is an error.
func (r *Reader) readSetHeader() (setHeader, error) {
	var hdr setHeader
	if r.read >= r.numSets {
		return hdr, io.EOF
	}
	if _, err := io.ReadFull(r.br, hdr.raw[:]); err != nil {
		return hdr, fmt.Errorf("dataset: truncated set header: %w", err)
	}
	r.read++
	hdr.index = int(binary.LittleEndian.Uint32(hdr.raw[0:]))
	hdr.packets = int(binary.LittleEndian.Uint32(hdr.raw[4:]))
	hdr.payload = binary.LittleEndian.Uint64(hdr.raw[8:])
	if hdr.index < 1 || hdr.index > r.numSets {
		return hdr, fmt.Errorf("dataset: set index %d outside [1,%d]", hdr.index, r.numSets)
	}
	if hdr.packets > maxPacketsPerSet {
		return hdr, fmt.Errorf("dataset: implausible packet count %d in set %d", hdr.packets, hdr.index)
	}
	if hdr.payload > maxSetPayload {
		return hdr, fmt.Errorf("dataset: implausible payload length %d in set %d", hdr.payload, hdr.index)
	}
	return hdr, nil
}

// decodeBody reads, CRC-checks and decodes one set's payload. On
// little-endian machines the decoded float arrays alias the payload buffer
// (see cursor), so a fresh buffer is allocated per set and handed to the
// decoded Set as backing store; the portable fallback reuses r.buf.
func (r *Reader) decodeBody(hdr setHeader) (*Set, error) {
	need := int(hdr.payload)
	var payload []byte
	alias := nativeLittleEndian && need > 0
	if alias {
		payload = make([]byte, need)
		if uintptr(unsafe.Pointer(&payload[0]))%8 != 0 {
			alias = false // allocator gave an unaligned base; decode by copy
		}
	} else {
		if cap(r.buf) < need {
			r.buf = make([]byte, need)
		}
		payload = r.buf[:need]
	}
	// Interleave the read with the CRC in cache-sized chunks: checksumming
	// right after each chunk lands reads hot cache lines instead of
	// re-walking the whole (cold) payload in a second pass.
	got := crc32.Checksum(hdr.raw[:], castagnoli)
	for off := 0; off < need; {
		end := off + 1<<19
		if end > need {
			end = need
		}
		if _, err := io.ReadFull(r.br, payload[off:end]); err != nil {
			return nil, fmt.Errorf("dataset: truncated payload of set %d: %w", hdr.index, err)
		}
		got = crc32.Update(got, castagnoli, payload[off:end])
		off = end
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r.br, trailer[:]); err != nil {
		return nil, fmt.Errorf("dataset: truncated checksum of set %d: %w", hdr.index, err)
	}
	wantCRC := binary.LittleEndian.Uint32(trailer[:])
	if got != wantCRC {
		return nil, fmt.Errorf("dataset: set %d checksum mismatch (stored %08x, computed %08x)", hdr.index, wantCRC, got)
	}
	set := &Set{Index: hdr.index, Packets: make([]Packet, hdr.packets)}
	cur := cursor{data: payload, alias: alias}
	for k := range set.Packets {
		if err := decodePacket(&cur, &set.Packets[k], r.version); err != nil {
			return nil, fmt.Errorf("dataset: set %d packet %d: %w", hdr.index, k, err)
		}
	}
	if cur.off != len(payload) {
		return nil, fmt.Errorf("dataset: set %d has %d trailing payload bytes", hdr.index, len(payload)-cur.off)
	}
	return set, nil
}

// skipBody discards one set's payload and checksum without decoding.
func (r *Reader) skipBody(hdr setHeader) error {
	left := hdr.payload + 4
	for left > 0 {
		chunk := left
		if chunk > 1<<20 {
			chunk = 1 << 20
		}
		n, err := r.br.Discard(int(chunk))
		left -= uint64(n)
		if err != nil {
			return fmt.Errorf("dataset: truncated payload of set %d: %w", hdr.index, err)
		}
	}
	return nil
}

// verifyBody streams one set's payload through the CRC without decoding,
// reporting whether the stored checksum matches.
func (r *Reader) verifyBody(hdr setHeader) (bool, error) {
	if cap(r.buf) < 1<<16 {
		r.buf = make([]byte, 1<<16)
	}
	scratch := r.buf[:1<<16]
	sum := crc32.Checksum(hdr.raw[:], castagnoli)
	left := hdr.payload
	for left > 0 {
		chunk := uint64(len(scratch))
		if chunk > left {
			chunk = left
		}
		n, err := io.ReadFull(r.br, scratch[:chunk])
		if err != nil {
			return false, fmt.Errorf("dataset: truncated payload of set %d: %w", hdr.index, err)
		}
		sum = crc32.Update(sum, castagnoli, scratch[:n])
		left -= uint64(n)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r.br, trailer[:]); err != nil {
		return false, fmt.Errorf("dataset: truncated checksum of set %d: %w", hdr.index, err)
	}
	return binary.LittleEndian.Uint32(trailer[:]) == sum, nil
}

// NextSet decodes the next stored set, returning io.EOF after the last.
func (r *Reader) NextSet() (*Set, error) {
	if r.v1 != nil {
		if r.read >= len(r.v1.Sets) {
			return nil, io.EOF
		}
		set := &r.v1.Sets[r.read]
		r.read++
		return set, nil
	}
	hdr, err := r.readSetHeader()
	if err != nil {
		return nil, err
	}
	return r.decodeBody(hdr)
}

// SkipSet discards the next stored set without decoding it (v2; a v1 set
// is already materialized and merely stepped over), returning its index.
func (r *Reader) SkipSet() (int, error) {
	if r.v1 != nil {
		if r.read >= len(r.v1.Sets) {
			return 0, io.EOF
		}
		idx := r.v1.Sets[r.read].Index
		r.read++
		return idx, nil
	}
	hdr, err := r.readSetHeader()
	if err != nil {
		return 0, err
	}
	return hdr.index, r.skipBody(hdr)
}

// ReadSet scans forward for the set with the given 1-based index, skipping
// (without decoding) every set before it. Peak memory is one decoded set.
func (r *Reader) ReadSet(id int) (*Set, error) {
	if id < 1 || id > r.numSets {
		return nil, fmt.Errorf("dataset: set %d out of range (campaign has %d)", id, r.numSets)
	}
	for {
		if r.v1 != nil {
			set, err := r.NextSet()
			if err == io.EOF {
				return nil, fmt.Errorf("dataset: set %d not found in stream", id)
			}
			if err != nil {
				return nil, err
			}
			if set.Index == id {
				return set, nil
			}
			continue
		}
		hdr, err := r.readSetHeader()
		if err == io.EOF {
			return nil, fmt.Errorf("dataset: set %d not found in stream", id)
		}
		if err != nil {
			return nil, err
		}
		if hdr.index == id {
			return r.decodeBody(hdr)
		}
		if err := r.skipBody(hdr); err != nil {
			return nil, err
		}
	}
}

// ReadSets materializes the remaining sets into a full Campaign. A non-nil
// keep predicate selects which set indices to decode; the rest are skipped
// and left as empty placeholders, so e.g. a training run can stream in
// only a combination's training+validation sets. keep == nil decodes all.
func (r *Reader) ReadSets(keep func(setID int) bool) (*Campaign, error) {
	if r.v1 != nil {
		c := r.v1
		if keep != nil {
			for i := range c.Sets {
				if !keep(c.Sets[i].Index) {
					c.Sets[i].Packets = nil
				}
			}
		}
		r.read = len(c.Sets)
		return c, nil
	}
	c, err := r.Shell()
	if err != nil {
		return nil, err
	}
	seen := make([]bool, r.numSets)
	for {
		hdr, err := r.readSetHeader()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if seen[hdr.index-1] {
			return nil, fmt.Errorf("dataset: duplicate set %d in stream", hdr.index)
		}
		seen[hdr.index-1] = true
		if keep != nil && !keep(hdr.index) {
			if err := r.skipBody(hdr); err != nil {
				return nil, err
			}
			continue
		}
		set, err := r.decodeBody(hdr)
		if err != nil {
			return nil, err
		}
		c.Sets[hdr.index-1] = *set
	}
	return c, nil
}

// Inspect walks the remaining sets verifying framing and checksums without
// decoding any packet, and returns one SetInfo per set. For v1 files (no
// framing, no checksums) it reports the already-materialized set shapes.
func (r *Reader) Inspect() ([]SetInfo, error) {
	var out []SetInfo
	if r.v1 != nil {
		for ; r.read < len(r.v1.Sets); r.read++ {
			s := &r.v1.Sets[r.read]
			out = append(out, SetInfo{Index: s.Index, Packets: len(s.Packets)})
		}
		return out, nil
	}
	for {
		hdr, err := r.readSetHeader()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		ok, err := r.verifyBody(hdr)
		if err != nil {
			return nil, err
		}
		out = append(out, SetInfo{
			Index:        hdr.index,
			Packets:      hdr.packets,
			PayloadBytes: int64(hdr.payload),
			Checksummed:  true,
			CRCOK:        ok,
		})
	}
}

// ---------------------------------------------------------------------------
// bulk packet codec

// appendU32/appendU64/appendF64 are the little-endian append primitives.
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// growBy extends b by n bytes and returns the slice; the new bytes are the
// caller's to fill.
func growBy(b []byte, n int) []byte {
	return slices.Grow(b, n)[:len(b)+n]
}

var padZeros [8]byte

// appendAlign8 pads b with zeros to the next 8-byte boundary. WriteSet
// encodes the (16-byte, hence boundary-preserving) set header into the
// same buffer, so alignment here equals alignment relative to the payload
// start, which is what the decoder's align8 mirrors.
func appendAlign8(b []byte) []byte {
	if pad := (8 - len(b)%8) % 8; pad > 0 {
		b = append(b, padZeros[:pad]...)
	}
	return b
}

// appendCVec bulk-encodes a complex vector as a length prefix plus
// interleaved real/imaginary float64 pairs — one buffer write instead of
// one reflective binary.Write per float (the v1 hot-path bottleneck).
func appendCVec(b []byte, v []complex128) ([]byte, error) {
	if len(v) > maxCIRLen {
		return nil, fmt.Errorf("CIR vector has %d taps (max %d)", len(v), maxCIRLen)
	}
	b = appendU32(b, uint32(len(v)))
	if len(v) == 0 {
		return b, nil
	}
	b = appendAlign8(b)
	off := len(b)
	b = growBy(b, 16*len(v))
	dst := b[off:]
	if nativeLittleEndian {
		copy(dst, c128Bytes(v))
		return b, nil
	}
	for i, x := range v {
		binary.LittleEndian.PutUint64(dst[16*i:], math.Float64bits(real(x)))
		binary.LittleEndian.PutUint64(dst[16*i+8:], math.Float64bits(imag(x)))
	}
	return b, nil
}

// appendImage bulk-encodes one depth image as a length prefix plus raw
// float32 pixels.
func appendImage(b []byte, img []float32) ([]byte, error) {
	if len(img) > maxImagePixels {
		return nil, fmt.Errorf("image has %d pixels (max %d)", len(img), maxImagePixels)
	}
	b = appendU32(b, uint32(len(img)))
	if len(img) == 0 {
		return b, nil
	}
	b = appendAlign8(b)
	off := len(b)
	b = growBy(b, 4*len(img))
	dst := b[off:]
	if nativeLittleEndian {
		copy(dst, f32Bytes(img))
		return b, nil
	}
	for i, v := range img {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
	}
	return b, nil
}

// appendOthers encodes the extra-occupant positions introduced by format
// v3: a count prefix plus three float64 coordinates per occupant.
func appendOthers(b []byte, others []room.Vec3) ([]byte, error) {
	if len(others) > maxOccupants-1 {
		return nil, fmt.Errorf("packet records %d extra occupants (max %d)", len(others), maxOccupants-1)
	}
	b = appendU32(b, uint32(len(others)))
	for _, o := range others {
		b = appendF64(b, o.X)
		b = appendF64(b, o.Y)
		b = appendF64(b, o.Z)
	}
	return b, nil
}

// appendPacket encodes one packet into b (always in the newest layout).
func appendPacket(b []byte, p *Packet) ([]byte, error) {
	b = appendU32(b, uint32(p.Index))
	b = appendU32(b, uint32(p.SeqNum))
	b = appendU64(b, p.LinkSeed)
	var flags byte
	if p.PreambleDetected {
		flags |= 1
	}
	b = append(b, flags)
	for _, f := range [...]float64{p.Time, p.Pos.X, p.Pos.Y, p.Pos.Z, p.SyncPeak} {
		b = appendF64(b, f)
	}
	var err error
	if b, err = appendOthers(b, p.Others); err != nil {
		return nil, err
	}
	for _, vec := range [...][]complex128{p.TrueCIR, p.Perfect, p.PerfectAligned, p.PreambleEst} {
		if b, err = appendCVec(b, vec); err != nil {
			return nil, err
		}
	}
	for lag := ImageLag(0); lag < numLags; lag++ {
		if b, err = appendImage(b, p.Images[lag]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// cursor decodes from a CRC-verified payload buffer. Every read is bounds-
// checked against the remaining payload before any allocation, so corrupt
// length fields (which the CRC already makes vanishingly unlikely) cannot
// trigger oversized allocations.
//
// When alias is set (native little-endian machine, 8-byte-aligned payload
// buffer), float arrays are returned as typed views directly into the
// payload — the format's alignment padding makes every array start on an
// 8-byte boundary, so the unsafe.Slice conversions are alignment-correct
// (and checkptr-clean under -race). The decoded set then shares the
// payload buffer as backing store: holding any one vector keeps the whole
// set's payload alive, which matches how the pipeline consumes sets.
type cursor struct {
	data  []byte
	off   int
	alias bool
}

var errShortPayload = fmt.Errorf("payload shorter than encoded lengths claim")

func (c *cursor) take(n int) ([]byte, error) {
	if n < 0 || len(c.data)-c.off < n {
		return nil, errShortPayload
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b, nil
}

// align8 consumes the writer's padding to the next 8-byte boundary.
func (c *cursor) align8() error {
	if pad := (8 - c.off%8) % 8; pad > 0 {
		_, err := c.take(pad)
		return err
	}
	return nil
}

func (c *cursor) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *cursor) u64() (uint64, error) {
	b, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (c *cursor) f64() (float64, error) {
	v, err := c.u64()
	return math.Float64frombits(v), err
}

func (c *cursor) cvec() ([]complex128, error) {
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	if n > maxCIRLen {
		return nil, fmt.Errorf("implausible CIR length %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	if err := c.align8(); err != nil {
		return nil, err
	}
	raw, err := c.take(16 * int(n))
	if err != nil {
		return nil, err
	}
	var out []complex128
	if c.alias {
		out = unsafe.Slice((*complex128)(unsafe.Pointer(&raw[0])), n)
	} else {
		out = make([]complex128, n)
		if nativeLittleEndian {
			copy(c128Bytes(out), raw)
		} else {
			for i := range out {
				re := math.Float64frombits(binary.LittleEndian.Uint64(raw[16*i:]))
				im := math.Float64frombits(binary.LittleEndian.Uint64(raw[16*i+8:]))
				out[i] = complex(re, im)
			}
		}
	}
	// Same sanity gate as the v1 loader: a NaN tap would otherwise surface
	// as NaN losses and metrics far from the persistence layer.
	for _, x := range out {
		if math.IsNaN(real(x)) || math.IsNaN(imag(x)) {
			return nil, fmt.Errorf("NaN in stored CIR")
		}
	}
	return out, nil
}

// others decodes the extra-occupant positions of a v3 packet. The bound on
// the count caps the allocation at a few hundred bytes; like every cursor
// read, the coordinate bytes are length-checked before use, so a corrupt
// count cannot over-allocate.
func (c *cursor) others() ([]room.Vec3, error) {
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > maxOccupants-1 {
		return nil, fmt.Errorf("implausible occupant count %d", n)
	}
	out := make([]room.Vec3, n)
	for i := range out {
		if out[i].X, err = c.f64(); err != nil {
			return nil, err
		}
		if out[i].Y, err = c.f64(); err != nil {
			return nil, err
		}
		if out[i].Z, err = c.f64(); err != nil {
			return nil, err
		}
		if math.IsNaN(out[i].X) || math.IsNaN(out[i].Y) || math.IsNaN(out[i].Z) {
			return nil, fmt.Errorf("NaN in stored occupant position")
		}
	}
	return out, nil
}

func (c *cursor) image() ([]float32, error) {
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	if n > maxImagePixels {
		return nil, fmt.Errorf("implausible image size %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	if err := c.align8(); err != nil {
		return nil, err
	}
	raw, err := c.take(4 * int(n))
	if err != nil {
		return nil, err
	}
	if c.alias {
		return unsafe.Slice((*float32)(unsafe.Pointer(&raw[0])), n), nil
	}
	out := make([]float32, n)
	if nativeLittleEndian {
		copy(f32Bytes(out), raw)
		return out, nil
	}
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

// decodePacket mirrors appendPacket; version selects the layout (v2
// payloads predate the extra-occupant positions).
func decodePacket(c *cursor, p *Packet, version int) error {
	idx, err := c.u32()
	if err != nil {
		return err
	}
	p.Index = int(idx)
	seq, err := c.u32()
	if err != nil {
		return err
	}
	p.SeqNum = byte(seq)
	if p.LinkSeed, err = c.u64(); err != nil {
		return err
	}
	flags, err := c.take(1)
	if err != nil {
		return err
	}
	p.PreambleDetected = flags[0]&1 != 0
	var f [5]float64
	for i := range f {
		if f[i], err = c.f64(); err != nil {
			return err
		}
	}
	p.Time, p.Pos.X, p.Pos.Y, p.Pos.Z, p.SyncPeak = f[0], f[1], f[2], f[3], f[4]
	if version >= 3 {
		if p.Others, err = c.others(); err != nil {
			return err
		}
	}
	if p.TrueCIR, err = c.cvec(); err != nil {
		return err
	}
	if p.Perfect, err = c.cvec(); err != nil {
		return err
	}
	if p.PerfectAligned, err = c.cvec(); err != nil {
		return err
	}
	if p.PreambleEst, err = c.cvec(); err != nil {
		return err
	}
	for lag := ImageLag(0); lag < numLags; lag++ {
		if p.Images[lag], err = c.image(); err != nil {
			return err
		}
	}
	return nil
}

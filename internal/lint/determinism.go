package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism rejects ambient-nondeterminism sources inside the packages
// whose seed → world → metrics contract must be a pure function: the
// process-global math/rand RNG (unseeded, shared), the wall clock
// (time.Now/Since/Until), and crypto/rand (nondeterministic by design).
// Seeded generators (rand.New(rand.NewPCG(...))) remain the only
// sanctioned randomness. Timing-only call sites (progress meters) opt
// out per line with //vvdlint:allow determinism -- reason.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clock, global math/rand, and crypto/rand in deterministic packages",
	Run:  runDeterminism,
}

// deterministicPkgs lists every package participating in the byte-exact
// replay contract (PRs 1, 4, 5, 7). internal/serve is deliberately
// absent: it is wall-clock-facing by design and injects time through its
// Clock field. cmd/* and examples/* mains are also outside the set.
var deterministicPkgs = map[string]bool{
	"vvd/internal/camera":         true,
	"vvd/internal/channel":        true,
	"vvd/internal/core":           true,
	"vvd/internal/dataset":        true,
	"vvd/internal/dsp":            true,
	"vvd/internal/dsp/fft":        true,
	"vvd/internal/estimate":       true,
	"vvd/internal/experiments":    true,
	"vvd/internal/kalman":         true,
	"vvd/internal/mathx":          true,
	"vvd/internal/mathx/gemm":     true,
	"vvd/internal/metrics":        true,
	"vvd/internal/nn":             true,
	"vvd/internal/phy":            true,
	"vvd/internal/report":         true,
	"vvd/internal/room":           true,
	"vvd/internal/scenario":       true,
	"vvd/internal/store":          true,
	"vvd/internal/store/registry": true,
}

func runDeterminism(pass *Pass) error {
	if !deterministicPkgs[basePkgPath(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "crypto/rand":
				pass.Reportf(id.Pos(), "use of crypto/rand.%s in deterministic package %s: crypto/rand is nondeterministic by design; derive randomness from a seeded rand.New(rand.NewPCG(...))", obj.Name(), pass.Pkg.Path())
			case "math/rand", "math/rand/v2":
				f, ok := obj.(*types.Func)
				if !ok {
					return true
				}
				if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // method on *rand.Rand etc. — seeded, fine
				}
				if strings.HasPrefix(f.Name(), "New") {
					return true // constructors (New, NewPCG, NewChaCha8, ...)
				}
				pass.Reportf(id.Pos(), "call of global %s.%s in deterministic package %s: the process-global RNG is auto-seeded and shared; thread a seeded *rand.Rand instead", obj.Pkg().Path(), f.Name(), pass.Pkg.Path())
			case "time":
				f, ok := obj.(*types.Func)
				if !ok || !pkgFuncNamed(f, "time", "Now", "Since", "Until") {
					return true
				}
				pass.Reportf(id.Pos(), "call of time.%s in deterministic package %s: wall-clock reads break seed→output replay; inject a clock or move timing to the caller", f.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

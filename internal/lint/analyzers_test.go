package lint_test

import (
	"testing"

	"vvd/internal/lint"
	"vvd/internal/lint/linttest"
)

// Each analyzer replays over its testdata corpus: every // want line must
// be reported, every other line must be silent, and at least one
// directive-suppressed (allowlisted) finding must have fired.

func TestDeterminism(t *testing.T) {
	suppressed := linttest.Run(t, lint.Determinism,
		"vvd/internal/dsp",   // deterministic package: rand/time/crypto findings
		"vvd/internal/serve", // wall-clock-facing by policy: silent
	)
	if suppressed < 1 {
		t.Errorf("expected the allow directive to suppress at least one finding, got %d", suppressed)
	}
}

func TestMapOrder(t *testing.T) {
	suppressed := linttest.Run(t, lint.MapOrder, "vvd/maporder")
	if suppressed < 1 {
		t.Errorf("expected the allow directive to suppress at least one finding, got %d", suppressed)
	}
}

func TestFloatCmp(t *testing.T) {
	suppressed := linttest.Run(t, lint.FloatCmp, "vvd/floatcmp")
	if suppressed != 2 {
		t.Errorf("expected both bitexact spellings to suppress one finding each, got %d", suppressed)
	}
}

func TestCloseCheck(t *testing.T) {
	suppressed := linttest.Run(t, lint.CloseCheck, "vvd/closecheck")
	if suppressed < 1 {
		t.Errorf("expected the allow directive to suppress at least one finding, got %d", suppressed)
	}
}

func TestDepFence(t *testing.T) {
	suppressed := linttest.Run(t, lint.DepFence,
		"vvd/internal/mathx",  // leaf importing serve: violation
		"vvd/internal/rogue",  // not in the table: violation
		"vvd/internal/kalman", // violation under an allow directive: suppressed
		"vvd/internal/report", // allowed edge report → metrics: silent
	)
	if suppressed != 1 {
		t.Errorf("expected exactly the kalman directive suppression, got %d", suppressed)
	}
}

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Config controls Load.
type Config struct {
	// Dir is the module root the patterns are resolved in.
	Dir string
	// Patterns are go-list package patterns (default "./...").
	Patterns []string
	// Tests includes in-package test files and external _test packages.
	Tests bool
}

// Load resolves the patterns with the go tool and type-checks every
// matched module package from source. Dependencies outside the module
// (the standard library) are imported from the build cache's export data
// via `go list -export`, so loading works fully offline.
func Load(cfg Config) ([]*Package, error) {
	if len(cfg.Patterns) == 0 {
		cfg.Patterns = []string{"./..."}
	}
	entries, err := goList(cfg)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{} // stdlib import path → export data file
	units := map[string]*listEntry{}
	for _, e := range entries {
		switch {
		case e.Standard:
			if e.Export != "" {
				exports[e.ImportPath] = e.Export
			}
		case strings.HasSuffix(e.ImportPath, ".test"):
			// Synthesized test-main package; nothing to lint.
		default:
			path := normalizePath(e.ImportPath)
			e.Imports = normalizeImports(e.Imports)
			// Prefer the test-augmented variant of a package (its
			// GoFiles include the in-package _test.go files).
			if prev, ok := units[path]; !ok || (e.ForTest != "" && prev.ForTest == "") {
				units[path] = e
			}
		}
	}

	paths := make([]string, 0, len(units))
	for p := range units {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	order, err := topoSort(paths, units)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	checker := newChecker(fset, exports)
	var pkgs []*Package
	for _, path := range order {
		e := units[path]
		var files []*ast.File
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, err := checker.check(path, files)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	Export     string
	ForTest    string
	GoFiles    []string
	Imports    []string
}

func goList(cfg Config) ([]*listEntry, error) {
	args := []string{"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Standard,Export,ForTest,GoFiles,Imports"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, cfg.Patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var entries []*listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		e := new(listEntry)
		if err := dec.Decode(e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// normalizePath strips the " [pkg.test]" variant suffix go list -test
// attaches to in-package and external test units.
func normalizePath(p string) string {
	if i := strings.IndexByte(p, ' '); i >= 0 {
		return p[:i]
	}
	return p
}

func normalizeImports(imps []string) []string {
	out := imps[:0]
	for _, im := range imps {
		out = append(out, normalizePath(im))
	}
	return out
}

// topoSort orders the module packages so every package is checked after
// its intra-module dependencies. External test packages depend on their
// base package implicitly via Imports, so no special casing is needed.
func topoSort(paths []string, units map[string]*listEntry) ([]string, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("import cycle through %s", p)
		}
		state[p] = grey
		e := units[p]
		for _, im := range e.Imports {
			if _, ok := units[im]; ok && im != p {
				if err := visit(im); err != nil {
					return err
				}
			}
		}
		state[p] = black
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// checker type-checks module packages in dependency order, serving
// already-checked module packages and standard-library export data to
// the importer.
type checker struct {
	fset    *token.FileSet
	checked map[string]*types.Package
	std     types.Importer
}

func newChecker(fset *token.FileSet, exports map[string]string) *checker {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &checker{
		fset:    fset,
		checked: map[string]*types.Package{},
		std:     importer.ForCompiler(fset, "gc", lookup),
	}
}

func (c *checker) Import(path string) (*types.Package, error) {
	if pkg, ok := c.checked[path]; ok {
		return pkg, nil
	}
	return c.std.Import(path)
}

func (c *checker) check(path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: c,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	pkg, err := conf.Check(path, c.fset, files, info)
	if err != nil {
		return nil, err
	}
	c.checked[path] = pkg
	return &Package{PkgPath: path, Fset: c.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Package linttest replays lint analyzers over testdata corpora with
// analysistest-style expectations: a comment
//
//	// want `regexp` [`regexp` ...]
//
// on a source line asserts that the analyzer reports a diagnostic on
// that line matching each regexp, in order. Lines without a want comment
// must produce no diagnostic — so a line carrying only a suppression
// directive doubles as the analyzer's negative (allowlisted) case.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"vvd/internal/lint"
)

// Run loads the testdata/src tree below the test's working directory,
// applies the analyzer to the named packages, and matches diagnostics
// against the // want expectations in their sources. It returns the
// number of diagnostics suppressed by directives so callers can assert
// their negative (allowlisted) cases actually fired.
func Run(t *testing.T, analyzer *lint.Analyzer, pkgPaths ...string) (suppressed int) {
	t.Helper()
	pkgs, err := lint.LoadTree(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	byPath := map[string]*lint.Package{}
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	var targets []*lint.Package
	for _, pp := range pkgPaths {
		p, ok := byPath[pp]
		if !ok {
			t.Fatalf("package %q not found under testdata/src", pp)
		}
		targets = append(targets, p)
	}

	diags, suppressed, err := lint.Run(targets, []*lint.Analyzer{analyzer})
	if err != nil {
		t.Fatalf("running %s: %v", analyzer.Name, err)
	}

	wants := collectWants(t, targets)
	for _, d := range diags {
		key := posKey{d.Pos.Filename, d.Pos.Line}
		ws := wants[key]
		matched := false
		for _, w := range ws {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", analyzer.Name, d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", analyzer.Name, key.file, key.line, w.re)
			}
		}
	}
	return suppressed
}

type posKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants scans the target packages' comments for want expectations.
func collectWants(t *testing.T, pkgs []*lint.Package) map[posKey][]*want {
	t.Helper()
	wants := map[posKey][]*want{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					body, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					exprs, err := splitWant(body)
					if err != nil {
						t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
					}
					for _, e := range exprs {
						re, err := regexp.Compile(e)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, e, err)
						}
						key := posKey{pos.Filename, pos.Line}
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants
}

// splitWant extracts the quoted or backquoted regexps of a want clause.
func splitWant(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want expectation must be a \" or ` quoted regexp, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want regexp in %q", s)
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[2+end:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want clause")
	}
	return out, nil
}

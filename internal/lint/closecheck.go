package lint

import (
	"go/ast"
	"go/types"
)

// CloseCheck flags writable resources — files from os.Create/os.OpenFile,
// buffered and compressing writers — whose Close (or Flush, for writers
// that only flush) error is discarded on the success path. For buffered
// output, Close/Flush is where short writes and full disks surface; the
// `defer f.Close()` idiom silently truncates output exactly then (the
// bug class PR 3 fixed by hand in vvd-train and vvd-dataset).
//
// Not flagged: closes whose error is assigned or checked, bare closes
// inside an `if err != nil` cleanup branch (the error path is already
// failing), and bare/deferred closes of a resource that also has a
// checked Close later in the same function (the deferred close is then
// the error-path backstop of the standard create→write→close shape).
// Genuine fire-and-forget sites opt out with
// //vvdlint:allow closecheck -- reason.
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc:  "forbid discarding the Close/Flush error of writable resources",
	Run:  runCloseCheck,
}

// closeMethodOf maps creator functions (pkg path, func name) to the
// method whose error must be checked on the value they return.
var closeMethodOf = map[[2]string]string{
	{"os", "Create"}:                    "Close",
	{"os", "OpenFile"}:                  "Close",
	{"bufio", "NewWriter"}:              "Flush",
	{"bufio", "NewWriterSize"}:          "Flush",
	{"compress/gzip", "NewWriter"}:      "Close",
	{"compress/gzip", "NewWriterLevel"}: "Close",
	{"compress/zlib", "NewWriter"}:      "Close",
	{"compress/zlib", "NewWriterLevel"}: "Close",
	{"compress/flate", "NewWriter"}:     "Close",
	{"archive/zip", "NewWriter"}:        "Close",
	{"archive/tar", "NewWriter"}:        "Close",
}

func runCloseCheck(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCloses(pass, fn.Body)
		}
	}
	return nil
}

type closeSite struct {
	call      *ast.CallExpr
	obj       types.Object
	deferred  bool
	onErrPath bool
}

func checkCloses(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: resources created in this function and the method to check.
	resources := map[types.Object]string{} // var → Close/Flush
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) == 0 {
			return true
		}
		// f, err := os.Create(...) and w := bufio.NewWriter(...) shapes:
		// the resource is always the first result.
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(as.Lhs) == 0 {
			return true
		}
		f := funcOf(pass.Info, call.Fun)
		if f == nil || f.Pkg() == nil {
			return true
		}
		method, tracked := closeMethodOf[[2]string{f.Pkg().Path(), f.Name()}]
		if !tracked {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj != nil {
			resources[obj] = method
		}
		return true
	})
	if len(resources) == 0 {
		return
	}

	// Pass 2: every Close/Flush call site on a tracked resource,
	// classified by whether its error is discarded and whether it sits
	// on an error-handling path.
	var discarded []closeSite
	checked := map[types.Object]bool{}
	var walk func(n ast.Node, errPath bool)
	classify := func(call *ast.CallExpr) (types.Object, bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil, false
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := pass.Info.Uses[id]
		method, tracked := resources[obj]
		if !tracked || sel.Sel.Name != method {
			return nil, false
		}
		return obj, true
	}
	walk = func(n ast.Node, errPath bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.IfStmt:
			walk(n.Init, errPath)
			walk(n.Cond, errPath)
			walk(n.Body, errPath || isErrCheck(pass.Info, n.Cond))
			walk(n.Else, errPath)
			return
		case *ast.DeferStmt:
			if obj, ok := classify(n.Call); ok {
				discarded = append(discarded, closeSite{call: n.Call, obj: obj, deferred: true, onErrPath: errPath})
				return
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if obj, ok := classify(call); ok {
					discarded = append(discarded, closeSite{call: call, obj: obj, onErrPath: errPath})
					return
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				obj, ok := classify(call)
				if !ok {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						discarded = append(discarded, closeSite{call: call, obj: obj, onErrPath: errPath})
						continue
					}
				}
				checked[obj] = true
			}
			return // rhs close calls are classified above; don't re-visit
		case *ast.CallExpr:
			// err := do(f.Close()) or if err := f.Close(); ... — a close
			// whose result flows anywhere else counts as checked.
			if obj, ok := classify(n); ok {
				checked[obj] = true
				return
			}
		}
		// Generic traversal.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			switch c.(type) {
			case *ast.IfStmt, *ast.DeferStmt, *ast.ExprStmt, *ast.AssignStmt, *ast.CallExpr:
				walk(c, errPath)
				return false
			}
			return true
		})
	}
	walk(body, false)

	for _, site := range discarded {
		if site.onErrPath || checked[site.obj] {
			continue // error-path cleanup, or backstop for a checked close
		}
		method := resources[site.obj]
		how := ""
		if site.deferred {
			how = "deferred "
		}
		pass.Reportf(site.call.Pos(), "%s%s error discarded on the success path: buffered writes surface short-write/full-disk errors only at %s; check it (keep a deferred close only as the error-path backstop)", how, method, method)
	}
}

// isErrCheck reports whether cond is (or contains) an `err != nil` test
// on an error-typed operand.
func isErrCheck(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		for _, pair := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			if id, ok := ast.Unparen(pair[1]).(*ast.Ident); ok && id.Name == "nil" {
				if t := info.Types[pair[0]].Type; t != nil && isErrorType(t) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}

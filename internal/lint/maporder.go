package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `for ... := range m` loops over maps whose iteration
// order leaks into ordered output: values appended to (or stored into) a
// slice that outlives the loop, printed through fmt/print, or sent on a
// channel — without a subsequent sort of the collected slice in the same
// function. Go randomizes map iteration order, so any such flow makes
// output nondeterministic run-to-run; this is exactly the bug class the
// registry Names() helpers hand-avoid by sorting before returning.
//
// Commutative aggregation (sums, counts, map-to-map copies) is not
// flagged. Loops that are genuinely order-insensitive opt out with
// //vvdlint:allow maporder -- reason.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid map-iteration order from reaching ordered output without a sort",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMapRanges(pass, fn.Body)
		}
	}
	return nil
}

func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		iterVars := rangeVarObjects(pass.Info, rng)
		if len(iterVars) == 0 {
			return true // `for range m` — iteration count only
		}
		sinks := findOrderSinks(pass, rng, iterVars)
		for _, s := range sinks {
			if s.sortable != "" && sortedAfter(pass, body, rng.End(), s.sortable) {
				continue
			}
			pass.Reportf(rng.For, "map iteration order reaches %s: Go randomizes map order, so the output is nondeterministic; sort the collected slice (sort.* / slices.Sort*) or iterate sorted keys", s.what)
			break // one report per loop
		}
		return true
	})
}

// rangeVarObjects returns the objects bound to the loop's key/value.
func rangeVarObjects(info *types.Info, rng *ast.RangeStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				vars[obj] = true // `for k = range m` assignment form
			}
		}
	}
	return vars
}

// An orderSink is one place map order escapes the loop. sortable names
// the destination slice expression when sorting it later would fix the
// order (append / indexed store); it is empty for print and send sinks,
// which are ordered the moment they execute.
type orderSink struct {
	what     string
	sortable string
}

func findOrderSinks(pass *Pass, rng *ast.RangeStmt, iterVars map[types.Object]bool) []orderSink {
	var sinks []orderSink
	usesIterVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && iterVars[pass.Info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if ok && isBuiltinAppend(pass.Info, call) && i < len(n.Lhs) {
					argsUse := false
					for _, a := range call.Args[1:] {
						if usesIterVar(a) {
							argsUse = true
						}
					}
					// values[k] = append(values[k], ...) with k the map key
					// is per-key deterministic: each key is visited once, so
					// every destination slice keeps the outer (non-map)
					// ordering regardless of iteration order.
					if ix, isIx := ast.Unparen(n.Lhs[i]).(*ast.IndexExpr); isIx {
						if t := pass.Info.Types[ix.X].Type; t != nil {
							if _, destMap := t.Underlying().(*types.Map); destMap && usesIterVar(ix.Index) {
								continue
							}
						}
					}
					if argsUse && declaredBefore(pass.Info, n.Lhs[i], rng.Pos()) {
						sinks = append(sinks, orderSink{
							what:     "a slice appended across iterations",
							sortable: types.ExprString(n.Lhs[i]),
						})
					}
				}
			}
			// Indexed store into an outer slice: s[i] = k.
			for i, lhs := range n.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				t := pass.Info.Types[ix.X].Type
				if t == nil {
					continue
				}
				switch t.Underlying().(type) {
				case *types.Slice, *types.Array:
				default:
					continue
				}
				if i < len(n.Rhs) && usesIterVar(n.Rhs[i]) && declaredBefore(pass.Info, ix.X, rng.Pos()) {
					sinks = append(sinks, orderSink{
						what:     "an indexed store into a slice",
						sortable: types.ExprString(ix.X),
					})
				}
			}
		case *ast.CallExpr:
			if f := funcOf(pass.Info, n.Fun); f != nil && isPrintSink(f) {
				for _, a := range n.Args {
					if usesIterVar(a) {
						sinks = append(sinks, orderSink{what: "a " + f.Pkg().Path() + "." + f.Name() + " call"})
						break
					}
				}
			}
		case *ast.SendStmt:
			if usesIterVar(n.Value) {
				sinks = append(sinks, orderSink{what: "a channel send"})
			}
		}
		return true
	})
	return sinks
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append" && len(call.Args) > 1
}

// isPrintSink reports whether f emits formatted output in call order.
func isPrintSink(f *types.Func) bool {
	if f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() {
	case "fmt":
		switch f.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	return false
}

// declaredBefore reports whether the root identifier of e names an object
// declared before pos — i.e. the destination outlives the loop body.
func declaredBefore(info *types.Info, e ast.Expr, pos token.Pos) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			return obj != nil && obj.Pos() < pos
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// sortedAfter reports whether a sort call mentioning dest appears after
// pos anywhere in the enclosing function body.
func sortedAfter(pass *Pass, body *ast.BlockStmt, pos token.Pos, dest string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		f := funcOf(pass.Info, call.Fun)
		if f == nil || f.Pkg() == nil {
			return true
		}
		isSort := f.Pkg().Path() == "sort" ||
			(f.Pkg().Path() == "slices" && strings.HasPrefix(f.Name(), "Sort"))
		if !isSort {
			return true
		}
		for _, a := range call.Args {
			if strings.Contains(types.ExprString(a), dest) {
				found = true
			}
		}
		return !found
	})
	return found
}

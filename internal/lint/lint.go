// Package lint is vvd's in-tree static-analysis framework. It mirrors the
// shape of golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic —
// but is built only on the standard library's go/ast and go/types so the
// repo stays dependency-free. cmd/vvd-lint drives the analyzers in this
// package over the module; linttest replays them over testdata corpora
// with analysistest-style "// want" expectations.
//
// The analyzers mechanically enforce the repo's reproduction invariants:
//
//	determinism — no wall clock or ambient RNG in deterministic packages
//	maporder    — no map-iteration-ordered output without a sort
//	floatcmp    — no bitwise float equality outside declared parity code
//	closecheck  — no discarded Close/Flush error on writable resources
//	depfence    — the package layering DAG, encoded as a checked table
//
// Findings are suppressed line-by-line with directive comments:
//
//	//vvdlint:allow <analyzer>[,<analyzer>...] -- reason
//	//vvdlint:bitexact -- reason   (alias for "allow floatcmp")
//	//lint:bitexact                (accepted spelling of the same)
//
// A directive suppresses diagnostics on its own line and on the line
// immediately following it, so both trailing and preceding placement work.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. It is the in-tree analogue
// of analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Package is one type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path ("vvd/internal/dsp"); external test
	// packages carry their real "_test" suffix.
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// A Pass carries one (analyzer, package) unit of work, like analysis.Pass.
type Pass struct {
	*Package
	Analyzer *Analyzer

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, with its position already resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// All returns the full vvd-lint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, MapOrder, FloatCmp, CloseCheck, DepFence}
}

// Run applies the analyzers to every package and returns the surviving
// diagnostics (sorted by position) plus the number suppressed by
// directives.
func Run(pkgs []*Package, analyzers []*Analyzer) (diags []Diagnostic, suppressed int, err error) {
	for _, pkg := range pkgs {
		dirs := directivesFor(pkg)
		for _, a := range analyzers {
			pass := &Pass{Package: pkg, Analyzer: a}
			pass.report = func(d Diagnostic) {
				if dirs.allows(a.Name, d.Pos) {
					suppressed++
					return
				}
				diags = append(diags, d)
			}
			if rerr := a.Run(pass); rerr != nil {
				return nil, 0, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, rerr)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, suppressed, nil
}

// directives maps filename → line → set of analyzer names allowed there.
type directives map[string]map[int]map[string]bool

func (ds directives) allows(analyzer string, pos token.Position) bool {
	lines := ds[pos.Filename]
	if lines == nil {
		return false
	}
	set := lines[pos.Line]
	return set[analyzer] || set["all"]
}

// directivesFor scans every comment in the package for suppression
// directives. Each directive covers its own source line and the next one.
func directivesFor(pkg *Package) directives {
	ds := directives{}
	add := func(pos token.Position, names []string) {
		lines := ds[pos.Filename]
		if lines == nil {
			lines = map[int]map[string]bool{}
			ds[pos.Filename] = lines
		}
		for _, ln := range []int{pos.Line, pos.Line + 1} {
			set := lines[ln]
			if set == nil {
				set = map[string]bool{}
				lines[ln] = set
			}
			for _, n := range names {
				set[n] = true
			}
		}
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if names := parseDirective(c.Text); names != nil {
					add(pkg.Fset.Position(c.Pos()), names)
				}
			}
		}
	}
	return ds
}

// parseDirective returns the analyzer names a comment allows, or nil if
// the comment is not a directive.
func parseDirective(text string) []string {
	body, ok := strings.CutPrefix(text, "//vvdlint:")
	if !ok {
		// The issue-specified spelling for the float opt-out.
		if strings.HasPrefix(text, "//lint:bitexact") {
			return []string{"floatcmp"}
		}
		return nil
	}
	// Strip a trailing "-- reason" clause.
	if i := strings.Index(body, "--"); i >= 0 {
		body = body[:i]
	}
	verb, rest, _ := strings.Cut(strings.TrimSpace(body), " ")
	switch verb {
	case "bitexact":
		return []string{"floatcmp"}
	case "allow":
		var names []string
		for _, n := range strings.Split(rest, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		return names
	}
	return nil
}

// basePkgPath strips the "_test" suffix an external test package carries,
// so per-package policy tables apply to a package's tests too.
func basePkgPath(path string) string {
	return strings.TrimSuffix(path, "_test")
}

// isTestFile reports whether the file at pos is a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// funcOf resolves an expression to the top-level *types.Func it denotes
// (for call targets like rand.Int64 or time.Now), or nil.
func funcOf(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		f, _ := info.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

// pkgFuncNamed reports whether f is a package-level function of pkgPath
// (no receiver) — optionally restricted to the given names.
func pkgFuncNamed(f *types.Func, pkgPath string, names ...string) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// underlyingBasic returns the underlying *types.Basic of t, or nil.
func underlyingBasic(t types.Type) *types.Basic {
	if t == nil {
		return nil
	}
	b, _ := t.Underlying().(*types.Basic)
	return b
}

package lint

import (
	"strconv"
	"strings"
)

// DepFence enforces the repo's layering DAG. Every internal package must
// appear in the table below with the exact set of intra-module imports
// it is allowed; an import outside the set — or a new internal package
// missing from the table — is a finding. The table is the architecture,
// checked: refactors cannot quietly invert a layer (e.g. dsp growing a
// dependency on experiments, or a generation package importing serve).
//
// Binaries (cmd/*) and examples may import any internal package through
// its public API but never each other. _test.go files and external test
// packages are exempt: tests may reach across layers for fixtures.
var DepFence = &Analyzer{
	Name: "depfence",
	Doc:  "enforce the package layering DAG against a checked import table",
	Run:  runDepFence,
}

const modulePrefix = "vvd/"

// depfenceTable is the layering DAG: package → allowed intra-module
// imports. Leaves (mathx, metrics, room, dsp/fft) import nothing.
// internal/serve sits above core and is never imported by the
// generation stack; internal/lint is a self-contained toolchain leaf.
var depfenceTable = map[string][]string{
	"vvd":                         {},
	"vvd/internal/mathx":          {},
	"vvd/internal/mathx/gemm":     {},
	"vvd/internal/metrics":        {},
	"vvd/internal/room":           {},
	"vvd/internal/dsp/fft":        {},
	"vvd/internal/dsp":            {"vvd/internal/dsp/fft"},
	"vvd/internal/phy":            {"vvd/internal/dsp"},
	"vvd/internal/camera":         {"vvd/internal/room"},
	"vvd/internal/report":         {"vvd/internal/metrics"},
	"vvd/internal/nn":             {"vvd/internal/mathx", "vvd/internal/mathx/gemm"},
	"vvd/internal/channel":        {"vvd/internal/dsp", "vvd/internal/phy", "vvd/internal/room"},
	"vvd/internal/estimate":       {"vvd/internal/channel", "vvd/internal/dsp", "vvd/internal/mathx", "vvd/internal/phy", "vvd/internal/room"},
	"vvd/internal/kalman":         {"vvd/internal/channel", "vvd/internal/mathx", "vvd/internal/phy", "vvd/internal/room"},
	"vvd/internal/dataset":        {"vvd/internal/camera", "vvd/internal/channel", "vvd/internal/dsp", "vvd/internal/estimate", "vvd/internal/phy", "vvd/internal/room"},
	"vvd/internal/core":           {"vvd/internal/camera", "vvd/internal/dataset", "vvd/internal/metrics", "vvd/internal/nn"},
	"vvd/internal/serve":          {"vvd/internal/core", "vvd/internal/dataset", "vvd/internal/nn"},
	"vvd/internal/wire":           {"vvd/internal/serve"},
	"vvd/internal/shard":          {"vvd/internal/wire"},
	"vvd/internal/scenario":       {"vvd/internal/channel", "vvd/internal/core", "vvd/internal/dataset", "vvd/internal/estimate", "vvd/internal/kalman", "vvd/internal/metrics", "vvd/internal/phy", "vvd/internal/room"},
	"vvd/internal/experiments":    {"vvd/internal/camera", "vvd/internal/channel", "vvd/internal/core", "vvd/internal/dataset", "vvd/internal/estimate", "vvd/internal/kalman", "vvd/internal/metrics", "vvd/internal/nn", "vvd/internal/phy", "vvd/internal/report", "vvd/internal/room", "vvd/internal/scenario"},
	"vvd/internal/store":          {"vvd/internal/dataset"},
	"vvd/internal/store/registry": {"vvd/internal/core", "vvd/internal/dataset", "vvd/internal/store"},
	"vvd/internal/lint":           {},
	"vvd/internal/lint/linttest":  {"vvd/internal/lint"},
}

func runDepFence(pass *Pass) error {
	path := pass.Pkg.Path()
	if strings.HasSuffix(path, "_test") {
		return nil // external test packages may reach across layers
	}
	isBinary := strings.HasPrefix(path, "vvd/cmd/") || strings.HasPrefix(path, "vvd/examples/")
	allowed, known := allowedSet(path)
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, imp := range file.Imports {
			target, err := strconv.Unquote(imp.Path.Value)
			if err != nil || (target != "vvd" && !strings.HasPrefix(target, modulePrefix)) {
				continue
			}
			switch {
			case isBinary:
				if strings.HasPrefix(target, "vvd/cmd/") || strings.HasPrefix(target, "vvd/examples/") {
					pass.Reportf(imp.Pos(), "binary package %s imports binary package %s: binaries share code through internal packages, never each other", path, target)
				}
			case !known:
				pass.Reportf(imp.Pos(), "package %s is not in the depfence layering table: add it to depfenceTable (internal/lint/depfence.go) with its allowed imports", path)
				return nil // one finding is enough to demand the table entry
			case !allowed[target]:
				pass.Reportf(imp.Pos(), "import of %s from %s violates the layering table: if the architecture really moved, update depfenceTable (internal/lint/depfence.go)", target, path)
			}
		}
	}
	return nil
}

func allowedSet(path string) (map[string]bool, bool) {
	imports, ok := depfenceTable[path]
	if !ok {
		return nil, false
	}
	set := make(map[string]bool, len(imports))
	for _, im := range imports {
		set[im] = true
	}
	return set, true
}

package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadTree type-checks every package under srcRoot, an analysistest-style
// testdata tree where the directory path below srcRoot is the package's
// import path (testdata/src/vvd/internal/dsp → "vvd/internal/dsp").
// Imports between testdata packages resolve inside the tree; anything
// else must be standard library and is imported from build-cache export
// data, exactly like Load.
func LoadTree(srcRoot string) ([]*Package, error) {
	fileSets := map[string][]string{} // import path → sorted file paths
	err := filepath.WalkDir(srcRoot, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(p, ".go") {
			return nil
		}
		rel, err := filepath.Rel(srcRoot, filepath.Dir(p))
		if err != nil {
			return err
		}
		ip := filepath.ToSlash(rel)
		fileSets[ip] = append(fileSets[ip], p)
		return nil
	})
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	parsed := map[string][]*ast.File{}
	units := map[string]*listEntry{}
	stdNeeded := map[string]bool{}
	paths := make([]string, 0, len(fileSets))
	for ip, files := range fileSets {
		sort.Strings(files)
		var asts []*ast.File
		var imports []string
		for _, f := range files {
			af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			asts = append(asts, af)
			for _, imp := range af.Imports {
				target, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					return nil, err
				}
				imports = append(imports, target)
			}
		}
		parsed[ip] = asts
		units[ip] = &listEntry{ImportPath: ip, Imports: imports}
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	for _, ip := range paths {
		for _, im := range units[ip].Imports {
			if _, inTree := units[im]; !inTree {
				stdNeeded[im] = true
			}
		}
	}

	exports, err := stdExports(stdNeeded)
	if err != nil {
		return nil, err
	}
	order, err := topoSort(paths, units)
	if err != nil {
		return nil, err
	}
	checker := newChecker(fset, exports)
	var pkgs []*Package
	for _, ip := range order {
		pkg, err := checker.check(ip, parsed[ip])
		if err != nil {
			return nil, fmt.Errorf("type-checking testdata package %s: %w", ip, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// stdExports resolves export-data files for the given standard-library
// packages and their dependency closure.
func stdExports(needed map[string]bool) (map[string]string, error) {
	if len(needed) == 0 {
		return nil, nil
	}
	patterns := make([]string, 0, len(needed))
	for p := range needed {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	entries, err := goList(Config{Patterns: patterns})
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}

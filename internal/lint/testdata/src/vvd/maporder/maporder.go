// Package maporder is a linttest corpus for map-iteration-order leaks.
package maporder

import (
	"fmt"
	"sort"
)

// Bad collects keys in map order and returns them unsorted.
func Bad(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order reaches a slice appended across iterations`
		keys = append(keys, k)
	}
	return keys
}

// BadPrint prints entries in map order.
func BadPrint(m map[string]int) {
	for k, v := range m { // want `map iteration order reaches a fmt\.Printf call`
		fmt.Printf("%s=%d\n", k, v)
	}
}

// Fill stores keys into a pre-sized slice, still in map order.
func Fill(m map[string]int) []string {
	out := make([]string, len(m))
	i := 0
	for k := range m { // want `map iteration order reaches an indexed store into a slice`
		out[i] = k
		i++
	}
	return out
}

// Stream sends keys on a channel in map order.
func Stream(m map[string]int, ch chan<- string) {
	for k := range m { // want `map iteration order reaches a channel send`
		ch <- k
	}
}

// Sorted collects then sorts — the sanctioned shape; not reported.
func Sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PerKey groups values under their own key: each destination slice keeps
// the outer ordering regardless of iteration order; not reported.
func PerKey(groups map[string][]int, m map[string]int) map[string][]int {
	for k, v := range m {
		groups[k] = append(groups[k], v)
	}
	return groups
}

// Sum is commutative aggregation; not reported.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Allowed is a genuinely order-insensitive dump with the per-line
// opt-out; the report on the for line is suppressed.
func Allowed(m map[string]int) {
	//vvdlint:allow maporder -- diagnostic dump; consumer treats lines as a set
	for k := range m {
		fmt.Println(k)
	}
}

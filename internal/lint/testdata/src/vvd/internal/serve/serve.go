// Package serve is a linttest corpus standing in for the one wall-clock-
// facing internal package: it is outside the deterministic set, so the
// time.Now below must NOT be reported.
package serve

import "time"

// Now reads the wall clock; legal in this package by policy.
func Now() time.Time {
	return time.Now()
}

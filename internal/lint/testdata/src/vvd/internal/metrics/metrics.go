// Package metrics is a linttest corpus leaf: a real symbol for the
// report corpus to import through an allowed edge.
package metrics

// Mean averages xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

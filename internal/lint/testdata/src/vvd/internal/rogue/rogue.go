// Package rogue is a linttest corpus: an internal package that nobody
// added to the depfence table. Its first intra-module import demands a
// table entry.
package rogue

import (
	_ "vvd/internal/metrics" // want `package vvd/internal/rogue is not in the depfence layering table`
)

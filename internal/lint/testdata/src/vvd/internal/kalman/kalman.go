// Package kalman is a linttest corpus: the serve import below violates
// the table but carries an allow directive, so it must be suppressed.
package kalman

import (
	_ "vvd/internal/serve" //vvdlint:allow depfence -- linttest fixture for the suppressed path
)

// Package mathx is a linttest corpus: mathx is a leaf of the layering
// DAG, so importing serve inverts the architecture.
package mathx

import (
	_ "vvd/internal/serve" // want `import of vvd/internal/serve from vvd/internal/mathx violates the layering table`
)

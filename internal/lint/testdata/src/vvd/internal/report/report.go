// Package report is a linttest corpus: report → metrics is an edge the
// layering table allows, so depfence reports nothing here.
package report

import "vvd/internal/metrics"

// Summary averages through the allowed import.
func Summary(xs []float64) float64 {
	return metrics.Mean(xs)
}

// Package floatcmp is a linttest corpus for bitwise float equality.
package floatcmp

// Eq compares two float64s bitwise.
func Eq(a, b float64) bool {
	return a == b // want `bitwise == on floating-point operands a and b`
}

// Neq32 compares two float32s bitwise.
func Neq32(a, b float32) bool {
	return a != b // want `bitwise != on floating-point operands a and b`
}

// EqComplex compares two complex128s bitwise.
func EqComplex(a, b complex128) bool {
	return a == b // want `bitwise == on floating-point operands a and b`
}

// ZeroGuard compares against a constant sentinel; deliberate, not reported.
func ZeroGuard(x float64) bool {
	return x == 0
}

// IsNaN is the x != x idiom; deliberate, not reported.
func IsNaN(x float64) bool {
	return x != x
}

// IntEq has no floating operands; not reported.
func IntEq(a, b int) bool {
	return a == b
}

// BitExact declares a bit-exact contract with the vvdlint spelling.
func BitExact(a, b float64) bool {
	return a == b //vvdlint:bitexact -- declared golden-parity contract
}

// BitExactLegacy declares the same contract with the lint: spelling.
func BitExactLegacy(a, b float64) bool {
	return a == b //lint:bitexact
}

// Package closecheck is a linttest corpus for discarded Close/Flush
// errors on writable resources.
package closecheck

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
)

// DeferredOnly never checks the file's Close error anywhere.
func DeferredOnly(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred Close error discarded on the success path`
	_, err = f.Write([]byte("x"))
	return err
}

// BareFlush drops the Flush error on the floor.
func BareFlush(w io.Writer) {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "x")
	bw.Flush() // want `Flush error discarded on the success path`
}

// Discarded assigns the Close error to the blank identifier.
func Discarded(w io.Writer) {
	zw := gzip.NewWriter(w)
	_ = zw.Close() // want `Close error discarded on the success path`
}

// Backstop is the sanctioned create→write→close shape: the deferred
// close is the error-path backstop for the checked close; not reported.
func Backstop(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	return f.Close()
}

// ErrPath closes bare only inside the error branch; not reported.
func ErrPath(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadOnly opens for reading; os.Open is not a tracked creator.
func ReadOnly(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// Allowed is a genuine fire-and-forget site with the per-line opt-out.
func Allowed(w io.Writer) {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "x")
	bw.Flush() //vvdlint:allow closecheck -- best-effort debug dump; loss is acceptable
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between two non-constant floating-point or
// complex expressions. Bitwise float equality is almost always a
// tolerance bug in numeric code; the sanctioned forms are a tolerance
// comparison (math.Abs(a-b) <= eps, or the package's own helpers) or an
// explicit opt-out for declared bit-exact contracts (parity tests,
// frozen-format goldens):
//
//	//vvdlint:bitexact -- reason     (or //lint:bitexact)
//
// Comparisons against constants (x == 0 zero-guards, sentinel values)
// and the NaN idiom (x != x) are deliberate bit-exact checks and are not
// flagged.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!= between non-constant float or complex expressions",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := pass.Info.Types[be.X], pass.Info.Types[be.Y]
			if !isFloaty(xt.Type) && !isFloaty(yt.Type) {
				return true
			}
			if xt.Value != nil || yt.Value != nil {
				return true // constant guard/sentinel: deliberate
			}
			sx, sy := types.ExprString(be.X), types.ExprString(be.Y)
			if sx == sy {
				return true // x != x: the NaN test
			}
			pass.Reportf(be.OpPos, "bitwise %s on floating-point operands %s and %s: compare with a tolerance (math.Abs(a-b) <= eps) or declare the contract with //vvdlint:bitexact", be.Op, sx, sy)
			return true
		})
	}
	return nil
}

func isFloaty(t types.Type) bool {
	b := underlyingBasic(t)
	return b != nil && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

package room

import (
	"math/rand/v2"
	"testing"
)

func crowdRNG(seed uint64) func(i int) *rand.Rand {
	return func(i int) *rand.Rand {
		s := seed + uint64(i)*0x9E3779B97F4A7C15
		return rand.New(rand.NewPCG(s, s^0x5bd1e995))
	}
}

// TestCrowdOfOneMatchesWalker pins the compatibility contract the dataset
// generator relies on: a crowd of one over a given random stream walks the
// exact trajectory of a bare Walker over the same stream.
func TestCrowdOfOneMatchesWalker(t *testing.T) {
	area := DefaultLab().MovementArea
	cfg := DefaultMobility()
	seed := uint64(77)
	w := NewWalker(area, cfg, crowdRNG(seed)(0))
	c := NewCrowd(area, cfg, 1, crowdRNG(seed), 0)
	for step := 0; step < 500; step++ {
		want := w.Step(FrameDT)
		c.Step(FrameDT)
		got := c.Positions(nil)[0]
		if got != want {
			t.Fatalf("step %d: crowd-of-one at %+v, walker at %+v", step, got, want)
		}
	}
}

const FrameDT = 1.0 / 30

// TestCrowdKeepsSeparation walks a dense crowd for many steps and checks
// the collision-free invariant: no two occupants ever stand closer than
// MinSep once the walk is underway.
func TestCrowdKeepsSeparation(t *testing.T) {
	area := DefaultLab().MovementArea
	cfg := DefaultMobility()
	c := NewCrowd(area, cfg, 6, crowdRNG(3), 0)
	if c.MinSep != DefaultMinSeparation {
		t.Fatalf("MinSep = %g, want default %g", c.MinSep, DefaultMinSeparation)
	}
	pos := make([]Vec3, 0, 6)
	for step := 0; step < 2000; step++ {
		c.Step(FrameDT)
		pos = c.Positions(pos[:0])
		for i := range pos {
			if !area.Contains(pos[i].X, pos[i].Y) {
				t.Fatalf("step %d: occupant %d left the area: %+v", step, i, pos[i])
			}
			for j := i + 1; j < len(pos); j++ {
				if d := pos[i].Dist(pos[j]); d < c.MinSep-1e-9 {
					t.Fatalf("step %d: occupants %d and %d at distance %g < %g", step, i, j, d, c.MinSep)
				}
			}
		}
	}
}

// TestCrowdAvoidsObstacles pins the external-occupant path used by
// scripted multi-occupant campaigns. The obstacle (the scripted walker at
// 1.1 m/s) is faster than every crowd walker (≤0.9 m/s), so it can always
// catch and brush past one — avoidance is a soft yield, not a hard
// exclusion — but walkers that see the obstacle must spend measurably less
// time inside MinSep than walkers that do not, summed over several seeds
// to keep the chaotic per-seed variation out of the assertion.
func TestCrowdAvoidsObstacles(t *testing.T) {
	area := DefaultLab().MovementArea
	cfg := DefaultMobility()
	pts := ScriptedPath(area, 3000, FrameDT, 1.1)

	violations := func(seed uint64, aware bool) int {
		c := NewCrowd(area, cfg, 3, crowdRNG(seed), 0)
		if aware {
			c.Obstacles = make([]Vec3, 1)
		}
		count := 0
		var pos []Vec3
		for _, pt := range pts {
			if aware {
				c.Obstacles[0] = pt.Pos
			}
			c.Step(FrameDT)
			pos = c.Positions(pos[:0])
			for i := range pos {
				if pos[i].Dist(pt.Pos) < c.MinSep-1e-9 {
					count++
				}
			}
		}
		return count
	}

	blind, aware, samples := 0, 0, 0
	for _, seed := range []uint64{21, 22, 23, 24} {
		blind += violations(seed, false)
		aware += violations(seed, true)
		samples += len(pts) * 3
	}
	if blind == 0 {
		t.Fatalf("blind crowds never crossed the obstacle path — test not exercising avoidance")
	}
	// The yield must cut obstacle proximity by at least a third relative
	// to oblivious walkers (measured headroom: ~40–50% reduction).
	if aware*3 > blind*2 {
		t.Fatalf("obstacle avoidance ineffective: %d/%d violating samples aware vs %d blind", aware, samples, blind)
	}
}

// TestCrowdDeterministic pins that two crowds over the same seeds replay
// the same trajectories.
func TestCrowdDeterministic(t *testing.T) {
	area := DefaultLab().MovementArea
	cfg := DefaultMobility()
	a := NewCrowd(area, cfg, 4, crowdRNG(11), 0)
	b := NewCrowd(area, cfg, 4, crowdRNG(11), 0)
	for step := 0; step < 300; step++ {
		a.Step(FrameDT)
		b.Step(FrameDT)
		pa, pb := a.Positions(nil), b.Positions(nil)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("step %d occupant %d diverged", step, i)
			}
		}
	}
}

package room

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func TestVec3Arithmetic(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Fatalf("Add = %+v", got)
	}
	if got := b.Sub(a); got != (Vec3{3, 3, 3}) {
		t.Fatalf("Sub = %+v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Fatalf("Scale = %+v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestVec3NormDist(t *testing.T) {
	if got := (Vec3{3, 4, 0}).Norm(); math.Abs(got-5) > tol {
		t.Fatalf("Norm = %v", got)
	}
	if got := (Vec3{1, 1, 1}).Dist(Vec3{1, 1, 3}); math.Abs(got-2) > tol {
		t.Fatalf("Dist = %v", got)
	}
}

func TestVec3Normalize(t *testing.T) {
	v := Vec3{0, 3, 4}.Normalize()
	if math.Abs(v.Norm()-1) > tol {
		t.Fatalf("normalized norm = %v", v.Norm())
	}
	zero := Vec3{}
	if zero.Normalize() != zero {
		t.Fatal("zero vector normalize must be identity")
	}
}

func TestVec3Cross(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 1, 0}
	if got := x.Cross(y); got != (Vec3{0, 0, 1}) {
		t.Fatalf("x×y = %+v", got)
	}
	// Anti-commutative.
	if got := y.Cross(x); got != (Vec3{0, 0, -1}) {
		t.Fatalf("y×x = %+v", got)
	}
}

func TestCrossOrthogonalityProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		for _, v := range []float64{ax, ay, az, bx, by, bz} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		a := Vec3{ax, ay, az}
		b := Vec3{bx, by, bz}
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		if scale == 0 {
			return true
		}
		return math.Abs(c.Dot(a))/scale < 1e-6 && math.Abs(c.Dot(b))/scale < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{1, 1, 3, 4}
	if !r.Contains(2, 2) {
		t.Fatal("interior point rejected")
	}
	if !r.Contains(1, 1) {
		t.Fatal("boundary point rejected")
	}
	if r.Contains(0.5, 2) || r.Contains(2, 5) {
		t.Fatal("exterior point accepted")
	}
	if r.Width() != 2 || r.Height() != 3 {
		t.Fatalf("dims %v x %v", r.Width(), r.Height())
	}
}

func TestHumanCenter(t *testing.T) {
	h := DefaultHuman(Vec3{2, 3, 0})
	c := h.Center()
	if c.X != 2 || c.Y != 3 || math.Abs(c.Z-0.9) > tol {
		t.Fatalf("Center = %+v", c)
	}
}

func TestDefaultLabValid(t *testing.T) {
	r := DefaultLab()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// The movement area must sit between TX and RX so LoS blockage occurs.
	if !(r.MovementArea.MinX > r.TX.X && r.MovementArea.MaxX < r.RX.X) {
		t.Fatal("movement area should lie between TX and RX in X")
	}
}

func TestValidateRejectsBadRooms(t *testing.T) {
	cases := []func(*Room){
		func(r *Room) { r.Width = 0 },
		func(r *Room) { r.TX = Vec3{-1, 0, 0} },
		func(r *Room) { r.RX = Vec3{0, 0, 99} },
		func(r *Room) { r.Camera = Vec3{0, 99, 0} },
		func(r *Room) { r.MovementArea = Rect{} },
		func(r *Room) { r.WallReflectionLoss = 1.5 },
		func(r *Room) { r.WallReflectionLoss = 0 },
	}
	for i, mutate := range cases {
		r := DefaultLab()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Fatalf("case %d: invalid room accepted", i)
		}
	}
}

func TestSegmentDistanceToVerticalDirectHit(t *testing.T) {
	// Horizontal segment passing exactly through the axis at covered height.
	d := SegmentDistanceToVertical(Vec3{0, 0, 1}, Vec3{4, 0, 1}, 2, 0, 0, 2)
	if d > 1e-6 {
		t.Fatalf("distance = %v want ~0", d)
	}
}

func TestSegmentDistanceToVerticalOffset(t *testing.T) {
	// Axis 1 m to the side of the segment.
	d := SegmentDistanceToVertical(Vec3{0, 0, 1}, Vec3{4, 0, 1}, 2, 1, 0, 2)
	if math.Abs(d-1) > 1e-6 {
		t.Fatalf("distance = %v want 1", d)
	}
}

func TestSegmentDistanceToVerticalAboveObstacle(t *testing.T) {
	// Segment passes 0.5 m above the cylinder top.
	d := SegmentDistanceToVertical(Vec3{0, 0, 2.5}, Vec3{4, 0, 2.5}, 2, 0, 0, 2)
	if math.Abs(d-0.5) > 1e-6 {
		t.Fatalf("distance = %v want 0.5", d)
	}
}

func TestSegmentDistanceToVerticalEndpointsClosest(t *testing.T) {
	// Axis beyond the far endpoint: the closest approach is at t=1.
	d := SegmentDistanceToVertical(Vec3{0, 0, 1}, Vec3{1, 0, 1}, 3, 0, 0, 2)
	if math.Abs(d-2) > 1e-6 {
		t.Fatalf("distance = %v want 2", d)
	}
}

func TestWalkerStaysInsideArea(t *testing.T) {
	area := Rect{1, 1, 4, 5}
	w := NewWalker(area, DefaultMobility(), rand.New(rand.NewPCG(1, 2)))
	for i := 0; i < 5000; i++ {
		p := w.Step(0.033)
		if !area.Contains(p.X, p.Y) {
			t.Fatalf("step %d left the area: %+v", i, p)
		}
	}
}

func TestWalkerMoves(t *testing.T) {
	w := NewWalker(Rect{0, 0, 5, 5}, DefaultMobility(), rand.New(rand.NewPCG(3, 4)))
	start := w.Pos()
	var total float64
	prev := start
	for i := 0; i < 300; i++ {
		p := w.Step(0.1)
		total += p.Dist(prev)
		prev = p
	}
	if total < 1 {
		t.Fatalf("walker barely moved: %v m over 30 s", total)
	}
}

func TestWalkerSpeedBounded(t *testing.T) {
	cfg := MobilityConfig{SpeedMin: 0.5, SpeedMax: 1.4}
	w := NewWalker(Rect{0, 0, 8, 8}, cfg, rand.New(rand.NewPCG(5, 6)))
	prev := w.Pos()
	for i := 0; i < 2000; i++ {
		p := w.Step(0.05)
		step := p.Dist(prev)
		if step > cfg.SpeedMax*0.05+1e-9 {
			t.Fatalf("step %d moved %v m in 50 ms (max %v m)", i, step, cfg.SpeedMax*0.05)
		}
		prev = p
	}
}

func TestWalkerNegativeDt(t *testing.T) {
	w := NewWalker(Rect{0, 0, 5, 5}, DefaultMobility(), rand.New(rand.NewPCG(7, 8)))
	p0 := w.Pos()
	if got := w.Step(-1); got != p0 {
		t.Fatal("negative dt must not move the walker")
	}
}

func TestWalkerDeterministicWithSeed(t *testing.T) {
	mk := func() []Vec3 {
		w := NewWalker(Rect{0, 0, 5, 5}, DefaultMobility(), rand.New(rand.NewPCG(11, 12)))
		out := make([]Vec3, 50)
		for i := range out {
			out[i] = w.Step(0.033)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same trajectory")
		}
	}
}

func TestWalkerSampleTimestamps(t *testing.T) {
	w := NewWalker(Rect{0, 0, 5, 5}, DefaultMobility(), rand.New(rand.NewPCG(13, 14)))
	pts := w.Sample(10, 0.1)
	if len(pts) != 10 {
		t.Fatalf("len = %d", len(pts))
	}
	for i, p := range pts {
		want := float64(i+1) * 0.1
		if math.Abs(p.T-want) > tol {
			t.Fatalf("pts[%d].T = %v want %v", i, p.T, want)
		}
	}
}

func TestWalkerPause(t *testing.T) {
	cfg := MobilityConfig{SpeedMin: 10, SpeedMax: 10, PauseTime: 100}
	w := NewWalker(Rect{0, 0, 1, 1}, cfg, rand.New(rand.NewPCG(15, 16)))
	// Fast walker reaches first waypoint quickly then pauses for a long
	// time; positions must stabilize.
	w.Step(5)
	p1 := w.Step(1)
	p2 := w.Step(1)
	if p1 != p2 {
		t.Fatal("walker should be paused at waypoint")
	}
}

func TestNewWalkerNilRngPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWalker(Rect{0, 0, 1, 1}, DefaultMobility(), nil)
}

func TestScriptedPathInsideArea(t *testing.T) {
	area := Rect{1, 1, 4, 5}
	pts := ScriptedPath(area, 500, 0.1, 1.2)
	for i, p := range pts {
		if !area.Contains(p.Pos.X, p.Pos.Y) {
			t.Fatalf("point %d outside area: %+v", i, p.Pos)
		}
	}
}

func TestScriptedPathCrossesCenter(t *testing.T) {
	area := Rect{0, 0, 4, 4}
	pts := ScriptedPath(area, 2000, 0.05, 1.0)
	center := Vec3{2, 2, 0}
	closest := math.Inf(1)
	for _, p := range pts {
		if d := p.Pos.Dist(center); d < closest {
			closest = d
		}
	}
	if closest > 0.2 {
		t.Fatalf("path never near center (min dist %v)", closest)
	}
}

func TestScriptedPathDeterministic(t *testing.T) {
	a := ScriptedPath(Rect{0, 0, 3, 3}, 100, 0.1, 1)
	b := ScriptedPath(Rect{0, 0, 3, 3}, 100, 0.1, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("scripted path must be deterministic")
		}
	}
}

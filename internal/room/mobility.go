package room

import (
	"math"
	"math/rand/v2"
)

// MobilityConfig parameterizes the random-waypoint walk of the human inside
// the movement area. The paper's human is "always mobile during the
// measurements", so the model has no pause time by default.
type MobilityConfig struct {
	SpeedMin  float64 // m/s
	SpeedMax  float64 // m/s
	PauseTime float64 // seconds spent at each waypoint (0 = always mobile)
}

// DefaultMobility returns typical indoor walking dynamics.
func DefaultMobility() MobilityConfig {
	return MobilityConfig{SpeedMin: 0.3, SpeedMax: 0.9, PauseTime: 0}
}

// TrajectoryPoint is a sampled human position at a point in time.
type TrajectoryPoint struct {
	T   float64 // seconds since trajectory start
	Pos Vec3
}

// Walker generates a continuous random-waypoint trajectory. It is stateful:
// repeated Step calls advance the walk.
type Walker struct {
	area    Rect
	cfg     MobilityConfig
	rng     *rand.Rand
	pos     Vec3
	target  Vec3
	speed   float64
	pausing float64
	started bool
}

// NewWalker creates a walker confined to area. A nil rng panics.
func NewWalker(area Rect, cfg MobilityConfig, rng *rand.Rand) *Walker {
	if rng == nil {
		panic("room: NewWalker needs a rand source")
	}
	w := &Walker{area: area, cfg: cfg, rng: rng}
	w.pos = w.randomPoint()
	w.pickTarget()
	return w
}

func (w *Walker) randomPoint() Vec3 {
	return Vec3{
		X: w.area.MinX + w.rng.Float64()*w.area.Width(),
		Y: w.area.MinY + w.rng.Float64()*w.area.Height(),
	}
}

func (w *Walker) pickTarget() {
	w.target = w.randomPoint()
	span := w.cfg.SpeedMax - w.cfg.SpeedMin
	if span < 0 {
		span = 0
	}
	w.speed = w.cfg.SpeedMin + w.rng.Float64()*span
	if w.speed <= 0 {
		w.speed = 0.5
	}
}

// Pos returns the current position.
func (w *Walker) Pos() Vec3 { return w.pos }

// Step advances the walk by dt seconds and returns the new position.
func (w *Walker) Step(dt float64) Vec3 {
	if dt < 0 {
		dt = 0
	}
	remaining := dt
	for remaining > 0 {
		if w.pausing > 0 {
			hold := math.Min(w.pausing, remaining)
			w.pausing -= hold
			remaining -= hold
			continue
		}
		to := w.target.Sub(w.pos)
		dist := to.Norm()
		if dist < 1e-9 {
			w.pausing = w.cfg.PauseTime
			w.pickTarget()
			if w.cfg.PauseTime == 0 && remaining < 1e-12 {
				break
			}
			continue
		}
		travel := w.speed * remaining
		if travel >= dist {
			w.pos = w.target
			remaining -= dist / w.speed
			w.pausing = w.cfg.PauseTime
			w.pickTarget()
			continue
		}
		w.pos = w.pos.Add(to.Scale(travel / dist))
		remaining = 0
	}
	return w.pos
}

// Sample produces n positions separated by dt seconds (the first sample is
// the position after one step, mirroring a camera that starts rolling as
// the human is already moving).
func (w *Walker) Sample(n int, dt float64) []TrajectoryPoint {
	pts := make([]TrajectoryPoint, n)
	for i := range pts {
		pos := w.Step(dt)
		pts[i] = TrajectoryPoint{T: float64(i+1) * dt, Pos: pos}
	}
	return pts
}

// DefaultMinSeparation is the closest two occupants' body axes approach
// during a crowd walk: two default bodies (0.25 m radius) plus a small
// personal-space margin.
const DefaultMinSeparation = 0.7

// Crowd steps several walkers through the shared movement area with
// collision-free sampling: a walker whose step would bring it within MinSep
// of another occupant holds its position for that step and re-draws its
// waypoint, so trajectories never interpenetrate. Each walker owns an
// independent random stream, and collision handling only ever consumes
// draws from the walker being stepped — a crowd of one is therefore
// bit-identical to a bare Walker over the same stream (the pre-multi-
// occupant trajectory), which is what keeps single-occupant campaigns
// reproducible across this generalization.
type Crowd struct {
	walkers []*Walker
	// MinSep is the minimum axis-to-axis distance enforced between
	// occupants (DefaultMinSeparation when NewCrowd is given 0).
	MinSep float64
	// Obstacles are extra occupant positions the walkers keep MinSep from
	// without steering them — e.g. a scripted walker that is not part of
	// the crowd. The caller updates the slice between Step calls as the
	// external occupants move.
	Obstacles []Vec3
}

// NewCrowd creates n walkers confined to area. rng(i) must return the
// random source of walker i; sources must be independent. Initial positions
// are resampled (from the colliding walker's own source) until every pair
// respects minSep, giving up after a bounded number of draws in areas too
// small for the crowd — the walk then starts as spread out as the draws
// allowed and separates as targets re-draw.
func NewCrowd(area Rect, cfg MobilityConfig, n int, rng func(i int) *rand.Rand, minSep float64) *Crowd {
	if minSep <= 0 {
		minSep = DefaultMinSeparation
	}
	c := &Crowd{walkers: make([]*Walker, n), MinSep: minSep}
	for i := 0; i < n; i++ {
		w := NewWalker(area, cfg, rng(i))
		for tries := 0; tries < 64 && c.collides(w.pos, i); tries++ {
			w.pos = w.randomPoint()
		}
		c.walkers[i] = w
	}
	return c
}

// collides reports whether p is within MinSep of any walker other than i
// that has already been constructed/stepped.
func (c *Crowd) collides(p Vec3, self int) bool {
	for j, w := range c.walkers {
		if j == self || w == nil {
			continue
		}
		if w.pos.Dist(p) < c.MinSep {
			return true
		}
	}
	return false
}

// Len returns the number of walkers.
func (c *Crowd) Len() int { return len(c.walkers) }

// Positions appends the current walker positions to dst and returns it.
func (c *Crowd) Positions(dst []Vec3) []Vec3 {
	for _, w := range c.walkers {
		dst = append(dst, w.pos)
	}
	return dst
}

// Step advances every walker by dt seconds in index order. A walker whose
// new position would violate MinSep against any other occupant's current
// position reverts to where it stood and re-draws its waypoint (from its
// own stream), yielding naturally avoiding trajectories without any
// cross-walker randomness coupling. Moves that *increase* the distance to
// an already-too-close neighbour are allowed, so a crowd seeded tighter
// than MinSep (possible in areas too small for it) separates instead of
// deadlocking; once apart, no step can re-create a violation.
func (c *Crowd) Step(dt float64) {
	if len(c.walkers) == 1 && len(c.Obstacles) == 0 {
		c.walkers[0].Step(dt)
		return
	}
	for i, w := range c.walkers {
		prev := w.pos
		w.Step(dt)
		if c.blockedWithin(w.pos, prev, i, c.MinSep*alertFactor) {
			// The waypoint move closes in on another body. Retreat
			// straight away from the nearest one instead of freezing —
			// essential against moving obstacles, which would otherwise
			// run a frozen walker over — as long as the retreat creates no
			// hard (MinSep) violation; freeze only when cornered. The
			// alert radius makes walkers yield before contact, buying lead
			// time against bodies faster than themselves.
			w.pos = prev
			if away := prev.Sub(c.nearestBody(prev, i)).Normalize(); away.Norm() > 0 {
				// Retreat at full walking speed: a yielding human hurries.
				cand := prev.Add(away.Scale(math.Max(w.speed, w.cfg.SpeedMax) * dt))
				cand.X = math.Min(math.Max(cand.X, w.area.MinX), w.area.MaxX)
				cand.Y = math.Min(math.Max(cand.Y, w.area.MinY), w.area.MaxY)
				if !c.blockedWithin(cand, prev, i, c.MinSep) {
					w.pos = cand
				}
			}
			w.pickTarget()
		}
	}
}

// alertFactor scales MinSep into the radius at which walkers start
// yielding: approaches inside alertFactor·MinSep trigger the retreat
// behavior while the hard non-interpenetration bound stays at MinSep.
const alertFactor = 1.5

// blockedWithin reports whether moving walker self from prev to p closes
// in on another body: p is within radius of it and no farther than prev
// was. Moves that strictly increase the distance of an already-close pair
// are allowed (escape).
func (c *Crowd) blockedWithin(p, prev Vec3, self int, radius float64) bool {
	for j, o := range c.walkers {
		if j == self {
			continue
		}
		if d := o.pos.Dist(p); d < radius && d <= o.pos.Dist(prev) {
			return true
		}
	}
	for _, o := range c.Obstacles {
		if d := o.Dist(p); d < radius && d <= o.Dist(prev) {
			return true
		}
	}
	return false
}

// nearestBody returns the position of the walker or obstacle closest to p
// (other than walker self).
func (c *Crowd) nearestBody(p Vec3, self int) Vec3 {
	best := math.Inf(1)
	var at Vec3
	for j, o := range c.walkers {
		if j == self {
			continue
		}
		if d := o.pos.Dist(p); d < best {
			best, at = d, o.pos
		}
	}
	for _, o := range c.Obstacles {
		if d := o.Dist(p); d < best {
			best, at = d, o
		}
	}
	return at
}

// ScriptedPath returns a deterministic trajectory that crosses the direct
// TX–RX line, useful for reproducible tests and the burst-error experiment
// (paper Fig. 15): the human walks from one corner of the movement area
// through its centre to the opposite corner and back, cyclically.
func ScriptedPath(area Rect, n int, dt float64, speed float64) []TrajectoryPoint {
	if speed <= 0 {
		speed = 1
	}
	a := Vec3{area.MinX, area.MinY, 0}
	b := Vec3{area.MaxX, area.MaxY, 0}
	leg := b.Sub(a)
	legLen := leg.Norm()
	pts := make([]TrajectoryPoint, n)
	pos := 0.0
	dir := 1.0
	for i := range pts {
		pos += speed * dt * dir
		for pos > legLen || pos < 0 {
			if pos > legLen {
				pos = 2*legLen - pos
				dir = -dir
			}
			if pos < 0 {
				pos = -pos
				dir = -dir
			}
		}
		p := a.Add(leg.Scale(pos / legLen))
		pts[i] = TrajectoryPoint{T: float64(i+1) * dt, Pos: p}
	}
	return pts
}
